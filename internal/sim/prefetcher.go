package sim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ghb"
	"repro/internal/mem"
	"repro/internal/sectored"
	"repro/internal/stride"
	"repro/internal/trace"
)

// Prefetcher is one CPU's prefetch engine, attached between the trace
// driver and the coherent hierarchy. Implementations live next to their
// predictors (internal/core, internal/ghb, ...) and satisfy the interface
// structurally, so predictor packages never import sim.
//
// Per demand access the runner calls Train, then Drain; the runner applies
// every returned address to the memory system at the engine's FillLevel
// (L1 engines stream into both levels, L2 engines fill only L2).
//
// Address slices returned by Train and Drain may alias a buffer owned by
// the engine, valid until its next Train/Drain call: the runner consumes
// them immediately, so engines reuse one buffer instead of allocating per
// access (the built-ins all do).
type Prefetcher interface {
	// Train observes one demand access by this CPU together with its
	// outcome in the hierarchy (hits/misses per level, evictions,
	// invalidations). Returned addresses are prefetches issued
	// immediately, bypassing the StreamRate budget — the channel used by
	// miss-triggered L2 prefetchers (GHB, stride) whose bursts the paper
	// does not rate-limit.
	Train(rec trace.Record, acc *coherence.AccessResult) []mem.Addr
	// Drain returns up to max pending stream requests. The runner calls
	// it once per demand access with the configured StreamRate, modeling
	// finite stream bandwidth.
	Drain(max int) []mem.Addr
	// FillLevel is the cache level prefetches fill: LevelL1 engines
	// stream blocks into L1 (and L2 en route), LevelL2 engines into L2
	// only.
	FillLevel() coherence.Level
	// StreamEvicted reports that one of this engine's own stream fills
	// displaced a previously resident block from its fill level.
	StreamEvicted(addr mem.Addr)
	// Invalidated reports that a remote write invalidated addr in this
	// CPU's L1 — the event that ends a spatial region generation (§2.1).
	Invalidated(addr mem.Addr)
	// Stats returns the engine's internal counters (predictor-specific;
	// may be nil). The runner gathers them into Result.
	Stats() any
}

// Constructor builds one per-CPU prefetch engine from a fully resolved
// Config (defaults applied, Geometry and Coherence populated). The runner
// calls it once per simulated CPU. A constructor may return (nil, nil) to
// attach no engine at all — the baseline system.
type Constructor func(cfg Config) (Prefetcher, error)

var registry = struct {
	sync.RWMutex
	ctors map[string]Constructor
}{ctors: make(map[string]Constructor)}

// Register makes a prefetcher scheme available under name (as used by
// Config.PrefetcherName, sim.New, and the CLIs). It is intended to be
// called from package init; it panics on an empty name or a duplicate
// registration, which is always a programming error.
func Register(name string, ctor Constructor) {
	if name == "" {
		panic("sim: Register with empty prefetcher name")
	}
	if ctor == nil {
		panic(fmt.Sprintf("sim: Register(%q) with nil constructor", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.ctors[name]; dup {
		panic(fmt.Sprintf("sim: prefetcher %q registered twice", name))
	}
	registry.ctors[name] = ctor
}

// Names returns the registered scheme names in sorted order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.ctors))
	for name := range registry.ctors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookup resolves a registered constructor.
func lookup(name string) (Constructor, error) {
	registry.RLock()
	ctor, ok := registry.ctors[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sim: unknown prefetcher %q (registered: %v)", name, Names())
	}
	return ctor, nil
}

// New builds a runner for cfg with the named prefetcher attached. It is
// the registry-first spelling of NewRunner: the name overrides whatever
// cfg.PrefetcherName selected.
func New(name string, cfg Config) (*Runner, error) {
	cfg.PrefetcherName = name
	return NewRunner(cfg)
}

// Built-in schemes. Each constructor resolves the per-scheme config from
// the run's Config exactly as the pre-registry switch in NewRunner did.
func init() {
	Register("none", func(Config) (Prefetcher, error) { return nil, nil })
	Register("sms", func(cfg Config) (Prefetcher, error) {
		smsCfg := cfg.SMS
		smsCfg.Geometry = cfg.Geometry
		p, err := core.NewSimPrefetcher(smsCfg)
		if err != nil {
			return nil, err
		}
		return p, nil
	})
	Register("ls", func(cfg Config) (Prefetcher, error) {
		lsCfg := cfg.LS
		lsCfg.Geometry = cfg.Geometry
		if lsCfg.CacheSize == 0 {
			lsCfg.CacheSize = cfg.Coherence.L1.Size
		}
		p, err := sectored.NewSimPrefetcher(lsCfg)
		if err != nil {
			return nil, err
		}
		return p, nil
	})
	Register("ghb", func(cfg Config) (Prefetcher, error) {
		gcfg := cfg.GHB
		gcfg.BlockSize = cfg.Coherence.L1.BlockSize
		p, err := ghb.NewSimPrefetcher(gcfg)
		if err != nil {
			return nil, err
		}
		return p, nil
	})
	Register("stride", func(cfg Config) (Prefetcher, error) {
		scfg := cfg.Stride
		scfg.BlockSize = cfg.Coherence.L1.BlockSize
		p, err := stride.NewSimPrefetcher(scfg)
		if err != nil {
			return nil, err
		}
		return p, nil
	})
}
