package core

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestFilterTableBasics(t *testing.T) {
	f := NewFilterTable(2)
	if f.Len() != 0 {
		t.Fatal("new table not empty")
	}
	_, ev := f.insert(1, trigger{pc: 10, offset: 3})
	if ev {
		t.Fatal("insert into empty table evicted")
	}
	if e := f.lookup(1); e == nil || e.trig.pc != 10 {
		t.Fatal("lookup failed")
	}
	if e := f.lookup(2); e != nil {
		t.Fatal("phantom lookup")
	}
	f.insert(2, trigger{})
	victim, ev := f.insert(3, trigger{})
	if !ev || victim.tag != 1 {
		t.Fatalf("LRU eviction wrong: %+v %v", victim, ev)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if _, ok := f.remove(2); !ok {
		t.Fatal("remove failed")
	}
	if _, ok := f.remove(2); ok {
		t.Fatal("double remove succeeded")
	}
}

func TestFilterTableUnbounded(t *testing.T) {
	f := NewFilterTable(0)
	for i := uint64(0); i < 1000; i++ {
		if _, ev := f.insert(i, trigger{}); ev {
			t.Fatal("unbounded table evicted")
		}
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestAccumTableBasics(t *testing.T) {
	a := NewAccumulationTable(2)
	p := mem.PatternOf(4, 0, 1)
	a.insert(accumEntry{tag: 1, pattern: p})
	a.insert(accumEntry{tag: 2, pattern: p})
	// Touch tag 1 so tag 2 is LRU.
	a.touch(a.lookup(1))
	victim, ev := a.insert(accumEntry{tag: 3, pattern: p})
	if !ev || victim.tag != 2 {
		t.Fatalf("LRU eviction wrong: %+v", victim)
	}
	if a.lookup(1) == nil || a.lookup(3) == nil || a.lookup(2) != nil {
		t.Fatal("contents wrong")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
	if e, ok := a.remove(3); !ok || e.tag != 3 {
		t.Fatal("remove failed")
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestAccumPatternMutationThroughLookup(t *testing.T) {
	a := NewAccumulationTable(4)
	p := mem.NewPattern(8)
	p.Set(0)
	a.insert(accumEntry{tag: 7, pattern: p})
	e := a.lookup(7)
	e.pattern.Set(5)
	if got := a.lookup(7).pattern; !got.Test(5) || !got.Test(0) {
		t.Fatal("in-place pattern mutation lost")
	}
}

func TestTablesNeverExceedCapacity(t *testing.T) {
	f := func(tags []uint16) bool {
		ft := NewFilterTable(8)
		at := NewAccumulationTable(8)
		for _, tag := range tags {
			ft.insert(uint64(tag), trigger{})
			at.insert(accumEntry{tag: uint64(tag), pattern: mem.NewPattern(4)})
		}
		return ft.Len() <= 8 && at.Len() <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
