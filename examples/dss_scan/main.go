// DSS scan study: the cold-miss story of §2.2/§4.2. A decision-support
// scan touches each table page exactly once, so an address-indexed
// predictor never gets a second chance at any region — while PC+offset
// indexing learns the scan loop's footprint once and predicts every
// subsequent page, including data that has never been visited.
//
// Run with: go run ./examples/dss_scan
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const (
		cpus   = 2
		length = 400_000
		seed   = 3
	)
	w, err := workload.ByName("dss-q1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %s\n\n", w.Name, w.Description)

	run := func(cfg sim.Config) *sim.Result {
		cfg.WarmupAccesses = length / 2
		r, err := sim.NewRunner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return r.Run(w.Make(workload.Config{CPUs: cpus, Seed: seed, Length: length}))
	}

	base := run(sim.Config{})
	fmt.Printf("baseline L1 read misses: %d\n\n", base.L1ReadMisses)

	fmt.Println("SMS L1 coverage by prediction index (unbounded PHT):")
	for _, kind := range core.AllIndexKinds() {
		res := run(sim.Config{
			PrefetcherName: "sms",
			SMS:            core.Config{Index: kind, PHTEntries: -1},
		})
		cov := res.L1Coverage(base)
		var note string
		switch kind {
		case core.IndexAddress:
			note = "(cannot predict unvisited pages)"
		case core.IndexPCAddress:
			note = "(address part defeats it on cold data)"
		case core.IndexPC:
			note = "(cannot separate scan from temp-table writes)"
		case core.IndexPCOffset:
			note = "(the paper's choice)"
		}
		fmt.Printf("  %-8s covered %5.1f%%  uncovered %5.1f%%  %s\n",
			kind, 100*cov.Covered, 100*cov.Uncovered, note)
	}

	fmt.Println("\nThe scan visits each fact-table page once: address-bearing")
	fmt.Println("indices have nothing to recall when a new page arrives, but")
	fmt.Println("the scan loop's PC repeats millions of times, so PC+offset")
	fmt.Println("predicts pages that have never been touched (§4.2).")
}
