package stride

import (
	"testing"

	"repro/internal/mem"
)

func train(p *Prefetcher, pc uint64, blocks ...uint64) []mem.Addr {
	var out []mem.Addr
	for _, b := range blocks {
		out = p.Train(pc, mem.Addr(b*64))
	}
	return out
}

func TestDefaultsAndValidation(t *testing.T) {
	p := MustNew(Config{})
	if p.Config().Entries != 512 || p.Config().Degree != 2 || p.Config().BlockSize != 64 {
		t.Errorf("defaults = %+v", p.Config())
	}
	if _, err := New(Config{BlockSize: 100}); err == nil {
		t.Error("bad block size accepted")
	}
	if _, err := New(Config{Entries: -1}); err == nil {
		t.Error("negative entries accepted")
	}
}

func TestSteadyStridePrefetch(t *testing.T) {
	p := MustNew(Config{})
	out := train(p, 0x400, 0, 3, 6, 9)
	if len(out) != 2 {
		t.Fatalf("prefetches = %v", out)
	}
	if out[0] != mem.Addr(12*64) || out[1] != mem.Addr(15*64) {
		t.Errorf("targets = %v", out)
	}
	if p.Stats().Steady == 0 {
		t.Error("steady state never reached")
	}
}

func TestIrregularNoPrefetch(t *testing.T) {
	p := MustNew(Config{})
	out := train(p, 0x400, 0, 17, 3, 999, 42)
	if len(out) != 0 {
		t.Fatalf("irregular stream prefetched %v", out)
	}
}

func TestStrideChangeResets(t *testing.T) {
	p := MustNew(Config{})
	train(p, 0x400, 0, 2, 4, 6) // steady at stride 2
	out := p.Train(0x400, mem.Addr(100*64))
	if len(out) != 0 {
		t.Fatal("prefetched immediately after stride break")
	}
	// Re-establish a new stride; needs two confirmations.
	out = train(p, 0x400, 105, 110, 115)
	if len(out) == 0 {
		t.Fatal("new stride never re-established")
	}
}

func TestZeroStrideNotPredicted(t *testing.T) {
	p := MustNew(Config{})
	out := train(p, 0x400, 5, 5, 5, 5, 5)
	if len(out) != 0 {
		t.Fatalf("zero stride prefetched %v", out)
	}
}

func TestPCConflictReallocates(t *testing.T) {
	p := MustNew(Config{Entries: 1})
	train(p, 0x400, 0, 2, 4)
	// A different PC maps to the same (only) entry and steals it.
	out := train(p, 0x555, 100, 103, 106, 109)
	if len(out) == 0 {
		t.Fatal("conflicting PC never predicted after steal")
	}
	if p.Stats().Trains != 7 {
		t.Errorf("Trains = %d", p.Stats().Trains)
	}
}

func TestStateString(t *testing.T) {
	for _, s := range []State{StateInitial, StateTransient, StateSteady, StateNoPred, State(9)} {
		if s.String() == "" {
			t.Errorf("state %d renders empty", s)
		}
	}
}
