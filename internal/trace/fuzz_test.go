package trace

// Fuzz targets for both trace decoders. The contract under fuzzing:
// corrupt or truncated input returns wrapped sentinel errors
// (ErrBadFormat, io.ErrUnexpectedEOF, io.EOF) — never a panic, never an
// unwrapped error, and never an allocation larger than the input
// justifies (the decoders validate claimed counts against actual byte
// ranges before allocating). CI runs each target for a few seconds
// (`make fuzz-smoke`); longer local runs just extend -fuzztime.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// checkDecodeErr asserts the decoder error contract.
func checkDecodeErr(t *testing.T, context string, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if !errors.Is(err, ErrBadFormat) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("%s: error %v wraps no known sentinel", context, err)
	}
}

func FuzzReaderV1(f *testing.F) {
	// Seeds: a valid trace, a truncated one, junk, and a bad version.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Write(Record{Seq: uint64(i * 3), PC: 0x400000, Addr: 1 << 30, CPU: uint8(i)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("JUNKJUNKJUNKJUNKJUNKJUNK"))
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 99
	f.Add(badVersion)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			checkDecodeErr(t, "NewReader", err)
			return
		}
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
		}
		if n*recSize > len(data) {
			t.Fatalf("decoded %d records from %d bytes", n, len(data))
		}
		checkDecodeErr(t, "Reader.Err", r.Err())

		// The batched decode path must agree with the scalar one.
		r2, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second NewReader disagreed: %v", err)
		}
		dst := make([]Record, 64)
		n2 := 0
		for {
			k := r2.NextBatch(dst)
			if k == 0 {
				break
			}
			n2 += k
		}
		if n2 != n {
			t.Fatalf("NextBatch decoded %d records, Next %d", n2, n)
		}
	})
}

func FuzzReaderV2(f *testing.F) {
	// Seeds: valid multi-block files, a truncation, and targeted bit
	// flips in the header, a block, the index and the tail.
	mk := func(n, block int) []byte {
		var buf bytes.Buffer
		w, err := NewV2Writer(&buf, Header{CPUs: 2, Workload: "w", BlockRecords: block})
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w.Write(Record{Seq: uint64(i * 3), PC: 0x400000 + uint64(i%8)*4,
				Addr: 1 << 30, CPU: uint8(i % 2), Kind: Kind(i % 2)}); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := mk(200, 64)
	f.Add(valid)
	f.Add(mk(0, 64))
	f.Add(valid[:len(valid)/2])
	for _, pos := range []int{5, 7, 25, v2HeaderMin + 3, len(valid) - v2TailSize - 5, len(valid) - 10, len(valid) - 1} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x41
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewV2Reader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			checkDecodeErr(t, "NewV2Reader", err)
			return
		}
		claimed := r.Records()
		if claimed > uint64(len(data)) {
			// Every record costs at least one cpu byte, so a validated
			// index can never claim more records than file bytes.
			t.Fatalf("index claims %d records in %d bytes", claimed, len(data))
		}
		var n uint64
		dst := make([]Record, 128)
		for {
			k := r.NextBatch(dst)
			if k == 0 {
				break
			}
			n += uint64(k)
		}
		checkDecodeErr(t, "V2Reader.Err", r.Err())
		if r.Err() == nil && n != claimed {
			t.Fatalf("decoded %d records, index claims %d", n, claimed)
		}
		// Seeking anywhere (including past the end) must not panic and
		// must keep the error contract.
		for _, pos := range []uint64{0, claimed / 2, claimed, claimed + 10} {
			if err := r.Seek(pos); err != nil {
				checkDecodeErr(t, "Seek", err)
			}
			r.Next()
			checkDecodeErr(t, "post-Seek Err", r.Err())
		}
	})
}
