package fault

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvPlan is the environment variable the daemon consults for a fault
// plan when no -fault-plan flag is given: either inline JSON or
// "@/path/to/plan.json".
const EnvPlan = "SMSD_FAULT_PLAN"

// ErrInjected is the base error every injected operation failure wraps.
// Callers that need to distinguish injected faults from real I/O errors
// (tests, mostly) match it with errors.Is.
var ErrInjected = errors.New("injected fault")

// ErrCrashed wraps ErrInjected and marks the crashed state: a crash
// rule fired and the injector now refuses every subsequent operation,
// modeling a dead process inside a live test. See Injector.
var ErrCrashed = fmt.Errorf("%w: crashed", ErrInjected)

// Kind enumerates what a rule does when it fires.
type Kind string

const (
	// KindError fails the operation with an injected error.
	KindError Kind = "error"
	// KindLatency delays the operation, then lets it proceed.
	KindLatency Kind = "latency"
	// KindPartial truncates a write to Frac of its bytes and then
	// crashes the injector — a torn write followed by process death.
	KindPartial Kind = "partial"
	// KindCrash fails the operation and puts the injector into the
	// crashed state (every later operation fails too). Under a real
	// daemon (-fault-plan / SMSD_FAULT_PLAN) the crash handler calls
	// os.Exit, so the "state left behind" is exactly a kill's.
	KindCrash Kind = "crash"
)

// Rule is one fault: at operation site Site, after After clean passes,
// fire Times times (0 = unlimited) with probability Prob (0 or >= 1 =
// always). A Site ending in "*" prefix-matches.
type Rule struct {
	Site    string  `json:"site"`
	Kind    Kind    `json:"kind"`
	After   int     `json:"after,omitempty"`
	Times   int     `json:"times,omitempty"`
	Prob    float64 `json:"prob,omitempty"`
	DelayMS int     `json:"delay_ms,omitempty"`
	Frac    float64 `json:"frac,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Plan is a deterministic fault schedule: the same plan and seed
// produce the same failure sequence against the same operation
// sequence.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Injector evaluates a Plan at instrumented operation sites. The
// zero-cost contract mirrors internal/obs: every method is safe on a
// nil receiver and returns immediately, so production paths pay one
// pointer test when injection is off.
//
// Crash semantics: once a crash (or partial-write) rule fires, the
// injector is "crashed" — every subsequent Point or Partial at any
// site returns ErrCrashed. In-process chaos tests use this to model
// process death: the crashing component stops exactly where it was,
// partial state (temp files, unsynced journal tails) stays on disk,
// and a fresh server over the same directories plays the recovery. A
// real daemon installs OnCrash(os.Exit) instead and dies for real.
type Injector struct {
	plan    Plan
	crashFn func(site string)

	mu      sync.Mutex
	hits    map[string]int // site → operations seen
	fired   []int          // per-rule fire count
	rng     map[string]*rand.Rand
	crashed bool
	site    string // site the crash fired at

	injections atomic.Uint64
}

// New compiles a plan. It rejects unknown kinds and empty sites so a
// typo'd plan fails at startup, not silently never-fires.
func New(plan Plan) (*Injector, error) {
	for i, r := range plan.Rules {
		if r.Site == "" {
			return nil, fmt.Errorf("fault: rule %d: empty site", i)
		}
		switch r.Kind {
		case KindError, KindLatency, KindPartial, KindCrash:
		default:
			return nil, fmt.Errorf("fault: rule %d: unknown kind %q", i, r.Kind)
		}
		if r.Kind == KindPartial && (r.Frac < 0 || r.Frac >= 1) {
			return nil, fmt.Errorf("fault: rule %d: frac %v outside [0,1)", i, r.Frac)
		}
	}
	return &Injector{
		plan:  plan,
		hits:  make(map[string]int),
		fired: make([]int, len(plan.Rules)),
		rng:   make(map[string]*rand.Rand),
	}, nil
}

// MustNew is New for hand-written test plans.
func MustNew(plan Plan) *Injector {
	i, err := New(plan)
	if err != nil {
		panic(err)
	}
	return i
}

// Load builds an injector from a plan spec: inline JSON or "@path".
// An empty spec yields a nil injector (injection off).
func Load(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	raw := []byte(spec)
	if rest, ok := strings.CutPrefix(spec, "@"); ok {
		b, err := os.ReadFile(rest)
		if err != nil {
			return nil, fmt.Errorf("fault: read plan: %w", err)
		}
		raw = b
	}
	var plan Plan
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&plan); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	return New(plan)
}

// FromEnv builds an injector from SMSD_FAULT_PLAN, nil when unset.
func FromEnv() (*Injector, error) {
	return Load(os.Getenv(EnvPlan))
}

// OnCrash installs the crash handler: a real daemon passes a
// func that os.Exits so crash rules kill the process; tests leave it
// unset and rely on the crashed state instead.
func (i *Injector) OnCrash(fn func(site string)) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.crashFn = fn
	i.mu.Unlock()
}

// siteRand returns the site's deterministic stream, keyed so that
// reordering unrelated sites never perturbs this one's decisions.
func (i *Injector) siteRand(site string) *rand.Rand {
	r := i.rng[site]
	if r == nil {
		h := fnv.New64a()
		h.Write([]byte(site))
		r = rand.New(rand.NewPCG(uint64(i.plan.Seed), h.Sum64()))
		i.rng[site] = r
	}
	return r
}

// match finds the first eligible rule for this operation, counting the
// site visit exactly once. Caller holds i.mu.
func (i *Injector) match(site string) (Rule, int, bool) {
	n := i.hits[site]
	i.hits[site] = n + 1
	for idx, r := range i.plan.Rules {
		if r.Site != site {
			if p, ok := strings.CutSuffix(r.Site, "*"); !ok || !strings.HasPrefix(site, p) {
				continue
			}
		}
		if n < r.After {
			continue
		}
		if r.Times > 0 && i.fired[idx] >= r.Times {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && i.siteRand(site).Float64() >= r.Prob {
			continue
		}
		i.fired[idx]++
		return r, idx, true
	}
	return Rule{}, 0, false
}

// fail renders a rule's error.
func (r Rule) fail(site string) error {
	if r.Error != "" {
		return fmt.Errorf("%w: %s: %s", ErrInjected, site, r.Error)
	}
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// Point evaluates one operation at site. It returns nil to let the
// operation proceed (possibly after an injected delay), an
// ErrInjected-wrapped error to fail it, or ErrCrashed once the
// injector has crashed.
func (i *Injector) Point(site string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	if i.crashed {
		i.mu.Unlock()
		return ErrCrashed
	}
	r, _, ok := i.match(site)
	if !ok {
		i.mu.Unlock()
		return nil
	}
	i.injections.Add(1)
	switch r.Kind {
	case KindLatency:
		d := time.Duration(r.DelayMS) * time.Millisecond
		i.mu.Unlock()
		time.Sleep(d)
		return nil
	case KindCrash, KindPartial:
		i.crashLocked(site)
		i.mu.Unlock()
		return ErrCrashed
	default:
		i.mu.Unlock()
		return r.fail(site)
	}
}

// Partial evaluates a write of n bytes at site. Normally it returns
// (n, nil). When a partial-write rule fires it returns keep < n and
// ErrCrashed: the caller must write exactly keep bytes, stop, and
// propagate the error — a torn write followed by process death. Error,
// latency, and crash rules behave as at Point.
func (i *Injector) Partial(site string, n int) (keep int, err error) {
	if i == nil {
		return n, nil
	}
	i.mu.Lock()
	if i.crashed {
		i.mu.Unlock()
		return 0, ErrCrashed
	}
	r, _, ok := i.match(site)
	if !ok {
		i.mu.Unlock()
		return n, nil
	}
	i.injections.Add(1)
	switch r.Kind {
	case KindLatency:
		d := time.Duration(r.DelayMS) * time.Millisecond
		i.mu.Unlock()
		time.Sleep(d)
		return n, nil
	case KindPartial:
		keep = int(r.Frac * float64(n))
		if keep >= n && n > 0 {
			keep = n - 1
		}
		i.crashLocked(site)
		i.mu.Unlock()
		return keep, ErrCrashed
	case KindCrash:
		i.crashLocked(site)
		i.mu.Unlock()
		return 0, ErrCrashed
	default:
		i.mu.Unlock()
		return 0, r.fail(site)
	}
}

// crashLocked flips the injector into the crashed state and runs the
// crash handler, if any. Caller holds i.mu.
func (i *Injector) crashLocked(site string) {
	if !i.crashed {
		i.crashed = true
		i.site = site
	}
	if i.crashFn != nil {
		fn := i.crashFn
		// The handler typically never returns (os.Exit); call it
		// without the lock so a test handler can inspect the injector.
		i.mu.Unlock()
		fn(site)
		i.mu.Lock()
	}
}

// Crashed reports whether a crash or partial-write rule has fired.
func (i *Injector) Crashed() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// CrashSite returns the site the crash fired at, "" if none.
func (i *Injector) CrashSite() string {
	if i == nil {
		return ""
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.site
}

// Injections counts rules fired so far — exported as
// smsd_fault_injections_total.
func (i *Injector) Injections() uint64 {
	if i == nil {
		return 0
	}
	return i.injections.Load()
}

type ctxKey struct{}

// With attaches an injector to a context.
func With(ctx context.Context, i *Injector) context.Context {
	if i == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, i)
}

// From extracts the context's injector, nil when absent.
func From(ctx context.Context) *Injector {
	i, _ := ctx.Value(ctxKey{}).(*Injector)
	return i
}
