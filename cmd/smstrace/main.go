// Command smstrace is the trace-file toolchain: it captures workload
// traces into the repository's seekable columnar v2 format, converts
// between format versions, slices record ranges out of existing files,
// and inspects files via the O(1) footer index.
//
// Subcommands:
//
//	smstrace gen     -workload oltp-db2 -o trace.smst [-cpus N -seed S -length L]
//	smstrace gen     -workload oltp-db2 -store DIR            # capture into the smsd/engine trace tier
//	smstrace stat    -i trace.smst [-full]
//	smstrace dump    -i trace.smst [-n 20] [-skip N]
//	smstrace slice   -i trace.smst -o slice.smst -skip N [-n COUNT]
//	smstrace convert -i old.smst -o new.smst [-to v2]
//
// Files written with -store land at their content address
// (store.ForTrace), so any engine or smsd daemon over the same store
// replays them instead of regenerating — `gen -store` streams straight
// to disk and is the way to capture traces far larger than RAM.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errUsage marks command-line errors (exit code 2, like smsexp).
var errUsage = errors.New("usage error")

// run is the testable body of main; it returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch cmd := argv[0]; cmd {
	case "gen":
		err = cmdGen(argv[1:], stdout, stderr)
	case "stat":
		err = cmdStat(argv[1:], stdout, stderr)
	case "dump":
		err = cmdDump(argv[1:], stdout, stderr)
	case "slice":
		err = cmdSlice(argv[1:], stdout, stderr)
	case "convert":
		err = cmdConvert(argv[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stderr)
		return 0
	default:
		fmt.Fprintf(stderr, "smstrace: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, errUsage):
		fmt.Fprintln(stderr, "smstrace:", err)
		return 2
	default:
		fmt.Fprintln(stderr, "smstrace:", err)
		return 1
	}
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, `smstrace — trace-file toolchain (format v2: blocked, columnar, seekable)

usage:
  smstrace gen     -workload NAME (-o FILE | -store DIR) [-cpus N] [-seed S] [-length L] [-format v1|v2] [-block N]
  smstrace stat    -i FILE [-full]
  smstrace dump    -i FILE [-n COUNT] [-skip N]
  smstrace slice   -i FILE -o FILE -skip N [-n COUNT] [-block N]
  smstrace convert -i FILE -o FILE [-to v1|v2] [-block N]`)
}

// parseFlags runs fs over args, folding parse failures into errUsage.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	return nil
}

// newFlagSet builds a ContinueOnError flag set printing to stderr.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parseFormat maps -format / -to values to trace format versions.
func parseFormat(s string) (int, error) {
	switch s {
	case "v1", "1":
		return 1, nil
	case "v2", "2":
		return trace.Version2, nil
	default:
		return 0, fmt.Errorf("%w: unknown format %q (want v1 or v2)", errUsage, s)
	}
}

// recordWriter unifies the v1 and v2 writers for the copying commands.
type recordWriter interface {
	Write(trace.Record) error
	Count() uint64
}

// fileWriter opens path and returns a writer in the requested format
// plus a finish function that flushes/closes everything.
func fileWriter(path string, version int, hdr trace.Header) (recordWriter, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if version == 1 {
		w, err := trace.NewWriter(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, func() error {
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}, nil
	}
	w, err := trace.NewV2Writer(f, hdr)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, func() error {
		if err := w.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// copyRecords streams up to n records (n == 0: all) from src to w.
func copyRecords(src trace.Source, w recordWriter, n uint64) (uint64, error) {
	bs := trace.Batched(src)
	buf := make([]trace.Record, 4096)
	var copied uint64
	for n == 0 || copied < n {
		want := uint64(len(buf))
		if n != 0 && n-copied < want {
			want = n - copied
		}
		k := bs.NextBatch(buf[:want])
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			if err := w.Write(buf[i]); err != nil {
				return copied, err
			}
		}
		copied += uint64(k)
	}
	return copied, nil
}

func cmdGen(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("gen", stderr)
	name := fs.String("workload", "oltp-db2", "workload name")
	out := fs.String("o", "", "output file")
	storeDir := fs.String("store", "", "capture into the trace tier of this result store instead of a file")
	cpus := fs.Int("cpus", 4, "CPUs")
	seed := fs.Int64("seed", 1, "seed")
	length := fs.Uint64("length", 1_000_000, "accesses")
	format := fs.String("format", "v2", "output format (v1 or v2; -store requires v2)")
	block := fs.Int("block", 0, "records per v2 block (0 = default)")
	traceOut := fs.String("trace-out", "", "write capture-phase spans as Chrome trace-event JSON")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	version, err := parseFormat(*format)
	if err != nil {
		return err
	}
	if (*out == "") == (*storeDir == "") {
		return fmt.Errorf("%w: exactly one of -o or -store is required", errUsage)
	}
	if *storeDir != "" && version != trace.Version2 {
		return fmt.Errorf("%w: -store captures are always v2", errUsage)
	}
	w, err := workload.ByName(*name)
	if err != nil {
		return err
	}
	cfg := workload.Config{CPUs: *cpus, Seed: *seed, Length: *length}
	key := store.ForTrace(*name, cfg)
	hdr := trace.Header{
		CPUs:         cfg.Canonical().CPUs,
		Geometry:     mem.DefaultGeometry(),
		Workload:     *name,
		WorkloadHash: key,
		BlockRecords: *block,
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	// writeSpans is deferred work the happy paths share; a nil tracer
	// makes it a no-op.
	writeSpans := func() error {
		if tracer == nil {
			return nil
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		sink, err := st.BeginTrace(key, hdr)
		if err != nil {
			return err
		}
		src := w.Make(cfg)
		sp := tracer.Start("trace-generate", "smstrace", *name)
		if _, err := copyRecords(src, sink.W, 0); err != nil {
			sink.Abort()
			return err
		}
		sp.End()
		if err := sourceErr(src); err != nil {
			sink.Abort()
			return err
		}
		sp = tracer.Start("trace-commit", "smstrace", *name)
		if err := sink.Commit(); err != nil {
			return err
		}
		sp.End()
		fmt.Fprintf(stdout, "captured %d records into the trace tier at %s\nkey %s\n", sink.W.Count(), *storeDir, key)
		return writeSpans()
	}

	tw, finish, err := fileWriter(*out, version, hdr)
	if err != nil {
		return err
	}
	src := w.Make(cfg)
	sp := tracer.Start("trace-generate", "smstrace", *name)
	if _, err := copyRecords(src, tw, 0); err != nil {
		finish()
		return err
	}
	if err := sourceErr(src); err != nil {
		finish()
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	sp.End()
	fmt.Fprintf(stdout, "wrote %d records to %s (%s)\n", tw.Count(), *out, *format)
	return writeSpans()
}

func cmdStat(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("stat", stderr)
	in := fs.String("i", "trace.smst", "input file")
	full := fs.Bool("full", false, "decode every record for content statistics (v1 always scans)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	info, err := trace.Stat(*in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "file            %s\n", info.Path)
	fmt.Fprintf(stdout, "format          v%d\n", info.Version)
	fmt.Fprintf(stdout, "bytes           %d\n", info.Bytes)
	if info.Version == trace.Version2 {
		// All of this comes from the header and footer index: O(1),
		// no record decoding, however large the file.
		fmt.Fprintf(stdout, "records         %d (%.1f B/record)\n", info.Records,
			float64(info.Bytes)/float64(max64(info.Records, 1)))
		fmt.Fprintf(stdout, "blocks          %d\n", info.Blocks)
		fmt.Fprintf(stdout, "cpus            %d\n", info.CPUs)
		if info.Geometry != (mem.Geometry{}) {
			fmt.Fprintf(stdout, "geometry        %v\n", info.Geometry)
		}
		if info.Workload != "" {
			fmt.Fprintf(stdout, "workload        %s\n", info.Workload)
		}
		if info.WorkloadHash != "" {
			fmt.Fprintf(stdout, "workload hash   %s\n", info.WorkloadHash)
		}
	}
	if !*full && info.Version == trace.Version2 {
		return nil
	}

	stream, closer, err := trace.OpenStream(*in)
	if err != nil {
		return err
	}
	defer closer.Close()
	geo := mem.DefaultGeometry()
	if info.Geometry != (mem.Geometry{}) {
		geo = info.Geometry
	}
	src := trace.Batched(stream)
	var total, writes uint64
	cpus := map[uint8]uint64{}
	pcs := map[uint64]uint64{}
	regions := map[uint64]bool{}
	var firstSeq, lastSeq uint64
	buf := make([]trace.Record, 4096)
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, rec := range buf[:n] {
			if total == 0 {
				firstSeq = rec.Seq
			}
			lastSeq = rec.Seq
			total++
			if rec.IsWrite() {
				writes++
			}
			cpus[rec.CPU]++
			pcs[rec.PC]++
			regions[geo.RegionTag(rec.Addr)] = true
		}
	}
	if err := sourceErr(src); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "records         %d (%d writes, %.1f%%)\n", total, writes, 100*float64(writes)/float64(max64(total, 1)))
	fmt.Fprintf(stdout, "instructions    %d\n", lastSeq-firstSeq)
	fmt.Fprintf(stdout, "cpus seen       %d\n", len(cpus))
	fmt.Fprintf(stdout, "distinct PCs    %d\n", len(pcs))
	fmt.Fprintf(stdout, "distinct %dB regions %d\n", geo.RegionSize(), len(regions))
	return nil
}

// seeker is the optional fast-skip capability of v2 sources.
type seeker interface{ Seek(rec uint64) error }

func cmdDump(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("dump", stderr)
	in := fs.String("i", "trace.smst", "input file")
	n := fs.Int("n", 20, "records to print (0 = all)")
	skip := fs.Uint64("skip", 0, "records to skip first (index-backed seek on v2 files)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	src, closer, err := trace.OpenStream(*in)
	if err != nil {
		return err
	}
	defer closer.Close()
	if *skip > 0 {
		if s, ok := src.(seeker); ok {
			// v2: one binary search + one block decode, however deep.
			if err := s.Seek(*skip); err != nil {
				return err
			}
		} else {
			trace.Skip(src, *skip)
		}
	}
	count := 0
	for *n == 0 || count < *n {
		rec, ok := src.Next()
		if !ok {
			break
		}
		fmt.Fprintln(stdout, rec)
		count++
	}
	return sourceErr(src)
}

func cmdSlice(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("slice", stderr)
	in := fs.String("i", "", "input file")
	out := fs.String("o", "", "output file (always v2)")
	skip := fs.Uint64("skip", 0, "first record of the slice")
	n := fs.Uint64("n", 0, "records in the slice (0 = through end of trace)")
	block := fs.Int("block", 0, "records per v2 block (0 = default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("%w: slice needs -i and -o", errUsage)
	}
	info, err := trace.Stat(*in)
	if err != nil {
		return err
	}
	src, closer, err := trace.OpenStream(*in)
	if err != nil {
		return err
	}
	defer closer.Close()
	if *skip > 0 {
		if s, ok := src.(seeker); ok {
			if err := s.Seek(*skip); err != nil {
				return err
			}
		} else {
			trace.Skip(src, *skip)
		}
	}
	hdr := headerFromInfo(info)
	// A slice is not the capture it came from: carrying the source's
	// canonical hash would let a fragment impersonate the full trace
	// (e.g. in the store's content-addressed tier).
	hdr.WorkloadHash = ""
	hdr.BlockRecords = *block
	tw, finish, err := fileWriter(*out, trace.Version2, hdr)
	if err != nil {
		return err
	}
	copied, err := copyRecords(src, tw, *n)
	if err != nil {
		finish()
		return err
	}
	if err := sourceErr(src); err != nil {
		finish()
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sliced records [%d,%d) of %s into %s\n", *skip, *skip+copied, *in, *out)
	return nil
}

func cmdConvert(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("convert", stderr)
	in := fs.String("i", "", "input file (v1 or v2)")
	out := fs.String("o", "", "output file")
	to := fs.String("to", "v2", "output format (v1 or v2)")
	block := fs.Int("block", 0, "records per v2 block (0 = default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	version, err := parseFormat(*to)
	if err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("%w: convert needs -i and -o", errUsage)
	}
	info, err := trace.Stat(*in)
	if err != nil {
		return err
	}
	src, closer, err := trace.OpenStream(*in)
	if err != nil {
		return err
	}
	defer closer.Close()
	hdr := headerFromInfo(info)
	hdr.BlockRecords = *block
	tw, finish, err := fileWriter(*out, version, hdr)
	if err != nil {
		return err
	}
	if _, err := copyRecords(src, tw, 0); err != nil {
		finish()
		return err
	}
	if err := sourceErr(src); err != nil {
		finish()
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "converted %d records: %s (v%d) -> %s (%s)\n",
		tw.Count(), *in, info.Version, *out, *to)
	return nil
}

// headerFromInfo carries a source file's self-description into a new file.
func headerFromInfo(info trace.FileInfo) trace.Header {
	return trace.Header{
		CPUs:         info.CPUs,
		Geometry:     info.Geometry,
		Workload:     info.Workload,
		WorkloadHash: info.WorkloadHash,
	}
}

// sourceErr surfaces a source's latched decode error, if it has one.
func sourceErr(src trace.Source) error {
	if e, ok := src.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
