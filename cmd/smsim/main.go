// Command smsim runs one workload through the simulated memory system
// with a chosen prefetcher and prints miss, coverage and predictor
// statistics. It is the quickest way to poke at a single configuration.
//
// Examples:
//
//	smsim -workload oltp-db2 -prefetcher sms
//	smsim -workload dss-q1 -prefetcher ghb -ghb-entries 16384
//	smsim -workload sparse -prefetcher sms -region 4096 -pht 0
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ghb"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"

	// Registered through the sim registry alone; imported so the scheme
	// is selectable here even if no library path pulls it in.
	_ "repro/internal/nextline"
)

func main() {
	var (
		name       = flag.String("workload", "oltp-db2", "workload name (see -list)")
		list       = flag.Bool("list", false, "list workloads and exit")
		prefetcher = flag.String("prefetcher", "none", "prefetcher name: "+strings.Join(sim.Names(), " | "))
		cpus       = flag.Int("cpus", 4, "simulated processors")
		seed       = flag.Int64("seed", 1, "workload seed")
		length     = flag.Uint64("length", 1_200_000, "trace length in accesses (half warm-up)")
		region     = flag.Int("region", mem.DefaultRegionSize, "spatial region size in bytes")
		index      = flag.String("index", "PC+off", "SMS index: Addr | PC+addr | PC | PC+off")
		pht        = flag.Int("pht", core.DefaultPHTEntries, "PHT entries (0 = unbounded)")
		ghbEntries = flag.Int("ghb-entries", 256, "GHB history buffer entries")
		storeDir   = flag.String("store", "", "persistent result store directory (shared with smsexp/smsd)")
		runPar     = flag.Int("run-parallel", 0, "region-sharded simulation lanes inside the run (0/1 = serial; results are bit-identical)")
		ahead      = flag.Int("decode-ahead", 0, "decode the trace this many batches ahead of the simulator (0 = inline)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
		traceOut   = flag.String("trace-out", "", "write run-phase spans as Chrome trace-event JSON (load via chrome://tracing or ui.perfetto.dev)")

		sampleWindow   = flag.Uint64("sample-window", 0, "SMARTS sampling: detailed window length in records (0 = exact mode)")
		sampleInterval = flag.Uint64("sample-interval", 0, "SMARTS sampling: records per interval (0 = 50x window)")
		sampleWarmup   = flag.Uint64("sample-warmup", 0, "SMARTS sampling: functional-warming records before each window (0 = 4x window)")
		confidence     = flag.Float64("confidence", 0, "SMARTS sampling: confidence level for reported intervals (0 = 0.95)")
	)
	flag.Parse()

	// Profiling hooks: perf work on the simulator starts from a profile,
	// not a guess (see README "Performance"). The CPU profile covers the
	// whole run including trace generation; the heap profile is taken
	// after the run with an explicit GC so it shows retained structures,
	// not transient garbage.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "smsim: writing heap profile:", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-12s %-10s %s\n", w.Name, w.Group, w.Description)
		}
		return
	}

	w, err := workload.ByName(*name)
	if err != nil {
		fatal(err)
	}
	idx, err := core.ParseIndexKind(*index)
	if err != nil {
		fatal(err)
	}
	geo, err := mem.NewGeometry(mem.DefaultBlockSize, *region)
	if err != nil {
		fatal(err)
	}
	phtEntries := *pht
	if phtEntries == 0 {
		phtEntries = -1
	}

	opts := exp.Options{CPUs: *cpus, Seed: *seed, Length: *length, RunParallel: *runPar, DecodeAhead: *ahead}
	cfg := sim.Config{
		Coherence:      opts.MemorySystem(64),
		Geometry:       geo,
		WarmupAccesses: *length / 2,
		SMS:            core.Config{Index: idx, PHTEntries: phtEntries},
		GHB:            ghb.Config{HistoryEntries: *ghbEntries},
		Sampling: sim.SamplingConfig{
			WindowRecords:   *sampleWindow,
			IntervalRecords: *sampleInterval,
			WarmupRecords:   *sampleWarmup,
			Confidence:      *confidence,
		},
	}
	if err := cfg.Sampling.Validate(); err != nil {
		fatal(err)
	}
	pfName := strings.ToLower(*prefetcher)
	if pfName == "" {
		pfName = "none"
	}
	cfg.PrefetcherName = pfName

	// Running through the experiment session gives smsim the same store
	// flow and the same key derivation as smsexp and the smsd daemon: an
	// identical earlier run from any of the three is served from disk.
	// The signal context makes Ctrl-C stop the simulation mid-trace
	// through the engine's cancellation path.
	session := exp.NewSession(opts)
	if err := exp.AttachStore(session, *storeDir); err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	res, err := session.Run(ctx, w.Name, cfg)
	if err != nil {
		fatal(err)
	}
	if tracer != nil {
		if err := writeChromeTrace(*traceOut, tracer); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("workload        %s (%s)\n", w.Name, w.Group)
	fmt.Printf("prefetcher      %s\n", pfName)
	if session.Store() != nil {
		state := "miss (simulated and stored)"
		if session.Simulations() == 0 {
			state = "hit (served from store)"
		}
		fmt.Printf("store           %s, key %s\n", state, session.RunKey(w.Name, cfg)[:12])
	}
	fmt.Printf("accesses        %d (reads %d, writes %d)\n", res.Accesses, res.Reads, res.Writes)
	fmt.Printf("L1 read misses  %d (%.2f%% of reads)\n", res.L1ReadMisses, 100*res.L1MissesPerAccess())
	fmt.Printf("off-chip reads  %d (%.2f%% of reads)\n", res.OffChipReadMisses, 100*res.OffChipMissesPerAccess())
	if s := res.Sampling; s != nil {
		fmt.Printf("sampling        %d windows of %d records (interval %d, warmup %d), %.1f%% simulated\n",
			s.Windows, s.Config.WindowRecords, s.Config.IntervalRecords, s.Config.WarmupRecords,
			100*s.SimulatedFraction())
		for _, m := range s.Metrics {
			fmt.Printf("  %-32s %.5f ± %.5f (std %.5f) at %.0f%% confidence\n",
				m.Name, m.Mean, m.HalfWidth, m.StdDev, 100*s.Config.Confidence)
		}
	}
	fmt.Printf("coherence       %d off-chip read misses (%d false sharing)\n", res.CoherenceReadMisses, res.FalseSharingReadMisses)
	if pfName != "none" {
		fmt.Printf("covered L1      %d\n", res.L1CoveredMisses)
		fmt.Printf("covered offchip %d\n", res.OffChipCoveredMisses)
		fmt.Printf("streams issued  %d (overpredictions %d, %.1f%% of streams)\n",
			res.StreamRequests, res.Overpredictions, 100*stats.Ratio(res.Overpredictions, res.StreamRequests))
	}
	for cpu, st := range res.SMSStats {
		fmt.Printf("SMS[cpu%d]       triggers=%d learned=%d predictions=%d pht-hit=%.1f%%\n",
			cpu, st.Triggers, st.PatternsLearned, st.Predictions,
			100*stats.Ratio(st.PHT.Hits, st.PHT.Lookups))
	}
	if pfName == "sms" && *pht > 0 {
		budget := core.PHTStorage(geo, *pht, core.DefaultPHTAssoc)
		agt := core.AGTStorage(geo, core.DefaultFilterEntries, core.DefaultAccumEntries)
		fmt.Printf("hardware budget per CPU: PHT %.1fKiB + AGT %.1fKiB\n", budget.KiB(), agt.KiB())
	}
	for cpu, st := range res.GHBStats {
		fmt.Printf("GHB[cpu%d]       trains=%d matches=%d prefetches=%d\n", cpu, st.Trains, st.Matches, st.Prefetches)
	}
	for cpu, st := range res.PrefetcherStats {
		// Rendered as JSON, normalized through a generic value (maps
		// marshal with sorted keys), so a typed struct (fresh run) and
		// the map a store hit decodes to print identically.
		data, err := json.Marshal(st)
		if err == nil {
			var norm any
			if json.Unmarshal(data, &norm) == nil {
				if d, err := json.Marshal(norm); err == nil {
					data = d
				}
			}
			fmt.Printf("%s[cpu%d]  %s\n", pfName, cpu, data)
			continue
		}
		fmt.Printf("%s[cpu%d]  %+v\n", pfName, cpu, st)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smsim:", err)
	os.Exit(1)
}

// writeChromeTrace dumps the run's spans as Chrome trace-event JSON.
func writeChromeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
