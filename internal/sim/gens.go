package sim

import (
	"repro/internal/mem"
	"repro/internal/stats"
)

// genTracker follows spatial region generations at one cache level for one
// CPU, with unbounded state — it is the measurement instrument behind the
// Fig. 4 oracle opportunity study and the Fig. 5 density breakdown, not a
// hardware structure.
type genTracker struct {
	geo  mem.Geometry
	live map[uint64]*genState
}

type genState struct {
	accessed mem.Pattern // blocks touched during the generation
	missed   mem.Pattern // blocks that missed during the generation
	measured bool        // any post-warm-up miss recorded
}

func newGenTracker(geo mem.Geometry) *genTracker {
	return &genTracker{geo: geo, live: make(map[uint64]*genState)}
}

// newDensityHistogram builds the Fig. 5 bucket layout: 1, 2-3, 4-7, 8-15,
// 16-23, 24-31, 32 blocks.
func newDensityHistogram() *stats.Histogram {
	return stats.MustHistogram(1, 3, 7, 15, 23, 31)
}

// access records a reference to the region; miss marks whether it missed
// at this level.
func (t *genTracker) access(a mem.Addr, miss, warm bool) {
	tag := t.geo.RegionTag(a)
	g := t.live[tag]
	if g == nil {
		w := t.geo.BlocksPerRegion()
		g = &genState{accessed: mem.NewPattern(w), missed: mem.NewPattern(w)}
		t.live[tag] = g
	}
	off := t.geo.RegionOffset(a)
	g.accessed.Set(off)
	if miss && warm {
		// Only post-warm-up misses are scored, so a generation spanning
		// the warm-up boundary contributes only its measured misses.
		g.missed.Set(off)
		g.measured = true
	}
}

// remove observes the eviction/invalidation of a block; if the block was
// accessed during the live generation, the generation ends and is scored.
func (t *genTracker) remove(a mem.Addr, warm bool, density *stats.Histogram, oracle *uint64) {
	tag := t.geo.RegionTag(a)
	g := t.live[tag]
	if g == nil {
		return
	}
	if !g.accessed.Test(t.geo.RegionOffset(a)) {
		return
	}
	delete(t.live, tag)
	t.score(g, warm, density, oracle)
}

// flush ends all live generations at trace end.
func (t *genTracker) flush(density *stats.Histogram, oracle *uint64) {
	for tag, g := range t.live {
		delete(t.live, tag)
		t.score(g, true, density, oracle)
	}
}

// score accounts a finished generation: the oracle incurs one miss per
// generation with at least one (post-warm-up) miss, and the density
// histogram attributes the generation's misses to its density bucket.
func (t *genTracker) score(g *genState, warm bool, density *stats.Histogram, oracle *uint64) {
	if !warm || !g.measured {
		return
	}
	n := uint64(g.missed.PopCount())
	if n == 0 {
		return
	}
	density.Observe(n, n)
	*oracle++
}
