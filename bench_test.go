// Repository-level benchmark harness: one benchmark per table and figure
// in the paper's evaluation section. Each benchmark regenerates its
// figure's dataset end to end (trace generation → simulation → metric)
// on an abbreviated configuration and reports the figure's headline
// numbers as benchmark metrics.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-length figures (the numbers recorded in EXPERIMENTS.md) come from
// `go run ./cmd/smsexp all`.
package repro_test

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ghb"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/stride"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchOptions returns small-but-meaningful experiment options; each
// benchmark builds a fresh session so cached results are not re-counted.
func benchOptions() exp.Options {
	return exp.Options{CPUs: 2, Seed: 1, Length: 120_000}
}

func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		if out := exp.Table1(s); out == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig4BlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		res, err := exp.Fig4(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: OLTP L2 opportunity at 8kB regions (the paper's
		// motivation: opportunity grows with region size).
		for _, row := range res.Rows {
			if row.Group == workload.GroupOLTP && row.Size == 8192 {
				b.ReportMetric(row.L2Opportunity, "oltp-l2-opportunity-8k")
			}
		}
	}
}

func BenchmarkFig5Density(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		res, err := exp.Fig5(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 22 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func BenchmarkFig6Indexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		res, err := exp.Fig6(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Group == workload.GroupDSS && row.Index == core.IndexPCOffset {
				b.ReportMetric(100*row.Coverage.Covered, "dss-pcoff-coverage-%")
			}
		}
	}
}

func BenchmarkFig7PHTStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		if _, err := exp.Fig7(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Training(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Session construction is excluded from the timed region: its
		// allocation count varies run to run (map growth, pool reuse),
		// which made identical commits record different allocs/op in
		// BENCH_history.jsonl. The figure computation is the thing being
		// measured and gated.
		b.StopTimer()
		s := exp.NewSession(benchOptions())
		b.StartTimer()
		res, err := exp.Fig8(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Group == workload.GroupOLTP && row.Train == exp.TrainDS {
				b.ReportMetric(100*row.Coverage.Uncovered, "oltp-ds-uncovered-%")
			}
		}
	}
}

func BenchmarkFig9TrainingStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		if _, err := exp.Fig9(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10RegionSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		if _, err := exp.Fig10(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAGTSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		if _, err := exp.AGTSizing(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11VsGHB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		res, err := exp.Fig11(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Workload == "sparse" && row.Variant == exp.VariantSMS {
				b.ReportMetric(100*row.Coverage.Covered, "sparse-sms-coverage-%")
			}
		}
	}
}

func BenchmarkFig12Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		res, err := exp.Fig12(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoMean, "geomean-speedup")
	}
}

func BenchmarkFig13Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		res, err := exp.Fig12(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		if res.RenderBreakdown() == "" {
			b.Fatal("empty breakdown")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSession(benchOptions())
		if _, err := exp.Ablate(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureStore measures the cost of a figure regeneration against
// a cold store (every simulation runs, results are persisted) versus a
// warm one (the figure is a single store hit, zero simulations) — the gap
// is what the persistent store buys repeated smsexp/smsd invocations.
func BenchmarkFigureStore(b *testing.B) {
	const figure = "fig8"
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			s := exp.NewSession(benchOptions())
			s.SetStore(st)
			b.StartTimer()
			if _, err := s.Figure(context.Background(), figure); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		dir := b.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		warm := exp.NewSession(benchOptions())
		warm.SetStore(st)
		if _, err := warm.Figure(context.Background(), figure); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh store handle and session per iteration models a new
			// process hitting the same store directory.
			st, err := store.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			s := exp.NewSession(benchOptions())
			s.SetStore(st)
			if _, err := s.Figure(context.Background(), figure); err != nil {
				b.Fatal(err)
			}
			if s.Simulations() != 0 {
				b.Fatalf("warm store ran %d simulations", s.Simulations())
			}
		}
	})
}

// ---- component microbenchmarks ----

func BenchmarkSMSAccess(b *testing.B) {
	sms := core.MustNew(core.Config{})
	geo := sms.Geometry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := mem.Addr(uint64(i*64) & 0xFFFFFF)
		sms.Access(0x400100+uint64(i%8)*4, addr)
		if i%7 == 0 {
			sms.BlockRemoved(geo.BlockAddr(addr))
		}
		sms.NextStreamRequests(2)
	}
}

func BenchmarkGHBTrain(b *testing.B) {
	g := ghb.MustNew(ghb.Config{HistoryEntries: 16384})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Train(0x400100+uint64(i%16)*4, mem.Addr(uint64(i)*64))
	}
}

func BenchmarkStrideTrain(b *testing.B) {
	p := stride.MustNew(stride.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Train(0x400100+uint64(i%16)*4, mem.Addr(uint64(i)*128))
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// End-to-end records/second through the batched hot path (the loop
	// RunContext runs): batched trace generation feeding the coherent
	// hierarchy with SMS attached, on the heaviest-interleaving
	// workload. ns/op is ns/record. A steady-state prewarm lets the
	// tables reach their working-set size so the measured loop shows
	// the zero-allocation regime the CI gate asserts.
	w, err := workload.ByName("oltp-oracle")
	if err != nil {
		b.Fatal(err)
	}
	runner := sim.MustNewRunner(sim.Config{PrefetcherName: "sms"})
	src := trace.Batched(w.Make(workload.Config{CPUs: 4, Seed: 1, Length: 1 << 62}))
	batch := make([]trace.Record, sim.DefaultBatchRecords)
	step := func(records int) {
		for records > 0 {
			n := len(batch)
			if n > records {
				n = records
			}
			n = src.NextBatch(batch[:n])
			if n == 0 {
				b.Fatal("source exhausted")
			}
			for i := range batch[:n] {
				runner.Step(batch[i])
			}
			records -= n
		}
	}
	step(500_000) // prewarm to steady state
	b.ReportAllocs()
	b.ResetTimer()
	step(b.N)
}

func BenchmarkSampledThroughput(b *testing.B) {
	// Sampled-mode records/second through RunContext: an in-memory
	// (seekable) replay of the same workload as SimulatorThroughput,
	// with SMARTS sampling skipping the cold gaps via Seek. ns/op is
	// ns per consumed trace record, so the ratio to
	// BenchmarkSimulatorThroughput is the sampled-mode speedup on
	// seekable sources. The window schedule is per-source, so one
	// runner consumes the corpus repeatedly; the measured loop must
	// stay allocation-free per record (the CI gate asserts it — the
	// few fixed allocations per RunContext call amortize to zero).
	w, err := workload.ByName("oltp-oracle")
	if err != nil {
		b.Fatal(err)
	}
	const corpus = 1 << 20
	recs := trace.Collect(w.Make(workload.Config{CPUs: 4, Seed: 1, Length: corpus}), 0)
	runner := sim.MustNewRunner(sim.Config{
		PrefetcherName: "sms",
		Sampling:       sim.SamplingConfig{WindowRecords: 2048, IntervalRecords: 16_384, WarmupRecords: 4096},
	})
	run := func(records int) {
		for records > 0 {
			n := records
			if n > len(recs) {
				n = len(recs)
			}
			if _, err := runner.RunContext(context.Background(), trace.NewSliceSource(recs[:n])); err != nil {
				b.Fatal(err)
			}
			records -= n
		}
	}
	run(500_000) // prewarm to steady state
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N)
}

// BenchmarkPipelinedThroughput measures the end-to-end RunContext hot
// path — the exact route engine runs take — on the baseline
// (prefetcher-free) configuration that is eligible for lane sharding,
// comparing the serial path against pipelined decode and region-sharded
// lanes. ns/op is ns/record. All legs produce bit-identical Results (the
// sim suite asserts it); this benchmark measures only what each costs.
//
// Prefetch-stage and lane-runner setup reallocates per RunContext call,
// so the pipelined legs are not 0 allocs/op like the Step-loop
// benchmarks. The corpus is large enough to amortize that setup to
// ~10^-3 allocations per record; the reported allocs/record metric is
// the amortized figure, and scripts/bench.sh --check gates it at ≤0.01
// (the integer allocs/op column truncates and cannot express it).
func BenchmarkPipelinedThroughput(b *testing.B) {
	w, err := workload.ByName("oltp-oracle")
	if err != nil {
		b.Fatal(err)
	}
	const corpus = 1 << 21
	recs := trace.Collect(w.Make(workload.Config{CPUs: 4, Seed: 1, Length: corpus}), 0)
	legs := []struct {
		name string
		exec sim.Exec
	}{
		// Each leg isolates one mechanism: decode-ahead pays off against
		// sources that decode on demand (generators, disk traces) and is
		// pure copy overhead on this in-memory corpus, so the lanes legs
		// run without it — their fan-out reads zero-copy views directly.
		{"serial", sim.Exec{}},
		{"ahead2", sim.Exec{DecodeAhead: 2}},
		{"lanes2", sim.Exec{Lanes: 2}},
		{"lanes8", sim.Exec{Lanes: 8}},
	}
	for _, leg := range legs {
		b.Run(leg.name, func(b *testing.B) {
			runner := sim.MustNewRunner(sim.Config{})
			runner.SetExec(leg.exec)
			run := func(records int) {
				for records > 0 {
					n := records
					if n > len(recs) {
						n = len(recs)
					}
					if _, err := runner.RunContext(context.Background(), trace.NewSliceSource(recs[:n])); err != nil {
						b.Fatal(err)
					}
					records -= n
				}
			}
			run(corpus / 2) // prewarm: tables reach working-set size
			b.ReportAllocs()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			run(b.N)
			b.StopTimer()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N), "allocs/record")
		})
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	// Batched generation throughput; ns/op is ns/record.
	w, err := workload.ByName("oltp-db2")
	if err != nil {
		b.Fatal(err)
	}
	src := trace.Batched(w.Make(workload.Config{CPUs: 4, Seed: 1, Length: 1 << 62}))
	batch := make([]trace.Record, sim.DefaultBatchRecords)
	b.ReportAllocs()
	b.ResetTimer()
	left := b.N
	for left > 0 {
		n := len(batch)
		if n > left {
			n = left
		}
		if n = src.NextBatch(batch[:n]); n == 0 {
			b.Fatal("source exhausted")
		}
		left -= n
	}
}

// BenchmarkTraceReplay is the replay half of the replay-vs-generate
// comparison (BenchmarkTraceGeneration is the other half, over the same
// workload): records/second decoded from an mmap'd v2 trace file
// through the zero-copy view path — the stream the engine's disk trace
// tier feeds to the simulator. ns/op is ns/record; steady state must
// run at 0 allocs/op (CI gate).
func BenchmarkTraceReplay(b *testing.B) {
	w, err := workload.ByName("oltp-db2")
	if err != nil {
		b.Fatal(err)
	}
	const records = 2_000_000
	path := filepath.Join(b.TempDir(), "bench.smst")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	tw, err := trace.NewV2Writer(f, trace.Header{CPUs: 4, Workload: "oltp-db2"})
	if err != nil {
		b.Fatal(err)
	}
	src := trace.Batched(w.Make(workload.Config{CPUs: 4, Seed: 1, Length: records}))
	buf := make([]trace.Record, sim.DefaultBatchRecords)
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		if err := tw.WriteBatch(buf[:n]); err != nil {
			b.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	m, err := trace.OpenMapped(path)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	var sink uint64
	replay := func(n int) {
		for n > 0 {
			v := m.NextView(sim.DefaultBatchRecords)
			if len(v) == 0 {
				m.Reset()
				continue
			}
			sink += v[len(v)-1].Seq
			n -= len(v)
		}
	}
	replay(records) // prewarm: fault the mapping in, size the decode buffer
	b.ReportAllocs()
	b.ResetTimer()
	replay(b.N)
	if sink == 0 {
		b.Fatal("replay produced nothing")
	}
}

func BenchmarkTraceIO(b *testing.B) {
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = trace.Record{Seq: uint64(i), PC: 0x400100, Addr: mem.Addr(i * 64)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		tw, err := trace.NewWriter(&sink)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := tw.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := tw.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
