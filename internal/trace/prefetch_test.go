package trace

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mem"
)

// seqSource yields n records with recognizable payloads, optionally
// latching an error at exhaustion (like a corrupt trace artifact).
type seqSource struct {
	n    uint64
	i    uint64
	fail error
}

func (s *seqSource) Next() (Record, bool) {
	if s.i >= s.n {
		return Record{}, false
	}
	r := Record{Seq: s.i, PC: s.i * 3, Addr: mem.Addr(s.i * 64), CPU: uint8(s.i % 4)}
	s.i++
	return r, true
}

func (s *seqSource) Err() error {
	if s.i >= s.n {
		return s.fail
	}
	return nil
}

// infiniteSource never ends; teardown tests use it so only an explicit
// Close can stop the decoder.
type infiniteSource struct{ i uint64 }

func (s *infiniteSource) Next() (Record, bool) {
	s.i++
	return Record{Seq: s.i, Addr: mem.Addr(s.i * 64)}, true
}

func TestPrefetcherYieldsExactSequence(t *testing.T) {
	const n = 10_000
	for _, tc := range []struct{ depth, batch, view int }{
		{2, 512, 512},
		{2, 512, 100}, // views smaller than batches: offset path
		{4, 64, 4096}, // views larger than batches
		{8, 1000, 333},
	} {
		p := NewPrefetcher(&seqSource{n: n}, tc.depth, tc.batch)
		var got uint64
		for {
			v := p.NextView(tc.view)
			if len(v) == 0 {
				break
			}
			if len(v) > tc.view {
				t.Fatalf("view of %d records exceeds max %d", len(v), tc.view)
			}
			for _, r := range v {
				if r.Seq != got {
					t.Fatalf("depth=%d batch=%d view=%d: record %d has Seq %d", tc.depth, tc.batch, tc.view, got, r.Seq)
				}
				if r.Addr != mem.Addr(got*64) || r.CPU != uint8(got%4) {
					t.Fatalf("record %d payload corrupted: %+v", got, r)
				}
				got++
			}
		}
		if got != n {
			t.Fatalf("drained %d records, want %d", got, n)
		}
		if err := p.Err(); err != nil {
			t.Fatalf("clean stream latched err %v", err)
		}
		p.Close()
	}
}

func TestPrefetcherNextMatchesNextView(t *testing.T) {
	p := NewPrefetcher(&seqSource{n: 1000}, 2, 64)
	defer p.Close()
	var want uint64
	for {
		// Alternate the two consumption styles over one pipeline.
		if want%3 == 0 {
			r, ok := p.Next()
			if !ok {
				break
			}
			if r.Seq != want {
				t.Fatalf("Next: Seq %d, want %d", r.Seq, want)
			}
			want++
			continue
		}
		v := p.NextView(7)
		if len(v) == 0 {
			break
		}
		for _, r := range v {
			if r.Seq != want {
				t.Fatalf("NextView: Seq %d, want %d", r.Seq, want)
			}
			want++
		}
	}
	if want != 1000 {
		t.Fatalf("drained %d records, want 1000", want)
	}
}

// TestPrefetcherViewStableUntilNextCall pins the batch-aliasing
// contract: while the consumer holds a view, the decoder — which keeps
// running ahead — must never rewrite it. The decoder here is given every
// chance to misbehave: tiny batches, a deep ring, and a yield while the
// view is held.
func TestPrefetcherViewStableUntilNextCall(t *testing.T) {
	p := NewPrefetcher(&seqSource{n: 100_000}, 8, 128)
	defer p.Close()
	var want uint64
	for {
		v := p.NextView(128)
		if len(v) == 0 {
			break
		}
		snapshot := append([]Record(nil), v...)
		time.Sleep(50 * time.Microsecond) // let the decoder run ahead
		for i := range v {
			if v[i] != snapshot[i] {
				t.Fatalf("held view mutated at %d: %+v vs %+v", i, v[i], snapshot[i])
			}
			if v[i].Seq != want {
				t.Fatalf("Seq %d, want %d", v[i].Seq, want)
			}
			want++
		}
	}
}

// TestPrefetcherLatchedDecodeError pins the PR 5 semantics through the
// pipeline: a source that dies mid-stream surfaces its Err after
// exhaustion, exactly like the unwrapped source would.
func TestPrefetcherLatchedDecodeError(t *testing.T) {
	fail := errors.New("boom: torn record")
	p := NewPrefetcher(&seqSource{n: 5000, fail: fail}, 2, 256)
	defer p.Close()
	var n int
	for {
		if v := p.NextView(256); len(v) == 0 {
			break
		} else {
			n += len(v)
		}
	}
	if n != 5000 {
		t.Fatalf("drained %d records, want 5000", n)
	}
	if err := p.Err(); !errors.Is(err, fail) {
		t.Fatalf("Err = %v, want the latched source error", err)
	}
}

// TestPrefetcherCloseMidDecode is the cancellation teardown: the
// consumer abandons an endless stream mid-way and Close must stop and
// join the decoder goroutine (Close blocks until the decoder exits, so
// returning at all is the proof; the timeout guards a regression).
func TestPrefetcherCloseMidDecode(t *testing.T) {
	p := NewPrefetcher(&infiniteSource{}, 2, 1024)
	for i := 0; i < 3; i++ {
		if v := p.NextView(1024); len(v) == 0 {
			t.Fatal("infinite source reported exhaustion")
		}
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not join the decoder goroutine")
	}
	if err := p.Err(); err != nil {
		t.Fatalf("early Close latched err %v", err)
	}
}

// TestPrefetcherDecoderExitsWhenConsumerStops models the simulator
// erroring out without draining: the out ring is full, the decoder is
// blocked mid-hand-off, and Close alone must unblock and stop it.
// Close is also idempotent.
func TestPrefetcherDecoderExitsWhenConsumerStops(t *testing.T) {
	p := NewPrefetcher(&infiniteSource{}, 2, 64)
	// Never consume: give the decoder time to fill every ring slot and
	// block on the hand-off.
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() { p.Close(); p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not stop a hand-off-blocked decoder")
	}
}

// TestPrefetcherCancelHandoffStress interleaves Close with live batch
// hand-offs over and over; under -race it proves the teardown never
// races the decoder's buffer writes against the consumer's reads.
func TestPrefetcherCancelHandoffStress(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 20
	}
	for i := 0; i < iters; i++ {
		p := NewPrefetcher(&infiniteSource{}, 2+i%3, 64)
		stop := make(chan struct{})
		go func() {
			// Consumer: hammer views until the pipeline is torn down.
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := p.NextView(64 + i%64); len(v) == 0 {
					return
				}
			}
		}()
		if i%2 == 0 {
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
		}
		p.Close()
		close(stop)
	}
}

func TestPrefetcherStallCountersMove(t *testing.T) {
	// A consumer that outruns a tiny-batched source must observe sim
	// stalls; a never-draining consumer must impose decode stalls.
	p := NewPrefetcher(&seqSource{n: 100_000}, 2, 32)
	for {
		if v := p.NextView(4096); len(v) == 0 {
			break
		}
	}
	p.Close()
	_, sim := p.Stats()
	if sim == 0 {
		t.Error("fast consumer over a slow decoder recorded no sim stalls")
	}

	p2 := NewPrefetcher(&infiniteSource{}, 2, 32)
	time.Sleep(5 * time.Millisecond)
	p2.Close()
	dec, _ := p2.Stats()
	if dec == 0 {
		t.Error("blocked hand-off recorded no decode stalls")
	}
}
