package exp

import (
	"fmt"
	"sort"

	"repro/internal/store"
)

// Runner regenerates one experiment (a figure or table of the paper) as
// rendered text. The smsexp CLI and the smsd daemon both dispatch through
// this registry.
type Runner func(*Session) (string, error)

type renderable interface{ Render() string }

func rendered(r renderable, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// Experiments returns the experiment registry: name → runner for every
// figure and table reproduced from the paper.
func Experiments() map[string]Runner {
	return map[string]Runner{
		"table1": func(s *Session) (string, error) { return Table1(s), nil },
		"fig4": func(s *Session) (string, error) {
			r, err := Fig4(s)
			return rendered(r, err)
		},
		"fig5": func(s *Session) (string, error) {
			r, err := Fig5(s)
			return rendered(r, err)
		},
		"fig6": func(s *Session) (string, error) {
			r, err := Fig6(s)
			return rendered(r, err)
		},
		"fig7": func(s *Session) (string, error) {
			r, err := Fig7(s)
			return rendered(r, err)
		},
		"fig8": func(s *Session) (string, error) {
			r, err := Fig8(s)
			return rendered(r, err)
		},
		"fig9": func(s *Session) (string, error) {
			r, err := Fig9(s)
			return rendered(r, err)
		},
		"fig10": func(s *Session) (string, error) {
			r, err := Fig10(s)
			return rendered(r, err)
		},
		"agt": func(s *Session) (string, error) {
			r, err := AGTSizing(s)
			return rendered(r, err)
		},
		"fig11": func(s *Session) (string, error) {
			r, err := Fig11(s)
			return rendered(r, err)
		},
		"fig12": func(s *Session) (string, error) {
			r, err := Fig12(s)
			return rendered(r, err)
		},
		"fig13": func(s *Session) (string, error) {
			r, err := Fig12(s)
			if err != nil {
				return "", err
			}
			return r.RenderBreakdown(), nil
		},
		"ablate": func(s *Session) (string, error) {
			r, err := Ablate(s)
			return rendered(r, err)
		},
		"headline": func(s *Session) (string, error) {
			r, err := Headline(s)
			return rendered(r, err)
		},
	}
}

// ExperimentNames returns the registry's names in the paper's order.
func ExperimentNames() []string {
	order := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "agt", "fig11", "fig12", "fig13", "ablate", "headline"}
	// Sanity: keep the map and the order in sync; fall back to a sorted
	// listing if they ever drift so no experiment becomes unreachable.
	m := Experiments()
	if len(order) != len(m) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	return order
}

// Figure runs the named experiment through the figure-level store cache.
// Unknown names report the known set.
func (s *Session) Figure(name string) (string, error) {
	run, ok := Experiments()[name]
	if !ok {
		return "", fmt.Errorf("exp: unknown experiment %q (have: %v)", name, ExperimentNames())
	}
	return s.RunFigure(name, run)
}

// CachedFigure reports the named figure if it is already persisted in
// the store, computing nothing. It is the cheap fast path the smsd
// daemon probes before committing a worker to a figure request; a probe
// miss is not counted in the store stats (RunFigure's own lookup will
// count the logical miss exactly once).
func (s *Session) CachedFigure(name string) (string, bool) {
	if s.store == nil {
		return "", false
	}
	return s.store.ProbeFigure(store.ForFigure(name, s.opts.CPUs, s.opts.Seed, s.opts.Length))
}

// RunFigure executes run under the figure-level store cache: with a store
// attached, a rendered figure is keyed by (experiment name, session
// options) and a hit skips every simulation behind it — including ones,
// like the Fig. 8 decoupled-sectored study, that bypass Session.Run.
func (s *Session) RunFigure(name string, run Runner) (string, error) {
	if s.store == nil {
		return run(s)
	}
	key := store.ForFigure(name, s.opts.CPUs, s.opts.Seed, s.opts.Length)
	if text, ok := s.store.GetFigure(key); ok {
		return text, nil
	}
	text, err := run(s)
	if err != nil {
		return "", err
	}
	// The store is a cache: a failed write must not lose the figure.
	_ = s.store.PutFigure(key, text)
	return text, nil
}
