#!/usr/bin/env sh
# End-to-end smoke test for the distributed smsd cell scheduler: start a
# coordinator and two workers (same simulation options — the cluster
# contract), regenerate a full figure grid so its cells scatter across
# both, SIGKILL one worker mid-grid, and assert the grid still settles
# (worker-death detection + re-scatter), the membership plane reports
# the death, and the coordinator's /metrics — cluster series included —
# still passes the exposition checker. Run from the repository root;
# needs curl.
#
# Every daemon binds -addr 127.0.0.1:0 and the script reads the
# kernel-assigned port back from the startup log line, so concurrent
# runs never collide.
set -eu

BIN=${BIN:-./smsd-cluster-smoke-bin}

# The shared simulation options: every daemon in the cluster must agree
# on them or the workers are quarantined for key mismatches.
SIMOPTS="-cpus 1 -seed 1 -length 120000"

say() { echo "cluster-smoke: $*"; }
fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/smsd

COORD_PID=""
W1_PID=""
W2_PID=""
TMP=""
cleanup() {
    [ -n "$COORD_PID" ] && kill "$COORD_PID" 2>/dev/null || true
    [ -n "$W1_PID" ] && kill "$W1_PID" 2>/dev/null || true
    [ -n "$W2_PID" ] && kill "$W2_PID" 2>/dev/null || true
    rm -f "$BIN"
    [ -n "$TMP" ] && rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# json_field FILE KEY → the first "KEY": "value" in the (indented) JSON.
json_field() {
    sed -n "s/^.*\"$2\": \"\([^\"]*\)\".*$/\1/p" "$1" | head -n 1
}

# wait_port LOGFILE → the port from the structured startup line.
wait_port() {
    i=0
    while :; do
        port=$(sed -n 's/.*msg="smsd listening" addr=[^ ]*:\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: FAIL: daemon never logged its listen address; log follows" >&2
            sed 's/^/cluster-smoke:   | /' "$1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

wait_healthy() {
    i=0
    while ! curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: FAIL: daemon on :$1 never became healthy; log follows" >&2
            sed 's/^/cluster-smoke:   | /' "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

TMP=$(mktemp -d)

# --- Coordinator + two workers, each with its own store --------------------
# A short heartbeat makes worker-death detection fast enough to observe
# inside the smoke budget.
"$BIN" -cluster -addr 127.0.0.1:0 $SIMOPTS -heartbeat 250ms \
    -store "$TMP/store-coord" >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
PORT_COORD=$(wait_port "$TMP/coord.log")
wait_healthy "$PORT_COORD" "$TMP/coord.log"
say "coordinator on :$PORT_COORD"

"$BIN" -worker -coordinator "http://127.0.0.1:$PORT_COORD" -addr 127.0.0.1:0 \
    $SIMOPTS -store "$TMP/store-w1" >"$TMP/w1.log" 2>&1 &
W1_PID=$!
"$BIN" -worker -coordinator "http://127.0.0.1:$PORT_COORD" -addr 127.0.0.1:0 \
    $SIMOPTS -store "$TMP/store-w2" >"$TMP/w2.log" 2>&1 &
W2_PID=$!
PORT_W1=$(wait_port "$TMP/w1.log")
PORT_W2=$(wait_port "$TMP/w2.log")
wait_healthy "$PORT_W1" "$TMP/w1.log"
wait_healthy "$PORT_W2" "$TMP/w2.log"
say "workers on :$PORT_W1 and :$PORT_W2"

i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_COORD/v1/cluster/workers" >"$TMP/workers.json" 2>/dev/null || true
    n=$(grep -c '"alive": true' "$TMP/workers.json" 2>/dev/null || true)
    [ "$n" = "2" ] && break
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "workers never registered: $(cat "$TMP/workers.json" 2>/dev/null)"
    sleep 0.1
done
say "both workers registered and alive"

# --- Scatter a figure grid, kill one worker mid-grid -----------------------
curl -fsS -X POST "http://127.0.0.1:$PORT_COORD/v1/figures/fig8" >"$TMP/submit.json"
JOB=$(json_field "$TMP/submit.json" id)
[ -n "$JOB" ] || fail "no job id in figure submit: $(cat "$TMP/submit.json")"
say "submitted figure grid job $JOB"

# Wait until the grid is demonstrably in flight on the cluster (cells
# scattered), then SIGKILL the second worker: no goodbye, no final
# heartbeat — the coordinator must notice on its own and re-scatter.
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_COORD/metrics" >"$TMP/m.txt"
    scattered=$(sed -n 's/^smsd_cluster_cells_scattered_total \([0-9][0-9]*\).*/\1/p' "$TMP/m.txt")
    [ -n "$scattered" ] && [ "$scattered" -ge 2 ] && break
    i=$((i + 1))
    [ "$i" -gt 200 ] && fail "grid never scattered cells to the workers"
    sleep 0.05
done
kill -9 "$W2_PID"
W2_PID=""
say "SIGKILLed worker on :$PORT_W2 with $scattered cells scattered"

# The grid must settle anyway: orphaned cells re-scatter to the
# survivor after the missed heartbeats.
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_COORD/v1/jobs/$JOB" >"$TMP/poll.json"
    STATE=$(json_field "$TMP/poll.json" state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "figure job settled as $STATE: $(cat "$TMP/poll.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 900 ] && fail "figure job stuck in state $STATE after the worker kill"
    sleep 0.2
done
grep -q '"figure"' "$TMP/poll.json" || fail "done figure job carries no rendered figure"
say "figure grid settled as done despite the worker kill"

# --- Membership and metrics reflect the death ------------------------------
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_COORD/v1/cluster/workers" >"$TMP/workers.json"
    grep -q '"alive": false' "$TMP/workers.json" && break
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "killed worker never declared dead: $(cat "$TMP/workers.json")"
    sleep 0.1
done
say "membership lists the killed worker as dead"

curl -fsS "http://127.0.0.1:$PORT_COORD/metrics" >"$TMP/metrics.txt"
go run ./internal/obs/obscheck metrics "$TMP/metrics.txt" ||
    fail "coordinator /metrics is not valid Prometheus exposition"
grep -q '^smsd_cluster_workers_lost_total 1$' "$TMP/metrics.txt" ||
    fail "metrics do not count the lost worker"
scattered=$(sed -n 's/^smsd_cluster_cells_scattered_total \([0-9][0-9]*\).*/\1/p' "$TMP/metrics.txt")
[ -n "$scattered" ] && [ "$scattered" -ge 2 ] ||
    fail "metrics do not count the scattered cells"
say "coordinator /metrics passes the exposition checker with the cluster series"

# The coordinator's store holds the grid's results (write-through from
# the scatter path): a re-run of the same figure must be pure cache.
curl -fsS -X POST "http://127.0.0.1:$PORT_COORD/v1/figures/fig8" >"$TMP/submit2.json"
JOB2=$(json_field "$TMP/submit2.json" id)
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_COORD/v1/jobs/$JOB2" >"$TMP/poll2.json"
    STATE=$(json_field "$TMP/poll2.json" state)
    [ "$STATE" = "done" ] && break
    case "$STATE" in failed | cancelled) fail "warm figure job settled as $STATE" ;; esac
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "warm figure job stuck in state $STATE"
    sleep 0.2
done
say "warm re-run of the figure settled from the synced store"

say "PASS"
