//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. On platforms (or filesystems)
// where mmap fails, it falls back to reading the file into memory, so
// callers always get a byte slice over the whole file.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if int64(int(size)) != size {
		return readFallback(f, size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readFallback(f, size)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
