package sim

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/trace"
)

// mkRunner builds a runner with windowing enabled and no warm-up so every
// record is measured.
func mkWindowRunner(t *testing.T, gap, maxMLP uint64) *Runner {
	t.Helper()
	r, err := NewRunner(Config{
		Coherence: coherence.Config{
			CPUs: 2,
			L1:   cache.Config{Size: 1 << 10, Assoc: 2, BlockSize: 64},
			L2:   cache.Config{Size: 8 << 10, Assoc: 4, BlockSize: 64},
		},
		WindowInstructions: 1000,
		OverlapGap:         gap,
		MaxMLP:             maxMLP,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sumWindows(res *Result) (offReads, offGroups uint64) {
	for _, w := range res.Windows {
		offReads += w.OffChipReads
		offGroups += w.OffChipReadGroups
	}
	return
}

func TestWindowGroupingByGap(t *testing.T) {
	r := mkWindowRunner(t, 50, 1000)
	// Two bursts of 3 cold misses each, separated by more than the gap.
	seq := uint64(1)
	for burst := 0; burst < 2; burst++ {
		for i := 0; i < 3; i++ {
			r.Step(trace.Record{Seq: seq, PC: 0x400, Addr: mem.Addr(0x100000 + burst*0x10000 + i*64)})
			seq += 10 // within the gap
		}
		seq += 200 // beyond the gap
	}
	r.finish()
	res := &r.res
	offReads, offGroups := sumWindows(res)
	if offReads != 6 {
		t.Fatalf("offReads = %d, want 6", offReads)
	}
	if offGroups != 2 {
		t.Fatalf("offGroups = %d, want 2 (two serialized bursts)", offGroups)
	}
}

func TestWindowGroupCapByMaxMLP(t *testing.T) {
	r := mkWindowRunner(t, 1000, 4)
	// 12 cold misses in rapid succession: gap never exceeded, but the
	// MSHR cap of 4 splits them into 3 groups.
	seq := uint64(1)
	for i := 0; i < 12; i++ {
		r.Step(trace.Record{Seq: seq, PC: 0x400, Addr: mem.Addr(0x100000 + i*64)})
		seq += 2
	}
	r.finish()
	_, offGroups := sumWindows(&r.res)
	if offGroups != 3 {
		t.Fatalf("offGroups = %d, want 3 (12 misses / cap 4)", offGroups)
	}
}

func TestWindowPerCPUGrouping(t *testing.T) {
	// Misses on different CPUs never share a group (each core has its
	// own MSHRs).
	r := mkWindowRunner(t, 1000, 1000)
	seq := uint64(1)
	for i := 0; i < 4; i++ {
		r.Step(trace.Record{Seq: seq, PC: 0x400, CPU: uint8(i % 2), Addr: mem.Addr(0x100000 + i*64)})
		seq += 2
	}
	r.finish()
	_, offGroups := sumWindows(&r.res)
	if offGroups != 2 {
		t.Fatalf("offGroups = %d, want 2 (one per CPU)", offGroups)
	}
}

func TestWindowBoundaries(t *testing.T) {
	r := mkWindowRunner(t, 50, 16)
	// Records spanning 3 windows of 1000 instructions.
	for seq := uint64(1); seq < 3000; seq += 100 {
		r.Step(trace.Record{Seq: seq, PC: 0x400, Addr: mem.Addr(0x200000 + seq*64)})
	}
	r.finish()
	if got := len(r.res.Windows); got != 3 {
		t.Fatalf("windows = %d, want 3", got)
	}
	for i, w := range r.res.Windows {
		if w.Instructions != 1000 {
			t.Fatalf("window %d instructions = %d", i, w.Instructions)
		}
	}
}

func TestWindowUpgradeAccounting(t *testing.T) {
	// A write whose first touch hits an off-chip-sourced streamed block
	// must count as an off-chip write (the §4.7 upgrade cost).
	r, err := NewRunner(Config{
		Coherence: coherence.Config{
			CPUs: 1,
			L1:   cache.Config{Size: 1 << 10, Assoc: 2, BlockSize: 64},
			L2:   cache.Config{Size: 8 << 10, Assoc: 4, BlockSize: 64},
		},
		PrefetcherName:     "sms",
		WindowInstructions: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Train SMS: region A blocks 0,1 under one PC; end generation.
	A := mem.Addr(0x100000)
	r.Step(trace.Record{Seq: 1, PC: 0x400, Addr: A})
	r.Step(trace.Record{Seq: 4, PC: 0x404, Addr: A + 64})
	// Evict region A's blocks via set pressure to end the generation
	// (L1: 8 sets; stride 512).
	r.Step(trace.Record{Seq: 7, PC: 0x500, Addr: A + 512})
	r.Step(trace.Record{Seq: 10, PC: 0x500, Addr: A + 1024})
	// Trigger on region B: SMS streams B+64 (off-chip source).
	B := mem.Addr(0x200000)
	r.Step(trace.Record{Seq: 13, PC: 0x400, Addr: B})
	// First touch of the streamed block is a WRITE: upgrade.
	r.Step(trace.Record{Seq: 16, PC: 0x404, Addr: B + 64, Kind: trace.Write})
	r.finish()
	var offW uint64
	for _, w := range r.res.Windows {
		offW += w.OffChipWrites
	}
	if offW == 0 {
		t.Fatal("upgrade on streamed block not charged to the store buffer")
	}
}
