package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types, as rendered in # TYPE comments.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry is a set of metric families rendered together by
// WritePrometheus. Registration methods panic on invalid or duplicate
// names: metrics are wired at construction time, so a bad registration
// is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: a type, help text, a label
// schema, and the series instantiated under it.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	// Callback families sample external state at scrape time; exactly
	// one of fnU/fnF is set for them and series stays empty.
	fnU func() uint64
	fnF func() float64

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

// series is one (family, label values) instance. A labeled callback
// series (CounterVec.Func) sets fnU, which overrides c at render time.
type series struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
	fnU    func() uint64
}

// Counter is a monotonically increasing uint64. Inc and Add are single
// atomic operations: safe for concurrent use, zero allocations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations.
// Observe is a bounded scan plus a few atomics — no allocation — so it
// can sit on hot paths.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; the last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// With returns the counter for the given label values, creating it on
// first use. Resolve once and retain the child on hot paths: With
// itself locks and allocates on the first call for a value set.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.child(values).c
}

// Func binds the series for the given label values to a callback
// sampled at scrape time — the labeled analogue of CounterFunc, for
// counters that already live elsewhere (engine accessors) but belong in
// one family distinguished by a label.
func (v *CounterVec) Func(fn func() uint64, values ...string) {
	v.fam.child(values).fnU = fn
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.child(values).g
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.child(values).h
}

// ExpBuckets returns n exponentially spaced bucket bounds:
// start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil).child(nil).c
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil)}
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — the bridge for counters that already live elsewhere
// (engine accessors, store.Stats snapshots).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, typeCounter, nil, nil).fnU = fn
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil).child(nil).g
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels, nil)}
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, nil, nil).fnF = fn
}

// Histogram registers and returns an unlabelled histogram over the
// given ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, buckets).child(nil).h
}

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, typeHistogram, labels, buckets)}
}

// register validates and installs a family.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	if typ == typeHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %s needs at least one bucket", name))
		}
		b := make([]float64, 0, len(buckets))
		for _, u := range buckets {
			if math.IsInf(u, +1) {
				continue // the +Inf bucket is implicit
			}
			b = append(b, u)
		}
		if !sort.Float64sAreSorted(b) {
			panic(fmt.Sprintf("obs: histogram %s buckets are not ascending", name))
		}
		buckets = b
		for _, l := range labels {
			if l == "le" {
				panic(fmt.Sprintf("obs: histogram %s cannot carry a le label", name))
			}
		}
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  labels,
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.families[name] = f
	return f
}

// child returns (creating on first use) the series for the given label
// values.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = &Histogram{
			upper:  f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// WritePrometheus renders every family in the registry as Prometheus
// text exposition (version 0.0.4), families sorted by name, each with
// its # HELP and # TYPE comments.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// write renders one family.
func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)

	if f.fnU != nil {
		fmt.Fprintf(b, "%s %d\n", f.name, f.fnU())
		return
	}
	if f.fnF != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fnF()))
		return
	}

	f.mu.Lock()
	ordered := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		ordered = append(ordered, f.series[key])
	}
	f.mu.Unlock()

	for _, s := range ordered {
		switch f.typ {
		case typeCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.values, "", "")
			val := s.c.Value()
			if s.fnU != nil {
				val = s.fnU()
			}
			fmt.Fprintf(b, " %d\n", val)
		case typeGauge:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.values, "", "")
			fmt.Fprintf(b, " %d\n", s.g.Value())
		case typeHistogram:
			h := s.h
			var cum uint64
			for i, upper := range h.upper {
				cum += h.counts[i].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labels, s.values, "le", formatFloat(upper))
				fmt.Fprintf(b, " %d\n", cum)
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, s.values, "le", "+Inf")
			fmt.Fprintf(b, " %d\n", h.Count())
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, s.values, "", "")
			fmt.Fprintf(b, " %s\n", formatFloat(h.Sum()))
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, s.values, "", "")
			fmt.Fprintf(b, " %d\n", h.Count())
		}
	}
}

// writeLabels renders a {k="v",...} block; extraName/extraValue append
// one synthetic label (histograms' le). Nothing is written when there
// are no labels at all.
func writeLabels(b *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
