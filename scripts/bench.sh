#!/bin/sh
# bench.sh — record the repo's headline performance numbers as JSON.
#
# Usage:
#   scripts/bench.sh [OUTFILE]          # record (default BENCH_after.json)
#   scripts/bench.sh --check            # CI gate: fail if any hot-path
#                                       # benchmark allocates per op, or
#                                       # regressed >BENCH_TOLERANCE %
#                                       # (default 15) in ns/record vs
#                                       # the last BENCH_history.jsonl
#                                       # recording on this machine
#
# The headline benchmarks cover the full record hot path (trace
# generation -> coherent hierarchy -> SMS -> accounting), the trace
# source alone, and one figure-scale run (fig8). ns/op for the per-record
# benchmarks is ns/record; MB/s is derived from the 26-byte trace record
# encoding. Fixed seeds and -benchtime keep runs comparable; numbers are
# still machine-dependent, so BENCH_*.json records the Go version and the
# delta between baseline and after matters more than absolute values.
# Each benchmark runs -count=3 and the best run is recorded: scheduler
# and noisy-neighbour interference only ever adds time, so the minimum
# is the closest estimate of what the code costs.
set -eu

cd "$(dirname "$0")/.."

HEADLINE='^(BenchmarkSimulatorThroughput|BenchmarkSampledThroughput|BenchmarkTraceGeneration|BenchmarkTraceReplay|BenchmarkFig8Training)$'
# Benchmarks that must not allocate per record in steady state.
ZERO_ALLOC='BenchmarkSimulatorThroughput|BenchmarkSampledThroughput|BenchmarkTraceGeneration|BenchmarkTraceReplay'

run_bench() {
	go test -run '^$' -bench "$HEADLINE" -benchmem -benchtime=2s -count=3 .
}

if [ "${1:-}" = "--check" ]; then
	out=$(go test -run '^$' -bench "^(${ZERO_ALLOC})\$" -benchmem -benchtime=200000x -count=1 .)
	echo "$out"
	echo "$out" | awk '
		/allocs\/op/ {
			allocs = ""; bytes = ""
			for (i = 1; i <= NF; i++) {
				if ($i == "allocs/op") allocs = $(i-1)
				if ($i == "B/op") bytes = $(i-1)
			}
			if (allocs + 0 > 0) { print "FAIL: " $1 " allocates " allocs " allocs/op (want 0)"; bad = 1 }
			if (bytes + 0 > 0) { print "FAIL: " $1 " allocates " bytes " B/op (want 0)"; bad = 1 }
		}
		END { exit bad }
	'
	echo "bench allocation check passed: hot-path benchmarks run at 0 B/op, 0 allocs/op"

	# Regression gate: compare ns/op (= ns/record) per benchmark against
	# the most recent BENCH_history.jsonl recording. History lines embed
	# the recorded JSON, so the baseline comes from one sed pass over the
	# last line. The comparison gets its own time-based run (best of 3 at
	# 1s, close to how recordings are made) — the fixed-iteration alloc
	# run above measures ~20ms per benchmark, which is inside CPU
	# frequency-scaling noise and not comparable to a 2s recording. Only
	# benchmarks present in both sets are compared; with no history
	# (fresh clone, CI runner) the gate is a no-op, since cross-machine
	# numbers are not comparable.
	HIST=BENCH_history.jsonl
	tol=${BENCH_TOLERANCE:-15}
	if [ ! -s "$HIST" ]; then
		echo "no $HIST baseline on this machine; skipping regression comparison"
		exit 0
	fi
	baseline=$(tail -n 1 "$HIST" | tr '{' '\n' | sed -n 's/.*"name": "\([^"]*\)", "ns_per_op": \([0-9.]*\).*/\1 \2/p')
	cmp=$(go test -run '^$' -bench "^(${ZERO_ALLOC})\$" -benchtime=1s -count=3 .)
	echo "$cmp" | awk -v tol="$tol" -v baseline="$baseline" '
		BEGIN {
			n = split(baseline, lines, "\n")
			for (i = 1; i <= n; i++) {
				split(lines[i], kv, " ")
				if (kv[1] != "") base[kv[1]] = kv[2]
			}
		}
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""
			for (i = 1; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
			if (ns == "") next
			if (!(name in cur) || ns + 0 < cur[name] + 0) cur[name] = ns
		}
		END {
			for (name in cur) {
				if (!(name in base)) continue
				limit = base[name] * (1 + tol / 100)
				if (cur[name] + 0 > limit) {
					printf "FAIL: %s regressed to %.1f ns/op, baseline %.1f (tolerance %s%%)\n", name, cur[name], base[name], tol
					bad = 1
				} else {
					printf "ok: %s %.1f ns/op vs baseline %.1f (tolerance %s%%)\n", name, cur[name], base[name], tol
				}
				compared++
			}
			if (!compared) print "no overlapping benchmarks with baseline; nothing compared"
			if (bad) exit 1
		}
	'
	echo "bench regression check passed (tolerance ${tol}%)"
	exit 0
fi

OUT=${1:-BENCH_after.json}
raw=$(run_bench)
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""
		for (i = 1; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i-1)
			if ($i == "B/op") bytes = $(i-1)
			if ($i == "allocs/op") allocs = $(i-1)
		}
		if (ns == "") next
		if (!(name in best) || ns + 0 < best[name] + 0) {
			best[name] = ns; bbytes[name] = bytes; ballocs[name] = allocs
			if (!(name in best_seen)) { order[no++] = name; best_seen[name] = 1 }
		}
	}
	END {
		print "{"
		printf "  \"go\": \"%s\",\n", go_version
		print "  \"benchmarks\": ["
		for (oi = 0; oi < no; oi++) {
			name = order[oi]
			if (oi) printf ",\n"
			printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, best[name]
			if (bbytes[name] != "") printf ", \"bytes_per_op\": %s", bbytes[name]
			if (ballocs[name] != "") printf ", \"allocs_per_op\": %s", ballocs[name]
			# Per-record benchmarks: ns/op is ns/record; 26 B/record on the wire.
			if (name ~ /SimulatorThroughput|SampledThroughput|TraceGeneration|TraceReplay/) {
				printf ", \"ns_per_record\": %s, \"mb_per_s\": %.1f", best[name], 26 * 1000 / best[name]
			}
			printf "}"
		}
		print "\n  ]"
		print "}"
	}
' >"$OUT"
echo "wrote $OUT"

# Append this run to the benchmark trajectory: one JSON line per
# recording (UTC timestamp, commit, the full metrics object), so perf
# history survives the before/after pair being overwritten.
HIST=BENCH_history.jsonl
ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
printf '{"time":"%s","commit":"%s","out":"%s","record":%s}\n' \
	"$ts" "$sha" "$OUT" "$(tr -d '\n' <"$OUT")" >>"$HIST"
echo "appended to $HIST"
