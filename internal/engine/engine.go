// Package engine is the grid-native execution engine behind the
// experiment harness and the smsd daemon. Every result in the paper is a
// grid — workloads × configurations — so the engine makes the grid the
// first-class unit of work: a declarative Plan compiles into a
// deduplicated set of runs executed over a bounded worker pool, with
// store-backed memoization, streamed lifecycle events, and cancellation
// that propagates into the inner simulation loop (sim.Runner.RunContext).
//
// Layering: sim executes one run; engine executes grids of runs; exp
// declares the paper's figures as Plans over an engine; server turns
// HTTP jobs into cancellable engine executions.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes an Engine.
type Config struct {
	// Workload is the trace-generation configuration every run uses
	// (CPUs, seed, length). Length zero selects the workload package
	// default. It is passed to the generators exactly as given — the
	// experiment harness's calibrated numbers depend on the raw form —
	// while store hashing uses its canonical form (store.ForRun).
	Workload workload.Config
	// Warmup is the number of leading accesses excluded from statistics.
	// Zero selects the paper's convention: half the trace. It overwrites
	// WarmupAccesses on every executed config, so plans need not (and
	// cannot) vary it.
	Warmup uint64
	// Parallel bounds concurrently executing simulations across all
	// plans and bare runs (0 = GOMAXPROCS).
	Parallel int
	// RunParallel puts up to this many region-sharded simulation lanes
	// behind every single run (sim.Exec.Lanes; 0 or 1 = serial runs).
	// The engine divides the Parallel budget by it, so grid-level and
	// run-level parallelism share one core pool instead of multiplying:
	// Parallel=8 with RunParallel=4 admits 2 concurrent runs of 4 lanes
	// each. Results are bit-identical either way — lanes are pure
	// execution tuning and never enter the run's store identity.
	RunParallel int
	// DecodeAhead decodes each run's trace source up to this many
	// batches ahead of its simulator on a dedicated goroutine (0 = off,
	// decode stays inline; sim.Exec.DecodeAhead).
	DecodeAhead int
	// Store optionally persists results across processes. Completed runs
	// are written through; cancelled or failed runs never touch it.
	Store *store.Store
	// ProgressInterval is the record count between progress events and
	// cancellation checks inside a run (0 = sim.DefaultProgressInterval).
	ProgressInterval uint64
	// TraceCacheBytes bounds the in-memory trace memo: every run in a
	// grid uses the same workload configuration, so variants of one
	// workload replay a byte-identical record sequence from memory
	// instead of re-running the generator. 0 selects
	// DefaultTraceCacheBytes; negative disables the memo. Traces longer
	// than the budget always stream from the generator.
	TraceCacheBytes int64
}

// Engine executes simulation runs and plans with memoization: any run
// whose canonical identity was already executed — by this engine or, with
// a store attached, by any earlier process — is served without
// simulating. Concurrent requests for the same run are single-flighted:
// exactly one simulation happens and every caller receives its result.
type Engine struct {
	cfg    Config
	sem    chan struct{}
	sched  CellScheduler   // where cells execute; localScheduler by default
	fault  *fault.Injector // chaos injector; nil in production
	traces *traceCache     // nil when disabled

	// The disk trace tier keeps one shared mapping per replayed
	// artifact; every run gets its own decoding stream over it.
	tierMu    sync.Mutex
	tierFiles map[string]*trace.File

	mu    sync.Mutex
	memo  map[string]*entry
	order []string // completed memo keys in insertion order, for eviction

	sims        atomic.Uint64
	customs     atomic.Uint64
	storeHits   atomic.Uint64
	memoHits    atomic.Uint64
	cancelled   atomic.Uint64
	generations atomic.Uint64
	tierHits    atomic.Uint64
	tierMisses  atomic.Uint64

	// Pipeline telemetry harvested from each run's sim.PipelineStats
	// (see localScheduler.Schedule); laneOccupancy is the last completed
	// run's lane balance in integer percent.
	pipeDecodeStalls    atomic.Uint64
	pipeSimStalls       atomic.Uint64
	pipeConflictReplays atomic.Uint64
	laneOccupancy       atomic.Uint64
}

// entry is one memoized (possibly in-flight) run; followers block on done.
type entry struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// maxMemoized bounds the in-memory result cache. A figure grid needs a
// few hundred distinct runs, so no figure regeneration ever evicts its
// own working set; the bound only matters to a long-running smsd serving
// unbounded distinct configurations, where evicted results remain a
// store read away.
const maxMemoized = 4096

// New builds an engine. The zero Config is usable: workload defaults,
// half-trace warm-up, GOMAXPROCS parallelism, no store.
func New(cfg Config) *Engine {
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Workload.Canonical().Length / 2
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	// The semaphore admits concurrent *runs*; when each run fans out
	// over RunParallel lanes, admitting Parallel of them would
	// oversubscribe the pool by that factor, so the run slots divide the
	// shared budget (never below one).
	slots := cfg.Parallel
	if cfg.RunParallel > 1 {
		slots = cfg.Parallel / cfg.RunParallel
		if slots < 1 {
			slots = 1
		}
	}
	e := &Engine{
		cfg:  cfg,
		sem:  make(chan struct{}, slots),
		memo: make(map[string]*entry),
	}
	e.sched = localScheduler{e}
	if cfg.TraceCacheBytes >= 0 {
		budget := cfg.TraceCacheBytes
		if budget == 0 {
			budget = DefaultTraceCacheBytes
		}
		e.traces = newTraceCache(budget)
	}
	return e
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetFault installs a fault injector on the engine's scheduling site
// (engine.schedule). Like SetScheduler, call it before the engine runs
// anything.
func (e *Engine) SetFault(f *fault.Injector) { e.fault = f }

// Store returns the attached store (nil when none).
func (e *Engine) Store() *store.Store { return e.cfg.Store }

// Simulations returns how many simulations this engine actually executed
// — memoization and store hits excluded. It is the "did we really
// resimulate?" probe used by tests and the smsd metrics endpoint.
func (e *Engine) Simulations() uint64 { return e.sims.Load() }

// StoreHits returns how many runs were served from the persistent store.
func (e *Engine) StoreHits() uint64 { return e.storeHits.Load() }

// MemoHits returns how many runs were served from (or coalesced into)
// this engine's in-memory memoization layer.
func (e *Engine) MemoHits() uint64 { return e.memoHits.Load() }

// TraceGenerations returns how many times a workload generator actually
// ran; runs replayed from the trace memo or the disk trace tier do not
// count. With the memo enabled, a grid of N variants over one workload
// generates once — and with a store attached, a workload whose trace
// artifact is already stored generates zero times, even in a fresh
// process.
func (e *Engine) TraceGenerations() uint64 { return e.generations.Load() }

// TraceTierHits returns how many runs replayed an mmap'd trace artifact
// from the store's disk tier.
func (e *Engine) TraceTierHits() uint64 { return e.tierHits.Load() }

// TraceTierMisses returns how many disk-tier probes found no artifact.
func (e *Engine) TraceTierMisses() uint64 { return e.tierMisses.Load() }

// CancelledRuns returns how many started simulations were cancelled
// mid-run.
func (e *Engine) CancelledRuns() uint64 { return e.cancelled.Load() }

// PipelineDecodeStalls returns how often run pipelines stalled with the
// decode stage waiting on the simulator (simulation-bound).
func (e *Engine) PipelineDecodeStalls() uint64 { return e.pipeDecodeStalls.Load() }

// PipelineSimStalls returns how often run pipelines stalled with the
// simulator waiting on the decode stage (decode-bound).
func (e *Engine) PipelineSimStalls() uint64 { return e.pipeSimStalls.Load() }

// PipelineConflictReplays returns how many runs asked for lanes but were
// replayed serially because their configuration's per-record effects
// cross lanes (attached prefetchers, instruction windows).
func (e *Engine) PipelineConflictReplays() uint64 { return e.pipeConflictReplays.Load() }

// PipelineLaneOccupancy returns the last lane-parallel run's lane
// balance in integer percent (100 = perfectly even; 0 = no lane-parallel
// run has completed).
func (e *Engine) PipelineLaneOccupancy() uint64 { return e.laneOccupancy.Load() }

// harvestPipeline folds one finished run's pipeline telemetry into the
// engine counters.
func (e *Engine) harvestPipeline(ps sim.PipelineStats) {
	e.pipeDecodeStalls.Add(ps.DecodeStalls)
	e.pipeSimStalls.Add(ps.SimStalls)
	e.pipeConflictReplays.Add(ps.ConflictReplays)
	if ps.Lanes > 1 {
		e.laneOccupancy.Store(uint64(ps.Occupancy() + 0.5))
	}
}

// CustomRuns returns how many custom plan cells this engine executed
// (they are simulations too, just not store-memoized ones).
func (e *Engine) CustomRuns() uint64 { return e.customs.Load() }

// resolve applies the engine's run conventions to a plan/config:
// warm-up is always the engine's, never the caller's.
func (e *Engine) resolve(cfg sim.Config) sim.Config {
	cfg.WarmupAccesses = e.cfg.Warmup
	return cfg
}

// Key returns the store content address the engine uses for (workload,
// cfg) — the memoization identity. The smsd daemon keys job dedup and
// responses on this, so it cannot diverge from what the engine persists.
func (e *Engine) Key(workloadName string, cfg sim.Config) string {
	return store.ForRun(workloadName, e.cfg.Workload, e.resolve(cfg))
}

// Cached reports a run already available without simulating — memoized
// in this engine or one store read away. The probe is cheap and does not
// count toward store miss statistics.
func (e *Engine) Cached(workloadName string, cfg sim.Config) (*sim.Result, bool) {
	key := e.Key(workloadName, cfg)
	e.mu.Lock()
	if ent, ok := e.memo[key]; ok {
		select {
		case <-ent.done:
			if ent.err == nil {
				e.mu.Unlock()
				return ent.res, true
			}
		default:
		}
	}
	e.mu.Unlock()
	if e.cfg.Store == nil {
		return nil, false
	}
	return e.cfg.Store.ProbeResult(key)
}

// Run executes one simulation, memoized: a run with the same canonical
// identity is simulated at most once per engine (and, with a store, at
// most once ever). Events are delivered to the sink attached to ctx.
func (e *Engine) Run(ctx context.Context, workloadName string, cfg sim.Config) (*sim.Result, error) {
	cfg = e.resolve(cfg)
	key := store.ForRun(workloadName, e.cfg.Workload, cfg)
	sink := eventSink(ctx)
	emit := func(ev Event) {
		ev.Workload = workloadName
		ev.Key = key
		sink(ev)
	}
	return e.run(ctx, workloadName, cfg, key, emit)
}

// isCtxErr reports whether err is a cancellation/deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// run is the memoizing single-flight core. cfg must be resolved and key
// must be its store address.
func (e *Engine) run(ctx context.Context, workloadName string, cfg sim.Config, key string, emit func(Event)) (*sim.Result, error) {
	for {
		e.mu.Lock()
		if ent, ok := e.memo[key]; ok {
			e.mu.Unlock()
			e.memoHits.Add(1)
			select {
			case <-ent.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if ent.err == nil {
				emit(Event{Kind: RunCached})
				return ent.res, nil
			}
			if !isCtxErr(ent.err) {
				return nil, ent.err
			}
			// The owner was cancelled, not the run itself; retry under
			// our own context (it may still be live).
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			continue
		}
		ent := &entry{done: make(chan struct{})}
		e.memo[key] = ent
		e.mu.Unlock()

		ent.res, ent.err = e.simulate(ctx, workloadName, cfg, key, emit)
		e.mu.Lock()
		if ent.err != nil {
			// Never memoize failure: a cancelled owner must not poison
			// later callers, and real errors should re-surface fresh.
			delete(e.memo, key)
		} else {
			e.order = append(e.order, key)
			for len(e.order) > maxMemoized {
				oldest := e.order[0]
				e.order = e.order[1:]
				delete(e.memo, oldest)
			}
		}
		e.mu.Unlock()
		close(ent.done)
		return ent.res, ent.err
	}
}

// simulate performs the store lookup and, on a miss, hands the cell to
// the scheduler (the local pool by default, a cluster coordinator when
// one is installed). The settling events and store write-through happen
// here, above the scheduler, so every placement policy shares them.
func (e *Engine) simulate(ctx context.Context, workloadName string, cfg sim.Config, key string, emit func(Event)) (*sim.Result, error) {
	tr := obs.TracerFrom(ctx)
	// Each run gets its own trace row: workload/prefetcher plus a key
	// prefix, so concurrent runs don't interleave on one Chrome track.
	var track string
	runCtx := ctx
	if tr != nil {
		pf := cfg.PrefetcherName
		if pf == "" {
			pf = "none"
		}
		short := key
		if len(short) > 8 {
			short = short[:8]
		}
		track = workloadName + "/" + pf + " " + short
		runCtx = obs.WithTrack(ctx, track)
	}

	if e.cfg.Store != nil {
		sp := tr.Start("store-get", "store", track)
		res, ok := e.cfg.Store.GetResult(key)
		sp.End()
		if ok {
			e.storeHits.Add(1)
			emit(Event{Kind: RunCached})
			return res, nil
		}
	}

	// started mirrors whether the scheduler committed execution
	// somewhere: pre-start failures (cancelled while queued, unknown
	// workload) settle silently so Execute can report RunSkipped, while
	// post-start ones emit RunFailed — the pre-scheduler semantics.
	// Schedulers never emit after Schedule returns, so the flag is safe
	// to read here.
	started := false
	wrapped := func(ev Event) {
		if ev.Kind == RunStarted {
			started = true
		}
		emit(ev)
	}
	res, err := e.sched.Schedule(runCtx, RunSpec{Workload: workloadName, Config: cfg, Key: key}, wrapped)
	if err != nil {
		if started {
			if isCtxErr(err) {
				e.cancelled.Add(1)
			}
			emit(Event{Kind: RunFailed, Err: err})
		}
		return nil, err
	}
	if e.cfg.Store != nil {
		sp := tr.Start("store-put", "store", track)
		// The store is a cache: a failed write must not lose the result.
		_ = e.cfg.Store.PutResult(key, res)
		sp.End()
	}
	emit(Event{Kind: RunFinished})
	return res, nil
}

// Execute runs every cell of the plan over the worker pool and returns
// the populated Grid. Identical cells (canonically equal configurations)
// are simulated exactly once; results already memoized or stored are
// served without simulating.
//
// Cancellation: once ctx is cancelled, runs in flight stop within one
// progress interval (RunFailed), unstarted runs are skipped (RunSkipped,
// never touching the store), and Execute returns the partial Grid
// together with ctx's error. Events stream to the sink attached to ctx;
// a GridDone event carrying the Grid and error is always the last event.
func (e *Engine) Execute(ctx context.Context, plan Plan) (*Grid, error) {
	sink := eventSink(ctx)
	compileSpan := obs.TracerFrom(ctx).Start("compile", "engine", "")
	c, err := e.compile(plan)
	compileSpan.End()
	if err != nil {
		sink(Event{Kind: GridDone, Plan: plan.Name, Err: err})
		return nil, err
	}

	total := len(c.nodes) + len(plan.Customs)
	var done atomic.Int64
	grid := &Grid{plan: plan, cells: c.cells, customs: make(map[cellRef]*customCell, len(plan.Customs))}
	grid.counts.Runs = len(c.nodes)

	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			cell := n.cells[0]
			emit := func(ev Event) {
				switch ev.Kind {
				case RunStarted:
					n.started = true
				case RunCached:
					n.cached = true
				}
				ev.Plan = plan.Name
				ev.Workload = cell.workload
				ev.Variant = cell.key
				ev.Key = n.key
				if ev.Kind != RunProgress {
					ev.Done = int(done.Load())
				}
				ev.Total = total
				sink(ev)
			}
			n.res, n.err = e.run(ctx, n.workload, n.cfg, n.key, emit)
			if n.err != nil && isCtxErr(n.err) && !n.started {
				done.Add(1)
				emit(Event{Kind: RunSkipped})
				return
			}
			done.Add(1)
		}(n)
	}

	for i := range plan.Customs {
		cu := plan.Customs[i]
		cc := &customCell{}
		grid.customs[cellRef{cu.Workload, cu.Key}] = cc
		wg.Add(1)
		go func() {
			defer wg.Done()
			emit := func(ev Event) {
				ev.Plan = plan.Name
				ev.Workload = cu.Workload
				ev.Variant = cu.Key
				if ev.Kind != RunProgress {
					ev.Done = int(done.Load())
				}
				ev.Total = total
				sink(ev)
			}
			defer done.Add(1)
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				cc.err = ctx.Err()
				emit(Event{Kind: RunSkipped})
				return
			}
			defer func() { <-e.sem }()
			if err := ctx.Err(); err != nil {
				cc.err = err
				emit(Event{Kind: RunSkipped})
				return
			}
			emit(Event{Kind: RunStarted})
			cc.started = true
			e.customs.Add(1)
			cc.val, cc.err = cu.Run(ctx)
			if cc.err != nil {
				emit(Event{Kind: RunFailed, Err: cc.err})
				return
			}
			emit(Event{Kind: RunFinished})
		}()
	}
	wg.Wait()

	execErr := grid.settle()
	if ctxErr := ctx.Err(); ctxErr != nil {
		execErr = ctxErr
	}
	sink(Event{Kind: GridDone, Plan: plan.Name, Grid: grid, Err: execErr, Done: int(done.Load()), Total: total})
	return grid, execErr
}
