package sim_test

// Batching differential: the batched RunContext drain (including the
// zero-copy view path) must produce byte-identical Result JSON to
// record-at-a-time Step driving, for every prefetcher family, on both
// generated and randomized traces. Together with the table-level
// reference tests and the golden hashes, this closes the chain: new
// tables ≡ old maps, batched ≡ scalar, so stored keys and figure numbers
// are unchanged.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scalarSource hides batching capability so trace.Batched falls back to
// the per-record adapter.
type scalarSource struct{ src trace.Source }

func (s scalarSource) Next() (trace.Record, bool) { return s.src.Next() }

// randomTrace builds a randomized multi-CPU trace with enough write
// sharing to exercise invalidations and false sharing.
func randomTrace(seed int64, cpus, n int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	var seq uint64
	for i := range recs {
		seq += uint64(1 + rng.Intn(5))
		recs[i] = trace.Record{
			Seq:  seq,
			PC:   0x400000 + uint64(rng.Intn(64))*4,
			Addr: mem.Addr(rng.Intn(1 << 16)),
			CPU:  uint8(rng.Intn(cpus)),
			Kind: trace.Kind(btoi(rng.Intn(4) == 0)),
		}
	}
	return recs
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func resultJSON(t *testing.T, res *sim.Result) string {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestBatchedRunMatchesStepLoop(t *testing.T) {
	cfg := sim.Config{
		WarmupAccesses:     20_000,
		TrackGenerations:   true,
		WindowInstructions: 4096,
	}
	for _, pf := range []string{"none", "sms", "ls", "ghb", "stride", "nextline"} {
		t.Run(pf, func(t *testing.T) {
			c := cfg
			c.PrefetcherName = pf

			w, err := workload.ByName("oltp-db2")
			if err != nil {
				t.Fatal(err)
			}
			wcfg := workload.Config{CPUs: 4, Seed: 11, Length: 50_000}
			recs := trace.Collect(w.Make(wcfg), 0)
			rand.New(rand.NewSource(3)).Shuffle(len(recs)/10, func(i, j int) {
				// Perturb a prefix so the stream is not purely
				// generator-shaped (Seq stays monotonic enough for the
				// window model because only nearby records swap).
				recs[i], recs[j] = recs[j], recs[i]
			})
			recs = append(recs, randomTrace(5, 4, 30_000)...)

			// Driver A: batched, via the zero-copy view path.
			ra := sim.MustNewRunner(c)
			resA, err := ra.RunContext(context.Background(), trace.NewSliceSource(recs))
			if err != nil {
				t.Fatal(err)
			}
			// Driver B: batched via the copying adapter (scalar source).
			rb := sim.MustNewRunner(c)
			resB, err := rb.RunContext(context.Background(), scalarSource{trace.NewSliceSource(recs)})
			if err != nil {
				t.Fatal(err)
			}
			// Driver C: record-at-a-time Step loop (Run drives finish()).
			rc := sim.MustNewRunner(c)
			for _, rec := range recs {
				rc.Step(rec)
			}
			resC := rc.Run(trace.NewSliceSource(nil)) // empty source: just finish

			ja, jb, jc := resultJSON(t, resA), resultJSON(t, resB), resultJSON(t, resC)
			if ja != jb {
				t.Fatalf("view-batched vs adapter-batched Result JSON differs:\n%s\nvs\n%s", ja, jb)
			}
			if ja != jc {
				t.Fatalf("batched vs Step-loop Result JSON differs:\n%s\nvs\n%s", ja, jc)
			}
		})
	}
}

// TestMappedReplayMatchesGenerator is the trace-format-v2 bit-identity
// differential: for every registered prefetcher, Result JSON from
// replaying an mmap'd v2 capture of a workload — through
// trace.OpenMapped directly and through the trace: workload family —
// must equal the direct generator run byte for byte. This is what lets
// the engine's disk trace tier substitute replay for generation without
// perturbing a single figure number.
func TestMappedReplayMatchesGenerator(t *testing.T) {
	wcfg := workload.Config{CPUs: 4, Seed: 11, Length: 50_000}
	w, err := workload.ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.smst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := trace.NewV2Writer(f, trace.Header{CPUs: wcfg.CPUs, Workload: "oltp-db2", BlockRecords: 4096})
	if err != nil {
		t.Fatal(err)
	}
	src := trace.Batched(w.Make(wcfg))
	buf := make([]trace.Record, 1024)
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		if err := tw.WriteBatch(buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	traceWL, err := workload.ByName("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := sim.Config{
		WarmupAccesses:     20_000,
		TrackGenerations:   true,
		WindowInstructions: 4096,
	}
	for _, pf := range sim.Names() {
		t.Run(pf, func(t *testing.T) {
			c := cfg
			c.PrefetcherName = pf

			gen, err := sim.MustNewRunner(c).RunContext(context.Background(), w.Make(wcfg))
			if err != nil {
				t.Fatal(err)
			}
			m, err := trace.OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			mapped, err := sim.MustNewRunner(c).RunContext(context.Background(), m)
			if err != nil {
				t.Fatal(err)
			}
			family, err := sim.MustNewRunner(c).RunContext(context.Background(), traceWL.Make(wcfg))
			if err != nil {
				t.Fatal(err)
			}

			jg, jm, jf := resultJSON(t, gen), resultJSON(t, mapped), resultJSON(t, family)
			if jg != jm {
				t.Fatalf("mmap replay Result JSON differs from generator:\n%s\nvs\n%s", jm, jg)
			}
			if jg != jf {
				t.Fatalf("trace: workload Result JSON differs from generator:\n%s\nvs\n%s", jf, jg)
			}
		})
	}
}

// TestRunContextSurfacesSourceDecodeError: a corrupt trace artifact
// (valid header and index, damaged block payload) must fail the run,
// not quietly produce a Result over the partial stream — a wrong Result
// persisted under a content-addressed key would poison every future
// lookup of that run.
func TestRunContextSurfacesSourceDecodeError(t *testing.T) {
	w, err := workload.ByName("sparse")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw, err := trace.NewV2Writer(&buf, trace.Header{BlockRecords: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteBatch(trace.Collect(w.Make(workload.Config{CPUs: 1, Seed: 1, Length: 2000}), 0)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first block's seq-column length field (the header is
	// 66 bytes with an empty workload name): decode fails, the index
	// stays valid, so only the post-drain Err() check can catch it.
	raw := buf.Bytes()
	raw[66+4] = 0xff
	path := filepath.Join(t.TempDir(), "corrupt.smst")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := trace.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res, err := sim.MustNewRunner(sim.Config{WarmupAccesses: 100}).RunContext(context.Background(), m)
	if err == nil || res != nil {
		t.Fatalf("corrupt replay returned res=%v err=%v, want nil result and an error", res, err)
	}
}

// TestV2RoundTripAllWorkloads pins the v2 codec to the generators: for
// every registered workload, encode→decode reproduces the exact record
// stream.
func TestV2RoundTripAllWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		t.Run(w.Name, func(t *testing.T) {
			cfg := workload.Config{CPUs: 3, Seed: 99, Length: 30_000}
			want := trace.Collect(w.Make(cfg), 0)
			var buf bytes.Buffer
			tw, err := trace.NewV2Writer(&buf, trace.Header{CPUs: cfg.CPUs, Workload: w.Name, BlockRecords: 4096})
			if err != nil {
				t.Fatal(err)
			}
			if err := tw.WriteBatch(want); err != nil {
				t.Fatal(err)
			}
			if err := tw.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := trace.NewV2Reader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatal(err)
			}
			got := trace.Collect(r, 0)
			if r.Err() != nil {
				t.Fatal(r.Err())
			}
			if len(got) != len(want) {
				t.Fatalf("decoded %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d differs: decoded %+v, generated %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestWorkloadBatchMatchesNext pins the batch-native generators to their
// scalar record stream: any interleaving of Next and NextBatch yields the
// same sequence.
func TestWorkloadBatchMatchesNext(t *testing.T) {
	for _, w := range workload.All() {
		t.Run(w.Name, func(t *testing.T) {
			cfg := workload.Config{CPUs: 3, Seed: 99, Length: 30_000}
			scalar := w.Make(cfg)
			batched := trace.Batched(w.Make(cfg))
			rng := rand.New(rand.NewSource(1))
			buf := make([]trace.Record, 257)
			var got []trace.Record
			for {
				n := batched.NextBatch(buf[:1+rng.Intn(len(buf)-1)])
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			want := trace.Collect(scalar, 0)
			if len(got) != len(want) {
				t.Fatalf("batched yielded %d records, scalar %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d differs: batched %+v, scalar %+v", i, got[i], want[i])
				}
			}
		})
	}
}
