package sim_test

// Golden-result pins for the hot-path rewrite: each case hashes the full
// canonical Result JSON of one simulation. The expected hashes were
// recorded from the map-based implementation (pre PR 4) and must never
// change — the result store content-addresses runs, so any drift here
// silently invalidates every figure. Run with -run TestGoldenResults
// -v to see the computed hashes when adding a case.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"

	_ "repro/internal/nextline"
)

// goldenLength keeps each case around 60k records: long enough to cycle
// every structure (directory growth, generation retirement, register-file
// round-robin, window flushes), short enough for -short CI.
const goldenLength = 60_000

func goldenWorkload(t testing.TB, name string) workload.Config {
	t.Helper()
	return workload.Config{CPUs: 4, Seed: 7, Scale: 1.0, Length: goldenLength}
}

func bigBlockSystem() coherence.Config {
	return coherence.Config{
		CPUs: 4,
		L1:   cache.Config{Size: 32 << 10, Assoc: 2, BlockSize: 256},
		L2:   cache.Config{Size: 1 << 20, Assoc: 8, BlockSize: 256},
	}
}

var goldenCases = []struct {
	name     string
	workload string
	cfg      sim.Config
	want     string
}{
	{
		name:     "oltp-db2-sms-gens-windows",
		workload: "oltp-db2",
		cfg: sim.Config{
			PrefetcherName:     "sms",
			WarmupAccesses:     goldenLength / 2,
			TrackGenerations:   true,
			WindowInstructions: 4096,
		},
		want: "efb6600de8b86b34841eb362182a25ad579d0e109ab32d898fed9902a71c4c74",
	},
	{
		name:     "oltp-oracle-baseline-windows",
		workload: "oltp-oracle",
		cfg: sim.Config{
			PrefetcherName:     "none",
			WarmupAccesses:     goldenLength / 2,
			WindowInstructions: 4096,
		},
		want: "66ebde0c319d1ffb325c040391d66255b43834a09fd481990461d19c237c3442",
	},
	{
		name:     "dss-q1-ghb",
		workload: "dss-q1",
		cfg: sim.Config{
			PrefetcherName: "ghb",
			WarmupAccesses: goldenLength / 2,
		},
		want: "bbac6d7e837bbfd063dfef649405c4fa59b3574d200d779957f7501ed35e3e58",
	},
	{
		name:     "web-apache-ls-gens",
		workload: "web-apache",
		cfg: sim.Config{
			PrefetcherName:   "ls",
			WarmupAccesses:   goldenLength / 2,
			TrackGenerations: true,
		},
		want: "8008ce5c461baed96c0db374f8eddb2f900110704b57064aa8990b88b84bc9f6",
	},
	{
		name:     "sparse-stride",
		workload: "sparse",
		cfg: sim.Config{
			PrefetcherName: "stride",
			WarmupAccesses: goldenLength / 2,
		},
		want: "a3479723618e6b618e0af92c68fc69e012ec8761cd8394abe22570fa018f6cf4",
	},
	{
		name:     "dss-q2-nextline",
		workload: "dss-q2",
		cfg: sim.Config{
			PrefetcherName: "nextline",
			WarmupAccesses: goldenLength / 2,
		},
		want: "19d52ae032a96589a100c7bb382e9bb10b183ace05c29d0b11ce77253cee5cee",
	},
	{
		name:     "em3d-sms-bigblock-gens",
		workload: "em3d",
		cfg: sim.Config{
			Coherence:        bigBlockSystem(),
			Geometry:         mem.MustGeometry(256, 4096),
			PrefetcherName:   "sms",
			WarmupAccesses:   goldenLength / 2,
			TrackGenerations: true,
		},
		want: "244396f24d207b6876c2c97dfb710a57683ca53df891b650a6b875486cb2d0d3",
	},
	{
		name:     "ocean-sms-region4k",
		workload: "ocean",
		cfg: sim.Config{
			Geometry:       mem.MustGeometry(64, 4096),
			PrefetcherName: "sms",
			WarmupAccesses: goldenLength / 2,
		},
		want: "d0026962dbbfa71187af6cc624576c85cd6e14e27f670412c502ea9692f05479",
	},
}

func resultHash(t testing.TB, res *sim.Result) string {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func TestGoldenResults(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := workload.ByName(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			r, err := sim.NewRunner(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := r.Run(w.Make(goldenWorkload(t, tc.workload)))
			got := resultHash(t, res)
			t.Logf("%s: %s", tc.name, got)
			if got != tc.want {
				t.Errorf("result hash drifted:\n got  %s\n want %s\nthe simulation no longer produces bit-identical results; store keys and figure numbers would change", got, tc.want)
			}
		})
	}
}
