package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mem"
)

// writeV2 encodes recs into a v2 byte slice with the given header.
func writeV2(t *testing.T, hdr Header, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewV2Writer(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// wildRecords exercises the encoder's corner cases: huge deltas in both
// directions, repeated values, full uint64 range.
func wildRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Seq:  rng.Uint64(),
			PC:   rng.Uint64() >> uint(rng.Intn(64)),
			Addr: mem.Addr(rng.Uint64() >> uint(rng.Intn(64))),
			CPU:  uint8(rng.Intn(256)),
			Kind: Kind(rng.Intn(2)),
		}
	}
	return recs
}

func TestV2RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, DefaultBlockRecords, DefaultBlockRecords + 1, 3*DefaultBlockRecords + 17} {
		recs := wildRecords(n, int64(n)+1)
		hdr := Header{CPUs: 8, Geometry: mem.DefaultGeometry(), Workload: "oltp-db2",
			WorkloadHash: strings.Repeat("ab", 32)}
		data := writeV2(t, hdr, recs)

		r, err := NewV2Reader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := Collect(r, 0)
		if r.Err() != nil {
			t.Fatalf("n=%d: %v", n, r.Err())
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d records", n, len(got))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("n=%d: record %d = %+v, want %+v", n, i, got[i], recs[i])
			}
		}
		h := r.Header()
		if h.Records != uint64(n) || h.CPUs != 8 || h.Workload != "oltp-db2" ||
			h.WorkloadHash != strings.Repeat("ab", 32) || h.Geometry != mem.DefaultGeometry() {
			t.Fatalf("n=%d: header round trip: %+v", n, h)
		}
	}
}

func TestV2SmallBlocksAndInterleavedReads(t *testing.T) {
	recs := wildRecords(1000, 3)
	data := writeV2(t, Header{BlockRecords: 64}, recs)
	r, err := NewV2Reader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().Blocks != (1000+63)/64 {
		t.Fatalf("blocks = %d", r.Header().Blocks)
	}
	var got []Record
	buf := make([]Record, 37)
	for i := 0; ; i++ {
		switch i % 3 {
		case 0:
			rec, ok := r.Next()
			if !ok {
				goto done
			}
			got = append(got, rec)
		case 1:
			n := r.NextBatch(buf[:1+i%len(buf)])
			if n == 0 {
				goto done
			}
			got = append(got, buf[:n]...)
		case 2:
			v := r.NextView(29)
			if len(v) == 0 {
				goto done
			}
			got = append(got, v...)
		}
	}
done:
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestV2Seek(t *testing.T) {
	recs := wildRecords(500, 9)
	data := writeV2(t, Header{BlockRecords: 64}, recs)
	r, err := NewV2Reader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []uint64{0, 1, 63, 64, 65, 250, 499, 500, 1000} {
		if err := r.Seek(pos); err != nil {
			t.Fatalf("Seek(%d): %v", pos, err)
		}
		rec, ok := r.Next()
		if pos >= uint64(len(recs)) {
			if ok {
				t.Fatalf("Seek(%d) past end yielded a record", pos)
			}
			continue
		}
		if !ok || rec != recs[pos] {
			t.Fatalf("Seek(%d): got %+v ok=%v, want %+v", pos, rec, ok, recs[pos])
		}
	}
	// Seek back to 0 replays the whole stream.
	if err := r.Seek(0); err != nil {
		t.Fatal(err)
	}
	if got := Collect(r, 0); len(got) != len(recs) {
		t.Fatalf("after Seek(0): %d records", len(got))
	}
}

func TestV2HeaderPatchThroughFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.smst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewV2Writer(f, Header{Workload: "x"})
	if err != nil {
		t.Fatal(err)
	}
	recs := wildRecords(100, 4)
	if err := w.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The header's record count was patched in place (os.File is an
	// io.WriterAt), so even the fixed header is self-describing.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := raw[24]; got != 100 {
		t.Fatalf("header record count byte = %d, want 100", got)
	}

	info, err := Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Records != 100 || info.Workload != "x" || info.Bytes != int64(len(raw)) {
		t.Fatalf("Stat = %+v", info)
	}
}

func TestV2FileMappedReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.smst")
	recs := wildRecords(5000, 8)
	raw := writeV2(t, Header{BlockRecords: 512, CPUs: 4}, recs)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Info().Records != 5000 || f.Info().Version != 2 {
		t.Fatalf("Info = %+v", f.Info())
	}

	// Two concurrent sources over one mapping see independent streams.
	a, b := f.NewSource(), f.NewSource()
	ga := Collect(a, 0)
	gb := Collect(b, 0)
	if len(ga) != len(recs) || len(gb) != len(recs) {
		t.Fatalf("sources yielded %d/%d records", len(ga), len(gb))
	}
	for i := range recs {
		if ga[i] != recs[i] || gb[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}

	// OpenMapped owns its mapping; Seek-rewind replays without realloc.
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	n := 0
	for {
		v := m.NextView(600)
		if len(v) == 0 {
			break
		}
		n += len(v)
	}
	m.Reset()
	for {
		v := m.NextView(600)
		if len(v) == 0 {
			break
		}
		n += len(v)
	}
	if n != 2*len(recs) {
		t.Fatalf("two mapped replays yielded %d records, want %d", n, 2*len(recs))
	}
}

func TestV1FileReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t1.smst")
	recs := mkRecords(700, 12)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	info, err := Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Records != 0 {
		t.Fatalf("v1 Stat = %+v", info)
	}

	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Info().Records != 700 {
		t.Fatalf("v1 OpenFile records = %d", f.Info().Records)
	}
	got := Collect(f.NewSource(), 0)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}

	if _, err := OpenMapped(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("OpenMapped on v1 = %v, want ErrBadFormat", err)
	}
}

func TestV2CorruptionWrapsErrors(t *testing.T) {
	recs := wildRecords(300, 5)
	data := writeV2(t, Header{BlockRecords: 64, Workload: "w"}, recs)

	open := func(b []byte) (*V2Reader, error) {
		return NewV2Reader(bytes.NewReader(b), int64(len(b)))
	}

	// Truncations anywhere must yield wrapped ErrBadFormat or
	// io.ErrUnexpectedEOF from the constructor (the tail goes missing).
	for _, cut := range []int{0, 1, 5, v2HeaderMin - 1, v2HeaderMin + 10, len(data) / 2, len(data) - 1, len(data) - v2TailSize} {
		_, err := open(data[:cut])
		if err == nil {
			t.Fatalf("cut at %d accepted", cut)
		}
		if !errors.Is(err, ErrBadFormat) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("cut at %d: unwrapped error %v", cut, err)
		}
	}

	// Bad magic / version.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := open(bad); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[4] = 7
	if _, err := open(bad); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad version: %v", err)
	}

	// Corrupt index (CRC catches it).
	bad = append([]byte(nil), data...)
	bad[len(bad)-v2TailSize-3] ^= 0xff
	if _, err := open(bad); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("corrupt index: %v", err)
	}

	// Corrupt block body: constructor succeeds (the index is intact),
	// decoding reports a wrapped error and never panics.
	bad = append([]byte(nil), data...)
	bad[v2HeaderMin+len("w")+9] ^= 0xff
	r, err := open(bad)
	if err == nil {
		Collect(r, 0)
		err = r.Err()
	}
	if err == nil {
		// Some column-byte flips decode to different records without
		// tripping validation; corrupt a block's count field instead,
		// which is always caught against the index.
		bad = append([]byte(nil), data...)
		bad[v2HeaderMin+len("w")] ^= 0xff
		r, err = open(bad)
		if err == nil {
			Collect(r, 0)
			err = r.Err()
		}
	}
	if err == nil || (!errors.Is(err, ErrBadFormat) && !errors.Is(err, io.ErrUnexpectedEOF)) {
		t.Fatalf("corrupt block: %v", err)
	}
}

func TestV2WriterRejectsBadHash(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewV2Writer(&buf, Header{WorkloadHash: "zz"}); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad hash accepted: %v", err)
	}
}

func TestV2GeneratorCompression(t *testing.T) {
	// Generator-shaped traces (small monotone seq deltas, repeated PCs,
	// clustered addresses) must compress well below the 26-byte fixed
	// v1 encoding; this pins the format's reason to exist.
	recs := make([]Record, 20000)
	var seq uint64
	for i := range recs {
		seq += 3
		recs[i] = Record{
			Seq:  seq,
			PC:   0x400000 + uint64(i%32)*4,
			Addr: mem.Addr(1<<30 + uint64(i%512)*64),
			CPU:  uint8(i % 4),
			Kind: Kind(i % 7 / 6),
		}
	}
	data := writeV2(t, Header{}, recs)
	perRecord := float64(len(data)) / float64(len(recs))
	if perRecord > 13 {
		t.Fatalf("v2 encodes %0.1f bytes/record, want well under the 26-byte v1 encoding", perRecord)
	}
}
