package store

// Crash-atomicity and quarantine coverage: injected partial writes,
// renames that never happen, and poisoned objects. The invariant under
// test is the store's central promise — a reader never observes a torn
// result, figure, or trace artifact, no matter where the writer died.

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestCorruptObjectQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ForFigure("fig4", 2, 1, 1000, sim.SamplingConfig{})
	if err := s.PutFigure(key, "good"); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath(kindFigure, key)
	if err := os.WriteFile(path, []byte(`{"text": trunca`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetFigure(key); ok {
		t.Fatal("corrupt object served")
	}
	// The poisoned file moved out of the addressable tree...
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt object still addressable: %v", err)
	}
	qpath := filepath.Join(dir, "corrupt", kindFigure, key+".json")
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("corrupt object not quarantined at %s: %v", qpath, err)
	}
	if st := s2.Stats(); st.Quarantined != 1 || st.Corrupt != 1 {
		t.Errorf("stats = %+v, want Quarantined=1 Corrupt=1", st)
	}
	// ...so a second read is a plain miss, not another corruption.
	if _, ok := s2.GetFigure(key); ok {
		t.Fatal("quarantined object served")
	}
	if st := s2.Stats(); st.Corrupt != 1 || st.Quarantined != 1 {
		t.Errorf("re-read re-counted corruption: %+v", st)
	}
	// Re-putting repairs the address.
	if err := s2.PutFigure(key, "repaired"); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.GetFigure(key); !ok || got != "repaired" {
		t.Fatalf("after repair: %q, %v", got, ok)
	}
}

func TestCorruptTraceQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ForTrace("sparse", workload.Config{CPUs: 1, Seed: 1, Length: 10})
	if err := s.PutTraceRecords(key, trace.Header{}, traceRecords(10)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.tracePath(key), []byte("SMSTgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.OpenTrace(key); ok {
		t.Fatal("corrupt trace opened")
	}
	if s.HasTrace(key) {
		t.Fatal("corrupt trace still addressable after quarantine")
	}
	qpath := filepath.Join(dir, "corrupt", kindTrace, key+".smst")
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("corrupt trace not quarantined at %s: %v", qpath, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v, want Quarantined=1", st)
	}
}

// assertNoTornObjects walks every addressable object under the store
// root and fails if any does not decode — the reader-visible tree must
// hold only complete objects.
func assertNoTornObjects(t *testing.T, dir string) {
	t.Helper()
	for _, kind := range []string{kindResult, kindFigure} {
		matches, err := filepath.Glob(filepath.Join(dir, kind, "*", "*.json"))
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range matches {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var v any
			if err := json.Unmarshal(data, &v); err != nil {
				t.Errorf("torn object visible at %s: %v", path, err)
			}
		}
	}
	traces, err := filepath.Glob(filepath.Join(dir, kindTrace, "*", "*.smst"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range traces {
		if _, err := trace.Stat(path); err != nil {
			t.Errorf("torn trace artifact visible at %s: %v", path, err)
		}
	}
}

// TestWriteAtomicityUnderInjectedCrashes walks the write-side crash
// points — a torn partial write and a rename that never happens — for
// results, figures, and trace artifacts, with concurrent readers
// racing every attempt. No reader, during or after the crash, may
// observe a torn object.
func TestWriteAtomicityUnderInjectedCrashes(t *testing.T) {
	res := tinyResult(t)
	cases := []struct {
		name string
		rule fault.Rule
	}{
		{"partial-write", fault.Rule{Site: "store.*", Kind: fault.KindPartial, Frac: 0.4}},
		{"pre-rename-crash", fault.Rule{Site: "store.*", Kind: fault.KindCrash}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			victim, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// The reader is a second process over the same directory:
			// it must never see the victim's debris.
			reader, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			key := ForRun("sparse", workload.Config{CPUs: 1, Seed: 1, Length: 4000},
				sim.Config{PrefetcherName: "sms"})
			fkey := ForFigure("fig4", 1, 1, 4000, sim.SamplingConfig{})
			tkey := ForTrace("sparse", workload.Config{CPUs: 1, Seed: 1, Length: 10})

			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if got, ok := reader.ProbeResult(key); ok && got.Accesses != res.Accesses {
						t.Error("reader observed a result that was never completely written")
					}
					if _, ok := reader.ProbeFigure(fkey); ok {
						t.Error("reader observed a figure that was never completely written")
					}
					if f, ok := reader.OpenTrace(tkey); ok {
						f.Close()
						t.Error("reader observed a trace that was never completely published")
					}
				}
			}()

			// Each write gets a fresh injector: one crash kills one
			// process; the next attempt is a new incarnation.
			victim.SetFault(fault.MustNew(fault.Plan{Rules: []fault.Rule{tc.rule}}))
			if err := victim.PutResult(key, res); !errors.Is(err, fault.ErrCrashed) {
				t.Fatalf("PutResult under %s = %v, want ErrCrashed", tc.name, err)
			}
			victim.SetFault(fault.MustNew(fault.Plan{Rules: []fault.Rule{tc.rule}}))
			if err := victim.PutFigure(fkey, "torn?"); !errors.Is(err, fault.ErrCrashed) {
				t.Fatalf("PutFigure under %s = %v, want ErrCrashed", tc.name, err)
			}
			victim.SetFault(fault.MustNew(fault.Plan{Rules: []fault.Rule{
				{Site: "store.traces.rename", Kind: tc.rule.Kind, Frac: tc.rule.Frac},
			}}))
			if err := victim.PutTraceRecords(tkey, trace.Header{}, traceRecords(10)); !errors.Is(err, fault.ErrCrashed) {
				t.Fatalf("PutTraceRecords under %s = %v, want ErrCrashed", tc.name, err)
			}
			close(stop)
			wg.Wait()

			// The crashes left temp debris but nothing addressable.
			assertNoTornObjects(t, dir)
			if _, ok := reader.GetResult(key); ok {
				t.Fatal("crashed result write became visible")
			}

			// A fresh incarnation over the same directory repairs every
			// address by rewriting it.
			victim.SetFault(nil)
			if err := victim.PutResult(key, res); err != nil {
				t.Fatal(err)
			}
			if err := victim.PutTraceRecords(tkey, trace.Header{}, traceRecords(10)); err != nil {
				t.Fatal(err)
			}
			if got, ok := reader.GetResult(key); !ok || got.Accesses != res.Accesses {
				t.Fatalf("repaired result = %v, %v", got, ok)
			}
			if f, ok := reader.OpenTrace(tkey); !ok {
				t.Fatal("repaired trace not readable")
			} else {
				f.Close()
			}
			assertNoTornObjects(t, dir)
		})
	}
}

// TestInjectedReadErrorIsAMiss: a failing read (I/O error, not
// corruption) degrades to a miss, mirroring the corruption contract.
func TestInjectedReadErrorIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ForFigure("fig4", 1, 1, 10, sim.SamplingConfig{})
	if err := s.PutFigure(key, "x"); err != nil {
		t.Fatal(err)
	}
	// A second store so the lookup goes to disk, with reads failing.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetFault(fault.MustNew(fault.Plan{Rules: []fault.Rule{
		{Site: "store.figures.read", Kind: fault.KindError, Times: 1},
	}}))
	if _, ok := s2.GetFigure(key); ok {
		t.Fatal("failed read served a figure")
	}
	if st := s2.Stats(); st.Misses != 1 {
		t.Errorf("stats = %+v, want one miss", st)
	}
	// The rule is spent; the next read succeeds.
	if got, ok := s2.GetFigure(key); !ok || got != "x" {
		t.Fatalf("read after spent rule = %q, %v", got, ok)
	}
}
