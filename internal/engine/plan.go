package engine

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// Plan is a declarative grid of simulations: the cross product of
// Workloads × Variants, plus optional Custom cells computed outside the
// standard runner. It is the unit of work the Engine executes — figures
// declare Plans instead of hand-rolling run loops, and the smsd daemon
// turns HTTP jobs into Plans.
//
// Two cells whose configurations canonicalize identically compile to a
// single run: the compiled form is deduplicated, so a plan (or a merge of
// plans) that mentions the same (workload, config) many times — shared
// baselines, a sweep point that coincides with the default — simulates it
// exactly once.
type Plan struct {
	// Name labels the plan in events and job listings.
	Name string
	// Workloads are the registered workload names forming the first axis.
	Workloads []string
	// Variants are the named simulator configurations forming the second
	// axis. Every variant runs on every workload.
	Variants []Variant
	// Baseline optionally names the variant whose runs are the
	// normalization baseline (Grid.Baseline). It must name a declared
	// variant.
	Baseline string
	// Customs are extra grid cells computed by arbitrary functions (e.g.
	// the Fig. 8 decoupled-sectored study, which replaces the cache
	// hierarchy entirely). They share the engine's worker pool and
	// cancellation, but not the run store: memoization of custom cells is
	// the caller's business.
	Customs []Custom
	// Extra are explicit cells beyond the Workloads × Variants cross
	// product — the form Merge emits so a combined grid keeps each
	// source plan's exact workload scope instead of inflating to the
	// union. Extra cells deduplicate against cross-product cells runwise.
	Extra []Cell
}

// Cell is one explicit (workload, key, config) grid cell.
type Cell struct {
	Workload string
	Key      string
	// Config is the simulator configuration. WarmupAccesses is
	// overwritten by the engine's warm-up convention.
	Config sim.Config
}

// Variant is one named point on a plan's configuration axis.
type Variant struct {
	// Key identifies the variant within the plan (Grid.Result's second
	// coordinate). Keys must be unique within a plan.
	Key string
	// Config is the simulator configuration. WarmupAccesses is
	// overwritten by the engine's warm-up convention.
	Config sim.Config
}

// Custom is one grid cell computed by a caller-supplied function instead
// of the standard runner.
type Custom struct {
	// Workload and Key are the cell's grid coordinates (Grid.Custom).
	Workload string
	Key      string
	// Run computes the cell. It must honor ctx: return promptly with
	// ctx.Err() once cancelled.
	Run func(ctx context.Context) (any, error)
}

// WithVariant appends a variant built from key and cfg; it returns the
// plan for chaining in builder-style construction.
func (p Plan) WithVariant(key string, cfg sim.Config) Plan {
	p.Variants = append(p.Variants, Variant{Key: key, Config: cfg})
	return p
}

// Validate checks the plan's internal consistency: at least one cell,
// unique variant keys, unique custom/extra coordinates, and a Baseline
// that names a declared variant.
func (p Plan) Validate() error {
	if len(p.Workloads) == 0 && len(p.Customs) == 0 && len(p.Extra) == 0 {
		return fmt.Errorf("engine: plan %q declares no cells", p.Name)
	}
	if len(p.Workloads) > 0 && len(p.Variants) == 0 && len(p.Customs) == 0 && len(p.Extra) == 0 {
		return fmt.Errorf("engine: plan %q has workloads but no variants", p.Name)
	}
	seen := make(map[string]bool, len(p.Variants))
	for _, v := range p.Variants {
		if v.Key == "" {
			return fmt.Errorf("engine: plan %q has a variant with an empty key", p.Name)
		}
		if seen[v.Key] {
			return fmt.Errorf("engine: plan %q declares variant %q twice", p.Name, v.Key)
		}
		seen[v.Key] = true
	}
	if p.Baseline != "" && !seen[p.Baseline] {
		return fmt.Errorf("engine: plan %q baseline %q is not a declared variant", p.Name, p.Baseline)
	}
	extras := make(map[cellRef]bool, len(p.Extra))
	for _, c := range p.Extra {
		if c.Key == "" || c.Workload == "" {
			return fmt.Errorf("engine: plan %q has an extra cell with empty coordinates", p.Name)
		}
		ref := cellRef{c.Workload, c.Key}
		if extras[ref] || seen[c.Key] {
			return fmt.Errorf("engine: plan %q extra cell %s/%s collides with another cell", p.Name, c.Workload, c.Key)
		}
		extras[ref] = true
	}
	customs := make(map[cellRef]bool, len(p.Customs))
	for _, c := range p.Customs {
		if c.Key == "" || c.Workload == "" {
			return fmt.Errorf("engine: plan %q has a custom cell with empty coordinates", p.Name)
		}
		if c.Run == nil {
			return fmt.Errorf("engine: plan %q custom %s/%s has no Run function", p.Name, c.Workload, c.Key)
		}
		ref := cellRef{c.Workload, c.Key}
		if customs[ref] || seen[c.Key] || extras[ref] {
			return fmt.Errorf("engine: plan %q custom %s/%s collides with another cell", p.Name, c.Workload, c.Key)
		}
		customs[ref] = true
	}
	return nil
}

// Merge combines several plans into one grid under a new name, for
// executing multiple figures as a single job. Cell keys are namespaced as
// "<plan>/<key>" so plans cannot collide, and every source cell becomes
// an Extra cell, preserving each plan's exact workload scope (a plan
// over two workloads does not inflate to the union). Deduplication
// happens below the key level — cells whose configurations canonicalize
// identically (shared baselines, overlapping sweep points) still compile
// to a single run. The merged plan has no Baseline (each figure keeps
// its own notion).
func Merge(name string, plans ...Plan) Plan {
	out := Plan{Name: name}
	for _, p := range plans {
		for _, w := range p.Workloads {
			for _, v := range p.Variants {
				out.Extra = append(out.Extra, Cell{Workload: w, Key: p.Name + "/" + v.Key, Config: v.Config})
			}
		}
		for _, c := range p.Extra {
			out.Extra = append(out.Extra, Cell{Workload: c.Workload, Key: p.Name + "/" + c.Key, Config: c.Config})
		}
		for _, c := range p.Customs {
			out.Customs = append(out.Customs, Custom{Workload: c.Workload, Key: p.Name + "/" + c.Key, Run: c.Run})
		}
	}
	return out
}

// cellRef addresses one grid cell.
type cellRef struct{ workload, key string }

// node is one deduplicated run: a unique (workload, canonical config)
// pair, possibly serving many cells.
type node struct {
	workload string
	cfg      sim.Config // resolved: warm-up applied
	key      string     // store address; also the dedup key
	cells    []cellRef

	started bool // a simulation actually began (vs cached/skipped)
	cached  bool
	res     *sim.Result
	err     error
}

// compiled is the executable form of a plan.
type compiled struct {
	nodes []*node
	cells map[cellRef]*node
}

// compile resolves every cell to its canonical run and deduplicates runs
// by store address.
func (e *Engine) compile(p Plan) (*compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &compiled{cells: make(map[cellRef]*node, len(p.Workloads)*len(p.Variants)+len(p.Extra))}
	byKey := make(map[string]*node)
	add := func(workload, cellKey string, cfg sim.Config) {
		cfg = e.resolve(cfg)
		key := e.Key(workload, cfg)
		n, ok := byKey[key]
		if !ok {
			n = &node{workload: workload, cfg: cfg, key: key}
			byKey[key] = n
			c.nodes = append(c.nodes, n)
		}
		ref := cellRef{workload, cellKey}
		n.cells = append(n.cells, ref)
		c.cells[ref] = n
	}
	for _, w := range p.Workloads {
		for _, v := range p.Variants {
			add(w, v.Key, v.Config)
		}
	}
	for _, cell := range p.Extra {
		add(cell.Workload, cell.Key, cell.Config)
	}
	return c, nil
}
