// Command smsd is the experiment daemon: a long-running HTTP server that
// regenerates the paper's figures and runs ad-hoc simulations on demand,
// deduplicating concurrent identical work and persisting every result in
// a content-addressed store so nothing is ever simulated twice.
//
// Usage:
//
//	smsd -store /var/lib/smsd [-addr :8344] [-quick]
//
// Endpoints (see package repro/internal/server):
//
//	curl localhost:8344/v1/figures/fig8
//	curl -X POST localhost:8344/v1/runs -d '{"workload":"oltp-db2","prefetcher":"sms"}'
//	curl localhost:8344/v1/jobs/<id>
//	curl -X DELETE localhost:8344/v1/jobs/<id>
//	curl -X POST localhost:8344/v1/figures/fig8
//	curl localhost:8344/v1/prefetchers
//	curl localhost:8344/v1/workloads
//	curl localhost:8344/healthz
//	curl localhost:8344/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/server"

	// Registered through the sim registry alone; imported so the scheme
	// is selectable here even if no library path pulls it in.
	_ "repro/internal/nextline"
)

func main() {
	var (
		addr     = flag.String("addr", ":8344", "listen address")
		storeDir = flag.String("store", "", "result store directory (empty: in-memory caching only)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", server.DefaultQueue, "job queue bound (negative: no queueing)")
		cpus     = flag.Int("cpus", 4, "simulated processors")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		length   = flag.Uint64("length", 1_200_000, "accesses per workload trace (half is warm-up)")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		quick    = flag.Bool("quick", false, "abbreviated runs (overrides -cpus/-length)")
		grace    = flag.Duration("shutdown-deadline", 15*time.Second, "bound on graceful shutdown: in-flight simulations are cancelled, not drained")
	)
	flag.Parse()

	if err := run(*addr, *storeDir, *workers, *queue, *cpus, *seed, *length, *parallel, *quick, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "smsd:", err)
		os.Exit(1)
	}
}

func run(addr, storeDir string, workers, queue, cpus int, seed int64, length uint64, parallel int, quick bool, grace time.Duration) error {
	session := exp.NewSession(exp.CLIOptions(cpus, seed, length, parallel, quick))
	if err := exp.AttachStore(session, storeDir); err != nil {
		return err
	}
	if st := session.Store(); st != nil {
		log.Printf("result store at %s", st.Dir())
	} else {
		log.Printf("no -store directory: results cached in memory only")
	}

	srv, err := server.New(server.Config{Session: session, Workers: workers, Queue: queue})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An explicit listener (rather than ListenAndServe) means the logged
	// address is the one the kernel actually bound: with -addr :0 the
	// line below carries the assigned port, which scripts/smoke_smsd.sh
	// parses to run daemons on collision-free ephemeral ports.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	o := session.Options()
	log.Printf("smsd listening on %s (cpus=%d seed=%d length=%d)", ln.Addr(), o.CPUs, o.Seed, o.Length)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	var serveErr error
	select {
	case serveErr = <-errc:
		// The listener failed on its own (e.g. port in use); stop the
		// daemon's jobs before returning.
		srv.Close()
	case <-ctx.Done():
		log.Printf("shutting down (deadline %v)", grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		// Cancel every job first — in-flight simulations stop within one
		// progress interval, so even a synchronous figure request mid-
		// computation returns quickly (a half-finished multi-minute run
		// is cache-miss work we can redo, not something worth blocking
		// shutdown on). Only then drain the HTTP listener, which is now
		// fast, and finally stop the worker pool.
		srv.CancelJobs()
		_ = httpSrv.Shutdown(shutdownCtx)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("worker pool did not drain before the deadline: %v", err)
		}
		cancel()
		serveErr = <-errc
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}
