package stats

import (
	"math"
	"testing"
)

// Reference two-sided critical values from standard t tables.
func TestTCriticalAgainstTables(t *testing.T) {
	cases := []struct {
		confidence float64
		df         int
		want       float64
	}{
		{0.95, 1, 12.706},
		{0.95, 2, 4.303},
		{0.95, 5, 2.571},
		{0.95, 10, 2.228},
		{0.95, 30, 2.042},
		{0.95, 100, 1.984},
		{0.99, 5, 4.032},
		{0.99, 10, 3.169},
		{0.99, 30, 2.750},
		{0.90, 5, 2.015},
		{0.90, 10, 1.812},
		{0.80, 10, 1.372},
	}
	for _, c := range cases {
		got := TCritical(c.confidence, c.df)
		if math.Abs(got-c.want) > 5e-3*c.want {
			t.Errorf("TCritical(%g, %d) = %.4f, want ~%.3f", c.confidence, c.df, got, c.want)
		}
	}
}

// The computed 95% quantiles must agree with the tabulated ones the rest
// of the toolkit uses, across the whole table range.
func TestTCriticalMatches95Table(t *testing.T) {
	for df := 1; df <= 30; df++ {
		got := TCritical(0.95, df)
		want := tCritical95(df)
		if math.Abs(got-want) > 1e-3*want {
			t.Errorf("df=%d: TCritical=%.4f, table=%.4f", df, got, want)
		}
	}
}

func TestTCriticalLargeDfApproachesNormal(t *testing.T) {
	got := TCritical(0.95, 100000)
	if math.Abs(got-1.96) > 0.001 {
		t.Errorf("TCritical(0.95, 1e5) = %.4f, want ~1.960", got)
	}
}

func TestTCriticalDegenerate(t *testing.T) {
	if !math.IsInf(TCritical(0.95, 0), 1) {
		t.Error("df=0 should be +Inf")
	}
	if !math.IsNaN(TCritical(1.5, 10)) || !math.IsNaN(TCritical(0, 10)) {
		t.Error("confidence outside (0,1) should be NaN")
	}
}

func TestTCriticalMonotonicInConfidence(t *testing.T) {
	prev := 0.0
	for _, conf := range []float64{0.5, 0.8, 0.9, 0.95, 0.99, 0.999} {
		v := TCritical(conf, 8)
		if v <= prev {
			t.Fatalf("TCritical not increasing: %g at %g after %g", v, conf, prev)
		}
		prev = v
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	iv95 := MeanCI(xs, 0.95)
	want := MeanCI95(xs)
	if math.Abs(iv95.Mean-want.Mean) > 1e-12 || math.Abs(iv95.Half-want.Half) > 1e-3*want.Half {
		t.Errorf("MeanCI(0.95) = %v, MeanCI95 = %v", iv95, want)
	}
	iv99 := MeanCI(xs, 0.99)
	if iv99.Half <= iv95.Half {
		t.Errorf("99%% interval (%g) not wider than 95%% (%g)", iv99.Half, iv95.Half)
	}
	if n1 := MeanCI([]float64{7}, 0.95); !math.IsInf(n1.Half, 1) || n1.Mean != 7 {
		t.Errorf("single sample: got %v, want mean 7 half +Inf", n1)
	}
	if z := MeanCI(nil, 0.95); z != (Interval{}) {
		t.Errorf("empty samples: got %v, want zero interval", z)
	}
}

// regIncBeta sanity: I_x(1,1) is the uniform CDF; symmetry relation
// I_x(a,b) = 1 - I_{1-x}(b,a).
func TestRegIncBeta(t *testing.T) {
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
	}
	for _, x := range []float64{0.2, 0.5, 0.7} {
		a, b := 3.0, 0.5
		lhs := regIncBeta(a, b, x)
		rhs := 1 - regIncBeta(b, a, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("symmetry broken at x=%g: %g vs %g", x, lhs, rhs)
		}
	}
}
