package sectored

import (
	"repro/internal/core"
	"repro/internal/mem"
)

// DecoupledSectored is the DS variant: the training structure *is* the
// cache's (sectored) tag array, so the spatial predictor comes almost for
// free in hardware — but a block may only be resident while its sector tag
// is, and replacing a sector evicts every resident block of that sector.
// The additional constraint on cache contents raises the demand miss rate,
// which is the effect the paper's Fig. 8 quantifies against a traditional
// cache baseline.
type DecoupledSectored struct {
	cfg   Config
	geo   mem.Geometry
	tags  *tagArray
	pht   *core.PatternHistoryTable
	regs  *core.RegisterFile
	stats Stats

	demandMisses    uint64
	prefetchHits    uint64
	overpredictions uint64
}

// NewDecoupledSectored builds the DS cache+trainer.
func NewDecoupledSectored(cfg Config) (*DecoupledSectored, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	pht, err := core.NewPHT(cfg.PHTEntries, cfg.PHTAssoc)
	if err != nil {
		return nil, err
	}
	return &DecoupledSectored{
		cfg:  cfg,
		geo:  cfg.Geometry,
		tags: newTagArray(cfg.Geometry, cfg.CacheSize/cfg.Geometry.RegionSize(), cfg.Assoc),
		pht:  pht,
		regs: core.NewRegisterFile(cfg.Geometry, cfg.PredictionRegisters),
	}, nil
}

// MustNewDecoupledSectored is NewDecoupledSectored that panics on error.
func MustNewDecoupledSectored(cfg Config) *DecoupledSectored {
	d, err := NewDecoupledSectored(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// PHT exposes the pattern history table.
func (d *DecoupledSectored) PHT() *core.PatternHistoryTable { return d.pht }

// Stats returns activity counters.
func (d *DecoupledSectored) Stats() Stats {
	st := d.stats
	st.StreamsIssued = d.regs.Issued()
	return st
}

// AccessResult reports the cache behaviour of one access to the DS cache.
type AccessResult struct {
	// Hit reports whether the block was resident.
	Hit bool
	// PrefetchHit reports the first demand hit on a streamed block.
	PrefetchHit bool
}

// Access performs a demand access: cache lookup, training, and (on a
// sector allocation) prediction.
func (d *DecoupledSectored) Access(pc uint64, addr mem.Addr) AccessResult {
	d.stats.Accesses++
	tag := d.geo.RegionTag(addr)
	off := d.geo.RegionOffset(addr)

	if s := d.tags.find(tag); s != nil {
		d.tags.touch(s)
		if s.resident.Test(off) {
			res := AccessResult{Hit: true}
			if s.prefetched.Test(off) && !s.usedPref.Test(off) {
				s.usedPref.Set(off)
				res.PrefetchHit = true
				d.prefetchHits++
			}
			s.accessed.Set(off)
			return res
		}
		// Sector present, block absent: block-grain miss and fill.
		d.demandMisses++
		s.resident.Set(off)
		s.accessed.Set(off)
		return AccessResult{}
	}

	// Sector miss: whole-sector replacement, generation boundary.
	d.demandMisses++
	s, victim, had := d.tags.allocate(tag)
	if had {
		d.retire(victim)
	}
	d.stats.Triggers++
	s.trig = sectorTrigger{pc: pc, addr: addr}
	s.resident.Set(off)
	s.accessed.Set(off)
	d.predict(pc, addr)
	return AccessResult{}
}

// Fill installs a streamed block into the DS cache. Stream fills do not
// allocate sectors: a prediction is only useful while its generation's
// sector survives, so fills for dead sectors are dropped (counted as
// overpredictions).
func (d *DecoupledSectored) Fill(addr mem.Addr) {
	tag := d.geo.RegionTag(addr)
	off := d.geo.RegionOffset(addr)
	s := d.tags.find(tag)
	if s == nil {
		d.overpredictions++
		return
	}
	if s.resident.Test(off) {
		return
	}
	s.resident.Set(off)
	s.prefetched.Set(off)
}

// BlockRemoved observes a coherence invalidation.
func (d *DecoupledSectored) BlockRemoved(addr mem.Addr) {
	tag := d.geo.RegionTag(addr)
	off := d.geo.RegionOffset(addr)
	if s := d.tags.find(tag); s != nil && s.accessed.Test(off) {
		v, _ := d.tags.remove(tag)
		d.retire(v)
	}
}

// retire ends a generation: learn the accessed pattern, count streamed
// blocks that were never used.
func (d *DecoupledSectored) retire(v sector) {
	unused := v.prefetched.AndNot(v.usedPref)
	d.overpredictions += uint64(unused.PopCount())
	if v.accessed.PopCount() < 2 {
		return
	}
	key := core.IndexKeyFor(d.cfg.Index, d.geo, v.trig.pc, v.trig.addr)
	d.pht.Insert(key, v.accessed)
	d.stats.PatternsLearned++
}

func (d *DecoupledSectored) predict(pc uint64, addr mem.Addr) {
	key := core.IndexKeyFor(d.cfg.Index, d.geo, pc, addr)
	p, ok := d.pht.Lookup(key)
	if !ok || p.Width() != d.geo.BlocksPerRegion() {
		return
	}
	off := d.geo.RegionOffset(addr)
	if p.Test(off) {
		p.Clear(off)
	}
	if p.Empty() {
		return
	}
	d.stats.Predictions++
	d.regs.Arm(d.geo.RegionBase(addr), p)
}

// NextStreamRequests pops up to max predicted block addresses.
func (d *DecoupledSectored) NextStreamRequests(max int) []mem.Addr { return d.regs.Next(max) }

// DemandMisses returns the number of demand misses (block- or
// sector-grain) the DS cache has taken.
func (d *DecoupledSectored) DemandMisses() uint64 { return d.demandMisses }

// PrefetchHits returns first-use hits on streamed blocks.
func (d *DecoupledSectored) PrefetchHits() uint64 {
	// Tracked via AccessResult; recomputed here from stats for
	// convenience of callers that ignore per-access results.
	return d.prefetchHits
}

// Overpredictions returns streamed blocks that died unused.
func (d *DecoupledSectored) Overpredictions() uint64 { return d.overpredictions }
