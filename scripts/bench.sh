#!/bin/sh
# bench.sh — record the repo's headline performance numbers as JSON.
#
# Usage:
#   scripts/bench.sh [OUTFILE]          # record (default BENCH_after.json)
#   scripts/bench.sh --check            # CI gate: fail if any serial
#                                       # hot-path benchmark allocates
#                                       # per op, a pipelined leg exceeds
#                                       # 0.01 allocs/record, or the
#                                       # median-of-5 ns/record regressed
#                                       # >BENCH_TOLERANCE % (default 15)
#                                       # vs the last BENCH_history.jsonl
#                                       # recording on this machine
#
# The headline benchmarks cover the full record hot path (trace
# generation -> coherent hierarchy -> SMS -> accounting), the trace
# source alone, and one figure-scale run (fig8). ns/op for the per-record
# benchmarks is ns/record; MB/s is derived from the 26-byte trace record
# encoding. Fixed seeds and -benchtime keep runs comparable; numbers are
# still machine-dependent, so BENCH_*.json records the Go version and the
# delta between baseline and after matters more than absolute values.
# Each benchmark runs -count=5 and two numbers are recorded per
# benchmark: ns_per_op is the BEST run (scheduler and noisy-neighbour
# interference only ever adds time, so the minimum is the closest
# estimate of what the code costs) and ns_median is the MEDIAN (the
# stable estimator the --check regression gate compares against its own
# median-of-5 — comparing a median to a recorded minimum would flag
# machine noise as a regression).
set -eu

cd "$(dirname "$0")/.."

HEADLINE='^(BenchmarkSimulatorThroughput|BenchmarkSampledThroughput|BenchmarkPipelinedThroughput|BenchmarkTraceGeneration|BenchmarkTraceReplay|BenchmarkFig8Training)$'
# Benchmarks that must not allocate per record in steady state (the
# serial hot paths). The pipelined legs are gated separately: their
# lane/prefetch setup reallocates per run and must amortize to
# <= MAX_PIPELINE_ALLOCS allocations per record.
ZERO_ALLOC='BenchmarkSimulatorThroughput|BenchmarkSampledThroughput|BenchmarkTraceGeneration|BenchmarkTraceReplay'
PIPELINED='BenchmarkPipelinedThroughput'
MAX_PIPELINE_ALLOCS=0.01

run_bench() {
	go test -run '^$' -bench "$HEADLINE" -benchmem -benchtime=2s -count=5 .
}

if [ "${1:-}" = "--check" ]; then
	out=$(go test -run '^$' -bench "^(${ZERO_ALLOC})\$" -benchmem -benchtime=200000x -count=1 .)
	echo "$out"
	echo "$out" | awk '
		/allocs\/op/ {
			allocs = ""; bytes = ""
			for (i = 1; i <= NF; i++) {
				if ($i == "allocs/op") allocs = $(i-1)
				if ($i == "B/op") bytes = $(i-1)
			}
			if (allocs + 0 > 0) { print "FAIL: " $1 " allocates " allocs " allocs/op (want 0)"; bad = 1 }
			if (bytes + 0 > 0) { print "FAIL: " $1 " allocates " bytes " B/op (want 0)"; bad = 1 }
		}
		END { exit bad }
	'
	echo "bench allocation check passed: hot-path benchmarks run at 0 B/op, 0 allocs/op"

	# Pipelined legs: lane runners and prefetch buffers reallocate per
	# RunContext call, so instead of the integer allocs/op column (which
	# truncates to 0) the benchmark reports a float allocs/record metric;
	# gate it at MAX_PIPELINE_ALLOCS to catch per-record allocations
	# sneaking into the fan-out or lane loops.
	pout=$(go test -run '^$' -bench "^(${PIPELINED})\$" -benchtime=500000x -count=1 .)
	echo "$pout"
	echo "$pout" | awk -v max="$MAX_PIPELINE_ALLOCS" '
		/allocs\/record/ {
			ar = ""
			for (i = 1; i <= NF; i++) if ($i == "allocs/record") ar = $(i-1)
			if (ar == "") next
			if (ar + 0 > max + 0) { print "FAIL: " $1 " at " ar " allocs/record (max " max ")"; bad = 1 }
			checked++
		}
		END {
			if (!checked) { print "FAIL: no allocs/record metrics found"; exit 1 }
			exit bad
		}
	'
	echo "pipelined allocation check passed: steady state <= ${MAX_PIPELINE_ALLOCS} allocs/record"

	# Regression gate: compare ns/op (= ns/record) per benchmark against
	# the most recent BENCH_history.jsonl recording. History lines embed
	# the recorded JSON, so the baseline comes from one sed pass over the
	# last line. The comparison gets its own time-based run — the
	# fixed-iteration alloc run above measures ~20ms per benchmark,
	# which is inside CPU frequency-scaling noise and not comparable to
	# a 2s recording. The gate takes the MEDIAN of 5 runs: best-of-3 let
	# one lucky (or unlucky) scheduler slice decide, and same-commit
	# history entries swung 283<->371 ns/record, wide enough to mask or
	# fake a real change. Only benchmarks present in both sets are
	# compared; with no history (fresh clone, CI runner) the gate is a
	# no-op, since cross-machine numbers are not comparable.
	HIST=BENCH_history.jsonl
	tol=${BENCH_TOLERANCE:-15}
	if [ ! -s "$HIST" ]; then
		echo "no $HIST baseline on this machine; skipping regression comparison"
		exit 0
	fi
	# Prefer the recorded median (same estimator as this gate); fall
	# back to ns_per_op for history lines predating the median field.
	baseline=$(tail -n 1 "$HIST" | tr '{' '\n' |
		sed -n 's/.*"name": "\([^"]*\)", "ns_per_op": [0-9.]*, "ns_median": \([0-9.]*\).*/\1 \2/p')
	[ -n "$baseline" ] || baseline=$(tail -n 1 "$HIST" | tr '{' '\n' |
		sed -n 's/.*"name": "\([^"]*\)", "ns_per_op": \([0-9.]*\).*/\1 \2/p')
	cmp=$(go test -run '^$' -bench "^(${ZERO_ALLOC})\$" -benchtime=1s -count=5 .)
	echo "$cmp" | awk -v tol="$tol" -v baseline="$baseline" '
		BEGIN {
			n = split(baseline, lines, "\n")
			for (i = 1; i <= n; i++) {
				split(lines[i], kv, " ")
				if (kv[1] != "") base[kv[1]] = kv[2]
			}
		}
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""
			for (i = 1; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
			if (ns == "") next
			vals[name] = (name in vals) ? vals[name] " " ns : ns
		}
		END {
			for (name in vals) {
				if (!(name in base)) continue
				n = split(vals[name], v, " ")
				# Insertion sort (n is 5): median is the middle value.
				for (i = 2; i <= n; i++) {
					x = v[i] + 0
					for (j = i - 1; j >= 1 && v[j] + 0 > x; j--) v[j+1] = v[j]
					v[j+1] = x
				}
				med = v[int((n + 1) / 2)]
				limit = base[name] * (1 + tol / 100)
				if (med + 0 > limit) {
					printf "FAIL: %s regressed to %.1f ns/op (median of %d), baseline %.1f (tolerance %s%%)\n", name, med, n, base[name], tol
					bad = 1
				} else {
					printf "ok: %s %.1f ns/op (median of %d) vs baseline %.1f (tolerance %s%%)\n", name, med, n, base[name], tol
				}
				compared++
			}
			if (!compared) print "no overlapping benchmarks with baseline; nothing compared"
			if (bad) exit 1
		}
	'
	echo "bench regression check passed (tolerance ${tol}%)"
	exit 0
fi

OUT=${1:-BENCH_after.json}
raw=$(run_bench)
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""
		for (i = 1; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i-1)
			if ($i == "B/op") bytes = $(i-1)
			if ($i == "allocs/op") allocs = $(i-1)
		}
		if (ns == "") next
		vals[name] = (name in vals) ? vals[name] " " ns : ns
		if (!(name in best) || ns + 0 < best[name] + 0) {
			best[name] = ns; bbytes[name] = bytes; ballocs[name] = allocs
			if (!(name in best_seen)) { order[no++] = name; best_seen[name] = 1 }
		}
	}
	END {
		print "{"
		printf "  \"go\": \"%s\",\n", go_version
		print "  \"benchmarks\": ["
		for (oi = 0; oi < no; oi++) {
			name = order[oi]
			n = split(vals[name], v, " ")
			for (i = 2; i <= n; i++) {
				x = v[i] + 0
				for (j = i - 1; j >= 1 && v[j] + 0 > x; j--) v[j+1] = v[j]
				v[j+1] = x
			}
			med = v[int((n + 1) / 2)]
			if (oi) printf ",\n"
			printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"ns_median\": %s", name, best[name], med
			if (bbytes[name] != "") printf ", \"bytes_per_op\": %s", bbytes[name]
			if (ballocs[name] != "") printf ", \"allocs_per_op\": %s", ballocs[name]
			# Per-record benchmarks: ns/op is ns/record; 26 B/record on the wire.
			if (name ~ /SimulatorThroughput|SampledThroughput|PipelinedThroughput|TraceGeneration|TraceReplay/) {
				printf ", \"ns_per_record\": %s, \"mb_per_s\": %.1f", best[name], 26 * 1000 / best[name]
			}
			printf "}"
		}
		print "\n  ]"
		print "}"
	}
' >"$OUT"
echo "wrote $OUT"

# Append this run to the benchmark trajectory: one JSON line per
# recording (UTC timestamp, commit, the full metrics object), so perf
# history survives the before/after pair being overwritten. The env
# object records what the numbers were measured under — GOMAXPROCS,
# the CPU model, and the 1/5/15-minute load averages at recording time
# — so cross-entry comparisons can tell a code change from a noisy or
# differently-sized machine.
HIST=BENCH_history.jsonl
ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
gomaxprocs=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 0)}
cpu_model=$(sed -n 's/^model name[[:space:]]*: //p' /proc/cpuinfo 2>/dev/null | head -n 1)
[ -n "$cpu_model" ] || cpu_model=unknown
loadavg=$(cut -d' ' -f1-3 /proc/loadavg 2>/dev/null || echo unknown)
printf '{"time":"%s","commit":"%s","out":"%s","env":{"gomaxprocs":%s,"cpu_model":"%s","loadavg":"%s"},"record":%s}\n' \
	"$ts" "$sha" "$OUT" "$gomaxprocs" "$cpu_model" "$loadavg" "$(tr -d '\n' <"$OUT")" >>"$HIST"
echo "appended to $HIST"
