package engine

// The cell scheduler seam: everything above this interface (plan
// compilation, run-level memoization, store write-through, grid
// settlement) is transport-agnostic, and everything below it decides
// *where* a cell executes. The default LocalScheduler runs cells on this
// process's bounded worker pool — exactly the pre-scheduler code path, so
// local execution stays bit-identical — while internal/cluster plugs in a
// Coordinator that scatters cells across worker daemons.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunSpec identifies one resolved, deduplicated simulation cell: the
// unit of work a CellScheduler executes. Config is fully resolved (the
// engine's warm-up convention applied) and Key is its content address —
// the same SHA-256 identity the store persists under, so two engines
// that agree on a Key agree on every bit of the cell's definition.
type RunSpec struct {
	// Workload is the registered workload name.
	Workload string `json:"workload"`
	// Config is the resolved simulator configuration.
	Config sim.Config `json:"config"`
	// Key is the cell's content address (store.ForRun over the resolved
	// identity).
	Key string `json:"key"`
}

// CellScheduler executes one run cell. Implementations decide placement:
// LocalScheduler simulates on this process's pool; a cluster coordinator
// dispatches to remote workers with retry and failover.
//
// Contract: Schedule emits RunStarted once execution is committed
// somewhere (and RunProgress as records are processed, when available);
// the engine itself emits the settling RunCached/RunFinished/RunFailed
// events and owns store write-through, so implementations return the raw
// result and never touch the engine's store. Schedule must honor ctx and
// must not call emit after it returns.
type CellScheduler interface {
	Schedule(ctx context.Context, spec RunSpec, emit func(Event)) (*sim.Result, error)
}

// localScheduler executes cells on the engine's own worker pool.
type localScheduler struct{ e *Engine }

// LocalScheduler returns the engine's in-process scheduler: cells run
// under the engine's semaphore on this machine. It is the default, and
// the fallback a cluster coordinator uses when no workers are registered.
func (e *Engine) LocalScheduler() CellScheduler { return localScheduler{e} }

// SetScheduler routes all subsequent cell execution through s (nil
// restores the local scheduler). Like SetStore on the session, it must
// be called before the engine runs anything; memoization, store
// write-through and event settlement stay above the scheduler either
// way.
func (e *Engine) SetScheduler(s CellScheduler) {
	if s == nil {
		s = localScheduler{e}
	}
	e.sched = s
}

// Schedule runs the cell on the local pool. This is the pre-cluster
// execution path moved verbatim behind the interface: semaphore bound,
// trace memo/tier source resolution, span tracing, progress events.
func (l localScheduler) Schedule(ctx context.Context, spec RunSpec, emit func(Event)) (*sim.Result, error) {
	e := l.e
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.fault.Point("engine.schedule"); err != nil {
		// Injected pre-start failure: the cell never commits, mirroring
		// a scheduler that could not place the run.
		return nil, err
	}

	w, err := workload.ByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	runner, err := sim.NewRunner(spec.Config)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", spec.Workload, err)
	}
	// Execution tuning only: lanes and decode-ahead never enter the
	// cell's identity (spec.Key), so tuned and serial engines share
	// store objects bit for bit.
	runner.SetExec(sim.Exec{Lanes: e.cfg.RunParallel, DecodeAhead: e.cfg.DecodeAhead})
	emit(Event{Kind: RunStarted})
	runner.OnProgress(e.cfg.ProgressInterval, func(records uint64) {
		emit(Event{Kind: RunProgress, Records: records})
	})
	e.sims.Add(1)
	tr := obs.TracerFrom(ctx)
	track := obs.TrackFrom(ctx)
	t0 := time.Now()
	src, generated := e.traceSource(w)
	if generated {
		e.generations.Add(1)
		tr.Add("trace-generate", "engine", track, t0, time.Now())
	} else {
		// Memo/mmap replay: the source opens here in O(1); decode time
		// lands inside the run span (and the sim phase spans).
		tr.Add("trace-open", "engine", track, t0, time.Now())
	}
	runSpan := tr.Start("run", "engine", track)
	res, err := runner.RunContext(ctx, src)
	runSpan.End()
	e.harvestPipeline(runner.PipelineStats())
	return res, err
}
