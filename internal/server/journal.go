package server

// The durable job journal: what makes smsd crash-safe. Every job state
// transition (accepted, started, settled) is appended as one framed,
// CRC-guarded, fsync'd record, so a daemon killed at any instant can
// replay the log on restart and pick up where it died: settled jobs
// reappear in GET /v1/jobs (their results refilled from the
// content-addressed store), live jobs are re-queued through the normal
// pool, and — because the engine probes the store before scheduling —
// a warm recovery settles everything without scattering a single cell.
//
// Frame format (little-endian):
//
//	[4B payload length][4B CRC32/IEEE of payload][payload JSON]
//
// Appends are fsync'd one by one: a job transition the daemon has
// acknowledged is on disk before anything else observes it. A torn
// tail — a frame cut short by a crash mid-append, or one whose CRC
// disagrees — ends replay: the tail is truncated away and appends
// resume from the last good frame. That is the crash contract: the
// final transition may be lost (the job replays as one state earlier,
// which re-queues it — safe, because cells are content-addressed and
// exactly-once settlement lives in the store), but no record is ever
// half-believed.
//
// Compaction rewrites the journal on recovery: live jobs keep their
// accepted records, the newest settled jobs collapse to one summary
// record each, and everything older falls away, bounding the file by
// the same retention as the in-memory job list. One daemon owns a
// journal at a time; the format has no interleaving protection.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// journal record operations.
const (
	journalOpAccepted = "accepted"
	journalOpStarted  = "started"
	journalOpSettled  = "settled"
)

// maxJournalRecord bounds one record's payload; anything larger in the
// length header is corruption, not data.
const maxJournalRecord = 1 << 20

// jobSpec is the journaled description of a job — everything needed to
// resubmit it after a restart.
type jobSpec struct {
	// Kind is "run" or "figure".
	Kind string `json:"kind"`
	// Target is the human-readable subject (workload/prefetcher, figure
	// name).
	Target string `json:"target"`
	// Dedupe is the active-job dedup key ("" = never deduped).
	Dedupe string `json:"dedupe,omitempty"`
	// Run is the original request for run jobs.
	Run *RunRequest `json:"run,omitempty"`
	// Figure is the figure name for figure jobs.
	Figure string `json:"figure,omitempty"`
}

// journalRecord is one framed journal entry.
type journalRecord struct {
	Op   string    `json:"op"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`
	// Spec rides on accepted records and on compacted settled summaries.
	Spec *jobSpec `json:"spec,omitempty"`
	// State and Error ride on settled records.
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`
	// Created rides on compacted settled summaries (the original
	// accepted time, which the summary replaces).
	Created time.Time `json:"created,omitempty"`
}

// journalJob is one job reconstructed from replay: the latest state the
// journal proves.
type journalJob struct {
	id       string
	spec     jobSpec
	created  time.Time
	started  bool
	settled  bool
	state    JobState
	errText  string
	finished time.Time
}

// journal is the append-only job log. All appends are serialized and
// fsync'd under mu; the counters are read lock-free by the metrics
// bridge.
type journal struct {
	path  string
	fault *fault.Injector
	log   *slog.Logger

	mu sync.Mutex
	f  *os.File

	appends     atomic.Uint64
	fsyncs      atomic.Uint64
	bytes       atomic.Uint64
	compactions atomic.Uint64
	torn        atomic.Uint64
}

// openJournal opens (creating if absent) the journal and replays it,
// returning the reconstructed jobs in first-appearance order. A torn
// tail is truncated away; only real I/O errors fail the open.
func openJournal(path string, fi *fault.Injector, logger *slog.Logger) (*journal, []*journalJob, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	jl := &journal{path: path, fault: fi, log: logger, f: f}
	jobs, err := jl.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return jl, jobs, nil
}

// replay reads every intact frame from the start of the file, folds the
// records into per-job state, truncates any torn tail, and leaves the
// file positioned for appending.
func (jl *journal) replay() ([]*journalJob, error) {
	if _, err := jl.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("server: journal seek: %w", err)
	}
	byID := make(map[string]*journalJob)
	var order []*journalJob
	var offset int64
	var header [8]byte
	for {
		n, err := io.ReadFull(jl.f, header[:])
		if err == io.EOF {
			break
		}
		if err != nil { // short header: torn mid-frame
			if errors.Is(err, io.ErrUnexpectedEOF) {
				jl.truncateTail(offset, int64(n))
				break
			}
			return nil, fmt.Errorf("server: journal read: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxJournalRecord {
			jl.truncateTail(offset, 8)
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(jl.f, payload); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || err == io.EOF {
				jl.truncateTail(offset, 8)
				break
			}
			return nil, fmt.Errorf("server: journal read: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			jl.truncateTail(offset, 8+int64(length))
			break
		}
		offset += 8 + int64(length)

		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The frame is intact (CRC passed) but the payload is not a
			// record we understand — likely a future format. Skip it rather
			// than discarding the rest of the log.
			jl.log.Warn("journal: skipping unreadable record", "err", err)
			continue
		}
		jj := byID[rec.ID]
		if jj == nil {
			jj = &journalJob{id: rec.ID, created: rec.Time}
			byID[rec.ID] = jj
			order = append(order, jj)
		}
		switch rec.Op {
		case journalOpAccepted:
			if rec.Spec != nil {
				jj.spec = *rec.Spec
			}
			jj.created = rec.Time
		case journalOpStarted:
			jj.started = true
		case journalOpSettled:
			jj.settled = true
			jj.state = rec.State
			jj.errText = rec.Error
			jj.finished = rec.Time
			if rec.Spec != nil { // compacted summary: spec rides along
				jj.spec = *rec.Spec
				jj.created = rec.Created
			}
		default:
			jl.log.Warn("journal: unknown record op", "op", rec.Op, "job_id", rec.ID)
		}
	}
	// Drop jobs the journal cannot describe: a settled record whose
	// accepted frame was lost to a torn tail carries no spec to resubmit
	// or list.
	kept := order[:0]
	for _, jj := range order {
		if jj.spec.Kind == "" {
			jl.log.Warn("journal: dropping job with no accepted record", "job_id", jj.id)
			continue
		}
		kept = append(kept, jj)
	}
	return kept, nil
}

// truncateTail discards a torn frame at offset (extent bytes were
// framed or partially present) and repositions for appends.
func (jl *journal) truncateTail(offset, extent int64) {
	jl.torn.Add(1)
	jl.log.Warn("journal: truncating torn tail",
		"path", jl.path, "offset", offset, "torn_bytes", extent)
	if err := jl.f.Truncate(offset); err != nil {
		jl.log.Error("journal: truncate failed", "err", err)
	}
	if _, err := jl.f.Seek(offset, io.SeekStart); err != nil {
		jl.log.Error("journal: seek failed", "err", err)
	}
}

// frame renders one record as a length+CRC framed byte slice.
func frame(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// append writes one record and fsyncs it. The fault site
// "journal.append.<op>" can fail the append, truncate it mid-frame
// (torn-tail debris, like a kill between write and sync), or crash.
// Append failures degrade durability, never availability: the caller
// logs and carries on.
func (jl *journal) append(rec journalRecord) error {
	if jl == nil {
		return nil
	}
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	keep, ferr := jl.fault.Partial("journal.append."+rec.Op, len(buf))
	if ferr != nil {
		if errors.Is(ferr, fault.ErrCrashed) && keep > 0 {
			// Crash mid-append: leave exactly the torn prefix a real kill
			// would, so recovery must prove it can truncate it away.
			jl.f.Write(buf[:keep])
		}
		return ferr
	}
	n, err := jl.f.Write(buf)
	jl.bytes.Add(uint64(n))
	if err != nil {
		return err
	}
	jl.appends.Add(1)
	if err := jl.f.Sync(); err != nil {
		return err
	}
	jl.fsyncs.Add(1)
	return nil
}

// rewrite atomically replaces the journal with exactly recs (the
// compaction path): temp file, fsync, rename over, reopen for appends.
// The fault site "journal.compact" can crash it between any two steps;
// the rename makes the swap all-or-nothing either way.
func (jl *journal) rewrite(recs []journalRecord) error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if err := jl.fault.Point("journal.compact"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(jl.path), ".journal-*")
	if err != nil {
		return err
	}
	for _, rec := range recs {
		buf, err := frame(rec)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		jl.bytes.Add(uint64(len(buf)))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), jl.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	f, err := os.OpenFile(jl.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: reopen compacted journal: %w", err)
	}
	jl.f.Close()
	jl.f = f
	jl.compactions.Add(1)
	jl.fsyncs.Add(1)
	return nil
}

// close releases the journal file.
func (jl *journal) close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
}

// Nil-safe counter accessors for the metrics bridge.

func (jl *journal) appendCount() uint64 {
	if jl == nil {
		return 0
	}
	return jl.appends.Load()
}

func (jl *journal) fsyncCount() uint64 {
	if jl == nil {
		return 0
	}
	return jl.fsyncs.Load()
}

func (jl *journal) byteCount() uint64 {
	if jl == nil {
		return 0
	}
	return jl.bytes.Load()
}

func (jl *journal) compactionCount() uint64 {
	if jl == nil {
		return 0
	}
	return jl.compactions.Load()
}

func (jl *journal) tornCount() uint64 {
	if jl == nil {
		return 0
	}
	return jl.torn.Load()
}
