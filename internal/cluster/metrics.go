package cluster

import (
	"repro/internal/obs"
)

// coordMetrics is the coordinator's instrument panel. Everything is
// registered up front on one registry (the daemon's, normally), so the
// hot paths are pure atomics.
type coordMetrics struct {
	cellsScattered     *obs.Counter
	cellsStolen        *obs.Counter
	cellsRetried       *obs.Counter
	cellsRescattered   *obs.Counter
	cellsLocal         *obs.Counter
	cellsRemoteCached  *obs.Counter
	cellsCanary        *obs.Counter
	cellsDuplicate     *obs.Counter
	workersRegistered  *obs.Counter
	workersLost        *obs.Counter
	workersQuarantined *obs.Counter
	breakerTrips       *obs.Counter
	breakerRecoveries  *obs.Counter
	artifactsSynced    *obs.Counter
	artifactSyncBytes  *obs.Counter

	scatterLatency *obs.Histogram
	cellDuration   *obs.Histogram

	workerQueued   *obs.GaugeVec
	workerInflight *obs.GaugeVec
	workerAlive    *obs.GaugeVec
}

func newCoordMetrics(reg *obs.Registry, c *Coordinator) *coordMetrics {
	m := &coordMetrics{
		cellsScattered:     reg.Counter("smsd_cluster_cells_scattered_total", "Cell dispatch attempts sent to workers."),
		cellsStolen:        reg.Counter("smsd_cluster_cells_stolen_total", "Cells a drained worker stole from another worker's queue."),
		cellsRetried:       reg.Counter("smsd_cluster_cells_retried_total", "Cell attempts that failed and were rescheduled with backoff."),
		cellsRescattered:   reg.Counter("smsd_cluster_cells_rescattered_total", "Cells re-scattered because their worker died or was retired."),
		cellsLocal:         reg.Counter("smsd_cluster_cells_local_total", "Cells executed on the coordinator's local scheduler (no live workers)."),
		cellsRemoteCached:  reg.Counter("smsd_cluster_cells_remote_cached_total", "Cells a worker answered from its own memo or store."),
		cellsCanary:        reg.Counter("smsd_cluster_cells_canary_total", "Cells dispatched as canaries to workers on probation."),
		cellsDuplicate:     reg.Counter("smsd_cluster_cells_duplicate_results_total", "Successful results from stale attempts landing after a re-scatter or settlement."),
		workersRegistered:  reg.Counter("smsd_cluster_workers_registered_total", "Worker registrations accepted (re-registrations included)."),
		workersLost:        reg.Counter("smsd_cluster_workers_lost_total", "Workers declared dead after missed heartbeats."),
		workersQuarantined: reg.Counter("smsd_cluster_workers_quarantined_total", "Workers quarantined for cell key mismatches."),
		breakerTrips:       reg.Counter("smsd_cluster_breaker_trips_total", "Circuit-breaker trips: workers put on probation after consecutive failures."),
		breakerRecoveries:  reg.Counter("smsd_cluster_breaker_recoveries_total", "Probations lifted after a canary cell succeeded."),
		artifactsSynced:    reg.Counter("smsd_cluster_artifacts_synced_total", "Trace artifacts pulled from workers into the coordinator's store."),
		artifactSyncBytes:  reg.Counter("smsd_cluster_artifact_sync_bytes_total", "Bytes of trace artifacts pulled from workers."),

		scatterLatency: reg.Histogram("smsd_cluster_scatter_latency_seconds",
			"Time from a cell entering the scheduler to its first dispatch.",
			obs.ExpBuckets(0.0005, 4, 10)), // 0.5ms .. ~131s
		cellDuration: reg.Histogram("smsd_cluster_cell_duration_seconds",
			"Time from a cell entering the scheduler to settlement (all attempts).",
			obs.ExpBuckets(0.005, 4, 10)), // 5ms .. ~1311s

		workerQueued:   reg.GaugeVec("smsd_cluster_worker_queued", "Cells queued for one worker.", "worker"),
		workerInflight: reg.GaugeVec("smsd_cluster_worker_inflight", "Cells in flight on one worker.", "worker"),
		workerAlive:    reg.GaugeVec("smsd_cluster_worker_alive", "1 while the worker is accepting cells, 0 once dead or quarantined.", "worker"),
	}
	reg.GaugeFunc("smsd_cluster_workers_alive", "Workers currently alive and accepting cells.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, w := range c.workers {
			if w.alive && !w.quarantined {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("smsd_cluster_workers_probation", "Workers currently on circuit-breaker probation.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, w := range c.workers {
			if w.alive && w.probation {
				n++
			}
		}
		return float64(n)
	})
	return m
}

// refreshWorkerGaugesLocked republishes the per-worker gauges; called
// from dispatchLocked, the chokepoint every scheduling change funnels
// through.
func (m *coordMetrics) refreshWorkerGaugesLocked(c *Coordinator) {
	for _, w := range c.workers {
		m.workerQueued.With(w.id).Set(int64(len(w.queue)))
		m.workerInflight.With(w.id).Set(int64(len(w.inflight)))
		alive := int64(0)
		if w.alive && !w.quarantined {
			alive = 1
		}
		m.workerAlive.With(w.id).Set(alive)
	}
}
