package sim

import (
	"context"
	"math/bits"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Exec tunes how a run executes — pipelined decode and intra-run
// parallelism. It is pure mechanism: an Exec never changes a single
// output byte, never enters Config, and therefore never perturbs the
// canonical run identity the result store hashes. Two runs differing
// only in Exec produce bit-identical Results under the same store key.
type Exec struct {
	// DecodeAhead, when >= 2, decodes the trace source up to this many
	// batches ahead of the simulator on a dedicated goroutine
	// (trace.Prefetcher). 1 is rounded up to 2 (double buffering);
	// 0 keeps decode inline with simulation.
	DecodeAhead int
	// Lanes, when >= 2, shards the run across that many parallel
	// simulation lanes keyed by spatial region (rounded down to a power
	// of two and clamped to the geometry's safe maximum). Configurations
	// whose per-record effects cross lanes — any attached prefetcher
	// (global PC-indexed training tables), the timing model's
	// instruction windows — are detected up front and replayed serially
	// instead (counted in PipelineStats.ConflictReplays). 0 or 1 keeps
	// the run on one lane.
	Lanes int
}

// active reports whether the Exec asks for anything beyond the plain
// serial path.
func (x Exec) active() bool { return x.DecodeAhead > 0 || x.Lanes > 1 }

// SetExec installs execution tuning for subsequent RunContext calls. It
// must be set before the run starts. Sampled runs (Config.Sampling)
// ignore Exec entirely: the sampling driver seeks over the source, which
// a decode pipeline cannot serve, and its windows are globally ordered.
func (r *Runner) SetExec(x Exec) { r.exec = x }

// Exec returns the installed execution tuning.
func (r *Runner) Exec() Exec { return r.exec }

// PipelineStats describes how the last RunContext actually executed:
// the lane count it settled on, pipeline stall counts, and per-lane
// record totals. All zero for plain serial runs.
type PipelineStats struct {
	// Lanes is the effective lane count after clamping (1 = serial).
	Lanes int
	// DecodeStalls counts times the decode stage waited on the
	// simulator (free buffers exhausted or the hand-off ring full) plus
	// times the fan-out waited on a busy lane: the pipeline was
	// simulation-bound.
	DecodeStalls uint64
	// SimStalls counts times the simulator (or the lane fan-out) waited
	// on the decode stage: the pipeline was decode-bound.
	SimStalls uint64
	// ConflictReplays counts runs that asked for lanes but were replayed
	// serially because the configuration's per-record effects cross
	// lanes (prefetcher training state, instruction windows). Detection
	// is up front — such configurations conflict on essentially every
	// record, so the whole run is the replay unit.
	ConflictReplays uint64
	// LaneRecords is the number of records each lane simulated.
	LaneRecords []uint64
}

// Occupancy returns how evenly the lanes were loaded, as a percentage:
// 100 means perfectly balanced, lower means the slowest lane dominated.
// It is total records over lanes×max-lane-records; 0 when no lane ran.
func (p PipelineStats) Occupancy() float64 {
	if p.Lanes <= 1 || len(p.LaneRecords) == 0 {
		return 0
	}
	var total, max uint64
	for _, n := range p.LaneRecords {
		total += n
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return 0
	}
	return 100 * float64(total) / (float64(len(p.LaneRecords)) * float64(max))
}

// PipelineStats returns how the last RunContext executed.
func (r *Runner) PipelineStats() PipelineStats { return r.pstats }

// shardable reports whether this run's per-record effects stay within a
// region-keyed lane, making deterministic intra-run parallelism exact.
//
// The argument, level by level:
//
//   - Cache evictions: a fill's victim shares the filling address's set,
//     and lanes are chosen so the lane key is a function of the set index
//     (see maxLanes), so victims stay in-lane.
//   - Invalidations and directory state: per block; a block lies inside
//     one region, and regions map wholly to one lane.
//   - Generation trackers: keyed by region tag — in-lane by construction.
//   - LRU clocks are per-cache counters, but victim selection compares
//     stamps only within a set, and a lane receives its sets' accesses in
//     the exact global order, so relative stamp order — the only thing
//     that matters — is preserved.
//   - Result counters and histogram buckets are commutative sums, so the
//     fixed lane-order merge equals global-record-order accumulation.
//
// What breaks it: any attached prefetcher (per-CPU training tables are
// indexed by PC, shared across all regions — every record conflicts) and
// the timing model's instruction windows (globally ordered). Sampled
// mode never reaches here (RunContext routes it first).
func (r *Runner) shardable() bool {
	return r.pf == nil && !r.hasWindows
}

// maxLanes returns the largest power-of-two lane count for which the
// region-keyed lane assignment is a function of every cache level's set
// index — the condition that keeps evictions in-lane. With lane key
// (addr >> regionBits) & (lanes-1), the lane bits span
// [regionBits, regionBits+laneBits); they must lie inside each level's
// set-index bits [blockBits, blockBits+setBits).
func (r *Runner) maxLanes() int {
	regionBits := bits.TrailingZeros64(uint64(r.cfg.Geometry.RegionSize()))
	lim := 6 // cap at 64 lanes
	for _, cc := range [...]struct{ blockSize, sets int }{
		{r.cfg.Coherence.L1.BlockSize, r.cfg.Coherence.L1.Sets()},
		{r.cfg.Coherence.L2.BlockSize, r.cfg.Coherence.L2.Sets()},
	} {
		if cc.blockSize <= 0 || cc.sets <= 0 {
			return 1
		}
		blockBits := bits.TrailingZeros64(uint64(cc.blockSize))
		setBits := bits.TrailingZeros64(uint64(cc.sets))
		if regionBits < blockBits {
			return 1
		}
		if m := blockBits + setBits - regionBits; m < lim {
			lim = m
		}
	}
	if lim <= 0 {
		return 1
	}
	return 1 << lim
}

// laneCount resolves the effective lane count for this run, recording a
// conflict replay when lanes were requested but the configuration is not
// shardable.
func (r *Runner) laneCount() int {
	want := r.exec.Lanes
	if want <= 1 {
		return 1
	}
	if !r.shardable() {
		r.pstats.ConflictReplays++
		return 1
	}
	max := r.maxLanes()
	if want > max {
		want = max
	}
	// Round down to a power of two: the lane key is a bit mask.
	lanes := 1 << (bits.Len(uint(want)) - 1)
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// laneBatchRecords is the hand-off granularity between the fan-out and a
// simulation lane. Large enough to amortize channel operations to well
// under a nanosecond per record, small enough that per-lane buffering
// stays in the hundreds of kilobytes.
const laneBatchRecords = 4096

// laneDepth is how many filled batches may queue ahead of each lane.
const laneDepth = 2

// laneBatch is one ordered slice of a lane's record subsequence. The
// first NWarm records fall inside the run's global warm-up prefix: the
// fan-out computes the boundary from the global record index, so lanes
// collect statistics for exactly the records the serial path would.
type laneBatch struct {
	recs  []trace.Record
	nWarm int
}

// runParallel executes the run across `lanes` region-sharded lanes.
//
// Ownership: the fan-out owns one fill buffer per lane; filled batches
// travel to the lane through a bounded ring and come back through a free
// ring once fully simulated, so no buffer is ever written on one side
// while read on the other (the same discipline as trace.Prefetcher).
//
// Determinism: every lane receives a deterministic subsequence of the
// trace in global order, each lane runner is seeded identically to a
// serial runner, and the merge folds lane results in fixed lane order —
// so the output is a pure function of (config, trace), independent of
// goroutine scheduling. See shardable for why the per-lane simulations
// compose exactly.
func (r *Runner) runParallel(ctx context.Context, src trace.Source, ph *obs.PhaseTracker, lanes int) (*Result, error) {
	ph.Enter("fan-out")
	r.pstats.Lanes = lanes
	r.pstats.LaneRecords = make([]uint64, lanes)

	// Lane runners: identical configuration, but warm from record zero —
	// the fan-out replays the global warm-up boundary through the
	// warming flag (collecting() == warm && !warming), which is exactly
	// how sampled functional warming already keeps stats off.
	laneCfg := r.cfg
	laneCfg.WarmupAccesses = 0
	runners := make([]*Runner, lanes)
	for i := range runners {
		lr, err := NewRunner(laneCfg)
		if err != nil {
			return nil, err
		}
		runners[i] = lr
	}

	in := make([]chan laneBatch, lanes)
	free := make([]chan []trace.Record, lanes)
	for i := range in {
		in[i] = make(chan laneBatch, laneDepth)
		free[i] = make(chan []trace.Record, laneDepth+1)
		for j := 0; j < laneDepth+1; j++ {
			free[i] <- make([]trace.Record, 0, laneBatchRecords)
		}
	}

	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			rn := runners[l]
			for b := range in[l] {
				rn.warming = true
				for i := 0; i < b.nWarm; i++ {
					rn.Step(b.recs[i])
				}
				rn.warming = false
				for i := b.nWarm; i < len(b.recs); i++ {
					rn.Step(b.recs[i])
				}
				free[l] <- b.recs[:0]
			}
		}(l)
	}
	shutdown := func() {
		for l := range in {
			close(in[l])
		}
		wg.Wait()
	}

	regionBits := uint(bits.TrailingZeros64(uint64(r.cfg.Geometry.RegionSize())))
	mask := uint64(lanes - 1)
	warmup := r.cfg.WarmupAccesses

	cur := make([][]trace.Record, lanes)
	curWarm := make([]int, lanes)
	for l := range cur {
		cur[l] = <-free[l]
	}
	flush := func(l int) {
		b := laneBatch{recs: cur[l], nWarm: curWarm[l]}
		select {
		case in[l] <- b:
		default:
			r.pstats.DecodeStalls++
			in[l] <- b
		}
		curWarm[l] = 0
		select {
		case cur[l] = <-free[l]:
		default:
			r.pstats.DecodeStalls++
			cur[l] = <-free[l]
		}
	}

	every := r.progressEvery
	if every == 0 {
		every = DefaultProgressInterval
	}
	size := uint64(DefaultBatchRecords)
	if size > every {
		size = every
	}
	views, isView := src.(trace.ViewSource)
	var bs trace.BatchSource
	if !isView {
		if uint64(len(r.batch)) != size {
			r.batch = make([]trace.Record, size)
		}
		bs = trace.Batched(src)
	}
	next := r.counted + every
	for {
		var batch []trace.Record
		if isView {
			batch = views.NextView(int(size))
		} else {
			batch = r.batch[:bs.NextBatch(r.batch)]
		}
		if len(batch) == 0 {
			break
		}
		if r.counted >= warmup {
			// Whole view is past the warm-up prefix (the steady state):
			// the boundary comparison leaves the per-record loop.
			for i := range batch {
				rec := batch[i]
				l := int((uint64(rec.Addr) >> regionBits) & mask)
				cur[l] = append(cur[l], rec)
				if len(cur[l]) == laneBatchRecords {
					flush(l)
				}
			}
			r.counted += uint64(len(batch))
		} else {
			for i := range batch {
				rec := batch[i]
				l := int((uint64(rec.Addr) >> regionBits) & mask)
				cur[l] = append(cur[l], rec)
				r.counted++
				if r.counted <= warmup {
					curWarm[l]++
				}
				if len(cur[l]) == laneBatchRecords {
					flush(l)
				}
			}
		}
		if r.counted >= next {
			next = r.counted + every
			if r.onProgress != nil {
				r.onProgress(r.counted)
			}
			if err := ctx.Err(); err != nil {
				shutdown()
				return nil, err
			}
		}
	}
	for l := range cur {
		if len(cur[l]) > 0 {
			flush(l)
		}
	}
	shutdown()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e, ok := src.(interface{ Err() error }); ok {
		if err := e.Err(); err != nil {
			return nil, errSourceFailed(err)
		}
	}

	// Merge in fixed lane order. Lane finish() flushes open generations;
	// every accumulated field is a commutative sum, so lane order only
	// needs to be deterministic, which 0..lanes-1 is.
	for l, rn := range runners {
		rn.finish()
		r.pstats.LaneRecords[l] = rn.counted
		if err := r.res.accumulate(&rn.res); err != nil {
			return nil, err
		}
	}
	if r.onProgress != nil {
		r.onProgress(r.counted)
	}
	return r.Result(), nil
}
