package exp

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

var (
	sharedOnce    sync.Once
	sharedSession *Session
)

// quickSession returns a shared QuickOptions session; the cache means
// repeated use across tests costs one set of runs. The figure-scale
// simulations behind it take over a minute for the package, so tests
// that need it honor testing.Short() and skip under `go test -short`
// (the CI configuration).
func quickSession(t *testing.T) *Session {
	t.Helper()
	if testing.Short() {
		t.Skip("figure-scale simulations skipped in -short mode")
	}
	sharedOnce.Do(func() { sharedSession = NewSession(QuickOptions()) })
	return sharedSession
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.CPUs != 4 || o.Length == 0 || o.Parallel <= 0 {
		t.Fatalf("normalized = %+v", o)
	}
	ms := o.MemorySystem(128)
	if ms.L1.BlockSize != 128 || ms.L2.BlockSize != 128 {
		t.Fatal("block size not applied")
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, b := range Fig4Sizes {
		if err := o.MemorySystem(b).Validate(); err != nil {
			t.Errorf("block %d: %v", b, err)
		}
	}
}

func TestSessionCaching(t *testing.T) {
	s := NewSession(Options{CPUs: 1, Length: 20_000})
	cfg := sim.Config{Coherence: s.Options().MemorySystem(64)}
	a, err := s.Run(context.Background(), "sparse", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(context.Background(), "sparse", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs not cached")
	}
	c, err := s.Run(context.Background(), "sparse", sim.Config{Coherence: s.Options().MemorySystem(64), PrefetcherName: "sms"})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct configs shared a cache entry")
	}
}

func TestWorkloadAndGroupNames(t *testing.T) {
	if len(WorkloadNames()) != 11 || len(GroupNames()) != 4 {
		t.Fatal("name lists wrong")
	}
	if groupOf("sparse") != workload.GroupScientific || groupOf("nope") != "" {
		t.Fatal("groupOf wrong")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("T", "a", "bb")
	tb.SetCaption("cap")
	tb.AddRow("1", "2")
	tb.AddRowf("x", 0.5, 7)
	out := tb.Render()
	for _, want := range []string{"T", "cap", "a", "bb", "0.500", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %s", Pct(0.123))
	}
	if sizeLabel(64) != "64B" || sizeLabel(2048) != "2kB" {
		t.Error("sizeLabel wrong")
	}
	if PHTSizeLabel(0) != "infinite" || PHTSizeLabel(16384) != "16k" || PHTSizeLabel(256) != "256" {
		t.Error("PHTSizeLabel wrong")
	}
}

func TestFig6ShapeQuick(t *testing.T) {
	res, err := Fig6(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d, want 4 groups x 4 indices", len(res.Rows))
	}
	byKey := map[string]sim.Coverage{}
	for _, r := range res.Rows {
		byKey[r.Group+"/"+r.Index.String()] = r.Coverage
	}
	// §4.2: for DSS (single-visit scans), code-based indices must beat
	// address-bearing indices decisively.
	if byKey["DSS/PC+off"].Covered <= byKey["DSS/Addr"].Covered {
		t.Errorf("DSS: PC+off %.3f <= Addr %.3f", byKey["DSS/PC+off"].Covered, byKey["DSS/Addr"].Covered)
	}
	if byKey["DSS/PC+off"].Covered <= byKey["DSS/PC+addr"].Covered {
		t.Errorf("DSS: PC+off %.3f <= PC+addr %.3f", byKey["DSS/PC+off"].Covered, byKey["DSS/PC+addr"].Covered)
	}
	// PC+off must achieve the best or near-best coverage in every group.
	for _, g := range GroupNames() {
		pcOff := byKey[g+"/PC+off"].Covered
		for _, idx := range []string{"Addr", "PC"} {
			if byKey[g+"/"+idx].Covered > pcOff+0.10 {
				t.Errorf("%s: %s coverage %.3f far above PC+off %.3f", g, idx, byKey[g+"/"+idx].Covered, pcOff)
			}
		}
		if pcOff <= 0.05 {
			t.Errorf("%s: PC+off coverage %.3f implausibly low", g, pcOff)
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig11ShapeQuick(t *testing.T) {
	res, err := Fig11(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 33 {
		t.Fatalf("rows = %d, want 11 x 3", len(res.Rows))
	}
	cov := map[string]map[Fig11Variant]float64{}
	for _, r := range res.Rows {
		if cov[r.Workload] == nil {
			cov[r.Workload] = map[Fig11Variant]float64{}
		}
		cov[r.Workload][r.Variant] = r.Coverage.Covered
	}
	// §4.6: SMS beats GHB on the interleaved commercial workloads.
	for _, w := range []string{"oltp-db2", "oltp-oracle", "web-apache", "web-zeus"} {
		if cov[w][VariantSMS] <= cov[w][VariantGHB16k] {
			t.Errorf("%s: SMS %.3f <= GHB-16k %.3f", w, cov[w][VariantSMS], cov[w][VariantGHB16k])
		}
	}
	// sparse must be the suite's best SMS coverage (92% in the paper).
	if cov["sparse"][VariantSMS] < 0.5 {
		t.Errorf("sparse SMS coverage %.3f too low", cov["sparse"][VariantSMS])
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig12ShapeQuick(t *testing.T) {
	res, err := Fig12(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var sparseSpeed, q1Speed float64
	for _, r := range res.Rows {
		if r.Speedup.Mean < 0.9 {
			t.Errorf("%s: speedup %.3f — SMS made it much slower", r.Workload, r.Speedup.Mean)
		}
		if r.Base.Total() < 0.999 || r.Base.Total() > 1.001 {
			t.Errorf("%s: base breakdown not normalized: %f", r.Workload, r.Base.Total())
		}
		switch r.Workload {
		case "sparse":
			sparseSpeed = r.Speedup.Mean
		case "dss-q1":
			q1Speed = r.Speedup.Mean
		}
	}
	if res.GeoMean <= 1.0 {
		t.Errorf("geomean speedup %.3f not > 1", res.GeoMean)
	}
	// §4.7 shape: sparse is the big winner; store-buffer-bound Q1 barely
	// moves.
	if sparseSpeed <= q1Speed {
		t.Errorf("sparse %.3f not above dss-q1 %.3f", sparseSpeed, q1Speed)
	}
	if res.Render() == "" || res.RenderBreakdown() == "" {
		t.Error("empty render")
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1(quickSession(t))
	for _, want := range []string{"Table 1", "16k-entry 16-way PHT", "2kB regions"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestAGTConfigLabel(t *testing.T) {
	if (AGTConfig{Filter: 32, Accum: 64}).Label() != "filter=32 accum=64" {
		t.Error("label wrong")
	}
	if !strings.Contains((AGTConfig{}).Label(), "inf") {
		t.Error("unbounded label wrong")
	}
}

func TestTimingParamsPerGroup(t *testing.T) {
	for _, g := range GroupNames() {
		p := TimingParamsFor(g)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", g, err)
		}
	}
	if !TimingParamsFor(workload.GroupWeb).SystemProportionalToTime {
		t.Error("web OS time must be proportional to time")
	}
	if TimingParamsFor(workload.GroupScientific).SystemFrac >= TimingParamsFor(workload.GroupWeb).SystemFrac {
		t.Error("scientific system fraction should be smallest")
	}
}

func TestFig6UsesInfinitePHT(t *testing.T) {
	// Guard against regressions: the Fig. 6 config must produce an
	// unbounded PHT.
	cfg := core.Config{Index: core.IndexPCOffset, PHTEntries: -1}
	s := core.MustNew(cfg)
	if !s.PHT().Infinite() {
		t.Fatal("PHTEntries=-1 did not select the unbounded table")
	}
}

func TestHeadlineQuick(t *testing.T) {
	res, err := Headline(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanL1Coverage <= 0.2 || res.MeanOffChipCoverage <= 0.3 {
		t.Errorf("coverages too low: %+v", res)
	}
	if res.GeoMeanSpeedup <= 1.0 {
		t.Errorf("geomean speedup %.3f not > 1", res.GeoMeanSpeedup)
	}
	if res.BestName == "" || res.BestCommercialName == "" {
		t.Error("best workloads not identified")
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

// TestMergedPlanStructure: the prewarm grid covers every requested
// experiment's exact cells (no workload-union inflation for subset
// plans like ablate), drops custom cells, and validates.
func TestMergedPlanStructure(t *testing.T) {
	o := Options{CPUs: 1, Seed: 1, Length: 20_000}
	p, ok := MergedPlan("prewarm", o, "fig5", "ablate", "fig8", "table1", "unknown")
	if !ok {
		t.Fatal("no plan built")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Customs) != 0 {
		t.Fatalf("prewarm plan kept %d custom cells", len(p.Customs))
	}
	// fig5: 11 workloads × 1 variant; ablate: 2 workloads × 12 variants;
	// fig8: 11 workloads × 4 standard variants (DS custom dropped);
	// table1/unknown contribute nothing.
	want := 11*1 + 2*12 + 11*4
	if len(p.Extra) != want {
		t.Fatalf("merged plan has %d cells, want %d", len(p.Extra), want)
	}
	if _, ok := MergedPlan("prewarm", o, "table1", "unknown"); ok {
		t.Error("simulation-free experiments produced a plan")
	}

	// Aliases sharing a plan (fig13 renders from the fig12 grid) and
	// duplicate names must merge cleanly, contributing the grid once.
	p2, ok := MergedPlan("prewarm", o, "fig12", "fig13", "fig12")
	if !ok {
		t.Fatal("no plan for fig12+fig13")
	}
	if err := p2.Validate(); err != nil {
		t.Fatalf("fig12+fig13 merge invalid: %v", err)
	}
	if want := 11 * 2; len(p2.Extra) != want {
		t.Fatalf("fig12+fig13 merged to %d cells, want %d", len(p2.Extra), want)
	}
}
