package workload

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registered %d workloads, want 11 (paper Table 1)", len(all))
	}
	wantNames := []string{
		"oltp-db2", "oltp-oracle",
		"dss-q1", "dss-q2", "dss-q16", "dss-q17",
		"web-apache", "web-zeus",
		"em3d", "ocean", "sparse",
	}
	for i, w := range all {
		if w.Name != wantNames[i] {
			t.Errorf("All()[%d] = %q, want %q", i, w.Name, wantNames[i])
		}
		if w.Description == "" {
			t.Errorf("%s: empty description", w.Name)
		}
		if w.Make == nil {
			t.Errorf("%s: nil Make", w.Name)
		}
	}
}

func TestGroups(t *testing.T) {
	gs := Groups()
	if len(gs) != 4 {
		t.Fatalf("Groups = %v", gs)
	}
	counts := map[string]int{}
	for _, g := range gs {
		counts[g] = len(ByGroup(g))
	}
	if counts[GroupOLTP] != 2 || counts[GroupDSS] != 4 || counts[GroupWeb] != 2 || counts[GroupScientific] != 3 {
		t.Errorf("group sizes = %v", counts)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("sparse")
	if err != nil || w.Name != "sparse" {
		t.Fatalf("ByName(sparse) = %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, w := range All() {
		cfg := Config{CPUs: 4, Seed: 42, Length: 5000}
		a := trace.Collect(w.Make(cfg), 0)
		b := trace.Collect(w.Make(cfg), 0)
		if len(a) != len(b) || len(a) != 5000 {
			t.Fatalf("%s: lengths %d vs %d", w.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs: %v vs %v", w.Name, i, a[i], b[i])
			}
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	w, _ := ByName("oltp-db2")
	a := trace.Collect(w.Make(Config{CPUs: 4, Seed: 1, Length: 2000}), 0)
	b := trace.Collect(w.Make(Config{CPUs: 4, Seed: 2, Length: 2000}), 0)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical address streams")
	}
}

func TestRecordWellFormed(t *testing.T) {
	for _, w := range All() {
		cfg := Config{CPUs: 4, Seed: 7, Length: 20000}
		recs := trace.Collect(w.Make(cfg), 0)
		var lastSeq uint64
		cpusSeen := map[uint8]bool{}
		writes := 0
		for i, r := range recs {
			if r.Seq <= lastSeq {
				t.Fatalf("%s: Seq not increasing at %d (%d after %d)", w.Name, i, r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			if int(r.CPU) >= cfg.CPUs {
				t.Fatalf("%s: CPU %d out of range", w.Name, r.CPU)
			}
			cpusSeen[r.CPU] = true
			if r.Addr == 0 {
				t.Fatalf("%s: zero address at %d", w.Name, i)
			}
			if r.IsWrite() {
				writes++
			}
		}
		if len(cpusSeen) != cfg.CPUs {
			t.Errorf("%s: only %d of %d CPUs issued accesses", w.Name, len(cpusSeen), cfg.CPUs)
		}
		if writes == 0 {
			t.Errorf("%s: no writes in trace", w.Name)
		}
		if writes == len(recs) {
			t.Errorf("%s: no reads in trace", w.Name)
		}
	}
}

func TestDistinctPCsSmall(t *testing.T) {
	// Code-correlated prediction requires far fewer distinct PCs than
	// addresses (§2.2). Verify the generators honour this.
	for _, w := range All() {
		recs := trace.Collect(w.Make(Config{CPUs: 4, Seed: 3, Length: 50000}), 0)
		pcs := map[uint64]bool{}
		addrs := map[mem.Addr]bool{}
		g := mem.DefaultGeometry()
		for _, r := range recs {
			pcs[r.PC] = true
			addrs[g.BlockAddr(r.Addr)] = true
		}
		if len(pcs) > 100 {
			t.Errorf("%s: %d distinct PCs, want a small code footprint", w.Name, len(pcs))
		}
		if len(addrs) < len(pcs) {
			t.Errorf("%s: fewer blocks (%d) than PCs (%d)?", w.Name, len(addrs), len(pcs))
		}
	}
}

func TestDSSScanNeverRevisits(t *testing.T) {
	// The DSS scan story requires fact-table regions be visited once:
	// address-based indices must not get a second chance (§4.2).
	w, _ := ByName("dss-q1")
	recs := trace.Collect(w.Make(Config{CPUs: 2, Seed: 5, Length: 200000}), 0)
	g := mem.DefaultGeometry()
	// Track per-region first/last access positions for fact-table reads
	// (the dominant read PC). A region's accesses must be one contiguous
	// burst per actor, never revisited after a long gap.
	scanPC := pcSite(dssWorkloadQ1, dssOpScan, 0)
	firstSeen := map[uint64]int{}
	lastSeen := map[uint64]int{}
	for i, r := range recs {
		if r.PC != scanPC {
			continue
		}
		tag := g.RegionTag(r.Addr)
		if _, ok := firstSeen[tag]; !ok {
			firstSeen[tag] = i
		}
		lastSeen[tag] = i
	}
	if len(firstSeen) < 100 {
		t.Fatalf("only %d scanned regions", len(firstSeen))
	}
	for tag := range firstSeen {
		if lastSeen[tag]-firstSeen[tag] > 50000 {
			t.Fatalf("region %#x revisited after a long gap (%d..%d)", tag, firstSeen[tag], lastSeen[tag])
		}
	}
}

func TestScientificIterationRepetition(t *testing.T) {
	// Scientific codes revisit the same addresses every iteration; the
	// set of distinct regions must saturate well below the trace length.
	for _, name := range []string{"ocean", "sparse", "em3d"} {
		w, _ := ByName(name)
		recs := trace.Collect(w.Make(Config{CPUs: 2, Seed: 9, Length: 400000}), 0)
		g := mem.DefaultGeometry()
		regions := map[uint64]bool{}
		for _, r := range recs {
			regions[g.RegionTag(r.Addr)] = true
		}
		if len(regions) > len(recs)/10 {
			t.Errorf("%s: %d distinct regions in %d accesses — not iterative", name, len(regions), len(recs))
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.CPUs != 4 || c.Scale != 1.0 || c.Length != DefaultLength {
		t.Errorf("normalized zero config = %+v", c)
	}
	c = Config{CPUs: 1000}.normalized()
	if c.CPUs != 256 {
		t.Errorf("CPUs not clamped: %d", c.CPUs)
	}
	if got := (Config{Scale: 0.001}).scaled(1000, 64); got != 64 {
		t.Errorf("scaled floor = %d", got)
	}
	if got := (Config{Scale: 2}.normalized()).scaled(100, 1); got != 200 {
		t.Errorf("scaled x2 = %d", got)
	}
}

func TestZipfPick(t *testing.T) {
	rng := newTestRNG()
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[zipfPick(rng, 100, 0.7, 0.1)]++
	}
	hot, cold := 0, 0
	for i, c := range counts {
		if i < 10 {
			hot += c
		} else {
			cold += c
		}
	}
	if hot < cold {
		t.Errorf("hot set not favoured: hot=%d cold=%d", hot, cold)
	}
	if zipfPick(rng, 1, 0.5, 0.5) != 0 {
		t.Error("n=1 must return 0")
	}
	if zipfPick(rng, 0, 0.5, 0.5) != 0 {
		t.Error("n=0 must return 0")
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for cpu := 0; cpu < 16; cpu++ {
		for a := -1; a < 16; a++ {
			s := splitSeed(1, cpu, a)
			if seen[s] {
				t.Fatalf("seed collision at cpu=%d actor=%d", cpu, a)
			}
			seen[s] = true
			if s < 0 {
				t.Fatalf("negative seed %d", s)
			}
		}
	}
}
