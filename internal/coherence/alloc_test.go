package coherence

// Steady-state allocation regression: once the directory has seen the
// working set, demand accesses and stream fills — including their
// eviction/invalidation reporting, which aliases the System's scratch
// buffers — must not allocate.

import (
	"testing"

	"repro/internal/mem"
)

func TestAccessSteadyStateZeroAllocs(t *testing.T) {
	s := MustNew(DefaultConfig())
	const blocks = 8192
	// Prewarm: every block touched by every CPU, with writes, so the
	// directory, caches, and scratch buffers reach steady state.
	for cpu := 0; cpu < s.CPUs(); cpu++ {
		for b := 0; b < blocks; b++ {
			s.Access(cpu, mem.Addr(b*64), b%8 == 0)
		}
	}
	var res AccessResult
	var sres StreamResult
	state := uint64(1)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 10_000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			b := int(state>>33) % blocks
			cpu := int(state>>29) & 3
			switch i % 8 {
			case 0:
				s.AccessInto(&res, cpu, mem.Addr(b*64), true)
			case 1:
				s.StreamInto(&sres, cpu, mem.Addr(b*64))
			case 2:
				s.L2StreamInto(&sres, cpu, mem.Addr(b*64))
			default:
				s.AccessInto(&res, cpu, mem.Addr(b*64), false)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("coherent system allocated %.1f times per 10k-op mix; the directory and scratch buffers must be allocation-free at steady state", allocs)
	}
}

func TestDirTableSteadyStateZeroAllocs(t *testing.T) {
	tb := newDirTable()
	const keys = 40_000 // forces several growth rehashes during prewarm
	for k := uint64(0); k < keys; k++ {
		tb.getOrInsert(k).sharers = k
	}
	allocs := testing.AllocsPerRun(10, func() {
		for k := uint64(0); k < keys; k++ {
			if e := tb.get(k); e == nil || e.sharers != k {
				t.Fatal("directory entry lost")
			}
			tb.getOrInsert(k)
		}
	})
	if allocs != 0 {
		t.Fatalf("directory table allocated %.1f times per full-working-set sweep", allocs)
	}
}
