#!/usr/bin/env sh
# Chaos smoke test for crash-safe smsd: start a journaled coordinator
# and one worker, scatter a figure grid across the cluster, SIGKILL the
# coordinator mid-grid (no goodbye, no journal close), restart it
# against the same -store and -journal, and assert:
#
#   - the figure job survives under the same id and settles done;
#   - run jobs submitted just before the kill reach done after it;
#   - the recovered figure is byte-identical to a single-node reference
#     computed with the same simulation options;
#   - the worker re-registers with the restarted coordinator on its own;
#   - /metrics still passes the exposition checker and counts the
#     journal recovery.
#
# Run from the repository root; needs curl.
set -eu

BIN=${BIN:-./smsd-chaos-smoke-bin}

# Every daemon must agree on the simulation options (cluster contract)
# and the reference daemon must match them for byte-identity.
SIMOPTS="-cpus 1 -seed 1 -length 120000"
FIGURE=fig8

say() { echo "chaos-smoke: $*"; }
fail() { echo "chaos-smoke: FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/smsd

REF_PID=""
COORD_PID=""
W1_PID=""
TMP=""
cleanup() {
    [ -n "$REF_PID" ] && kill "$REF_PID" 2>/dev/null || true
    [ -n "$COORD_PID" ] && kill "$COORD_PID" 2>/dev/null || true
    [ -n "$W1_PID" ] && kill "$W1_PID" 2>/dev/null || true
    rm -f "$BIN"
    [ -n "$TMP" ] && rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

json_field() {
    sed -n "s/^.*\"$2\": \"\([^\"]*\)\".*$/\1/p" "$1" | head -n 1
}

wait_port() {
    i=0
    while :; do
        port=$(sed -n 's/.*msg="smsd listening" addr=[^ ]*:\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "chaos-smoke: FAIL: daemon never logged its listen address; log follows" >&2
            sed 's/^/chaos-smoke:   | /' "$1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

wait_healthy() {
    i=0
    while ! curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "chaos-smoke: FAIL: daemon on :$1 never became healthy; log follows" >&2
            sed 's/^/chaos-smoke:   | /' "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# poll_done PORT JOB LABEL → fail unless the job settles done.
poll_done() {
    i=0
    while :; do
        curl -fsS "http://127.0.0.1:$1/v1/jobs/$2" >"$TMP/poll.json"
        state=$(json_field "$TMP/poll.json" state)
        case "$state" in
        done) return 0 ;;
        failed | cancelled) fail "$3 settled as $state: $(cat "$TMP/poll.json")" ;;
        esac
        i=$((i + 1))
        [ "$i" -gt 900 ] && fail "$3 stuck in state $state"
        sleep 0.2
    done
}

TMP=$(mktemp -d)

# --- Reference figure on a clean single node -------------------------------
"$BIN" -addr 127.0.0.1:0 $SIMOPTS -store "$TMP/store-ref" >"$TMP/ref.log" 2>&1 &
REF_PID=$!
PORT_REF=$(wait_port "$TMP/ref.log")
wait_healthy "$PORT_REF" "$TMP/ref.log"
curl -fsS "http://127.0.0.1:$PORT_REF/v1/figures/$FIGURE" >"$TMP/figure-ref.txt"
kill "$REF_PID" && wait "$REF_PID" 2>/dev/null || true
REF_PID=""
say "reference figure computed on a single node"

# --- Journaled coordinator + one worker ------------------------------------
"$BIN" -cluster -addr 127.0.0.1:0 $SIMOPTS -heartbeat 250ms \
    -store "$TMP/store-coord" -journal "$TMP/journal" >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
PORT_COORD=$(wait_port "$TMP/coord.log")
wait_healthy "$PORT_COORD" "$TMP/coord.log"
say "journaled coordinator on :$PORT_COORD"

"$BIN" -worker -coordinator "http://127.0.0.1:$PORT_COORD" -addr 127.0.0.1:0 \
    $SIMOPTS -store "$TMP/store-w1" >"$TMP/w1.log" 2>&1 &
W1_PID=$!
PORT_W1=$(wait_port "$TMP/w1.log")
wait_healthy "$PORT_W1" "$TMP/w1.log"

i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_COORD/v1/cluster/workers" >"$TMP/workers.json" 2>/dev/null || true
    grep -q '"alive": true' "$TMP/workers.json" 2>/dev/null && break
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "worker never registered"
    sleep 0.1
done
say "worker on :$PORT_W1 registered"

# --- Scatter the grid, then murder the coordinator mid-flight --------------
curl -fsS -X POST "http://127.0.0.1:$PORT_COORD/v1/figures/$FIGURE" >"$TMP/submit.json"
FIGJOB=$(json_field "$TMP/submit.json" id)
[ -n "$FIGJOB" ] || fail "no job id in figure submit: $(cat "$TMP/submit.json")"

i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_COORD/metrics" >"$TMP/m.txt"
    scattered=$(sed -n 's/^smsd_cluster_cells_scattered_total \([0-9][0-9]*\).*/\1/p' "$TMP/m.txt")
    [ -n "$scattered" ] && [ "$scattered" -ge 2 ] && break
    i=$((i + 1))
    [ "$i" -gt 200 ] && fail "grid never scattered cells to the worker"
    sleep 0.05
done

# Two more jobs accepted right before the kill: they must survive it.
curl -fsS -X POST "http://127.0.0.1:$PORT_COORD/v1/runs" \
    -d '{"workload":"sparse","prefetcher":"sms"}' >"$TMP/run1.json"
RUNJOB1=$(json_field "$TMP/run1.json" id)
curl -fsS -X POST "http://127.0.0.1:$PORT_COORD/v1/runs" \
    -d '{"workload":"sparse"}' >"$TMP/run2.json"
RUNJOB2=$(json_field "$TMP/run2.json" id)
[ -n "$RUNJOB1" ] && [ -n "$RUNJOB2" ] || fail "run jobs not accepted before the kill"

kill -9 "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
COORD_PID=""
say "SIGKILLed coordinator mid-grid ($scattered cells scattered, jobs $FIGJOB $RUNJOB1 $RUNJOB2 in flight)"

# --- Restart against the same store and journal ----------------------------
"$BIN" -cluster -addr "127.0.0.1:$PORT_COORD" $SIMOPTS -heartbeat 250ms \
    -store "$TMP/store-coord" -journal "$TMP/journal" >"$TMP/coord2.log" 2>&1 &
COORD_PID=$!
wait_healthy "$PORT_COORD" "$TMP/coord2.log"
say "coordinator restarted on :$PORT_COORD against the same store and journal"

poll_done "$PORT_COORD" "$FIGJOB" "recovered figure job"
poll_done "$PORT_COORD" "$RUNJOB1" "recovered run job 1"
poll_done "$PORT_COORD" "$RUNJOB2" "recovered run job 2"
say "all three pre-kill jobs settled done after the restart"

# Byte-identity: the recovered grid must render exactly the reference.
curl -fsS "http://127.0.0.1:$PORT_COORD/v1/figures/$FIGURE" >"$TMP/figure-got.txt"
cmp -s "$TMP/figure-ref.txt" "$TMP/figure-got.txt" ||
    fail "recovered figure differs from the single-node reference"
say "recovered figure is byte-identical to the reference"

# The worker must have re-enrolled with the restarted coordinator.
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_COORD/v1/cluster/workers" >"$TMP/workers.json" 2>/dev/null || true
    grep -q '"alive": true' "$TMP/workers.json" 2>/dev/null && break
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "worker never re-registered after the restart"
    sleep 0.1
done
say "worker re-registered with the restarted coordinator"

# --- Metrics: exposition still valid, recovery counted ---------------------
curl -fsS "http://127.0.0.1:$PORT_COORD/metrics" >"$TMP/metrics.txt"
go run ./internal/obs/obscheck metrics "$TMP/metrics.txt" ||
    fail "restarted coordinator /metrics is not valid Prometheus exposition"
grep -q '^smsd_journal_enabled 1$' "$TMP/metrics.txt" ||
    fail "metrics do not report the journal as enabled"
requeued=$(sed -n 's/^smsd_recovery_jobs_requeued_total \([0-9][0-9]*\).*/\1/p' "$TMP/metrics.txt")
[ -n "$requeued" ] && [ "$requeued" -ge 1 ] ||
    fail "metrics do not count the recovered jobs (requeued=$requeued)"
say "metrics pass the exposition checker and count $requeued requeued jobs"

say "PASS"
