// Region tuning walkthrough: how a practitioner would size SMS for a new
// workload using the public API — sweep the spatial region size and the
// PHT budget, then check the AGT sizing, mirroring the paper's §4.4/§4.5
// methodology on one workload.
//
// Run with: go run ./examples/regiontune
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	cpus   = 2
	length = 300_000
	seed   = 5
	name   = "web-apache"
)

func main() {
	w, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuning SMS for %s\n\n", name)

	base := run(w, sim.Config{})

	fmt.Println("1) region size sweep (unbounded PHT):")
	bestSize, bestCov := 0, -1.0
	for _, size := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		geo, err := mem.NewGeometry(64, size)
		if err != nil {
			log.Fatal(err)
		}
		res := run(w, sim.Config{
			Geometry:       geo,
			PrefetcherName: "sms",
			SMS:            core.Config{PHTEntries: -1},
		})
		cov := res.L1Coverage(base).Covered
		fmt.Printf("   %5dB regions: coverage %5.1f%%\n", size, 100*cov)
		if cov > bestCov {
			bestCov, bestSize = cov, size
		}
	}
	fmt.Printf("   -> best region size: %dB (the paper selects 2kB)\n\n", bestSize)

	geo, err := mem.NewGeometry(64, bestSize)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2) PHT budget at that region size:")
	for _, entries := range []int{1024, 4096, 16384, -1} {
		res := run(w, sim.Config{
			Geometry:       geo,
			PrefetcherName: "sms",
			SMS:            core.Config{PHTEntries: entries},
		})
		label := fmt.Sprintf("%d", entries)
		if entries == -1 {
			label = "infinite"
		}
		fmt.Printf("   %8s entries: coverage %5.1f%%\n", label, 100*res.L1Coverage(base).Covered)
	}

	fmt.Println("\n3) AGT sizing (paper: 32-entry filter + 64-entry accumulation suffice):")
	for _, c := range []struct{ f, a int }{{8, 16}, {32, 64}, {-1, -1}} {
		cfg := core.Config{PHTEntries: -1}
		if c.f > 0 {
			cfg.FilterEntries, cfg.AccumEntries = c.f, c.a
		} else {
			cfg.FilterEntries, cfg.AccumEntries = 1<<20, -1
		}
		res := run(w, sim.Config{Geometry: geo, PrefetcherName: "sms", SMS: cfg})
		label := fmt.Sprintf("filter=%d accum=%d", c.f, c.a)
		if c.f < 0 {
			label = "unbounded AGT"
		}
		fmt.Printf("   %-22s coverage %5.1f%%\n", label, 100*res.L1Coverage(base).Covered)
	}
}

func run(w workload.Workload, cfg sim.Config) *sim.Result {
	cfg.WarmupAccesses = length / 2
	r, err := sim.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r.Run(w.Make(workload.Config{CPUs: cpus, Seed: seed, Length: length}))
}
