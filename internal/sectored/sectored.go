// Package sectored implements the two cache-coupled spatial-pattern
// training structures that the paper's §4.3 compares against the decoupled
// AGT:
//
//   - LogicalSectored (LS): a logical sectored-cache tag array maintained
//     alongside a traditional cache (after Chen et al.'s spatial pattern
//     predictor). It computes what a sectored cache's tags *would* contain,
//     without affecting real cache contents. Interleaved accesses conflict
//     in the logical tags, fragmenting generations and polluting the PHT
//     with more, sparser patterns.
//
//   - DecoupledSectored (DS): a sectored cache that actually constrains
//     cache contents (after Kumar & Wilkerson's spatial footprint
//     predictor, which used Seznec's decoupled sectored cache). A block
//     may reside only while its sector tag is present; replacing a sector
//     displaces the whole sector. This raises the demand miss rate itself,
//     which is why the paper's Fig. 8 shows DS bars exceeding the baseline.
//
// Reproduction note: DS here is a plain sectored cache (one tag per
// resident sector, whole-sector replacement). Seznec's decoupling softens
// — but does not remove — the conflict behaviour; the paper's qualitative
// result (DS ≫ misses, LS ≈ AGT coverage with ~2× PHT pressure) is
// preserved. See DESIGN.md §6.
package sectored

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/mem"
)

// Config parameterizes either training structure.
type Config struct {
	// Geometry fixes block and region (= sector) sizes.
	Geometry mem.Geometry
	// CacheSize is the modelled L1 capacity in bytes; the sector tag
	// array holds CacheSize/RegionSize sectors.
	CacheSize int
	// Assoc is the sector tag array's set associativity.
	Assoc int
	// Index selects the PHT prediction index.
	Index core.IndexKind
	// PHTEntries and PHTAssoc size the pattern history table
	// (0 entries = paper default; <0 = unbounded).
	PHTEntries int
	PHTAssoc   int
	// PredictionRegisters bounds concurrent streams (0 = paper default).
	PredictionRegisters int
}

func (c Config) withDefaults() Config {
	if c.Geometry == (mem.Geometry{}) {
		c.Geometry = mem.DefaultGeometry()
	}
	if c.CacheSize == 0 {
		c.CacheSize = 32 << 10
	}
	if c.Assoc == 0 {
		c.Assoc = 2
	}
	if c.PHTEntries == 0 {
		c.PHTEntries = core.DefaultPHTEntries
	} else if c.PHTEntries < 0 {
		c.PHTEntries = 0
	}
	if c.PHTAssoc == 0 {
		c.PHTAssoc = core.DefaultPHTAssoc
	}
	if c.PredictionRegisters == 0 {
		c.PredictionRegisters = core.DefaultPredictionRegisters
	}
	return c
}

// Canonical returns the configuration with zero fields resolved to the
// defaults and the "unbounded" (<0) PHT spelling normalized to -1; it is
// the idempotent form the result store hashes (withDefaults, which folds
// <0 into the internal 0-means-unbounded encoding, is not).
func (c Config) Canonical() Config {
	if c.Geometry == (mem.Geometry{}) {
		c.Geometry = mem.DefaultGeometry()
	}
	if c.CacheSize == 0 {
		c.CacheSize = 32 << 10
	}
	if c.Assoc == 0 {
		c.Assoc = 2
	}
	switch {
	case c.PHTEntries == 0:
		c.PHTEntries = core.DefaultPHTEntries
	case c.PHTEntries < 0:
		c.PHTEntries = -1
	}
	if c.PHTAssoc == 0 {
		c.PHTAssoc = core.DefaultPHTAssoc
	}
	if c.PredictionRegisters == 0 {
		c.PredictionRegisters = core.DefaultPredictionRegisters
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	sectors := c.CacheSize / c.Geometry.RegionSize()
	if sectors < c.Assoc || sectors%c.Assoc != 0 {
		return fmt.Errorf("sectored: %d sectors not divisible into %d ways", sectors, c.Assoc)
	}
	sets := sectors / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("sectored: set count %d not a power of two", sets)
	}
	return nil
}

// sector is one tag-array entry.
type sector struct {
	valid bool
	tag   uint64
	trig  sectorTrigger
	// accessed records demand-accessed blocks (the spatial pattern).
	accessed mem.Pattern
	// resident records blocks present in the cache (DS only).
	resident mem.Pattern
	// prefetched/used track streamed blocks for overprediction
	// accounting (DS only).
	prefetched mem.Pattern
	usedPref   mem.Pattern
	lru        uint64
}

type sectorTrigger struct {
	pc   uint64
	addr mem.Addr
}

// tagArray is the shared sets×ways sector structure. Sectors live in a
// flat backing array with a packed key sidecar (tag+1, 0 = invalid), so
// the per-access find scans eight bytes per way instead of a ~140-byte
// sector (the same layout trick as package cache).
type tagArray struct {
	geo     mem.Geometry
	backing []sector
	keys    []uint64 // tag+1 per way slot (set*assoc+way); 0 = invalid
	assoc   int
	nsets   int
	setMask uint64
	clock   uint64
}

func newTagArray(geo mem.Geometry, sectors, assoc int) *tagArray {
	nsets := sectors / assoc
	return &tagArray{
		geo:     geo,
		backing: make([]sector, sectors),
		keys:    make([]uint64, sectors),
		assoc:   assoc,
		nsets:   nsets,
		setMask: uint64(nsets - 1),
	}
}

func (ta *tagArray) setBits() uint { return uint(bits.TrailingZeros64(uint64(ta.nsets))) }

func (ta *tagArray) find(tag uint64) *sector {
	base := int(tag&ta.setMask) * ta.assoc
	k := tag + 1
	for i, c := range ta.keys[base : base+ta.assoc] {
		if c == k {
			return &ta.backing[base+i]
		}
	}
	return nil
}

// allocate victimizes the LRU way of tag's set and returns (new sector
// slot, victim copy, had victim).
func (ta *tagArray) allocate(tag uint64) (*sector, sector, bool) {
	base := int(tag&ta.setMask) * ta.assoc
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := 0; i < ta.assoc; i++ {
		if ta.keys[base+i] == 0 {
			victim = i
			break
		}
		if l := ta.backing[base+i].lru; l < oldest {
			oldest = l
			victim = i
		}
	}
	j := base + victim
	v := ta.backing[j]
	ta.clock++
	w := ta.geo.BlocksPerRegion()
	ta.backing[j] = sector{
		valid:      true,
		tag:        tag,
		accessed:   mem.NewPattern(w),
		resident:   mem.NewPattern(w),
		prefetched: mem.NewPattern(w),
		usedPref:   mem.NewPattern(w),
		lru:        ta.clock,
	}
	ta.keys[j] = tag + 1
	return &ta.backing[j], v, v.valid
}

func (ta *tagArray) touch(s *sector) {
	ta.clock++
	s.lru = ta.clock
}

// remove invalidates the sector holding tag, returning a copy.
func (ta *tagArray) remove(tag uint64) (sector, bool) {
	base := int(tag&ta.setMask) * ta.assoc
	k := tag + 1
	for i, c := range ta.keys[base : base+ta.assoc] {
		if c == k {
			j := base + i
			v := ta.backing[j]
			ta.backing[j] = sector{}
			ta.keys[j] = 0
			return v, true
		}
	}
	return sector{}, false
}

// Stats counts training-structure events shared by LS and DS.
type Stats struct {
	Accesses        uint64
	Triggers        uint64 // sector allocations
	PatternsLearned uint64
	Predictions     uint64
	StreamsIssued   uint64
}
