package core

import (
	"fmt"

	"repro/internal/mem"
)

// The Active Generation Table (§3.1) records spatial patterns as the
// processor accesses spatial regions. It is logically one table but is
// implemented — exactly as in the paper — as two content-addressable
// memories: the *filter table* holds regions whose current generation has
// seen only a single access (a significant minority of generations never
// see a second block, and predicting them buys nothing), and the
// *accumulation table* holds regions with at least two distinct blocks
// accessed, recording the pattern bit vector.

// trigger identifies the access that began a generation.
type trigger struct {
	pc     uint64
	offset int      // spatial region offset of the trigger access
	addr   mem.Addr // trigger block address (for address-bearing indices)
}

// filterEntry is one filter-table CAM entry.
type filterEntry struct {
	tag  uint64 // spatial region tag
	trig trigger
	lru  uint64
}

// FilterTable is the small CAM holding single-access generations.
type FilterTable struct {
	entries  []filterEntry
	capacity int
	clock    uint64
}

// NewFilterTable builds a filter table with the given entry count
// (paper: 32 suffices across all applications, §4.5). capacity <= 0 means
// unbounded (for limit studies).
func NewFilterTable(capacity int) *FilterTable {
	return &FilterTable{capacity: capacity}
}

// Len returns the current number of entries.
func (f *FilterTable) Len() int { return len(f.entries) }

// Lookup finds the entry for a region tag, or nil.
func (f *FilterTable) lookup(tag uint64) *filterEntry {
	for i := range f.entries {
		if f.entries[i].tag == tag {
			return &f.entries[i]
		}
	}
	return nil
}

// Insert allocates an entry for a new generation, returning the victim
// entry (dropped generation) if the table was full.
func (f *FilterTable) insert(tag uint64, trig trigger) (victim filterEntry, evicted bool) {
	f.clock++
	if f.capacity > 0 && len(f.entries) >= f.capacity {
		vi := 0
		for i := range f.entries {
			if f.entries[i].lru < f.entries[vi].lru {
				vi = i
			}
		}
		victim, evicted = f.entries[vi], true
		f.entries[vi] = filterEntry{tag: tag, trig: trig, lru: f.clock}
		return victim, evicted
	}
	f.entries = append(f.entries, filterEntry{tag: tag, trig: trig, lru: f.clock})
	return filterEntry{}, false
}

// remove deletes the entry for tag, reporting whether it existed.
func (f *FilterTable) remove(tag uint64) (filterEntry, bool) {
	for i := range f.entries {
		if f.entries[i].tag == tag {
			e := f.entries[i]
			f.entries[i] = f.entries[len(f.entries)-1]
			f.entries = f.entries[:len(f.entries)-1]
			return e, true
		}
	}
	return filterEntry{}, false
}

// accumEntry is one accumulation-table CAM entry: an active generation
// with at least two accessed blocks.
type accumEntry struct {
	tag     uint64
	trig    trigger
	pattern mem.Pattern
	lru     uint64
}

// AccumulationTable is the CAM recording patterns of active generations.
type AccumulationTable struct {
	entries  []accumEntry
	capacity int
	clock    uint64
}

// NewAccumulationTable builds an accumulation table with the given entry
// count (paper: 64 suffices; only OLTP-Oracle needs more than 32, §4.5).
// capacity <= 0 means unbounded.
func NewAccumulationTable(capacity int) *AccumulationTable {
	return &AccumulationTable{capacity: capacity}
}

// Len returns the current number of entries.
func (a *AccumulationTable) Len() int { return len(a.entries) }

func (a *AccumulationTable) lookup(tag uint64) *accumEntry {
	for i := range a.entries {
		if a.entries[i].tag == tag {
			return &a.entries[i]
		}
	}
	return nil
}

// insert allocates an entry (transfer from the filter table), returning a
// displaced victim generation if the table was full. The victim's pattern
// must be transferred to the PHT by the caller ("the entry is ...
// transferred from the accumulation table to the pattern history table",
// §3.1).
func (a *AccumulationTable) insert(e accumEntry) (victim accumEntry, evicted bool) {
	a.clock++
	e.lru = a.clock
	if a.capacity > 0 && len(a.entries) >= a.capacity {
		vi := 0
		for i := range a.entries {
			if a.entries[i].lru < a.entries[vi].lru {
				vi = i
			}
		}
		victim, evicted = a.entries[vi], true
		a.entries[vi] = e
		return victim, evicted
	}
	a.entries = append(a.entries, e)
	return accumEntry{}, false
}

func (a *AccumulationTable) remove(tag uint64) (accumEntry, bool) {
	for i := range a.entries {
		if a.entries[i].tag == tag {
			e := a.entries[i]
			a.entries[i] = a.entries[len(a.entries)-1]
			a.entries = a.entries[:len(a.entries)-1]
			return e, true
		}
	}
	return accumEntry{}, false
}

// touch refreshes LRU state for an entry on access.
func (a *AccumulationTable) touch(e *accumEntry) {
	a.clock++
	e.lru = a.clock
}

// String summarizes occupancy for debugging.
func (a *AccumulationTable) String() string {
	return fmt.Sprintf("accumulation{%d/%d}", len(a.entries), a.capacity)
}
