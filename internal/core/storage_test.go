package core

import (
	"testing"

	"repro/internal/mem"
)

func TestPHTStorageMatchesPaperEquivalence(t *testing.T) {
	// §4.2: a 16k-entry PHT at 2kB regions costs roughly a 64kB L1 data
	// array. 16k entries × (16 tag + 32 pattern) bits = 96 KiB — the
	// same order as 64 KiB.
	g := mem.DefaultGeometry()
	s := PHTStorage(g, 16384, 16)
	if s.Entries != 16384 || s.BitsPerEntry != 16+32 {
		t.Fatalf("storage = %+v", s)
	}
	if kib := s.KiB(); kib < 48 || kib > 128 {
		t.Fatalf("PHT KiB = %.1f, want same order as a 64KiB data array", kib)
	}
	// Unbounded: no hardware budget.
	if PHTStorage(g, 0, 16).Total() != 0 {
		t.Fatal("unbounded PHT should cost 0")
	}
}

func TestPHTStorageScalesWithRegionSize(t *testing.T) {
	// §4.4: PHT size scales linearly with region size (pattern width).
	g2k := mem.MustGeometry(64, 2048)
	g4k := mem.MustGeometry(64, 4096)
	s2, s4 := PHTStorage(g2k, 16384, 16), PHTStorage(g4k, 16384, 16)
	if s4.Total() <= s2.Total() {
		t.Fatal("larger regions must cost more PHT storage")
	}
	// Pattern portion doubles: 32 -> 64 bits.
	if s4.BitsPerEntry-s2.BitsPerEntry != 32 {
		t.Fatalf("pattern growth = %d bits, want 32", s4.BitsPerEntry-s2.BitsPerEntry)
	}
}

func TestAGTStorageSmall(t *testing.T) {
	// §4.5: the practical AGT (32 filter + 64 accumulation) is tiny
	// compared to the PHT.
	g := mem.DefaultGeometry()
	agt := AGTStorage(g, DefaultFilterEntries, DefaultAccumEntries)
	pht := PHTStorage(g, DefaultPHTEntries, DefaultPHTAssoc)
	if agt.Total() >= pht.Total()/10 {
		t.Fatalf("AGT %.1fKiB not small vs PHT %.1fKiB", agt.KiB(), pht.KiB())
	}
	if AGTStorage(g, 0, 0).Total() != 0 {
		t.Fatal("empty AGT should cost 0")
	}
}

func TestSMSStorageTotal(t *testing.T) {
	s := MustNew(Config{})
	st := s.Storage()
	if st.Total() <= 0 {
		t.Fatal("practical SMS must have a positive budget")
	}
	// Unbounded configuration: only the registers, which we report as 0
	// entries → zero budget.
	inf := MustNew(Config{PHTEntries: -1, AccumEntries: -1, FilterEntries: -1, PredictionRegisters: -1})
	if got := inf.Storage().Total(); got != 0 {
		t.Fatalf("unbounded config budget = %d, want 0", got)
	}
}

func TestLog2(t *testing.T) {
	for _, c := range [][2]int{{1, 0}, {2, 1}, {64, 6}, {2048, 11}} {
		if got := log2(c[0]); got != c[1] {
			t.Errorf("log2(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}
