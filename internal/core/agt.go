package core

import (
	"fmt"

	"repro/internal/mem"
)

// The Active Generation Table (§3.1) records spatial patterns as the
// processor accesses spatial regions. It is logically one table but is
// implemented — exactly as in the paper — as two content-addressable
// memories: the *filter table* holds regions whose current generation has
// seen only a single access (a significant minority of generations never
// see a second block, and predicting them buys nothing), and the
// *accumulation table* holds regions with at least two distinct blocks
// accessed, recording the pattern bit vector.

// tagIndex accelerates the CAM lookups: an open-addressed, linear-probing
// map from region tag to entry position. A hardware CAM matches every
// entry in parallel; the software model was scanning linearly on every
// access, which dominated SMS training time. The index is pure lookup
// acceleration — insertion, LRU and eviction decisions still happen on
// the entry arrays, so the model's behaviour is bit-identical.
type tagIndex struct {
	slots []tagIdxSlot
	mask  uint64
	n     int
	grow  int
}

type tagIdxSlot struct {
	key  uint64
	pos  int32
	used bool
}

func newTagIndex() tagIndex {
	const initial = 128 // power of two; grows for unbounded limit studies
	return tagIndex{
		slots: make([]tagIdxSlot, initial),
		mask:  initial - 1,
		grow:  initial * 3 / 4,
	}
}

func tagHash(key uint64) uint64 { return mem.HashKey(key) }

// get returns the entry position for key, or -1.
func (t *tagIndex) get(key uint64) int32 {
	i := tagHash(key) & t.mask
	for {
		s := &t.slots[i]
		if !s.used {
			return -1
		}
		if s.key == key {
			return s.pos
		}
		i = (i + 1) & t.mask
	}
}

// put inserts or repositions key.
func (t *tagIndex) put(key uint64, pos int32) {
	if t.n >= t.grow {
		t.rehash(len(t.slots) * 2)
	}
	i := tagHash(key) & t.mask
	for {
		s := &t.slots[i]
		if !s.used {
			*s = tagIdxSlot{key: key, pos: pos, used: true}
			t.n++
			return
		}
		if s.key == key {
			s.pos = pos
			return
		}
		i = (i + 1) & t.mask
	}
}

// del removes key with backward-shift deletion (no tombstones).
func (t *tagIndex) del(key uint64) {
	i := tagHash(key) & t.mask
	for {
		s := &t.slots[i]
		if !s.used {
			return
		}
		if s.key == key {
			break
		}
		i = (i + 1) & t.mask
	}
	t.n--
	mask := t.mask
	for {
		t.slots[i].used = false
		j := i
		for {
			j = (j + 1) & mask
			s := &t.slots[j]
			if !s.used {
				return
			}
			home := tagHash(s.key) & mask
			if (j-home)&mask >= (j-i)&mask {
				t.slots[i] = *s
				i = j
				break
			}
		}
	}
}

func (t *tagIndex) rehash(newSize int) {
	old := t.slots
	t.slots = make([]tagIdxSlot, newSize)
	t.mask = uint64(newSize - 1)
	t.grow = newSize * 3 / 4
	for oi := range old {
		if !old[oi].used {
			continue
		}
		i := tagHash(old[oi].key) & t.mask
		for t.slots[i].used {
			i = (i + 1) & t.mask
		}
		t.slots[i] = old[oi]
	}
}

// trigger identifies the access that began a generation.
type trigger struct {
	pc     uint64
	offset int      // spatial region offset of the trigger access
	addr   mem.Addr // trigger block address (for address-bearing indices)
}

// filterEntry is one filter-table CAM entry.
type filterEntry struct {
	tag  uint64 // spatial region tag
	trig trigger
	lru  uint64
}

// FilterTable is the small CAM holding single-access generations.
type FilterTable struct {
	entries  []filterEntry
	idx      tagIndex
	capacity int
	clock    uint64
}

// NewFilterTable builds a filter table with the given entry count
// (paper: 32 suffices across all applications, §4.5). capacity <= 0 means
// unbounded (for limit studies).
func NewFilterTable(capacity int) *FilterTable {
	return &FilterTable{capacity: capacity, idx: newTagIndex()}
}

// Len returns the current number of entries.
func (f *FilterTable) Len() int { return len(f.entries) }

// Lookup finds the entry for a region tag, or nil.
func (f *FilterTable) lookup(tag uint64) *filterEntry {
	if i := f.idx.get(tag); i >= 0 {
		return &f.entries[i]
	}
	return nil
}

// Insert allocates an entry for a new generation, returning the victim
// entry (dropped generation) if the table was full.
func (f *FilterTable) insert(tag uint64, trig trigger) (victim filterEntry, evicted bool) {
	f.clock++
	if f.capacity > 0 && len(f.entries) >= f.capacity {
		vi := 0
		for i := range f.entries {
			if f.entries[i].lru < f.entries[vi].lru {
				vi = i
			}
		}
		victim, evicted = f.entries[vi], true
		f.entries[vi] = filterEntry{tag: tag, trig: trig, lru: f.clock}
		f.idx.del(victim.tag)
		f.idx.put(tag, int32(vi))
		return victim, evicted
	}
	f.entries = append(f.entries, filterEntry{tag: tag, trig: trig, lru: f.clock})
	f.idx.put(tag, int32(len(f.entries)-1))
	return filterEntry{}, false
}

// remove deletes the entry for tag, reporting whether it existed.
func (f *FilterTable) remove(tag uint64) (filterEntry, bool) {
	i := f.idx.get(tag)
	if i < 0 {
		return filterEntry{}, false
	}
	e := f.entries[i]
	last := len(f.entries) - 1
	f.entries[i] = f.entries[last]
	f.entries = f.entries[:last]
	f.idx.del(tag)
	if int(i) != last {
		f.idx.put(f.entries[i].tag, i)
	}
	return e, true
}

// accumEntry is one accumulation-table CAM entry: an active generation
// with at least two accessed blocks.
type accumEntry struct {
	tag     uint64
	trig    trigger
	pattern mem.Pattern
	lru     uint64
}

// AccumulationTable is the CAM recording patterns of active generations.
type AccumulationTable struct {
	entries  []accumEntry
	idx      tagIndex
	capacity int
	clock    uint64
}

// NewAccumulationTable builds an accumulation table with the given entry
// count (paper: 64 suffices; only OLTP-Oracle needs more than 32, §4.5).
// capacity <= 0 means unbounded.
func NewAccumulationTable(capacity int) *AccumulationTable {
	return &AccumulationTable{capacity: capacity, idx: newTagIndex()}
}

// Len returns the current number of entries.
func (a *AccumulationTable) Len() int { return len(a.entries) }

func (a *AccumulationTable) lookup(tag uint64) *accumEntry {
	if i := a.idx.get(tag); i >= 0 {
		return &a.entries[i]
	}
	return nil
}

// insert allocates an entry (transfer from the filter table), returning a
// displaced victim generation if the table was full. The victim's pattern
// must be transferred to the PHT by the caller ("the entry is ...
// transferred from the accumulation table to the pattern history table",
// §3.1).
func (a *AccumulationTable) insert(e accumEntry) (victim accumEntry, evicted bool) {
	a.clock++
	e.lru = a.clock
	if a.capacity > 0 && len(a.entries) >= a.capacity {
		vi := 0
		for i := range a.entries {
			if a.entries[i].lru < a.entries[vi].lru {
				vi = i
			}
		}
		victim, evicted = a.entries[vi], true
		a.entries[vi] = e
		a.idx.del(victim.tag)
		a.idx.put(e.tag, int32(vi))
		return victim, evicted
	}
	a.entries = append(a.entries, e)
	a.idx.put(e.tag, int32(len(a.entries)-1))
	return accumEntry{}, false
}

func (a *AccumulationTable) remove(tag uint64) (accumEntry, bool) {
	i := a.idx.get(tag)
	if i < 0 {
		return accumEntry{}, false
	}
	e := a.entries[i]
	last := len(a.entries) - 1
	a.entries[i] = a.entries[last]
	a.entries = a.entries[:last]
	a.idx.del(tag)
	if int(i) != last {
		a.idx.put(a.entries[i].tag, i)
	}
	return e, true
}

// touch refreshes LRU state for an entry on access.
func (a *AccumulationTable) touch(e *accumEntry) {
	a.clock++
	e.lru = a.clock
}

// String summarizes occupancy for debugging.
func (a *AccumulationTable) String() string {
	return fmt.Sprintf("accumulation{%d/%d}", len(a.entries), a.capacity)
}
