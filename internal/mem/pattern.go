package mem

import (
	"fmt"
	"math/bits"
	"strings"
)

// Pattern is a spatial pattern: a bit vector with one bit per cache block in
// a spatial region, where a set bit means the block was (or is predicted to
// be) accessed during a spatial region generation. Patterns are value types;
// the zero Pattern is an empty pattern of width 0.
//
// Patterns up to 128 blocks (8 kB regions with 64 B blocks) fit in the
// inline two-word representation, so pattern manipulation never allocates
// for any configuration in the paper.
type Pattern struct {
	width int // number of valid bits
	lo    uint64
	hi    uint64
}

// MaxPatternWidth is the widest supported spatial pattern, corresponding to
// the paper's largest region size (8 kB) with 64 B blocks.
const MaxPatternWidth = 128

// NewPattern returns an empty pattern of the given width.
// It panics if width is outside (0, MaxPatternWidth].
func NewPattern(width int) Pattern {
	if width <= 0 || width > MaxPatternWidth {
		panic(fmt.Sprintf("mem: pattern width %d out of range (0,%d]", width, MaxPatternWidth))
	}
	return Pattern{width: width}
}

// PatternOf builds a pattern of the given width with the listed bits set.
func PatternOf(width int, setBits ...int) Pattern {
	p := NewPattern(width)
	for _, b := range setBits {
		p.Set(b)
	}
	return p
}

// Width returns the number of blocks the pattern covers.
func (p Pattern) Width() int { return p.width }

// Set marks block i as accessed. It panics if i is out of range.
func (p *Pattern) Set(i int) {
	p.check(i)
	if i < 64 {
		p.lo |= 1 << uint(i)
	} else {
		p.hi |= 1 << uint(i-64)
	}
}

// Clear unmarks block i. It panics if i is out of range.
func (p *Pattern) Clear(i int) {
	p.check(i)
	if i < 64 {
		p.lo &^= 1 << uint(i)
	} else {
		p.hi &^= 1 << uint(i-64)
	}
}

// Test reports whether block i is set. It panics if i is out of range.
func (p Pattern) Test(i int) bool {
	p.check(i)
	if i < 64 {
		return p.lo&(1<<uint(i)) != 0
	}
	return p.hi&(1<<uint(i-64)) != 0
}

func (p Pattern) check(i int) {
	if i < 0 || i >= p.width {
		panic(fmt.Sprintf("mem: pattern bit %d out of range [0,%d)", i, p.width))
	}
}

// PopCount returns the number of set bits (the generation's density).
func (p Pattern) PopCount() int {
	return bits.OnesCount64(p.lo) + bits.OnesCount64(p.hi)
}

// FirstSet returns the index of the lowest set bit, or -1 if the pattern
// is empty. It is constant-time (two TrailingZeros), which matters to the
// prediction-register round-robin that pops the lowest pending block per
// stream request.
func (p Pattern) FirstSet() int {
	if p.lo != 0 {
		return bits.TrailingZeros64(p.lo)
	}
	if p.hi != 0 {
		return 64 + bits.TrailingZeros64(p.hi)
	}
	return -1
}

// Empty reports whether no bits are set.
func (p Pattern) Empty() bool { return p.lo == 0 && p.hi == 0 }

// Equal reports whether two patterns have identical width and bits.
func (p Pattern) Equal(q Pattern) bool {
	return p.width == q.width && p.lo == q.lo && p.hi == q.hi
}

// Or returns the union of two patterns of equal width.
func (p Pattern) Or(q Pattern) Pattern {
	if p.width != q.width {
		panic(fmt.Sprintf("mem: pattern width mismatch %d vs %d", p.width, q.width))
	}
	return Pattern{width: p.width, lo: p.lo | q.lo, hi: p.hi | q.hi}
}

// And returns the intersection of two patterns of equal width.
func (p Pattern) And(q Pattern) Pattern {
	if p.width != q.width {
		panic(fmt.Sprintf("mem: pattern width mismatch %d vs %d", p.width, q.width))
	}
	return Pattern{width: p.width, lo: p.lo & q.lo, hi: p.hi & q.hi}
}

// AndNot returns the bits set in p but not q (p &^ q).
func (p Pattern) AndNot(q Pattern) Pattern {
	if p.width != q.width {
		panic(fmt.Sprintf("mem: pattern width mismatch %d vs %d", p.width, q.width))
	}
	return Pattern{width: p.width, lo: p.lo &^ q.lo, hi: p.hi &^ q.hi}
}

// Rotate returns the pattern rotated left by k block positions (mod width).
// Rotation re-aligns a pattern recorded relative to one trigger offset so it
// can be replayed relative to another; SMS with PC+offset indexing stores
// patterns rotated to the trigger offset so that one PHT entry serves every
// alignment of the same footprint.
func (p Pattern) Rotate(k int) Pattern {
	w := p.width
	k = ((k % w) + w) % w
	if k == 0 {
		return p
	}
	// Word-width fast paths: every paper geometry has a power-of-two
	// width ≤ 64 or exactly 128, so rotation is two shifts, not a
	// per-bit loop. (Rotation runs once per PHT store/lookup, which is
	// once per generation event — squarely on the training hot path.)
	if w <= 64 {
		mask := ^uint64(0) >> (64 - uint(w))
		lo := (p.lo<<uint(k) | p.lo>>uint(w-k)) & mask
		return Pattern{width: w, lo: lo}
	}
	if w == 128 {
		var lo, hi uint64
		if k < 64 {
			lo = p.lo<<uint(k) | p.hi>>uint(64-k)
			hi = p.hi<<uint(k) | p.lo>>uint(64-k)
		} else if k == 64 {
			lo, hi = p.hi, p.lo
		} else {
			lo = p.hi<<uint(k-64) | p.lo>>uint(128-k)
			hi = p.lo<<uint(k-64) | p.hi>>uint(128-k)
		}
		return Pattern{width: w, lo: lo, hi: hi}
	}
	out := NewPattern(w)
	for i := 0; i < w; i++ {
		if p.Test(i) {
			out.Set((i + k) % w)
		}
	}
	return out
}

// Bits returns the indices of set bits in ascending order.
func (p Pattern) Bits() []int {
	out := make([]int, 0, p.PopCount())
	for i := 0; i < p.width; i++ {
		if p.Test(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the pattern LSB-first as a bit string, e.g. "1011" for a
// 4-block region whose blocks 0, 2 and 3 were accessed. This matches the
// left-to-right block order used in the paper's Figure 2 walkthrough.
func (p Pattern) String() string {
	var sb strings.Builder
	sb.Grow(p.width)
	for i := 0; i < p.width; i++ {
		if p.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParsePattern parses the String representation back into a Pattern.
func ParsePattern(s string) (Pattern, error) {
	if len(s) == 0 || len(s) > MaxPatternWidth {
		return Pattern{}, fmt.Errorf("mem: pattern string length %d out of range", len(s))
	}
	p := NewPattern(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			p.Set(i)
		case '0':
		default:
			return Pattern{}, fmt.Errorf("mem: invalid pattern character %q at %d", s[i], i)
		}
	}
	return p, nil
}
