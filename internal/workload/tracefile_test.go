package workload

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// captureV2 writes workload name's trace under cfg to a v2 file.
func captureV2(t *testing.T, name string, cfg Config) (string, []trace.Record) {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	recs := trace.Collect(w.Make(cfg), 0)
	path := filepath.Join(t.TempDir(), "capture.smst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := trace.NewV2Writer(f, trace.Header{CPUs: cfg.CPUs, Workload: name})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, recs
}

func TestTraceWorkloadReplaysFile(t *testing.T) {
	cfg := Config{CPUs: 2, Seed: 3, Length: 12_000}
	path, recs := captureV2(t, "dss-q1", cfg)

	w, err := ByName(TracePrefix + path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Group != GroupTrace || !w.External || w.Name != TracePrefix+path {
		t.Fatalf("trace workload = %+v", w)
	}

	// The replay ignores CPUs/seed/scale and reproduces the capture.
	got := trace.Collect(w.Make(Config{CPUs: 16, Seed: 99, Scale: 4}), 0)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}

	// Length caps the replay; two sources are independent streams.
	a := w.Make(Config{Length: 100})
	b := w.Make(Config{})
	if n := len(trace.Collect(a, 0)); n != 100 {
		t.Fatalf("Length cap yielded %d records", n)
	}
	if n := len(trace.Collect(b, 0)); n != len(recs) {
		t.Fatalf("uncapped source yielded %d records", n)
	}

	// Second lookup reuses the cached file handle.
	again, err := ByName(TracePrefix + path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Collect(again.Make(Config{}), 0)); n != len(recs) {
		t.Fatalf("cached handle yielded %d records", n)
	}
}

func TestTraceWorkloadReopensOverwrittenFile(t *testing.T) {
	cfg := Config{CPUs: 1, Seed: 1, Length: 2000}
	path, _ := captureV2(t, "sparse", cfg)
	w, err := ByName(TracePrefix + path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Collect(w.Make(Config{}), 0)); n != 2000 {
		t.Fatalf("first capture yielded %d records", n)
	}

	// Re-capture over the same path with a different length: the next
	// lookup must serve the new file, not the stale cached mapping.
	other, _ := captureV2(t, "sparse", Config{CPUs: 1, Seed: 2, Length: 3000})
	data, err := os.ReadFile(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := ByName(TracePrefix + path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Collect(w2.Make(Config{}), 0)); n != 3000 {
		t.Fatalf("overwritten capture yielded %d records, want 3000", n)
	}
}

func TestTraceWorkloadStaysOutOfAll(t *testing.T) {
	before := len(All())
	path, _ := captureV2(t, "sparse", Config{CPUs: 1, Seed: 1, Length: 1000})
	if _, err := OpenTraceWorkload(path); err != nil {
		t.Fatal(err)
	}
	if got := len(All()); got != before {
		t.Fatalf("All() grew from %d to %d after registering a trace workload", before, got)
	}
}

func TestTraceWorkloadErrors(t *testing.T) {
	if _, err := ByName("trace:"); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := ByName("trace:" + filepath.Join(t.TempDir(), "missing.smst")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.smst")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("trace:" + bad); !errors.Is(err, trace.ErrBadFormat) {
		t.Errorf("garbage file error = %v, want ErrBadFormat", err)
	}
}
