// Package store is the persistent, content-addressed result store behind
// the experiment harness and the smsd daemon.
//
// Every simulation run is identified by the canonical JSON form of its
// full identity — workload name, workload generation config, simulator
// config (prefetcher resolved to its registry name), and a simulator
// version salt — hashed with SHA-256. The sim.Result (or a rendered
// figure) is persisted as JSON under that address, so any process that
// re-derives the same identity gets a cache hit instead of a simulation:
//
//	<dir>/results/<hh>/<hash>.json   one sim.Result per run identity
//	<dir>/figures/<hh>/<hash>.json   one rendered figure per figure identity
//
// (<hh> is the first two hex digits of the hash, fanning the objects out
// over 256 subdirectories.)
//
// Writes are atomic (temp file + rename in the same directory), so a
// crashed writer never leaves a partially-written object visible. Reads
// are corruption-tolerant: an object that fails to decode is treated as a
// miss (and dropped from the in-memory layer), never as an error — the
// poisoned file is moved to <dir>/corrupt/<kind>/ so it cannot shadow
// the recomputed object. A
// byte-bounded in-memory LRU layer sits in front of the disk so repeated
// lookups in one process skip the filesystem.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// VersionSalt is folded into every content address. Bump it when the
// simulator's semantics — or the serialized form of the hashed identity —
// change, so stale results stop matching.
//
// /2: sim.Config lost the deprecated Prefetcher enum field, changing the
// canonical JSON that run identities hash. Results are unchanged, but
// pre-/2 store objects are unreachable under the new addresses.
//
// /3: sim.Config gained the Sampling block and figure identities gained a
// sampling scope, changing both hashed serializations. Exact results are
// unchanged, but pre-/3 store objects are unreachable under the new
// addresses.
const VersionSalt = "sms-repro/3"

// DefaultMemoryBytes bounds the in-memory LRU layer by default.
const DefaultMemoryBytes = 64 << 20

// Object kinds (also the on-disk subdirectory names).
const (
	kindResult = "results"
	kindFigure = "figures"
)

// runIdentity is the hashed form of one run. Field order is the
// serialization order, so it must not be reordered without bumping
// VersionSalt.
type runIdentity struct {
	Kind           string          `json:"kind"`
	Salt           string          `json:"salt"`
	Workload       string          `json:"workload"`
	WorkloadConfig workload.Config `json:"workload_config"`
	Prefetcher     string          `json:"prefetcher"`
	SimConfig      sim.Config      `json:"sim_config"`
}

// figureIdentity is the hashed form of one rendered figure.
type figureIdentity struct {
	Kind     string             `json:"kind"`
	Salt     string             `json:"salt"`
	Figure   string             `json:"figure"`
	CPUs     int                `json:"cpus"`
	Seed     int64              `json:"seed"`
	Length   uint64             `json:"length"`
	Sampling sim.SamplingConfig `json:"sampling"`
}

func hashIdentity(id any) string {
	data, err := json.Marshal(id)
	if err != nil {
		// The identity structs are plain data; marshaling cannot fail.
		panic(fmt.Sprintf("store: hashing identity: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ForRun returns the content address of one simulation run. Both configs
// are canonicalized first, so any two configs selecting the same
// simulation — defaults spelled out or left zero, prefetcher named or
// chosen via the deprecated enum — address the same object.
func ForRun(workloadName string, wcfg workload.Config, scfg sim.Config) string {
	scfg = scfg.Canonical()
	return hashIdentity(runIdentity{
		Kind:           "run",
		Salt:           VersionSalt,
		Workload:       workloadName,
		WorkloadConfig: wcfg.Canonical(),
		Prefetcher:     scfg.PrefetcherName,
		SimConfig:      scfg,
	})
}

// ForFigure returns the content address of a rendered figure under the
// given experiment scope (figure name + the options that shape every run
// inside it). The sampling config is part of the scope, so sampled and
// exact renderings of the same figure memoize separately; pass the zero
// value for exact figures.
func ForFigure(figure string, cpus int, seed int64, length uint64, sampling sim.SamplingConfig) string {
	return hashIdentity(figureIdentity{
		Kind:     "figure",
		Salt:     VersionSalt,
		Figure:   figure,
		CPUs:     cpus,
		Seed:     seed,
		Length:   length,
		Sampling: sampling.Canonical(),
	})
}

// Stats counts store activity. Hits = MemHits + DiskHits; lookups that
// find nothing (or only a corrupt object) count as Misses. The Trace*
// counters cover the binary trace tier (see trace.go), which bypasses
// the JSON object path and the in-memory LRU.
type Stats struct {
	Hits         uint64
	Misses       uint64
	MemHits      uint64
	DiskHits     uint64
	Writes       uint64
	Corrupt      uint64
	Quarantined  uint64
	BytesRead    uint64
	BytesWritten uint64

	TraceHits         uint64
	TraceMisses       uint64
	TraceWrites       uint64
	TraceBytesRead    uint64
	TraceBytesWritten uint64
}

// Options tune a Store.
type Options struct {
	// MemoryBytes bounds the in-memory LRU layer. 0 selects
	// DefaultMemoryBytes; negative disables the layer entirely.
	MemoryBytes int64
}

// Store is a content-addressed result store rooted at one directory. It
// is safe for concurrent use.
type Store struct {
	dir string

	// fault is the chaos-test injector; nil (the production state)
	// costs one pointer test per I/O operation. Set before the store
	// is shared across goroutines.
	fault *fault.Injector

	mu    sync.Mutex
	lru   *lruCache
	stats Stats
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions is Open with explicit tuning.
func OpenOptions(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	for _, kind := range []string{kindResult, kindFigure, kindTrace} {
		if err := os.MkdirAll(filepath.Join(dir, kind), 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", kind, err)
		}
	}
	limit := o.MemoryBytes
	if limit == 0 {
		limit = DefaultMemoryBytes
	}
	var lru *lruCache
	if limit > 0 {
		lru = newLRUCache(limit)
	}
	return &Store{dir: dir, lru: lru}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetFault installs a fault injector on the store's I/O sites
// (store.<kind>.{read,write,rename}). Call it right after Open, before
// the store is shared.
func (s *Store) SetFault(f *fault.Injector) { s.fault = f }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// GetResult fetches the simulation result stored at key, reporting
// whether it was present (in memory or on disk) and decoded cleanly.
func (s *Store) GetResult(key string) (*sim.Result, bool) {
	var res sim.Result
	if !s.get(kindResult, key, &res, true) {
		return nil, false
	}
	return &res, true
}

// ProbeResult is GetResult except that a miss is not counted: the
// fast-path form for callers that follow a probe miss with a real Get
// (the smsd daemon), so each logical lookup lands in Stats exactly once.
func (s *Store) ProbeResult(key string) (*sim.Result, bool) {
	var res sim.Result
	if !s.get(kindResult, key, &res, false) {
		return nil, false
	}
	return &res, true
}

// PutResult persists res at key.
func (s *Store) PutResult(key string, res *sim.Result) error {
	return s.put(kindResult, key, res)
}

// figureDoc is the persisted form of a rendered figure.
type figureDoc struct {
	Text string `json:"text"`
}

// GetFigure fetches the rendered figure stored at key.
func (s *Store) GetFigure(key string) (string, bool) {
	var doc figureDoc
	if !s.get(kindFigure, key, &doc, true) {
		return "", false
	}
	return doc.Text, true
}

// ProbeFigure is GetFigure without miss accounting (see ProbeResult).
func (s *Store) ProbeFigure(key string) (string, bool) {
	var doc figureDoc
	if !s.get(kindFigure, key, &doc, false) {
		return "", false
	}
	return doc.Text, true
}

// PutFigure persists the rendered figure text at key.
func (s *Store) PutFigure(key, text string) error {
	return s.put(kindFigure, key, figureDoc{Text: text})
}

// objectPath fans objects out over 256 subdirectories by hash prefix.
func (s *Store) objectPath(kind, key string) string {
	prefix := "xx"
	if len(key) >= 2 {
		prefix = key[:2]
	}
	return filepath.Join(s.dir, kind, prefix, key+".json")
}

// get loads and decodes the object at (kind, key) into out, maintaining
// the LRU layer and the hit/miss/corruption counters (misses only when
// countMiss, for the Probe variants). Decoding happens outside the mutex
// so concurrent lookups of distinct keys do not serialize on one core;
// the lock covers only LRU and stats bookkeeping.
func (s *Store) get(kind, key string, out any, countMiss bool) bool {
	cacheKey := kind + "/" + key

	s.mu.Lock()
	var data []byte
	fromMem := false
	if s.lru != nil {
		data, fromMem = s.lru.get(cacheKey)
	}
	s.mu.Unlock()

	if !fromMem {
		d, err := os.ReadFile(s.objectPath(kind, key))
		if s.fault != nil && err == nil {
			err = s.fault.Point("store." + kind + ".read")
		}
		if err != nil {
			if countMiss {
				s.mu.Lock()
				s.stats.Misses++
				s.mu.Unlock()
			}
			return false
		}
		data = d
	}

	if err := json.Unmarshal(data, out); err != nil {
		// Corrupt object (torn write from a pre-rename crash, disk
		// damage, or a foreign file): treat as a miss rather than an
		// error; the caller will recompute and overwrite it. The
		// poisoned file is moved aside so it cannot re-warn on every
		// read or shadow the recomputed object.
		slog.Warn("store: corrupt object quarantined and treated as a miss", "kind", kind, "key", key, "err", err)
		s.mu.Lock()
		if fromMem && s.lru != nil {
			s.lru.remove(cacheKey)
		}
		s.stats.Corrupt++
		if countMiss {
			s.stats.Misses++
		}
		s.mu.Unlock()
		if !fromMem {
			// Only quarantine bytes known to have come from this disk
			// file; a stale in-memory entry says nothing about it.
			s.quarantine(kind, s.objectPath(kind, key))
		}
		return false
	}

	s.mu.Lock()
	s.stats.Hits++
	if fromMem {
		s.stats.MemHits++
	} else {
		s.stats.DiskHits++
		s.stats.BytesRead += uint64(len(data))
		if s.lru != nil {
			s.lru.add(cacheKey, data)
		}
	}
	s.mu.Unlock()
	return true
}

// quarantine atomically moves a corrupt object file out of the
// addressable tree to <dir>/corrupt/<kind>/<basename>, so it stops
// shadowing recomputation (and re-warning on every read) while staying
// on disk for forensics. Losing the race to another reader is fine —
// the file only moves once.
func (s *Store) quarantine(kind, path string) {
	qdir := filepath.Join(s.dir, "corrupt", kind)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		slog.Warn("store: creating quarantine directory", "err", err)
		return
	}
	if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
		if !os.IsNotExist(err) {
			slog.Warn("store: quarantining corrupt object", "path", path, "err", err)
		}
		return
	}
	s.mu.Lock()
	s.stats.Quarantined++
	s.mu.Unlock()
}

// put encodes v and writes it atomically at (kind, key): the bytes land
// in a temp file in the final directory and are renamed into place, so
// concurrent readers see either the old object or the new one, never a
// prefix.
func (s *Store) put(kind, key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encoding %s/%s: %w", kind, key, err)
	}
	path := s.objectPath(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if keep, ferr := s.fault.Partial("store."+kind+".write", len(data)); ferr != nil {
		// A crash leaves its debris — the torn temp file — exactly as
		// a killed process would; an ordinary injected error cleans up
		// like any other failed write.
		_, _ = tmp.Write(data[:keep])
		tmp.Close()
		if !errors.Is(ferr, fault.ErrCrashed) {
			os.Remove(tmp.Name())
		}
		return fmt.Errorf("store: writing %s/%s: %w", kind, key, ferr)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s/%s: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing %s/%s: %w", kind, key, err)
	}
	// CreateTemp's 0600 would make a store directory shared between a
	// daemon user and operators (the smsd + CLI workflow) silently
	// unreadable to everyone but the writer.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing %s/%s: %w", kind, key, err)
	}
	if ferr := s.fault.Point("store." + kind + ".rename"); ferr != nil {
		// Crash between temp write and rename: the fully-written temp
		// file stays, the object never becomes visible.
		if !errors.Is(ferr, fault.ErrCrashed) {
			os.Remove(tmp.Name())
		}
		return fmt.Errorf("store: publishing %s/%s: %w", kind, key, ferr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing %s/%s: %w", kind, key, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Writes++
	s.stats.BytesWritten += uint64(len(data))
	if s.lru != nil {
		s.lru.add(kind+"/"+key, data)
	}
	return nil
}
