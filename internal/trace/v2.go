package trace

// Trace format v2: blocked + columnar, seekable, mmap-friendly.
//
// A v2 file is
//
//	header | block* | index | tail
//
// Header (little-endian; fixed 64 bytes + workload name):
//
//	[0:4]   magic "SMST" (shared with v1; the version field disambiguates)
//	[4:6]   version = 2 (uint16)
//	[6:8]   header length in bytes (uint16) — offset of the first block
//	[8:12]  CPU count (uint32)
//	[12:16] geometry block size in bytes (uint32; 0 = unspecified)
//	[16:20] geometry region size in bytes (uint32; 0 = unspecified)
//	[20:24] reserved
//	[24:32] record count (uint64; 0 = unknown — the tail is authoritative)
//	[32:64] source-workload canonical hash (32 bytes; all-zero = unknown)
//	[64:66] workload name length n (uint16)
//	[66:66+n] workload name (UTF-8)
//
// Each block holds up to Header.BlockRecords records as per-column arrays:
//
//	[0:4]   record count (uint32)
//	[4:8]   seq column length (uint32)
//	[8:12]  pc column length (uint32)
//	[12:16] addr column length (uint32)
//	[16:]   seq column  | pc column | addr column
//	        | cpu column (count bytes) | kind bitmap ((count+7)/8 bytes)
//
// The seq column is zigzag-varint deltas against the previous record's
// seq; the pc and addr columns are zigzag-varint deltas against the
// previous record *of the same CPU* — multiprocessor traces interleave
// CPUs round-robin, so same-CPU deltas are the small strides of one
// op's traversal (mostly one byte) while record-to-record deltas jump
// between unrelated structures. Delta state resets at every block
// boundary (the first value per CPU is a delta against zero), so any
// block decodes on its own. The kind bitmap sets bit i when record i is
// a write.
//
// The index is one {block offset uint64, record count uint32} entry per
// block, and the 32-byte tail makes the file self-locating from its end:
//
//	[0:8]   index offset (uint64)
//	[8:12]  block count (uint32)
//	[12:20] total record count (uint64)
//	[20:24] CRC-32 (IEEE) of the index bytes (uint32)
//	[24:28] reserved
//	[28:32] tail magic "2TSM"
//
// The index gives O(1) Seek (binary search over cumulative counts, then
// one block decode) and O(1) stat (header + tail only). Delta+varint
// encoding compresses the generator traces to roughly a third of the
// fixed 26-byte v1 records.

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/mem"
)

const (
	// Version2 identifies the blocked columnar format.
	Version2 = 2

	v2HeaderFixed = 64
	v2HeaderMin   = v2HeaderFixed + 2
	v2BlockHeader = 16
	v2IndexEntry  = 12
	v2TailSize    = 32
	v2TailMagic   = "2TSM"

	// DefaultBlockRecords is the writer's records-per-block default: big
	// enough to amortize per-block costs, small enough that one Seek
	// decodes under a millisecond of data.
	DefaultBlockRecords = 32768

	// maxV2BlockRecords bounds a block's claimed record count during
	// decoding, so a corrupt count cannot drive a giant allocation.
	maxV2BlockRecords = 1 << 22
)

// Header is the self-describing v2 file header.
type Header struct {
	// CPUs is the trace's processor count (informative).
	CPUs int
	// Geometry records the block/region geometry the capture assumed.
	// The zero Geometry means unspecified.
	Geometry mem.Geometry
	// Workload is the source workload's name ("" = unknown).
	Workload string
	// WorkloadHash is the hex SHA-256 canonical identity of the source
	// workload ("" = unknown) — the content address the engine's disk
	// trace tier stores the file under (store.ForTrace).
	WorkloadHash string
	// Records is the total record count. Writers fill it at Close (when
	// the destination supports io.WriterAt); readers always report it
	// from the tail.
	Records uint64
	// Blocks is the block count (reader-filled).
	Blocks int
	// BlockRecords is a writer-side knob: records per block, 0 selecting
	// DefaultBlockRecords. It is not persisted; readers take block sizes
	// from the index.
	BlockRecords int
}

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// V2Writer streams records into the v2 blocked columnar format.
type V2Writer struct {
	w   io.Writer
	at  io.WriterAt // non-nil when the header record count can be patched
	hdr Header

	blockRecords int
	pending      []Record

	enc     []byte // assembled block
	colSeq  []byte
	colPC   []byte
	colAddr []byte

	index  []byte
	blocks uint32
	off    uint64
	count  uint64

	err    error
	closed bool
}

// NewV2Writer writes the v2 header and returns a writer. Records are
// buffered into blocks and flushed as each fills; Close writes the final
// partial block, the index, and the tail. When w also implements
// io.WriterAt (an *os.File does), Close patches the header's record
// count in place; otherwise the header leaves it zero and readers use
// the tail.
func NewV2Writer(w io.Writer, hdr Header) (*V2Writer, error) {
	// The header length field is a uint16 counting the 66 fixed bytes
	// plus the name, so the name's bound is 0xffff minus that prefix.
	if len(hdr.Workload) > 0xffff-v2HeaderMin {
		return nil, fmt.Errorf("%w: workload name %d bytes long", ErrBadFormat, len(hdr.Workload))
	}
	var hash [32]byte
	if hdr.WorkloadHash != "" {
		h, err := hex.DecodeString(hdr.WorkloadHash)
		if err != nil || len(h) != 32 {
			return nil, fmt.Errorf("%w: workload hash %q is not 32 hex bytes", ErrBadFormat, hdr.WorkloadHash)
		}
		copy(hash[:], h)
	}
	blockRecords := hdr.BlockRecords
	if blockRecords <= 0 {
		blockRecords = DefaultBlockRecords
	}
	if blockRecords > maxV2BlockRecords {
		blockRecords = maxV2BlockRecords
	}

	buf := make([]byte, v2HeaderFixed+2+len(hdr.Workload))
	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint16(buf[4:6], Version2)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(buf)))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(hdr.CPUs))
	if hdr.Geometry != (mem.Geometry{}) {
		binary.LittleEndian.PutUint32(buf[12:16], uint32(hdr.Geometry.BlockSize()))
		binary.LittleEndian.PutUint32(buf[16:20], uint32(hdr.Geometry.RegionSize()))
	}
	// buf[24:32] record count: patched at Close when possible.
	copy(buf[32:64], hash[:])
	binary.LittleEndian.PutUint16(buf[64:66], uint16(len(hdr.Workload)))
	copy(buf[66:], hdr.Workload)

	if _, err := w.Write(buf); err != nil {
		return nil, fmt.Errorf("trace: writing v2 header: %w", err)
	}
	at, _ := w.(io.WriterAt)
	return &V2Writer{
		w:            w,
		at:           at,
		hdr:          hdr,
		blockRecords: blockRecords,
		pending:      make([]Record, 0, blockRecords),
		off:          uint64(len(buf)),
	}, nil
}

// Write appends one record.
func (tw *V2Writer) Write(r Record) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		return fmt.Errorf("trace: write after Close")
	}
	tw.pending = append(tw.pending, r)
	tw.count++
	if len(tw.pending) >= tw.blockRecords {
		return tw.flushBlock()
	}
	return nil
}

// WriteBatch appends a batch of records.
func (tw *V2Writer) WriteBatch(recs []Record) error {
	for len(recs) > 0 {
		if tw.err != nil {
			return tw.err
		}
		if tw.closed {
			return fmt.Errorf("trace: write after Close")
		}
		n := tw.blockRecords - len(tw.pending)
		if n > len(recs) {
			n = len(recs)
		}
		tw.pending = append(tw.pending, recs[:n]...)
		tw.count += uint64(n)
		recs = recs[n:]
		if len(tw.pending) >= tw.blockRecords {
			if err := tw.flushBlock(); err != nil {
				return err
			}
		}
	}
	return tw.err
}

// Count returns the number of records written so far.
func (tw *V2Writer) Count() uint64 { return tw.count }

// flushBlock encodes and writes the pending block.
func (tw *V2Writer) flushBlock() error {
	if len(tw.pending) == 0 {
		return nil
	}
	tw.colSeq, tw.colPC, tw.colAddr = tw.colSeq[:0], tw.colPC[:0], tw.colAddr[:0]
	var prevSeq uint64
	var prevPC, prevAddr [256]uint64
	for i := range tw.pending {
		r := &tw.pending[i]
		tw.colSeq = binary.AppendUvarint(tw.colSeq, zigzag(int64(r.Seq-prevSeq)))
		tw.colPC = binary.AppendUvarint(tw.colPC, zigzag(int64(r.PC-prevPC[r.CPU])))
		tw.colAddr = binary.AppendUvarint(tw.colAddr, zigzag(int64(uint64(r.Addr)-prevAddr[r.CPU])))
		prevSeq, prevPC[r.CPU], prevAddr[r.CPU] = r.Seq, r.PC, uint64(r.Addr)
	}
	count := len(tw.pending)
	bitmapLen := (count + 7) / 8
	total := v2BlockHeader + len(tw.colSeq) + len(tw.colPC) + len(tw.colAddr) + count + bitmapLen
	if cap(tw.enc) < total {
		tw.enc = make([]byte, total)
	}
	b := tw.enc[:total]
	binary.LittleEndian.PutUint32(b[0:4], uint32(count))
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(tw.colSeq)))
	binary.LittleEndian.PutUint32(b[8:12], uint32(len(tw.colPC)))
	binary.LittleEndian.PutUint32(b[12:16], uint32(len(tw.colAddr)))
	p := v2BlockHeader
	p += copy(b[p:], tw.colSeq)
	p += copy(b[p:], tw.colPC)
	p += copy(b[p:], tw.colAddr)
	for i := range tw.pending {
		b[p+i] = tw.pending[i].CPU
	}
	p += count
	bitmap := b[p : p+bitmapLen]
	for i := range bitmap {
		bitmap[i] = 0
	}
	for i := range tw.pending {
		if tw.pending[i].Kind == Write {
			bitmap[i>>3] |= 1 << (uint(i) & 7)
		}
	}

	if _, err := tw.w.Write(b); err != nil {
		tw.err = fmt.Errorf("trace: writing v2 block: %w", err)
		return tw.err
	}
	var ent [v2IndexEntry]byte
	binary.LittleEndian.PutUint64(ent[0:8], tw.off)
	binary.LittleEndian.PutUint32(ent[8:12], uint32(count))
	tw.index = append(tw.index, ent[:]...)
	tw.blocks++
	tw.off += uint64(total)
	tw.pending = tw.pending[:0]
	return nil
}

// Close flushes the final block and writes the index and tail. It does
// not close the underlying writer.
func (tw *V2Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	if tw.err != nil {
		tw.closed = true
		return tw.err
	}
	if err := tw.flushBlock(); err != nil {
		tw.closed = true
		return err
	}
	indexOff := tw.off
	if len(tw.index) > 0 {
		if _, err := tw.w.Write(tw.index); err != nil {
			tw.err = fmt.Errorf("trace: writing v2 index: %w", err)
			tw.closed = true
			return tw.err
		}
	}
	var tail [v2TailSize]byte
	binary.LittleEndian.PutUint64(tail[0:8], indexOff)
	binary.LittleEndian.PutUint32(tail[8:12], tw.blocks)
	binary.LittleEndian.PutUint64(tail[12:20], tw.count)
	binary.LittleEndian.PutUint32(tail[20:24], crc32.ChecksumIEEE(tw.index))
	copy(tail[28:32], v2TailMagic)
	if _, err := tw.w.Write(tail[:]); err != nil {
		tw.err = fmt.Errorf("trace: writing v2 tail: %w", err)
		tw.closed = true
		return tw.err
	}
	if tw.at != nil {
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], tw.count)
		if _, err := tw.at.WriteAt(cnt[:], 24); err != nil {
			tw.err = fmt.Errorf("trace: patching v2 header record count: %w", err)
			tw.closed = true
			return tw.err
		}
	}
	tw.closed = true
	return nil
}

// ---- v2 metadata (header + index) ----

// v2meta is the parsed header and block index of one v2 file.
type v2meta struct {
	hdr        Header
	blockOff   []uint64
	blockLen   []uint64
	blockCount []uint32
	cumStart   []uint64 // starting record index of each block
	maxCount   int
	size       int64
}

// readAt fills buf from ra, mapping a short read to io.ErrUnexpectedEOF.
func readAt(ra io.ReaderAt, buf []byte, off int64) error {
	n, err := ra.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// parseV2 validates and loads the header and index of a v2 file.
func parseV2(ra io.ReaderAt, size int64) (*v2meta, error) {
	if size < v2HeaderMin+v2TailSize {
		return nil, fmt.Errorf("trace: v2 file of %d bytes: %w", size, io.ErrUnexpectedEOF)
	}
	fixed := make([]byte, v2HeaderMin)
	if err := readAt(ra, fixed, 0); err != nil {
		return nil, fmt.Errorf("trace: reading v2 header: %w", err)
	}
	if string(fixed[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, fixed[0:4])
	}
	if v := binary.LittleEndian.Uint16(fixed[4:6]); v != Version2 {
		return nil, fmt.Errorf("%w: version %d is not v2", ErrBadFormat, v)
	}
	headerLen := int64(binary.LittleEndian.Uint16(fixed[6:8]))
	nameLen := int64(binary.LittleEndian.Uint16(fixed[64:66]))
	if headerLen != v2HeaderMin+nameLen || headerLen+v2TailSize > size {
		return nil, fmt.Errorf("%w: header length %d inconsistent (name %d bytes, file %d bytes)",
			ErrBadFormat, headerLen, nameLen, size)
	}

	m := &v2meta{size: size}
	m.hdr.CPUs = int(binary.LittleEndian.Uint32(fixed[8:12]))
	bs := int(binary.LittleEndian.Uint32(fixed[12:16]))
	rs := int(binary.LittleEndian.Uint32(fixed[16:20]))
	if bs != 0 || rs != 0 {
		geo, err := mem.NewGeometry(bs, rs)
		if err != nil {
			return nil, fmt.Errorf("%w: header geometry %dB/%dB: %v", ErrBadFormat, bs, rs, err)
		}
		m.hdr.Geometry = geo
	}
	headerRecords := binary.LittleEndian.Uint64(fixed[24:32])
	var zero [32]byte
	if hash := fixed[32:64]; string(hash) != string(zero[:]) {
		m.hdr.WorkloadHash = hex.EncodeToString(hash)
	}
	if nameLen > 0 {
		name := make([]byte, nameLen)
		if err := readAt(ra, name, v2HeaderMin); err != nil {
			return nil, fmt.Errorf("trace: reading v2 workload name: %w", err)
		}
		m.hdr.Workload = string(name)
	}

	tail := make([]byte, v2TailSize)
	if err := readAt(ra, tail, size-v2TailSize); err != nil {
		return nil, fmt.Errorf("trace: reading v2 tail: %w", err)
	}
	if string(tail[28:32]) != v2TailMagic {
		return nil, fmt.Errorf("%w: bad tail magic %q (truncated file?)", ErrBadFormat, tail[28:32])
	}
	indexOff := binary.LittleEndian.Uint64(tail[0:8])
	blocks := binary.LittleEndian.Uint32(tail[8:12])
	records := binary.LittleEndian.Uint64(tail[12:20])
	indexCRC := binary.LittleEndian.Uint32(tail[20:24])
	if indexOff < uint64(headerLen) || indexOff > uint64(size-v2TailSize) ||
		indexOff+uint64(blocks)*v2IndexEntry+v2TailSize != uint64(size) {
		return nil, fmt.Errorf("%w: index at %d with %d blocks does not fit %d-byte file",
			ErrBadFormat, indexOff, blocks, size)
	}
	if headerRecords != 0 && headerRecords != records {
		return nil, fmt.Errorf("%w: header records %d != tail records %d", ErrBadFormat, headerRecords, records)
	}

	index := make([]byte, int(blocks)*v2IndexEntry)
	if err := readAt(ra, index, int64(indexOff)); err != nil {
		return nil, fmt.Errorf("trace: reading v2 index: %w", err)
	}
	if crc32.ChecksumIEEE(index) != indexCRC {
		return nil, fmt.Errorf("%w: index CRC mismatch", ErrBadFormat)
	}

	m.blockOff = make([]uint64, blocks)
	m.blockLen = make([]uint64, blocks)
	m.blockCount = make([]uint32, blocks)
	m.cumStart = make([]uint64, blocks)
	var sum uint64
	prevEnd := uint64(headerLen)
	for i := 0; i < int(blocks); i++ {
		off := binary.LittleEndian.Uint64(index[i*v2IndexEntry:])
		count := binary.LittleEndian.Uint32(index[i*v2IndexEntry+8:])
		if off != prevEnd {
			return nil, fmt.Errorf("%w: block %d at offset %d, want %d", ErrBadFormat, i, off, prevEnd)
		}
		end := indexOff
		if i+1 < int(blocks) {
			end = binary.LittleEndian.Uint64(index[(i+1)*v2IndexEntry:])
		}
		if end < off+v2BlockHeader || end > indexOff {
			return nil, fmt.Errorf("%w: block %d spans [%d,%d)", ErrBadFormat, i, off, end)
		}
		if count == 0 || count > maxV2BlockRecords || uint64(count) > end-off {
			return nil, fmt.Errorf("%w: block %d claims %d records in %d bytes", ErrBadFormat, i, count, end-off)
		}
		m.blockOff[i] = off
		m.blockLen[i] = end - off
		m.blockCount[i] = count
		m.cumStart[i] = sum
		sum += uint64(count)
		if int(count) > m.maxCount {
			m.maxCount = int(count)
		}
		prevEnd = end
	}
	if blocks > 0 && prevEnd != indexOff {
		return nil, fmt.Errorf("%w: blocks end at %d, index at %d", ErrBadFormat, prevEnd, indexOff)
	}
	if blocks == 0 && indexOff != uint64(headerLen) {
		return nil, fmt.Errorf("%w: empty file with %d stray bytes", ErrBadFormat, indexOff-uint64(headerLen))
	}
	if sum != records {
		return nil, fmt.Errorf("%w: block counts sum to %d, tail says %d", ErrBadFormat, sum, records)
	}
	m.hdr.Records = records
	m.hdr.Blocks = int(blocks)
	return m, nil
}

// decodeV2Block decodes one block's bytes into dst (cap(dst) must cover
// the block's record count, which the caller takes from the index).
func decodeV2Block(b []byte, want uint32, dst []Record) ([]Record, error) {
	if len(b) < v2BlockHeader {
		return nil, fmt.Errorf("%w: %d-byte block", ErrBadFormat, len(b))
	}
	count := binary.LittleEndian.Uint32(b[0:4])
	lenSeq := int(binary.LittleEndian.Uint32(b[4:8]))
	lenPC := int(binary.LittleEndian.Uint32(b[8:12]))
	lenAddr := int(binary.LittleEndian.Uint32(b[12:16]))
	if count != want {
		return nil, fmt.Errorf("%w: block holds %d records, index says %d", ErrBadFormat, count, want)
	}
	n := int(count)
	bitmapLen := (n + 7) / 8
	if lenSeq < 0 || lenPC < 0 || lenAddr < 0 ||
		v2BlockHeader+lenSeq+lenPC+lenAddr+n+bitmapLen != len(b) {
		return nil, fmt.Errorf("%w: block column lengths %d+%d+%d+%d+%d != %d bytes",
			ErrBadFormat, lenSeq, lenPC, lenAddr, n, bitmapLen, len(b))
	}
	p := v2BlockHeader
	colSeq := b[p : p+lenSeq]
	p += lenSeq
	colPC := b[p : p+lenPC]
	p += lenPC
	colAddr := b[p : p+lenAddr]
	p += lenAddr
	cpus := b[p : p+n]
	bitmap := b[p+n:]

	dst = dst[:n]
	var seq uint64
	var prevPC, prevAddr [256]uint64
	var offSeq, offPC, offAddr int
	// Each column decode inlines the single-byte case ahead of the
	// general varint decoder: generator traces are dominated by one-byte
	// deltas (seq strides, repeated PCs), and the hot replay loop is
	// what makes the disk tier worth having.
	for i := 0; i < n; i++ {
		var u uint64
		if offSeq < len(colSeq) && colSeq[offSeq] < 0x80 {
			u = uint64(colSeq[offSeq])
			offSeq++
		} else {
			var k int
			if u, k = binary.Uvarint(colSeq[offSeq:]); k <= 0 {
				return nil, fmt.Errorf("%w: seq column truncated at record %d", ErrBadFormat, i)
			}
			offSeq += k
		}
		seq += uint64(unzigzag(u))
		cpu := cpus[i]

		if offPC+1 < len(colPC) && colPC[offPC+1] < 0x80 {
			// One- and two-byte deltas cover almost every same-CPU PC
			// step; decode them without the general varint loop.
			if b := colPC[offPC]; b < 0x80 {
				u = uint64(b)
				offPC++
			} else {
				u = uint64(b&0x7f) | uint64(colPC[offPC+1])<<7
				offPC += 2
			}
		} else {
			var k int
			if u, k = binary.Uvarint(colPC[offPC:]); k <= 0 {
				return nil, fmt.Errorf("%w: pc column truncated at record %d", ErrBadFormat, i)
			}
			offPC += k
		}
		pc := prevPC[cpu] + uint64(unzigzag(u))
		prevPC[cpu] = pc

		if offAddr+1 < len(colAddr) && colAddr[offAddr+1] < 0x80 {
			if b := colAddr[offAddr]; b < 0x80 {
				u = uint64(b)
				offAddr++
			} else {
				u = uint64(b&0x7f) | uint64(colAddr[offAddr+1])<<7
				offAddr += 2
			}
		} else {
			var k int
			if u, k = binary.Uvarint(colAddr[offAddr:]); k <= 0 {
				return nil, fmt.Errorf("%w: addr column truncated at record %d", ErrBadFormat, i)
			}
			offAddr += k
		}
		addr := prevAddr[cpu] + uint64(unzigzag(u))
		prevAddr[cpu] = addr

		kind := Read
		if bitmap[i>>3]&(1<<(uint(i)&7)) != 0 {
			kind = Write
		}
		dst[i] = Record{Seq: seq, PC: pc, Addr: mem.Addr(addr), CPU: cpu, Kind: kind}
	}
	if offSeq != lenSeq || offPC != lenPC || offAddr != lenAddr {
		return nil, fmt.Errorf("%w: block columns carry trailing bytes", ErrBadFormat)
	}
	return dst, nil
}

// ---- v2 cursor (shared by V2Reader and MappedSource) ----

// v2cursor iterates a v2 file's records, decoding one block at a time
// into a reused buffer. blockBytes returns the raw bytes of block i —
// a direct subslice for mapped files, a reused read buffer otherwise —
// valid until the next call.
type v2cursor struct {
	meta       *v2meta
	blockBytes func(i int) ([]byte, error)

	buf   []Record // decoded current block
	pos   int      // next record within buf
	block int      // next block to decode
	err   error
}

func (c *v2cursor) init(meta *v2meta, blockBytes func(i int) ([]byte, error)) {
	c.meta = meta
	c.blockBytes = blockBytes
	c.buf = make([]Record, 0, meta.maxCount)
}

// advance decodes the next block into buf; it reports false at EOF or on
// error (latched in c.err).
func (c *v2cursor) advance() bool {
	if c.err != nil || c.block >= len(c.meta.blockOff) {
		return false
	}
	raw, err := c.blockBytes(c.block)
	if err != nil {
		c.err = fmt.Errorf("trace: reading v2 block %d: %w", c.block, err)
		return false
	}
	buf, err := decodeV2Block(raw, c.meta.blockCount[c.block], c.buf[:0])
	if err != nil {
		c.err = fmt.Errorf("trace: decoding v2 block %d: %w", c.block, err)
		return false
	}
	c.buf = buf
	c.pos = 0
	c.block++
	return true
}

// Next implements Source.
func (c *v2cursor) Next() (Record, bool) {
	if c.pos >= len(c.buf) && !c.advance() {
		return Record{}, false
	}
	r := c.buf[c.pos]
	c.pos++
	return r, true
}

// NextBatch implements BatchSource.
func (c *v2cursor) NextBatch(dst []Record) int {
	total := 0
	for total < len(dst) {
		if c.pos >= len(c.buf) && !c.advance() {
			break
		}
		n := copy(dst[total:], c.buf[c.pos:])
		c.pos += n
		total += n
	}
	return total
}

// NextView implements ViewSource: the returned records alias the cursor's
// decode buffer and stay valid until the next call on the cursor.
func (c *v2cursor) NextView(max int) []Record {
	if c.pos >= len(c.buf) && !c.advance() {
		return nil
	}
	rest := c.buf[c.pos:]
	if len(rest) > max {
		rest = rest[:max]
	}
	c.pos += len(rest)
	return rest
}

// Seek positions the cursor at record index rec (clamped to the end of
// the trace), clearing any latched error. Seeking costs one binary
// search plus one block decode.
func (c *v2cursor) Seek(rec uint64) error {
	c.err = nil
	if rec >= c.meta.hdr.Records {
		c.block = len(c.meta.blockOff)
		c.buf = c.buf[:0]
		c.pos = 0
		return nil
	}
	// First block whose records start after rec, minus one.
	i := sort.Search(len(c.meta.cumStart), func(i int) bool { return c.meta.cumStart[i] > rec }) - 1
	c.block = i
	if !c.advance() {
		return c.err
	}
	c.pos = int(rec - c.meta.cumStart[i])
	return nil
}

// Err returns the first decoding error encountered, or nil.
func (c *v2cursor) Err() error { return c.err }

// Records returns the total record count.
func (c *v2cursor) Records() uint64 { return c.meta.hdr.Records }

// Header returns the file's self-describing header.
func (c *v2cursor) Header() Header { return c.meta.hdr }

// V2Reader is an index-aware streaming reader over any io.ReaderAt. It
// implements Source, BatchSource and ViewSource, and seeks in O(1) block
// decodes. For files on disk, prefer OpenFile/MappedSource, which serve
// block bytes straight from the mapping.
type V2Reader struct {
	v2cursor
	ra  io.ReaderAt
	raw []byte // reused block read buffer
}

// NewV2Reader parses the header and index of the v2 stream held by ra.
func NewV2Reader(ra io.ReaderAt, size int64) (*V2Reader, error) {
	meta, err := parseV2(ra, size)
	if err != nil {
		return nil, err
	}
	r := &V2Reader{ra: ra}
	r.init(meta, func(i int) ([]byte, error) {
		n := int(meta.blockLen[i])
		if cap(r.raw) < n {
			r.raw = make([]byte, n)
		}
		raw := r.raw[:n]
		if err := readAt(ra, raw, int64(meta.blockOff[i])); err != nil {
			return nil, err
		}
		return raw, nil
	})
	return r, nil
}
