package server

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/store"
)

// serverMetrics is every smsd instrument, registered on one obs
// registry rendered by /metrics. Counters the daemon owns are real
// obs.Counters; state owned elsewhere (engine accessors, store.Stats,
// queue depth) is bridged with scrape-time callbacks, so the legacy
// series names keep reporting without a second bookkeeping path.
type serverMetrics struct {
	reg *obs.Registry

	requests      *obs.Counter
	poolExecuted  *obs.Counter
	deduped       *obs.Counter
	rejected      *obs.Counter
	failures      *obs.Counter
	jobsCreated   *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsCancelled *obs.Counter

	queueWait     *obs.Histogram
	jobDuration   *obs.HistogramVec // by job kind
	runDuration   *obs.Histogram
	runRecRate    *obs.Histogram    // records per second per finished run
	phaseSeconds  *obs.HistogramVec // by sampled-run phase
	subscribers   *obs.Gauge
	eventsSent    *obs.Counter
	eventsDropped *obs.Counter
}

// newMetrics wires the registry against a fully-constructed Server.
// reg lets the daemon share one registry with other subsystems (the
// cluster coordinator); nil gets a private one.
func newMetrics(s *Server, reg *obs.Registry) *serverMetrics {
	r := reg
	if r == nil {
		r = obs.NewRegistry()
	}
	m := &serverMetrics{reg: r}

	r.GaugeFunc("smsd_up", "Whether the daemon is serving.", func() float64 { return 1 })
	r.GaugeFunc("smsd_workers", "Worker pool size.", func() float64 { return float64(s.workers) })
	r.GaugeFunc("smsd_queue_depth", "Jobs waiting in the pool queue.", func() float64 { return float64(len(s.jobsCh)) })
	r.GaugeFunc("smsd_jobs_active", "Jobs currently running.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.active)
	})
	r.GaugeFunc("smsd_jobs_pending", "Jobs queued but not yet started.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.pending)
	})

	m.requests = r.Counter("smsd_requests_total", "HTTP requests received.")
	m.poolExecuted = r.Counter("smsd_pool_tasks_executed_total", "Tasks executed by the worker pool.")
	m.jobsCreated = r.Counter("smsd_jobs_created_total", "Jobs accepted (created or settled from cache).")
	m.jobsDone = r.Counter("smsd_jobs_completed_total", "Jobs that finished successfully.")
	m.jobsFailed = r.Counter("smsd_jobs_failed_total", "Jobs that failed.")
	m.jobsCancelled = r.Counter("smsd_jobs_cancelled_total", "Jobs cancelled before or during execution.")
	m.deduped = r.Counter("smsd_jobs_deduplicated_total", "Requests joined onto an in-flight job.")
	m.rejected = r.Counter("smsd_jobs_rejected_total", "Tasks shed because the queue was full.")
	m.failures = r.Counter("smsd_request_failures_total", "Requests answered with a 5xx error.")

	eng := s.session.Engine()
	r.CounterFunc("smsd_simulations_total", "Simulations actually executed (cache hits excluded).", s.session.Simulations)
	r.CounterFunc("smsd_engine_store_hits_total", "Runs served from the persistent store.", eng.StoreHits)
	r.CounterFunc("smsd_engine_memo_hits_total", "Runs served from or coalesced into the in-memory memo.", eng.MemoHits)
	r.CounterFunc("smsd_engine_cancelled_runs_total", "Started simulations cancelled mid-run.", eng.CancelledRuns)
	r.CounterFunc("smsd_engine_trace_generations_total", "Workload generator executions.", eng.TraceGenerations)
	r.CounterFunc("smsd_trace_tier_hits_total", "Runs replayed from an mmap'd trace artifact.", eng.TraceTierHits)
	r.CounterFunc("smsd_trace_tier_misses_total", "Disk trace-tier probes that found no artifact.", eng.TraceTierMisses)
	pipeStalls := r.CounterVec("smsd_sim_pipeline_stalls_total", "Run pipeline stalls: stage=decode waited on the simulator (simulation-bound); stage=sim waited on decode (decode-bound).", "stage")
	pipeStalls.Func(eng.PipelineDecodeStalls, "decode")
	pipeStalls.Func(eng.PipelineSimStalls, "sim")
	r.CounterFunc("smsd_sim_pipeline_conflict_replays_total", "Runs that asked for parallel lanes but replayed serially because the configuration's effects cross lanes.", eng.PipelineConflictReplays)
	r.GaugeFunc("smsd_sim_pipeline_lane_occupancy", "Last lane-parallel run's lane balance in percent (100 = perfectly even).", func() float64 { return float64(eng.PipelineLaneOccupancy()) })

	// Store series render as 0 when no store is attached; previously they
	// were omitted entirely, which real scrapers treat as a series reset.
	storeStat := func(pick func(st store.Stats) uint64) func() uint64 {
		return func() uint64 {
			st := s.session.Store()
			if st == nil {
				return 0
			}
			return pick(st.Stats())
		}
	}
	r.CounterFunc("smsd_store_hits_total", "Store object hits.", storeStat(func(st store.Stats) uint64 { return st.Hits }))
	r.CounterFunc("smsd_store_misses_total", "Store object misses.", storeStat(func(st store.Stats) uint64 { return st.Misses }))
	r.CounterFunc("smsd_store_mem_hits_total", "Store hits served from the LRU front.", storeStat(func(st store.Stats) uint64 { return st.MemHits }))
	r.CounterFunc("smsd_store_disk_hits_total", "Store hits served from disk.", storeStat(func(st store.Stats) uint64 { return st.DiskHits }))
	r.CounterFunc("smsd_store_writes_total", "Objects written to the store.", storeStat(func(st store.Stats) uint64 { return st.Writes }))
	r.CounterFunc("smsd_store_corrupt_total", "Corrupt store objects treated as misses.", storeStat(func(st store.Stats) uint64 { return st.Corrupt }))
	r.CounterFunc("smsd_store_corrupt_quarantined_total", "Corrupt store objects moved to the quarantine directory.", storeStat(func(st store.Stats) uint64 { return st.Quarantined }))
	r.CounterFunc("smsd_store_bytes_read_total", "Bytes read from store objects on disk.", storeStat(func(st store.Stats) uint64 { return st.BytesRead }))
	r.CounterFunc("smsd_store_bytes_written_total", "Bytes written to store objects on disk.", storeStat(func(st store.Stats) uint64 { return st.BytesWritten }))
	r.CounterFunc("smsd_trace_tier_artifact_hits_total", "Trace-tier artifact opens that found a file.", storeStat(func(st store.Stats) uint64 { return st.TraceHits }))
	r.CounterFunc("smsd_trace_tier_artifact_misses_total", "Trace-tier artifact opens that found nothing.", storeStat(func(st store.Stats) uint64 { return st.TraceMisses }))
	r.CounterFunc("smsd_trace_tier_writes_total", "Trace artifacts written to the tier.", storeStat(func(st store.Stats) uint64 { return st.TraceWrites }))
	r.CounterFunc("smsd_trace_tier_bytes_read_total", "Bytes read from trace artifacts.", storeStat(func(st store.Stats) uint64 { return st.TraceBytesRead }))
	r.CounterFunc("smsd_trace_tier_bytes_written_total", "Bytes written to trace artifacts.", storeStat(func(st store.Stats) uint64 { return st.TraceBytesWritten }))

	// Sub-second through multi-hour: jobs range from cached probes to
	// multi-figure grids over hundred-million-record traces.
	durBuckets := obs.ExpBuckets(0.001, 4, 12)
	m.queueWait = r.Histogram("smsd_job_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.", durBuckets)
	m.jobDuration = r.HistogramVec("smsd_job_duration_seconds", "Job wall time from creation to settlement.", durBuckets, "kind")
	m.runDuration = r.Histogram("smsd_run_duration_seconds", "Wall time of individual simulation runs.", durBuckets)
	m.runRecRate = r.Histogram("smsd_run_records_per_second", "Simulated trace records per second per finished run.", obs.ExpBuckets(10_000, 4, 12))
	m.phaseSeconds = r.HistogramVec("smsd_run_phase_seconds", "Wall time per run phase (gap/warm/window/trace-generate/...).", durBuckets, "phase")

	// Journal/recovery series render as 0 when journaling is off (the
	// accessors are nil-safe), mirroring the no-store convention above.
	r.GaugeFunc("smsd_journal_enabled", "Whether the durable job journal is on.", func() float64 {
		if s.journal != nil {
			return 1
		}
		return 0
	})
	r.CounterFunc("smsd_journal_appends_total", "Records appended to the job journal.", s.journal.appendCount)
	r.CounterFunc("smsd_journal_fsyncs_total", "Journal fsync calls.", s.journal.fsyncCount)
	r.CounterFunc("smsd_journal_bytes_total", "Bytes written to the job journal.", s.journal.byteCount)
	r.CounterFunc("smsd_journal_compactions_total", "Journal compaction rewrites.", s.journal.compactionCount)
	r.CounterFunc("smsd_journal_torn_records_total", "Torn journal tails truncated during replay.", s.journal.tornCount)
	r.CounterFunc("smsd_recovery_jobs_requeued_total", "Live jobs requeued from the journal on startup.", s.recRequeued.Load)
	r.CounterFunc("smsd_recovery_jobs_restored_total", "Settled jobs restored from the journal on startup.", s.recRestored.Load)
	r.CounterFunc("smsd_fault_injections_total", "Faults injected by the deterministic fault plan.", s.fault.Injections)

	m.subscribers = r.Gauge("smsd_job_event_subscribers", "Live /v1/jobs/{id}/events streams.")
	m.eventsSent = r.Counter("smsd_job_events_sent_total", "Events delivered to job event streams.")
	m.eventsDropped = r.Counter("smsd_job_events_dropped_total", "Events dropped from slow job event streams.")
	return m
}

// handleMetrics renders the registry as Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}
