package mem

// HashKey mixes a table key — a block number or region tag — for
// open-addressed probing (Fibonacci hashing with a fold). It is the one
// hash shared by the simulator's open-addressed tables (the coherence
// directory, the generation trackers, the AGT tag indexes), so dense
// sequential key ranges produced by streaming workloads spread the same
// way everywhere and a change to the mixing is made exactly once.
func HashKey(k uint64) uint64 {
	h := k * 0x9e3779b97f4a7c15
	return h ^ h>>29
}
