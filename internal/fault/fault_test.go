package fault

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var i *Injector
	if err := i.Point("store.results.write"); err != nil {
		t.Fatalf("nil Point: %v", err)
	}
	if keep, err := i.Partial("store.results.write", 100); keep != 100 || err != nil {
		t.Fatalf("nil Partial = (%d, %v)", keep, err)
	}
	if i.Crashed() || i.CrashSite() != "" || i.Injections() != 0 {
		t.Fatal("nil injector reports state")
	}
	i.OnCrash(func(string) {}) // must not panic
}

func TestNilInjectorAllocs(t *testing.T) {
	var i *Injector
	allocs := testing.AllocsPerRun(1000, func() {
		if i.Point("x") != nil {
			t.Fatal("injected")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil Point allocates %v per op", allocs)
	}
}

func TestAfterAndTimes(t *testing.T) {
	i := MustNew(Plan{Rules: []Rule{
		{Site: "op", Kind: KindError, After: 2, Times: 2},
	}})
	var got []bool
	for n := 0; n < 6; n++ {
		got = append(got, i.Point("op") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for n := range want {
		if got[n] != want[n] {
			t.Fatalf("op %d: injected=%v, want %v (sequence %v)", n, got[n], want[n], got)
		}
	}
	if i.Injections() != 2 {
		t.Fatalf("injections = %d, want 2", i.Injections())
	}
}

func TestSiteIsolationAndPrefixMatch(t *testing.T) {
	i := MustNew(Plan{Rules: []Rule{
		{Site: "store.results.*", Kind: KindError, Times: 1},
	}})
	if i.Point("store.traces.write") != nil {
		t.Fatal("rule leaked to unmatched site")
	}
	if i.Point("store.results.rename") == nil {
		t.Fatal("prefix rule did not fire")
	}
	if i.Point("store.results.rename") != nil {
		t.Fatal("times=1 fired twice")
	}
}

func TestProbDeterminism(t *testing.T) {
	seq := func(seed int64) []bool {
		i := MustNew(Plan{Seed: seed, Rules: []Rule{
			{Site: "op", Kind: KindError, Prob: 0.5},
		}})
		var out []bool
		for n := 0; n < 64; n++ {
			out = append(out, i.Point("op") != nil)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("same seed diverged at op %d", n)
		}
	}
	c := seq(8)
	same := true
	for n := range a {
		if a[n] != c[n] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-op sequences")
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestCrashStopsEverything(t *testing.T) {
	i := MustNew(Plan{Rules: []Rule{
		{Site: "journal.append.settled", Kind: KindCrash, Times: 1},
	}})
	if i.Point("store.results.write") != nil {
		t.Fatal("pre-crash op failed")
	}
	err := i.Point("journal.append.settled")
	if !errors.Is(err, ErrCrashed) || !errors.Is(err, ErrInjected) {
		t.Fatalf("crash point returned %v", err)
	}
	if !i.Crashed() || i.CrashSite() != "journal.append.settled" {
		t.Fatalf("crashed=%v site=%q", i.Crashed(), i.CrashSite())
	}
	// Dead processes do no I/O: every later site fails.
	if err := i.Point("store.results.write"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op returned %v", err)
	}
	if _, err := i.Partial("store.results.write", 10); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash partial returned %v", err)
	}
}

func TestPartialWriteTearsAndCrashes(t *testing.T) {
	i := MustNew(Plan{Rules: []Rule{
		{Site: "store.results.write", Kind: KindPartial, Frac: 0.5},
	}})
	keep, err := i.Partial("store.results.write", 100)
	if keep != 50 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("Partial = (%d, %v), want (50, ErrCrashed)", keep, err)
	}
	if !i.Crashed() {
		t.Fatal("partial write did not crash the injector")
	}
	// Frac that would keep everything still tears at least one byte.
	j := MustNew(Plan{Rules: []Rule{{Site: "w", Kind: KindPartial, Frac: 0.999}}})
	if keep, _ := j.Partial("w", 3); keep >= 3 {
		t.Fatalf("keep = %d of 3, nothing torn", keep)
	}
}

func TestOnCrashHandler(t *testing.T) {
	i := MustNew(Plan{Rules: []Rule{{Site: "op", Kind: KindCrash}}})
	var gotSite string
	i.OnCrash(func(site string) { gotSite = site })
	if err := i.Point("op"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Point = %v", err)
	}
	if gotSite != "op" {
		t.Fatalf("handler saw site %q", gotSite)
	}
}

func TestLatency(t *testing.T) {
	i := MustNew(Plan{Rules: []Rule{
		{Site: "op", Kind: KindLatency, DelayMS: 30, Times: 1},
	}})
	start := time.Now()
	if err := i.Point("op"); err != nil {
		t.Fatalf("latency rule failed the op: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("op returned after %v, want >= 30ms delay", d)
	}
	if i.Crashed() {
		t.Fatal("latency crashed the injector")
	}
}

func TestLoadSpecs(t *testing.T) {
	if i, err := Load(""); i != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v)", i, err)
	}
	i, err := Load(`{"seed": 3, "rules": [{"site": "op", "kind": "error"}]}`)
	if err != nil || i == nil {
		t.Fatalf("inline JSON: (%v, %v)", i, err)
	}
	if i.Point("op") == nil {
		t.Fatal("loaded rule did not fire")
	}

	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"rules": [{"site": "op", "kind": "crash"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	i, err = Load("@" + path)
	if err != nil {
		t.Fatalf("Load(@file): %v", err)
	}
	if err := i.Point("op"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("file rule: %v", err)
	}

	if _, err := Load(`{"rules": [{"site": "op", "kind": "meteor"}]}`); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Load(`{"rules": [{"kind": "error"}]}`); err == nil {
		t.Fatal("empty site accepted")
	}
	if _, err := Load(`{"typo": true}`); err == nil {
		t.Fatal("unknown field accepted")
	}

	t.Setenv(EnvPlan, `{"rules": [{"site": "env", "kind": "error"}]}`)
	i, err = FromEnv()
	if err != nil || i == nil {
		t.Fatalf("FromEnv: (%v, %v)", i, err)
	}
	t.Setenv(EnvPlan, "")
	if i, err := FromEnv(); i != nil || err != nil {
		t.Fatalf("unset env = (%v, %v)", i, err)
	}
}

func TestContextPlumbing(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context carries an injector")
	}
	i := MustNew(Plan{})
	ctx := With(context.Background(), i)
	if From(ctx) != i {
		t.Fatal("round trip lost the injector")
	}
	if With(context.Background(), nil) != context.Background() {
		t.Fatal("With(nil) wrapped the context")
	}
}
