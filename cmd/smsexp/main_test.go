package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUnknownExperimentExitsNonZeroAndListsKnown(t *testing.T) {
	code, _, stderr := runCLI(t, "fig99")
	if code == 0 {
		t.Fatal("unknown experiment exited zero")
	}
	for _, want := range []string{"unknown experiment", "fig99", "table1", "fig8", "ablate"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestUnknownExperimentRejectedBeforeAnyRuns(t *testing.T) {
	// A bad name anywhere in the list must fail fast — even after valid
	// names — so nothing simulates for a doomed invocation.
	code, stdout, _ := runCLI(t, "-cpus", "1", "-length", "10000", "table1", "nope")
	if code == 0 {
		t.Fatal("bad trailing experiment exited zero")
	}
	if strings.Contains(stdout, "Table 1") {
		t.Error("experiments ran before validation failed")
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit = %d, want 0", code)
	}
	if !strings.Contains(stderr, "usage:") {
		t.Errorf("-h printed no usage:\n%s", stderr)
	}
}

func TestNoArgumentsPrintsUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage:") || !strings.Contains(stderr, "table1") {
		t.Errorf("usage missing:\n%s", stderr)
	}
}

func TestTable1Runs(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-cpus", "1", "-length", "10000", "table1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Table 1") {
		t.Errorf("stdout missing table:\n%s", stdout)
	}
}

func TestStoreFlagPersistsFigures(t *testing.T) {
	dir := t.TempDir()
	code, out1, stderr := runCLI(t, "-store", dir, "-cpus", "1", "-length", "10000", "table1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	// The rendered figure must now exist in the store.
	matches, err := filepath.Glob(filepath.Join(dir, "figures", "*", "*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("stored figures = %v (%v)", matches, err)
	}
	// Second process over the same store: identical output.
	code, out2, _ := runCLI(t, "-store", dir, "-cpus", "1", "-length", "10000", "table1")
	if code != 0 || out2 != out1 {
		t.Errorf("second run: exit %d, output match %v", code, out2 == out1)
	}
}

func TestStoreFlagBadDirectoryFails(t *testing.T) {
	// A file in place of the store directory must fail cleanly.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-store", f, "table1")
	if code != 1 || !strings.Contains(stderr, "smsexp:") {
		t.Errorf("exit = %d, stderr:\n%s", code, stderr)
	}
}
