// Package exp contains one runner per figure/table in the paper's
// evaluation (§4). Each runner declares the grid of simulations its
// figure needs as an engine.Plan — workloads × named configuration
// variants, plus the baseline linkage coverage is computed against — and
// renders the executed Grid into the same rows/series the paper reports,
// so `smsexp fig11` (for example) regenerates the paper's Figure 11 as a
// text table.
//
// The runners share a Session: a thin façade binding Options and an
// optional persistent store to an engine.Engine. The engine deduplicates
// runs across figures (many figures share the same baselines), bounds
// parallelism, memoizes results, and propagates cancellation into the
// simulation loop, so every figure is cancellable and progress-observable
// through engine events.
//
// Runners select prefetchers by registry name (sim.Config.PrefetcherName:
// "sms", "ls", "ghb", ...), so schemes registered via sim.Register — like
// the next-line series in the Fig. 8 runner — plug in without touching
// the simulator.
//
// A Session whose Options carry a sampling configuration runs every
// figure in SMARTS-sampled mode (engine.Sampled transforms each plan;
// sampled cells key separately from exact ones in the store). The
// "sampled" experiment is the mode's validation figure: it runs a small
// grid exact and sampled, checks the confidence intervals against the
// exact values, and reports the wall-clock speedup.
package exp

import (
	"context"
	"runtime"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// Options scope the simulation effort.
type Options struct {
	// CPUs is the simulated processor count.
	CPUs int
	// Seed selects the workload generation seed.
	Seed int64
	// Length is the number of accesses per workload trace (half is
	// warm-up, per the paper's methodology).
	Length uint64
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// RunParallel puts up to this many region-sharded lanes behind each
	// single simulation (0/1 = serial). Pure execution tuning: results
	// and store keys are bit-identical with it on or off, and the
	// engine divides Parallel by it so the two levels share one core
	// budget. See sim.Exec.
	RunParallel int
	// DecodeAhead decodes each run's trace this many batches ahead of
	// the simulator on a pipeline goroutine (0 = inline decode).
	DecodeAhead int
	// Sampling, when enabled, runs every standard plan cell in
	// SMARTS-style sampled mode (engine.Sampled): detailed measurement
	// windows with confidence intervals instead of every-record
	// simulation. Timing cells (WindowInstructions) and custom cells
	// stay exact. The zero value keeps the exact mode.
	Sampling sim.SamplingConfig
}

// DefaultOptions runs full-length experiments.
func DefaultOptions() Options {
	return Options{CPUs: 4, Seed: 1, Length: 1_200_000}
}

// QuickOptions runs abbreviated experiments (benches, smoke tests).
func QuickOptions() Options {
	return Options{CPUs: 2, Seed: 1, Length: 200_000}
}

// CLIOptions resolves the standard CLI flag set shared by smsexp and
// smsd: -quick overrides -cpus/-length but keeps the seed and
// parallelism the caller asked for.
func CLIOptions(cpus int, seed int64, length uint64, parallel int, quick bool) Options {
	if quick {
		q := QuickOptions()
		q.Seed = seed
		q.Parallel = parallel
		return q
	}
	return Options{CPUs: cpus, Seed: seed, Length: length, Parallel: parallel}
}

// AttachStore opens the store at dir and attaches it to the session; an
// empty dir is a no-op. It is the one place the CLIs wire -store.
func AttachStore(s *Session, dir string) error {
	if dir == "" {
		return nil
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	s.SetStore(st)
	return nil
}

func (o Options) normalized() Options {
	if o.CPUs <= 0 {
		o.CPUs = 4
	}
	if o.Length == 0 {
		o.Length = DefaultOptions().Length
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	o.Sampling = o.Sampling.Canonical()
	return o
}

// MemorySystem returns the scaled memory system used by all experiments
// (see DESIGN.md: capacity ratios compressed from the paper's Table 1),
// with a configurable block size for the Fig. 4 sweep.
func (o Options) MemorySystem(blockSize int) coherence.Config {
	return coherence.Config{
		CPUs: o.CPUs,
		L1:   cache.Config{Size: 32 << 10, Assoc: 2, BlockSize: blockSize},
		L2:   cache.Config{Size: 1 << 20, Assoc: 8, BlockSize: blockSize},
	}
}

// BaselineConfig is the standard no-prefetcher configuration every
// figure normalizes against.
func (o Options) BaselineConfig() sim.Config {
	return sim.Config{Coherence: o.MemorySystem(64)}
}

// engineConfig derives the engine configuration the session binds.
func (o Options) engineConfig(st *store.Store) engine.Config {
	return engine.Config{
		Workload:    workload.Config{CPUs: o.CPUs, Seed: o.Seed, Length: o.Length},
		Warmup:      o.Length / 2,
		Parallel:    o.Parallel,
		RunParallel: o.RunParallel,
		DecodeAhead: o.DecodeAhead,
		Store:       st,
	}
}

// BaseVariant is the conventional key of the baseline variant in the
// figure plans.
const BaseVariant = "base"

// basePlan starts a figure plan over the full workload suite with the
// baseline variant declared and linked.
func basePlan(name string, o Options) engine.Plan {
	return engine.Plan{
		Name:      name,
		Workloads: WorkloadNames(),
		Baseline:  BaseVariant,
		Variants:  []engine.Variant{{Key: BaseVariant, Config: o.BaselineConfig()}},
	}
}

// Session binds Options and an optional persistent store to an
// engine.Engine. With a store attached (SetStore), results also persist
// across processes: any run whose full identity — workload, generation
// config, simulator config, prefetcher — matches a stored object is
// served from the store instead of being resimulated.
type Session struct {
	opts Options
	eng  *engine.Engine
}

// NewSession builds a session with the given options.
func NewSession(opts Options) *Session {
	opts = opts.normalized()
	return &Session{opts: opts, eng: engine.New(opts.engineConfig(nil))}
}

// Options returns the session's resolved options.
func (s *Session) Options() Options { return s.opts }

// Engine returns the session's execution engine.
func (s *Session) Engine() *engine.Engine { return s.eng }

// SetStore attaches a persistent result store by rebinding the engine.
// It must be called before the session runs anything.
func (s *Session) SetStore(st *store.Store) {
	s.eng = engine.New(s.opts.engineConfig(st))
}

// Store returns the attached store (nil when none).
func (s *Session) Store() *store.Store { return s.eng.Store() }

// Simulations returns how many actual simulations this session executed
// — cache and store hits excluded, custom cells (the Fig. 8
// decoupled-sectored study) included. It is the "did we really
// resimulate?" probe used by tests and the smsd metrics endpoint.
func (s *Session) Simulations() uint64 {
	return s.eng.Simulations() + s.eng.CustomRuns()
}

// RunKey returns the store address Session.Run uses for (name, cfg),
// including the session's warm-up convention. The smsd daemon keys its
// jobs and responses on this, so it cannot diverge from what the session
// actually persists.
func (s *Session) RunKey(name string, cfg sim.Config) string {
	return s.eng.Key(name, cfg)
}

// CachedRun reports a run already available without simulating — in the
// engine's memoization layer or one store read away. It is the cheap
// probe the smsd daemon uses before committing a worker to a job; a
// probe miss is not counted in the store stats.
func (s *Session) CachedRun(name string, cfg sim.Config) (*sim.Result, bool) {
	return s.eng.Cached(name, cfg)
}

// Run simulates workload name under cfg (warm-up set to half the trace),
// memoized by the engine. Cancellation and engine events flow through
// ctx.
func (s *Session) Run(ctx context.Context, name string, cfg sim.Config) (*sim.Result, error) {
	return s.eng.Run(ctx, name, cfg)
}

// Execute runs a declarative plan through the session's engine. When the
// session's options enable sampling, the plan is transformed with
// engine.Sampled first, so every figure transparently runs sampled under
// `smsexp -sample-window` without the figure runners knowing; runners
// that must mix exact and sampled cells in one grid (the sampled-vs-exact
// validation experiment) bypass the transform via s.Engine().Execute.
func (s *Session) Execute(ctx context.Context, plan engine.Plan) (*engine.Grid, error) {
	return s.eng.Execute(ctx, engine.Sampled(plan, s.opts.Sampling))
}

// GroupNames returns the four paper groups.
func GroupNames() []string { return workload.Groups() }

// WorkloadNames returns all eleven application names in paper order.
func WorkloadNames() []string {
	var out []string
	for _, w := range workload.All() {
		out = append(out, w.Name)
	}
	return out
}

// groupOf returns the paper group of a workload name.
func groupOf(name string) string {
	w, err := workload.ByName(name)
	if err != nil {
		return ""
	}
	return w.Group
}

// meanOver averages value over the members of each group, returning
// group→mean. Missing groups map to 0.
func meanOver(names []string, value func(name string) float64) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, n := range names {
		g := groupOf(n)
		sums[g] += value(n)
		counts[g]++
	}
	out := map[string]float64{}
	for g, s := range sums {
		out[g] = s / float64(counts[g])
	}
	return out
}
