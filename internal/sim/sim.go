// Package sim drives memory-access traces through the coherent cache
// hierarchy with an optional prefetcher attached, and produces the
// miss/coverage/overprediction statistics, density histograms, oracle
// opportunity counts, and per-window samples that the experiment harness
// turns into the paper's figures.
//
// Accounting conventions follow the paper:
//
//   - Coverage and miss rates are computed over *read* misses (§4.1-4.6
//     report read misses; writes still train predictors, drive coherence
//     and fill caches).
//   - Coverage is the fraction of the *baseline* configuration's misses
//     that become prefetch hits; uncovered misses are the variant's
//     remaining demand misses over the same baseline. Cache pollution from
//     overpredictions shows up as extra uncovered misses, exactly as the
//     paper notes for Figure 6.
//   - Overpredictions are streamed blocks evicted or invalidated before
//     first use.
//   - Statistics are collected only after a warm-up prefix of the trace
//     (the paper uses half of each trace for warm-up).
package sim

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ghb"
	"repro/internal/mem"
	"repro/internal/sectored"
	"repro/internal/stride"
	"repro/internal/trace"
)

// PrefetcherKind selects the prefetcher attached to the hierarchy.
type PrefetcherKind int

// Available prefetchers.
const (
	// PrefetchNone is the baseline system.
	PrefetchNone PrefetcherKind = iota
	// PrefetchSMS attaches one SMS engine per CPU, trained on all L1
	// accesses and streaming into L1.
	PrefetchSMS
	// PrefetchLS uses the logical-sectored training structure in place
	// of the AGT (Fig. 8/9 comparison), streaming into L1.
	PrefetchLS
	// PrefetchGHB attaches a PC/DC global history buffer per CPU,
	// trained on L1 misses and prefetching into L2 (§4.6).
	PrefetchGHB
	// PrefetchStride attaches a per-PC stride prefetcher per CPU at L2
	// (extension baseline).
	PrefetchStride
)

// String implements fmt.Stringer.
func (k PrefetcherKind) String() string {
	switch k {
	case PrefetchNone:
		return "base"
	case PrefetchSMS:
		return "SMS"
	case PrefetchLS:
		return "LS"
	case PrefetchGHB:
		return "GHB"
	case PrefetchStride:
		return "stride"
	default:
		return fmt.Sprintf("PrefetcherKind(%d)", int(k))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Coherence describes the memory system (CPUs, L1, L2).
	Coherence coherence.Config
	// Geometry is the spatial region geometry used by SMS/LS and the
	// generation trackers. Zero selects the 64 B / 2 kB default.
	Geometry mem.Geometry
	// Prefetcher selects the attached prefetcher.
	Prefetcher PrefetcherKind
	// SMS configures per-CPU SMS engines (Geometry is overridden by the
	// run's Geometry).
	SMS core.Config
	// LS configures the logical-sectored trainer (Geometry and
	// CacheSize are overridden to match the run).
	LS sectored.Config
	// GHB configures the per-CPU GHB prefetchers.
	GHB ghb.Config
	// Stride configures the per-CPU stride prefetchers.
	Stride stride.Config
	// StreamRate is the number of stream requests issued to the memory
	// system per demand access processed (models finite stream
	// bandwidth; default 4).
	StreamRate int
	// WarmupAccesses is the number of leading accesses excluded from
	// statistics. The convention (paper §4) is half the trace; callers
	// set this explicitly because sources do not expose their length.
	WarmupAccesses uint64
	// TrackGenerations enables the per-level generation trackers that
	// feed the density histograms (Fig. 5) and the oracle opportunity
	// counts (Fig. 4). It costs memory proportional to live regions.
	TrackGenerations bool
	// WindowInstructions, when nonzero, splits the measured trace into
	// fixed instruction windows and records per-window samples for the
	// timing model (Figs. 12/13).
	WindowInstructions uint64
	// OverlapGap is the instruction distance under which consecutive
	// misses are considered overlapped (one MLP group) by the window
	// sampler. 0 selects the default.
	OverlapGap uint64
	// MaxMLP caps the number of misses per overlap group (the MSHR
	// bound on outstanding misses). 0 selects the default.
	MaxMLP uint64
}

// DefaultStreamRate bounds stream issue per processed access.
const DefaultStreamRate = 4

// DefaultOverlapGap is the instruction distance within which two misses
// are treated as overlapped (issued from the same instruction window by
// the out-of-order core). It matches the paper's 256-entry ROB: two
// misses less than a reorder-buffer's worth of instructions apart can be
// outstanding together.
const DefaultOverlapGap = 256

// DefaultMaxMLP caps misses per overlap group, mirroring the paper's
// 32-MSHR L1 shared between demand misses and stream requests.
const DefaultMaxMLP = 16

func (c Config) withDefaults() Config {
	if c.Coherence.CPUs == 0 {
		c.Coherence = coherence.DefaultConfig()
	}
	if c.Geometry == (mem.Geometry{}) {
		c.Geometry = mem.DefaultGeometry()
	}
	if c.StreamRate == 0 {
		c.StreamRate = DefaultStreamRate
	}
	if c.OverlapGap == 0 {
		c.OverlapGap = DefaultOverlapGap
	}
	if c.MaxMLP == 0 {
		c.MaxMLP = DefaultMaxMLP
	}
	return c
}

// Runner executes one simulation.
type Runner struct {
	cfg Config
	sys *coherence.System

	sms    []*core.SMS
	ls     []*sectored.LogicalSectored
	ghbs   []*ghb.GHB
	strids []*stride.Prefetcher

	gensL1 []*genTracker
	gensL2 []*genTracker

	res     Result
	warm    bool
	counted uint64 // accesses processed

	win winState
}

// NewRunner builds a runner for cfg.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	sys, err := coherence.New(cfg.Coherence)
	if err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg, sys: sys}
	ncpu := cfg.Coherence.CPUs

	switch cfg.Prefetcher {
	case PrefetchNone:
	case PrefetchSMS:
		smsCfg := cfg.SMS
		smsCfg.Geometry = cfg.Geometry
		for i := 0; i < ncpu; i++ {
			eng, err := core.New(smsCfg)
			if err != nil {
				return nil, err
			}
			r.sms = append(r.sms, eng)
		}
	case PrefetchLS:
		lsCfg := cfg.LS
		lsCfg.Geometry = cfg.Geometry
		if lsCfg.CacheSize == 0 {
			lsCfg.CacheSize = cfg.Coherence.L1.Size
		}
		for i := 0; i < ncpu; i++ {
			t, err := sectored.NewLogicalSectored(lsCfg)
			if err != nil {
				return nil, err
			}
			r.ls = append(r.ls, t)
		}
	case PrefetchGHB:
		gcfg := cfg.GHB
		gcfg.BlockSize = cfg.Coherence.L1.BlockSize
		for i := 0; i < ncpu; i++ {
			g, err := ghb.New(gcfg)
			if err != nil {
				return nil, err
			}
			r.ghbs = append(r.ghbs, g)
		}
	case PrefetchStride:
		scfg := cfg.Stride
		scfg.BlockSize = cfg.Coherence.L1.BlockSize
		for i := 0; i < ncpu; i++ {
			p, err := stride.New(scfg)
			if err != nil {
				return nil, err
			}
			r.strids = append(r.strids, p)
		}
	default:
		return nil, fmt.Errorf("sim: unknown prefetcher kind %d", int(cfg.Prefetcher))
	}

	if cfg.TrackGenerations {
		for i := 0; i < ncpu; i++ {
			r.gensL1 = append(r.gensL1, newGenTracker(cfg.Geometry))
			r.gensL2 = append(r.gensL2, newGenTracker(cfg.Geometry))
		}
	}
	r.res.DensityL1 = newDensityHistogram()
	r.res.DensityL2 = newDensityHistogram()
	return r, nil
}

// MustNewRunner is NewRunner that panics on error.
func MustNewRunner(cfg Config) *Runner {
	r, err := NewRunner(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the resolved configuration.
func (r *Runner) Config() Config { return r.cfg }

// Run drives the whole trace and returns the accumulated result. The
// returned Result is detached from the Runner, so callers that retain
// results (e.g. the experiment session cache) do not pin the runner's
// simulation state (caches, directory, predictor tables) in memory.
func (r *Runner) Run(src trace.Source) *Result {
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		r.Step(rec)
	}
	r.finish()
	return r.Result()
}

// Result returns a detached copy of the accumulated statistics (for
// Step-based drivers).
func (r *Runner) Result() *Result {
	out := r.res
	return &out
}

// Step processes a single record (exposed for incremental drivers and
// tests).
func (r *Runner) Step(rec trace.Record) {
	r.counted++
	r.warm = r.counted > r.cfg.WarmupAccesses
	cpu := int(rec.CPU)
	write := rec.IsWrite()

	acc := r.sys.Access(cpu, rec.Addr, write)

	if r.warm {
		r.account(rec, acc)
	}
	if r.cfg.WindowInstructions > 0 && r.warm {
		r.windowAccount(rec, acc)
	}
	if r.cfg.TrackGenerations {
		r.trackGenerations(cpu, rec, acc)
	}
	r.notifyPrefetcher(cpu, rec, acc)
	r.issueStreams(cpu)
}

// account updates post-warm-up counters.
func (r *Runner) account(rec trace.Record, acc coherence.AccessResult) {
	res := &r.res
	res.Accesses++
	if rec.IsWrite() {
		res.Writes++
		if acc.Missed(coherence.LevelL1) {
			res.L1WriteMisses++
		}
		if acc.Missed(coherence.LevelL2) {
			res.OffChipWriteMisses++
		}
		r.accountTraffic(acc)
		return
	}
	res.Reads++
	if acc.Missed(coherence.LevelL1) {
		res.L1ReadMisses++
	}
	r.accountTraffic(acc)
	if acc.Missed(coherence.LevelL2) {
		res.OffChipReadMisses++
		if acc.CoherenceMiss {
			res.CoherenceReadMisses++
			if acc.FalseSharing {
				res.FalseSharingReadMisses++
			}
		}
	}
	if acc.L1PrefetchHit {
		res.L1CoveredMisses++
		if acc.L1PrefetchOffChip {
			res.OffChipCoveredMisses++
		}
	}
	if acc.L2PrefetchHit {
		res.OffChipCoveredMisses++
	}
}

// accountTraffic counts off-chip coherence-unit transfers: L2 demand
// fills and dirty L2 writebacks. (Dirty copies destroyed by invalidations
// also write back in a real protocol; they are a small second-order term
// and are not counted.)
func (r *Runner) accountTraffic(acc coherence.AccessResult) {
	if acc.Missed(coherence.LevelL2) {
		r.res.OffChipBlocks++
	}
	for _, ev := range acc.L2Evictions {
		if ev.Dirty {
			r.res.OffChipBlocks++
		}
	}
}

// notifyPrefetcher trains the attached prefetcher and feeds it
// generation-ending events.
func (r *Runner) notifyPrefetcher(cpu int, rec trace.Record, acc coherence.AccessResult) {
	switch r.cfg.Prefetcher {
	case PrefetchSMS:
		eng := r.sms[cpu]
		eng.Access(rec.PC, rec.Addr)
		for _, ev := range acc.L1Evictions {
			eng.BlockRemoved(ev.Addr)
		}
		// Overpredictions are judged at the L2 lifetime: an L1 victim
		// with a surviving L2 copy may still be used from L2.
		r.countL2Overpredictions(acc)
		r.feedInvalidations(acc)
	case PrefetchLS:
		t := r.ls[cpu]
		t.Access(rec.PC, rec.Addr)
		r.countL2Overpredictions(acc)
		r.feedInvalidationsLS(acc)
	case PrefetchGHB:
		if acc.Missed(coherence.LevelL2) || acc.L2PrefetchHit {
			// GHB observes the L2 miss stream (Nesbit & Smith train on
			// L2 misses; the paper applies GHB at L2). First-use hits
			// on prefetched lines also train, so a correctly predicted
			// stream keeps running ahead instead of stalling every
			// `degree` blocks.
			for _, a := range r.ghbs[cpu].Train(rec.PC, rec.Addr) {
				r.stream(cpu, a)
			}
		}
		r.countL2Overpredictions(acc)
	case PrefetchStride:
		if acc.Missed(coherence.LevelL2) || acc.L2PrefetchHit {
			for _, a := range r.strids[cpu].Train(rec.PC, rec.Addr) {
				r.stream(cpu, a)
			}
		}
		r.countL2Overpredictions(acc)
	default:
		// Baseline: still count stray flags (none expected).
	}
}

// feedInvalidations forwards invalidations to the victims' SMS engines:
// an invalidation ends the spatial region generation on the CPU that lost
// the block (§2.1) and destroys streamed-but-unused lines.
func (r *Runner) feedInvalidations(acc coherence.AccessResult) {
	for _, inv := range acc.Invalidations {
		if inv.L1 {
			r.sms[inv.CPU].BlockRemoved(inv.Addr)
		}
	}
}

func (r *Runner) feedInvalidationsLS(acc coherence.AccessResult) {
	for _, inv := range acc.Invalidations {
		if inv.L1 {
			r.ls[inv.CPU].BlockRemoved(inv.Addr)
		}
	}
}

// countL2Overpredictions accounts overpredictions judged at the L2
// lifetime: streamed blocks whose L2 copy (or only copy) died unused.
func (r *Runner) countL2Overpredictions(acc coherence.AccessResult) {
	if !r.warm {
		return
	}
	for _, ev := range acc.L2Evictions {
		if ev.PrefetchedUnused {
			r.res.Overpredictions++
		}
	}
	for _, inv := range acc.Invalidations {
		if inv.PrefetchedUnused {
			r.res.Overpredictions++
		}
	}
}

// issueStreams pulls up to StreamRate requests from the CPU's streaming
// engine and applies them to the memory system.
func (r *Runner) issueStreams(cpu int) {
	switch r.cfg.Prefetcher {
	case PrefetchSMS:
		for _, a := range r.sms[cpu].NextStreamRequests(r.cfg.StreamRate) {
			r.stream(cpu, a)
		}
	case PrefetchLS:
		for _, a := range r.ls[cpu].NextStreamRequests(r.cfg.StreamRate) {
			r.stream(cpu, a)
		}
	}
}

// stream applies one prefetch to the hierarchy: L1 fill for SMS/LS, L2
// fill for the L2 prefetchers.
func (r *Runner) stream(cpu int, a mem.Addr) {
	if r.warm {
		r.res.StreamRequests++
	}
	switch r.cfg.Prefetcher {
	case PrefetchSMS:
		sres := r.sys.Stream(cpu, a)
		for _, ev := range sres.L1Evictions {
			r.sms[cpu].BlockRemoved(ev.Addr)
		}
		r.accountStreamTraffic(sres)
		r.countStreamL2Evictions(sres)
		r.trackStreamEvictions(cpu, sres)
	case PrefetchLS:
		sres := r.sys.Stream(cpu, a)
		r.accountStreamTraffic(sres)
		r.countStreamL2Evictions(sres)
		r.trackStreamEvictions(cpu, sres)
	case PrefetchGHB, PrefetchStride:
		sres := r.sys.L2Stream(cpu, a)
		if r.warm && !sres.AlreadyPresent {
			r.res.OffChipBlocks++
		}
		if r.warm {
			for _, ev := range sres.L2Evictions {
				if ev.Dirty {
					r.res.OffChipBlocks++
				}
			}
		}
	}
}

// accountStreamTraffic counts the off-chip transfers caused by an
// L1-targeted stream fill.
func (r *Runner) accountStreamTraffic(sres coherence.StreamResult) {
	if !r.warm || sres.AlreadyPresent {
		return
	}
	if !sres.L2Hit {
		r.res.OffChipBlocks++
	}
	for _, ev := range sres.L2Evictions {
		if ev.Dirty {
			r.res.OffChipBlocks++
		}
	}
}

// trackStreamEvictions keeps the generation trackers coherent with lines
// displaced by stream fills.
func (r *Runner) trackStreamEvictions(cpu int, sres coherence.StreamResult) {
	if !r.cfg.TrackGenerations {
		return
	}
	for _, ev := range sres.L1Evictions {
		r.gensL1[cpu].remove(ev.Addr, r.warm, r.res.DensityL1, &r.res.OracleGenerationsL1)
	}
	for _, ev := range sres.L2Evictions {
		r.gensL2[cpu].remove(ev.Addr, r.warm, r.res.DensityL2, &r.res.OracleGenerationsL2)
	}
}

func (r *Runner) countStreamL2Evictions(sres coherence.StreamResult) {
	if !r.warm {
		return
	}
	for _, ev := range sres.L2Evictions {
		if ev.PrefetchedUnused {
			r.res.Overpredictions++
		}
	}
}

// trackGenerations updates the density/oracle trackers at both levels.
func (r *Runner) trackGenerations(cpu int, rec trace.Record, acc coherence.AccessResult) {
	g1 := r.gensL1[cpu]
	g1.access(rec.Addr, !acc.L1Hit, r.warm)
	for _, ev := range acc.L1Evictions {
		g1.remove(ev.Addr, r.warm, r.res.DensityL1, &r.res.OracleGenerationsL1)
	}
	g2 := r.gensL2[cpu]
	if !acc.L1Hit {
		g2.access(rec.Addr, acc.Missed(coherence.LevelL2), r.warm)
	}
	for _, ev := range acc.L2Evictions {
		g2.remove(ev.Addr, r.warm, r.res.DensityL2, &r.res.OracleGenerationsL2)
	}
	for _, inv := range acc.Invalidations {
		if inv.L1 {
			r.gensL1[inv.CPU].remove(inv.Addr, r.warm, r.res.DensityL1, &r.res.OracleGenerationsL1)
		}
		if inv.L2 {
			r.gensL2[inv.CPU].remove(inv.Addr, r.warm, r.res.DensityL2, &r.res.OracleGenerationsL2)
		}
	}
}

// finish flushes still-open generations and the trailing window.
func (r *Runner) finish() {
	if r.cfg.TrackGenerations {
		for cpu := range r.gensL1 {
			r.gensL1[cpu].flush(r.res.DensityL1, &r.res.OracleGenerationsL1)
			r.gensL2[cpu].flush(r.res.DensityL2, &r.res.OracleGenerationsL2)
		}
	}
	r.flushWindow()
	r.collectPredictorStats()
}

func (r *Runner) collectPredictorStats() {
	for _, eng := range r.sms {
		st := eng.Stats()
		r.res.SMSStats = append(r.res.SMSStats, st)
	}
	for _, g := range r.ghbs {
		r.res.GHBStats = append(r.res.GHBStats, g.Stats())
	}
	for _, t := range r.ls {
		r.res.LSStats = append(r.res.LSStats, t.Stats())
	}
}
