package exp

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

// WindowInstructions is the sampling window for the timing model.
const WindowInstructions = 20_000

// Timing-model variant keys shared by the Fig. 12/13 and headline plans.
const (
	timedBaseKey = "base-windowed"
	timedSMSKey  = "sms-windowed"
)

// Fig12Row is one workload's speedup.
type Fig12Row struct {
	Workload string
	Speedup  stats.Interval
	// Base and SMS are normalized time breakdowns (base total = 1.0) —
	// the Figure 13 bars.
	Base, SMS timing.Breakdown
}

// Fig12Result is the combined Figure 12/13 dataset: speedups and the
// matching execution-time breakdowns come from the same paired runs.
type Fig12Result struct {
	Rows    []Fig12Row
	GeoMean float64
}

// TimingParamsFor returns the per-group timing parameters: OS time share
// and whether it scales with time (web/DSS I/O servicing, §4.7).
func TimingParamsFor(group string) timing.Params {
	p := timing.DefaultParams()
	switch group {
	case workload.GroupOLTP:
		p.SystemFrac = 0.20
	case workload.GroupDSS:
		p.SystemFrac = 0.12
		p.SystemProportionalToTime = true
	case workload.GroupWeb:
		p.SystemFrac = 0.30
		p.SystemProportionalToTime = true
	case workload.GroupScientific:
		p.SystemFrac = 0.02
	}
	return p
}

// Fig12Plan declares the Figure 12/13 grid: paired windowed runs
// (baseline and practical SMS) feeding the interval timing model.
func Fig12Plan(o Options) engine.Plan {
	baseCfg := sim.Config{
		Coherence:          o.MemorySystem(64),
		WindowInstructions: WindowInstructions,
	}
	smsCfg := baseCfg
	smsCfg.PrefetcherName = "sms"
	return engine.Plan{
		Name:      "fig12",
		Workloads: WorkloadNames(),
		Baseline:  timedBaseKey,
		Variants: []engine.Variant{
			{Key: timedBaseKey, Config: baseCfg},
			{Key: timedSMSKey, Config: smsCfg},
		},
	}
}

// Fig12 reproduces Figures 12 and 13: speedup of SMS over the baseline
// with 95% confidence intervals from paired per-window samples, and the
// normalized execution-time breakdowns.
func Fig12(ctx context.Context, s *Session) (*Fig12Result, error) {
	names := WorkloadNames()
	grid, err := s.Execute(ctx, Fig12Plan(s.Options()))
	if err != nil {
		return nil, err
	}
	rows := make([]Fig12Row, len(names))
	for i, name := range names {
		base := grid.Result(name, timedBaseKey)
		smsRes := grid.Result(name, timedSMSKey)
		model, err := timing.NewModel(TimingParamsFor(groupOf(name)))
		if err != nil {
			return nil, err
		}
		cmp, err := model.Compare(base.Windows, smsRes.Windows)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		norm := 1 / cmp.Base.Total()
		rows[i] = Fig12Row{
			Workload: name,
			Speedup:  cmp.Speedup,
			Base:     cmp.Base.Scale(norm),
			SMS:      cmp.Enhanced.Scale(norm),
		}
	}
	res := &Fig12Result{Rows: rows}
	speeds := make([]float64, len(rows))
	for i, r := range rows {
		speeds[i] = r.Speedup.Mean
	}
	gm, err := stats.GeoMean(speeds)
	if err != nil {
		return nil, err
	}
	res.GeoMean = gm
	return res, nil
}

// Render formats the Figure 12 speedups.
func (r *Fig12Result) Render() string {
	t := NewTable("Figure 12: speedup with 95% confidence intervals",
		"workload", "speedup", "95% CI half-width")
	t.SetCaption(fmt.Sprintf("Geometric mean speedup: %.3f (paper: 1.37, best 4.07 on sparse).", r.GeoMean))
	for _, row := range r.Rows {
		t.AddRow(row.Workload, fmt.Sprintf("%.3f", row.Speedup.Mean), fmt.Sprintf("±%.3f", row.Speedup.Half))
	}
	return t.Render()
}

// RenderBreakdown formats the Figure 13 normalized time breakdowns.
func (r *Fig12Result) RenderBreakdown() string {
	t := NewTable("Figure 13: normalized execution-time breakdown (base = 1.0)",
		"workload", "config", "user busy", "system busy", "off-chip read", "on-chip read", "store buffer", "other", "total")
	t.SetCaption("Both bars represent the same completed work; the SMS bar's smaller total is the speedup.")
	add := func(name, cfg string, b timing.Breakdown) {
		t.AddRow(name, cfg,
			fmt.Sprintf("%.3f", b.UserBusy), fmt.Sprintf("%.3f", b.SystemBusy),
			fmt.Sprintf("%.3f", b.OffChipRead), fmt.Sprintf("%.3f", b.OnChipRead),
			fmt.Sprintf("%.3f", b.StoreBuffer), fmt.Sprintf("%.3f", b.Other),
			fmt.Sprintf("%.3f", b.Total()))
	}
	for _, row := range r.Rows {
		add(row.Workload, "base", row.Base)
		add(row.Workload, "SMS", row.SMS)
	}
	return t.Render()
}
