#!/usr/bin/env sh
# Smoke test for the smsd async job API: start the daemon, submit a job
# and poll it to completion, then cancel a second (long) one and check it
# settles as cancelled. Run from the repository root; needs curl.
#
# Each daemon binds -addr 127.0.0.1:0 and the script reads the
# kernel-assigned port back from the startup log line, so concurrent
# smoke runs (or a developer's own smsd on :8344) never collide.
set -eu

BIN=${BIN:-./smsd-smoke-bin}

say() { echo "smoke: $*"; }
fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/smsd

FAST_PID=""
SLOW_PID=""
TMP=""
cleanup() {
    [ -n "$FAST_PID" ] && kill "$FAST_PID" 2>/dev/null || true
    [ -n "$SLOW_PID" ] && kill "$SLOW_PID" 2>/dev/null || true
    rm -f "$BIN"
    [ -n "$TMP" ] && rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# json_field FILE KEY → the first "KEY": "value" in the (indented) JSON.
json_field() {
    sed -n "s/^.*\"$2\": \"\([^\"]*\)\".*$/\1/p" "$1" | head -n 1
}

# wait_port LOGFILE → the port from "smsd listening on 127.0.0.1:PORT",
# polled until the daemon writes it. A daemon that dies before binding
# would hang this loop, so the timeout path dumps the log — the failure
# reason (bad flag, port exhaustion, panic) is in there, not here.
wait_port() {
    i=0
    while :; do
        port=$(sed -n 's/.*smsd listening on [^ ]*:\([0-9][0-9]*\) .*/\1/p' "$1" | head -n 1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke: FAIL: daemon never logged its listen address; log follows" >&2
            sed 's/^/smoke:   | /' "$1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

wait_healthy() {
    i=0
    while ! curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke: FAIL: daemon on :$1 never became healthy; log follows" >&2
            sed 's/^/smoke:   | /' "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

TMP=$(mktemp -d)

# --- Job to completion, against a fast daemon ------------------------------
"$BIN" -addr 127.0.0.1:0 -cpus 1 -length 120000 >"$TMP/fast.log" 2>&1 &
FAST_PID=$!
PORT_FAST=$(wait_port "$TMP/fast.log")
wait_healthy "$PORT_FAST" "$TMP/fast.log"
say "fast daemon on :$PORT_FAST"

curl -fsS -X POST "http://127.0.0.1:$PORT_FAST/v1/runs" \
    -d '{"workload":"sparse","prefetcher":"sms"}' >"$TMP/submit.json"
JOB=$(json_field "$TMP/submit.json" id)
[ -n "$JOB" ] || fail "no job id in submit response: $(cat "$TMP/submit.json")"
say "submitted job $JOB"

i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_FAST/v1/jobs/$JOB" >"$TMP/poll.json"
    STATE=$(json_field "$TMP/poll.json" state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "job settled as $STATE: $(cat "$TMP/poll.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "job stuck in state $STATE"
    sleep 0.2
done
grep -q '"workload": "sparse"' "$TMP/poll.json" || fail "done job carries no result"
say "job $JOB completed with a result"

# --- Sampled run: the job API's sampling field end to end ------------------
curl -fsS -X POST "http://127.0.0.1:$PORT_FAST/v1/runs" \
    -d '{"workload":"sparse","prefetcher":"sms","sampling":{"WindowRecords":500,"IntervalRecords":4000}}' \
    >"$TMP/submit_s.json"
JOBS=$(json_field "$TMP/submit_s.json" id)
[ -n "$JOBS" ] || fail "no job id in sampled submit: $(cat "$TMP/submit_s.json")"
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_FAST/v1/jobs/$JOBS" >"$TMP/poll_s.json"
    STATE=$(json_field "$TMP/poll_s.json" state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "sampled job settled as $STATE: $(cat "$TMP/poll_s.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "sampled job stuck in state $STATE"
    sleep 0.2
done
grep -q '"Sampling"' "$TMP/poll_s.json" || fail "sampled job result carries no Sampling block"
say "sampled job $JOBS completed with confidence intervals"

# --- Cancellation, against a daemon with a very long trace -----------------
"$BIN" -addr 127.0.0.1:0 -cpus 1 -length 200000000 >"$TMP/slow.log" 2>&1 &
SLOW_PID=$!
PORT_SLOW=$(wait_port "$TMP/slow.log")
wait_healthy "$PORT_SLOW" "$TMP/slow.log"
say "slow daemon on :$PORT_SLOW"

curl -fsS -X POST "http://127.0.0.1:$PORT_SLOW/v1/runs" \
    -d '{"workload":"ocean","prefetcher":"sms"}' >"$TMP/submit2.json"
JOB2=$(json_field "$TMP/submit2.json" id)
[ -n "$JOB2" ] || fail "no job id in second submit"
say "submitted long job $JOB2, cancelling it"

curl -fsS -X DELETE "http://127.0.0.1:$PORT_SLOW/v1/jobs/$JOB2" >/dev/null
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_SLOW/v1/jobs/$JOB2" >"$TMP/poll2.json"
    STATE=$(json_field "$TMP/poll2.json" state)
    [ "$STATE" = "cancelled" ] && break
    [ "$STATE" = "done" ] || [ "$STATE" = "failed" ] && fail "long job settled as $STATE instead of cancelled"
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "cancelled job stuck in state $STATE"
    sleep 0.1
done
say "job $JOB2 settled as cancelled"

curl -fsS "http://127.0.0.1:$PORT_SLOW/metrics" >"$TMP/metrics.txt"
grep -q '^smsd_jobs_cancelled_total 1$' "$TMP/metrics.txt" ||
    fail "metrics do not count the cancellation"

say "PASS"
