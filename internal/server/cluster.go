package server

// The daemon's cluster face. Two roles share these endpoints:
//
//   - Worker: POST /v1/cells executes one run cell synchronously
//     through the ordinary job machinery (pool bounds, singleflight
//     dedup, store write-through), so a cell behaves exactly like a
//     local run that happens to answer over HTTP.
//   - Coordinator: /v1/cluster/* accept registrations and heartbeats
//     for the cluster.Coordinator installed via Config.Coordinator.
//
// The /v1/store/{results,traces}/{key} endpoints are the artifact sync
// plane both roles use: strictly content-addressed reads and writes,
// validated before publish, no invalidation.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// Request body caps for the cluster endpoints. Cells and registrations
// are small JSON documents; results are bounded by per-CPU stat arrays;
// trace artifacts are the one legitimately large payload.
const (
	maxCellRequestBytes  = 256 << 10
	maxRegisterBytes     = 64 << 10
	maxResultUploadBytes = 8 << 20
	maxTraceUploadBytes  = 4 << 30
)

// validStoreKey gates the {key} path element: content addresses are
// lowercase hex SHA-256, and anything else (path separators above all)
// must never reach the store's file layout.
func validStoreKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// storeOr404 resolves the session store or answers 404 — a daemon
// without a store has no artifact plane to serve.
func (s *Server) storeOr404(w http.ResponseWriter) (*store.Store, bool) {
	st := s.session.Store()
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "no store attached"})
		return nil, false
	}
	return st, true
}

// keyOr400 validates the {key} path value.
func keyOr400(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if !validStoreKey(key) {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("malformed content address %q", key)})
		return "", false
	}
	return key, true
}

// handleCell executes one cluster run cell and answers with its result.
// Synchronous by design: the coordinator's in-flight window is the flow
// control, so the connection is the natural completion signal, and a
// dropped connection (worker death, coordinator retry) needs no
// protocol — the cell is idempotent.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	var req cluster.CellRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCellRequestBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decoding cell: %v", err)})
		return
	}
	if _, err := workload.ByName(req.Workload); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	// Recompute the cell's content address under this daemon's options.
	// A mismatch means coordinator and worker would simulate different
	// things for the same key — refuse loudly (409) so the coordinator
	// quarantines us instead of poisoning its store.
	key := s.session.RunKey(req.Workload, req.Config)
	if req.Key != "" && req.Key != key {
		writeJSON(w, http.StatusConflict, errorDoc{Error: fmt.Sprintf(
			"cell key mismatch: coordinator says %.12s, this daemon computes %.12s (different -length/-seed/-cpus/-parallel options?)",
			req.Key, key)})
		return
	}

	// Cells legitimately run for minutes; exempt this response from the
	// server-wide write timeout.
	clearWriteDeadline(w)

	// Trace pull-through: if the coordinator holds the workload's trace
	// artifact and we don't, fetch it before simulating so the engine
	// replays instead of regenerating. Only keys we'd actually look up
	// are worth pulling.
	wcfg := s.session.Engine().Config().Workload
	if st := s.session.Store(); st != nil && req.TraceFrom != "" && req.TraceKey != "" {
		if req.TraceKey == store.ForTrace(req.Workload, wcfg) && !st.HasTrace(req.TraceKey) {
			if err := s.pullTrace(r.Context(), req.TraceFrom, req.TraceKey); err != nil {
				s.logger.Debug("cell trace pull-through failed; will regenerate",
					"key", req.TraceKey[:12], "from", req.TraceFrom, "err", err)
			}
		}
	}

	respond := func(res *sim.Result, cached bool) {
		resp := cluster.CellResponse{Key: key, Cached: cached, Result: res}
		if st := s.session.Store(); st != nil {
			if tk := store.ForTrace(req.Workload, wcfg); st.HasTrace(tk) {
				resp.TraceKey = tk
			}
		}
		writeJSON(w, http.StatusOK, resp)
	}

	// Memo/store fast path: no worker slot burned.
	if res, ok := s.session.CachedRun(req.Workload, req.Config); ok {
		respond(res, true)
		return
	}

	target := fmt.Sprintf("%s/%s", req.Workload, req.Config.Canonical().PrefetcherName)
	j, joined, err := s.startJob(jobSpec{Kind: "cell", Target: target, Dedupe: "cell/" + key}, 1, func(ctx context.Context, j *job) error {
		res, err := s.session.Run(ctx, req.Workload, req.Config)
		if err != nil {
			return err
		}
		j.mu.Lock()
		j.result = &RunResponse{Workload: req.Workload, Key: key, Result: res}
		j.mu.Unlock()
		return nil
	})
	if err != nil {
		s.metrics.failures.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The coordinator gave up (retry, death, cancellation). The job
		// keeps computing — the next attempt for this key joins it via the
		// dedup key and the result lands in the store either way.
		return
	}
	d := j.doc()
	switch {
	case d.State == JobDone && d.Result != nil && d.Result.Result != nil:
		respond(d.Result.Result, joined || d.Progress.CachedRuns > 0)
	case d.State == JobCancelled, d.Error == ErrBusy.Error():
		s.metrics.failures.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "cell did not complete: " + string(d.State)})
	default:
		s.metrics.failures.Inc()
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: d.Error})
	}
}

// pullTrace fetches one trace artifact from a peer's store plane into
// ours, atomically and validated (store.PutTraceRaw).
func (s *Server) pullTrace(ctx context.Context, from, key string) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, from+"/v1/store/traces/"+key, nil)
	if err != nil {
		return err
	}
	resp, err := s.syncClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	n, err := s.session.Store().PutTraceRaw(key, resp.Body)
	if err != nil {
		return err
	}
	s.logger.Info("trace artifact pulled from peer", "key", key[:12], "bytes", n, "from", from)
	return nil
}

// coordinatorOr404 resolves the cluster coordinator or answers 404 —
// workers and single-node daemons do not speak the membership protocol.
func (s *Server) coordinatorOr404(w http.ResponseWriter) (*cluster.Coordinator, bool) {
	if s.coordinator == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "this daemon is not a cluster coordinator"})
		return nil, false
	}
	return s.coordinator, true
}

// handleWorkerRegister enrolls a worker with the coordinator.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	c, ok := s.coordinatorOr404(w)
	if !ok {
		return
	}
	var req cluster.RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRegisterBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decoding registration: %v", err)})
		return
	}
	resp, err := c.Register(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkerHeartbeat records a beat; 404 tells the worker its
// identity is gone and it must re-register.
func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	c, ok := s.coordinatorOr404(w)
	if !ok {
		return
	}
	if !c.Heartbeat(r.PathValue("id")) {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: fmt.Sprintf("unknown worker %q; re-register", r.PathValue("id"))})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleWorkerList snapshots the cluster membership and queues.
func (s *Server) handleWorkerList(w http.ResponseWriter, _ *http.Request) {
	c, ok := s.coordinatorOr404(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Workers())
}

// handleStoreResultGet serves one stored result by content address.
func (s *Server) handleStoreResultGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeOr404(w)
	if !ok {
		return
	}
	key, ok := keyOr400(w, r)
	if !ok {
		return
	}
	res, ok := st.ProbeResult(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: fmt.Sprintf("no result at %.12s", key)})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleStoreResultPut stores one result at its content address. The
// key is the identity of the run that produced it, so the writer — a
// cluster peer syncing artifacts — is trusted to pair them correctly;
// the payload itself is validated as a decodable result.
func (s *Server) handleStoreResultPut(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeOr404(w)
	if !ok {
		return
	}
	key, ok := keyOr400(w, r)
	if !ok {
		return
	}
	var res sim.Result
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultUploadBytes)).Decode(&res); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decoding result: %v", err)})
		return
	}
	if err := st.PutResult(key, &res); err != nil {
		s.metrics.failures.Inc()
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStoreTraceGet streams one raw trace artifact.
func (s *Server) handleStoreTraceGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeOr404(w)
	if !ok {
		return
	}
	key, ok := keyOr400(w, r)
	if !ok {
		return
	}
	rc, size, ok := st.OpenTraceRaw(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: fmt.Sprintf("no trace artifact at %.12s", key)})
		return
	}
	defer rc.Close()
	// Artifact streams can outlast the write timeout; the transfer is
	// bounded by the file size instead.
	clearWriteDeadline(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	_, _ = io.Copy(w, rc)
}

// handleStoreTracePut receives one raw trace artifact; the store
// validates the v2 format before the atomic publish, so a truncated or
// corrupt upload never becomes visible.
func (s *Server) handleStoreTracePut(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeOr404(w)
	if !ok {
		return
	}
	key, ok := keyOr400(w, r)
	if !ok {
		return
	}
	clearReadDeadline(w)
	n, err := st.PutTraceRaw(key, http.MaxBytesReader(w, r.Body, maxTraceUploadBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "bytes": n})
}
