//go:build !unix

package trace

import "os"

// mapFile reads the file into memory on platforms without mmap support;
// the "mapped" replay path then decodes from the in-memory copy.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	return readFallback(f, size)
}
