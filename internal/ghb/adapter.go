package ghb

import (
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/trace"
)

// SimPrefetcher adapts a GHB PC/DC prefetcher to the simulator's per-CPU
// prefetcher interface (repro/internal/sim.Prefetcher, satisfied
// structurally). GHB observes the L2 miss stream and prefetches into L2
// (§4.6), so training emits prefetch addresses directly instead of
// queueing rate-limited streams.
type SimPrefetcher struct {
	g *GHB
}

// NewSimPrefetcher builds a GHB for cfg and wraps it for the simulator.
func NewSimPrefetcher(cfg Config) (*SimPrefetcher, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SimPrefetcher{g: g}, nil
}

// Predictor exposes the wrapped GHB.
func (p *SimPrefetcher) Predictor() *GHB { return p.g }

// Train observes the L2 miss stream (Nesbit & Smith train on L2 misses).
// First-use hits on prefetched lines also train, so a correctly predicted
// stream keeps running ahead instead of stalling every `degree` blocks.
func (p *SimPrefetcher) Train(rec trace.Record, acc *coherence.AccessResult) []mem.Addr {
	if acc.Missed(coherence.LevelL2) || acc.L2PrefetchHit {
		return p.g.Train(rec.PC, rec.Addr)
	}
	return nil
}

// Drain returns nothing: GHB issues its prefetches at train time.
func (p *SimPrefetcher) Drain(int) []mem.Addr { return nil }

// FillLevel reports that GHB prefetches into L2.
func (p *SimPrefetcher) FillLevel() coherence.Level { return coherence.LevelL2 }

// StreamEvicted is a no-op: GHB keeps no per-block state to clean up.
func (p *SimPrefetcher) StreamEvicted(mem.Addr) {}

// Invalidated is a no-op: GHB correlates deltas, not resident blocks.
func (p *SimPrefetcher) Invalidated(mem.Addr) {}

// Stats returns the predictor's Stats (a ghb.Stats).
func (p *SimPrefetcher) Stats() any { return p.g.Stats() }
