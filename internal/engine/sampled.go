package engine

import "repro/internal/sim"

// Sampled returns a copy of p with SMARTS-style sampling applied to
// every standard cell: each variant and extra cell gets sc as its
// sim.Config.Sampling. Cells that use the timing model's instruction
// windows (WindowInstructions > 0) stay exact — sampled mode rejects
// them, and the timing figures need every window — and custom cells are
// untouched (they bypass sim.Config entirely). A disabled sc returns p
// unchanged.
//
// Because Sampling participates in config canonicalization and store
// keys, the sampled plan's cells memoize separately from their exact
// counterparts: turning sampling on never serves approximate results
// under exact addresses, or vice versa.
func Sampled(p Plan, sc sim.SamplingConfig) Plan {
	if !sc.Enabled() {
		return p
	}
	vs := make([]Variant, len(p.Variants))
	for i, v := range p.Variants {
		if v.Config.WindowInstructions == 0 {
			v.Config.Sampling = sc
		}
		vs[i] = v
	}
	p.Variants = vs
	ex := make([]Cell, len(p.Extra))
	for i, c := range p.Extra {
		if c.Config.WindowInstructions == 0 {
			c.Config.Sampling = sc
		}
		ex[i] = c
	}
	p.Extra = ex
	return p
}
