package stride

import (
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/trace"
)

// SimPrefetcher adapts a per-PC stride prefetcher to the simulator's
// per-CPU prefetcher interface (repro/internal/sim.Prefetcher, satisfied
// structurally). Like GHB it trains on the L2 miss stream and prefetches
// into L2, emitting addresses directly at train time.
type SimPrefetcher struct {
	p *Prefetcher
}

// NewSimPrefetcher builds a stride prefetcher for cfg and wraps it for
// the simulator.
func NewSimPrefetcher(cfg Config) (*SimPrefetcher, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SimPrefetcher{p: p}, nil
}

// Predictor exposes the wrapped stride prefetcher.
func (s *SimPrefetcher) Predictor() *Prefetcher { return s.p }

// Train observes the L2 miss stream; first-use hits on prefetched lines
// also train so steady strides keep running ahead.
func (s *SimPrefetcher) Train(rec trace.Record, acc *coherence.AccessResult) []mem.Addr {
	if acc.Missed(coherence.LevelL2) || acc.L2PrefetchHit {
		return s.p.Train(rec.PC, rec.Addr)
	}
	return nil
}

// Drain returns nothing: stride issues its prefetches at train time.
func (s *SimPrefetcher) Drain(int) []mem.Addr { return nil }

// FillLevel reports that stride prefetches into L2.
func (s *SimPrefetcher) FillLevel() coherence.Level { return coherence.LevelL2 }

// StreamEvicted is a no-op: no per-block state.
func (s *SimPrefetcher) StreamEvicted(mem.Addr) {}

// Invalidated is a no-op: no per-block state.
func (s *SimPrefetcher) Invalidated(mem.Addr) {}

// Stats returns the predictor's Stats (a stride.Stats).
func (s *SimPrefetcher) Stats() any { return s.p.Stats() }
