// Trace capture and replay: write a workload's access trace into the
// seekable columnar v2 format with the smstrace toolchain's machinery,
// then replay it through sim.Runner by mmap — the paper's actual
// methodology (captured traces of commercial workloads driven through a
// simulator), and the path the engine's disk trace tier uses to skip
// regeneration across process restarts.
//
// Run with: go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "tracereplay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "oltp-db2.smst")

	// -- capture: generate once, stream into a v2 file ------------------
	wl, err := workload.ByName("oltp-db2")
	if err != nil {
		log.Fatal(err)
	}
	wcfg := workload.Config{CPUs: 4, Seed: 1, Length: 400_000}

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	tw, err := trace.NewV2Writer(f, trace.Header{
		CPUs:     wcfg.Canonical().CPUs,
		Geometry: mem.DefaultGeometry(),
		Workload: wl.Name,
	})
	if err != nil {
		log.Fatal(err)
	}
	src := trace.Batched(wl.Make(wcfg))
	buf := make([]trace.Record, 4096)
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		if err := tw.WriteBatch(buf[:n]); err != nil {
			log.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	info, err := trace.Stat(path) // O(1): header + footer index only
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %s\n", path)
	fmt.Printf("  %d records in %d blocks, %d bytes (%.1f B/record vs 26 fixed in v1)\n",
		info.Records, info.Blocks, info.Bytes, float64(info.Bytes)/float64(info.Records))

	// -- replay: mmap the capture and drive the simulator ---------------
	cfg := sim.Config{PrefetcherName: "sms", WarmupAccesses: wcfg.Length / 2}

	m, err := trace.OpenMapped(path)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	replayed := sim.MustNewRunner(cfg).Run(m)

	// The same run straight from the generator, for comparison.
	generated := sim.MustNewRunner(cfg).Run(wl.Make(wcfg))

	fmt.Printf("\nreplayed through sim.Runner (SMS attached):\n")
	fmt.Printf("  %-22s %12s %12s\n", "", "replay", "generator")
	fmt.Printf("  %-22s %12d %12d\n", "accesses", replayed.Accesses, generated.Accesses)
	fmt.Printf("  %-22s %12d %12d\n", "L1 read misses", replayed.L1ReadMisses, generated.L1ReadMisses)
	fmt.Printf("  %-22s %12d %12d\n", "off-chip read misses", replayed.OffChipReadMisses, generated.OffChipReadMisses)
	fmt.Printf("  %-22s %12d %12d\n", "covered misses (L1)", replayed.L1CoveredMisses, generated.L1CoveredMisses)
	fmt.Printf("  %-22s %12d %12d\n", "stream requests", replayed.StreamRequests, generated.StreamRequests)
	if replayed.L1ReadMisses != generated.L1ReadMisses || replayed.Accesses != generated.Accesses {
		log.Fatal("replay diverged from generation — this must never happen")
	}
	fmt.Println("\nbit-identical: the capture replays exactly the trace the generator produced.")

	// The index makes the file seekable: jump straight to any record.
	if err := m.Seek(info.Records - 3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlast three records (via O(1) index seek):")
	for {
		rec, ok := m.Next()
		if !ok {
			break
		}
		fmt.Printf("  %v\n", rec)
	}

	// And any v2 file is a first-class workload: "trace:<path>".
	tr, err := workload.ByName("trace:" + path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistered as workload %q (%s)\n", tr.Name, tr.Description)
}
