// Command smsd is the experiment daemon: a long-running HTTP server that
// regenerates the paper's figures and runs ad-hoc simulations on demand,
// deduplicating concurrent identical work and persisting every result in
// a content-addressed store so nothing is ever simulated twice.
//
// Usage:
//
//	smsd -store /var/lib/smsd [-journal /var/lib/smsd/journal] [-addr :8344] [-quick]
//
// One binary serves three roles:
//
//	smsd                                  single node (the default)
//	smsd -cluster                         cluster coordinator: figures and
//	                                      grids scatter across registered workers
//	smsd -worker -coordinator http://...  worker: registers, heartbeats, and
//	                                      executes cells for the coordinator
//
// Every daemon in a cluster must be launched with the same simulation
// options (-cpus/-seed/-length/-parallel/-quick); workers refuse cells
// whose content address disagrees with their own and are quarantined.
//
// Endpoints (see package repro/internal/server):
//
//	curl localhost:8344/v1/figures/fig8
//	curl -X POST localhost:8344/v1/runs -d '{"workload":"oltp-db2","prefetcher":"sms"}'
//	curl localhost:8344/v1/jobs?state=active
//	curl -X DELETE localhost:8344/v1/jobs/<id>
//	curl -X POST localhost:8344/v1/figures/fig8
//	curl localhost:8344/v1/cluster/workers
//	curl localhost:8344/v1/prefetchers
//	curl localhost:8344/v1/workloads
//	curl localhost:8344/healthz
//	curl localhost:8344/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/server"

	// Registered through the sim registry alone; imported so the scheme
	// is selectable here even if no library path pulls it in.
	_ "repro/internal/nextline"
)

// options is the daemon's parsed command line.
type options struct {
	addr     string
	storeDir string
	workers  int
	queue    int
	cpus     int
	seed     int64
	length   uint64
	parallel int
	runPar   int
	ahead    int
	quick    bool
	grace    time.Duration

	journalPath string
	faultPlan   string

	clusterOn   bool
	workerOn    bool
	coordinator string
	advertise   string
	heartbeat   time.Duration

	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration

	pprofOn bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8344", "listen address")
	flag.StringVar(&o.storeDir, "store", "", "result store directory (empty: in-memory caching only)")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", server.DefaultQueue, "job queue bound (negative: no queueing)")
	flag.IntVar(&o.cpus, "cpus", 4, "simulated processors")
	flag.Int64Var(&o.seed, "seed", 1, "workload generation seed")
	flag.Uint64Var(&o.length, "length", 1_200_000, "accesses per workload trace (half is warm-up)")
	flag.IntVar(&o.parallel, "parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	flag.IntVar(&o.runPar, "run-parallel", 0, "region-sharded simulation lanes inside each run (0/1 = serial; results are bit-identical, shares the -parallel budget)")
	flag.IntVar(&o.ahead, "decode-ahead", 0, "decode each run's trace this many batches ahead of the simulator (0 = inline)")
	flag.BoolVar(&o.quick, "quick", false, "abbreviated runs (overrides -cpus/-length)")
	flag.DurationVar(&o.grace, "shutdown-deadline", 15*time.Second, "bound on graceful shutdown: in-flight simulations are cancelled, not drained")
	flag.StringVar(&o.journalPath, "journal", "", "durable job journal path: jobs survive a kill and are recovered on restart (empty: journaling off)")
	flag.StringVar(&o.faultPlan, "fault-plan", "", "deterministic fault plan, inline JSON or @/path/to/plan.json (also "+fault.EnvPlan+"); chaos testing only")

	flag.BoolVar(&o.clusterOn, "cluster", false, "coordinator mode: scatter run cells across registered workers")
	flag.BoolVar(&o.workerOn, "worker", false, "worker mode: register with -coordinator and execute its cells")
	flag.StringVar(&o.coordinator, "coordinator", "", "coordinator base URL (worker mode), e.g. http://host:8344")
	flag.StringVar(&o.advertise, "advertise", "", "this daemon's base URL as reachable from peers (default: derived from the bound address)")
	flag.DurationVar(&o.heartbeat, "heartbeat", cluster.DefaultHeartbeatInterval, "cluster heartbeat interval (coordinator mode)")

	flag.DurationVar(&o.readTimeout, "http-read-timeout", 2*time.Minute, "HTTP request read timeout (0: none); large artifact uploads are exempt")
	flag.DurationVar(&o.writeTimeout, "http-write-timeout", 2*time.Minute, "HTTP response write timeout (0: none); event streams, synchronous figures/cells and artifact downloads are exempt")
	flag.DurationVar(&o.idleTimeout, "http-idle-timeout", 5*time.Minute, "HTTP keep-alive idle timeout (0: none)")

	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log format: text | json")
	flag.BoolVar(&o.pprofOn, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsd:", err)
		os.Exit(2)
	}
	// The store (and any library code) logs through slog's default too.
	slog.SetDefault(logger)

	if err := run(logger, o); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// buildLogger assembles the daemon's structured logger from the CLI
// flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// deriveAdvertise resolves the daemon's peer-visible base URL: the
// -advertise flag verbatim, or the bound address with unspecified hosts
// (":8344", "0.0.0.0") rewritten to loopback — right for single-machine
// clusters, which is what the default is for.
func deriveAdvertise(advertise string, bound net.Addr) string {
	if advertise != "" {
		return strings.TrimRight(advertise, "/")
	}
	host, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return "http://" + bound.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func run(logger *slog.Logger, o options) error {
	if o.workerOn && o.clusterOn {
		return fmt.Errorf("-worker and -cluster are mutually exclusive (a worker cannot also coordinate)")
	}
	if o.workerOn && o.coordinator == "" {
		return fmt.Errorf("-worker needs -coordinator URL")
	}

	// The fault injector is nil unless a plan is given (-fault-plan or
	// SMSD_FAULT_PLAN), so production paths pay one pointer test per
	// instrumented site. A crash rule kills the daemon for real: exit
	// 137, the same face SIGKILL shows a supervisor.
	inj, err := fault.Load(o.faultPlan)
	if err != nil {
		return err
	}
	if inj == nil {
		if inj, err = fault.FromEnv(); err != nil {
			return err
		}
	}
	if inj != nil {
		inj.OnCrash(func(site string) {
			logger.Error("fault plan crashed the daemon", "site", site)
			os.Exit(137)
		})
		logger.Warn("fault injection enabled", "plan", o.faultPlan)
	}

	sessOptions := exp.CLIOptions(o.cpus, o.seed, o.length, o.parallel, o.quick)
	sessOptions.RunParallel = o.runPar
	sessOptions.DecodeAhead = o.ahead
	session := exp.NewSession(sessOptions)
	if err := exp.AttachStore(session, o.storeDir); err != nil {
		return err
	}
	session.Engine().SetFault(inj)
	if st := session.Store(); st != nil {
		st.SetFault(inj)
		logger.Info("result store attached", "dir", st.Dir())
	} else {
		logger.Info("no -store directory: results cached in memory only")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An explicit listener (rather than ListenAndServe) means the logged
	// address is the one the kernel actually bound: with -addr :0 the
	// line below carries the assigned port, which the smoke scripts
	// parse to run daemons on collision-free ephemeral ports.
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	selfURL := deriveAdvertise(o.advertise, ln.Addr())

	// One metrics registry for the whole daemon: server instruments and
	// (in coordinator mode) the cluster scheduler's share one /metrics.
	reg := obs.NewRegistry()

	var coord *cluster.Coordinator
	if o.clusterOn {
		coord, err = cluster.New(cluster.Config{
			Local:             session.Engine().LocalScheduler(),
			Store:             session.Store(),
			Workload:          session.Engine().Config().Workload,
			SelfURL:           selfURL,
			Metrics:           reg,
			HeartbeatInterval: o.heartbeat,
			Logger:            logger,
			Fault:             inj,
		})
		if err != nil {
			ln.Close()
			return err
		}
		defer coord.Close()
		// Every plan the engine executes from here on scatters across the
		// cluster; with zero workers registered it degrades to the local
		// pool, so a coordinator alone behaves exactly like a single node.
		session.Engine().SetScheduler(coord)
		logger.Info("cluster coordinator enabled", "advertise", selfURL, "heartbeat", o.heartbeat)
	}

	srv, err := server.New(server.Config{
		Session:     session,
		Workers:     o.workers,
		Queue:       o.queue,
		Logger:      logger,
		Pprof:       o.pprofOn,
		Coordinator: coord,
		Metrics:     reg,
		JournalPath: o.journalPath,
		Fault:       inj,
	})
	if err != nil {
		ln.Close()
		return err
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
	}

	sessOpts := session.Options()
	logger.Info("smsd listening",
		"addr", ln.Addr().String(), "cpus", sessOpts.CPUs, "seed", sessOpts.Seed,
		"length", sessOpts.Length, "cluster", o.clusterOn, "worker", o.workerOn,
		"journal", o.journalPath != "", "pprof", o.pprofOn)

	workerDone := make(chan struct{})
	if o.workerOn {
		capacity := sessOpts.Parallel
		if capacity <= 0 {
			capacity = runtime.GOMAXPROCS(0)
		}
		go func() {
			defer close(workerDone)
			_ = cluster.RunWorker(ctx, cluster.WorkerConfig{
				Coordinator: strings.TrimRight(o.coordinator, "/"),
				Advertise:   selfURL,
				Capacity:    capacity,
				Logger:      logger,
				Fault:       inj,
			})
		}()
	} else {
		close(workerDone)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	var serveErr error
	select {
	case serveErr = <-errc:
		// The listener failed on its own (e.g. port in use); stop the
		// daemon's jobs before returning.
		srv.Close()
	case <-ctx.Done():
		logger.Info("shutting down", "deadline", o.grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), o.grace)
		// Cancel every job first — in-flight simulations stop within one
		// progress interval, so even a synchronous figure request mid-
		// computation returns quickly (a half-finished multi-minute run
		// is cache-miss work we can redo, not something worth blocking
		// shutdown on). Only then drain the HTTP listener, which is now
		// fast, and finally stop the worker pool.
		srv.CancelJobs()
		_ = httpSrv.Shutdown(shutdownCtx)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("worker pool did not drain before the deadline", "err", err)
		}
		cancel()
		serveErr = <-errc
	}
	<-workerDone
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}
