// Command smsexp regenerates the paper's figures and tables.
//
// Usage:
//
//	smsexp [flags] <experiment> [<experiment> ...]
//	smsexp [flags] all
//
// Experiments: table1 fig4 fig5 fig6 fig7 fig8 fig9 fig10 agt fig11 fig12
// fig13 ablate. Each prints a text table with the rows/series of the
// corresponding figure in Somogyi et al., "Spatial Memory Streaming"
// (ISCA 2006).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		cpus     = flag.Int("cpus", 4, "simulated processors")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		length   = flag.Uint64("length", 1_200_000, "accesses per workload trace (half is warm-up)")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		quick    = flag.Bool("quick", false, "abbreviated runs (overrides -cpus/-length)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	opts := exp.Options{CPUs: *cpus, Seed: *seed, Length: *length, Parallel: *parallel}
	if *quick {
		q := exp.QuickOptions()
		q.Seed = *seed
		q.Parallel = *parallel
		opts = q
	}
	session := exp.NewSession(opts)

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = experimentOrder()
	}
	for _, name := range args {
		run, ok := experiments()[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "smsexp: unknown experiment %q (have: %v)\n", name, experimentOrder())
			os.Exit(2)
		}
		start := time.Now()
		out, err := run(session)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smsexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

type runner func(*exp.Session) (string, error)

func experiments() map[string]runner {
	return map[string]runner{
		"table1": func(s *exp.Session) (string, error) { return exp.Table1(s), nil },
		"fig4": func(s *exp.Session) (string, error) {
			r, err := exp.Fig4(s)
			return render(r, err)
		},
		"fig5": func(s *exp.Session) (string, error) {
			r, err := exp.Fig5(s)
			return render(r, err)
		},
		"fig6": func(s *exp.Session) (string, error) {
			r, err := exp.Fig6(s)
			return render(r, err)
		},
		"fig7": func(s *exp.Session) (string, error) {
			r, err := exp.Fig7(s)
			return render(r, err)
		},
		"fig8": func(s *exp.Session) (string, error) {
			r, err := exp.Fig8(s)
			return render(r, err)
		},
		"fig9": func(s *exp.Session) (string, error) {
			r, err := exp.Fig9(s)
			return render(r, err)
		},
		"fig10": func(s *exp.Session) (string, error) {
			r, err := exp.Fig10(s)
			return render(r, err)
		},
		"agt": func(s *exp.Session) (string, error) {
			r, err := exp.AGTSizing(s)
			return render(r, err)
		},
		"fig11": func(s *exp.Session) (string, error) {
			r, err := exp.Fig11(s)
			return render(r, err)
		},
		"fig12": func(s *exp.Session) (string, error) {
			r, err := exp.Fig12(s)
			return render(r, err)
		},
		"fig13": func(s *exp.Session) (string, error) {
			r, err := exp.Fig12(s)
			if err != nil {
				return "", err
			}
			return r.RenderBreakdown(), nil
		},
		"ablate": func(s *exp.Session) (string, error) {
			r, err := exp.Ablate(s)
			return render(r, err)
		},
		"headline": func(s *exp.Session) (string, error) {
			r, err := exp.Headline(s)
			return render(r, err)
		},
	}
}

type renderable interface{ Render() string }

func render(r renderable, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func experimentOrder() []string {
	order := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "agt", "fig11", "fig12", "fig13", "ablate", "headline"}
	// Sanity: keep the map and the order in sync.
	m := experiments()
	if len(order) != len(m) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	return order
}

func usage() {
	fmt.Fprintf(os.Stderr, `smsexp regenerates the figures of "Spatial Memory Streaming" (ISCA 2006).

usage: smsexp [flags] <experiment> [<experiment> ...]
       smsexp [flags] all

experiments: %v

flags:
`, experimentOrder())
	flag.PrintDefaults()
}
