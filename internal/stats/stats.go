// Package stats provides the small statistical toolkit used by the
// simulator and the experiment harness: counters, ratios, bucketed
// histograms, means, and the paired-sample confidence intervals used to
// report speedups in the style of the paper's SMARTS-derived methodology.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Counter is a simple monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns num/den, or 0 if den is zero.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Percent returns 100*num/den, or 0 if den is zero.
func Percent(num, den uint64) float64 { return 100 * Ratio(num, den) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// All inputs must be positive; non-positive values cause an error.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean of non-positive value %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean float64
	Half float64 // half-width; the interval is [Mean-Half, Mean+Half]
}

// String formats the interval as "m ± h".
func (iv Interval) String() string {
	return fmt.Sprintf("%.3f ± %.3f", iv.Mean, iv.Half)
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool {
	return x >= iv.Mean-iv.Half && x <= iv.Mean+iv.Half
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// distribution with df degrees of freedom. Values for small df are tabulated;
// larger df use the normal approximation 1.96. This is sufficient for the
// sampled-measurement reporting the paper performs (±5% targets).
func tCritical95(df int) float64 {
	table := []float64{
		0,                                                             // df = 0 (unused)
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2..10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11..20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21..30
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// MeanCI95 returns the 95% confidence interval for the mean of xs.
func MeanCI95(xs []float64) Interval {
	n := len(xs)
	if n == 0 {
		return Interval{}
	}
	m := Mean(xs)
	if n == 1 {
		return Interval{Mean: m, Half: math.Inf(1)}
	}
	se := StdDev(xs) / math.Sqrt(float64(n))
	return Interval{Mean: m, Half: tCritical95(n-1) * se}
}

// PairedSpeedupCI95 computes the ratio-of-means speedup between paired
// base/enhanced measurements (performance metric per sample, e.g. user
// instructions per cycle per window), with a 95% confidence interval on the
// change derived from the per-pair ratios. This mirrors the paper's
// paired-measurement sampling: each sample window is measured under both
// configurations and the per-window ratios bound the speedup estimate.
func PairedSpeedupCI95(base, enhanced []float64) (Interval, error) {
	if len(base) != len(enhanced) {
		return Interval{}, fmt.Errorf("stats: paired samples length mismatch %d vs %d", len(base), len(enhanced))
	}
	if len(base) == 0 {
		return Interval{}, fmt.Errorf("stats: no samples")
	}
	ratios := make([]float64, len(base))
	for i := range base {
		if base[i] <= 0 {
			return Interval{}, fmt.Errorf("stats: non-positive base sample %g at %d", base[i], i)
		}
		ratios[i] = enhanced[i] / base[i]
	}
	iv := MeanCI95(ratios)
	// Point estimate from the ratio of aggregate means, which matches the
	// paper's aggregate-committed-instructions-per-cycle metric; the CI
	// half-width comes from the paired ratios.
	iv.Mean = Mean(enhanced) / Mean(base)
	return iv, nil
}

// Histogram is a bucketed histogram over non-negative integer values with
// caller-defined bucket upper bounds. A value v lands in the first bucket
// whose upper bound is >= v; values above the last bound land in the
// overflow bucket.
type Histogram struct {
	bounds []uint64 // ascending inclusive upper bounds
	counts []uint64 // len(bounds)+1, last is overflow
	total  uint64
}

// NewHistogram builds a histogram with the given ascending inclusive upper
// bounds. For example, bounds 1,3,7,15,23,31 produce the paper's Figure 5
// density buckets 1, 2–3, 4–7, 8–15, 16–23, 24–31, 32+ (overflow).
func NewHistogram(bounds ...uint64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// MustHistogram is NewHistogram that panics on error.
func MustHistogram(bounds ...uint64) *Histogram {
	h, err := NewHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe adds weight w at value v.
func (h *Histogram) Observe(v, w uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i] += w
	h.total += w
}

// AddHistogram accumulates o's counts into h. The two histograms must
// share the same bucket bounds; merging shards of one measurement is the
// intended use (bucketed counts are commutative sums, so a merge of
// per-shard histograms equals the histogram of the merged stream).
func (h *Histogram) AddHistogram(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("stats: merging histograms with %d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("stats: merging histograms with different bounds at %d (%d vs %d)", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
	return nil
}

// Buckets returns the number of buckets, including overflow.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Count returns the weight in bucket i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Total returns the total observed weight.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns the share of total weight in bucket i (0 when empty).
func (h *Histogram) Fraction(i int) float64 { return Ratio(h.counts[i], h.total) }

// histogramJSON is the stable wire form of a Histogram. The total is
// derived from the counts on decode, so it cannot disagree with them.
type histogramJSON struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Bounds: h.bounds, Counts: h.counts})
}

// UnmarshalJSON implements json.Unmarshaler, validating the bucket shape
// through NewHistogram.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("stats: decoding histogram: %w", err)
	}
	nh, err := NewHistogram(w.Bounds...)
	if err != nil {
		return err
	}
	if len(w.Counts) != len(nh.counts) {
		return fmt.Errorf("stats: histogram has %d counts for %d bounds", len(w.Counts), len(w.Bounds))
	}
	copy(nh.counts, w.Counts)
	for _, c := range nh.counts {
		nh.total += c
	}
	*h = *nh
	return nil
}

// BucketLabel renders bucket i as a human-readable range, e.g. "2-3" or "32+".
func (h *Histogram) BucketLabel(i int) string {
	if i == len(h.bounds) {
		return fmt.Sprintf("%d+", h.bounds[len(h.bounds)-1]+1)
	}
	lo := uint64(0)
	if i > 0 {
		lo = h.bounds[i-1] + 1
	}
	if lo == h.bounds[i] {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, h.bounds[i])
}
