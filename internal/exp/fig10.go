package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Fig10Sizes are the spatial region sizes swept by Figure 10.
var Fig10Sizes = []int{128, 256, 512, 1024, 2048, 4096, 8192}

// Fig10Row is one (group, region size) coverage point.
type Fig10Row struct {
	Group    string
	Size     int
	Coverage float64
}

// Fig10Result is the Figure 10 dataset.
type Fig10Result struct {
	Rows []Fig10Row
}

func fig10Key(size int) string { return fmt.Sprintf("region/%d", size) }

// Fig10Plan declares the Figure 10 grid: the spatial-region-size sweep
// with an unbounded PHT, plus the shared baseline.
func Fig10Plan(o Options) engine.Plan {
	p := basePlan("fig10", o)
	for _, size := range Fig10Sizes {
		p = p.WithVariant(fig10Key(size), sim.Config{
			Coherence:      o.MemorySystem(64),
			Geometry:       mem.MustGeometry(64, size),
			PrefetcherName: "sms",
			SMS:            core.Config{PHTEntries: -1},
		})
	}
	return p
}

// Fig10 reproduces Figure 10: coverage versus spatial region size, with
// PC+offset indexing, AGT training and an unbounded PHT. The paper selects
// 2 kB: all groups except OLTP peak there, and OLTP's small further gain
// does not justify doubling PHT storage (§4.4).
func Fig10(ctx context.Context, s *Session) (*Fig10Result, error) {
	names := WorkloadNames()
	grid, err := s.Execute(ctx, Fig10Plan(s.Options()))
	if err != nil {
		return nil, err
	}
	covs := make(map[string][]float64, len(names))
	for _, name := range names {
		base := grid.Baseline(name)
		cs := make([]float64, len(Fig10Sizes))
		for zi, size := range Fig10Sizes {
			cs[zi] = grid.Result(name, fig10Key(size)).L1Coverage(base).Covered
		}
		covs[name] = cs
	}
	res := &Fig10Result{}
	for _, g := range GroupNames() {
		for zi, size := range Fig10Sizes {
			res.Rows = append(res.Rows, Fig10Row{
				Group: g,
				Size:  size,
				Coverage: meanOver(names, func(n string) float64 {
					return covs[n][zi]
				})[g],
			})
		}
	}
	return res, nil
}

// Render formats the dataset as the Figure 10 series.
func (r *Fig10Result) Render() string {
	t := NewTable("Figure 10: coverage vs spatial region size (PC+offset, AGT, unbounded PHT)",
		"group", "region size", "coverage")
	for _, row := range r.Rows {
		t.AddRow(row.Group, sizeLabel(row.Size), Pct(row.Coverage))
	}
	return t.Render()
}
