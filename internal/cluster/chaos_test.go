// Chaos tests: deterministic fault injection against a real cluster —
// circuit-breaker probation and canary recovery, the stale-success
// double-settlement race, and heartbeat blackouts on both sides of the
// wire. Every test asserts the grid still settles byte-identical to
// local execution with exactly-once accounting.
package cluster_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/server"
)

// metricValue scrapes one un-labeled series from a registry's
// Prometheus rendering.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in registry", name)
	return 0
}

// newCoordServer exposes a coordinator session over HTTP (the daemon
// stack RunWorker talks to).
func newCoordServer(t *testing.T, sess *exp.Session, coord *cluster.Coordinator) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{Session: sess, Logger: discardLogger(), Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// flakyProxy fronts a real worker: the first failN cell posts are
// answered 500, everything after (and every non-cell request) is
// forwarded. This is a worker that heals.
func flakyProxy(t *testing.T, backend string, failN int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	u, err := url.Parse(backend)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	var posts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cells" && posts.Add(1) <= failN {
			http.Error(w, "synthetic failure", http.StatusInternalServerError)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &posts
}

// TestBreakerTripsAndCanaryRecovers: a worker that fails its first few
// cells trips the circuit breaker onto probation; once it heals, a
// canary cell succeeds and probation lifts. The grid settles
// byte-identical with no cell computed twice. Capacity 1 keeps the
// attempts serial, so the failure/trip/canary sequence is deterministic.
func TestBreakerTripsAndCanaryRecovers(t *testing.T) {
	node := newWorkerNode(t, t.TempDir(), testOpts)
	// Fail the first 3 posts — exactly the breaker threshold — then heal.
	proxy, posts := flakyProxy(t, node.ts.URL, 3)

	reg := obs.NewRegistry()
	coordSess, coord := newCoordinator(t, "", testOpts, cluster.Config{
		Metrics:          reg,
		BreakerThreshold: 3,
		MaxAttempts:      10, // the breaker must trip before any cell's budget runs out
		RetryBaseDelay:   5 * time.Millisecond,
		RetryMaxDelay:    20 * time.Millisecond,
	})
	register(t, coord, proxy.URL, 1)

	plan := testPlan()
	local := newSession(t, "", testOpts)
	want, err := local.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coordSess.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	requireGridsEqual(t, plan, got, want)

	if posts.Load() <= 3 {
		t.Fatalf("proxy saw %d cell posts; the failure phase never completed", posts.Load())
	}
	if v := metricValue(t, reg, "smsd_cluster_breaker_trips_total"); v != 1 {
		t.Errorf("breaker trips = %g, want 1", v)
	}
	if v := metricValue(t, reg, "smsd_cluster_breaker_recoveries_total"); v != 1 {
		t.Errorf("breaker recoveries = %g, want 1 (canary success must lift probation)", v)
	}
	if v := metricValue(t, reg, "smsd_cluster_cells_canary_total"); v < 1 {
		t.Errorf("canary cells = %g, want >= 1", v)
	}
	cells := uint64(len(plan.Workloads) * len(plan.Variants))
	if sims := node.session.Simulations(); sims != cells {
		t.Errorf("worker simulated %d cells, want exactly %d", sims, cells)
	}
	if sims := coordSess.Simulations(); sims != 0 {
		t.Errorf("coordinator fell back to %d local sims; probation should keep the cluster usable", sims)
	}
	ws := coord.Workers()
	if len(ws) != 1 || ws[0].Probation {
		t.Errorf("worker still on probation after recovery: %+v", ws)
	}
}

// TestBreakerProbationPrefersHealthyWorker: with one persistently
// failing worker and one healthy one, the breaker trips once, moves the
// failing worker's backlog, and the whole grid lands on the healthy
// worker instead of burning each cell's retry budget against the flake.
func TestBreakerProbationPrefersHealthyWorker(t *testing.T) {
	healthy := newWorkerNode(t, t.TempDir(), testOpts)
	var flakes atomic.Int64
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flakes.Add(1)
		http.Error(w, "synthetic failure", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)

	reg := obs.NewRegistry()
	coordSess, coord := newCoordinator(t, "", testOpts, cluster.Config{
		Metrics:          reg,
		BreakerThreshold: 2,
		RetryBaseDelay:   5 * time.Millisecond,
		RetryMaxDelay:    20 * time.Millisecond,
	})
	// Broken gets the wide window, healthy the narrow one, so whichever
	// way affinity splits the plan, broken sees (or steals) cells.
	register(t, coord, broken.URL, 4)
	register(t, coord, healthy.ts.URL, 1)

	plan := testPlan()
	local := newSession(t, "", testOpts)
	want, err := local.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coordSess.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	requireGridsEqual(t, plan, got, want)

	if flakes.Load() < 2 {
		t.Fatalf("broken worker saw %d posts; the breaker threshold was never reached", flakes.Load())
	}
	if v := metricValue(t, reg, "smsd_cluster_breaker_trips_total"); v != 1 {
		t.Errorf("breaker trips = %g, want exactly 1 (probation must not re-trip)", v)
	}
	cells := uint64(len(plan.Workloads) * len(plan.Variants))
	if sims := healthy.session.Simulations(); sims != cells {
		t.Errorf("healthy worker simulated %d cells, want all %d", sims, cells)
	}
	var probation bool
	for _, w := range coord.Workers() {
		if w.URL == broken.URL {
			probation = w.Probation
		}
	}
	if !probation {
		t.Error("persistently failing worker is not on probation")
	}
}

// TestStaleSuccessSettlesExactlyOnce is the duplicate-settlement
// regression test. Worker A answers instantly (its store is pre-warmed)
// but a latency rule on cluster.cell.result holds one finished response
// in limbo past A's heartbeat death: the coordinator re-scatters the
// cell to worker B, which settles it, and A's success then lands stale.
// It must be counted as a duplicate — not as fresh done work — and the
// duration histogram must observe exactly one settlement per cell.
func TestStaleSuccessSettlesExactlyOnce(t *testing.T) {
	plan := testPlan()
	local := newSession(t, "", testOpts)
	want, err := local.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-warm A's store with the whole grid so it answers cells in
	// microseconds — long before its heartbeat death — keeping the
	// response-before-reap ordering deterministic.
	adir := t.TempDir()
	warm := newSession(t, adir, testOpts)
	if _, err := warm.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	a := newWorkerNode(t, adir, testOpts)
	b := newWorkerNode(t, t.TempDir(), testOpts)

	inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{
		// Hold exactly one of A's finished responses in limbo, well past
		// the reap cutoff (2 × 150ms) plus B's re-simulation time.
		{Site: "cluster.cell.result", Kind: fault.KindLatency, DelayMS: 3000, Times: 1},
	}})
	reg := obs.NewRegistry()
	coordSess, coord := newCoordinator(t, "", testOpts, cluster.Config{
		Metrics:           reg,
		Fault:             inj,
		HeartbeatInterval: 150 * time.Millisecond,
		HeartbeatMisses:   2,
	})
	register(t, coord, a.ts.URL, 2) // never beats → declared dead mid-limbo

	// Register B (and keep it alive) once A holds the cells, so the
	// re-scatter has somewhere healthy to land.
	go func() {
		time.Sleep(50 * time.Millisecond)
		resp, err := coord.Register(cluster.RegisterRequest{URL: b.ts.URL, Capacity: 4})
		if err != nil {
			return
		}
		ticker := time.NewTicker(40 * time.Millisecond)
		defer ticker.Stop()
		for range ticker.C {
			if !coord.Heartbeat(resp.WorkerID) {
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := coordSess.Execute(ctx, plan)
	if err != nil {
		t.Fatal("grid did not settle:", err)
	}
	requireGridsEqual(t, plan, got, want)

	// The grid settles through B while A's response is still in limbo;
	// the stale success only lands when the injected delay expires.
	deadline := time.Now().Add(15 * time.Second)
	for metricValue(t, reg, "smsd_cluster_cells_duplicate_results_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate results never recorded; the stale-success path never fired and the test proved nothing")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Exactly-once settlement accounting: one duration observation per
	// cell, no matter how many attempts landed.
	cells := len(plan.Workloads) * len(plan.Variants)
	if v := metricValue(t, reg, "smsd_cluster_cell_duration_seconds_count"); v != float64(cells) {
		t.Errorf("cell duration observations = %g, want exactly %d (stale successes must not re-settle)", v, cells)
	}
	var done uint64
	for _, w := range coord.Workers() {
		done += w.Done
	}
	if done != uint64(cells) {
		t.Errorf("workers report %d done cells, want exactly %d", done, cells)
	}
}

// TestHeartbeatBlackoutRescatters: the worker beats faithfully but an
// injected blackout swallows every beat coordinator-side (an asymmetric
// partition). The reaper must declare it dead on its own and the grid
// must settle through the local fallback, byte-identical.
func TestHeartbeatBlackoutRescatters(t *testing.T) {
	// The victim swallows cells until the attempt is cancelled, so
	// settlement can only come from the post-reap re-scatter.
	var swallowed atomic.Int64
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		swallowed.Add(1)
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(victim.Close)

	// Compute the reference grid before the victim registers: its reap
	// clock starts at registration (the blackout swallows every beat), so
	// it must still be alive when the cells scatter.
	plan := testPlan()
	local := newSession(t, "", testOpts)
	want, err := local.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{
		{Site: "cluster.heartbeat", Kind: fault.KindError}, // every beat vanishes
	}})
	coordSess, coord := newCoordinator(t, "", testOpts, cluster.Config{
		Fault:             inj,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   2,
	})
	id := register(t, coord, victim.URL, 4)
	beat(t, coord, id, 20*time.Millisecond) // beating into the void
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := coordSess.Execute(ctx, plan)
	if err != nil {
		t.Fatal("grid did not settle through the blackout:", err)
	}
	requireGridsEqual(t, plan, got, want)

	if swallowed.Load() == 0 {
		t.Error("victim never received a cell; the blackout was not exercised")
	}
	if inj.Injections() == 0 {
		t.Error("no heartbeats were swallowed; the fault plan never fired")
	}
	for _, w := range coord.Workers() {
		if w.URL == victim.URL && w.Alive {
			t.Error("victim still alive: the coordinator heard beats the blackout should have swallowed")
		}
	}
}

// TestWorkerSendBlackoutReregisters: the worker-side blackout — beats
// are never sent for a window, the coordinator retires the identity,
// and when the blackout lifts the worker notices it is unknown and
// re-registers under a fresh id.
func TestWorkerSendBlackoutReregisters(t *testing.T) {
	coordSess := newSession(t, "", testOpts)
	coord, err := cluster.New(cluster.Config{
		Local:             coordSess.Engine().LocalScheduler(),
		Workload:          coordSess.Engine().Config().Workload,
		HeartbeatInterval: 30 * time.Millisecond,
		HeartbeatMisses:   2,
		Logger:            discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	srv := newCoordServer(t, coordSess, coord)

	inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{
		// Swallow beats 1..8 worker-side: long enough for the coordinator
		// to reap the identity, short enough that beat 9 discovers it.
		{Site: "cluster.heartbeat.send", Kind: fault.KindError, Times: 8},
	}})
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- cluster.RunWorker(ctx, cluster.WorkerConfig{
			Coordinator: srv.URL,
			Advertise:   "http://127.0.0.1:1", // never dialed in this test
			Capacity:    1,
			Logger:      discardLogger(),
			Fault:       inj,
		})
	}()
	defer func() {
		cancel()
		select {
		case <-workerDone:
		case <-time.After(10 * time.Second):
			t.Error("RunWorker did not exit on ctx cancel")
		}
	}()

	// Wait for the second identity: registration happened, the blackout
	// got the first id reaped, and the worker re-registered afresh.
	deadline := time.Now().Add(15 * time.Second)
	for {
		ws := coord.Workers()
		alive := 0
		for _, w := range ws {
			if w.Alive {
				alive++
			}
		}
		if len(ws) >= 2 && alive == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never re-registered after the send blackout: %+v", ws)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if inj.Injections() == 0 {
		t.Fatal("no beats were suppressed; the blackout never fired")
	}
}
