package mem

import (
	"encoding/json"
	"testing"
)

func TestGeometryJSONRoundTrip(t *testing.T) {
	for _, g := range []Geometry{DefaultGeometry(), MustGeometry(64, 128), MustGeometry(32, 8192), {}} {
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		var got Geometry
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if got != g {
			t.Errorf("round trip %v -> %s -> %v", g, data, got)
		}
	}
}

func TestGeometryJSONStableForm(t *testing.T) {
	data, err := json.Marshal(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"block_size":64,"region_size":2048}`; string(data) != want {
		t.Errorf("wire form = %s, want %s", data, want)
	}
}

func TestGeometryJSONRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		`{"block_size":48,"region_size":2048}`, // not a power of two
		`{"block_size":64,"region_size":32}`,   // region smaller than block
		`{"block_size":64}`,                    // missing region
		`"not an object"`,
	} {
		var g Geometry
		if err := json.Unmarshal([]byte(bad), &g); err == nil {
			t.Errorf("%s: accepted", bad)
		}
	}
}
