# Mirrors .github/workflows/ci.yml: `make ci` runs the exact pipeline
# CI runs, so a green `make ci` means a green check.

GO ?= go

.PHONY: ci fmt vet build test test-full bench bench-smoke

ci: fmt vet build test bench-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -race covers the concurrent subsystems (server singleflight/worker
# pool, store, session) — their tests run in -short mode by design.
test:
	$(GO) test -short -race ./...

# The full suite includes the figure-scale experiment tests (~minutes).
test-full:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark (no unit tests — those already ran):
# catches bit-rotted benchmark code and exercises the store hit/miss
# paths without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -short ./...
