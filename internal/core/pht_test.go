package core

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

func TestPHTValidation(t *testing.T) {
	if _, err := NewPHT(0, 0); err != nil {
		t.Errorf("infinite PHT rejected: %v", err)
	}
	if _, err := NewPHT(16384, 16); err != nil {
		t.Errorf("paper config rejected: %v", err)
	}
	if _, err := NewPHT(100, 16); err == nil {
		t.Error("non-multiple entries accepted")
	}
	if _, err := NewPHT(48, 16); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := NewPHT(16, -1); err == nil {
		t.Error("negative assoc accepted")
	}
}

func TestPHTInsertLookup(t *testing.T) {
	for _, entries := range []int{0, 256} {
		pht := MustNewPHT(entries, 16)
		p := mem.PatternOf(32, 1, 5)
		pht.Insert(42, p)
		got, ok := pht.Lookup(42)
		if !ok || !got.Equal(p) {
			t.Fatalf("entries=%d: Lookup = %v,%v", entries, got, ok)
		}
		if _, ok := pht.Lookup(43); ok {
			t.Fatalf("entries=%d: phantom hit", entries)
		}
		// Replacement of the same key.
		p2 := mem.PatternOf(32, 7)
		pht.Insert(42, p2)
		got, _ = pht.Lookup(42)
		if !got.Equal(p2) {
			t.Fatalf("entries=%d: pattern not replaced", entries)
		}
		if pht.Size() != 1 {
			t.Fatalf("entries=%d: Size = %d", entries, pht.Size())
		}
	}
}

func TestPHTInfiniteFlag(t *testing.T) {
	if !MustNewPHT(0, 0).Infinite() {
		t.Error("unbounded table not marked infinite")
	}
	if MustNewPHT(64, 16).Infinite() {
		t.Error("bounded table marked infinite")
	}
	if MustNewPHT(64, 16).Entries() != 64 {
		t.Error("Entries() wrong")
	}
}

func TestPHTSetLRUReplacement(t *testing.T) {
	// 2 sets x 2 ways. Keys with the same low bit share a set.
	pht := MustNewPHT(4, 2)
	p := mem.PatternOf(8, 0)
	pht.Insert(0, p) // set 0
	pht.Insert(2, p) // set 0
	pht.Lookup(0)    // refresh key 0
	pht.Insert(4, p) // set 0: evicts key 2 (LRU)
	if _, ok := pht.Lookup(2); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := pht.Lookup(0); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := pht.Lookup(4); !ok {
		t.Fatal("new entry missing")
	}
	st := pht.Stats()
	if st.Replacements != 1 || st.Inserts != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPHTCapacityBound(t *testing.T) {
	pht := MustNewPHT(64, 16)
	rng := rand.New(rand.NewSource(3))
	p := mem.PatternOf(16, 2)
	for i := 0; i < 10000; i++ {
		pht.Insert(rng.Uint64(), p)
	}
	if pht.Size() > 64 {
		t.Fatalf("Size %d exceeds capacity", pht.Size())
	}
}

func TestPHTStatsCounting(t *testing.T) {
	pht := MustNewPHT(0, 0)
	pht.Lookup(1)
	pht.Insert(1, mem.PatternOf(4, 0))
	pht.Lookup(1)
	st := pht.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIndexKeySchemes(t *testing.T) {
	g := mem.MustGeometry(64, 2048)
	pc1, pc2 := uint64(0x400100), uint64(0x400200)
	a1 := mem.Addr(0x10000 + 5*64) // region 0x10000, offset 5
	a2 := mem.Addr(0x20000 + 5*64) // different region, same offset
	a3 := mem.Addr(0x10000 + 9*64) // same region, different offset

	// PC+offset: same (pc, offset) collides regardless of region.
	if indexKey(IndexPCOffset, g, pc1, a1) != indexKey(IndexPCOffset, g, pc1, a2) {
		t.Error("PC+off should ignore region identity")
	}
	if indexKey(IndexPCOffset, g, pc1, a1) == indexKey(IndexPCOffset, g, pc1, a3) {
		t.Error("PC+off should distinguish offsets")
	}
	if indexKey(IndexPCOffset, g, pc1, a1) == indexKey(IndexPCOffset, g, pc2, a1) {
		t.Error("PC+off should distinguish PCs")
	}

	// Address: ignores PC, distinguishes regions, ignores offset.
	if indexKey(IndexAddress, g, pc1, a1) != indexKey(IndexAddress, g, pc2, a3) {
		t.Error("Addr should depend only on the region")
	}
	if indexKey(IndexAddress, g, pc1, a1) == indexKey(IndexAddress, g, pc1, a2) {
		t.Error("Addr should distinguish regions")
	}

	// PC: ignores everything but the PC.
	if indexKey(IndexPC, g, pc1, a1) != indexKey(IndexPC, g, pc1, a2) ||
		indexKey(IndexPC, g, pc1, a1) != indexKey(IndexPC, g, pc1, a3) {
		t.Error("PC should depend only on the PC")
	}

	// PC+address: distinguishes both PC and region.
	if indexKey(IndexPCAddress, g, pc1, a1) == indexKey(IndexPCAddress, g, pc2, a1) {
		t.Error("PC+addr should distinguish PCs")
	}
	if indexKey(IndexPCAddress, g, pc1, a1) == indexKey(IndexPCAddress, g, pc1, a2) {
		t.Error("PC+addr should distinguish regions")
	}
	if indexKey(IndexPCAddress, g, pc1, a1) != indexKey(IndexPCAddress, g, pc1, a3) {
		t.Error("PC+addr should ignore the offset within the region")
	}
}

func TestIndexKindStrings(t *testing.T) {
	for _, k := range AllIndexKinds() {
		s := k.String()
		got, err := ParseIndexKind(s)
		if err != nil || got != k {
			t.Errorf("round trip %v: %v, %v", k, got, err)
		}
	}
	if _, err := ParseIndexKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
	if IndexKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
	if len(AllIndexKinds()) != 4 {
		t.Error("AllIndexKinds must list the four Figure 6 schemes")
	}
}

func TestIndexKeyPanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid kind did not panic")
		}
	}()
	indexKey(IndexKind(99), mem.DefaultGeometry(), 0, 0)
}
