package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// Scheduling defaults; all overridable through Config.
const (
	DefaultHeartbeatInterval = 2 * time.Second
	DefaultHeartbeatMisses   = 3
	DefaultMaxAttempts       = 4
	DefaultRetryBaseDelay    = 100 * time.Millisecond
	DefaultRetryMaxDelay     = 5 * time.Second
	// DefaultBreakerThreshold is how many consecutive failed attempts
	// put a worker on probation (the per-worker circuit breaker).
	DefaultBreakerThreshold = 3
)

// ErrKeyMismatch reports a worker that refused a cell because it
// computes a different content address for it — the daemons were
// launched with different simulation options, so the worker's result
// would answer a different question. The coordinator quarantines such
// workers instead of retrying them.
var ErrKeyMismatch = errors.New("cluster: cell key mismatch (worker launched with different options)")

// Config parameterizes a Coordinator.
type Config struct {
	// Local executes cells on the coordinator itself: the fallback when
	// no workers are registered (or none remain alive), so a cluster of
	// zero degrades to exactly the single-node engine. Required.
	Local engine.CellScheduler
	// Store is the coordinator's result store; used only for artifact
	// sync (trace-tier pulls and the TraceFrom hint). Optional.
	Store *store.Store
	// Workload is the engine's trace-generation config, used to compute
	// trace artifact keys for sync hints.
	Workload workload.Config
	// SelfURL is the coordinator's own base URL as reachable from
	// workers; when set (and Store holds the artifact), dispatched cells
	// carry a TraceFrom hint so workers pull traces instead of
	// regenerating. Optional.
	SelfURL string
	// Metrics receives the cluster instruments (nil: a private registry,
	// for coordinators that are not scraped).
	Metrics *obs.Registry
	// HeartbeatInterval is how often workers must beat; a worker silent
	// for HeartbeatMisses intervals is declared dead and its cells are
	// re-scattered.
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// MaxAttempts bounds how many times one cell is dispatched before
	// its run fails (first attempt included).
	MaxAttempts int
	// RetryBaseDelay/RetryMaxDelay shape the jittered exponential
	// backoff between a cell's attempts.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// worker's circuit breaker: once tripped, the worker is on
	// probation — no new scatters, one canary cell at a time — until a
	// canary succeeds. 0 selects DefaultBreakerThreshold; negative
	// disables the breaker.
	BreakerThreshold int
	// Client performs the HTTP dispatches (nil: a client with sane
	// dial/header timeouts and no overall timeout — cells legitimately
	// run for minutes; death is detected by heartbeats, not deadlines).
	Client *http.Client
	// Logger receives scheduling decisions worth an operator's
	// attention (nil: slog.Default()).
	Logger *slog.Logger
	// Fault optionally injects deterministic faults into the transport
	// sites (cluster.cell.post, cluster.trace.pull, cluster.heartbeat);
	// nil in production.
	Fault *fault.Injector
}

// task is one cell making its way through the cluster. All mutable
// state is guarded by Coordinator.mu; emit is only ever called with mu
// held and never after the task settles, which is what makes the
// engine's event contract race-free.
type task struct {
	spec    engine.RunSpec
	emit    func(engine.Event)
	ctx     context.Context
	created time.Time

	attempts   int
	started    bool
	lastWorker string

	queuedOn   *worker
	inflightOn *worker
	// localCancel stops an in-progress local fallback run when a late
	// remote result settles the task first, so the coordinator does not
	// finish a simulation nobody is waiting for.
	localCancel context.CancelFunc
	settled     bool
	res         *sim.Result
	err         error
	done        chan struct{}
}

// worker is the coordinator's view of one registered worker daemon.
type worker struct {
	id       string
	url      string
	capacity int

	alive       bool
	quarantined bool
	lastBeat    time.Time

	// Circuit breaker: consecFails counts attempt failures since the
	// last success; at the threshold the worker goes on probation — no
	// new scatters, one canary cell at a time — until a canary succeeds.
	consecFails int
	probation   bool

	queue    []*task
	inflight map[*task]context.CancelFunc

	done, failed, stolen uint64
}

// Coordinator scatters engine run cells across registered workers. It
// implements engine.CellScheduler: install it with Engine.SetScheduler
// and every plan the engine executes is distributed transparently —
// memoization, store write-through and event settlement stay in the
// engine, exactly as for local execution.
type Coordinator struct {
	cfg    Config
	client *http.Client
	logger *slog.Logger
	m      *coordMetrics

	stop     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	closed  bool
	seq     int
	workers map[string]*worker
	byURL   map[string]*worker
	syncing map[string]bool // trace keys with a pull in flight
}

// New builds a coordinator and starts its heartbeat monitor. Close it
// when done.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Local == nil {
		return nil, fmt.Errorf("cluster: Config.Local scheduler is required")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = DefaultHeartbeatMisses
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost:   16,
			ResponseHeaderTimeout: 0, // cells answer when the run finishes
		}}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coordinator{
		cfg:     cfg,
		client:  client,
		logger:  logger,
		stop:    make(chan struct{}),
		workers: make(map[string]*worker),
		byURL:   make(map[string]*worker),
		syncing: make(map[string]bool),
	}
	c.m = newCoordMetrics(reg, c)
	go c.monitor()
	return c, nil
}

// Close stops the heartbeat monitor. Outstanding cells settle through
// their own contexts (the daemon cancels jobs on shutdown).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// Register adds (or re-adds) a worker. Re-registering a URL retires the
// previous identity — a restarted worker must not inherit a dead
// ancestor's bookkeeping — and re-scatters any cells it held.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	u, err := url.Parse(req.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return RegisterResponse{}, fmt.Errorf("cluster: worker URL %q is not an absolute URL", req.URL)
	}
	capacity := req.Capacity
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	var orphans []*task
	if old := c.byURL[req.URL]; old != nil {
		orphans = c.retireLocked(old)
	}
	c.seq++
	w := &worker{
		id:       fmt.Sprintf("w%d", c.seq),
		url:      req.URL,
		capacity: capacity,
		alive:    true,
		lastBeat: time.Now(),
		inflight: make(map[*task]context.CancelFunc),
	}
	c.workers[w.id] = w
	c.byURL[w.url] = w
	c.m.workersRegistered.Inc()
	locals := c.rescatterLocked(orphans)
	c.dispatchLocked()
	c.mu.Unlock()
	c.runLocals(locals)
	c.logger.Info("cluster: worker registered", "worker", w.id, "url", w.url, "capacity", capacity)
	return RegisterResponse{WorkerID: w.id, HeartbeatMillis: c.cfg.HeartbeatInterval.Milliseconds()}, nil
}

// Heartbeat records a beat; false tells the worker to re-register (it
// is unknown, or was declared dead and its identity retired).
func (c *Coordinator) Heartbeat(id string) bool {
	if c.cfg.Fault.Point("cluster.heartbeat") != nil {
		// Injected blackout: the beat is swallowed without being
		// recorded, and the worker is none the wiser — an asymmetric
		// partition. The reaper must notice on its own.
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil || !w.alive {
		return false
	}
	w.lastBeat = time.Now()
	return true
}

// Workers snapshots the registry for listings and reconciliation.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID:            w.id,
			URL:           w.url,
			Capacity:      w.capacity,
			Alive:         w.alive,
			Quarantined:   w.quarantined,
			Probation:     w.probation,
			ConsecFails:   w.consecFails,
			Queued:        len(w.queue),
			Inflight:      len(w.inflight),
			Done:          w.done,
			Failed:        w.failed,
			Stolen:        w.stolen,
			LastHeartbeat: w.lastBeat,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Schedule implements engine.CellScheduler: dispatch the cell to a
// worker (queued under its affinity worker, stolen by whoever has room
// first), fall back to local execution when the cluster is empty, and
// block until the cell settles or ctx is cancelled.
func (c *Coordinator) Schedule(ctx context.Context, spec engine.RunSpec, emit func(engine.Event)) (*sim.Result, error) {
	t := &task{
		spec:    spec,
		emit:    emit,
		ctx:     ctx,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed || !c.assignLocked(t, "") {
		c.mu.Unlock()
		c.m.cellsLocal.Inc()
		return c.cfg.Local.Schedule(ctx, spec, emit)
	}
	c.dispatchLocked()
	c.mu.Unlock()

	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		c.mu.Lock()
		c.settleLocked(t, nil, ctx.Err())
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// settleLocked finalizes a task exactly once: detach it from whatever
// queue or in-flight slot holds it, record the outcome, release the
// waiter. Late duplicate settlements (a stale attempt racing a
// re-scatter) are dropped here, which is what makes duplicate execution
// harmless instead of double-counted.
func (c *Coordinator) settleLocked(t *task, res *sim.Result, err error) {
	if t.settled {
		return
	}
	t.settled = true
	t.res, t.err = res, err
	if w := t.queuedOn; w != nil {
		for i, q := range w.queue {
			if q == t {
				w.queue = append(w.queue[:i], w.queue[i+1:]...)
				break
			}
		}
		t.queuedOn = nil
	}
	if w := t.inflightOn; w != nil {
		if cancel, ok := w.inflight[t]; ok {
			cancel()
			delete(w.inflight, t)
		}
		t.inflightOn = nil
	}
	if t.localCancel != nil {
		// A local fallback run is still simulating this cell; stop it —
		// its result is no longer needed.
		t.localCancel()
		t.localCancel = nil
	}
	c.m.cellDuration.Observe(time.Since(t.created).Seconds())
	close(t.done)
}

// assignLocked queues the task on its affinity worker (rendezvous
// hashing over worker id × workload, so one workload's variants share
// one worker's trace memo), avoiding exclude when any alternative
// exists. Workers on probation receive new cells only when no healthy
// worker remains — and even then the dispatch window clamps them to
// one canary at a time. False means no live worker can take it.
func (c *Coordinator) assignLocked(t *task, exclude string) bool {
	pick := func(allowProbation bool) *worker {
		var best *worker
		var bestScore uint64
		for _, w := range c.workers {
			if !w.alive || w.quarantined || w.id == exclude {
				continue
			}
			if w.probation && !allowProbation {
				continue
			}
			h := fnv.New64a()
			io.WriteString(h, w.id)
			h.Write([]byte{0})
			io.WriteString(h, t.spec.Workload)
			if score := h.Sum64(); best == nil || score > bestScore {
				best, bestScore = w, score
			}
		}
		return best
	}
	best := pick(false)
	if best == nil {
		best = pick(true)
	}
	if best == nil && exclude != "" {
		// The excluded worker is the only one left; better it than
		// nothing.
		return c.assignLocked(t, "")
	}
	if best == nil {
		return false
	}
	t.queuedOn = best
	best.queue = append(best.queue, t)
	return true
}

// nextTaskLocked picks the worker's next cell: its own queue first, then
// the tail of the longest other queue (work stealing — a drained fast
// worker eats a slow worker's backlog instead of idling).
func (c *Coordinator) nextTaskLocked(w *worker) *task {
	if len(w.queue) > 0 {
		t := w.queue[0]
		w.queue = w.queue[1:]
		t.queuedOn = nil
		return t
	}
	var (
		victim *worker
		steal  = -1
	)
	for _, v := range c.workers {
		if v == w || len(v.queue) == 0 {
			continue
		}
		if victim != nil && len(v.queue) <= len(victim.queue) {
			continue
		}
		// Steal from the tail (the coldest work), but never a cell this
		// worker already failed: a fast-failing worker must not yank its
		// own retries back from the healthy node's queue and burn the
		// attempt budget.
		for i := len(v.queue) - 1; i >= 0; i-- {
			if v.queue[i].lastWorker != w.id {
				victim, steal = v, i
				break
			}
		}
	}
	if victim == nil {
		return nil
	}
	t := victim.queue[steal]
	victim.queue = append(victim.queue[:steal], victim.queue[steal+1:]...)
	t.queuedOn = nil
	w.stolen++
	c.m.cellsStolen.Inc()
	return t
}

// dispatchLocked fills every live worker's in-flight window from the
// queues. It is called after every state change that can free capacity
// or add work, so the windows stay saturated.
func (c *Coordinator) dispatchLocked() {
	for {
		progress := false
		for _, w := range c.workers {
			capacity := w.capacity
			if w.probation {
				// Probation window: one canary cell at a time probes
				// whether the worker recovered, instead of burning the
				// retry budget of a full window.
				capacity = 1
			}
			if !w.alive || w.quarantined || len(w.inflight) >= capacity {
				continue
			}
			t := c.nextTaskLocked(w)
			if t == nil {
				continue
			}
			c.launchLocked(w, t)
			progress = true
		}
		if !progress {
			break
		}
	}
	c.m.refreshWorkerGaugesLocked(c)
}

// launchLocked starts one HTTP attempt for the cell on the worker.
func (c *Coordinator) launchLocked(w *worker, t *task) {
	attemptCtx, cancel := context.WithCancel(t.ctx)
	w.inflight[t] = cancel
	t.inflightOn = w
	t.lastWorker = w.id
	t.attempts++
	if !t.started {
		t.started = true
		c.m.scatterLatency.Observe(time.Since(t.created).Seconds())
		t.emit(engine.Event{Kind: engine.RunStarted})
	}
	c.m.cellsScattered.Inc()
	if w.probation {
		c.m.cellsCanary.Inc()
	}
	go c.execute(w, t, attemptCtx, t.attempts)
}

// breakerSuccessLocked records a successful attempt on the breaker:
// the failure streak resets and probation lifts (the canary came back).
func (c *Coordinator) breakerSuccessLocked(w *worker) {
	w.consecFails = 0
	if w.probation {
		w.probation = false
		c.m.breakerRecoveries.Inc()
		c.logger.Info("cluster: worker probation lifted (canary cell succeeded)",
			"worker", w.id, "url", w.url)
	}
}

// breakerFailureLocked records a failed attempt; at the threshold the
// worker trips onto probation and its queued (not yet launched) cells
// move to healthier homes. Returns tasks that must now run locally.
func (c *Coordinator) breakerFailureLocked(w *worker) []*task {
	w.consecFails++
	if c.cfg.BreakerThreshold <= 0 || w.probation || w.quarantined || !w.alive ||
		w.consecFails < c.cfg.BreakerThreshold {
		return nil
	}
	w.probation = true
	c.m.breakerTrips.Inc()
	c.logger.Warn("cluster: worker on probation (circuit breaker tripped)",
		"worker", w.id, "url", w.url, "consecutive_failures", w.consecFails)
	moved := w.queue
	w.queue = nil
	for _, qt := range moved {
		qt.queuedOn = nil
	}
	return c.rescatterLocked(moved)
}

// execute performs one dispatch attempt and folds its outcome back into
// the scheduler state. attempt is the launch token this goroutine was
// started with: if the task has since been re-launched (or taken away),
// this attempt is stale no matter what the maps say.
func (c *Coordinator) execute(w *worker, t *task, ctx context.Context, attempt int) {
	resp, err := c.postCell(ctx, w.url, t.spec)
	if err == nil {
		// Injected between the worker's answer and the coordinator folding
		// it in: a latency rule here holds a completed response in limbo
		// (letting a reap re-scatter the cell under it — the stale-success
		// race), an error rule drops the response on the floor.
		if ferr := c.cfg.Fault.Point("cluster.cell.result"); ferr != nil {
			resp, err = nil, ferr
		}
	}

	c.mu.Lock()
	if _, mine := w.inflight[t]; !mine || t.inflightOn != w || t.attempts != attempt {
		// Stale attempt: a death re-scatter (or settlement) already took
		// the cell away. A successful result is still valid — the cell
		// is deterministic and content-addressed — so use it, but count
		// it as a duplicate, not as fresh scheduler work: the cell's
		// duration histogram and the worker's live accounting were (or
		// will be) settled by the current attempt, and settleLocked's
		// guard keeps this late landing from double-observing them.
		if err == nil {
			c.m.cellsDuplicate.Inc()
			if !t.settled {
				w.done++
				if resp.Cached {
					c.m.cellsRemoteCached.Inc()
				}
				c.settleLocked(t, resp.Result, nil)
				c.maybeSyncTraceLocked(w, resp)
			}
		}
		c.dispatchLocked()
		c.mu.Unlock()
		return
	}
	delete(w.inflight, t)
	t.inflightOn = nil

	var locals []*task
	switch {
	case err == nil:
		w.lastBeat = time.Now() // a responsive worker is a live worker
		w.done++
		c.breakerSuccessLocked(w)
		if resp.Cached {
			c.m.cellsRemoteCached.Inc()
		}
		c.settleLocked(t, resp.Result, nil)
		c.maybeSyncTraceLocked(w, resp)
	case t.ctx.Err() != nil:
		c.settleLocked(t, nil, t.ctx.Err())
	case errors.Is(err, ErrKeyMismatch):
		w.quarantined = true
		c.m.workersQuarantined.Inc()
		c.logger.Warn("cluster: worker quarantined (cell key mismatch — launched with different options?)",
			"worker", w.id, "url", w.url, "key", shortKey(t.spec.Key))
		if !c.assignLocked(t, w.id) {
			locals = append(locals, t)
			c.m.cellsLocal.Inc()
		}
	default:
		w.failed++
		locals = append(locals, c.breakerFailureLocked(w)...)
		if t.attempts >= c.cfg.MaxAttempts {
			c.settleLocked(t, nil, fmt.Errorf("cluster: cell %s failed after %d attempts: %w",
				shortKey(t.spec.Key), t.attempts, err))
		} else {
			delay := c.backoff(t.attempts)
			c.m.cellsRetried.Inc()
			c.logger.Debug("cluster: cell attempt failed; backing off",
				"worker", w.id, "key", shortKey(t.spec.Key), "attempt", t.attempts, "delay", delay, "err", err)
			time.AfterFunc(delay, func() { c.requeue(t) })
		}
	}
	c.dispatchLocked()
	c.mu.Unlock()
	c.runLocals(locals)
}

// requeue re-enters a cell after its retry backoff, preferring a worker
// other than the one that just failed it.
func (c *Coordinator) requeue(t *task) {
	c.mu.Lock()
	if t.settled {
		c.mu.Unlock()
		return
	}
	if err := t.ctx.Err(); err != nil {
		c.settleLocked(t, nil, err)
		c.mu.Unlock()
		return
	}
	if !c.assignLocked(t, t.lastWorker) {
		c.mu.Unlock()
		c.m.cellsLocal.Inc()
		c.runLocal(t)
		return
	}
	c.dispatchLocked()
	c.mu.Unlock()
}

// runLocal executes a cell on the coordinator's own scheduler and
// settles it. Events are re-guarded so nothing is emitted after a
// concurrent settlement (cancellation) released the engine, and the
// run itself is cancelled if something else — a late remote result —
// settles the task first.
func (c *Coordinator) runLocal(t *task) {
	ctx, cancel := context.WithCancel(t.ctx)
	defer cancel()
	c.mu.Lock()
	if t.settled {
		c.mu.Unlock()
		return
	}
	t.localCancel = cancel
	c.mu.Unlock()
	res, err := c.cfg.Local.Schedule(ctx, t.spec, func(ev engine.Event) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if t.settled {
			return
		}
		if ev.Kind == engine.RunStarted {
			if t.started {
				return
			}
			t.started = true
		}
		t.emit(ev)
	})
	c.mu.Lock()
	t.localCancel = nil
	c.settleLocked(t, res, err)
	c.mu.Unlock()
}

func (c *Coordinator) runLocals(tasks []*task) {
	for _, t := range tasks {
		go c.runLocal(t)
	}
}

// retireLocked removes a worker from service and returns the tasks it
// held; callers re-scatter them.
func (c *Coordinator) retireLocked(w *worker) []*task {
	if c.byURL[w.url] == w {
		delete(c.byURL, w.url)
	}
	w.alive = false
	var orphans []*task
	for t, cancel := range w.inflight {
		cancel()
		t.inflightOn = nil
		orphans = append(orphans, t)
		delete(w.inflight, t)
	}
	for _, t := range w.queue {
		t.queuedOn = nil
		orphans = append(orphans, t)
	}
	w.queue = nil
	return orphans
}

// rescatterLocked reassigns orphaned tasks, returning the ones that
// must run locally (no live workers). Callers pass those to runLocals
// outside the lock.
func (c *Coordinator) rescatterLocked(orphans []*task) []*task {
	var locals []*task
	for _, t := range orphans {
		if t.settled {
			continue
		}
		c.m.cellsRescattered.Inc()
		if !c.assignLocked(t, "") {
			locals = append(locals, t)
			c.m.cellsLocal.Inc()
		}
	}
	return locals
}

// monitor is the liveness loop: every heartbeat interval it reaps
// workers that have missed too many beats and re-scatters their cells.
func (c *Coordinator) monitor() {
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.reap()
		}
	}
}

// reap declares workers dead after HeartbeatMisses silent intervals and
// re-scatters everything they held.
func (c *Coordinator) reap() {
	cutoff := time.Now().Add(-time.Duration(c.cfg.HeartbeatMisses) * c.cfg.HeartbeatInterval)
	c.mu.Lock()
	var orphans []*task
	for _, w := range c.workers {
		if !w.alive || w.lastBeat.After(cutoff) {
			continue
		}
		held := c.retireLocked(w)
		orphans = append(orphans, held...)
		c.m.workersLost.Inc()
		c.logger.Warn("cluster: worker dead (missed heartbeats); re-scattering its cells",
			"worker", w.id, "url", w.url, "orphans", len(held))
	}
	locals := c.rescatterLocked(orphans)
	c.dispatchLocked()
	c.mu.Unlock()
	c.runLocals(locals)
}

// backoff returns the jittered exponential delay before attempt n+1.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBaseDelay << (attempt - 1)
	if d > c.cfg.RetryMaxDelay || d <= 0 {
		d = c.cfg.RetryMaxDelay
	}
	// Half deterministic, half uniform jitter: retries from one burst
	// spread out instead of thundering back together.
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// postCell performs one cell dispatch over HTTP.
func (c *Coordinator) postCell(ctx context.Context, baseURL string, spec engine.RunSpec) (*CellResponse, error) {
	if err := c.cfg.Fault.Point("cluster.cell.post"); err != nil {
		return nil, err
	}
	creq := CellRequest{Workload: spec.Workload, Config: spec.Config, Key: spec.Key}
	if c.cfg.Store != nil && c.cfg.SelfURL != "" {
		if tk := store.ForTrace(spec.Workload, c.cfg.Workload); c.cfg.Store.HasTrace(tk) {
			creq.TraceFrom = c.cfg.SelfURL
			creq.TraceKey = tk
		}
	}
	body, err := json.Marshal(creq)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding cell: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var cresp CellResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&cresp); err != nil {
			return nil, fmt.Errorf("cluster: decoding cell response: %w", err)
		}
		if cresp.Result == nil {
			return nil, fmt.Errorf("cluster: cell response carries no result")
		}
		if cresp.Key != "" && cresp.Key != spec.Key {
			return nil, fmt.Errorf("cluster: cell response key %s does not match %s",
				shortKey(cresp.Key), shortKey(spec.Key))
		}
		return &cresp, nil
	case http.StatusConflict:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("%w: %s", ErrKeyMismatch, bytes.TrimSpace(msg))
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("cluster: worker answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
}

// maybeSyncTraceLocked pulls a trace artifact the worker holds and the
// coordinator's store is missing, in the background, at most one pull
// per key at a time. Sync is strictly by content address: a key that
// exists is never re-fetched, and a fetched file is validated before it
// is published.
func (c *Coordinator) maybeSyncTraceLocked(w *worker, resp *CellResponse) {
	if c.cfg.Store == nil || resp.TraceKey == "" || c.syncing[resp.TraceKey] {
		return
	}
	if c.cfg.Store.HasTrace(resp.TraceKey) {
		return
	}
	c.syncing[resp.TraceKey] = true
	go c.pullTrace(w.url, resp.TraceKey)
}

// pullTrace fetches one artifact from a worker's store tier.
func (c *Coordinator) pullTrace(baseURL, key string) {
	defer func() {
		c.mu.Lock()
		delete(c.syncing, key)
		c.mu.Unlock()
	}()
	if err := c.cfg.Fault.Point("cluster.trace.pull"); err != nil {
		c.logger.Debug("cluster: trace pull failed", "key", shortKey(key), "err", err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/store/traces/"+key, nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.logger.Debug("cluster: trace pull failed", "key", shortKey(key), "err", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	n, err := c.cfg.Store.PutTraceRaw(key, resp.Body)
	if err != nil {
		c.logger.Warn("cluster: pulled trace artifact rejected", "key", shortKey(key), "err", err)
		return
	}
	c.m.artifactsSynced.Inc()
	c.m.artifactSyncBytes.Add(uint64(n))
	c.logger.Info("cluster: trace artifact synced", "key", shortKey(key), "bytes", n, "from", baseURL)
}

// shortKey abbreviates a content address for logs and errors.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
