package sim

// Differential test for the open-addressed generation table against the
// pre-rewrite map[uint64]*genState tracker, kept verbatim as the
// executable specification. Random access/remove/flush interleavings must
// score identical density histograms and oracle counts.

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/stats"
)

// refGenTracker is the old map-backed tracker.
type refGenTracker struct {
	geo  mem.Geometry
	live map[uint64]*refGenState
}

type refGenState struct {
	accessed mem.Pattern
	missed   mem.Pattern
	measured bool
}

func newRefGenTracker(geo mem.Geometry) *refGenTracker {
	return &refGenTracker{geo: geo, live: make(map[uint64]*refGenState)}
}

func (t *refGenTracker) access(a mem.Addr, miss, warm bool) {
	tag := t.geo.RegionTag(a)
	g := t.live[tag]
	if g == nil {
		w := t.geo.BlocksPerRegion()
		g = &refGenState{accessed: mem.NewPattern(w), missed: mem.NewPattern(w)}
		t.live[tag] = g
	}
	off := t.geo.RegionOffset(a)
	g.accessed.Set(off)
	if miss && warm {
		g.missed.Set(off)
		g.measured = true
	}
}

func (t *refGenTracker) remove(a mem.Addr, warm bool, density *stats.Histogram, oracle *uint64) {
	tag := t.geo.RegionTag(a)
	g := t.live[tag]
	if g == nil {
		return
	}
	if !g.accessed.Test(t.geo.RegionOffset(a)) {
		return
	}
	delete(t.live, tag)
	t.score(g, warm, density, oracle)
}

func (t *refGenTracker) flush(density *stats.Histogram, oracle *uint64) {
	for tag, g := range t.live {
		delete(t.live, tag)
		t.score(g, true, density, oracle)
	}
}

func (t *refGenTracker) score(g *refGenState, warm bool, density *stats.Histogram, oracle *uint64) {
	if !warm || !g.measured {
		return
	}
	n := uint64(g.missed.PopCount())
	if n == 0 {
		return
	}
	density.Observe(n, n)
	*oracle++
}

func histEqual(t *testing.T, a, b *stats.Histogram) bool {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(aj) == string(bj)
}

func TestGenTrackerMatchesMapReference(t *testing.T) {
	geos := []mem.Geometry{
		mem.DefaultGeometry(),
		mem.MustGeometry(64, 512),
		mem.MustGeometry(256, 8192),
	}
	for gi, geo := range geos {
		tracker := newGenTracker(geo)
		ref := newRefGenTracker(geo)
		gotDensity, wantDensity := newDensityHistogram(), newDensityHistogram()
		var gotOracle, wantOracle uint64
		rng := rand.New(rand.NewSource(int64(7 + gi)))
		// Enough regions to force several table growth/shrink cycles and
		// constant slot reuse through backward-shift deletion.
		const regions = 3000
		for op := 0; op < 200_000; op++ {
			region := rng.Intn(regions)
			a := mem.Addr(region)*mem.Addr(geo.RegionSize()) +
				mem.Addr(rng.Intn(geo.BlocksPerRegion()))*mem.Addr(geo.BlockSize())
			warm := op > 20_000
			if rng.Intn(4) == 0 {
				tracker.remove(a, warm, gotDensity, &gotOracle)
				ref.remove(a, warm, wantDensity, &wantOracle)
			} else {
				miss := rng.Intn(3) == 0
				tracker.access(a, miss, warm)
				ref.access(a, miss, warm)
			}
			if tracker.live() != len(ref.live) {
				t.Fatalf("geo %d op %d: live %d, reference %d", gi, op, tracker.live(), len(ref.live))
			}
		}
		tracker.flush(gotDensity, &gotOracle)
		ref.flush(wantDensity, &wantOracle)
		if gotOracle != wantOracle {
			t.Fatalf("geo %d: oracle %d, reference %d", gi, gotOracle, wantOracle)
		}
		if !histEqual(t, gotDensity, wantDensity) {
			t.Fatalf("geo %d: density histograms differ:\n got  %v\n want %v", gi, gotDensity, wantDensity)
		}
		if tracker.live() != 0 {
			t.Fatalf("geo %d: %d generations live after flush", gi, tracker.live())
		}
	}
}
