package obs

import (
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs ever created.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("workers", "Worker goroutines.")
	g.Set(4)
	g.Add(-1)
	r.CounterFunc("engine_runs_total", "Runs sampled at scrape.", func() uint64 { return 7 })
	r.GaugeFunc("queue_depth", "Queue depth sampled at scrape.", func() float64 { return 2 })

	out := render(t, r)
	for _, want := range []string{
		"# HELP jobs_total Jobs ever created.\n# TYPE jobs_total counter\njobs_total 3\n",
		"# TYPE workers gauge\nworkers 3\n",
		"engine_runs_total 7\n",
		"queue_depth 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("events_total", "Events by kind.", "kind")
	v.With("run-started").Add(5)
	v.With(`we"ird\nasty` + "\n").Inc()

	out := render(t, r)
	if !strings.Contains(out, `events_total{kind="run-started"} 5`) {
		t.Errorf("missing plain labelled series:\n%s", out)
	}
	if !strings.Contains(out, `events_total{kind="we\"ird\\nasty\n"} 1`) {
		t.Errorf("missing escaped labelled series:\n%s", out)
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_seconds", "Duration.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`dur_seconds_bucket{le="0.1"} 1`,
		`dur_seconds_bucket{le="1"} 3`,
		`dur_seconds_bucket{le="10"} 4`,
		`dur_seconds_bucket{le="+Inf"} 5`,
		`dur_seconds_sum 56.05`,
		`dur_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}

func TestHistogramVecRendering(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("phase_seconds", "Per-phase time.", []float64{1}, "phase")
	v.With("gap").Observe(0.5)
	v.With("window").Observe(2)
	out := render(t, r)
	for _, want := range []string{
		`phase_seconds_bucket{phase="gap",le="1"} 1`,
		`phase_seconds_bucket{phase="gap",le="+Inf"} 1`,
		`phase_seconds_bucket{phase="window",le="1"} 0`,
		`phase_seconds_sum{phase="window"} 2`,
		`phase_seconds_count{phase="gap"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Registry)
	}{
		{"bad name", func(r *Registry) { r.Counter("1bad", "") }},
		{"bad label", func(r *Registry) { r.CounterVec("ok_total", "", "bad-label") }},
		{"duplicate", func(r *Registry) { r.Counter("dup_total", ""); r.Counter("dup_total", "") }},
		{"no buckets", func(r *Registry) { r.Histogram("h_seconds", "", nil) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h_seconds", "", []float64{2, 1}) }},
		{"le label", func(r *Registry) { r.HistogramVec("h_seconds", "", []float64{1}, "le") }},
		{"wrong arity", func(r *Registry) { r.CounterVec("v_total", "", "a").With("x", "y") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestRecordPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", ExpBuckets(0.001, 10, 6))
	child := r.CounterVec("v_total", "", "kind").With("x") // hoisted once, recorded through

	if n := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.Set(9)
		h.Observe(0.42)
		child.Inc()
	}); n != 0 {
		t.Errorf("record path allocates %.1f allocs/op, want 0", n)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		frag string
	}{
		{"no type", "foo_total 1\n", "no preceding # TYPE"},
		{"bad name", "# TYPE 2bad counter\n", "invalid metric name"},
		{"bad value", "# TYPE foo counter\nfoo pickle\n", "unparseable value"},
		{"duplicate series", "# TYPE foo counter\nfoo 1\nfoo 2\n", "duplicate series"},
		{"duplicate type", "# TYPE foo counter\n# TYPE foo counter\n", "duplicate # TYPE"},
		{"unknown type", "# TYPE foo widget\n", "unknown type"},
		{"bucket no le", "# TYPE h histogram\nh_bucket 1\n", "without a le label"},
		{"bucket bad le", "# TYPE h histogram\nh_bucket{le=\"x\"} 1\n", "unparseable le"},
		{"no inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"unterminated labels", "# TYPE foo counter\nfoo{a=\"b\" 1\n", "unterminated"},
		{"bad label name", "# TYPE foo counter\nfoo{1a=\"b\"} 1\n", "invalid label name"},
		{"dup reordered labels", "# TYPE foo counter\nfoo{a=\"1\",b=\"2\"} 1\nfoo{b=\"2\",a=\"1\"} 1\n", "duplicate series"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckExposition([]byte(tc.in))
			if err == nil {
				t.Fatalf("CheckExposition accepted:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestCheckExpositionAccepts(t *testing.T) {
	in := strings.Join([]string{
		"# HELP up Whether the daemon is up.",
		"# TYPE up gauge",
		"up 1",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.1"} 0`,
		`h_seconds_bucket{le="+Inf"} 2`,
		"h_seconds_sum 5.5",
		"h_seconds_count 2",
		"# a free-form comment",
		"# TYPE neg gauge",
		"neg -3.5",
		"",
	}, "\n")
	if err := CheckExposition([]byte(in)); err != nil {
		t.Errorf("CheckExposition rejected valid input: %v", err)
	}
}
