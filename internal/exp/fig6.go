package exp

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
)

// Fig6Row is one (group, index scheme) bar of Figure 6.
type Fig6Row struct {
	Group    string
	Index    core.IndexKind
	Coverage sim.Coverage
}

// Fig6Result is the Figure 6 dataset.
type Fig6Result struct {
	Rows []Fig6Row
}

func fig6Key(kind core.IndexKind) string { return "idx/" + kind.String() }

// Fig6Plan declares the Figure 6 grid: one unbounded-PHT SMS run per
// prediction index, plus the shared baseline.
func Fig6Plan(o Options) engine.Plan {
	p := basePlan("fig6", o)
	for _, kind := range core.AllIndexKinds() {
		p = p.WithVariant(fig6Key(kind), sim.Config{
			Coherence:      o.MemorySystem(64),
			PrefetcherName: "sms",
			SMS:            core.Config{Index: kind, PHTEntries: -1},
		})
	}
	return p
}

// Fig6 reproduces Figure 6: prediction-index comparison (Address,
// PC+address, PC, PC+offset) with an unbounded PHT, reporting L1 read-miss
// coverage, uncovered misses, and overpredictions per application group.
func Fig6(ctx context.Context, s *Session) (*Fig6Result, error) {
	names := WorkloadNames()
	kinds := core.AllIndexKinds()
	grid, err := s.Execute(ctx, Fig6Plan(s.Options()))
	if err != nil {
		return nil, err
	}

	// covs[name][kind]
	covs := make(map[string][]sim.Coverage, len(names))
	for _, name := range names {
		base := grid.Baseline(name)
		cs := make([]sim.Coverage, len(kinds))
		for ki, kind := range kinds {
			cs[ki] = grid.Result(name, fig6Key(kind)).L1Coverage(base)
		}
		covs[name] = cs
	}

	res := &Fig6Result{}
	for _, g := range GroupNames() {
		for ki, kind := range kinds {
			res.Rows = append(res.Rows, Fig6Row{
				Group: g,
				Index: kind,
				Coverage: sim.Coverage{
					Covered:       meanOver(names, func(n string) float64 { return covs[n][ki].Covered })[g],
					Uncovered:     meanOver(names, func(n string) float64 { return covs[n][ki].Uncovered })[g],
					Overpredicted: meanOver(names, func(n string) float64 { return covs[n][ki].Overpredicted })[g],
				},
			})
		}
	}
	return res, nil
}

// Render formats the dataset as the Figure 6 bars.
func (r *Fig6Result) Render() string {
	t := NewTable("Figure 6: index comparison (unbounded PHT)",
		"group", "index", "coverage", "uncovered", "overpredictions")
	t.SetCaption("L1 read misses relative to the baseline. Coverage+uncovered ≈ 100%; pollution appears as extra uncovered misses.")
	for _, row := range r.Rows {
		t.AddRow(row.Group, row.Index.String(),
			Pct(row.Coverage.Covered), Pct(row.Coverage.Uncovered), Pct(row.Coverage.Overpredicted))
	}
	return t.Render()
}
