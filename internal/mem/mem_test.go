package mem

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryValidation(t *testing.T) {
	cases := []struct {
		block, region int
		ok            bool
	}{
		{64, 2048, true},
		{64, 64, true},
		{64, 8192, true},
		{32, 128, true},
		{0, 2048, false},
		{63, 2048, false},
		{64, 0, false},
		{64, 100, false},
		{128, 64, false}, // region smaller than block
		{-64, 2048, false},
		{64, -2048, false},
	}
	for _, c := range cases {
		g, err := NewGeometry(c.block, c.region)
		if c.ok && err != nil {
			t.Errorf("NewGeometry(%d,%d): unexpected error %v", c.block, c.region, err)
		}
		if !c.ok && err == nil {
			t.Errorf("NewGeometry(%d,%d): expected error, got %v", c.block, c.region, g)
		}
	}
}

func TestGeometryAccessors(t *testing.T) {
	g := MustGeometry(64, 2048)
	if got := g.BlockSize(); got != 64 {
		t.Errorf("BlockSize = %d, want 64", got)
	}
	if got := g.RegionSize(); got != 2048 {
		t.Errorf("RegionSize = %d, want 2048", got)
	}
	if got := g.BlocksPerRegion(); got != 32 {
		t.Errorf("BlocksPerRegion = %d, want 32", got)
	}
}

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if g.BlockSize() != DefaultBlockSize || g.RegionSize() != DefaultRegionSize {
		t.Fatalf("DefaultGeometry = %v", g)
	}
}

func TestAddressDecomposition(t *testing.T) {
	g := MustGeometry(64, 2048)
	a := Addr(0x12345) // 0x12345 = 74565
	if got := g.BlockAddr(a); got != 0x12340 {
		t.Errorf("BlockAddr = %#x, want 0x12340", got)
	}
	if got := g.BlockNumber(a); got != 0x12345>>6 {
		t.Errorf("BlockNumber = %#x", got)
	}
	if got := g.RegionBase(a); got != 0x12000 {
		t.Errorf("RegionBase = %#x, want 0x12000", got)
	}
	if got := g.RegionTag(a); got != 0x12345>>11 {
		t.Errorf("RegionTag = %#x", got)
	}
	// offset = (addr >> 6) & 31
	if got := g.RegionOffset(a); got != int((0x12345>>6)&31) {
		t.Errorf("RegionOffset = %d", got)
	}
}

func TestBlockOfRegionRoundTrip(t *testing.T) {
	g := MustGeometry(64, 2048)
	f := func(a Addr) bool {
		base := g.RegionBase(a)
		off := g.RegionOffset(a)
		return g.BlockOfRegion(base, off) == g.BlockAddr(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionOffsetRange(t *testing.T) {
	for _, rs := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		g := MustGeometry(64, rs)
		f := func(a Addr) bool {
			off := g.RegionOffset(a)
			return off >= 0 && off < g.BlocksPerRegion()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("region size %d: %v", rs, err)
		}
	}
}

func TestGeometryString(t *testing.T) {
	s := DefaultGeometry().String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
