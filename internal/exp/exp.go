// Package exp contains one runner per figure/table in the paper's
// evaluation (§4). Each runner executes the required simulations over the
// synthetic workload suite and renders the same rows/series the paper
// reports, so `smsexp fig11` (for example) regenerates the paper's
// Figure 11 as a text table.
//
// The runners share a Session, which caches simulation results: many
// figures reuse the same baseline runs.
//
// Runners select prefetchers by registry name (sim.Config.PrefetcherName:
// "sms", "ls", "ghb", ...), so schemes registered via sim.Register — like
// the next-line series in the Fig. 8 runner — plug in without touching
// the simulator.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options scope the simulation effort.
type Options struct {
	// CPUs is the simulated processor count.
	CPUs int
	// Seed selects the workload generation seed.
	Seed int64
	// Length is the number of accesses per workload trace (half is
	// warm-up, per the paper's methodology).
	Length uint64
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
}

// DefaultOptions runs full-length experiments.
func DefaultOptions() Options {
	return Options{CPUs: 4, Seed: 1, Length: 1_200_000}
}

// QuickOptions runs abbreviated experiments (benches, smoke tests).
func QuickOptions() Options {
	return Options{CPUs: 2, Seed: 1, Length: 200_000}
}

func (o Options) normalized() Options {
	if o.CPUs <= 0 {
		o.CPUs = 4
	}
	if o.Length == 0 {
		o.Length = DefaultOptions().Length
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// MemorySystem returns the scaled memory system used by all experiments
// (see DESIGN.md: capacity ratios compressed from the paper's Table 1),
// with a configurable block size for the Fig. 4 sweep.
func (o Options) MemorySystem(blockSize int) coherence.Config {
	return coherence.Config{
		CPUs: o.CPUs,
		L1:   cache.Config{Size: 32 << 10, Assoc: 2, BlockSize: blockSize},
		L2:   cache.Config{Size: 1 << 20, Assoc: 8, BlockSize: blockSize},
	}
}

// Session runs and caches simulations.
type Session struct {
	opts Options

	mu    sync.Mutex
	cache map[string]*sim.Result
	sem   chan struct{}
}

// NewSession builds a session with the given options.
func NewSession(opts Options) *Session {
	opts = opts.normalized()
	return &Session{
		opts:  opts,
		cache: make(map[string]*sim.Result),
		sem:   make(chan struct{}, opts.Parallel),
	}
}

// Options returns the session's resolved options.
func (s *Session) Options() Options { return s.opts }

// runKey builds the memoization key for (workload, sim config).
func runKey(name string, cfg sim.Config) string {
	return fmt.Sprintf("%s|%+v", name, cfg)
}

// Run simulates workload name under cfg (warm-up set to half the trace),
// caching the result.
func (s *Session) Run(name string, cfg sim.Config) (*sim.Result, error) {
	cfg.WarmupAccesses = s.opts.Length / 2
	key := runKey(name, cfg)

	s.mu.Lock()
	if res, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return res, nil
	}
	s.mu.Unlock()

	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// Recheck after acquiring the semaphore: a concurrent caller may
	// have completed the same run.
	s.mu.Lock()
	if res, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return res, nil
	}
	s.mu.Unlock()

	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", name, err)
	}
	src := w.Make(workload.Config{CPUs: s.opts.CPUs, Seed: s.opts.Seed, Length: s.opts.Length})
	res := runner.Run(src)

	s.mu.Lock()
	s.cache[key] = res
	s.mu.Unlock()
	return res, nil
}

// Baseline runs workload name with no prefetcher on the standard memory
// system.
func (s *Session) Baseline(name string) (*sim.Result, error) {
	return s.Run(name, sim.Config{Coherence: s.opts.MemorySystem(64)})
}

// parallelOver runs fn for each name concurrently, collecting the first
// error. fn is responsible for storing its own results (indexed by i).
func parallelOver(names []string, fn func(i int, name string) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = fn(i, name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// GroupNames returns the four paper groups.
func GroupNames() []string { return workload.Groups() }

// WorkloadNames returns all eleven application names in paper order.
func WorkloadNames() []string {
	var out []string
	for _, w := range workload.All() {
		out = append(out, w.Name)
	}
	return out
}

// groupOf returns the paper group of a workload name.
func groupOf(name string) string {
	w, err := workload.ByName(name)
	if err != nil {
		return ""
	}
	return w.Group
}

// meanOver averages value over the members of each group, returning
// group→mean. Missing groups map to 0.
func meanOver(names []string, value func(name string) float64) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, n := range names {
		g := groupOf(n)
		sums[g] += value(n)
		counts[g]++
	}
	out := map[string]float64{}
	for g, s := range sums {
		out[g] = s / float64(counts[g])
	}
	return out
}
