package exp

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/ghb"
	"repro/internal/sim"
)

// Fig11Variant labels the Figure 11 prefetcher configurations.
type Fig11Variant string

// Figure 11 configurations.
const (
	VariantGHB256 Fig11Variant = "GHB-256"
	VariantGHB16k Fig11Variant = "GHB-16k"
	VariantSMS    Fig11Variant = "SMS"
)

// fig11Variants lists the figure's series in paper order.
var fig11Variants = []Fig11Variant{VariantGHB256, VariantGHB16k, VariantSMS}

// Fig11Row is one (workload, variant) off-chip coverage bar.
type Fig11Row struct {
	Workload string
	Variant  Fig11Variant
	Coverage sim.Coverage
	// Traffic is off-chip transfers relative to the baseline (>1:
	// prefetching added bandwidth demand).
	Traffic float64
}

// Fig11Result is the Figure 11 dataset.
type Fig11Result struct {
	Rows []Fig11Row
}

func fig11Config(o Options, v Fig11Variant) sim.Config {
	cfg := sim.Config{Coherence: o.MemorySystem(64)}
	switch v {
	case VariantGHB256:
		cfg.PrefetcherName = "ghb"
		cfg.GHB = ghb.Config{HistoryEntries: 256}
	case VariantGHB16k:
		cfg.PrefetcherName = "ghb"
		cfg.GHB = ghb.Config{HistoryEntries: 16384}
	case VariantSMS:
		cfg.PrefetcherName = "sms"
		// Paper-default practical SMS: zero core.Config.
	}
	return cfg
}

// Fig11Plan declares the Figure 11 grid: practical SMS against two GHB
// sizings, plus the shared baseline.
func Fig11Plan(o Options) engine.Plan {
	p := basePlan("fig11", o)
	for _, v := range fig11Variants {
		p = p.WithVariant(string(v), fig11Config(o, v))
	}
	return p
}

// Fig11 reproduces Figure 11: the practical SMS configuration (32-entry
// filter, 64-entry accumulation table, 2 kB regions, 16k-entry 16-way PHT)
// against PC/DC GHB with 256- and 16k-entry history buffers, on off-chip
// (L2) read misses.
func Fig11(ctx context.Context, s *Session) (*Fig11Result, error) {
	names := WorkloadNames()
	grid, err := s.Execute(ctx, Fig11Plan(s.Options()))
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for _, name := range names {
		base := grid.Baseline(name)
		for _, v := range fig11Variants {
			r := grid.Result(name, string(v))
			res.Rows = append(res.Rows, Fig11Row{
				Workload: name,
				Variant:  v,
				Coverage: r.OffChipCoverage(base),
				Traffic:  r.BandwidthOverhead(base, 64, 64),
			})
		}
	}
	return res, nil
}

// Render formats the dataset as the Figure 11 bars.
func (r *Fig11Result) Render() string {
	t := NewTable("Figure 11: practical SMS vs GHB (off-chip read misses)",
		"workload", "variant", "coverage", "uncovered", "overpredictions", "traffic")
	t.SetCaption("SMS: 32/64 AGT, 2kB regions, 16k-entry 16-way PHT. GHB: PC/DC with 256- or 16k-entry history. Traffic: off-chip transfers vs baseline.")
	for _, row := range r.Rows {
		t.AddRow(row.Workload, string(row.Variant),
			Pct(row.Coverage.Covered), Pct(row.Coverage.Uncovered), Pct(row.Coverage.Overpredicted),
			fmt.Sprintf("%.2fx", row.Traffic))
	}
	return t.Render()
}
