package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Value after reset = %d", c.Value())
	}
}

func TestRatioPercent(t *testing.T) {
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio = %g", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio div0 = %g", got)
	}
	if got := Percent(1, 4); got != 25 {
		t.Errorf("Percent = %g", got)
	}
}

func TestMeanStdDevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.001 {
		t.Errorf("StdDev = %g, want ~2.138", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Errorf("Median = %g, want 4.5", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %g, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || g != 2 {
		t.Errorf("GeoMean = %g, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean accepted zero")
	}
	if g, err := GeoMean(nil); err != nil || g != 0 {
		t.Errorf("GeoMean(nil) = %g, %v", g, err)
	}
}

func TestMeanCI95(t *testing.T) {
	iv := MeanCI95([]float64{10, 10, 10, 10})
	if iv.Mean != 10 || iv.Half != 0 {
		t.Errorf("constant samples CI = %v", iv)
	}
	iv = MeanCI95([]float64{9, 11})
	// StdDev = sqrt(2); SE = 1; t(1) = 12.706
	if math.Abs(iv.Half-12.706) > 0.001 {
		t.Errorf("CI half = %g, want 12.706", iv.Half)
	}
	if !iv.Contains(10) {
		t.Error("interval should contain the mean")
	}
	if iv := MeanCI95([]float64{5}); !math.IsInf(iv.Half, 1) {
		t.Errorf("single-sample CI should be infinite, got %v", iv)
	}
	if iv := MeanCI95(nil); iv.Mean != 0 {
		t.Errorf("empty CI = %v", iv)
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 60; df++ {
		v := tCritical95(df)
		if v > prev {
			t.Fatalf("t-critical not non-increasing at df=%d: %g > %g", df, v, prev)
		}
		prev = v
	}
	if tCritical95(1000) != 1.96 {
		t.Error("large-df critical value should be 1.96")
	}
}

func TestPairedSpeedupCI95(t *testing.T) {
	base := []float64{1, 1, 1, 1, 1}
	enh := []float64{1.2, 1.2, 1.2, 1.2, 1.2}
	iv, err := PairedSpeedupCI95(base, enh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Mean-1.2) > 1e-12 || iv.Half != 0 {
		t.Errorf("speedup = %v, want 1.200 ± 0", iv)
	}
	if _, err := PairedSpeedupCI95([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedSpeedupCI95(nil, nil); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := PairedSpeedupCI95([]float64{0}, []float64{1}); err == nil {
		t.Error("zero base accepted")
	}
}

func TestPairedSpeedupRatioOfMeans(t *testing.T) {
	// Point estimate must be ratio of aggregate means, not mean of ratios.
	base := []float64{1, 3}
	enh := []float64{2, 3}
	iv, err := PairedSpeedupCI95(base, enh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Mean-5.0/4.0) > 1e-12 {
		t.Errorf("speedup mean = %g, want 1.25", iv.Mean)
	}
}

func TestHistogramFig5Buckets(t *testing.T) {
	h := MustHistogram(1, 3, 7, 15, 23, 31)
	if h.Buckets() != 7 {
		t.Fatalf("Buckets = %d, want 7", h.Buckets())
	}
	labels := []string{"0-1", "2-3", "4-7", "8-15", "16-23", "24-31", "32+"}
	for i, want := range labels {
		if got := h.BucketLabel(i); got != want {
			t.Errorf("BucketLabel(%d) = %q, want %q", i, got, want)
		}
	}
	h.Observe(1, 10)
	h.Observe(2, 5)
	h.Observe(7, 5)
	h.Observe(32, 20)
	h.Observe(100, 2)
	if h.Total() != 42 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(0) != 10 || h.Count(1) != 5 || h.Count(2) != 5 || h.Count(6) != 22 {
		t.Errorf("counts = %v", []uint64{h.Count(0), h.Count(1), h.Count(2), h.Count(6)})
	}
	if got := h.Fraction(0); math.Abs(got-10.0/42.0) > 1e-12 {
		t.Errorf("Fraction(0) = %g", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram(3, 3); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewHistogram(3, 1); err == nil {
		t.Error("descending bounds accepted")
	}
}

func TestHistogramTotalInvariant(t *testing.T) {
	f := func(vals []uint8) bool {
		h := MustHistogram(1, 3, 7, 15, 23, 31)
		for _, v := range vals {
			h.Observe(uint64(v), 1)
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.Count(i)
		}
		return sum == h.Total() && sum == uint64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Mean: 1.37, Half: 0.05}
	if iv.String() != "1.370 ± 0.050" {
		t.Errorf("String = %q", iv.String())
	}
}
