package sim_test

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"

	_ "repro/internal/nextline"
)

func TestSamplingConfigCanonical(t *testing.T) {
	// Disabled configs normalize to the zero value regardless of what
	// the other fields say, so every spelling of exact mode hashes
	// identically.
	off := sim.SamplingConfig{Confidence: 0.99, WarmupRecords: 7}
	if got := off.Canonical(); got != (sim.SamplingConfig{}) {
		t.Errorf("disabled config canonicalized to %+v, want zero", got)
	}
	// Enabled configs resolve defaults and are idempotent.
	on := sim.SamplingConfig{WindowRecords: 1000}
	c := on.Canonical()
	want := sim.SamplingConfig{
		WindowRecords:   1000,
		IntervalRecords: sim.DefaultSamplingIntervalFactor * 1000,
		WarmupRecords:   sim.DefaultSamplingWarmupFactor * 1000,
		Confidence:      sim.DefaultSamplingConfidence,
	}
	if c != want {
		t.Errorf("Canonical = %+v, want %+v", c, want)
	}
	if c.Canonical() != c {
		t.Error("Canonical not idempotent")
	}
	// And through the full sim.Config canonicalization.
	cfg := sim.Config{Sampling: on}
	if cc := cfg.Canonical(); cc.Sampling != want {
		t.Errorf("Config.Canonical().Sampling = %+v, want %+v", cc.Sampling, want)
	}
}

func TestSamplingConfigValidate(t *testing.T) {
	bad := []sim.SamplingConfig{
		{WindowRecords: 4096, IntervalRecords: 1024}, // window > interval
		{WindowRecords: 1024, Confidence: 1.5},       // confidence out of range
		{WindowRecords: 1024, IntervalRecords: 8192, Confidence: -1},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", sc)
		}
		if _, err := sim.NewRunner(sim.Config{Sampling: sc}); err == nil {
			t.Errorf("NewRunner accepted invalid sampling config %+v", sc)
		}
	}
	if err := (sim.SamplingConfig{}).Validate(); err != nil {
		t.Errorf("zero config should validate: %v", err)
	}
	if err := (sim.SamplingConfig{WindowRecords: 1024}).Validate(); err != nil {
		t.Errorf("defaulted config should validate: %v", err)
	}
}

func TestSampledRejectsInstructionWindows(t *testing.T) {
	_, err := sim.NewRunner(sim.Config{
		WindowInstructions: 4096,
		Sampling:           sim.SamplingConfig{WindowRecords: 1024},
	})
	if err == nil {
		t.Fatal("NewRunner accepted sampling + WindowInstructions")
	}
}

// stripSampling marshals res with the Sampling block removed, so sampled
// and exact runs can be compared on everything else.
func stripSampling(t *testing.T, res *sim.Result) string {
	t.Helper()
	cp := *res
	cp.Sampling = nil
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// The degenerate configuration — one window covering the whole trace —
// must drive every record through the exact per-record path and
// reproduce the exact-mode Result byte for byte.
func TestSampledDegenerateMatchesExact(t *testing.T) {
	const length = 60_000
	wcfg := workload.Config{CPUs: 4, Seed: 3, Length: length}
	w, err := workload.ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Config{WarmupAccesses: length / 2, TrackGenerations: true}
	for _, pf := range sim.Names() {
		t.Run(pf, func(t *testing.T) {
			exact := base
			exact.PrefetcherName = pf
			eres, err := sim.MustNewRunner(exact).RunContext(context.Background(), w.Make(wcfg))
			if err != nil {
				t.Fatal(err)
			}

			sampled := exact
			sampled.Sampling = sim.SamplingConfig{WindowRecords: length, IntervalRecords: length}
			sres, err := sim.MustNewRunner(sampled).RunContext(context.Background(), w.Make(wcfg))
			if err != nil {
				t.Fatal(err)
			}

			if sres.Sampling == nil {
				t.Fatal("sampled run carries no Sampling block")
			}
			if sres.Sampling.MeasuredRecords != length || sres.Sampling.SkippedRecords != 0 {
				t.Errorf("degenerate run measured %d / skipped %d records, want %d / 0",
					sres.Sampling.MeasuredRecords, sres.Sampling.SkippedRecords, length)
			}
			if eres.Sampling != nil {
				t.Error("exact run unexpectedly carries a Sampling block")
			}
			je, js := stripSampling(t, eres), stripSampling(t, sres)
			if je != js {
				t.Fatalf("degenerate sampled Result differs from exact:\nexact:   %s\nsampled: %s", je, js)
			}
		})
	}
}

// nextOnly hides every batching/seeking capability of a source, forcing
// the streamed fast-forward fallback.
type nextOnly struct{ src trace.Source }

func (s nextOnly) Next() (trace.Record, bool) { return s.src.Next() }

// The cold-gap skip must be a pure repositioning: a sampled run over a
// seekable source (in-memory slice, mmap'd v2 file) must produce exactly
// the Result of the streamed fast-forward fallback over the same
// records.
func TestSampledSeekMatchesStreamedFastForward(t *testing.T) {
	const length = 120_000
	wcfg := workload.Config{CPUs: 4, Seed: 5, Length: length}
	w, err := workload.ByName("web-apache")
	if err != nil {
		t.Fatal(err)
	}
	recs := trace.Collect(w.Make(wcfg), 0)
	if uint64(len(recs)) != length {
		t.Fatalf("collected %d records, want %d", len(recs), length)
	}

	path := filepath.Join(t.TempDir(), "capture.smst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := trace.NewV2Writer(f, trace.Header{CPUs: wcfg.CPUs, Workload: "web-apache", BlockRecords: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := sim.Config{
		PrefetcherName: "sms",
		WarmupAccesses: length / 2,
		Sampling: sim.SamplingConfig{
			WindowRecords:   1024,
			IntervalRecords: 12_288,
			WarmupRecords:   3072,
		},
	}

	run := func(src trace.Source) *sim.Result {
		t.Helper()
		res, err := sim.MustNewRunner(cfg).RunContext(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	seek := run(trace.NewSliceSource(recs))
	streamed := run(nextOnly{trace.NewSliceSource(recs)})
	m, err := trace.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mapped := run(m)

	if seek.Sampling == nil || seek.Sampling.SkippedRecords == 0 {
		t.Fatalf("seek run skipped nothing: %+v", seek.Sampling)
	}
	if seek.Sampling.Windows < 2 {
		t.Fatalf("too few sampled windows (%d) for the comparison to mean anything", seek.Sampling.Windows)
	}
	js, jf, jm := resultJSON(t, seek), resultJSON(t, streamed), resultJSON(t, mapped)
	if js != jf {
		t.Fatalf("seek-skip Result differs from streamed fast-forward:\nseek:     %s\nstreamed: %s", js, jf)
	}
	if js != jm {
		t.Fatalf("mmap seek Result differs from in-memory seek:\nslice: %s\nmmap:  %s", js, jm)
	}
}

// Statistical soundness: for every prefetcher and several seeds, the
// sampled run's confidence interval must cover the exact-mode value of
// the same metric — or at least land within a small relative distance of
// it. The tolerance fallback exists because functional warming
// introduces a small systematic bias (prefetch issue is suppressed
// between windows) that no confidence level can absorb; it is part of
// what sampling trades for speed, and the bound keeps it honest.
func TestSampledCICoversExact(t *testing.T) {
	const length = 400_000
	seeds := []int64{1, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	w, err := workload.ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	const relTolerance = 0.10

	for _, pf := range sim.Names() {
		for _, seed := range seeds {
			t.Run(pf, func(t *testing.T) {
				wcfg := workload.Config{CPUs: 4, Seed: seed, Length: length}
				cfg := sim.Config{PrefetcherName: pf, WarmupAccesses: length / 2}

				eres, err := sim.MustNewRunner(cfg).RunContext(context.Background(), w.Make(wcfg))
				if err != nil {
					t.Fatal(err)
				}

				scfg := cfg
				scfg.Sampling = sim.SamplingConfig{
					WindowRecords:   2048,
					IntervalRecords: 16_384,
					WarmupRecords:   8192,
					Confidence:      0.99,
				}
				sres, err := sim.MustNewRunner(scfg).RunContext(context.Background(), w.Make(wcfg))
				if err != nil {
					t.Fatal(err)
				}
				if sres.Sampling == nil || sres.Sampling.Windows < 5 {
					t.Fatalf("sampled run produced %v windows, want >= 5", sres.Sampling)
				}

				checks := []struct {
					metric string
					exact  float64
				}{
					{"l1_read_misses_per_read", eres.L1MissesPerAccess()},
					{"offchip_read_misses_per_read", eres.OffChipMissesPerAccess()},
				}
				for _, c := range checks {
					m, ok := sres.Sampling.Metric(c.metric)
					if !ok {
						t.Fatalf("sampled summary lacks metric %s", c.metric)
					}
					covered := m.Interval().Contains(c.exact)
					rel := math.Abs(m.Mean-c.exact) / math.Max(c.exact, 1e-12)
					if !covered && rel > relTolerance {
						t.Errorf("seed %d, %s: exact %.5f outside sampled %.5f ± %.5f (rel err %.1f%%, %d windows)",
							seed, c.metric, c.exact, m.Mean, m.HalfWidth, 100*rel, sres.Sampling.Windows)
					}
				}
			})
		}
	}
}
