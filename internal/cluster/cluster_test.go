// Cluster integration tests: real coordinator + real worker daemons
// (httptest servers over the full smsd handler stack), exercising
// scatter/gather, byte-identical results, exactly-once execution, work
// stealing, retry/failover, heartbeat death, quarantine and artifact
// sync. External test package: the server imports cluster, so these
// tests import both.
package cluster_test

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/coherence"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
)

// testOpts is the simulation geometry every node in a test cluster
// shares; small enough that a full grid settles in well under a second.
var testOpts = exp.Options{CPUs: 1, Seed: 1, Length: 10_000}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newSession builds a session, optionally store-backed.
func newSession(t *testing.T, dir string, opts exp.Options) *exp.Session {
	t.Helper()
	s := exp.NewSession(opts)
	if dir != "" {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.SetStore(st)
	}
	return s
}

// workerNode is one worker daemon under test.
type workerNode struct {
	session *exp.Session
	ts      *httptest.Server
}

// newWorkerNode spins up a full smsd worker (session + server + HTTP).
func newWorkerNode(t *testing.T, dir string, opts exp.Options) *workerNode {
	t.Helper()
	sess := newSession(t, dir, opts)
	srv, err := server.New(server.Config{Session: sess, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &workerNode{session: sess, ts: ts}
}

// newCoordinator builds a coordinator bound to a fresh session's engine
// (SetScheduler installed) so plans executed through the session
// scatter across whatever the test registers.
func newCoordinator(t *testing.T, dir string, opts exp.Options, cfg cluster.Config) (*exp.Session, *cluster.Coordinator) {
	t.Helper()
	sess := newSession(t, dir, opts)
	cfg.Local = sess.Engine().LocalScheduler()
	if cfg.Store == nil {
		cfg.Store = sess.Store()
	}
	cfg.Workload = sess.Engine().Config().Workload
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	sess.Engine().SetScheduler(c)
	return sess, c
}

// register enrolls a worker URL and returns its id.
func register(t *testing.T, c *cluster.Coordinator, url string, capacity int) string {
	t.Helper()
	resp, err := c.Register(cluster.RegisterRequest{URL: url, Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return resp.WorkerID
}

// beat keeps one worker id alive until the test ends.
func beat(t *testing.T, c *cluster.Coordinator, id string, every time.Duration) {
	t.Helper()
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				c.Heartbeat(id)
			}
		}
	}()
}

func memSys() coherence.Config {
	return coherence.Config{
		CPUs: 1,
		L1:   cache.Config{Size: 32 << 10, Assoc: 2, BlockSize: 64},
		L2:   cache.Config{Size: 256 << 10, Assoc: 8, BlockSize: 64},
	}
}

// testPlan is a 2×2 grid (4 distinct cells).
func testPlan() engine.Plan {
	return engine.Plan{
		Name:      "cluster-test",
		Workloads: []string{"sparse", "oltp-db2"},
		Variants: []engine.Variant{
			{Key: "base", Config: sim.Config{Coherence: memSys()}},
			{Key: "sms", Config: sim.Config{Coherence: memSys(), PrefetcherName: "sms"}},
		},
	}
}

// resultJSON canonicalizes a result for byte comparison.
func resultJSON(t *testing.T, res *sim.Result) string {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// requireGridsEqual asserts two executed grids carry byte-identical
// results cell by cell.
func requireGridsEqual(t *testing.T, plan engine.Plan, got, want *engine.Grid) {
	t.Helper()
	for _, wl := range plan.Workloads {
		for _, v := range plan.Variants {
			g, w := got.Result(wl, v.Key), want.Result(wl, v.Key)
			if gj, wj := resultJSON(t, g), resultJSON(t, w); gj != wj {
				t.Errorf("%s/%s: cluster result differs from local\ncluster: %s\nlocal:   %s", wl, v.Key, gj, wj)
			}
		}
	}
}

// TestGridMatchesLocalExactlyOnce is the core acceptance test: a grid
// scattered across two workers is byte-identical to single-node
// execution, every cell is computed exactly once cluster-wide, and the
// coordinator itself simulates nothing.
func TestGridMatchesLocalExactlyOnce(t *testing.T) {
	local := newSession(t, "", testOpts)
	plan := testPlan()
	wantGrid, err := local.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	w1 := newWorkerNode(t, t.TempDir(), testOpts)
	w2 := newWorkerNode(t, t.TempDir(), testOpts)
	coordDir := t.TempDir()
	coordSess, coord := newCoordinator(t, coordDir, testOpts, cluster.Config{})
	register(t, coord, w1.ts.URL, 2)
	register(t, coord, w2.ts.URL, 2)

	gotGrid, err := coordSess.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	requireGridsEqual(t, plan, gotGrid, wantGrid)

	cells := uint64(len(plan.Workloads) * len(plan.Variants))
	if sims := w1.session.Simulations() + w2.session.Simulations(); sims != cells {
		t.Errorf("cluster simulated %d cells, want exactly %d (no duplicates, no gaps)", sims, cells)
	}
	if sims := coordSess.Simulations(); sims != 0 {
		t.Errorf("coordinator simulated %d cells locally, want 0", sims)
	}
	var done uint64
	for _, w := range coord.Workers() {
		done += w.Done
	}
	if done != cells {
		t.Errorf("workers report %d done cells, want %d", done, cells)
	}

	// Re-executing through a fresh coordinator process over the same
	// store is pure cache: every result was written through to the
	// coordinator's store as it was gathered, so nothing resimulates —
	// not on the coordinator, not on any worker.
	coordSess2, coord2 := newCoordinator(t, coordDir, testOpts, cluster.Config{})
	register(t, coord2, w1.ts.URL, 2)
	register(t, coord2, w2.ts.URL, 2)
	if _, err := coordSess2.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if sims := w1.session.Simulations() + w2.session.Simulations(); sims != cells {
		t.Errorf("re-execution resimulated: %d total sims, want still %d", sims, cells)
	}
	if sims := coordSess2.Simulations(); sims != 0 {
		t.Errorf("warm coordinator simulated %d cells, want 0", sims)
	}
}

// TestNoWorkersFallsBackLocal: a coordinator with an empty cluster is
// exactly a single node.
func TestNoWorkersFallsBackLocal(t *testing.T) {
	local := newSession(t, "", testOpts)
	plan := testPlan()
	want, err := local.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	coordSess, _ := newCoordinator(t, "", testOpts, cluster.Config{})
	got, err := coordSess.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	requireGridsEqual(t, plan, got, want)
	cells := uint64(len(plan.Workloads) * len(plan.Variants))
	if sims := coordSess.Simulations(); sims != cells {
		t.Errorf("local fallback simulated %d cells, want %d", sims, cells)
	}
}

// TestWorkerDeathRescatters kills one worker mid-grid — it holds cells
// (a black-hole handler never answers) and stops heartbeating — and
// asserts the grid still settles, with every cell computed exactly once
// on the survivor.
func TestWorkerDeathRescatters(t *testing.T) {
	survivor := newWorkerNode(t, t.TempDir(), testOpts)
	// The victim accepts cells and sits on them until the coordinator
	// cancels the attempt (worker-death re-scatter path).
	var swallowed atomic.Int64
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		swallowed.Add(1)
		// Drain the body so net/http starts its background connection
		// read; only then does r.Context() fire when the coordinator
		// cancels the attempt and closes the connection.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(victim.Close)

	// Compute the reference grid before the victim registers: it never
	// beats, so every moment between registration and dispatch brings its
	// reaping closer, and it must still be alive when cells scatter.
	local := newSession(t, "", testOpts)
	plan := testPlan()
	want, err := local.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	coordSess, coord := newCoordinator(t, "", testOpts, cluster.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   2,
	})
	idSurvivor := register(t, coord, survivor.ts.URL, 2)
	beat(t, coord, idSurvivor, 20*time.Millisecond)
	register(t, coord, victim.URL, 2) // never beats → declared dead

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := coordSess.Execute(ctx, plan)
	if err != nil {
		t.Fatal("grid did not settle after worker death:", err)
	}
	requireGridsEqual(t, plan, got, want)

	if swallowed.Load() == 0 {
		t.Error("victim never received a cell; the test exercised nothing")
	}
	cells := uint64(len(plan.Workloads) * len(plan.Variants))
	if sims := survivor.session.Simulations(); sims != cells {
		t.Errorf("survivor simulated %d cells, want exactly %d (no duplicates from re-scatter)", sims, cells)
	}
	var victimAlive bool
	for _, w := range coord.Workers() {
		if w.URL == victim.URL {
			victimAlive = w.Alive
		}
	}
	if victimAlive {
		t.Error("victim still listed alive after missing every heartbeat")
	}
}

// TestRetryFailsOver: a worker that always 500s is retried away from;
// the healthy worker answers and the flake is recorded, not fatal.
func TestRetryFailsOver(t *testing.T) {
	healthy := newWorkerNode(t, t.TempDir(), testOpts)
	var flakes atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flakes.Add(1)
		http.Error(w, "synthetic failure", http.StatusInternalServerError)
	}))
	t.Cleanup(flaky.Close)

	coordSess, coord := newCoordinator(t, "", testOpts, cluster.Config{
		RetryBaseDelay: 5 * time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
	})
	register(t, coord, flaky.URL, 2)
	register(t, coord, healthy.ts.URL, 2)

	plan := testPlan()
	local := newSession(t, "", testOpts)
	want, err := local.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coordSess.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	requireGridsEqual(t, plan, got, want)
	if flakes.Load() > 0 {
		// The flaky worker was tried and failed over; every cell must
		// still have been computed exactly once, on the healthy node.
		cells := uint64(len(plan.Workloads) * len(plan.Variants))
		if sims := healthy.session.Simulations(); sims != cells {
			t.Errorf("healthy worker simulated %d, want %d", sims, cells)
		}
	}
}

// TestKeyMismatchQuarantines: a worker launched with different options
// computes different content addresses; it must be quarantined (409),
// and the run must settle locally, never through it.
func TestKeyMismatchQuarantines(t *testing.T) {
	foreign := newWorkerNode(t, t.TempDir(), exp.Options{CPUs: 1, Seed: 99, Length: 10_000})
	coordSess, coord := newCoordinator(t, "", testOpts, cluster.Config{})
	register(t, coord, foreign.ts.URL, 2)

	res, err := coordSess.Run(context.Background(), "sparse", sim.Config{Coherence: memSys()})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	if sims := foreign.session.Simulations(); sims != 0 {
		t.Errorf("mismatched worker simulated %d cells; its results would poison the grid", sims)
	}
	if sims := coordSess.Simulations(); sims != 1 {
		t.Errorf("coordinator ran %d local fallback sims, want 1", sims)
	}
	ws := coord.Workers()
	if len(ws) != 1 || !ws[0].Quarantined {
		t.Errorf("worker not quarantined after key mismatch: %+v", ws)
	}
}

// TestWorkStealing: all variants of one workload hash to one worker
// (affinity); with per-worker capacity 1 the second worker must steal
// from the first one's queue instead of idling.
func TestWorkStealing(t *testing.T) {
	w1 := newWorkerNode(t, t.TempDir(), testOpts)
	w2 := newWorkerNode(t, t.TempDir(), testOpts)
	coordSess, coord := newCoordinator(t, "", testOpts, cluster.Config{})
	register(t, coord, w1.ts.URL, 1)
	register(t, coord, w2.ts.URL, 1)

	plan := engine.Plan{
		Name:      "steal-test",
		Workloads: []string{"sparse"}, // one workload → one affinity target
		Variants: []engine.Variant{
			{Key: "none", Config: sim.Config{Coherence: memSys()}},
			{Key: "sms", Config: sim.Config{Coherence: memSys(), PrefetcherName: "sms"}},
			{Key: "ghb", Config: sim.Config{Coherence: memSys(), PrefetcherName: "ghb"}},
			{Key: "stride", Config: sim.Config{Coherence: memSys(), PrefetcherName: "stride"}},
			{Key: "ls", Config: sim.Config{Coherence: memSys(), PrefetcherName: "ls"}},
		},
	}
	if _, err := coordSess.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	var stolen, done uint64
	for _, w := range coord.Workers() {
		stolen += w.Stolen
		done += w.Done
	}
	if stolen == 0 {
		t.Error("no cells were stolen; the idle worker sat out the grid")
	}
	if done != uint64(len(plan.Variants)) {
		t.Errorf("workers done %d cells, want %d", done, len(plan.Variants))
	}
	if sims := w1.session.Simulations() + w2.session.Simulations(); sims != uint64(len(plan.Variants)) {
		t.Errorf("cluster simulated %d cells, want %d", sims, len(plan.Variants))
	}
}

// TestTraceArtifactSync: a worker that generated a workload trace
// publishes it in its store; the coordinator pulls the artifact by
// content address in the background after gathering the cell.
func TestTraceArtifactSync(t *testing.T) {
	w := newWorkerNode(t, t.TempDir(), testOpts)
	coordSess, coord := newCoordinator(t, t.TempDir(), testOpts, cluster.Config{})
	register(t, coord, w.ts.URL, 2)

	if _, err := coordSess.Run(context.Background(), "sparse", sim.Config{Coherence: memSys()}); err != nil {
		t.Fatal(err)
	}
	key := store.ForTrace("sparse", coordSess.Engine().Config().Workload)
	if !w.session.Store().HasTrace(key) {
		t.Fatal("worker store has no trace artifact after simulating; nothing to sync")
	}
	deadline := time.Now().Add(10 * time.Second)
	for !coordSess.Store().HasTrace(key) {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never pulled the trace artifact")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunWorkerRegistersAndHeartbeats exercises the worker-side loop
// against a real coordinator daemon (registration over HTTP, heartbeats
// at the returned interval, exit on ctx cancel).
func TestRunWorkerRegistersAndHeartbeats(t *testing.T) {
	coordSess := newSession(t, "", testOpts)
	coord, err := cluster.New(cluster.Config{
		Local:             coordSess.Engine().LocalScheduler(),
		Workload:          coordSess.Engine().Config().Workload,
		HeartbeatInterval: 20 * time.Millisecond,
		Logger:            discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	srv, err := server.New(server.Config{Session: coordSess, Logger: discardLogger(), Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- cluster.RunWorker(ctx, cluster.WorkerConfig{
			Coordinator: ts.URL,
			Advertise:   "http://127.0.0.1:1", // never dialed in this test
			Capacity:    1,
			Logger:      discardLogger(),
		})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		ws := coord.Workers()
		if len(ws) == 1 && ws[0].Alive {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Survive several heartbeat intervals without being declared dead.
	time.Sleep(150 * time.Millisecond)
	if ws := coord.Workers(); len(ws) != 1 || !ws[0].Alive {
		t.Fatalf("worker lost liveness while heartbeating: %+v", ws)
	}
	cancel()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("RunWorker did not exit on ctx cancel")
	}
}
