package core

import (
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/trace"
)

// SimPrefetcher adapts one SMS engine to the simulator's per-CPU
// prefetcher interface (repro/internal/sim.Prefetcher, satisfied
// structurally so core never imports sim). SMS trains on every L1 access
// and streams predicted blocks into L1.
type SimPrefetcher struct {
	eng *SMS
}

// NewSimPrefetcher builds an SMS engine for cfg and wraps it for the
// simulator.
func NewSimPrefetcher(cfg Config) (*SimPrefetcher, error) {
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SimPrefetcher{eng: eng}, nil
}

// Engine exposes the wrapped SMS engine.
func (p *SimPrefetcher) Engine() *SMS { return p.eng }

// Train records the access in the AGT/PHT and ends the generations of
// blocks the demand fill evicted from L1.
func (p *SimPrefetcher) Train(rec trace.Record, acc *coherence.AccessResult) []mem.Addr {
	p.eng.Access(rec.PC, rec.Addr)
	for _, ev := range acc.L1Evictions {
		p.eng.BlockRemoved(ev.Addr)
	}
	return nil
}

// Drain pops up to max pending stream requests from the prediction
// registers.
func (p *SimPrefetcher) Drain(max int) []mem.Addr { return p.eng.NextStreamRequests(max) }

// FillLevel reports that SMS streams into L1.
func (p *SimPrefetcher) FillLevel() coherence.Level { return coherence.LevelL1 }

// StreamEvicted ends the generation of a block displaced by one of this
// engine's own stream fills.
func (p *SimPrefetcher) StreamEvicted(addr mem.Addr) { p.eng.BlockRemoved(addr) }

// Invalidated ends the generation of a block a remote write invalidated
// (§2.1: invalidations terminate spatial region generations).
func (p *SimPrefetcher) Invalidated(addr mem.Addr) { p.eng.BlockRemoved(addr) }

// Stats returns the engine's Stats (a core.Stats).
func (p *SimPrefetcher) Stats() any { return p.eng.Stats() }
