package core

import (
	"testing"

	"repro/internal/mem"
)

// geo4 is a tiny 4-blocks-per-region geometry (64 B blocks, 256 B regions)
// that makes hand-written scenarios easy to read.
func geo4() mem.Geometry { return mem.MustGeometry(64, 256) }

func newTestSMS(t *testing.T, mutate func(*Config)) *SMS {
	t.Helper()
	cfg := Config{Geometry: geo4()}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaults(t *testing.T) {
	s := MustNew(Config{})
	cfg := s.Config()
	if cfg.FilterEntries != DefaultFilterEntries ||
		cfg.AccumEntries != DefaultAccumEntries ||
		cfg.PHTEntries != DefaultPHTEntries ||
		cfg.PHTAssoc != DefaultPHTAssoc ||
		cfg.PredictionRegisters != DefaultPredictionRegisters {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if s.Geometry().RegionSize() != mem.DefaultRegionSize {
		t.Error("default geometry not applied")
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// TestFigure2Walkthrough reproduces the paper's Figure 2 event sequence:
// Access A+3 (trigger, allocates in filter), Access A+2 (transfers to
// accumulation with pattern 0011), Access A+0 (pattern 1011), Evict A+2
// (generation ends, pattern 1011 goes to the PHT).
func TestFigure2Walkthrough(t *testing.T) {
	s := newTestSMS(t, func(c *Config) { c.PHTEntries = -1 })
	const pc = 0x400100
	A := mem.Addr(0x10000) // region base

	s.Access(pc, A+3*64)
	if f, a := s.AGTOccupancy(); f != 1 || a != 0 {
		t.Fatalf("after trigger: filter=%d accum=%d, want 1,0", f, a)
	}
	s.Access(pc+4, A+2*64)
	if f, a := s.AGTOccupancy(); f != 0 || a != 1 {
		t.Fatalf("after second access: filter=%d accum=%d, want 0,1", f, a)
	}
	s.Access(pc+8, A+0*64)
	// Evict A+2 ends the generation.
	s.BlockRemoved(A + 2*64)
	if f, a := s.AGTOccupancy(); f != 0 || a != 0 {
		t.Fatalf("after eviction: filter=%d accum=%d, want 0,0", f, a)
	}
	st := s.Stats()
	if st.PatternsLearned != 1 || st.GenerationsEnded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The learned pattern must be 1011 (blocks 0, 2, 3), retrievable by a
	// new trigger at the same PC and offset.
	key := indexKey(IndexPCOffset, geo4(), pc, A+3*64)
	p, ok := s.PHT().Lookup(key)
	if !ok {
		t.Fatal("pattern not in PHT")
	}
	if p.String() != "1011" {
		t.Fatalf("learned pattern %q, want 1011", p.String())
	}
}

func TestPredictionStreamsPattern(t *testing.T) {
	s := newTestSMS(t, func(c *Config) { c.PHTEntries = -1 })
	const pc = 0x400100
	A := mem.Addr(0x10000)
	B := mem.Addr(0x20000) // different region, same offsets

	// Train on region A: trigger at offset 1, then blocks 2 and 3.
	s.Access(pc, A+1*64)
	s.Access(pc+4, A+2*64)
	s.Access(pc+8, A+3*64)
	s.BlockRemoved(A + 1*64)

	// Trigger at the same PC and offset in region B predicts the pattern.
	s.Access(pc, B+1*64)
	if s.ActiveStreams() != 1 {
		t.Fatalf("ActiveStreams = %d, want 1", s.ActiveStreams())
	}
	reqs := s.NextStreamRequests(10)
	if len(reqs) != 2 {
		t.Fatalf("stream requests = %v, want 2 blocks", reqs)
	}
	want := map[mem.Addr]bool{B + 2*64: true, B + 3*64: true}
	for _, r := range reqs {
		if !want[r] {
			t.Errorf("unexpected stream target %#x", uint64(r))
		}
		delete(want, r)
	}
	// Trigger block itself must not be streamed.
	if s.ActiveStreams() != 0 {
		t.Error("register not freed after streaming")
	}
	st := s.Stats()
	if st.Predictions != 1 || st.PredictedBlocks != 2 || st.StreamsIssued != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSingleAccessGenerationNotLearned(t *testing.T) {
	s := newTestSMS(t, func(c *Config) { c.PHTEntries = -1 })
	A := mem.Addr(0x10000)
	s.Access(0x400100, A)
	s.BlockRemoved(A)
	st := s.Stats()
	if st.PatternsLearned != 0 {
		t.Fatal("single-access generation reached the PHT")
	}
	if st.GenerationsDroppedFilter != 1 {
		t.Fatalf("filter drop not counted: %+v", st)
	}
	if s.PHT().Size() != 0 {
		t.Fatal("PHT not empty")
	}
}

func TestRepeatedTriggerBlockStaysInFilter(t *testing.T) {
	s := newTestSMS(t, nil)
	A := mem.Addr(0x10000)
	s.Access(0x400100, A+64)
	s.Access(0x400104, A+64) // same block again
	if f, a := s.AGTOccupancy(); f != 1 || a != 0 {
		t.Fatalf("filter=%d accum=%d, want 1,0", f, a)
	}
}

func TestEvictionOfUnaccessedBlockDoesNotEndGeneration(t *testing.T) {
	s := newTestSMS(t, func(c *Config) { c.PHTEntries = -1 })
	A := mem.Addr(0x10000)
	s.Access(0x400100, A+0*64)
	s.Access(0x400104, A+1*64)
	// Block 3 was never accessed; its eviction is irrelevant.
	s.BlockRemoved(A + 3*64)
	if _, a := s.AGTOccupancy(); a != 1 {
		t.Fatal("generation wrongly terminated")
	}
	// Filter case: trigger at offset 0 of region B, evict offset 2.
	B := mem.Addr(0x20000)
	s.Access(0x400100, B)
	s.BlockRemoved(B + 2*64)
	if f, _ := s.AGTOccupancy(); f != 1 {
		t.Fatal("filter generation wrongly terminated")
	}
}

func TestInvalidationEndsGeneration(t *testing.T) {
	// BlockRemoved covers both replacement and invalidation; verify a
	// second region's generation survives the first's termination.
	s := newTestSMS(t, func(c *Config) { c.PHTEntries = -1 })
	A, B := mem.Addr(0x10000), mem.Addr(0x20000)
	s.Access(0x400100, A)
	s.Access(0x400104, A+64)
	s.Access(0x400200, B)
	s.Access(0x400204, B+64)
	s.BlockRemoved(A + 64)
	if _, a := s.AGTOccupancy(); a != 1 {
		t.Fatalf("accum = %d, want 1 (B alive)", a)
	}
	if s.Stats().PatternsLearned != 1 {
		t.Fatal("A's pattern not learned")
	}
}

func TestInterleavedGenerations(t *testing.T) {
	// Interleaved accesses to many regions must accumulate independently
	// — the property sectored training structures lose (§4.3).
	s := newTestSMS(t, func(c *Config) { c.PHTEntries = -1 })
	regions := []mem.Addr{0x10000, 0x20000, 0x30000, 0x40000}
	for step := 0; step < 3; step++ {
		for _, r := range regions {
			s.Access(0x400100+uint64(4*step), r+mem.Addr(step*64))
		}
	}
	for _, r := range regions {
		s.BlockRemoved(r)
	}
	st := s.Stats()
	if st.PatternsLearned != 4 {
		t.Fatalf("learned %d patterns, want 4", st.PatternsLearned)
	}
	// All four patterns must be the dense 1110 (blocks 0,1,2).
	key := indexKey(IndexPCOffset, geo4(), 0x400100, regions[0])
	p, ok := s.PHT().Lookup(key)
	if !ok || p.String() != "1110" {
		t.Fatalf("pattern = %v ok=%v, want 1110", p, ok)
	}
}

func TestFilterTableEvictionDropsGeneration(t *testing.T) {
	s := newTestSMS(t, func(c *Config) {
		c.FilterEntries = 2
		c.PHTEntries = -1
	})
	// Three single-access generations: the first is evicted.
	s.Access(0x400100, 0x10000)
	s.Access(0x400100, 0x20000)
	s.Access(0x400100, 0x30000)
	if f, _ := s.AGTOccupancy(); f != 2 {
		t.Fatalf("filter = %d, want 2", f)
	}
	if s.Stats().GenerationsEvictedFilter != 1 {
		t.Fatal("filter eviction not counted")
	}
}

func TestAccumTableEvictionTransfersToPHT(t *testing.T) {
	s := newTestSMS(t, func(c *Config) {
		c.AccumEntries = 2
		c.PHTEntries = -1
	})
	for i, base := range []mem.Addr{0x10000, 0x20000, 0x30000} {
		s.Access(0x400100+uint64(i), base)
		s.Access(0x400200+uint64(i), base+64)
	}
	st := s.Stats()
	if st.GenerationsEvictedAccum != 1 {
		t.Fatalf("accum evictions = %d, want 1", st.GenerationsEvictedAccum)
	}
	if st.PatternsLearned != 1 {
		t.Fatal("evicted generation's pattern not transferred to PHT")
	}
}

func TestFilterDisabledAblation(t *testing.T) {
	s := newTestSMS(t, func(c *Config) {
		c.FilterEntries = -1
		c.PHTEntries = -1
	})
	A := mem.Addr(0x10000)
	s.Access(0x400100, A)
	if f, a := s.AGTOccupancy(); f != 0 || a != 1 {
		t.Fatalf("no-filter trigger: filter=%d accum=%d, want 0,1", f, a)
	}
	// Even single-access generations now pollute the PHT.
	s.BlockRemoved(A)
	if s.Stats().PatternsLearned != 1 {
		t.Fatal("single-access generation should be learned without filter")
	}
}

func TestPredictionRegisterOverwrite(t *testing.T) {
	s := newTestSMS(t, func(c *Config) {
		c.PredictionRegisters = 1
		c.PHTEntries = -1
	})
	const pc = 0x400100
	// Train two regions' worth of patterns at different offsets.
	A := mem.Addr(0x10000)
	s.Access(pc, A)
	s.Access(pc+4, A+64)
	s.BlockRemoved(A)
	// Two triggers in quick succession: the second overwrites.
	s.Access(pc, 0x20000)
	s.Access(pc, 0x30000)
	st := s.Stats()
	if st.Predictions != 2 {
		t.Fatalf("predictions = %d, want 2", st.Predictions)
	}
	if st.RegistersOverwritten != 1 {
		t.Fatalf("overwrites = %d, want 1", st.RegistersOverwritten)
	}
	reqs := s.NextStreamRequests(10)
	if len(reqs) != 1 || reqs[0] != 0x30000+64 {
		t.Fatalf("reqs = %v, want only the newer region's block", reqs)
	}
}

func TestRoundRobinStreaming(t *testing.T) {
	s := newTestSMS(t, func(c *Config) { c.PHTEntries = -1 })
	const pc = 0x400100
	A := mem.Addr(0x10000)
	// Learn pattern with blocks 0..3 triggered at 0.
	s.Access(pc, A)
	s.Access(pc+4, A+64)
	s.Access(pc+8, A+128)
	s.Access(pc+12, A+192)
	s.BlockRemoved(A)
	// Arm two streams.
	s.Access(pc, 0x20000)
	s.Access(pc, 0x30000)
	if s.ActiveStreams() != 2 {
		t.Fatalf("ActiveStreams = %d", s.ActiveStreams())
	}
	// Round-robin: requests must alternate between the two regions.
	reqs := s.NextStreamRequests(2)
	if len(reqs) != 2 {
		t.Fatalf("reqs = %v", reqs)
	}
	r0 := mem.DefaultGeometry() // not used; keep addresses simple
	_ = r0
	if (reqs[0]&^0xFFFF != 0x20000 && reqs[0]&^0xFFFF != 0x30000) || reqs[0]&^0xFFFF == reqs[1]&^0xFFFF {
		t.Fatalf("requests not round-robin across registers: %v", reqs)
	}
	// Drain the rest.
	rest := s.NextStreamRequests(100)
	if len(rest) != 4 {
		t.Fatalf("remaining = %d, want 4", len(rest))
	}
	if s.ActiveStreams() != 0 {
		t.Fatal("registers not freed")
	}
	if got := s.NextStreamRequests(5); got != nil {
		t.Fatalf("drained engine yielded %v", got)
	}
}

func TestNoStreamWithoutTraining(t *testing.T) {
	s := newTestSMS(t, nil)
	s.Access(0x400100, 0x10000)
	if s.ActiveStreams() != 0 {
		t.Fatal("untrained SMS armed a stream")
	}
	if got := s.NextStreamRequests(0); got != nil {
		t.Fatal("max=0 returned requests")
	}
}

func TestPatternReplacedOnRelearn(t *testing.T) {
	// The PHT stores the most recent pattern for an index.
	s := newTestSMS(t, func(c *Config) { c.PHTEntries = -1 })
	const pc = 0x400100
	A := mem.Addr(0x10000)
	s.Access(pc, A)
	s.Access(pc+4, A+64)
	s.BlockRemoved(A)
	// Re-train same trigger with a different second block.
	s.Access(pc, A)
	s.Access(pc+4, A+192)
	s.BlockRemoved(A)
	key := indexKey(IndexPCOffset, geo4(), pc, A)
	p, _ := s.PHT().Lookup(key)
	if p.String() != "1001" {
		t.Fatalf("pattern = %q, want 1001 (replacement, not merge)", p.String())
	}
}
