# Mirrors .github/workflows/ci.yml: `make ci` runs the exact pipeline
# CI runs, so a green `make ci` means a green check.

GO ?= go

.PHONY: ci fmt vet build test test-full bench

ci: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short -race ./...

# The full suite includes the figure-scale experiment tests (~minutes).
test-full:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...
