package engine

import (
	"sync"
	"unsafe"

	"repro/internal/mem"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The engine serves every run's trace through a two-level cache:
//
//  1. An in-memory memo (traceCache): the generated record slice, keyed
//     by workload name. Every run an engine executes uses the same
//     workload.Config, so all variants of one workload in a grid consume
//     byte-identical record sequences; generating once and replaying
//     from memory removes the generator (and its random-number stream)
//     from all but the first run. The memo is byte-bounded, and entries
//     are single-flight: concurrent workers requesting the same workload
//     block until the first finishes generating.
//
//  2. A disk tier (with a store attached): generated traces are written
//     through as content-addressed v2 files (store.ForTrace — workload
//     name + canonical generation config) and replayed by mmap
//     (trace.MappedSource) on any later miss of the memo — including in
//     a fresh process, so a warm store means TraceGenerations == 0
//     across restarts. Replay is zero-copy: blocks decode straight from
//     the mapping into a per-run reused buffer.
//
// Traces longer than the memo budget always stream from the generator
// (so production-scale runs never bloat the daemon) but still replay
// from the disk tier when a v2 artifact exists — bulk captures made
// with `smstrace gen -store` mmap-replay at any size, which is how a
// grid scales past RAM.
//
// Trace-file workloads (workload.External, the trace: family) are
// already file replays; they bypass both levels.
type traceCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*traceEntry
	order   []string
}

type traceEntry struct {
	done chan struct{}
	recs []trace.Record
	size int64
	ok   bool // false: generation failed to fit or was abandoned
}

// recordBytes is the in-memory footprint of one trace.Record.
const recordBytes = int64(unsafe.Sizeof(trace.Record{}))

// DefaultTraceCacheBytes bounds the engine's in-memory trace memo: room
// for a handful of default-length (2M-record) traces.
const DefaultTraceCacheBytes = 256 << 20

func newTraceCache(budget int64) *traceCache {
	return &traceCache{budget: budget, entries: make(map[string]*traceEntry)}
}

// lookup reports the memo's state for name: a completed entry to
// replay, or an in-flight generation the caller should join (via
// generate) instead of probing the disk tier — probing while the
// leader generates would count one logical miss once per worker.
func (tc *traceCache) lookup(name string) (ent *traceEntry, completed, inflight bool) {
	if tc == nil {
		return nil, false, false
	}
	tc.mu.Lock()
	ent, ok := tc.entries[name]
	tc.mu.Unlock()
	if !ok {
		return nil, false, false
	}
	select {
	case <-ent.done:
		return ent, ent.ok, false
	default:
		return nil, false, true
	}
}

// fits reports whether a trace of the given record count is admissible.
func (tc *traceCache) fits(length uint64) bool {
	return tc != nil && length <= uint64(tc.budget/recordBytes)
}

// traceSource returns a trace source for the workload of one run, and
// whether this call ran the generator itself (for the engine's
// generation counter): memory memo, then disk tier, then generate.
func (e *Engine) traceSource(w workload.Workload) (trace.Source, bool) {
	cfg := e.cfg.Workload
	if w.External {
		// The trace: family replays a file already; caching it would
		// only copy an mmap into memory.
		return w.Make(cfg), false
	}

	ent, completed, inflight := e.traces.lookup(w.Name)
	if completed {
		return trace.NewSliceSource(ent.recs), false
	}
	if !inflight {
		if src, ok := e.tierSource(w); ok {
			return src, false
		}
	}
	if !e.traces.fits(cfg.Canonical().Length) {
		// Too long to capture in memory: stream straight from the
		// generator. (Bulk captures enter the disk tier via
		// `smstrace gen -store`, not through the engine.)
		return w.Make(cfg), true
	}
	return e.generate(w, cfg)
}

// tierKey is the disk-tier content address of the engine's workload
// config under the given workload name.
func (e *Engine) tierKey(name string) string {
	return store.ForTrace(name, e.cfg.Workload)
}

// tierSource opens (or reuses) the mmap'd trace artifact for w and
// returns a fresh zero-copy replay stream over it.
func (e *Engine) tierSource(w workload.Workload) (trace.Source, bool) {
	st := e.cfg.Store
	if st == nil {
		return nil, false
	}
	key := e.tierKey(w.Name)
	e.tierMu.Lock()
	f, ok := e.tierFiles[key]
	e.tierMu.Unlock()
	if !ok {
		f, ok = st.OpenTrace(key)
		if !ok {
			e.tierMisses.Add(1)
			return nil, false
		}
		e.tierMu.Lock()
		if prev, exists := e.tierFiles[key]; exists {
			// Another worker opened it first; keep one mapping.
			_ = f.Close()
			f = prev
		} else {
			if e.tierFiles == nil {
				e.tierFiles = make(map[string]*trace.File)
			}
			e.tierFiles[key] = f
		}
		e.tierMu.Unlock()
	}
	e.tierHits.Add(1)
	return f.NewSource(), true
}

// generate runs the workload generator under the memo's single-flight
// lock, captures the trace in memory, and writes it through to the disk
// tier (best effort) so later processes replay instead of regenerating.
func (e *Engine) generate(w workload.Workload, cfg workload.Config) (trace.Source, bool) {
	tc := e.traces
	tc.mu.Lock()
	if ent, ok := tc.entries[w.Name]; ok {
		tc.mu.Unlock()
		<-ent.done
		if ent.ok {
			return trace.NewSliceSource(ent.recs), false
		}
		return w.Make(cfg), true
	}
	ent := &traceEntry{done: make(chan struct{})}
	tc.entries[w.Name] = ent
	tc.mu.Unlock()

	// If the generator panics, drop the entry and release followers (who
	// see ok=false and generate for themselves) before propagating.
	released := false
	defer func() {
		if !ent.ok {
			tc.mu.Lock()
			delete(tc.entries, w.Name)
			tc.mu.Unlock()
		}
		if !released {
			close(ent.done)
		}
	}()

	length := cfg.Canonical().Length
	recs := make([]trace.Record, length)
	src := trace.Batched(w.Make(cfg))
	total := 0
	for total < len(recs) {
		// The BatchSource contract allows short non-zero reads; only a
		// zero return means exhaustion.
		n := src.NextBatch(recs[total:])
		if n == 0 {
			break
		}
		total += n
	}
	ent.recs = recs[:total]
	ent.size = int64(total) * recordBytes
	ent.ok = true
	// Release the singleflight followers before the disk write-through:
	// the tier write can take seconds on slow storage, and their runs
	// only need the in-memory records (which are immutable from here).
	released = true
	close(ent.done)

	tc.mu.Lock()
	tc.used += ent.size
	tc.order = append(tc.order, w.Name)
	for tc.used > tc.budget && len(tc.order) > 1 {
		oldest := tc.order[0]
		tc.order = tc.order[1:]
		if old, ok := tc.entries[oldest]; ok && old != ent {
			tc.used -= old.size
			delete(tc.entries, oldest)
		}
	}
	tc.mu.Unlock()

	e.persistTrace(w.Name, ent.recs)
	return trace.NewSliceSource(ent.recs), true
}

// persistTrace writes a freshly generated trace into the disk tier. The
// tier is a cache: failures are ignored — the worst outcome is a
// regeneration in some later process.
func (e *Engine) persistTrace(name string, recs []trace.Record) {
	st := e.cfg.Store
	if st == nil {
		return
	}
	key := e.tierKey(name)
	if st.HasTrace(key) {
		return
	}
	hdr := trace.Header{
		CPUs:         e.cfg.Workload.Canonical().CPUs,
		Geometry:     mem.DefaultGeometry(),
		Workload:     name,
		WorkloadHash: key,
	}
	_ = st.PutTraceRecords(key, hdr, recs)
}
