package server

// Restart recovery: how a journal replay turns back into live state.
// Settled jobs are adopted directly — re-registered for GET /v1/jobs
// with their results refilled from the content-addressed store, no
// worker slot spent. Live jobs (accepted or started when the daemon
// died) are resubmitted through the normal pool with their identities
// preserved, so a client polling a job id across the crash sees the
// same job finish. Because the engine probes the store before
// simulating, a warm recovery — everything already content-addressed —
// settles the whole backlog without scattering a single cell.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/workload"
)

// journalCompactEvery is how many settlements pass between journal
// compactions; it bounds the journal to roughly this many settled
// records beyond the retained job list.
const journalCompactEvery = 256

// jobBody reconstructs the executable body for a journaled spec — the
// same closure figureJob / handleRunJob would have built — or reports
// why the spec can no longer run (a figure or workload renamed across
// the restart).
func (s *Server) jobBody(spec jobSpec) (totalRuns int, run func(ctx context.Context, j *job) error, err error) {
	switch spec.Kind {
	case "figure":
		runner, ok := s.experiments[spec.Figure]
		if !ok {
			return 0, nil, fmt.Errorf("unknown figure %q", spec.Figure)
		}
		totalRuns = 0
		if plan, ok := exp.PlanFor(spec.Figure, s.session.Options()); ok {
			totalRuns = len(plan.Workloads)*len(plan.Variants) + len(plan.Customs)
		}
		return totalRuns, func(ctx context.Context, j *job) error {
			text, err := s.session.RunFigure(ctx, spec.Figure, runner)
			if err != nil {
				return err
			}
			j.mu.Lock()
			j.figure = text
			j.mu.Unlock()
			return nil
		}, nil
	case "run":
		if spec.Run == nil {
			return 0, nil, fmt.Errorf("run job without a request")
		}
		req := *spec.Run
		if _, err := workload.ByName(req.Workload); err != nil {
			return 0, nil, err
		}
		cfg, err := s.runConfig(req)
		if err != nil {
			return 0, nil, err
		}
		key := s.session.RunKey(req.Workload, cfg)
		return 1, func(ctx context.Context, j *job) error {
			res, err := s.session.Run(ctx, req.Workload, cfg)
			if err != nil {
				return err
			}
			j.mu.Lock()
			j.result = &RunResponse{
				Workload:   req.Workload,
				Prefetcher: cfg.Canonical().PrefetcherName,
				Key:        key,
				Result:     res,
			}
			j.mu.Unlock()
			return nil
		}, nil
	default:
		return 0, nil, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
}

// recover folds the replayed journal back into the server: adopt the
// settled jobs, compact the journal down to what matters (one summary
// per retained settled job, one accepted record per live job — so the
// file stops growing across restart loops), then resubmit the live
// jobs. Compaction comes first so a resubmitted job's started/settled
// appends land after its compacted accepted record.
func (s *Server) recover(jobs []*journalJob) {
	var live []*journalJob
	for _, jj := range jobs {
		if jj.settled {
			s.adoptSettled(jj)
			s.recRestored.Add(1)
		} else {
			live = append(live, jj)
		}
	}

	recs := make([]journalRecord, 0, len(jobs))
	s.mu.Lock()
	for _, id := range s.settled {
		j := s.jobs[id]
		if j == nil || !j.journaled {
			continue
		}
		recs = append(recs, journalRecord{
			Op: journalOpSettled, ID: j.id, Time: j.finished,
			State: j.state, Error: j.errText, Spec: &j.spec, Created: j.created,
		})
	}
	s.mu.Unlock()
	for _, jj := range live {
		recs = append(recs, journalRecord{
			Op: journalOpAccepted, ID: jj.id, Time: jj.created, Spec: &jj.spec,
		})
	}
	if err := s.journal.rewrite(recs); err != nil {
		s.logger.Warn("journal: recovery compaction failed", "err", err)
	}

	for _, jj := range live {
		s.resubmit(jj)
	}
	if len(jobs) > 0 {
		s.logger.Info("journal recovery complete",
			"restored", s.recRestored.Load(), "requeued", s.recRequeued.Load(),
			"torn_records", s.journal.tornCount())
	}
}

// adoptSettled re-registers one settled job from its journal summary,
// refilling the result from the store when it is still there. It
// bypasses settleJob on purpose: the job settled in a previous life,
// so it must not re-count metrics or re-journal.
func (s *Server) adoptSettled(jj *journalJob) {
	j := &job{
		id:        jj.id,
		kind:      jj.spec.Kind,
		target:    jj.spec.Target,
		created:   jj.created,
		finished:  jj.finished,
		state:     jj.state,
		errText:   jj.errText,
		spec:      jj.spec,
		journaled: true,
		restored:  true,
		cancel:    func() {},
		inflight:  make(map[string]uint64),
		runStarts: make(map[string]time.Time),
		done:      make(chan struct{}),
	}
	if j.state == "" {
		j.state = JobDone
	}
	if j.state == JobDone {
		switch jj.spec.Kind {
		case "figure":
			if text, ok := s.session.CachedFigure(jj.spec.Figure); ok {
				j.figure = text
			}
		case "run":
			if jj.spec.Run != nil {
				req := *jj.spec.Run
				if cfg, err := s.runConfig(req); err == nil {
					if res, ok := s.session.CachedRun(req.Workload, cfg); ok {
						j.progress = JobProgress{TotalRuns: 1, DoneRuns: 1, CachedRuns: 1}
						j.result = &RunResponse{
							Workload:   req.Workload,
							Prefetcher: cfg.Canonical().PrefetcherName,
							Key:        s.session.RunKey(req.Workload, cfg),
							Result:     res,
						}
					}
				}
			}
		}
	}
	// The dedupe field stays empty: a settled job must not occupy the
	// single-flight slot its spec's key names.
	s.mu.Lock()
	s.registerJobLocked(j)
	s.settled = append(s.settled, j.id)
	for len(s.settled) > maxFinishedJobs {
		oldest := s.settled[0]
		s.settled = s.settled[1:]
		delete(s.jobs, oldest)
	}
	s.mu.Unlock()
	close(j.done)
}

// resubmit requeues one live journal job through the normal pool with
// its identity preserved. A spec that can no longer run (or a full
// queue) settles the job failed instead — visible at /v1/jobs, never
// silently dropped.
func (s *Server) resubmit(jj *journalJob) {
	adoptFailed := func(reason string) {
		s.logger.Warn("journal: cannot requeue job",
			"job_id", jj.id, "kind", jj.spec.Kind, "target", jj.spec.Target, "err", reason)
		failed := *jj
		failed.settled = true
		failed.state = JobFailed
		failed.errText = reason
		failed.finished = time.Now()
		s.adoptSettled(&failed)
		s.recRequeued.Add(1)
		if err := s.journal.append(journalRecord{
			Op: journalOpSettled, ID: jj.id, Time: failed.finished,
			State: JobFailed, Error: reason, Spec: &jj.spec, Created: jj.created,
		}); err != nil {
			s.logger.Warn("journal: settled append failed", "job_id", jj.id, "err", err)
		}
		return
	}

	totalRuns, body, err := s.jobBody(jj.spec)
	if err != nil {
		adoptFailed(err.Error())
		return
	}
	j := &job{
		id:        jj.id,
		kind:      jj.spec.Kind,
		target:    jj.spec.Target,
		dedupe:    jj.spec.Dedupe,
		created:   jj.created,
		spec:      jj.spec,
		journaled: true, // the compacted journal already holds its accepted record
		restored:  true,
	}
	if _, joined, err := s.launchJob(j, totalRuns, body); err != nil {
		// launchJob already settled the job failed (ErrBusy) and journaled
		// the settlement; nothing more to do.
		s.logger.Warn("journal: requeued job rejected", "job_id", jj.id, "err", err)
	} else if joined {
		// Two live journal entries shared a dedupe key — possible only if
		// a past compaction raced a settlement. The earlier resubmission
		// owns the key; this duplicate is already represented by it.
		s.logger.Warn("journal: requeued job joined an earlier recovery job", "job_id", jj.id)
	}
	s.recRequeued.Add(1)
	s.logger.Info("journal: requeued job",
		"job_id", jj.id, "kind", jj.spec.Kind, "target", jj.spec.Target, "started_before_crash", jj.started)
}

// compactJournal rewrites the journal to the live truth: one summary
// per retained settled job, one accepted record per live journaled
// job. A settlement racing the snapshot is rewritten as live and
// merely replays one state earlier on the next restart — the engine's
// store probe settles it again without re-simulating.
func (s *Server) compactJournal() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, id := range s.settled {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	for _, j := range s.jobs {
		live := false
		j.mu.Lock()
		live = !j.state.terminal()
		j.mu.Unlock()
		if live {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()

	recs := make([]journalRecord, 0, len(jobs))
	for _, j := range jobs {
		if !j.journaled {
			continue
		}
		j.mu.Lock()
		if j.state.terminal() {
			recs = append(recs, journalRecord{
				Op: journalOpSettled, ID: j.id, Time: j.finished,
				State: j.state, Error: j.errText, Spec: &j.spec, Created: j.created,
			})
		} else {
			recs = append(recs, journalRecord{
				Op: journalOpAccepted, ID: j.id, Time: j.created, Spec: &j.spec,
			})
		}
		j.mu.Unlock()
	}
	if err := s.journal.rewrite(recs); err != nil {
		s.logger.Warn("journal: compaction failed", "err", err)
		return
	}
	s.logger.Debug("journal compacted", "records", len(recs))
}
