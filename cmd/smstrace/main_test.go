package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestGenDumpStatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.smst")
	if err := cmdGen([]string{"-workload", "sparse", "-o", path, "-cpus", "2", "-length", "5000"}); err != nil {
		t.Fatal(err)
	}
	f, r, err := openTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if n != 5000 {
		t.Fatalf("records = %d, want 5000", n)
	}
	if err := cmdDump([]string{"-i", path, "-n", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStat([]string{"-i", path}); err != nil {
		t.Fatal(err)
	}
}

func TestGenRejectsUnknownWorkload(t *testing.T) {
	if err := cmdGen([]string{"-workload", "nope", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestOpenTraceErrors(t *testing.T) {
	if _, _, err := openTrace(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not a trace file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openTrace(bad); err == nil {
		t.Fatal("garbage file accepted")
	}
}

func TestMax64(t *testing.T) {
	if max64(1, 2) != 2 || max64(3, 2) != 3 {
		t.Fatal("max64 wrong")
	}
}

var _ = trace.Record{} // the test exercises the trace format end to end
