package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tinyCoherence is a small hierarchy for unit scenarios.
func tinyCoherence(cpus int) coherence.Config {
	return coherence.Config{
		CPUs: cpus,
		L1:   cache.Config{Size: 4 << 10, Assoc: 2, BlockSize: 64},
		L2:   cache.Config{Size: 64 << 10, Assoc: 8, BlockSize: 64},
	}
}

func runWorkload(t *testing.T, name string, cfg Config, n uint64) *Result {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.Config{CPUs: cfg.Coherence.CPUs, Seed: 11, Length: n}
	if cfg.Coherence.CPUs == 0 {
		wcfg.CPUs = coherence.DefaultConfig().CPUs
	}
	cfg.WarmupAccesses = n / 2
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r.Run(w.Make(wcfg))
}

func TestBaselineCountsConsistent(t *testing.T) {
	res := runWorkload(t, "oltp-db2", Config{Coherence: tinyCoherence(2)}, 100_000)
	if res.Accesses != 50_000 {
		t.Fatalf("Accesses = %d, want 50000 (post-warm-up half)", res.Accesses)
	}
	if res.Reads+res.Writes != res.Accesses {
		t.Fatal("reads+writes != accesses")
	}
	if res.L1ReadMisses == 0 || res.OffChipReadMisses == 0 {
		t.Fatalf("no misses recorded: %+v", res)
	}
	if res.OffChipReadMisses > res.L1ReadMisses {
		t.Fatal("off-chip misses exceed L1 misses")
	}
	if res.L1CoveredMisses != 0 || res.StreamRequests != 0 {
		t.Fatal("baseline recorded prefetch activity")
	}
}

func TestSMSCoversMissesEndToEnd(t *testing.T) {
	base := runWorkload(t, "oltp-db2", Config{Coherence: tinyCoherence(2)}, 400_000)
	sms := runWorkload(t, "oltp-db2", Config{
		Coherence:      tinyCoherence(2),
		PrefetcherName: "sms",
	}, 400_000)
	cov := sms.L1Coverage(base)
	if cov.Covered < 0.15 {
		t.Fatalf("SMS L1 coverage %.3f too low — pipeline broken", cov.Covered)
	}
	if cov.Uncovered > 1.1 {
		t.Fatalf("SMS uncovered %.3f — prefetching made things much worse", cov.Uncovered)
	}
	off := sms.OffChipCoverage(base)
	if off.Covered <= 0 {
		t.Fatal("no off-chip coverage")
	}
	if sms.StreamRequests == 0 || len(sms.SMSStats) != 2 {
		t.Fatalf("stream bookkeeping missing: %d reqs, %d stats", sms.StreamRequests, len(sms.SMSStats))
	}
}

func TestSMSBeatsGHBOnOLTP(t *testing.T) {
	// The paper's headline comparison (Fig. 11): interleaved commercial
	// access streams favour SMS over GHB.
	const n = 400_000
	cc := tinyCoherence(2)
	base := runWorkload(t, "oltp-db2", Config{Coherence: cc}, n)
	sms := runWorkload(t, "oltp-db2", Config{Coherence: cc, PrefetcherName: "sms"}, n)
	ghbRes := runWorkload(t, "oltp-db2", Config{Coherence: cc, PrefetcherName: "ghb"}, n)
	smsCov := sms.OffChipCoverage(base).Covered
	ghbCov := ghbRes.OffChipCoverage(base).Covered
	if smsCov <= ghbCov {
		t.Fatalf("SMS off-chip coverage %.3f not above GHB %.3f on OLTP", smsCov, ghbCov)
	}
}

func TestScientificHighCoverage(t *testing.T) {
	// sparse has the suite's most predictable patterns (92% in the
	// paper); demand a high bar here.
	const n = 400_000
	cc := tinyCoherence(2)
	base := runWorkload(t, "sparse", Config{Coherence: cc}, n)
	sms := runWorkload(t, "sparse", Config{Coherence: cc, PrefetcherName: "sms"}, n)
	cov := sms.OffChipCoverage(base)
	if cov.Covered < 0.5 {
		t.Fatalf("sparse off-chip coverage %.3f, want >= 0.5", cov.Covered)
	}
}

func TestGenerationTracking(t *testing.T) {
	res := runWorkload(t, "oltp-db2", Config{
		Coherence:        tinyCoherence(2),
		TrackGenerations: true,
	}, 200_000)
	if res.OracleGenerationsL1 == 0 || res.OracleGenerationsL2 == 0 {
		t.Fatalf("no generations scored: %+v", res)
	}
	// The oracle takes one miss per generation: it cannot exceed the
	// actual miss count (read+write misses bound).
	if res.OracleGenerationsL1 > res.L1ReadMisses+res.L1WriteMisses {
		t.Fatalf("oracle L1 %d exceeds misses %d", res.OracleGenerationsL1, res.L1ReadMisses+res.L1WriteMisses)
	}
	if res.DensityL1.Total() == 0 || res.DensityL2.Total() == 0 {
		t.Fatal("density histograms empty")
	}
	// Histogram totals are miss-weighted: equal to scored misses, which
	// cannot exceed total misses at the level.
	if res.DensityL1.Total() > res.L1ReadMisses+res.L1WriteMisses {
		t.Fatalf("density total %d exceeds L1 misses", res.DensityL1.Total())
	}
}

func TestWindowSampling(t *testing.T) {
	res := runWorkload(t, "dss-q1", Config{
		Coherence:          tinyCoherence(2),
		WindowInstructions: 10_000,
	}, 200_000)
	if len(res.Windows) < 5 {
		t.Fatalf("only %d windows", len(res.Windows))
	}
	var offReads, offGroups uint64
	for _, w := range res.Windows {
		if w.Instructions == 0 {
			t.Fatal("zero-instruction window")
		}
		if w.OffChipReadGroups > w.OffChipReads {
			t.Fatal("more groups than misses")
		}
		offReads += w.OffChipReads
		offGroups += w.OffChipReadGroups
	}
	if offReads == 0 {
		t.Fatal("windows saw no off-chip reads")
	}
	if offGroups == 0 || offGroups > offReads {
		t.Fatalf("groups=%d reads=%d", offGroups, offReads)
	}
	if res.Instructions() == 0 {
		t.Fatal("Instructions() zero")
	}
}

func TestDSSQ1StoreBufferPressure(t *testing.T) {
	// Qry 1's defining property (§4.7): heavy off-chip write misses.
	res := runWorkload(t, "dss-q1", Config{Coherence: tinyCoherence(2)}, 200_000)
	if res.OffChipWriteMisses == 0 {
		t.Fatal("q1 shows no off-chip write misses")
	}
	q2 := runWorkload(t, "dss-q2", Config{Coherence: tinyCoherence(2)}, 200_000)
	r1 := float64(res.OffChipWriteMisses) / float64(res.Accesses)
	r2 := float64(q2.OffChipWriteMisses) / float64(q2.Accesses)
	if r1 <= r2 {
		t.Fatalf("q1 write-miss rate %.4f not above q2 %.4f", r1, r2)
	}
}

func TestLSRunnerWorks(t *testing.T) {
	const n = 200_000
	cc := tinyCoherence(2)
	base := runWorkload(t, "web-apache", Config{Coherence: cc}, n)
	ls := runWorkload(t, "web-apache", Config{Coherence: cc, PrefetcherName: "ls"}, n)
	if ls.L1Coverage(base).Covered <= 0 {
		t.Fatal("LS produced no coverage")
	}
}

func TestStrideRunnerWorks(t *testing.T) {
	const n = 200_000
	cc := tinyCoherence(2)
	base := runWorkload(t, "ocean", Config{Coherence: cc}, n)
	st := runWorkload(t, "ocean", Config{Coherence: cc, PrefetcherName: "stride"}, n)
	if st.OffChipCoverage(base).Covered <= 0 {
		t.Fatal("stride produced no coverage on a dense sequential workload")
	}
}

func TestUnknownPrefetcherRejected(t *testing.T) {
	_, err := NewRunner(Config{Coherence: tinyCoherence(1), PrefetcherName: "no-such-scheme"})
	if err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
}

func TestStepDeterminism(t *testing.T) {
	w, _ := workload.ByName("em3d")
	mk := func() *Result {
		r := MustNewRunner(Config{Coherence: tinyCoherence(2), PrefetcherName: "sms"})
		return r.Run(trace.Limit(w.Make(workload.Config{CPUs: 2, Seed: 5, Length: 100_000}), 100_000))
	}
	a, b := mk(), mk()
	if a.L1ReadMisses != b.L1ReadMisses || a.L1CoveredMisses != b.L1CoveredMisses ||
		a.StreamRequests != b.StreamRequests || a.Overpredictions != b.Overpredictions {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestCoverageRatios(t *testing.T) {
	base := &Result{L1ReadMisses: 100, OffChipReadMisses: 50}
	r := &Result{L1ReadMisses: 40, L1CoveredMisses: 55, OffChipReadMisses: 20,
		OffChipCoveredMisses: 25, Overpredictions: 10}
	c := r.L1Coverage(base)
	if c.Covered != 0.60 || c.Uncovered != 0.40 || c.Overpredicted != 0.10 {
		t.Fatalf("L1Coverage = %+v", c)
	}
	o := r.OffChipCoverage(base)
	if o.Covered != 0.6 || o.Uncovered != 0.4 || o.Overpredicted != 0.2 {
		t.Fatalf("OffChipCoverage = %+v", o)
	}
	// A variant that doubles the miss rate has zero coverage, not
	// negative.
	worse := &Result{L1ReadMisses: 200}
	if got := worse.L1Coverage(base); got.Covered != 0 || got.Uncovered != 2.0 {
		t.Fatalf("worse-variant coverage = %+v", got)
	}
	var m mem.Geometry
	_ = m
}

func TestRunReturnsDetachedResult(t *testing.T) {
	// Results outlive runners in the experiment session cache; Run must
	// return a copy so retaining it does not pin the simulation state,
	// and further Steps must not mutate it.
	w, _ := workload.ByName("sparse")
	r := MustNewRunner(Config{Coherence: tinyCoherence(1)})
	res := r.Run(trace.Limit(w.Make(workload.Config{CPUs: 1, Seed: 1, Length: 10_000}), 10_000))
	before := res.Accesses
	// Keep stepping the same runner: the returned result must not move.
	src := w.Make(workload.Config{CPUs: 1, Seed: 2, Length: 1_000})
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		r.Step(rec)
	}
	if res.Accesses != before {
		t.Fatal("returned Result aliases the runner's accumulator")
	}
	if r.Result().Accesses <= before {
		t.Fatal("runner's own result did not advance")
	}
}

func TestRunContextCancelsPromptly(t *testing.T) {
	// An unbounded synthetic trace: only cancellation can end this run.
	var seq uint64
	endless := trace.Func(func() (trace.Record, bool) {
		seq++
		return trace.Record{Seq: seq, PC: 0x400, Addr: mem.Addr(seq*64) & 0xFFFFFF}, true
	})
	r := MustNewRunner(Config{Coherence: tinyCoherence(1), PrefetcherName: "sms"})

	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Uint64
	r.OnProgress(1024, func(records uint64) {
		if calls.Add(1) == 3 {
			cancel()
		}
	})

	done := make(chan error, 1)
	go func() {
		res, err := r.RunContext(ctx, endless)
		if res != nil {
			t.Error("cancelled run returned a partial Result")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return")
	}
	// Cancellation is checked once per progress interval: the run must
	// have stopped within one interval of the cancelling callback.
	if got := calls.Load(); got > 4 {
		t.Errorf("run kept going for %d progress intervals after cancel", got-3)
	}
}

func TestRunContextCompletesLikeRun(t *testing.T) {
	w, _ := workload.ByName("sparse")
	mk := func() *Runner { return MustNewRunner(Config{Coherence: tinyCoherence(1)}) }
	n := uint64(30_000)
	wcfg := workload.Config{CPUs: 1, Seed: 9, Length: n}

	viaRun := mk().Run(w.Make(wcfg))
	rc := mk()
	var last uint64
	rc.OnProgress(0, func(records uint64) {
		if records < last {
			t.Errorf("progress went backwards: %d after %d", records, last)
		}
		last = records
	})
	viaCtx, err := rc.RunContext(context.Background(), w.Make(wcfg))
	if err != nil {
		t.Fatal(err)
	}
	if viaCtx.Accesses != viaRun.Accesses || viaCtx.L1ReadMisses != viaRun.L1ReadMisses {
		t.Fatalf("RunContext diverged from Run: %+v vs %+v", viaCtx, viaRun)
	}
	if last != n {
		t.Errorf("final progress callback saw %d records, want %d", last, n)
	}
}
