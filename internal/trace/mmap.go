package trace

import (
	"io"
	"os"
)

// readFallback loads the whole file into memory — the portable stand-in
// for mapFile when mmap is unavailable or fails.
func readFallback(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if err := readAt(f, data, 0); err != nil && err != io.EOF {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
