package core

import "repro/internal/mem"

// RegisterFile is the bank of prediction registers that drives streaming
// (§3.2): each armed register holds a predicted spatial pattern and its
// region base address; stream requests are drawn from the registers in
// round-robin order, clearing pattern bits as blocks are requested; a
// register frees itself when its pattern is exhausted.
//
// RegisterFile is shared by the AGT-based SMS engine and by the sectored
// training-structure variants (package sectored), which differ only in how
// they observe generations, not in how they stream.
type RegisterFile struct {
	geo      mem.Geometry
	regs     []PredictionRegister
	next     int
	capacity int

	armed       uint64
	issued      uint64
	overwritten uint64

	out []mem.Addr // reused Next result buffer
}

// NewRegisterFile builds a register file with the given capacity
// (paper default: 16 outstanding stream contexts). capacity <= 0 means
// effectively unbounded.
func NewRegisterFile(geo mem.Geometry, capacity int) *RegisterFile {
	if capacity <= 0 {
		capacity = 1 << 30
	}
	return &RegisterFile{geo: geo, capacity: capacity}
}

// Arm loads a prediction into a free register, overwriting the register at
// the round-robin cursor when all are busy. Empty patterns are ignored.
func (rf *RegisterFile) Arm(base mem.Addr, p mem.Pattern) {
	if p.Empty() {
		return
	}
	rf.armed++
	if len(rf.regs) < rf.capacity {
		rf.regs = append(rf.regs, PredictionRegister{Base: base, Pattern: p})
		return
	}
	rf.overwritten++
	rf.regs[rf.next%len(rf.regs)] = PredictionRegister{Base: base, Pattern: p}
}

// Next pops up to max predicted block addresses round-robin across the
// armed registers. The returned slice aliases a buffer owned by the
// register file, valid until the next call — the stream-issue loop
// consumes it immediately, so steady-state streaming never allocates.
func (rf *RegisterFile) Next(max int) []mem.Addr {
	if max <= 0 || len(rf.regs) == 0 {
		return nil
	}
	out := rf.out[:0]
	for len(out) < max && len(rf.regs) > 0 {
		if rf.next >= len(rf.regs) {
			rf.next = 0
		}
		reg := &rf.regs[rf.next]
		if i := reg.Pattern.FirstSet(); i >= 0 {
			reg.Pattern.Clear(i)
			out = append(out, rf.geo.BlockOfRegion(reg.Base, i))
			rf.issued++
		}
		if reg.Pattern.Empty() {
			rf.regs[rf.next] = rf.regs[len(rf.regs)-1]
			rf.regs = rf.regs[:len(rf.regs)-1]
		} else {
			rf.next++
		}
	}
	rf.out = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// Active returns the number of armed registers.
func (rf *RegisterFile) Active() int { return len(rf.regs) }

// Armed returns the number of predictions loaded.
func (rf *RegisterFile) Armed() uint64 { return rf.armed }

// Issued returns the number of stream requests emitted.
func (rf *RegisterFile) Issued() uint64 { return rf.issued }

// Overwritten returns the number of live registers clobbered by newer
// predictions.
func (rf *RegisterFile) Overwritten() uint64 { return rf.overwritten }
