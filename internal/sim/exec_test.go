package sim_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// execTrace builds the shared input stream for the pipelined/parallel
// differentials: a generator-shaped workload trace.
func execTrace(t *testing.T, length uint64) []trace.Record {
	t.Helper()
	w, err := workload.ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	return trace.Collect(w.Make(workload.Config{CPUs: 4, Seed: 11, Length: length}), 0)
}

// TestPipelinedRunMatchesSerial is the tentpole's bit-identity gate: for
// every registered prefetcher, Result JSON must be byte-identical across
// the plain serial path, serial + pipelined decode, and the lane-
// parallel path (which conflict-replays serially for prefetcher configs
// and genuinely shards for the baseline). Run with -race this also
// exercises the hand-off rings under the race detector.
func TestPipelinedRunMatchesSerial(t *testing.T) {
	recs := execTrace(t, 50_000)
	for _, pf := range []string{"none", "sms", "ls", "ghb", "stride", "nextline"} {
		t.Run(pf, func(t *testing.T) {
			cfg := sim.Config{
				PrefetcherName:   pf,
				WarmupAccesses:   20_001, // deliberately not batch-aligned
				TrackGenerations: true,
			}
			serial := sim.MustNewRunner(cfg)
			want, err := serial.RunContext(context.Background(), trace.NewSliceSource(recs))
			if err != nil {
				t.Fatal(err)
			}
			wantJSON := resultJSON(t, want)

			for _, x := range []sim.Exec{
				{DecodeAhead: 2},
				{DecodeAhead: 4},
				{Lanes: 2},
				{Lanes: 4},
				{Lanes: 8, DecodeAhead: 3},
			} {
				r := sim.MustNewRunner(cfg)
				r.SetExec(x)
				got, err := r.RunContext(context.Background(), trace.NewSliceSource(recs))
				if err != nil {
					t.Fatalf("exec %+v: %v", x, err)
				}
				if gotJSON := resultJSON(t, got); gotJSON != wantJSON {
					t.Fatalf("exec %+v Result JSON differs from serial:\n%s\nvs\n%s", x, gotJSON, wantJSON)
				}
				ps := r.PipelineStats()
				if x.Lanes > 1 && pf != "none" {
					if ps.ConflictReplays != 1 || ps.Lanes != 1 {
						t.Fatalf("exec %+v with prefetcher %s: want serial conflict replay, got %+v", x, pf, ps)
					}
				}
				if x.Lanes > 1 && pf == "none" {
					if ps.Lanes < 2 {
						t.Fatalf("exec %+v baseline: expected sharded lanes, got %+v", x, ps)
					}
					var n uint64
					for _, ln := range ps.LaneRecords {
						n += ln
					}
					if n != uint64(len(recs)) {
						t.Fatalf("lanes simulated %d records, trace has %d", n, len(recs))
					}
					if occ := ps.Occupancy(); occ <= 0 || occ > 100 {
						t.Fatalf("implausible lane occupancy %v", occ)
					}
				}
			}
		})
	}
}

// TestParallelMatchesSerialFromGeneratorSource covers the non-ViewSource
// fan-out path (batched generator source instead of an in-memory slice).
func TestParallelMatchesSerialFromGeneratorSource(t *testing.T) {
	w, err := workload.ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.Config{CPUs: 4, Seed: 7, Length: 40_000}
	cfg := sim.Config{WarmupAccesses: 13_333, TrackGenerations: true}

	serial := sim.MustNewRunner(cfg)
	want, err := serial.RunContext(context.Background(), w.Make(wcfg))
	if err != nil {
		t.Fatal(err)
	}
	par := sim.MustNewRunner(cfg)
	par.SetExec(sim.Exec{Lanes: 4, DecodeAhead: 2})
	got, err := par.RunContext(context.Background(), w.Make(wcfg))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := resultJSON(t, want), resultJSON(t, got); a != b {
		t.Fatalf("parallel Result JSON differs from serial:\n%s\nvs\n%s", b, a)
	}
}

// TestLaneClampRespectsGeometry pins the safe-lane-count derivation: with
// the default geometry (64 B blocks, 2 KiB regions, 256-set L1) the lane
// key may use at most min(setBits) - log2(blocksPerRegion) = 3 bits, so
// an extravagant request must clamp to 8 lanes, and a non-power-of-two
// request rounds down to a mask-friendly count.
func TestLaneClampRespectsGeometry(t *testing.T) {
	recs := execTrace(t, 4_000)
	for _, tc := range []struct{ want, effective int }{
		{64, 8},
		{8, 8},
		{3, 2},
		{2, 2},
	} {
		r := sim.MustNewRunner(sim.Config{WarmupAccesses: 1_000})
		r.SetExec(sim.Exec{Lanes: tc.want})
		if _, err := r.RunContext(context.Background(), trace.NewSliceSource(recs)); err != nil {
			t.Fatal(err)
		}
		if got := r.PipelineStats().Lanes; got != tc.effective {
			t.Errorf("Lanes=%d: effective %d, want %d", tc.want, got, tc.effective)
		}
	}
}

// TestExecDoesNotChangeCanonicalIdentity guards the store-key contract:
// execution tuning lives outside Config, so a Config's canonical form —
// the identity the result store hashes — cannot observe it.
func TestExecDoesNotChangeCanonicalIdentity(t *testing.T) {
	cfg := sim.Config{PrefetcherName: "sms", WarmupAccesses: 100}
	r := sim.MustNewRunner(cfg)
	r.SetExec(sim.Exec{Lanes: 8, DecodeAhead: 16})
	if r.Config().Canonical() != cfg.Canonical() {
		t.Fatal("SetExec perturbed the runner's canonical Config")
	}
}

// TestParallelCancellation covers mid-run cancellation of the lane path:
// the run must return the context error, never a partial Result, and all
// lane goroutines and the decode goroutine must wind down (the -race
// build catches leaks touching freed batches).
func TestParallelCancellation(t *testing.T) {
	recs := execTrace(t, 120_000)
	r := sim.MustNewRunner(sim.Config{WarmupAccesses: 10_000})
	r.SetExec(sim.Exec{Lanes: 4, DecodeAhead: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	r.OnProgress(4096, func(records uint64) {
		if records > 20_000 {
			once.Do(cancel)
		}
	})
	res, err := r.RunContext(ctx, trace.NewSliceSource(recs))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled parallel run returned a partial Result")
	}
}

// erringSource yields n records and then fails like a corrupt trace
// artifact: exhaustion plus a latched Err.
type erringSource struct {
	n    int
	fail error
}

func (s *erringSource) Next() (trace.Record, bool) {
	if s.n == 0 {
		return trace.Record{}, false
	}
	s.n--
	return trace.Record{Addr: mem.Addr(64 * s.n), CPU: uint8(s.n % 2)}, true
}

func (s *erringSource) Err() error { return s.fail }

// TestParallelSurfacesLatchedDecodeError pins the PR 5 contract through
// the whole pipeline: a source that fails mid-stream must fail the run —
// through the decode-ahead stage, through the lane fan-out, and through
// both composed — so a corrupt trace never yields a persistable Result.
func TestParallelSurfacesLatchedDecodeError(t *testing.T) {
	for _, x := range []sim.Exec{
		{DecodeAhead: 2},
		{Lanes: 4},
		{Lanes: 4, DecodeAhead: 2},
	} {
		src := &erringSource{n: 10_000, fail: trace.ErrBadFormat}
		r := sim.MustNewRunner(sim.Config{WarmupAccesses: 100})
		r.SetExec(x)
		res, err := r.RunContext(context.Background(), src)
		if err == nil || !strings.Contains(err.Error(), "trace source failed mid-stream") {
			t.Fatalf("exec %+v: err = %v, want latched decode error", x, err)
		}
		if res != nil {
			t.Fatalf("exec %+v: erring source produced a Result", x)
		}
	}
}
