package timing

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func model(t *testing.T, mutate func(*Params)) *Model {
	t.Helper()
	p := DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	if DefaultParams().Validate() != nil {
		t.Fatal("default params invalid")
	}
	bad := DefaultParams()
	bad.BaseCPI = 0
	if bad.Validate() == nil {
		t.Error("zero BaseCPI accepted")
	}
	bad = DefaultParams()
	bad.SystemFrac = 1
	if bad.Validate() == nil {
		t.Error("SystemFrac=1 accepted")
	}
	bad = DefaultParams()
	bad.StoreMLP = 0
	if bad.Validate() == nil {
		t.Error("zero StoreMLP accepted")
	}
}

func TestBusyOnlyWindow(t *testing.T) {
	m := model(t, func(p *Params) { p.SystemFrac = 0.2 })
	b := m.WindowCycles(sim.Window{Instructions: 1000})
	if b.OffChipRead != 0 || b.OnChipRead != 0 || b.StoreBuffer != 0 {
		t.Fatalf("stall categories nonzero: %+v", b)
	}
	wantBusy := 1000 * DefaultParams().BaseCPI
	if math.Abs(b.UserBusy+b.SystemBusy-wantBusy) > 1e-9 {
		t.Errorf("busy = %f, want %f", b.UserBusy+b.SystemBusy, wantBusy)
	}
	if math.Abs(b.SystemBusy-wantBusy*0.2) > 1e-9 {
		t.Errorf("system = %f", b.SystemBusy)
	}
	if math.Abs(b.Other-1000*DefaultParams().OtherCPI) > 1e-9 {
		t.Errorf("other = %f", b.Other)
	}
}

func TestMissGroupsChargeLatency(t *testing.T) {
	m := model(t, nil)
	b := m.WindowCycles(sim.Window{
		Instructions:      1000,
		OffChipReads:      10,
		OffChipReadGroups: 2, // 10 misses in 2 overlapped bursts
		OnChipReads:       5,
		OnChipReadGroups:  5,
	})
	if b.OffChipRead != 2*DefaultParams().MemLatency {
		t.Errorf("offchip = %f", b.OffChipRead)
	}
	if b.OnChipRead != 5*DefaultParams().L2Latency {
		t.Errorf("onchip = %f", b.OnChipRead)
	}
}

func TestStoreBufferOverflow(t *testing.T) {
	m := model(t, nil)
	p := DefaultParams()
	quota := p.StoreBufferDepth + 1000*p.StoreDrainPerKiloInstr/1000
	under := m.WindowCycles(sim.Window{Instructions: 1000, OffChipWrites: uint64(quota)})
	if under.StoreBuffer != 0 {
		t.Errorf("under-quota store stall = %f", under.StoreBuffer)
	}
	over := m.WindowCycles(sim.Window{Instructions: 1000, OffChipWrites: uint64(quota) + 40})
	want := 40 * p.MemLatency / p.StoreMLP
	if math.Abs(over.StoreBuffer-want) > 1e-9 {
		t.Errorf("store stall = %f, want %f", over.StoreBuffer, want)
	}
}

func TestSystemProportionalToTime(t *testing.T) {
	m := model(t, func(p *Params) {
		p.SystemFrac = 0.25
		p.SystemProportionalToTime = true
	})
	b := m.WindowCycles(sim.Window{Instructions: 1000, OffChipReadGroups: 10, OffChipReads: 10})
	if frac := b.SystemBusy / b.Total(); math.Abs(frac-0.25) > 1e-9 {
		t.Errorf("system share of wall time = %f, want 0.25", frac)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{UserBusy: 1, SystemBusy: 2, OffChipRead: 3, OnChipRead: 4, StoreBuffer: 5, Other: 6}
	if b.Total() != 21 {
		t.Errorf("Total = %f", b.Total())
	}
	s := b.Scale(2)
	if s.Total() != 42 || s.UserBusy != 2 {
		t.Errorf("Scale = %+v", s)
	}
}

func mkWindows(n int, offGroups uint64) []sim.Window {
	ws := make([]sim.Window, n)
	for i := range ws {
		ws[i] = sim.Window{Instructions: 1000, OffChipReads: offGroups, OffChipReadGroups: offGroups}
	}
	return ws
}

func TestCompareSpeedup(t *testing.T) {
	m := model(t, nil)
	base := mkWindows(20, 10) // 10 serialized off-chip misses per window
	enh := mkWindows(20, 4)   // prefetcher removed 6
	cmp, err := m.Compare(base, enh)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup.Mean <= 1.0 {
		t.Fatalf("speedup %v not > 1", cmp.Speedup)
	}
	wantBase := 20 * (1000*(DefaultParams().BaseCPI+DefaultParams().OtherCPI) + 10*DefaultParams().MemLatency)
	if math.Abs(cmp.Base.Total()-wantBase) > 1e-6 {
		t.Errorf("base cycles = %f, want %f", cmp.Base.Total(), wantBase)
	}
	// Identical windows → CI width 0.
	if cmp.Speedup.Half > 1e-9 {
		t.Errorf("CI half = %f, want 0 for identical windows", cmp.Speedup.Half)
	}
	// Same-run comparison → speedup exactly 1.
	cmp, _ = m.Compare(base, base)
	if math.Abs(cmp.Speedup.Mean-1) > 1e-12 {
		t.Errorf("self speedup = %v", cmp.Speedup)
	}
}

func TestCompareWindowMismatch(t *testing.T) {
	m := model(t, nil)
	if _, err := m.Compare(mkWindows(5, 1), mkWindows(9, 1)); err == nil {
		t.Error("diverging window counts accepted")
	}
	// Off-by-one (trailing partial window) tolerated.
	if _, err := m.Compare(mkWindows(5, 1), mkWindows(6, 1)); err != nil {
		t.Errorf("off-by-one rejected: %v", err)
	}
	if _, err := m.Compare(nil, nil); err == nil {
		t.Error("empty comparison accepted")
	}
}

func TestCompareCIWidthWithVariance(t *testing.T) {
	m := model(t, nil)
	base := mkWindows(20, 10)
	enh := mkWindows(20, 4)
	// Perturb half the enhanced windows: CI must widen beyond zero.
	for i := 0; i < len(enh); i += 2 {
		enh[i].OffChipReadGroups = 8
		enh[i].OffChipReads = 8
	}
	cmp, err := m.Compare(base, enh)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup.Half <= 0 {
		t.Errorf("CI half = %f, want > 0", cmp.Speedup.Half)
	}
}

func TestCyclesAggregation(t *testing.T) {
	m := model(t, nil)
	ws := mkWindows(3, 2)
	total := m.Cycles(ws)
	per := m.WindowCycles(ws[0])
	if math.Abs(total.Total()-3*per.Total()) > 1e-9 {
		t.Fatalf("Cycles = %f, want %f", total.Total(), 3*per.Total())
	}
	if m.Cycles(nil).Total() != 0 {
		t.Fatal("empty window list should cost nothing")
	}
}

func TestSpeedupImprovesWithCoverage(t *testing.T) {
	// Monotonicity: more covered misses (fewer remaining groups) means
	// higher speedup.
	m := model(t, nil)
	base := mkWindows(10, 10)
	prev := 0.0
	for _, remaining := range []uint64{8, 6, 4, 2, 0} {
		cmp, err := m.Compare(base, mkWindows(10, remaining))
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Speedup.Mean <= prev {
			t.Fatalf("speedup %f not increasing (remaining=%d)", cmp.Speedup.Mean, remaining)
		}
		prev = cmp.Speedup.Mean
	}
}
