package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// tinyEngine builds a fast engine for unit scenarios.
func tinyEngine(t *testing.T, st *store.Store, parallel int) *Engine {
	t.Helper()
	return New(Config{
		Workload: workload.Config{CPUs: 1, Seed: 1, Length: 20_000},
		Parallel: parallel,
		Store:    st,
	})
}

func memSys() coherence.Config {
	return coherence.Config{
		CPUs: 1,
		L1:   cache.Config{Size: 32 << 10, Assoc: 2, BlockSize: 64},
		L2:   cache.Config{Size: 1 << 20, Assoc: 8, BlockSize: 64},
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPlanValidate(t *testing.T) {
	base := sim.Config{Coherence: memSys()}
	for name, p := range map[string]Plan{
		"empty":             {Name: "p"},
		"no variants":       {Name: "p", Workloads: []string{"sparse"}},
		"empty variant key": {Name: "p", Workloads: []string{"sparse"}, Variants: []Variant{{Config: base}}},
		"duplicate key": {Name: "p", Workloads: []string{"sparse"},
			Variants: []Variant{{Key: "a", Config: base}, {Key: "a", Config: base}}},
		"unknown baseline": {Name: "p", Workloads: []string{"sparse"}, Baseline: "nope",
			Variants: []Variant{{Key: "a", Config: base}}},
		"custom without run": {Name: "p", Customs: []Custom{{Workload: "sparse", Key: "c"}}},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid plan accepted", name)
		}
	}
	ok := Plan{Name: "p", Workloads: []string{"sparse"}, Baseline: "a",
		Variants: []Variant{{Key: "a", Config: base}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestExecuteDeduplicatesEquivalentCells: cells whose configs
// canonicalize identically (defaults spelled out vs implicit) compile to
// one run.
func TestExecuteDeduplicatesEquivalentCells(t *testing.T) {
	e := tinyEngine(t, nil, 0)
	p := Plan{
		Name:      "dedup",
		Workloads: []string{"sparse"},
		Baseline:  "base",
		Variants: []Variant{
			{Key: "base", Config: sim.Config{Coherence: memSys()}},
			{Key: "base-explicit", Config: sim.Config{Coherence: memSys(), PrefetcherName: "none", StreamRate: sim.DefaultStreamRate}},
			{Key: "sms", Config: sim.Config{Coherence: memSys(), PrefetcherName: "sms"}},
		},
	}
	grid, err := e.Execute(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Simulations(); got != 2 {
		t.Fatalf("simulations = %d, want 2 (base deduped)", got)
	}
	if grid.Result("sparse", "base") != grid.Result("sparse", "base-explicit") {
		t.Error("equivalent cells did not share a run")
	}
	if grid.Baseline("sparse") != grid.Result("sparse", "base") {
		t.Error("baseline linkage broken")
	}
	c := grid.Counts()
	if c.Runs != 2 || c.Simulated != 2 || c.Skipped != 0 || c.Failed != 0 {
		t.Errorf("counts = %+v", c)
	}
}

// TestMergedPlansShareBaselinesExactlyOnce is the PR's acceptance
// criterion: a plan covering two figures that share baseline runs
// executes each unique (workload, config, prefetcher) simulation exactly
// once, asserted via store.Stats() and engine run counts.
func TestMergedPlansShareBaselinesExactlyOnce(t *testing.T) {
	st := openStore(t, t.TempDir())
	e := tinyEngine(t, st, 0)

	base := sim.Config{Coherence: memSys()}
	figA := Plan{
		Name: "figA", Workloads: []string{"sparse", "ocean"}, Baseline: "base",
		Variants: []Variant{
			{Key: "base", Config: base},
			{Key: "sms", Config: sim.Config{Coherence: memSys(), PrefetcherName: "sms"}},
		},
	}
	figB := Plan{
		Name: "figB", Workloads: []string{"sparse", "ocean"}, Baseline: "base",
		Variants: []Variant{
			{Key: "base", Config: base}, // shared with figA
			{Key: "ghb", Config: sim.Config{Coherence: memSys(), PrefetcherName: "ghb"}},
		},
	}
	merged := Merge("figA+figB", figA, figB)
	grid, err := e.Execute(context.Background(), merged)
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads × {base, sms, ghb} = 6 unique runs, though the merged
	// grid has 8 cells.
	if got := e.Simulations(); got != 6 {
		t.Fatalf("simulations = %d, want 6 (baselines shared)", got)
	}
	if len(grid.cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(grid.cells))
	}
	stats := st.Stats()
	if stats.Writes != 6 {
		t.Fatalf("store writes = %d, want 6", stats.Writes)
	}
	if grid.Result("sparse", "figA/base") != grid.Result("sparse", "figB/base") {
		t.Error("shared baseline not deduplicated across merged plans")
	}

	// A second engine over the same store re-executes the merged plan
	// with zero simulations: every run is a store hit.
	e2 := tinyEngine(t, st, 0)
	if _, err := e2.Execute(context.Background(), merged); err != nil {
		t.Fatal(err)
	}
	if got := e2.Simulations(); got != 0 {
		t.Fatalf("warm re-execution simulated %d times, want 0", got)
	}
	if got := e2.StoreHits(); got != 6 {
		t.Fatalf("store hits = %d, want 6", got)
	}
}

// TestConcurrentRunsSingleflight: concurrent Run calls for one identity
// perform exactly one simulation, every caller receiving its result.
func TestConcurrentRunsSingleflight(t *testing.T) {
	e := tinyEngine(t, nil, 4)
	cfg := sim.Config{Coherence: memSys(), PrefetcherName: "sms"}
	const n = 16
	var wg sync.WaitGroup
	results := make([]*sim.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Run(context.Background(), "sparse", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if got := e.Simulations(); got != 1 {
		t.Fatalf("simulations = %d, want 1", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("callers received different results")
		}
	}
}

// TestCancelMidGridSkipsUnstartedWithoutPoisoningStore: cancelling a
// grid mid-flight returns promptly, marks unstarted runs as skipped, and
// leaves no partial objects in the store.
func TestCancelMidGridSkipsUnstartedWithoutPoisoningStore(t *testing.T) {
	st := openStore(t, t.TempDir())
	// One worker and a long trace: the grid executes strictly serially
	// and each run takes long enough to cancel mid-flight.
	e := New(Config{
		Workload: workload.Config{CPUs: 1, Seed: 1, Length: 30_000_000},
		Parallel: 1,
		Store:    st,
	})
	p := Plan{
		Name: "cancelgrid", Workloads: []string{"sparse", "ocean", "em3d"}, Baseline: "base",
		Variants: []Variant{
			{Key: "base", Config: sim.Config{Coherence: memSys()}},
			{Key: "sms", Config: sim.Config{Coherence: memSys(), PrefetcherName: "sms"}},
		},
	}

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 8)
	ctx = WithEventSink(ctx, func(ev Event) {
		if ev.Kind == RunStarted {
			select {
			case started <- struct{}{}:
			default:
			}
		}
	})

	type outcome struct {
		grid *Grid
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		g, err := e.Execute(ctx, p)
		done <- outcome{g, err}
	}()

	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("no run ever started")
	}
	begin := time.Now()
	cancel()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled grid did not return")
	}
	// "Within one progress interval" at simulation speed is milliseconds;
	// allow generous slack for loaded CI machines.
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", out.err)
	}
	c := out.grid.Counts()
	if c.Skipped == 0 {
		t.Errorf("no runs marked skipped: %+v", c)
	}
	if c.Simulated+c.Cached+c.Skipped+c.Failed != c.Runs {
		t.Errorf("counts do not partition runs: %+v", c)
	}
	// The store holds only completed runs — cancelled and skipped ones
	// must not have written anything.
	stats := st.Stats()
	if int(stats.Writes) != c.Simulated {
		t.Errorf("store writes = %d, want %d (completed runs only)", stats.Writes, c.Simulated)
	}
	if e.CancelledRuns() == 0 {
		t.Error("mid-run cancellation not counted")
	}
}

// TestEventsLifecycle: a small grid emits a coherent event stream over
// the Stream channel form, ending with GridDone.
func TestEventsLifecycle(t *testing.T) {
	e := tinyEngine(t, nil, 0)
	p := Plan{
		Name: "events", Workloads: []string{"sparse"},
		Variants: []Variant{{Key: "base", Config: sim.Config{Coherence: memSys()}}},
		Customs: []Custom{{Workload: "sparse", Key: "extra",
			Run: func(ctx context.Context) (any, error) { return 42, nil }}},
	}
	var evs []Event
	for ev := range e.Stream(context.Background(), p) {
		evs = append(evs, ev)
	}
	if len(evs) < 4 {
		t.Fatalf("only %d events", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Kind != GridDone || last.Err != nil || last.Grid == nil {
		t.Fatalf("last event = %+v", last)
	}
	if got := last.Grid.Custom("sparse", "extra"); got != 42 {
		t.Errorf("custom cell = %v", got)
	}
	kinds := map[EventKind]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
		if ev.Plan != "events" {
			t.Errorf("event missing plan name: %+v", ev)
		}
	}
	if kinds[RunStarted] != 2 || kinds[RunFinished] != 2 {
		t.Errorf("kinds = %v, want 2 started + 2 finished", kinds)
	}
	if kinds[RunProgress] == 0 {
		t.Error("no progress events")
	}

	// Re-executing the same plan on the same engine serves from memo:
	// cached events, no new simulations.
	sims := e.Simulations()
	var cached int
	for ev := range e.Stream(context.Background(), p) {
		if ev.Kind == RunCached {
			cached++
		}
	}
	if e.Simulations() != sims {
		t.Error("re-execution simulated again")
	}
	if cached == 0 {
		t.Error("no cached events on re-execution")
	}
}

// TestRunErrorsSurfaceAndDoNotStick: an unknown prefetcher errors, the
// error is not memoized, and a corrected config succeeds.
func TestRunErrorsSurfaceAndDoNotStick(t *testing.T) {
	e := tinyEngine(t, nil, 0)
	bad := sim.Config{Coherence: memSys(), PrefetcherName: "no-such"}
	if _, err := e.Run(context.Background(), "sparse", bad); err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
	if _, err := e.Run(context.Background(), "no-such-workload", sim.Config{Coherence: memSys()}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := e.Run(context.Background(), "sparse", sim.Config{Coherence: memSys()}); err != nil {
		t.Fatalf("good run after bad: %v", err)
	}
}

// TestCachedProbe: Cached reports memoized and stored runs without
// simulating.
func TestCachedProbe(t *testing.T) {
	dir := t.TempDir()
	e := tinyEngine(t, openStore(t, dir), 0)
	cfg := sim.Config{Coherence: memSys()}
	if _, ok := e.Cached("sparse", cfg); ok {
		t.Fatal("empty engine claims a cached run")
	}
	if _, err := e.Run(context.Background(), "sparse", cfg); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Cached("sparse", cfg); !ok {
		t.Fatal("memoized run not reported cached")
	}
	// A fresh engine over the same store sees it via the disk probe.
	e2 := tinyEngine(t, openStore(t, dir), 0)
	if _, ok := e2.Cached("sparse", cfg); !ok {
		t.Fatal("stored run not reported cached")
	}
	if e2.Simulations() != 0 {
		t.Fatal("probe simulated")
	}
}

// TestMemoBounded: the in-memory memoization layer evicts past its bound
// (a long-running smsd must not grow without limit), oldest first.
func TestMemoBounded(t *testing.T) {
	e := tinyEngine(t, nil, 0)
	for i := 0; i < maxMemoized+10; i++ {
		key := fmt.Sprintf("key-%d", i)
		ent := &entry{done: make(chan struct{}), res: &sim.Result{}}
		close(ent.done)
		e.mu.Lock()
		e.memo[key] = ent
		e.order = append(e.order, key)
		for len(e.order) > maxMemoized {
			oldest := e.order[0]
			e.order = e.order[1:]
			delete(e.memo, oldest)
		}
		e.mu.Unlock()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.memo) != maxMemoized {
		t.Fatalf("memo holds %d entries, want %d", len(e.memo), maxMemoized)
	}
	if _, ok := e.memo["key-0"]; ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := e.memo[fmt.Sprintf("key-%d", maxMemoized+9)]; !ok {
		t.Error("newest entry missing")
	}
}

// TestExtraCellsCompileAndDedupe: explicit Extra cells share runs with
// cross-product cells when configs canonicalize identically.
func TestExtraCellsCompileAndDedupe(t *testing.T) {
	e := tinyEngine(t, nil, 0)
	p := Plan{
		Name:      "extra",
		Workloads: []string{"sparse"},
		Variants:  []Variant{{Key: "base", Config: sim.Config{Coherence: memSys()}}},
		Extra: []Cell{
			{Workload: "sparse", Key: "x/base", Config: sim.Config{Coherence: memSys(), PrefetcherName: "none"}},
			{Workload: "ocean", Key: "x/base", Config: sim.Config{Coherence: memSys()}},
		},
	}
	grid, err := e.Execute(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Simulations(); got != 2 {
		t.Fatalf("simulations = %d, want 2 (sparse deduped, ocean fresh)", got)
	}
	if grid.Result("sparse", "base") != grid.Result("sparse", "x/base") {
		t.Error("extra cell did not dedupe against the cross product")
	}
	if grid.Result("ocean", "x/base") == nil {
		t.Error("extra-only workload missing")
	}
}
