// Package cache implements the set-associative cache model used for every
// level of the simulated hierarchy. The model is functional (hit/miss and
// content tracking, no timing): timing is layered on by package timing, and
// coherence by package coherence.
//
// The block size is configurable because the paper's Figure 4 sweeps block
// sizes from 64 B to 8 kB while holding capacity fixed. Lines carry a
// prefetched/used pair of flags so the simulator can account coverage
// (prefetched lines that are hit before leaving the cache) and
// overpredictions (prefetched lines evicted or invalidated unused).
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Config describes one cache.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// Assoc is the set associativity.
	Assoc int
	// BlockSize is the line size in bytes (a power of two).
	BlockSize int
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache: block size %d not a positive power of two", c.BlockSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d not positive", c.Assoc)
	}
	if c.Size <= 0 || c.Size%(c.BlockSize*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not a multiple of assoc*block (%d)", c.Size, c.BlockSize*c.Assoc)
	}
	sets := c.Size / (c.BlockSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.Size / (c.BlockSize * c.Assoc) }

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool // brought in by a stream request
	used       bool // demand-hit at least once since fill
	offChip    bool // prefetch fill was sourced from off-chip memory
	lru        uint64
}

// Cache is a set-associative, LRU-replacement cache.
type Cache struct {
	cfg       Config
	blockBits uint
	setMask   uint64
	sets      [][]line
	clock     uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		blockBits: uint(bits.TrailingZeros64(uint64(cfg.BlockSize))),
		setMask:   uint64(nsets - 1),
		sets:      make([][]line, nsets),
	}
	backing := make([]line, nsets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr truncates an address to this cache's block base.
func (c *Cache) BlockAddr(a mem.Addr) mem.Addr {
	return a &^ (mem.Addr(c.cfg.BlockSize) - 1)
}

func (c *Cache) index(a mem.Addr) (set uint64, tag uint64) {
	bn := uint64(a) >> c.blockBits
	return bn & c.setMask, bn >> uint(bits.TrailingZeros64(uint64(len(c.sets))))
}

// Eviction describes a line displaced by a fill or removed by an
// invalidation.
type Eviction struct {
	// Addr is the base address of the displaced block.
	Addr mem.Addr
	// Dirty reports whether the block held modified data.
	Dirty bool
	// PrefetchedUnused reports whether the block was streamed in and
	// never demand-hit: an overprediction (§4.2's bandwidth-wasting
	// category).
	PrefetchedUnused bool
}

// Result describes the outcome of an access or fill.
type Result struct {
	// Hit reports whether the block was present.
	Hit bool
	// PrefetchHit reports whether this is the first demand hit on a
	// streamed block — the event that converts a would-be miss into
	// prefetcher coverage.
	PrefetchHit bool
	// PrefetchOffChip refines PrefetchHit: the stream fill that brought
	// the block in was sourced from off-chip memory, so the covered
	// would-be miss was an off-chip miss.
	PrefetchOffChip bool
	// Evicted is valid when a fill displaced a victim line.
	Evicted bool
	// Victim is the displaced line when Evicted.
	Victim Eviction
}

// Access performs a demand access (read or write). On a miss the block is
// filled, possibly displacing a victim.
func (c *Cache) Access(a mem.Addr, write bool) Result {
	set, tag := c.index(a)
	c.clock++
	lines := c.sets[set]
	for i := range lines {
		ln := &lines[i]
		if ln.valid && ln.tag == tag {
			res := Result{Hit: true}
			if ln.prefetched && !ln.used {
				res.PrefetchHit = true
				res.PrefetchOffChip = ln.offChip
			}
			ln.used = true
			ln.lru = c.clock
			if write {
				ln.dirty = true
			}
			return res
		}
	}
	res := c.fill(set, tag, false)
	if write {
		// The newly filled line is MRU: find it and dirty it.
		c.markDirty(set, tag)
	}
	res.Hit = false
	return res
}

// Probe reports whether the block is present without updating LRU or flags.
func (c *Cache) Probe(a mem.Addr) bool {
	set, tag := c.index(a)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts a block as a stream/prefetch fill; offChip records whether
// the fill data came from off-chip memory (used for off-chip coverage
// accounting). If the block is already present the call is a no-op
// (Hit=true) and the line keeps its flags.
func (c *Cache) Fill(a mem.Addr, offChip bool) Result {
	set, tag := c.index(a)
	c.clock++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return Result{Hit: true}
		}
	}
	res := c.fill(set, tag, true)
	c.markOffChip(set, tag, offChip)
	return res
}

func (c *Cache) markOffChip(set, tag uint64, offChip bool) {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.offChip = offChip
			return
		}
	}
}

// fill allocates (set, tag), evicting the LRU line if needed.
func (c *Cache) fill(set, tag uint64, prefetched bool) Result {
	lines := c.sets[set]
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := range lines {
		ln := &lines[i]
		if !ln.valid {
			victim = i
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victim = i
		}
	}
	res := Result{}
	v := &lines[victim]
	if v.valid {
		res.Evicted = true
		res.Victim = Eviction{
			Addr:             c.addrOf(set, v.tag),
			Dirty:            v.dirty,
			PrefetchedUnused: v.prefetched && !v.used,
		}
	}
	*v = line{tag: tag, valid: true, prefetched: prefetched, lru: c.clock}
	return res
}

func (c *Cache) markDirty(set, tag uint64) {
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.dirty = true
			return
		}
	}
}

func (c *Cache) addrOf(set, tag uint64) mem.Addr {
	setBits := uint(bits.TrailingZeros64(uint64(len(c.sets))))
	return mem.Addr((tag<<setBits | set) << c.blockBits)
}

// MarkUsed marks the block containing a as demand-used if present. The
// coherent hierarchy uses it to propagate first-use information to lower
// levels: when a streamed block is used from L1, the L2 copy of the same
// stream fill must not later be scored as an overprediction.
func (c *Cache) MarkUsed(a mem.Addr) {
	set, tag := c.index(a)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.used = true
			return
		}
	}
}

// InvalidateResult describes the outcome of an invalidation.
type InvalidateResult struct {
	// Present reports whether the block was in the cache.
	Present bool
	// WasDirty reports whether the invalidated copy was modified.
	WasDirty bool
	// PrefetchedUnused reports whether a streamed, never-used block was
	// destroyed (an overprediction).
	PrefetchedUnused bool
}

// Invalidate removes the block containing a, if present.
func (c *Cache) Invalidate(a mem.Addr) InvalidateResult {
	set, tag := c.index(a)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			res := InvalidateResult{
				Present:          true,
				WasDirty:         ln.dirty,
				PrefetchedUnused: ln.prefetched && !ln.used,
			}
			*ln = line{}
			return res
		}
	}
	return InvalidateResult{}
}

// Flush empties the cache, returning the number of lines dropped.
func (c *Cache) Flush() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
				c.sets[s][i] = line{}
			}
		}
	}
	return n
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}
