package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func mkRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Seq:  uint64(i * 3),
			PC:   rng.Uint64(),
			Addr: mem.Addr(rng.Uint64()),
			CPU:  uint8(rng.Intn(16)),
			Kind: Kind(rng.Intn(2)),
		}
	}
	return recs
}

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Seq: 1, PC: 0x40, Addr: 0x1000, CPU: 2, Kind: Write}
	if r.String() == "" || !r.IsWrite() {
		t.Error("Record helpers broken")
	}
	if (Record{Kind: Read}).IsWrite() {
		t.Error("read reported as write")
	}
}

func TestSliceSource(t *testing.T) {
	recs := mkRecords(5, 1)
	src := NewSliceSource(recs)
	got := Collect(src, 0)
	if len(got) != 5 {
		t.Fatalf("Collect = %d records", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source yielded a record")
	}
}

func TestCollectMax(t *testing.T) {
	got := Collect(NewSliceSource(mkRecords(10, 2)), 4)
	if len(got) != 4 {
		t.Fatalf("Collect(max=4) = %d", len(got))
	}
}

func TestLimit(t *testing.T) {
	src := Limit(NewSliceSource(mkRecords(10, 3)), 3)
	if got := len(Collect(src, 0)); got != 3 {
		t.Fatalf("Limit(3) yielded %d", got)
	}
	src = Limit(NewSliceSource(mkRecords(2, 3)), 5)
	if got := len(Collect(src, 0)); got != 2 {
		t.Fatalf("Limit beyond end yielded %d", got)
	}
}

func TestSkip(t *testing.T) {
	src := NewSliceSource(mkRecords(10, 4))
	if n := Skip(src, 6); n != 6 {
		t.Fatalf("Skip = %d", n)
	}
	if got := len(Collect(src, 0)); got != 4 {
		t.Fatalf("records after skip = %d", got)
	}
	src = NewSliceSource(mkRecords(3, 4))
	if n := Skip(src, 10); n != 3 {
		t.Fatalf("Skip past end = %d", n)
	}
}

func TestConcat(t *testing.T) {
	a := mkRecords(3, 5)
	b := mkRecords(2, 6)
	src := Concat(NewSliceSource(a), NewSliceSource(b))
	got := Collect(src, 0)
	if len(got) != 5 {
		t.Fatalf("Concat yielded %d", len(got))
	}
	if got[3] != b[0] {
		t.Error("second source records out of order")
	}
	if got := Collect(Concat(), 0); len(got) != 0 {
		t.Error("empty Concat should be empty")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := mkRecords(1000, 7)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 1000 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: %v vs %v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seq, pc, addr uint64, cpu uint8, kind bool) bool {
		rec := Record{Seq: seq, PC: pc, Addr: mem.Addr(addr), CPU: cpu, Kind: Read}
		if kind {
			rec.Kind = Write
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.Write(rec); err != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, ok := r.Next()
		return ok && got == rec && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("JUNKJUNKJUNKJUNKJUNK"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	// Correct magic, wrong version.
	raw := append([]byte("SMST"), make([]byte, 12)...)
	raw[4] = 99
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Seq: 1}); err != nil || w.Flush() != nil {
		t.Fatal("write failed")
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Error("truncation not reported")
	}
}

// validTrace returns an encoded trace holding n records.
func validTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mkRecords(n, 11) {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReaderTruncatedFileWrapsError covers files cut off inside the
// header: the constructor must return a wrapped io error, never panic.
func TestReaderTruncatedFileWrapsError(t *testing.T) {
	full := validTrace(t, 3)
	for _, cut := range []int{1, 3, 4, 10, 15} { // all inside the 16-byte header
		_, err := NewReader(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut at %d accepted", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: error %v does not wrap io.ErrUnexpectedEOF", cut, err)
		}
	}
	// A completely empty file surfaces as wrapped io.EOF.
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("empty file: error %v does not wrap io.EOF", err)
	}
}

// TestReaderBadMagicAndVersionWrapErrBadFormat pins the sentinel: callers
// distinguish "not a trace file" from I/O failures via ErrBadFormat.
func TestReaderBadMagicAndVersionWrapErrBadFormat(t *testing.T) {
	badMagic := append([]byte("JUNK"), make([]byte, 12)...)
	if _, err := NewReader(bytes.NewReader(badMagic)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic: error %v does not wrap ErrBadFormat", err)
	}

	badVersion := validTrace(t, 0)
	badVersion[4] = 99
	if _, err := NewReader(bytes.NewReader(badVersion)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad version: error %v does not wrap ErrBadFormat", err)
	}
}

// TestReaderShortRecordWrapsError covers a stream that ends mid-record:
// Next reports exhaustion and Err carries a wrapped io.ErrUnexpectedEOF.
func TestReaderShortRecordWrapsError(t *testing.T) {
	full := validTrace(t, 2)
	for _, drop := range []int{1, recSize / 2, recSize - 1} {
		r, err := NewReader(bytes.NewReader(full[:len(full)-drop]))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := r.Next(); !ok {
			t.Fatalf("drop %d: first full record not decoded", drop)
		}
		if _, ok := r.Next(); ok {
			t.Fatalf("drop %d: partial record decoded", drop)
		}
		if err := r.Err(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("drop %d: error %v does not wrap io.ErrUnexpectedEOF", drop, err)
		}
		// The error latches: further Next calls stay exhausted.
		if _, ok := r.Next(); ok {
			t.Errorf("drop %d: Next yielded after error", drop)
		}
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := Func(func() (Record, bool) {
		if n >= 2 {
			return Record{}, false
		}
		n++
		return Record{Seq: uint64(n)}, true
	})
	if got := len(Collect(src, 0)); got != 2 {
		t.Fatalf("Func source yielded %d", got)
	}
}

func TestBatchedAdapterAndSources(t *testing.T) {
	recs := make([]Record, 1000)
	for i := range recs {
		recs[i] = Record{Seq: uint64(i + 1), PC: uint64(i) * 4, Addr: mem.Addr(i * 64), CPU: uint8(i % 3)}
	}

	// A Source that batches natively is returned unchanged.
	ss := NewSliceSource(recs)
	if Batched(ss) != BatchSource(ss) {
		t.Fatal("Batched wrapped a native BatchSource")
	}

	// The adapter over a scalar source yields the same stream, across
	// ragged batch sizes and interleaved Next calls.
	b := Batched(Func(NewSliceSource(recs).Next))
	var got []Record
	buf := make([]Record, 7)
	for i := 0; ; i++ {
		if i%5 == 4 {
			r, ok := b.Next()
			if !ok {
				break
			}
			got = append(got, r)
			continue
		}
		n := b.NextBatch(buf[:1+i%len(buf)])
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(recs) {
		t.Fatalf("adapter yielded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}

	// Limit batches and clamps.
	lim := Batched(Limit(NewSliceSource(recs), 10))
	n := lim.NextBatch(buf)
	n += lim.NextBatch(buf)
	if n != 10 || lim.NextBatch(buf) != 0 {
		t.Fatalf("Limit batch clamp: got %d records", n)
	}

	// SliceSource views alias the backing records and exhaust cleanly.
	vs := NewSliceSource(recs)
	view := vs.NextView(64)
	if len(view) != 64 || &view[0] != &recs[0] {
		t.Fatal("NextView did not alias the source records")
	}
	total := len(view)
	for {
		v := vs.NextView(450)
		if len(v) == 0 {
			break
		}
		total += len(v)
	}
	if total != len(recs) {
		t.Fatalf("views yielded %d records, want %d", total, len(recs))
	}
}

func TestReaderNextBatch(t *testing.T) {
	recs := make([]Record, 1500) // crosses the 512-record chunk boundary
	for i := range recs {
		recs[i] = Record{Seq: uint64(i), PC: uint64(i * 3), Addr: mem.Addr(i * 64), CPU: uint8(i % 4), Kind: Kind(i % 2)}
	}
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Record, 0, len(recs))
	dst := make([]Record, 700)
	// Interleave scalar and batched reads over the same stream.
	if r, ok := tr.Next(); ok {
		got = append(got, r)
	}
	for {
		n := tr.NextBatch(dst)
		if n == 0 {
			break
		}
		got = append(got, dst[:n]...)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("clean stream reported error: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}

	// A stream truncated mid-record decodes the whole records and sets Err.
	tr2, err := NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-13]))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		k := tr2.NextBatch(dst)
		if k == 0 {
			break
		}
		n += k
	}
	if n != len(recs)-1 {
		t.Fatalf("truncated stream yielded %d complete records, want %d", n, len(recs)-1)
	}
	if !errors.Is(tr2.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream error = %v, want io.ErrUnexpectedEOF", tr2.Err())
	}
}
