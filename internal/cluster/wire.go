package cluster

// The cluster wire protocol: the JSON bodies exchanged between
// coordinator and workers over the smsd HTTP API. internal/server
// implements the endpoints; this package implements both clients (the
// coordinator's cell dispatch and the worker's registration loop), so
// the types live here where both sides can import them.

import (
	"time"

	"repro/internal/sim"
)

// RegisterRequest announces a worker to the coordinator
// (POST /v1/cluster/workers).
type RegisterRequest struct {
	// URL is the worker's base URL as reachable from the coordinator
	// (the worker's -advertise address).
	URL string `json:"url"`
	// Capacity is the number of cells the worker wants in flight at
	// once — its in-flight window, conventionally its simulation
	// parallelism.
	Capacity int `json:"capacity"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// WorkerID names the worker for heartbeats and listings.
	WorkerID string `json:"worker_id"`
	// HeartbeatMillis is the interval the coordinator expects beats at;
	// missing several marks the worker dead.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// CellRequest asks a worker to execute one run cell (POST /v1/cells).
type CellRequest struct {
	// Workload is the registered workload name.
	Workload string `json:"workload"`
	// Config is the resolved simulator configuration.
	Config sim.Config `json:"config"`
	// Key is the cell's content address under the coordinator's
	// conventions. The worker recomputes the address under its own and
	// refuses the cell (409) on mismatch: a disagreement means the
	// daemons were launched with different options and the worker's
	// result would be a different simulation entirely.
	Key string `json:"key"`
	// TraceFrom optionally names a base URL holding the cell's
	// workload trace artifact (conventionally the coordinator, which
	// checks its own tier before dispatching). A worker without the
	// artifact pulls it from here instead of regenerating.
	TraceFrom string `json:"trace_from,omitempty"`
	// TraceKey is the artifact's content address when TraceFrom is set.
	TraceKey string `json:"trace_key,omitempty"`
}

// CellResponse carries one executed cell back to the coordinator.
type CellResponse struct {
	// Key echoes the cell's content address.
	Key string `json:"key"`
	// Cached reports that the worker served the result without
	// simulating (its memo or store already had the key).
	Cached bool `json:"cached"`
	// TraceKey is the content address of the workload's trace artifact
	// if the worker's store holds it after the run — the coordinator
	// pulls artifacts it is missing by this key.
	TraceKey string `json:"trace_key,omitempty"`
	// Result is the simulation outcome.
	Result *sim.Result `json:"result"`
}

// WorkerInfo describes one registered worker (GET /v1/cluster/workers).
type WorkerInfo struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Capacity int    `json:"capacity"`
	// Alive is false once the worker misses enough heartbeats; its
	// cells have been re-scattered and it receives no new ones until it
	// re-registers.
	Alive bool `json:"alive"`
	// Quarantined marks a worker that refused a cell with a key
	// mismatch (launched with different options); it receives no cells.
	Quarantined bool `json:"quarantined,omitempty"`
	// Probation marks a worker whose circuit breaker tripped after
	// consecutive failures: no new scatters, one canary cell at a time
	// until one succeeds. ConsecFails is the current failure streak.
	Probation   bool `json:"probation,omitempty"`
	ConsecFails int  `json:"consecutive_failures,omitempty"`
	// Queued and Inflight are the worker's backlog right now.
	Queued   int `json:"queued"`
	Inflight int `json:"inflight"`
	// Done / Failed / Stolen count settled dispatches: completed cells,
	// failed attempts, and cells this worker stole from another's queue.
	Done   uint64 `json:"cells_done"`
	Failed uint64 `json:"cells_failed"`
	Stolen uint64 `json:"cells_stolen"`
	// LastHeartbeat is the last registration or heartbeat time.
	LastHeartbeat time.Time `json:"last_heartbeat"`
}
