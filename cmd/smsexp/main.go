// Command smsexp regenerates the paper's figures and tables.
//
// Usage:
//
//	smsexp [flags] <experiment> [<experiment> ...]
//	smsexp [flags] all
//
// Experiments: table1 fig4 fig5 fig6 fig7 fig8 fig9 fig10 agt fig11 fig12
// fig13 ablate headline sampled. Each prints a text table with the
// rows/series of the corresponding figure in Somogyi et al., "Spatial
// Memory Streaming" (ISCA 2006).
//
// With -sample (or an explicit -sample-window), every figure runs in
// SMARTS-style sampled mode: detailed measurement windows separated by
// functional warming and fast-forwarded gaps, with confidence intervals
// in the results. The `sampled` experiment validates the mode against
// exact runs.
//
// With -store DIR, simulation results and rendered figures persist in a
// content-addressed store, so regenerating a figure a second time — in
// this or any later process, including the smsd daemon — is a cache hit
// that performs no simulations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	// Ctrl-C cancels the in-flight simulations through the engine's
	// context path instead of abandoning the process mid-figure.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main; it returns the process exit code.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smsexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cpus     = fs.Int("cpus", 4, "simulated processors")
		seed     = fs.Int64("seed", 1, "workload generation seed")
		length   = fs.Uint64("length", 1_200_000, "accesses per workload trace (half is warm-up)")
		parallel = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		runPar   = fs.Int("run-parallel", 0, "region-sharded simulation lanes inside each run (0/1 = serial; results are bit-identical, shares the -parallel budget)")
		ahead    = fs.Int("decode-ahead", 0, "decode each run's trace this many batches ahead of the simulator (0 = inline)")
		quick    = fs.Bool("quick", false, "abbreviated runs (overrides -cpus/-length)")
		storeDir = fs.String("store", "", "persistent result store directory (reused across runs and by smsd)")
		traceOut = fs.String("trace-out", "", "write run-phase spans as Chrome trace-event JSON (load via chrome://tracing or ui.perfetto.dev)")

		sample         = fs.Bool("sample", false, "run figures in SMARTS-style sampled mode with figure-scale defaults")
		sampleWindow   = fs.Uint64("sample-window", 0, "sampling: detailed window length in records (implies -sample)")
		sampleInterval = fs.Uint64("sample-interval", 0, "sampling: records per interval (0 = 50x window)")
		sampleWarmup   = fs.Uint64("sample-warmup", 0, "sampling: functional-warming records before each window (0 = 4x window)")
		confidence     = fs.Float64("confidence", 0, "sampling: confidence level for reported intervals (0 = 0.95)")
	)
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	opts := exp.CLIOptions(*cpus, *seed, *length, *parallel, *quick)
	opts.RunParallel = *runPar
	opts.DecodeAhead = *ahead
	if *sample || *sampleWindow > 0 {
		opts.Sampling = exp.SampledConfig(opts)
		if *sampleWindow > 0 {
			opts.Sampling = sim.SamplingConfig{
				WindowRecords:   *sampleWindow,
				IntervalRecords: *sampleInterval,
				WarmupRecords:   *sampleWarmup,
			}
		}
		if *confidence > 0 {
			opts.Sampling.Confidence = *confidence
		}
		if err := opts.Sampling.Validate(); err != nil {
			fmt.Fprintln(stderr, "smsexp:", err)
			return 2
		}
	}
	session := exp.NewSession(opts)
	if err := exp.AttachStore(session, *storeDir); err != nil {
		fmt.Fprintln(stderr, "smsexp:", err)
		return 1
	}

	// The tracer spans everything below — the prewarm grid and every
	// figure — so one trace file shows the whole invocation's timeline.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	args := fs.Args()
	if len(args) == 1 && args[0] == "all" {
		args = exp.ExperimentNames()
	}
	// Validate every experiment name up front so a typo at the end of the
	// list cannot waste the simulations before it.
	registry := exp.Experiments()
	for _, name := range args {
		if _, ok := registry[name]; !ok {
			fmt.Fprintf(stderr, "smsexp: unknown experiment %q\nknown experiments: %s\n",
				name, strings.Join(exp.ExperimentNames(), " "))
			return 2
		}
	}

	// Multi-figure requests prewarm one merged grid first: every unique
	// simulation across the still-uncached figures runs exactly once,
	// with full cross-figure parallelism, and the per-figure renders
	// below become memoization hits. (Figures already persisted at the
	// figure level are excluded — prewarming them would simulate runs a
	// figure-cache hit skips entirely.)
	if len(args) > 1 {
		var cold []string
		for _, name := range args {
			if _, ok := session.CachedFigure(name); !ok {
				cold = append(cold, name)
			}
		}
		if plan, ok := exp.MergedPlan("prewarm", session.Options(), cold...); ok {
			start := time.Now()
			if _, err := session.Execute(ctx, plan); err != nil {
				fmt.Fprintf(stderr, "smsexp: prewarming shared grid: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "[prewarmed the %d-experiment shared grid in %v]\n",
				len(cold), time.Since(start).Round(time.Millisecond))
		}
	}

	for _, name := range args {
		start := time.Now()
		out, err := session.Figure(ctx, name)
		if err != nil {
			fmt.Fprintf(stderr, "smsexp: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintln(stdout, out)
		fmt.Fprintf(stderr, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "smsexp:", err)
			return 1
		}
		if err := tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(stderr, "smsexp: writing trace:", err)
			return 1
		}
	}
	return 0
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintf(stderr, `smsexp regenerates the figures of "Spatial Memory Streaming" (ISCA 2006).

usage: smsexp [flags] <experiment> [<experiment> ...]
       smsexp [flags] all

experiments: %s

flags:
`, strings.Join(exp.ExperimentNames(), " "))
	fs.PrintDefaults()
}
