package exp

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Fig6Row is one (group, index scheme) bar of Figure 6.
type Fig6Row struct {
	Group    string
	Index    core.IndexKind
	Coverage sim.Coverage
}

// Fig6Result is the Figure 6 dataset.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 reproduces Figure 6: prediction-index comparison (Address,
// PC+address, PC, PC+offset) with an unbounded PHT, reporting L1 read-miss
// coverage, uncovered misses, and overpredictions per application group.
func Fig6(s *Session) (*Fig6Result, error) {
	names := WorkloadNames()
	kinds := core.AllIndexKinds()

	// covs[name][kind]
	covs := make(map[string][]sim.Coverage, len(names))
	for _, n := range names {
		covs[n] = make([]sim.Coverage, len(kinds))
	}
	err := parallelOver(names, func(_ int, name string) error {
		base, err := s.Baseline(name)
		if err != nil {
			return err
		}
		for ki, kind := range kinds {
			res, err := s.Run(name, sim.Config{
				Coherence:      s.opts.MemorySystem(64),
				PrefetcherName: "sms",
				SMS:            core.Config{Index: kind, PHTEntries: -1},
			})
			if err != nil {
				return err
			}
			covs[name][ki] = res.L1Coverage(base)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig6Result{}
	for _, g := range GroupNames() {
		for ki, kind := range kinds {
			res.Rows = append(res.Rows, Fig6Row{
				Group: g,
				Index: kind,
				Coverage: sim.Coverage{
					Covered:       meanOver(names, func(n string) float64 { return covs[n][ki].Covered })[g],
					Uncovered:     meanOver(names, func(n string) float64 { return covs[n][ki].Uncovered })[g],
					Overpredicted: meanOver(names, func(n string) float64 { return covs[n][ki].Overpredicted })[g],
				},
			})
		}
	}
	return res, nil
}

// Render formats the dataset as the Figure 6 bars.
func (r *Fig6Result) Render() string {
	t := NewTable("Figure 6: index comparison (unbounded PHT)",
		"group", "index", "coverage", "uncovered", "overpredictions")
	t.SetCaption("L1 read misses relative to the baseline. Coverage+uncovered ≈ 100%; pollution appears as extra uncovered misses.")
	for _, row := range r.Rows {
		t.AddRow(row.Group, row.Index.String(),
			Pct(row.Coverage.Covered), Pct(row.Coverage.Uncovered), Pct(row.Coverage.Overpredicted))
	}
	return t.Render()
}
