package store

// The trace tier: content-addressed v2 trace files alongside the JSON
// result/figure objects. Where results are small JSON documents, traces
// are large binary artifacts replayed by mmap, so they get their own
// object kind with file-granular access instead of the byte-slice LRU:
//
//	<dir>/traces/<hh>/<hash>.smst   one v2 trace per workload identity
//
// A trace's address is the SHA-256 of the canonical JSON of its source
// identity — workload name + canonical generation config + the version
// salt (ForTrace). The engine writes generated traces through this tier
// and replays them across process restarts, so a warm store means zero
// trace generations for any grid it has seen.
//
// Writes go through BeginTrace: the v2 file is assembled in a temp file
// in the final directory and renamed into place on Commit, so readers
// never observe a partial trace. Opens are corruption-tolerant: a trace
// that fails validation (trace.OpenFile parses the header, index and
// CRC) is a miss, never an error.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/workload"
)

const kindTrace = "traces"

// traceIdentity is the hashed form of one generated trace. Field order
// is the serialization order; do not reorder without bumping VersionSalt.
type traceIdentity struct {
	Kind           string          `json:"kind"`
	Salt           string          `json:"salt"`
	Workload       string          `json:"workload"`
	WorkloadConfig workload.Config `json:"workload_config"`
}

// ForTrace returns the content address of the trace that workload name
// generates under wcfg. The config is canonicalized, mirroring ForRun:
// two configs selecting the same generation address the same artifact.
func ForTrace(workloadName string, wcfg workload.Config) string {
	return hashIdentity(traceIdentity{
		Kind:           "trace",
		Salt:           VersionSalt,
		Workload:       workloadName,
		WorkloadConfig: wcfg.Canonical(),
	})
}

// tracePath fans trace files out by hash prefix, like the JSON kinds.
func (s *Store) tracePath(key string) string {
	prefix := "xx"
	if len(key) >= 2 {
		prefix = key[:2]
	}
	return filepath.Join(s.dir, kindTrace, prefix, key+".smst")
}

// HasTrace reports whether a trace artifact exists at key, without
// opening or validating it (and without touching hit/miss counters).
func (s *Store) HasTrace(key string) bool {
	_, err := os.Stat(s.tracePath(key))
	return err == nil
}

// OpenTrace opens the trace stored at key for replay (mmap'd; see
// trace.OpenFile). A missing or invalid artifact is a miss. The caller
// owns the returned File and closes it when done replaying.
func (s *Store) OpenTrace(key string) (*trace.File, bool) {
	if s.fault.Point("store.traces.read") != nil {
		s.mu.Lock()
		s.stats.TraceMisses++
		s.mu.Unlock()
		return nil, false
	}
	f, err := trace.OpenFile(s.tracePath(key))
	if err != nil {
		s.mu.Lock()
		if !os.IsNotExist(err) {
			s.stats.Corrupt++
		}
		s.stats.TraceMisses++
		s.mu.Unlock()
		if !os.IsNotExist(err) {
			// A trace that exists but fails validation is poisoned the
			// same way a torn JSON object is: move it aside so the tier
			// regenerates or re-syncs it instead of re-warning forever.
			s.quarantine(kindTrace, s.tracePath(key))
		}
		return nil, false
	}
	s.mu.Lock()
	s.stats.TraceHits++
	s.stats.TraceBytesRead += uint64(f.Info().Bytes)
	s.mu.Unlock()
	return f, true
}

// TraceSink assembles one trace artifact: records stream into W (a v2
// writer over a temp file) and Commit atomically publishes the file at
// its content address. Abort (safe after Commit) discards the temp file.
type TraceSink struct {
	// W is the v2 writer the caller streams records into.
	W *trace.V2Writer

	s         *Store
	f         *os.File
	key       string
	committed bool
}

// BeginTrace starts writing the trace artifact for key. hdr should carry
// the source workload's name and canonical hash (conventionally the key
// itself) so the artifact is self-describing.
func (s *Store) BeginTrace(key string, hdr trace.Header) (*TraceSink, error) {
	dir := filepath.Dir(s.tracePath(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w, err := trace.NewV2Writer(f, hdr)
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("store: starting trace %s: %w", key, err)
	}
	return &TraceSink{W: w, s: s, f: f, key: key}, nil
}

// Commit finalizes the v2 file and renames it into place.
func (ts *TraceSink) Commit() error {
	if err := ts.W.Close(); err != nil {
		ts.Abort()
		return err
	}
	size, err := ts.f.Seek(0, 2)
	if err != nil {
		ts.Abort()
		return fmt.Errorf("store: sizing trace %s: %w", ts.key, err)
	}
	if err := ts.f.Close(); err != nil {
		os.Remove(ts.f.Name())
		return fmt.Errorf("store: closing trace %s: %w", ts.key, err)
	}
	// Same publish-permission logic as the JSON objects: a store shared
	// between a daemon and operators must not hide artifacts.
	if err := os.Chmod(ts.f.Name(), 0o644); err != nil {
		os.Remove(ts.f.Name())
		return fmt.Errorf("store: publishing trace %s: %w", ts.key, err)
	}
	if ferr := ts.s.fault.Point("store.traces.rename"); ferr != nil {
		// Crash between assembling the trace and publishing it: the
		// temp file stays, the key stays absent (a torn artifact is
		// never visible).
		if !errors.Is(ferr, fault.ErrCrashed) {
			os.Remove(ts.f.Name())
		}
		return fmt.Errorf("store: publishing trace %s: %w", ts.key, ferr)
	}
	if err := os.Rename(ts.f.Name(), ts.s.tracePath(ts.key)); err != nil {
		os.Remove(ts.f.Name())
		return fmt.Errorf("store: publishing trace %s: %w", ts.key, err)
	}
	ts.committed = true
	ts.s.mu.Lock()
	ts.s.stats.TraceWrites++
	ts.s.stats.TraceBytesWritten += uint64(size)
	ts.s.mu.Unlock()
	return nil
}

// Abort discards the temp file; it is a no-op after Commit.
func (ts *TraceSink) Abort() {
	if ts.committed {
		return
	}
	ts.f.Close()
	os.Remove(ts.f.Name())
}

// OpenTraceRaw opens the raw artifact bytes at key for replication to
// another node (the cluster's artifact sync). The caller closes the
// reader; size is the artifact's byte length. Unlike OpenTrace, no
// decoding or validation happens here — the receiver validates before
// publishing (PutTraceRaw), and the content address lets it verify what
// it asked for.
func (s *Store) OpenTraceRaw(key string) (io.ReadCloser, int64, bool) {
	f, err := os.Open(s.tracePath(key))
	if err != nil {
		return nil, 0, false
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, false
	}
	s.mu.Lock()
	s.stats.TraceBytesRead += uint64(fi.Size())
	s.mu.Unlock()
	return f, fi.Size(), true
}

// PutTraceRaw atomically publishes artifact bytes streamed from another
// node at key. The bytes are validated as a well-formed v2 trace
// (header, index, CRC — trace.Stat) before the rename, so a truncated
// or corrupted transfer never becomes visible; replays would otherwise
// treat it as corruption, but rejecting it here keeps the tier's
// "a key either exists or it doesn't" contract honest. Returns the
// byte count written.
func (s *Store) PutTraceRaw(key string, r io.Reader) (int64, error) {
	path := s.tracePath(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if ferr := s.fault.Point("store.traces.write"); ferr != nil {
		// Crash at the start of an artifact transfer: temp debris
		// stays, nothing publishes.
		f.Close()
		if !errors.Is(ferr, fault.ErrCrashed) {
			os.Remove(f.Name())
		}
		return 0, fmt.Errorf("store: receiving trace %s: %w", key, ferr)
	}
	n, err := io.Copy(f, r)
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(f.Name())
		return 0, fmt.Errorf("store: receiving trace %s: %w", key, err)
	}
	if _, err := trace.Stat(f.Name()); err != nil {
		os.Remove(f.Name())
		return 0, fmt.Errorf("store: received trace %s is not a valid artifact: %w", key, err)
	}
	if err := os.Chmod(f.Name(), 0o644); err != nil {
		os.Remove(f.Name())
		return 0, fmt.Errorf("store: publishing trace %s: %w", key, err)
	}
	if ferr := s.fault.Point("store.traces.rename"); ferr != nil {
		if !errors.Is(ferr, fault.ErrCrashed) {
			os.Remove(f.Name())
		}
		return 0, fmt.Errorf("store: publishing trace %s: %w", key, ferr)
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return 0, fmt.Errorf("store: publishing trace %s: %w", key, err)
	}
	s.mu.Lock()
	s.stats.TraceWrites++
	s.stats.TraceBytesWritten += uint64(n)
	s.mu.Unlock()
	return n, nil
}

// PutTraceRecords writes a fully in-memory trace at key in one call.
func (s *Store) PutTraceRecords(key string, hdr trace.Header, recs []trace.Record) error {
	ts, err := s.BeginTrace(key, hdr)
	if err != nil {
		return err
	}
	if err := ts.W.WriteBatch(recs); err != nil {
		ts.Abort()
		return fmt.Errorf("store: writing trace %s: %w", key, err)
	}
	return ts.Commit()
}

// TraceInfo describes one stored trace artifact.
type TraceInfo struct {
	// Key is the artifact's content address (file name stem).
	Key string `json:"key"`
	// Workload, CPUs and WorkloadHash come from the v2 header.
	Workload     string `json:"workload"`
	CPUs         int    `json:"cpus"`
	WorkloadHash string `json:"workload_hash,omitempty"`
	// Records and Blocks come from the index (O(1), no record decoding).
	Records uint64 `json:"records"`
	Blocks  int    `json:"blocks"`
	// Bytes is the artifact file size.
	Bytes int64 `json:"bytes"`
}

// ListTraces enumerates the stored trace artifacts, sorted by key.
// Artifacts that fail to stat (torn or foreign files) are skipped.
func (s *Store) ListTraces() ([]TraceInfo, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, kindTrace, "*", "*.smst"))
	if err != nil {
		return nil, fmt.Errorf("store: listing traces: %w", err)
	}
	out := make([]TraceInfo, 0, len(matches))
	for _, path := range matches {
		info, err := trace.Stat(path)
		if err != nil {
			continue
		}
		base := filepath.Base(path)
		out = append(out, TraceInfo{
			Key:          base[:len(base)-len(".smst")],
			Workload:     info.Workload,
			CPUs:         info.CPUs,
			WorkloadHash: info.WorkloadHash,
			Records:      info.Records,
			Blocks:       info.Blocks,
			Bytes:        info.Bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
