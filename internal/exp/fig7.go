package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
)

// Fig7Sizes are the PHT entry counts swept by Figure 7 (0 = unbounded).
var Fig7Sizes = []int{256, 1024, 4096, 16384, 0}

// fig7Kinds are the two indexing schemes the figure contrasts.
var fig7Kinds = []core.IndexKind{core.IndexPCAddress, core.IndexPCOffset}

// Fig7Row is one (group, index, PHT size) coverage point.
type Fig7Row struct {
	Group    string
	Index    core.IndexKind
	Entries  int // 0 = infinite
	Coverage float64
}

// Fig7Result is the Figure 7 dataset.
type Fig7Result struct {
	Rows []Fig7Row
}

func fig7Key(kind core.IndexKind, entries int) string {
	return fmt.Sprintf("%s/%s", kind, PHTSizeLabel(entries))
}

// fig7Config is the swept SMS configuration (0 entries = unbounded PHT).
func fig7Config(o Options, kind core.IndexKind, entries int) sim.Config {
	phtEntries := entries
	if entries == 0 {
		phtEntries = -1 // unbounded
	}
	return sim.Config{
		Coherence:      o.MemorySystem(64),
		PrefetcherName: "sms",
		SMS:            core.Config{Index: kind, PHTEntries: phtEntries, PHTAssoc: 16},
	}
}

// Fig7Plan declares the Figure 7 grid: the PHT size sweep for PC+address
// and PC+offset indexing, plus the shared baseline.
func Fig7Plan(o Options) engine.Plan {
	p := basePlan("fig7", o)
	for _, kind := range fig7Kinds {
		for _, entries := range Fig7Sizes {
			p = p.WithVariant(fig7Key(kind, entries), fig7Config(o, kind, entries))
		}
	}
	return p
}

// Fig7 reproduces Figure 7: PHT storage sensitivity for PC+address versus
// PC+offset indexing. PC+offset approaches peak coverage by 16k entries;
// PC+address needs storage proportional to the data set and falls far
// short at practical sizes (except OLTP's hot structures).
func Fig7(ctx context.Context, s *Session) (*Fig7Result, error) {
	names := WorkloadNames()
	grid, err := s.Execute(ctx, Fig7Plan(s.Options()))
	if err != nil {
		return nil, err
	}

	covs := make(map[string][][]float64, len(names)) // [name][kind][size]
	for _, name := range names {
		base := grid.Baseline(name)
		cs := make([][]float64, len(fig7Kinds))
		for ki, kind := range fig7Kinds {
			cs[ki] = make([]float64, len(Fig7Sizes))
			for zi, entries := range Fig7Sizes {
				cs[ki][zi] = grid.Result(name, fig7Key(kind, entries)).L1Coverage(base).Covered
			}
		}
		covs[name] = cs
	}

	res := &Fig7Result{}
	for _, g := range GroupNames() {
		for ki, kind := range fig7Kinds {
			for zi, entries := range Fig7Sizes {
				res.Rows = append(res.Rows, Fig7Row{
					Group:   g,
					Index:   kind,
					Entries: entries,
					Coverage: meanOver(names, func(n string) float64 {
						return covs[n][ki][zi]
					})[g],
				})
			}
		}
	}
	return res, nil
}

// PHTSizeLabel renders a PHT entry count as the paper's axis labels.
func PHTSizeLabel(entries int) string {
	switch {
	case entries == 0:
		return "infinite"
	case entries >= 1024:
		return fmt.Sprintf("%dk", entries/1024)
	default:
		return fmt.Sprintf("%d", entries)
	}
}

// Render formats the dataset as the Figure 7 series.
func (r *Fig7Result) Render() string {
	t := NewTable("Figure 7: PHT storage sensitivity (PC+address vs PC+offset, 16-way)",
		"group", "index", "PHT entries", "coverage")
	for _, row := range r.Rows {
		t.AddRow(row.Group, row.Index.String(), PHTSizeLabel(row.Entries), Pct(row.Coverage))
	}
	return t.Render()
}
