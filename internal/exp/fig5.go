package exp

import (
	"context"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig5Buckets are the density bucket labels of Figure 5.
var Fig5Buckets = []string{"1", "2-3", "4-7", "8-15", "16-23", "24-31", "32"}

// Fig5Row is one (workload, level) density distribution: the fraction of
// misses occurring in generations of each density.
type Fig5Row struct {
	Workload  string
	Level     string // "L1" or "L2"
	Fractions [7]float64
}

// Fig5Result is the Figure 5 dataset.
type Fig5Result struct {
	Rows []Fig5Row
}

const fig5GensKey = "gens"

// Fig5Plan declares the Figure 5 grid: one generation-tracking run per
// workload.
func Fig5Plan(o Options) engine.Plan {
	return engine.Plan{
		Name:      "fig5",
		Workloads: WorkloadNames(),
		Variants: []engine.Variant{{Key: fig5GensKey, Config: sim.Config{
			Coherence:        o.MemorySystem(64),
			TrackGenerations: true,
		}}},
	}
}

// Fig5 reproduces Figure 5: memory access density at 2 kB regions — the
// percentage of L1/L2 misses from generations with 1, 2-3, 4-7, 8-15,
// 16-23, 24-31, and 32 missed blocks.
func Fig5(ctx context.Context, s *Session) (*Fig5Result, error) {
	grid, err := s.Execute(ctx, Fig5Plan(s.Options()))
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{}
	for _, name := range WorkloadNames() {
		res := grid.Result(name, fig5GensKey)
		out.Rows = append(out.Rows,
			densityRow(name, "L1", res.DensityL1),
			densityRow(name, "L2", res.DensityL2))
	}
	return out, nil
}

func densityRow(name, level string, h *stats.Histogram) Fig5Row {
	row := Fig5Row{Workload: name, Level: level}
	for b := 0; b < h.Buckets() && b < len(row.Fractions); b++ {
		row.Fractions[b] = h.Fraction(b)
	}
	return row
}

// Render formats the dataset as the Figure 5 stacked columns.
func (r *Fig5Result) Render() string {
	hdr := append([]string{"workload", "level"}, Fig5Buckets...)
	t := NewTable("Figure 5: memory access density (2kB regions)", hdr...)
	t.SetCaption("Each cell: share of misses at that level from generations of the given density (blocks missed).")
	for _, row := range r.Rows {
		cells := []string{row.Workload, row.Level}
		for _, f := range row.Fractions {
			cells = append(cells, Pct(f))
		}
		t.AddRow(cells...)
	}
	return t.Render()
}
