package exp

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Fig10Sizes are the spatial region sizes swept by Figure 10.
var Fig10Sizes = []int{128, 256, 512, 1024, 2048, 4096, 8192}

// Fig10Row is one (group, region size) coverage point.
type Fig10Row struct {
	Group    string
	Size     int
	Coverage float64
}

// Fig10Result is the Figure 10 dataset.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 reproduces Figure 10: coverage versus spatial region size, with
// PC+offset indexing, AGT training and an unbounded PHT. The paper selects
// 2 kB: all groups except OLTP peak there, and OLTP's small further gain
// does not justify doubling PHT storage (§4.4).
func Fig10(s *Session) (*Fig10Result, error) {
	names := WorkloadNames()
	covs := make(map[string][]float64, len(names))
	for _, n := range names {
		covs[n] = make([]float64, len(Fig10Sizes))
	}
	err := parallelOver(names, func(_ int, name string) error {
		base, err := s.Baseline(name)
		if err != nil {
			return err
		}
		for zi, size := range Fig10Sizes {
			geo, err := mem.NewGeometry(64, size)
			if err != nil {
				return err
			}
			res, err := s.Run(name, sim.Config{
				Coherence:      s.opts.MemorySystem(64),
				Geometry:       geo,
				PrefetcherName: "sms",
				SMS:            core.Config{PHTEntries: -1},
			})
			if err != nil {
				return err
			}
			covs[name][zi] = res.L1Coverage(base).Covered
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	for _, g := range GroupNames() {
		for zi, size := range Fig10Sizes {
			res.Rows = append(res.Rows, Fig10Row{
				Group: g,
				Size:  size,
				Coverage: meanOver(names, func(n string) float64 {
					return covs[n][zi]
				})[g],
			})
		}
	}
	return res, nil
}

// Render formats the dataset as the Figure 10 series.
func (r *Fig10Result) Render() string {
	t := NewTable("Figure 10: coverage vs spatial region size (PC+offset, AGT, unbounded PHT)",
		"group", "region size", "coverage")
	for _, row := range r.Rows {
		t.AddRow(row.Group, sizeLabel(row.Size), Pct(row.Coverage))
	}
	return t.Render()
}
