package core

// Reference-model property test: the SMS engine with unbounded tables must
// agree, on arbitrary access/eviction interleavings, with a deliberately
// naive reimplementation of the paper's §2.1 semantics built from maps.
// The naive model has no filter/accumulation split, no CAMs, no LRU — just
// the definition of a spatial region generation.

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// refModel is the executable specification.
type refModel struct {
	geo  mem.Geometry
	live map[uint64]*refGen
	pht  map[uint64]mem.Pattern
}

type refGen struct {
	trigPC   uint64
	trigAddr mem.Addr
	pattern  mem.Pattern
	accesses int
}

func newRefModel(geo mem.Geometry) *refModel {
	return &refModel{geo: geo, live: map[uint64]*refGen{}, pht: map[uint64]mem.Pattern{}}
}

func (m *refModel) access(pc uint64, addr mem.Addr) {
	tag := m.geo.RegionTag(addr)
	g := m.live[tag]
	if g == nil {
		g = &refGen{trigPC: pc, trigAddr: addr, pattern: mem.NewPattern(m.geo.BlocksPerRegion())}
		m.live[tag] = g
	}
	off := m.geo.RegionOffset(addr)
	if !g.pattern.Test(off) {
		g.accesses++
	}
	g.pattern.Set(off)
}

func (m *refModel) remove(addr mem.Addr) {
	tag := m.geo.RegionTag(addr)
	g := m.live[tag]
	if g == nil || !g.pattern.Test(m.geo.RegionOffset(addr)) {
		return
	}
	delete(m.live, tag)
	// Single-block generations are not worth predicting (the filter
	// table's role); the engine drops them, so must the spec.
	if g.accesses < 2 {
		return
	}
	key := indexKey(IndexPCOffset, m.geo, g.trigPC, g.trigAddr)
	m.pht[key] = g.pattern
}

func TestSMSAgreesWithReferenceModel(t *testing.T) {
	geo := mem.MustGeometry(64, 512) // 8 blocks per region
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 50; trial++ {
		sms := MustNew(Config{
			Geometry:      geo,
			FilterEntries: 1 << 20, // effectively unbounded
			AccumEntries:  -1,
			PHTEntries:    -1,
		})
		ref := newRefModel(geo)

		pcs := []uint64{0x400100, 0x400200, 0x400300}
		regions := make([]mem.Addr, 6)
		for i := range regions {
			regions[i] = mem.Addr(0x10000 + i*512)
		}
		// Random interleaving of accesses and removals.
		for step := 0; step < 400; step++ {
			region := regions[rng.Intn(len(regions))]
			off := rng.Intn(8)
			addr := geo.BlockOfRegion(region, off)
			if rng.Intn(4) == 0 {
				sms.BlockRemoved(addr)
				ref.remove(addr)
			} else {
				pc := pcs[rng.Intn(len(pcs))]
				sms.Access(pc, addr)
				ref.access(pc, addr)
			}
		}
		// Flush all remaining generations deterministically.
		for _, region := range regions {
			for off := 0; off < 8; off++ {
				addr := geo.BlockOfRegion(region, off)
				sms.BlockRemoved(addr)
				ref.remove(addr)
			}
		}

		// The engine's PHT must contain exactly the spec's patterns.
		if got, want := sms.PHT().Size(), len(ref.pht); got != want {
			t.Fatalf("trial %d: PHT size %d, reference %d", trial, got, want)
		}
		for key, wantPat := range ref.pht {
			gotPat, ok := sms.PHT().Lookup(key)
			if !ok {
				t.Fatalf("trial %d: key %#x missing from engine PHT", trial, key)
			}
			if !gotPat.Equal(wantPat) {
				t.Fatalf("trial %d: key %#x pattern %v, reference %v", trial, key, gotPat, wantPat)
			}
		}
	}
}

func TestRotatedPatternsEquivalentUnderPCOffset(t *testing.T) {
	// With PC+offset indexing, rotated storage is a pure re-encoding:
	// predictions must be identical with and without rotation.
	geo := mem.MustGeometry(64, 512)
	run := func(rotate bool) []mem.Addr {
		s := MustNew(Config{Geometry: geo, PHTEntries: -1, RotatePatterns: rotate})
		const pc = 0x400100
		A := mem.Addr(0x10000)
		s.Access(pc, A+3*64)
		s.Access(pc+4, A+5*64)
		s.Access(pc+8, A+1*64)
		s.BlockRemoved(A + 3*64)
		// New region, same trigger offset.
		B := mem.Addr(0x20000)
		s.Access(pc, B+3*64)
		return s.NextStreamRequests(16)
	}
	plain, rotated := run(false), run(true)
	if len(plain) != len(rotated) {
		t.Fatalf("request counts differ: %v vs %v", plain, rotated)
	}
	seen := map[mem.Addr]bool{}
	for _, a := range plain {
		seen[a] = true
	}
	for _, a := range rotated {
		if !seen[a] {
			t.Fatalf("rotated produced %#x not in plain %v", uint64(a), plain)
		}
	}
}

func TestRotatedPatternsGeneralizeAcrossAlignments(t *testing.T) {
	// With PC-only indexing, rotation lets one PHT entry serve any
	// alignment of the same footprint — the ablation's point.
	geo := mem.MustGeometry(64, 512)
	const pc = 0x400100
	s := MustNew(Config{Geometry: geo, Index: IndexPC, PHTEntries: -1, RotatePatterns: true})
	// Train: trigger at offset 2, footprint {2,3} (tuple of 2 blocks).
	A := mem.Addr(0x10000)
	s.Access(pc, A+2*64)
	s.Access(pc+4, A+3*64)
	s.BlockRemoved(A + 2*64)
	// Recall at a different alignment: trigger at offset 5 must predict
	// block 6 (the rotated footprint), not block 3.
	B := mem.Addr(0x20000)
	s.Access(pc, B+5*64)
	reqs := s.NextStreamRequests(16)
	if len(reqs) != 1 || reqs[0] != B+6*64 {
		t.Fatalf("rotated PC-indexed prediction = %v, want [%#x]", reqs, uint64(B+6*64))
	}

	// Without rotation, the same training predicts the absolute block 3.
	s2 := MustNew(Config{Geometry: geo, Index: IndexPC, PHTEntries: -1})
	s2.Access(pc, A+2*64)
	s2.Access(pc+4, A+3*64)
	s2.BlockRemoved(A + 2*64)
	s2.Access(pc, B+5*64)
	reqs = s2.NextStreamRequests(16)
	if len(reqs) != 2 {
		// Absolute pattern {2,3}: trigger at 5 streams blocks 2 and 3.
		t.Fatalf("unrotated PC-indexed prediction = %v, want 2 absolute blocks", reqs)
	}
}
