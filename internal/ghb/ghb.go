// Package ghb implements the Global History Buffer prefetcher of Nesbit &
// Smith (HPCA 2004) in its PC/DC (program counter localized, delta
// correlated) variant — the comparison prefetcher the paper identifies as
// the most effective prior technique for desktop/engineering applications
// (§4.6).
//
// Structure: an index table maps a load PC to the most recent entry in a
// circular global history buffer; each buffer entry holds a miss address
// and a link to the previous entry for the same PC. On each trained miss,
// the predictor walks the PC's linked list to reconstruct its recent miss
// addresses, computes the delta stream, finds the previous occurrence of
// the two most recent deltas (delta correlation), and predicts that the
// deltas which followed that occurrence will repeat.
//
// Like the paper, the reproduction applies GHB at the L2: its multi-access
// lookup makes it impractical at L1 rates. The paper evaluates 256-entry
// (sufficient for SPEC) and 16k-entry (matched to the SMS PHT budget)
// history buffers.
package ghb

import (
	"fmt"

	"repro/internal/mem"
)

// Config parameterizes the prefetcher.
type Config struct {
	// HistoryEntries is the circular buffer size (paper: 256 or 16384).
	HistoryEntries int
	// IndexEntries is the PC index table size. 0 derives it from
	// HistoryEntries (quarter, minimum 256).
	IndexEntries int
	// Degree is the number of prefetches issued per prediction
	// (prefetch depth along the correlated delta stream).
	Degree int
	// MaxChain bounds the linked-list walk per lookup.
	MaxChain int
	// BlockSize is the cache block size prefetched over.
	BlockSize int
}

// Defaults matching the paper's configurations and the original proposal.
const (
	DefaultDegree   = 4
	DefaultMaxChain = 64
)

func (c Config) withDefaults() Config {
	if c.HistoryEntries == 0 {
		c.HistoryEntries = 256
	}
	if c.IndexEntries == 0 {
		c.IndexEntries = c.HistoryEntries / 4
		if c.IndexEntries < 256 {
			c.IndexEntries = 256
		}
	}
	if c.Degree == 0 {
		c.Degree = DefaultDegree
	}
	if c.MaxChain == 0 {
		c.MaxChain = DefaultMaxChain
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	return c
}

// Canonical returns the configuration with every default resolved — the
// idempotent form the result store hashes.
func (c Config) Canonical() Config { return c.withDefaults() }

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.HistoryEntries < 4 {
		return fmt.Errorf("ghb: history entries %d too small", c.HistoryEntries)
	}
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("ghb: block size %d not a power of two", c.BlockSize)
	}
	return nil
}

type histEntry struct {
	blockNum uint64 // miss address in block units
	prev     int64  // global sequence number of previous same-PC entry (-1: none)
	seq      int64  // this entry's global sequence number
}

type indexEntry struct {
	pc   uint64
	last int64 // global sequence number of the PC's most recent entry
}

// Stats counts prefetcher activity.
type Stats struct {
	Trains      uint64
	Lookups     uint64
	Matches     uint64 // delta-correlation hits
	Prefetches  uint64
	ChainLength uint64 // total entries walked (ChainLength/Lookups = mean)
}

// GHB is the PC/DC global history buffer prefetcher.
type GHB struct {
	cfg   Config
	buf   []histEntry
	index []indexEntry
	seq   int64 // monotonically increasing; buf slot = seq % len(buf)

	stats Stats

	// scratch buffers reused across lookups; out backs Train's returned
	// prefetch list (valid until the next Train, per sim.Prefetcher).
	addrs  []uint64
	deltas []int64
	out    []mem.Addr
}

// New builds a GHB prefetcher.
func New(cfg Config) (*GHB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	g := &GHB{
		cfg:   cfg,
		buf:   make([]histEntry, cfg.HistoryEntries),
		index: make([]indexEntry, cfg.IndexEntries),
	}
	for i := range g.index {
		g.index[i].last = -1
	}
	for i := range g.buf {
		g.buf[i].seq = -1
	}
	return g, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *GHB {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the resolved configuration.
func (g *GHB) Config() Config { return g.cfg }

// Stats returns activity counters.
func (g *GHB) Stats() Stats { return g.stats }

// StorageBits returns the prefetcher's hardware budget in bits: history
// buffer entries (block address + link pointer) plus index table entries
// (PC tag + head pointer). The paper sizes the 16k-entry configuration to
// roughly match the SMS PHT budget (§4.6).
func (g *GHB) StorageBits() int {
	const blockAddrBits = 36 // 42-bit physical address, 64B blocks
	ptrBits := 1
	for 1<<ptrBits < len(g.buf) {
		ptrBits++
	}
	const pcTagBits = 30
	return len(g.buf)*(blockAddrBits+ptrBits) + len(g.index)*(pcTagBits+ptrBits)
}

func (g *GHB) slot(seq int64) *histEntry { return &g.buf[seq%int64(len(g.buf))] }

// live reports whether the entry for seq is still in the buffer (not yet
// overwritten by wrap-around).
func (g *GHB) live(seq int64) bool {
	if seq < 0 {
		return false
	}
	e := g.slot(seq)
	return e.seq == seq
}

func (g *GHB) indexSlot(pc uint64) *indexEntry {
	h := pc * 0x9e3779b97f4a7c15
	h ^= h >> 32 // fold high bits down: PCs are often multiples of powers of two
	return &g.index[h%uint64(len(g.index))]
}

// Train records a miss by (pc, addr) and returns the block addresses to
// prefetch, following the PC's delta-correlated history. The caller (the
// simulator) invokes Train on L2 demand misses.
func (g *GHB) Train(pc uint64, addr mem.Addr) []mem.Addr {
	g.stats.Trains++
	blockNum := uint64(addr) / uint64(g.cfg.BlockSize)

	ie := g.indexSlot(pc)
	prev := int64(-1)
	if ie.pc == pc && g.live(ie.last) {
		prev = ie.last
	}
	seq := g.seq
	g.seq++
	*g.slot(seq) = histEntry{blockNum: blockNum, prev: prev, seq: seq}
	*ie = indexEntry{pc: pc, last: seq}

	return g.predict(seq, blockNum)
}

// predict reconstructs the PC's miss history ending at seq and applies
// delta correlation.
func (g *GHB) predict(seq int64, blockNum uint64) []mem.Addr {
	g.stats.Lookups++

	// Walk the chain: addrs[0] is the most recent miss (current one).
	addrs := g.addrs[:0]
	for cur := seq; g.live(cur) && len(addrs) < g.cfg.MaxChain; cur = g.slot(cur).prev {
		addrs = append(addrs, g.slot(cur).blockNum)
		g.stats.ChainLength++
	}
	g.addrs = addrs
	if len(addrs) < 4 {
		return nil // need at least 2 deltas of history plus a pair to match
	}

	// deltas[i] = addrs[i] - addrs[i+1]; deltas[0] is the most recent.
	deltas := g.deltas[:0]
	for i := 0; i+1 < len(addrs); i++ {
		deltas = append(deltas, int64(addrs[i])-int64(addrs[i+1]))
	}
	g.deltas = deltas

	// Correlation key: the two most recent deltas.
	d1, d2 := deltas[0], deltas[1]
	// Find the previous occurrence of (d2, d1) scanning older history.
	match := -1
	for j := 2; j+1 < len(deltas); j++ {
		if deltas[j] == d1 && deltas[j+1] == d2 {
			match = j
			break
		}
	}
	if match < 0 {
		return nil
	}
	g.stats.Matches++

	// The deltas that followed the matched occurrence (in time order)
	// are deltas[match-1], deltas[match-2], ...: predict they repeat.
	// If the continuation is shorter than the prefetch degree (e.g. a
	// constant stride matches almost immediately), replay it cyclically
	// to fill the degree, as a streaming GHB would.
	out := g.out[:0]
	cur := int64(blockNum)
	k := match - 1
	for len(out) < g.cfg.Degree {
		if k < 0 {
			k = match - 1
		}
		cur += deltas[k]
		k--
		if cur < 0 {
			break
		}
		out = append(out, mem.Addr(uint64(cur)*uint64(g.cfg.BlockSize)))
		g.stats.Prefetches++
	}
	g.out = out
	return out
}
