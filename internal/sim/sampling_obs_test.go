package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSampledRunEmitsPhaseSpans: a tracer on the run context collects
// gap/warm/window spans from the sampling driver — and the Result is
// byte-identical to an untraced run, since spans never touch it.
func TestSampledRunEmitsPhaseSpans(t *testing.T) {
	cfg := Config{
		Coherence:      tinyCoherence(1),
		WarmupAccesses: 1,
		Sampling: SamplingConfig{
			WindowRecords:   500,
			IntervalRecords: 5_000,
			WarmupRecords:   1_000,
		},
	}
	wcfg := workload.Config{CPUs: 1, Seed: 7, Length: 50_000}
	w, err := workload.ByName("sparse")
	if err != nil {
		t.Fatal(err)
	}

	run := func(ctx context.Context) []byte {
		t.Helper()
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunContext(ctx, trace.Batched(w.Make(wcfg)))
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return js
	}

	tr := obs.NewTracer()
	traced := run(obs.WithTracer(context.Background(), tr))
	plain := run(context.Background())

	byName := map[string]int{}
	for _, s := range tr.Spans() {
		if s.Cat != "sim" {
			t.Errorf("span %s has cat %q, want sim", s.Name, s.Cat)
		}
		byName[s.Name]++
	}
	for _, want := range []string{"gap", "warm", "window"} {
		if byName[want] == 0 {
			t.Errorf("missing %q phase span (have %v)", want, byName)
		}
	}
	if !bytes.Equal(traced, plain) {
		t.Error("tracing changed the Result JSON")
	}
}

// TestExactRunEmitsWindowSpan: exact mode reports one all-window span.
func TestExactRunEmitsWindowSpan(t *testing.T) {
	r, err := NewRunner(Config{Coherence: tinyCoherence(1)})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("sparse")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := r.RunContext(ctx, trace.Batched(w.Make(workload.Config{CPUs: 1, Seed: 7, Length: 10_000}))); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "window" {
		t.Fatalf("spans = %+v, want exactly one window span", spans)
	}
}
