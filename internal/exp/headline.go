package exp

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
)

// HeadlineResult collects the paper's abstract-level claims: "SMS can on
// average predict 58% of L1 and 65% of off-chip misses, for an average
// speedup of 1.37 and at best 4.07".
type HeadlineResult struct {
	// MeanL1Coverage and MeanOffChipCoverage average the practical SMS
	// configuration's coverage across all eleven workloads.
	MeanL1Coverage      float64
	MeanOffChipCoverage float64
	// CommercialOffChip averages the commercial workloads only (the
	// paper: 55% mean, 78% best).
	CommercialOffChip     float64
	BestCommercialOffChip float64
	BestCommercialName    string
	// GeoMeanSpeedup and the best speedup with its workload.
	GeoMeanSpeedup float64
	BestSpeedup    float64
	BestName       string
}

// Headline computes the abstract's numbers from the practical SMS
// configuration.
func Headline(s *Session) (*HeadlineResult, error) {
	names := WorkloadNames()
	type row struct {
		l1, off  float64
		speedup  float64
		group    string
		workload string
	}
	rows := make([]row, len(names))
	err := parallelOver(names, func(i int, name string) error {
		baseCfg := sim.Config{
			Coherence:          s.opts.MemorySystem(64),
			WindowInstructions: WindowInstructions,
		}
		smsCfg := baseCfg
		smsCfg.PrefetcherName = "sms"
		base, err := s.Run(name, baseCfg)
		if err != nil {
			return err
		}
		smsRes, err := s.Run(name, smsCfg)
		if err != nil {
			return err
		}
		model, err := timing.NewModel(TimingParamsFor(groupOf(name)))
		if err != nil {
			return err
		}
		cmp, err := model.Compare(base.Windows, smsRes.Windows)
		if err != nil {
			return err
		}
		rows[i] = row{
			l1:       smsRes.L1Coverage(base).Covered,
			off:      smsRes.OffChipCoverage(base).Covered,
			speedup:  cmp.Speedup.Mean,
			group:    groupOf(name),
			workload: name,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &HeadlineResult{}
	var l1s, offs, speeds, commOffs []float64
	for _, r := range rows {
		l1s = append(l1s, r.l1)
		offs = append(offs, r.off)
		speeds = append(speeds, r.speedup)
		if r.group != "Scientific" {
			commOffs = append(commOffs, r.off)
			if r.off > res.BestCommercialOffChip {
				res.BestCommercialOffChip = r.off
				res.BestCommercialName = r.workload
			}
		}
		if r.speedup > res.BestSpeedup {
			res.BestSpeedup = r.speedup
			res.BestName = r.workload
		}
	}
	res.MeanL1Coverage = stats.Mean(l1s)
	res.MeanOffChipCoverage = stats.Mean(offs)
	res.CommercialOffChip = stats.Mean(commOffs)
	gm, err := stats.GeoMean(speeds)
	if err != nil {
		return nil, err
	}
	res.GeoMeanSpeedup = gm
	return res, nil
}

// Render formats the abstract-claims comparison.
func (r *HeadlineResult) Render() string {
	t := NewTable("Headline: the paper's abstract claims vs this reproduction",
		"claim", "paper", "measured")
	t.AddRow("mean L1 miss coverage", "58%", Pct(r.MeanL1Coverage))
	t.AddRow("mean off-chip miss coverage", "65%", Pct(r.MeanOffChipCoverage))
	t.AddRow("commercial off-chip coverage (mean)", "55%", Pct(r.CommercialOffChip))
	t.AddRow("commercial off-chip coverage (best)", "78%",
		fmt.Sprintf("%s (%s)", Pct(r.BestCommercialOffChip), r.BestCommercialName))
	t.AddRow("geometric mean speedup", "1.37", fmt.Sprintf("%.3f", r.GeoMeanSpeedup))
	t.AddRow("best speedup", "4.07 (sparse)",
		fmt.Sprintf("%.3f (%s)", r.BestSpeedup, r.BestName))
	return t.Render()
}
