// Package workload provides synthetic multiprocessor memory-access trace
// generators standing in for the paper's FLEXUS/Simics full-system traces of
// commercial and scientific applications (Table 1): OLTP on DB2 and Oracle,
// four TPC-H DSS queries, SPECweb on Apache and Zeus, and em3d/ocean/sparse.
//
// The generators do not execute the applications; they reproduce the
// *structural* properties of each application's access stream that the
// paper's results depend on:
//
//   - code-correlated spatial footprints (a small set of trigger PCs, each
//     with a mostly-repetitive per-region footprint),
//   - the density distribution of spatial region generations (Fig. 5),
//   - interleaving of many concurrently live regions (what separates SMS
//     from GHB, and the AGT from sectored training),
//   - revisit behaviour (OLTP buffer pools revisit pages; DSS scans touch
//     data exactly once, which defeats address-based indexing),
//   - read/write mix and cross-CPU sharing (writes trigger directory
//     invalidations, ending generations and creating false sharing at
//     large block sizes).
//
// All generation is deterministic given Config.Seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Group names match the paper's four application classes.
const (
	GroupOLTP       = "OLTP"
	GroupDSS        = "DSS"
	GroupWeb        = "Web"
	GroupScientific = "Scientific"
)

// Config parameterizes trace generation.
type Config struct {
	// CPUs is the number of processors issuing accesses (paper: 16).
	CPUs int
	// Seed makes the trace reproducible.
	Seed int64
	// Scale multiplies data-structure sizes. 1.0 is the scaled-down
	// default tuned for the reproduction's cache sizes; larger values
	// grow footprints proportionally.
	Scale float64
	// Length is the number of accesses the source yields before
	// reporting exhaustion. Zero selects DefaultLength.
	Length uint64
}

// DefaultLength is the trace length (in accesses) produced when
// Config.Length is zero.
const DefaultLength = 2_000_000

// DefaultConfig returns the configuration used by the experiment harness:
// a scaled-down version of the paper's 16-CPU system.
func DefaultConfig() Config { return Config{CPUs: 4, Seed: 1, Scale: 1.0} }

func (c Config) normalized() Config {
	if c.CPUs <= 0 {
		c.CPUs = 4
	}
	if c.CPUs > 256 {
		c.CPUs = 256
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Length == 0 {
		c.Length = DefaultLength
	}
	return c
}

// Canonical returns the configuration with every default resolved: the
// stable form hashed by the result store and exchanged over the smsd HTTP
// API. Two configs that generate the same trace canonicalize identically.
func (c Config) Canonical() Config { return c.normalized() }

// scaled returns n scaled by the config's Scale factor, at least min.
func (c Config) scaled(n, min int) int {
	v := int(float64(n) * c.Scale)
	if v < min {
		return min
	}
	return v
}

// Workload names a generator and its paper group.
type Workload struct {
	// Name is the application name as used in the paper's figures,
	// e.g. "oltp-db2", "dss-q1", "web-apache", "sparse".
	Name string
	// Group is one of the Group* constants.
	Group string
	// Description summarizes what the generator models.
	Description string
	// Make returns a fresh trace source for the configuration. Every
	// built-in generator's source is also a trace.BatchSource, so
	// consumers that batch (trace.Batched never copies in that case)
	// pay no per-record interface dispatch.
	Make func(cfg Config) trace.Source
	// External marks workloads whose source replays an externally
	// captured trace file (the trace: family) instead of running a
	// generator: the engine's trace memo and disk tier skip them — the
	// file is already a zero-copy replay.
	External bool
}

// The shared generation engine batches natively; all four workload
// families inherit it.
var _ trace.BatchSource = (*engine)(nil)

var registry []Workload

func register(w Workload) {
	registry = append(registry, w)
}

// All returns every registered workload in paper order: OLTP, DSS, Web,
// Scientific.
func All() []Workload {
	order := map[string]int{GroupOLTP: 0, GroupDSS: 1, GroupWeb: 2, GroupScientific: 3}
	out := append([]Workload(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if order[out[i].Group] != order[out[j].Group] {
			return order[out[i].Group] < order[out[j].Group]
		}
		return false // preserve registration order within a group
	})
	return out
}

// ByName looks a workload up by its paper name. Names of the form
// "trace:<path>" resolve to the trace-file family (see tracefile.go):
// the file is opened on first use and replayed as the workload's source.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	if IsTraceName(name) {
		return byTraceName(name)
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// ByGroup returns the workloads in one paper group.
func ByGroup(group string) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Group == group {
			out = append(out, w)
		}
	}
	return out
}

// Groups returns the four paper groups in order.
func Groups() []string {
	return []string{GroupOLTP, GroupDSS, GroupWeb, GroupScientific}
}

// ---- Generation engine ----
//
// Each CPU runs a set of actors (transactions, queries, connections,
// solver threads). An actor produces "ops": short bursts of accesses with
// related addresses and PCs (e.g. one page visit, one hash probe, one
// stencil row). The engine interleaves actors within a CPU and CPUs with
// each other, which is what creates many simultaneously-live spatial
// region generations.

// access is one generated memory reference before it is stamped with a
// sequence number and CPU.
type access struct {
	pc    uint64
	addr  mem.Addr
	write bool
}

// opFunc appends the accesses of one op to buf and returns it. The engine
// calls it whenever the actor's queue drains.
type opFunc func(rng *rand.Rand, buf []access) []access

type actorState struct {
	op    opFunc
	queue []access
	next  int
}

type cpuState struct {
	rng        *rand.Rand
	actors     []*actorState
	cur        int
	switchProb float64
}

// engine implements trace.Source over a set of per-CPU actors.
type engine struct {
	cpus           []*cpuState
	seq            uint64
	instrPerAccess uint64
	nextCPU        int
	remaining      uint64 // accesses left to emit; 0 means exhausted
}

// engineConfig bundles the knobs the per-workload constructors set.
type engineConfig struct {
	cfg Config
	// actorsPerCPU controls intra-CPU interleaving (concurrent
	// transactions/connections per processor).
	actorsPerCPU int
	// switchProb is the probability of switching to a different actor
	// between consecutive accesses on a CPU; higher values interleave
	// live generations more aggressively.
	switchProb float64
	// instrPerAccess is the number of committed instructions per memory
	// access, used to advance the trace clock (Seq).
	instrPerAccess uint64
	// newActor builds the op generator for actor `idx` on `cpu`.
	newActor func(cpu, idx int, rng *rand.Rand) opFunc
}

// splitSeed derives a per-(cpu,actor) seed from the trace seed so traces
// are deterministic yet decorrelated across actors.
func splitSeed(seed int64, cpu, idx int) int64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(cpu)*0xbf58476d1ce4e5b9 + uint64(idx)*0x94d049bb133111eb + 1
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return int64(h & 0x7fffffffffffffff)
}

func newEngine(ec engineConfig) *engine {
	cfg := ec.cfg.normalized()
	if ec.actorsPerCPU <= 0 {
		ec.actorsPerCPU = 1
	}
	if ec.instrPerAccess == 0 {
		ec.instrPerAccess = 3
	}
	e := &engine{
		instrPerAccess: ec.instrPerAccess,
		remaining:      cfg.Length,
	}
	for c := 0; c < cfg.CPUs; c++ {
		cs := &cpuState{
			rng:        rand.New(rand.NewSource(splitSeed(cfg.Seed, c, -1))),
			switchProb: ec.switchProb,
		}
		for a := 0; a < ec.actorsPerCPU; a++ {
			arng := rand.New(rand.NewSource(splitSeed(cfg.Seed, c, a)))
			cs.actors = append(cs.actors, &actorState{op: ec.newActor(c, a, arng)})
		}
		e.cpus = append(e.cpus, cs)
	}
	return e
}

// Next implements trace.Source.
func (e *engine) Next() (trace.Record, bool) {
	var one [1]trace.Record
	if e.NextBatch(one[:]) == 0 {
		return trace.Record{}, false
	}
	return one[0], true
}

// NextBatch implements trace.BatchSource natively: the whole per-record
// generation path (actor switch, queue refill, record stamping) runs in
// one tight loop with no interface dispatch, and all four workload
// families batch through it since every generator is an engine.
func (e *engine) NextBatch(dst []trace.Record) int {
	n := 0
	ncpu := len(e.cpus)
	seq := e.seq
	for n < len(dst) && e.remaining > 0 {
		e.remaining--

		cpu := e.nextCPU
		e.nextCPU++
		if e.nextCPU == ncpu {
			e.nextCPU = 0
		}
		cs := e.cpus[cpu]

		if len(cs.actors) > 1 && cs.rng.Float64() < cs.switchProb {
			cs.cur = cs.rng.Intn(len(cs.actors))
		}
		as := cs.actors[cs.cur]
		for as.next >= len(as.queue) {
			as.queue = as.op(cs.rng, as.queue[:0])
			as.next = 0
			if len(as.queue) == 0 {
				// Defensive: an op that generates nothing would spin forever;
				// emit a filler access instead.
				as.queue = append(as.queue, access{pc: 0xdead0000, addr: 0})
			}
		}
		a := as.queue[as.next]
		as.next++

		seq += e.instrPerAccess
		dst[n] = trace.Record{
			Seq:  seq,
			PC:   a.pc,
			Addr: a.addr,
			CPU:  uint8(cpu),
			Kind: kindOf(a.write),
		}
		n++
	}
	e.seq = seq
	return n
}

func kindOf(write bool) trace.Kind {
	if write {
		return trace.Write
	}
	return trace.Read
}

// ---- shared helpers used by the concrete workloads ----

// pcSite builds a synthetic program counter for (workload id, op type,
// step). Distinct steps within an op are distinct instructions in the
// traversal loop, exactly as compiled code would produce.
func pcSite(workload, op, step int) uint64 {
	return 0x400000 + uint64(workload)<<20 + uint64(op)<<8 + uint64(step)*4
}

// regionAddr composes an address from a structure base, a region index and
// a block offset within the region (64B blocks, 2kB regions by default for
// structure layout purposes; callers pass geometry-specific strides when
// they need other alignments).
const (
	blockBytes  = 64
	pageBytes   = 2048 // database page / structure unit used by generators
	pageBlocks  = pageBytes / blockBytes
	hugeStride  = 1 << 33 // separation between unrelated structures
	addrSpaceLo = 1 << 30 // keep generated addresses away from 0
)

func structBase(workload, structure int) mem.Addr {
	return mem.Addr(addrSpaceLo + uint64(workload)<<40 + uint64(structure)*hugeStride)
}

func pageAddr(base mem.Addr, page int, block int) mem.Addr {
	return base + mem.Addr(page)*pageBytes + mem.Addr(block)*blockBytes
}

// zipfPick picks an index in [0,n) with a nested hot-set bias: with
// probability hotProb the choice narrows to the first hotFrac*n entries,
// recursively, so the head of the distribution is much hotter than its
// body — a cheap Zipf approximation. The self-similar skew matters: it
// gives the L1 a small resident core (row-level reuse at 64 B blocks)
// while the tail still spans the full structure (off-chip misses at L2).
func zipfPick(rng *rand.Rand, n int, hotProb, hotFrac float64) int {
	if n <= 1 {
		return 0
	}
	for n > 1 && rng.Float64() < hotProb {
		hot := int(float64(n) * hotFrac)
		if hot < 1 {
			break
		}
		n = hot
	}
	return rng.Intn(n)
}
