// Package obs is the repository's dependency-free observability kit:
// a metrics registry rendering valid Prometheus exposition text, an
// exposition-format checker (shared by unit tests and the smoke
// scripts), and a span tracer exporting Chrome trace-event JSON.
//
// # Metrics
//
// A Registry holds counters, gauges, fixed-bucket histograms and their
// labelled vector forms, plus callback collectors (CounterFunc,
// GaugeFunc) that sample external state — an engine accessor, a
// store.Stats() snapshot — at scrape time. WritePrometheus renders the
// whole registry as Prometheus text exposition with # HELP and # TYPE
// comments, so real scrapers ingest it unmodified.
//
// The record path is allocation-free: Counter.Add, Gauge.Set and
// Histogram.Observe are a few atomic operations with no heap traffic,
// so instrumentation can sit on the simulator hot path without
// tripping the repository's 0 allocs/op CI gate. Labelled children are
// interned: resolve them once with With and retain the child, then
// record through it for free.
//
// # Tracing
//
// A Tracer collects named, categorized spans. Producers attach it to a
// context (WithTracer) and instrument with Start/End pairs or, for
// phase-structured loops like the SMARTS sampling driver, a
// PhaseTracker that turns phase transitions into spans with one string
// compare per batch. Every method tolerates a nil receiver, so
// instrumented code pays nothing when no tracer is attached — the
// simulator benchmarks run exactly as before. WriteChromeTrace renders
// the spans as Chrome trace-event JSON loadable in chrome://tracing or
// Perfetto; PhaseTotals aggregates wall time per span name for the smsd
// job API's phase-timing block and per-phase histograms.
package obs
