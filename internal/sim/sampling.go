package sim

// SMARTS-style sampled simulation (Wunderlich et al., ISCA'03), the
// methodology the paper's evaluation runs on: instead of simulating
// every record in detail, the run alternates three phases over the
// trace —
//
//   - cold gaps: records contribute nothing; on seekable sources
//     (in-memory replays, mmap'd v2 traces) they are skipped in O(1),
//     on generators they are produced and discarded,
//   - functional warming: a bounded prefix before each measurement
//     window in which the full model runs — caches, the directory and
//     the predictor tables (AGT/PHT/GHB/stride) train, and streams fill
//     the hierarchy — but statistics stay off,
//   - detailed windows: full simulation through Runner.Step, exactly as
//     exact mode runs it.
//
// Each fully-warm detailed window yields one sample per headline metric;
// the Result gains a Sampling block reporting mean ± Student's t
// confidence interval over the windows. Exact mode (zero SamplingConfig)
// is untouched and remains the golden reference.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SamplingConfig enables and shapes sampled simulation. The zero value
// disables it (exact mode). All counts are in trace records.
type SamplingConfig struct {
	// WindowRecords is the length of each detailed measurement window.
	// Zero disables sampling entirely.
	WindowRecords uint64
	// IntervalRecords is the sampling period: each interval ends with
	// one measurement window. Zero selects
	// DefaultSamplingIntervalFactor × WindowRecords.
	IntervalRecords uint64
	// WarmupRecords is the functional-warming run-up immediately before
	// each window. Zero selects DefaultSamplingWarmupFactor ×
	// WindowRecords; it is clamped at run time to the gap available
	// between consecutive windows.
	WarmupRecords uint64
	// Confidence is the two-sided confidence level of the reported
	// intervals, in (0, 1). Zero selects DefaultSamplingConfidence.
	Confidence float64
}

// Defaults for SamplingConfig fields left zero. The ratios follow the
// SMARTS recipe: warming a few windows' worth of records before each
// window, measuring a small fraction of the trace.
const (
	DefaultSamplingIntervalFactor = 50
	DefaultSamplingWarmupFactor   = 4
	DefaultSamplingConfidence     = 0.95
)

// Enabled reports whether the configuration turns sampling on.
func (s SamplingConfig) Enabled() bool { return s.WindowRecords > 0 }

// withDefaults resolves zero fields. A disabled config normalizes to the
// zero value so every way of spelling "exact mode" hashes identically.
func (s SamplingConfig) withDefaults() SamplingConfig {
	if !s.Enabled() {
		return SamplingConfig{}
	}
	if s.IntervalRecords == 0 {
		s.IntervalRecords = DefaultSamplingIntervalFactor * s.WindowRecords
	}
	if s.WarmupRecords == 0 {
		s.WarmupRecords = DefaultSamplingWarmupFactor * s.WindowRecords
	}
	if s.Confidence == 0 {
		s.Confidence = DefaultSamplingConfidence
	}
	return s
}

// Canonical returns the configuration with every default resolved: the
// stable form hashed by the result store and exchanged over the smsd
// HTTP API.
func (s SamplingConfig) Canonical() SamplingConfig { return s.withDefaults() }

// Validate checks the resolved configuration for consistency.
func (s SamplingConfig) Validate() error {
	s = s.withDefaults()
	if !s.Enabled() {
		return nil
	}
	if s.IntervalRecords < s.WindowRecords {
		return fmt.Errorf("sim: sampling interval (%d records) is shorter than the measurement window (%d records)", s.IntervalRecords, s.WindowRecords)
	}
	if s.Confidence <= 0 || s.Confidence >= 1 {
		return fmt.Errorf("sim: sampling confidence %g outside (0, 1)", s.Confidence)
	}
	return nil
}

// SamplingSummary is the Result block a sampled run produces.
type SamplingSummary struct {
	// Config is the resolved sampling configuration the run used.
	Config SamplingConfig
	// Windows counts the fully-warm, full-length measurement windows
	// that contributed samples. Windows truncated by the end of the
	// trace or overlapping the global warm-up prefix are simulated but
	// not sampled.
	Windows uint64
	// MeasuredRecords / WarmedRecords / SkippedRecords partition the
	// consumed trace into detailed, functionally-warmed and skipped
	// (or discarded) records; TotalRecords is their sum.
	MeasuredRecords uint64
	WarmedRecords   uint64
	SkippedRecords  uint64
	TotalRecords    uint64
	// Metrics holds mean ± CI per headline metric, in a fixed order.
	// Empty when fewer than two windows were sampled: one window bounds
	// nothing (the half-width would be infinite, which JSON cannot
	// carry).
	Metrics []SampledMetric `json:",omitempty"`
}

// SampledMetric is one per-window metric's distribution over the sampled
// windows.
type SampledMetric struct {
	// Name identifies the metric (see sampledMetricNames): per-window
	// rates such as "l1_read_misses_per_read".
	Name string
	// Mean is the mean of the per-window values; StdDev their sample
	// standard deviation; HalfWidth the two-sided Student's t
	// confidence half-width at Config.Confidence.
	Mean      float64
	StdDev    float64
	HalfWidth float64
}

// Interval returns the metric as a stats.Interval.
func (m SampledMetric) Interval() stats.Interval {
	return stats.Interval{Mean: m.Mean, Half: m.HalfWidth}
}

// Metric returns the named metric, if the summary carries it.
func (s *SamplingSummary) Metric(name string) (SampledMetric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return SampledMetric{}, false
}

// SimulatedFraction is the share of consumed records that ran through
// the simulator at all (detailed + warming): the work the sampled run
// could not skip, and so the inverse of its ideal speedup on seekable
// sources.
func (s *SamplingSummary) SimulatedFraction() float64 {
	if s.TotalRecords == 0 {
		return 0
	}
	return float64(s.MeasuredRecords+s.WarmedRecords) / float64(s.TotalRecords)
}

// The headline per-window metrics, in reporting order. Read-based rates
// use the paper's read-miss accounting; the last two are per-access.
var sampledMetricNames = [...]string{
	"l1_read_misses_per_read",
	"offchip_read_misses_per_read",
	"l1_covered_per_read",
	"offchip_covered_per_read",
	"overpredictions_per_read",
	"stream_requests_per_access",
	"offchip_blocks_per_access",
}

const numSampledMetrics = len(sampledMetricNames)

// sampleCounters is the subset of Result counters the window samples
// difference. All fields are monotonically increasing over a run.
type sampleCounters struct {
	accesses, reads                 uint64
	l1ReadMisses, offChipReadMisses uint64
	l1Covered, offChipCovered       uint64
	overpredictions, streamRequests uint64
	offChipBlocks                   uint64
}

func (r *Runner) currentSampleCounters() sampleCounters {
	res := &r.res
	return sampleCounters{
		accesses:          res.Accesses,
		reads:             res.Reads,
		l1ReadMisses:      res.L1ReadMisses,
		offChipReadMisses: res.OffChipReadMisses,
		l1Covered:         res.L1CoveredMisses,
		offChipCovered:    res.OffChipCoveredMisses,
		overpredictions:   res.Overpredictions,
		streamRequests:    res.StreamRequests,
		offChipBlocks:     res.OffChipBlocks,
	}
}

// metricVector turns one window's counter deltas into the per-window
// metric values, in sampledMetricNames order.
func metricVector(d sampleCounters) [numSampledMetrics]float64 {
	return [numSampledMetrics]float64{
		stats.Ratio(d.l1ReadMisses, d.reads),
		stats.Ratio(d.offChipReadMisses, d.reads),
		stats.Ratio(d.l1Covered, d.reads),
		stats.Ratio(d.offChipCovered, d.reads),
		stats.Ratio(d.overpredictions, d.reads),
		stats.Ratio(d.streamRequests, d.accesses),
		stats.Ratio(d.offChipBlocks, d.accesses),
	}
}

func (c sampleCounters) sub(prev sampleCounters) sampleCounters {
	return sampleCounters{
		accesses:          c.accesses - prev.accesses,
		reads:             c.reads - prev.reads,
		l1ReadMisses:      c.l1ReadMisses - prev.l1ReadMisses,
		offChipReadMisses: c.offChipReadMisses - prev.offChipReadMisses,
		l1Covered:         c.l1Covered - prev.l1Covered,
		offChipCovered:    c.offChipCovered - prev.offChipCovered,
		overpredictions:   c.overpredictions - prev.overpredictions,
		streamRequests:    c.streamRequests - prev.streamRequests,
		offChipBlocks:     c.offChipBlocks - prev.offChipBlocks,
	}
}

// sampledState accumulates window samples with Welford's streaming
// mean/variance, so a run with millions of windows allocates nothing
// per window.
type sampledState struct {
	cfg    SamplingConfig // resolved
	warmup uint64         // effective per-window warming, clamped to the gap

	measured, warmed, skipped uint64

	snap         sampleCounters // counters at the current window's start
	snapValid    bool
	snapEligible bool // window is fully past the global warm-up prefix

	n    uint64 // sampled windows
	mean [numSampledMetrics]float64
	m2   [numSampledMetrics]float64
}

func newSampledState(sc SamplingConfig) *sampledState {
	sc = sc.withDefaults()
	w := sc.WarmupRecords
	if gap := sc.IntervalRecords - sc.WindowRecords; w > gap {
		w = gap
	}
	return &sampledState{cfg: sc, warmup: w}
}

func (st *sampledState) push(v [numSampledMetrics]float64) {
	st.n++
	for i, x := range v {
		delta := x - st.mean[i]
		st.mean[i] += delta / float64(st.n)
		st.m2[i] += delta * (x - st.mean[i])
	}
}

// summary renders the accumulated samples. Metrics are emitted only with
// two or more windows: a single sample has no finite interval.
func (st *sampledState) summary() *SamplingSummary {
	s := &SamplingSummary{
		Config:          st.cfg,
		Windows:         st.n,
		MeasuredRecords: st.measured,
		WarmedRecords:   st.warmed,
		SkippedRecords:  st.skipped,
		TotalRecords:    st.measured + st.warmed + st.skipped,
	}
	if st.n < 2 {
		return s
	}
	tcrit := stats.TCritical(st.cfg.Confidence, int(st.n-1))
	sqrtN := math.Sqrt(float64(st.n))
	for i, name := range sampledMetricNames {
		sd := math.Sqrt(st.m2[i] / float64(st.n-1))
		s.Metrics = append(s.Metrics, SampledMetric{
			Name:      name,
			Mean:      st.mean[i],
			StdDev:    sd,
			HalfWidth: tcrit * sd / sqrtN,
		})
	}
	return s
}

// advanceCounted moves the consumed-record position forward without
// simulating, keeping the flip-once warm flag in sync with Step's
// convention (warm once counted exceeds WarmupAccesses).
func (r *Runner) advanceCounted(n uint64) {
	r.counted += n
	if !r.warm && r.counted > r.cfg.WarmupAccesses {
		r.warm = true
	}
}

// warmStep functionally warms one record: the full model runs — caches,
// directory and predictor tables see the access exactly as in detailed
// mode, and trained streams still fill the hierarchy — but no statistics
// are collected (it is exact mode's own pre-warm-up behavior, applied
// mid-run). Streams must keep flowing here: discarding them would start
// every measurement window with a streamed-block population of zero,
// which biases prefetcher miss rates by 25-60% in practice — far beyond
// what any confidence interval can absorb.
func (r *Runner) warmStep(rec trace.Record) {
	r.warming = true
	r.Step(rec)
	r.warming = false
}

// runSampled is RunContext's sampled-mode driver. Positions are tracked
// relative to the start of src (pos = counted - base), so the window
// schedule is per-source and a Runner can be fed several sources in
// sequence, exactly like exact mode.
//
// The phase layout within each interval of IntervalRecords is
//
//	[ cold gap | functional warming | detailed window ]
//
// with the window flush against the interval's end. The degenerate
// configuration WindowRecords == IntervalRecords == trace length
// therefore runs every record through Step, reproducing the exact-mode
// Result byte for byte (minus the Sampling block).
// ph receives gap/warm/window phase transitions (nil-safe): one Enter
// per batch, so the per-record loops stay untouched.
func (r *Runner) runSampled(ctx context.Context, src trace.Source, ph *obs.PhaseTracker) (*Result, error) {
	st := r.sampled
	st.snapValid = false
	window, interval := st.cfg.WindowRecords, st.cfg.IntervalRecords
	warmup := st.warmup

	every := r.progressEvery
	if every == 0 {
		every = DefaultProgressInterval
	}
	size := uint64(DefaultBatchRecords)
	if size > every {
		size = every
	}
	views, isView := src.(trace.ViewSource)
	seeker, canSeek := src.(trace.Seeker)
	var bs trace.BatchSource
	if !isView {
		if uint64(len(r.batch)) != size {
			r.batch = make([]trace.Record, size)
		}
		bs = trace.Batched(src)
	}
	// fetch returns the next batch, clamped to want records.
	fetch := func(want uint64) []trace.Record {
		if want > size {
			want = size
		}
		if isView {
			return views.NextView(int(want))
		}
		return r.batch[:bs.NextBatch(r.batch[:want])]
	}

	base := r.counted
	next := r.counted + every
	eof := false
	for !eof {
		pos := r.counted - base
		k := pos / interval
		intervalEnd := (k + 1) * interval
		windowStart := intervalEnd - window
		warmStart := windowStart - warmup

		switch {
		case pos < warmStart:
			// Cold gap: skip on seekable sources, stream-and-discard on
			// generators.
			ph.Enter("gap")
			if canSeek {
				target := warmStart
				if total := seeker.Records(); target >= total {
					target = total
					eof = true
				}
				if err := seeker.Seek(target); err != nil {
					return nil, fmt.Errorf("sim: seeking trace source: %w", err)
				}
				st.skipped += target - pos
				r.advanceCounted(target - pos)
			} else {
				batch := fetch(warmStart - pos)
				if len(batch) == 0 {
					eof = true
					break
				}
				st.skipped += uint64(len(batch))
				r.advanceCounted(uint64(len(batch)))
			}

		case pos < windowStart:
			// Functional warming. warmStep advances r.counted itself.
			ph.Enter("warm")
			batch := fetch(windowStart - pos)
			if len(batch) == 0 {
				eof = true
				break
			}
			for i := range batch {
				r.warmStep(batch[i])
			}
			st.warmed += uint64(len(batch))

		default:
			// Measurement window [windowStart, intervalEnd). Windows that
			// end inside the global warm-up prefix could never contribute
			// statistics (every record would be pre-warm), so they are
			// demoted to warming.
			demoted := base+intervalEnd <= r.cfg.WarmupAccesses
			if demoted {
				ph.Enter("warm")
			} else {
				ph.Enter("window")
			}
			if pos == windowStart && !demoted {
				st.snap = r.currentSampleCounters()
				st.snapValid = true
				st.snapEligible = base+windowStart >= r.cfg.WarmupAccesses
			}
			batch := fetch(intervalEnd - pos)
			if len(batch) == 0 {
				eof = true
				break
			}
			if demoted {
				for i := range batch {
					r.warmStep(batch[i])
				}
				st.warmed += uint64(len(batch))
			} else {
				for i := range batch {
					r.Step(batch[i])
				}
				st.measured += uint64(len(batch))
			}
			if r.counted-base == intervalEnd && st.snapValid {
				st.snapValid = false
				if st.snapEligible {
					st.push(metricVector(r.currentSampleCounters().sub(st.snap)))
				}
			}
		}

		if r.counted >= next {
			next = r.counted + every
			if r.onProgress != nil {
				r.onProgress(r.counted)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Same latched-error convention as exact mode: a decode failure must
	// not produce a Result over a partial stream.
	if e, ok := src.(interface{ Err() error }); ok {
		if err := e.Err(); err != nil {
			return nil, fmt.Errorf("sim: trace source failed mid-stream: %w", err)
		}
	}
	r.finish()
	r.res.Sampling = st.summary()
	if r.onProgress != nil {
		r.onProgress(r.counted)
	}
	return r.Result(), nil
}
