// Command obscheck validates observability artifacts from the smoke
// scripts: Prometheus exposition text and Chrome trace-event JSON.
//
//	obscheck metrics [file]                  # file or stdin
//	obscheck trace  <file> [span-name ...]   # require named spans
//
// Exits non-zero with a diagnostic on the first problem found.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: obscheck metrics [file] | obscheck trace <file> [span-name ...]")
		return 2
	}
	var err error
	switch args[0] {
	case "metrics":
		err = checkMetrics(args[1:])
	case "trace":
		err = checkTrace(args[1:])
	default:
		err = fmt.Errorf("unknown subcommand %q", args[0])
	}
	if err != nil {
		fmt.Fprintf(stderr, "obscheck %s: %v\n", args[0], err)
		return 1
	}
	return 0
}

func checkMetrics(args []string) error {
	data, err := readInput(args)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("empty input")
	}
	return obs.CheckExposition(data)
}

func checkTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("trace needs a file argument")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid trace JSON: %v", err)
	}
	spans := 0
	byName := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans++
			byName[ev.Name]++
		}
	}
	if spans == 0 {
		return fmt.Errorf("trace has no complete (ph=X) spans")
	}
	for _, want := range args[1:] {
		if byName[want] == 0 {
			return fmt.Errorf("trace has no %q span (have %v)", want, names(byName))
		}
	}
	return nil
}

func names(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func readInput(args []string) ([]byte, error) {
	if len(args) == 0 || args[0] == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(args[0])
}
