package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
)

// Table1 renders the paper's Table 1 system parameters next to the scaled
// configuration this reproduction simulates.
func Table1(s *Session) string {
	o := s.Options()
	ms := o.MemorySystem(64)
	geo := mem.DefaultGeometry()
	pht := core.PHTStorage(geo, core.DefaultPHTEntries, core.DefaultPHTAssoc)
	agt := core.AGTStorage(geo, core.DefaultFilterEntries, core.DefaultAccumEntries)
	t := NewTable("Table 1: system and application parameters (paper vs reproduction)",
		"parameter", "paper", "reproduction")
	t.AddRow("processors", "16 × UltraSPARC III, 4GHz OoO", fmt.Sprintf("%d trace-driven CPUs", ms.CPUs))
	t.AddRow("L1 caches", "split I/D, 64KB 2-way, 64B blocks",
		fmt.Sprintf("D only, %dKB %d-way, %dB blocks", ms.L1.Size>>10, ms.L1.Assoc, ms.L1.BlockSize))
	t.AddRow("L2 cache", "unified, 8MB 8-way, 25-cycle",
		fmt.Sprintf("%dMB %d-way (scaled; see DESIGN.md)", ms.L2.Size>>20, ms.L2.Assoc))
	t.AddRow("main memory", "3GB, 60ns", "interval model: 400-cycle round trip")
	t.AddRow("coherence", "directory-based, 64B units", "MSI directory, 64B sub-unit false-sharing classifier")
	t.AddRow("SMS", "32-entry filter, 64-entry accumulation, 2kB regions, 16k-entry 16-way PHT, 16 streams", "identical")
	t.AddRow("SMS storage", "PHT ≈ 64kB L1 data array equivalent (§4.2)",
		fmt.Sprintf("PHT %.1fKiB + AGT %.1fKiB (cost model)", pht.KiB(), agt.KiB()))
	t.AddRow("workloads", "TPC-C (DB2, Oracle), TPC-H Q1/2/16/17, SPECweb (Apache, Zeus), em3d, ocean, sparse",
		"synthetic structural equivalents (internal/workload)")
	t.AddRow("trace length", "≥1000 transactions / 3B instructions", fmt.Sprintf("%d accesses per workload (half warm-up)", o.Length))
	return t.Render()
}
