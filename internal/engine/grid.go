package engine

import (
	"fmt"

	"repro/internal/sim"
)

// Counts summarizes how a grid execution settled.
type Counts struct {
	// Runs is the number of deduplicated standard runs the plan compiled
	// to (customs excluded).
	Runs int
	// Simulated / Cached / Skipped / Failed partition Runs: executed
	// fresh, served from memo/store, cancelled before starting, or
	// errored (including cancelled mid-run).
	Simulated int
	Cached    int
	Skipped   int
	Failed    int
	// Customs is the number of custom cells; CustomsRun of them actually
	// executed.
	Customs    int
	CustomsRun int
}

// customCell is one settled custom cell.
type customCell struct {
	started bool
	val     any
	err     error
}

// Grid is the outcome of executing a Plan: every cell resolved to its
// run's result. After an error-free Execute every cell is populated;
// after a cancelled one, Counts reports what settled and the accessors
// panic for cells that never ran (calling them without checking
// Execute's error is a programming error).
type Grid struct {
	plan    Plan
	cells   map[cellRef]*node
	customs map[cellRef]*customCell
	counts  Counts
}

// settle tallies the counts and returns the first non-cancellation error
// (or the first cancellation if nothing worse happened).
func (g *Grid) settle() error {
	var firstErr error
	seen := make(map[*node]bool, len(g.cells))
	for _, n := range g.cells {
		if seen[n] {
			continue
		}
		seen[n] = true
		switch {
		case n.err == nil && n.cached:
			g.counts.Cached++
		case n.err == nil:
			g.counts.Simulated++
		case isCtxErr(n.err) && !n.started:
			g.counts.Skipped++
		default:
			g.counts.Failed++
		}
		if n.err != nil && (firstErr == nil || isCtxErr(firstErr) && !isCtxErr(n.err)) {
			firstErr = n.err
		}
	}
	g.counts.Customs = len(g.customs)
	for _, c := range g.customs {
		if c.started {
			g.counts.CustomsRun++
		}
		if c.err != nil && (firstErr == nil || isCtxErr(firstErr) && !isCtxErr(c.err)) {
			firstErr = c.err
		}
	}
	return firstErr
}

// Plan returns the executed plan.
func (g *Grid) Plan() Plan { return g.plan }

// Counts returns the settlement summary.
func (g *Grid) Counts() Counts { return g.counts }

// Result returns the cell's simulation result. It panics on an
// undeclared cell or one that did not complete (Execute returned an
// error the caller should have checked).
func (g *Grid) Result(workload, variant string) *sim.Result {
	n, ok := g.cells[cellRef{workload, variant}]
	if !ok {
		panic(fmt.Sprintf("engine: plan %q has no cell %s/%s", g.plan.Name, workload, variant))
	}
	if n.err != nil || n.res == nil {
		panic(fmt.Sprintf("engine: plan %q cell %s/%s did not complete: %v", g.plan.Name, workload, variant, n.err))
	}
	return n.res
}

// Ok reports whether the cell completed with a result.
func (g *Grid) Ok(workload, variant string) bool {
	n, ok := g.cells[cellRef{workload, variant}]
	return ok && n.err == nil && n.res != nil
}

// Baseline returns the workload's run under the plan's Baseline variant.
func (g *Grid) Baseline(workload string) *sim.Result {
	if g.plan.Baseline == "" {
		panic(fmt.Sprintf("engine: plan %q declares no baseline", g.plan.Name))
	}
	return g.Result(workload, g.plan.Baseline)
}

// Custom returns the value computed by the custom cell. Like Result, it
// panics on an undeclared or incomplete cell.
func (g *Grid) Custom(workload, key string) any {
	c, ok := g.customs[cellRef{workload, key}]
	if !ok {
		panic(fmt.Sprintf("engine: plan %q has no custom cell %s/%s", g.plan.Name, workload, key))
	}
	if c.err != nil {
		panic(fmt.Sprintf("engine: plan %q custom cell %s/%s did not complete: %v", g.plan.Name, workload, key, c.err))
	}
	return c.val
}
