package workload

// The trace: workload family wraps captured trace files — the paper's
// actual methodology (§4 replays FLEXUS/Simics traces of commercial
// workloads) — as first-class workloads: any plan, experiment, smsim
// invocation or smsd job can target "trace:<path>" exactly like a
// generator name, and the simulator replays the file's records.
//
// ByName resolves the family lazily: the first lookup of a given path
// opens (and for v2, mmaps) the file and caches the handle for the
// process lifetime, so repeated runs share one mapping. Trace workloads
// are deliberately absent from All(): the figure plans enumerate the
// paper's synthetic suite, and adding dynamically registered files to
// it would silently change every figure grid.

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// GroupTrace is the group name of trace-file workloads.
const GroupTrace = "Trace"

// TracePrefix marks workload names that name a trace file.
const TracePrefix = "trace:"

var (
	traceMu    sync.Mutex
	traceFiles = map[string]*cachedTraceFile{}
)

// cachedTraceFile remembers how the file looked when it was opened so a
// re-captured file is reopened instead of served stale from the old
// mapping.
type cachedTraceFile struct {
	f     *trace.File
	size  int64
	mtime time.Time
}

// IsTraceName reports whether name selects the trace-file family.
func IsTraceName(name string) bool { return strings.HasPrefix(name, TracePrefix) }

// byTraceName resolves "trace:<path>", opening the file on first use.
// A cached handle is revalidated against the file's current size and
// mtime: overwriting a capture serves the new records on the next
// lookup. (The old mapping is deliberately leaked — sources replaying
// it may still be live; truncating a file mid-replay remains undefined,
// as with any mmap consumer.)
func byTraceName(name string) (Workload, error) {
	path := strings.TrimPrefix(name, TracePrefix)
	if path == "" {
		return Workload{}, fmt.Errorf("workload: %q names no trace file", name)
	}
	st, err := os.Stat(path)
	if err != nil {
		return Workload{}, fmt.Errorf("workload: opening trace file: %w", err)
	}
	traceMu.Lock()
	c, ok := traceFiles[path]
	if ok && (c.size != st.Size() || !c.mtime.Equal(st.ModTime())) {
		delete(traceFiles, path)
		ok = false
	}
	traceMu.Unlock()
	if !ok {
		f, err := trace.OpenFile(path)
		if err != nil {
			return Workload{}, fmt.Errorf("workload: opening trace file: %w", err)
		}
		c = &cachedTraceFile{f: f, size: st.Size(), mtime: st.ModTime()}
		traceMu.Lock()
		if prev, raced := traceFiles[path]; raced {
			_ = f.Close()
			c = prev
		} else {
			traceFiles[path] = c
		}
		traceMu.Unlock()
	}
	return traceWorkload(name, c.f), nil
}

// traceWorkload wraps an opened file as a Workload.
func traceWorkload(name string, f *trace.File) Workload {
	info := f.Info()
	desc := fmt.Sprintf("captured trace replay (%d records, format v%d", info.Records, info.Version)
	if info.Workload != "" {
		desc += ", source " + info.Workload
	}
	desc += ")"
	return Workload{
		Name:        name,
		Group:       GroupTrace,
		Description: desc,
		External:    true,
		Make: func(cfg Config) trace.Source {
			src := f.NewSource()
			// The trace is what it is: CPUs, seed and scale do not
			// apply. Length only caps the replay — shorter files simply
			// exhaust early, like a generator asked for fewer records
			// than Config.Length would imply.
			if cfg.Length > 0 && cfg.Length < info.Records {
				return trace.Limit(src, cfg.Length)
			}
			return src
		},
	}
}

// OpenTraceWorkload opens the trace file at path and returns its
// workload (name "trace:<path>"). It is ByName(TracePrefix+path) with
// the error surfaced eagerly.
func OpenTraceWorkload(path string) (Workload, error) {
	return byTraceName(TracePrefix + path)
}
