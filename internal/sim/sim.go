// Package sim drives memory-access traces through the coherent cache
// hierarchy with an optional prefetcher attached, and produces the
// miss/coverage/overprediction statistics, density histograms, oracle
// opportunity counts, and per-window samples that the experiment harness
// turns into the paper's figures.
//
// Accounting conventions follow the paper:
//
//   - Coverage and miss rates are computed over *read* misses (§4.1-4.6
//     report read misses; writes still train predictors, drive coherence
//     and fill caches).
//   - Coverage is the fraction of the *baseline* configuration's misses
//     that become prefetch hits; uncovered misses are the variant's
//     remaining demand misses over the same baseline. Cache pollution from
//     overpredictions shows up as extra uncovered misses, exactly as the
//     paper notes for Figure 6.
//   - Overpredictions are streamed blocks evicted or invalidated before
//     first use.
//   - Statistics are collected only after a warm-up prefix of the trace
//     (the paper uses half of each trace for warm-up).
//
// Besides exact mode (every record simulated in detail, the golden
// reference), a Runner with Config.Sampling enabled runs SMARTS-style
// sampled simulation: short detailed windows separated by functional
// warming and fast-forwarded gaps, reporting each headline metric as a
// mean ± Student's t confidence interval (see sampling.go and
// Result.Sampling).
package sim

import (
	"context"
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ghb"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sectored"
	"repro/internal/stride"
	"repro/internal/trace"
)

// Config parameterizes a simulation run.
type Config struct {
	// Coherence describes the memory system (CPUs, L1, L2).
	Coherence coherence.Config
	// Geometry is the spatial region geometry used by SMS/LS and the
	// generation trackers. Zero selects the 64 B / 2 kB default.
	Geometry mem.Geometry
	// PrefetcherName selects the attached prefetcher by registry name
	// (see Register; built-ins: "none", "sms", "ls", "ghb", "stride").
	// Empty selects the baseline system ("none").
	PrefetcherName string
	// SMS configures per-CPU SMS engines (Geometry is overridden by the
	// run's Geometry).
	SMS core.Config
	// LS configures the logical-sectored trainer (Geometry and
	// CacheSize are overridden to match the run).
	LS sectored.Config
	// GHB configures the per-CPU GHB prefetchers.
	GHB ghb.Config
	// Stride configures the per-CPU stride prefetchers.
	Stride stride.Config
	// StreamRate is the number of stream requests issued to the memory
	// system per demand access processed (models finite stream
	// bandwidth; default 4).
	StreamRate int
	// WarmupAccesses is the number of leading accesses excluded from
	// statistics. The convention (paper §4) is half the trace; callers
	// set this explicitly because sources do not expose their length.
	WarmupAccesses uint64
	// TrackGenerations enables the per-level generation trackers that
	// feed the density histograms (Fig. 5) and the oracle opportunity
	// counts (Fig. 4). It costs memory proportional to live regions.
	TrackGenerations bool
	// WindowInstructions, when nonzero, splits the measured trace into
	// fixed instruction windows and records per-window samples for the
	// timing model (Figs. 12/13).
	WindowInstructions uint64
	// OverlapGap is the instruction distance under which consecutive
	// misses are considered overlapped (one MLP group) by the window
	// sampler. 0 selects the default.
	OverlapGap uint64
	// MaxMLP caps the number of misses per overlap group (the MSHR
	// bound on outstanding misses). 0 selects the default.
	MaxMLP uint64
	// Sampling, when enabled (WindowRecords > 0), switches the run to
	// SMARTS-style sampled simulation: short detailed measurement
	// windows separated by functional warming and fast-forwarded gaps,
	// with per-window confidence intervals reported in Result.Sampling.
	// The zero value keeps the exact, every-record mode.
	Sampling SamplingConfig
}

// DefaultStreamRate bounds stream issue per processed access.
const DefaultStreamRate = 4

// DefaultOverlapGap is the instruction distance within which two misses
// are treated as overlapped (issued from the same instruction window by
// the out-of-order core). It matches the paper's 256-entry ROB: two
// misses less than a reorder-buffer's worth of instructions apart can be
// outstanding together.
const DefaultOverlapGap = 256

// DefaultMaxMLP caps misses per overlap group, mirroring the paper's
// 32-MSHR L1 shared between demand misses and stream requests.
const DefaultMaxMLP = 16

func (c Config) withDefaults() Config {
	if c.PrefetcherName == "" {
		c.PrefetcherName = "none"
	}
	if c.Coherence.CPUs == 0 {
		c.Coherence = coherence.DefaultConfig()
	}
	if c.Geometry == (mem.Geometry{}) {
		c.Geometry = mem.DefaultGeometry()
	}
	if c.StreamRate == 0 {
		c.StreamRate = DefaultStreamRate
	}
	if c.OverlapGap == 0 {
		c.OverlapGap = DefaultOverlapGap
	}
	if c.MaxMLP == 0 {
		c.MaxMLP = DefaultMaxMLP
	}
	c.Sampling = c.Sampling.withDefaults()
	return c
}

// Canonical returns the configuration with every default resolved, so two
// configs that select the same simulation serialize identically. It is the
// stable form hashed by the result store and exchanged over the smsd HTTP
// API.
//
// Sub-configs are canonicalized too, mirroring how the built-in
// constructors derive them from the run (geometry and block size come
// from the run, the LS cache size from the L1): defaults spelled out and
// defaults left implicit hash to the same key.
func (c Config) Canonical() Config {
	c = c.withDefaults()

	c.SMS.Geometry = c.Geometry
	c.SMS = c.SMS.Canonical()
	c.LS.Geometry = c.Geometry
	if c.LS.CacheSize == 0 {
		c.LS.CacheSize = c.Coherence.L1.Size
	}
	c.LS = c.LS.Canonical()
	c.GHB.BlockSize = c.Coherence.L1.BlockSize
	c.GHB = c.GHB.Canonical()
	c.Stride.BlockSize = c.Coherence.L1.BlockSize
	c.Stride = c.Stride.Canonical()
	return c
}

// Runner executes one simulation.
type Runner struct {
	cfg Config
	sys *coherence.System

	pf     []Prefetcher // one engine per CPU; nil for the baseline
	fillL1 bool         // cached pf[0].FillLevel() == LevelL1

	gensL1 []*genTracker
	gensL2 []*genTracker

	res     Result
	warm    bool
	warming bool   // inside a sampled functional-warming phase: stats off
	counted uint64 // accesses processed

	// Per-record branch hoists, fixed at construction.
	trackGens  bool
	hasWindows bool
	hasPf      bool // len(pf) > 0, hoisted out of Step

	// exec is the execution tuning (decode pipelining, lanes); pstats
	// describes how the last RunContext actually executed. Neither ever
	// affects the Result — see Exec.
	exec   Exec
	pstats PipelineStats

	progressEvery uint64
	onProgress    func(records uint64)

	batch []trace.Record // RunContext's reusable drain buffer

	// Per-record result scratch (see coherence.AccessResult): one access
	// result and one stream result live for the whole run, so the hot
	// path never moves result structs by value.
	acc  coherence.AccessResult
	sres coherence.StreamResult

	win winState

	// sampled holds the SMARTS-style sampling state; nil in exact mode.
	sampled *sampledState
}

// NewRunner builds a runner for cfg, attaching the prefetcher selected by
// cfg.PrefetcherName from the registry.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Sampling.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sampling.Enabled() && cfg.WindowInstructions > 0 {
		return nil, fmt.Errorf("sim: sampled mode is incompatible with the timing model's instruction windows (WindowInstructions); run the timing figures exact")
	}
	sys, err := coherence.New(cfg.Coherence)
	if err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg, sys: sys}
	ncpu := cfg.Coherence.CPUs

	ctor, err := lookup(cfg.PrefetcherName)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ncpu; i++ {
		p, err := ctor(cfg)
		if err != nil {
			return nil, err
		}
		if p == nil {
			// Baseline: the scheme attaches no engine.
			r.pf = nil
			break
		}
		r.pf = append(r.pf, p)
	}
	if len(r.pf) > 0 {
		r.fillL1 = r.pf[0].FillLevel() == coherence.LevelL1
		r.hasPf = true
	}

	if cfg.TrackGenerations {
		for i := 0; i < ncpu; i++ {
			r.gensL1 = append(r.gensL1, newGenTracker(cfg.Geometry))
			r.gensL2 = append(r.gensL2, newGenTracker(cfg.Geometry))
		}
	}
	r.trackGens = cfg.TrackGenerations
	r.hasWindows = cfg.WindowInstructions > 0
	r.warm = cfg.WarmupAccesses == 0
	if cfg.Sampling.Enabled() {
		r.sampled = newSampledState(cfg.Sampling)
	}
	r.res.DensityL1 = newDensityHistogram()
	r.res.DensityL2 = newDensityHistogram()
	return r, nil
}

// MustNewRunner is NewRunner that panics on error.
func MustNewRunner(cfg Config) *Runner {
	r, err := NewRunner(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Config returns the resolved configuration.
func (r *Runner) Config() Config { return r.cfg }

// DefaultProgressInterval is the record count between cancellation checks
// and progress callbacks in RunContext. At simulation rates of millions
// of records per second it bounds cancellation latency to milliseconds.
const DefaultProgressInterval = 16384

// OnProgress registers fn to observe the running record count every
// `every` processed records during RunContext (0 selects
// DefaultProgressInterval). The same interval paces cancellation checks,
// so a cancelled run returns within one progress interval. It must be
// set before the run starts.
func (r *Runner) OnProgress(every uint64, fn func(records uint64)) {
	if every == 0 {
		every = DefaultProgressInterval
	}
	r.progressEvery = every
	r.onProgress = fn
}

// Run drives the whole trace and returns the accumulated result. It is a
// thin uncancellable wrapper over RunContext. The returned Result is
// detached from the Runner, so callers that retain results (e.g. the
// engine's memoization cache) do not pin the runner's simulation state
// (caches, directory, predictor tables) in memory.
func (r *Runner) Run(src trace.Source) *Result {
	res, _ := r.RunContext(context.Background(), src)
	return res
}

// DefaultBatchRecords is the number of records RunContext drains from the
// source per batch. Batching amortizes source interface dispatch and the
// progress/cancellation bookkeeping across the batch; it never exceeds
// the progress interval, so callbacks stay at least as frequent as the
// per-record loop delivered them.
const DefaultBatchRecords = 4096

// RunContext drives src until exhaustion or cancellation, checking ctx
// and invoking any OnProgress callback once per progress interval. On
// cancellation it returns ctx's error and a nil Result: a partial run is
// never returned, so callers cannot mistake it for a completed one (or
// persist it).
//
// The trace is drained in batches through trace.Batched, so sources that
// batch natively (all workload generators, trace.Reader) feed the
// simulator with no per-record interface calls.
func (r *Runner) RunContext(ctx context.Context, src trace.Source) (*Result, error) {
	// Phase spans flow to any tracer on ctx (nil-safe no-ops otherwise);
	// they never touch the Result, so sampled and exact outputs stay
	// bit-identical with or without a tracer attached.
	ph := obs.TracerFrom(ctx).Phases("sim", obs.TrackFrom(ctx))
	defer ph.Close()
	if r.sampled != nil {
		// Sampled runs ignore Exec: the sampling driver seeks over the
		// source (a decode pipeline cannot serve seeks) and its windows
		// are globally ordered (not lane-shardable).
		return r.runSampled(ctx, src, ph)
	}
	if r.exec.active() {
		r.pstats = PipelineStats{Lanes: 1}
		lanes := r.laneCount()
		if r.exec.DecodeAhead > 0 {
			// Decode pipelining composes with either consumer below: the
			// serial drain loop and the lane fan-out both consume the
			// Prefetcher through its ViewSource fast path and see its
			// latched Err like any erring source.
			pf := trace.NewPrefetcher(src, r.exec.DecodeAhead, DefaultBatchRecords)
			defer func() {
				pf.Close()
				d, s := pf.Stats()
				r.pstats.DecodeStalls += d
				r.pstats.SimStalls += s
			}()
			src = pf
		}
		if lanes > 1 {
			return r.runParallel(ctx, src, ph, lanes)
		}
	}
	ph.Enter("window")
	every := r.progressEvery
	if every == 0 {
		every = DefaultProgressInterval
	}
	size := uint64(DefaultBatchRecords)
	if size > every {
		size = every
	}
	views, isView := src.(trace.ViewSource)
	var bs trace.BatchSource
	if !isView {
		if uint64(len(r.batch)) != size {
			r.batch = make([]trace.Record, size)
		}
		bs = trace.Batched(src)
	}
	next := r.counted + every
	for {
		var batch []trace.Record
		if isView {
			// In-memory traces (engine trace memo replays) are consumed
			// in place — no per-batch copy.
			batch = views.NextView(int(size))
		} else {
			batch = r.batch[:bs.NextBatch(r.batch)]
		}
		if len(batch) == 0 {
			break
		}
		for i := range batch {
			r.Step(batch[i])
		}
		if r.counted >= next {
			next = r.counted + every
			if r.onProgress != nil {
				r.onProgress(r.counted)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Erring sources (trace.Reader, the v2 readers) report exhaustion on
	// a decode failure exactly like a clean EOF; surfacing the latched
	// error here keeps a truncated or corrupt trace — e.g. a damaged
	// disk-tier artifact — from quietly producing (and persisting) a
	// Result over a partial record stream.
	if e, ok := src.(interface{ Err() error }); ok {
		if err := e.Err(); err != nil {
			return nil, errSourceFailed(err)
		}
	}
	r.finish()
	if r.onProgress != nil {
		r.onProgress(r.counted)
	}
	return r.Result(), nil
}

// errSourceFailed wraps a trace source's latched decode error, shared by
// the serial drain loop and the parallel fan-out.
func errSourceFailed(err error) error {
	return fmt.Errorf("sim: trace source failed mid-stream: %w", err)
}

// Result returns a detached copy of the accumulated statistics (for
// Step-based drivers).
func (r *Runner) Result() *Result {
	out := r.res
	return &out
}

// Step processes a single record (exposed for incremental drivers and
// tests).
func (r *Runner) Step(rec trace.Record) {
	r.counted++
	if !r.warm && r.counted > r.cfg.WarmupAccesses {
		// warm flips exactly once per run; recomputing the comparison on
		// every record was measurable at simulation rates.
		r.warm = true
	}
	cpu := int(rec.CPU)
	write := rec.IsWrite()

	acc := &r.acc
	r.sys.AccessInto(acc, cpu, rec.Addr, write)

	if r.collecting() {
		r.account(write, acc)
		if r.hasWindows {
			r.windowAccount(rec, acc)
		}
	}
	if r.trackGens {
		r.trackGenerations(cpu, rec, acc)
	}
	if r.hasPf {
		r.notifyPrefetcher(cpu, rec, acc)
		r.issueStreams(cpu)
	}
}

// account updates post-warm-up counters. write is the record's decoded
// IsWrite — Step already computed it, and recomputing here was visible
// at per-record rates.
func (r *Runner) account(write bool, acc *coherence.AccessResult) {
	res := &r.res
	res.Accesses++
	if write {
		res.Writes++
		if acc.Missed(coherence.LevelL1) {
			res.L1WriteMisses++
		}
		if acc.Missed(coherence.LevelL2) {
			res.OffChipWriteMisses++
		}
		r.accountTraffic(acc)
		return
	}
	res.Reads++
	if acc.Missed(coherence.LevelL1) {
		res.L1ReadMisses++
	}
	r.accountTraffic(acc)
	if acc.Missed(coherence.LevelL2) {
		res.OffChipReadMisses++
		if acc.CoherenceMiss {
			res.CoherenceReadMisses++
			if acc.FalseSharing {
				res.FalseSharingReadMisses++
			}
		}
	}
	if acc.L1PrefetchHit {
		res.L1CoveredMisses++
		if acc.L1PrefetchOffChip {
			res.OffChipCoveredMisses++
		}
	}
	if acc.L2PrefetchHit {
		res.OffChipCoveredMisses++
	}
}

// accountTraffic counts off-chip coherence-unit transfers: L2 demand
// fills and dirty L2 writebacks. (Dirty copies destroyed by invalidations
// also write back in a real protocol; they are a small second-order term
// and are not counted.)
func (r *Runner) accountTraffic(acc *coherence.AccessResult) {
	if acc.Missed(coherence.LevelL2) {
		r.res.OffChipBlocks++
	}
	for _, ev := range acc.L2Evictions {
		if ev.Dirty {
			r.res.OffChipBlocks++
		}
	}
}

// notifyPrefetcher trains the attached prefetcher and feeds it
// generation-ending events. Addresses the engine returns from Train are
// issued immediately (miss-triggered L2 prefetchers); queued streams are
// rate-limited separately by issueStreams.
func (r *Runner) notifyPrefetcher(cpu int, rec trace.Record, acc *coherence.AccessResult) {
	if r.pf == nil {
		return
	}
	for _, a := range r.pf[cpu].Train(rec, acc) {
		r.stream(cpu, a)
	}
	// Overpredictions are judged at the L2 lifetime: an L1 victim with a
	// surviving L2 copy may still be used from L2.
	r.countL2Overpredictions(acc)
	r.feedInvalidations(acc)
}

// feedInvalidations forwards invalidations to the victims' engines: an
// invalidation ends the spatial region generation on the CPU that lost
// the block (§2.1) and destroys streamed-but-unused lines.
func (r *Runner) feedInvalidations(acc *coherence.AccessResult) {
	for _, inv := range acc.Invalidations {
		if inv.L1 {
			r.pf[inv.CPU].Invalidated(inv.Addr)
		}
	}
}

// collecting reports whether statistics should be recorded for the
// current record: past the global warm-up prefix and not inside a
// sampled functional-warming phase.
func (r *Runner) collecting() bool { return r.warm && !r.warming }

// countL2Overpredictions accounts overpredictions judged at the L2
// lifetime: streamed blocks whose L2 copy (or only copy) died unused.
func (r *Runner) countL2Overpredictions(acc *coherence.AccessResult) {
	if !r.collecting() {
		return
	}
	for _, ev := range acc.L2Evictions {
		if ev.PrefetchedUnused {
			r.res.Overpredictions++
		}
	}
	for _, inv := range acc.Invalidations {
		if inv.PrefetchedUnused {
			r.res.Overpredictions++
		}
	}
}

// issueStreams pulls up to StreamRate requests from the CPU's streaming
// engine and applies them to the memory system.
func (r *Runner) issueStreams(cpu int) {
	if r.pf == nil {
		return
	}
	for _, a := range r.pf[cpu].Drain(r.cfg.StreamRate) {
		r.stream(cpu, a)
	}
}

// stream applies one prefetch to the hierarchy at the engine's fill
// level: L1 engines (SMS, LS) stream into L1, the rest into L2.
func (r *Runner) stream(cpu int, a mem.Addr) {
	if r.collecting() {
		r.res.StreamRequests++
	}
	sres := &r.sres
	if r.fillL1 {
		r.sys.StreamInto(sres, cpu, a)
		for _, ev := range sres.L1Evictions {
			r.pf[cpu].StreamEvicted(ev.Addr)
		}
		r.accountStreamTraffic(sres)
		r.countStreamL2Evictions(sres)
		r.trackStreamEvictions(cpu, sres)
		return
	}
	r.sys.L2StreamInto(sres, cpu, a)
	if r.collecting() {
		if !sres.AlreadyPresent {
			r.res.OffChipBlocks++
		}
		for _, ev := range sres.L2Evictions {
			if ev.Dirty {
				r.res.OffChipBlocks++
			}
		}
	}
}

// accountStreamTraffic counts the off-chip transfers caused by an
// L1-targeted stream fill.
func (r *Runner) accountStreamTraffic(sres *coherence.StreamResult) {
	if !r.collecting() || sres.AlreadyPresent {
		return
	}
	if !sres.L2Hit {
		r.res.OffChipBlocks++
	}
	for _, ev := range sres.L2Evictions {
		if ev.Dirty {
			r.res.OffChipBlocks++
		}
	}
}

// trackStreamEvictions keeps the generation trackers coherent with lines
// displaced by stream fills.
func (r *Runner) trackStreamEvictions(cpu int, sres *coherence.StreamResult) {
	if !r.trackGens {
		return
	}
	for _, ev := range sres.L1Evictions {
		r.gensL1[cpu].remove(ev.Addr, r.collecting(), r.res.DensityL1, &r.res.OracleGenerationsL1)
	}
	for _, ev := range sres.L2Evictions {
		r.gensL2[cpu].remove(ev.Addr, r.collecting(), r.res.DensityL2, &r.res.OracleGenerationsL2)
	}
}

func (r *Runner) countStreamL2Evictions(sres *coherence.StreamResult) {
	if !r.collecting() {
		return
	}
	for _, ev := range sres.L2Evictions {
		if ev.PrefetchedUnused {
			r.res.Overpredictions++
		}
	}
}

// trackGenerations updates the density/oracle trackers at both levels.
func (r *Runner) trackGenerations(cpu int, rec trace.Record, acc *coherence.AccessResult) {
	r.trackGenerationsWarm(cpu, rec, acc, r.collecting())
}

// trackGenerationsWarm is trackGenerations with the warm flag explicit:
// functional warming phases keep the tracker state coherent while
// passing warm=false so generations ended there add nothing to the
// histograms or oracle counts.
func (r *Runner) trackGenerationsWarm(cpu int, rec trace.Record, acc *coherence.AccessResult, warm bool) {
	g1 := r.gensL1[cpu]
	g1.access(rec.Addr, !acc.L1Hit, warm)
	for _, ev := range acc.L1Evictions {
		g1.remove(ev.Addr, warm, r.res.DensityL1, &r.res.OracleGenerationsL1)
	}
	g2 := r.gensL2[cpu]
	if !acc.L1Hit {
		g2.access(rec.Addr, acc.Missed(coherence.LevelL2), warm)
	}
	for _, ev := range acc.L2Evictions {
		g2.remove(ev.Addr, warm, r.res.DensityL2, &r.res.OracleGenerationsL2)
	}
	for _, inv := range acc.Invalidations {
		if inv.L1 {
			r.gensL1[inv.CPU].remove(inv.Addr, warm, r.res.DensityL1, &r.res.OracleGenerationsL1)
		}
		if inv.L2 {
			r.gensL2[inv.CPU].remove(inv.Addr, warm, r.res.DensityL2, &r.res.OracleGenerationsL2)
		}
	}
}

// finish flushes still-open generations and the trailing window.
func (r *Runner) finish() {
	if r.trackGens {
		for cpu := range r.gensL1 {
			r.gensL1[cpu].flush(r.res.DensityL1, &r.res.OracleGenerationsL1)
			r.gensL2[cpu].flush(r.res.DensityL2, &r.res.OracleGenerationsL2)
		}
	}
	r.flushWindow()
	r.collectPredictorStats()
}

// collectPredictorStats gathers per-CPU engine internals. The built-in
// predictors keep their typed Result fields; schemes added through the
// registry land in the generic PrefetcherStats slice.
func (r *Runner) collectPredictorStats() {
	for _, p := range r.pf {
		switch st := p.Stats().(type) {
		case core.Stats:
			r.res.SMSStats = append(r.res.SMSStats, st)
		case ghb.Stats:
			r.res.GHBStats = append(r.res.GHBStats, st)
		case sectored.Stats:
			r.res.LSStats = append(r.res.LSStats, st)
		default:
			// Nil stats are kept so the slice index stays the CPU
			// number.
			r.res.PrefetcherStats = append(r.res.PrefetcherStats, st)
		}
	}
}
