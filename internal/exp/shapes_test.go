package exp

// Shape tests: quick-configuration checks that the qualitative claims the
// paper makes about each figure hold in the reproduction. Full-length
// numbers live in EXPERIMENTS.md; these guard the *orderings* that the
// paper's argument depends on.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4*len(Fig4Sizes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	get := func(group string, size int) Fig4Row {
		for _, r := range res.Rows {
			if r.Group == group && r.Size == size {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", group, size)
		return Fig4Row{}
	}
	for _, g := range GroupNames() {
		// Oracle opportunity improves (miss rate drops) as regions grow:
		// 2kB strictly better than 64B at both levels.
		if o64, o2k := get(g, 64), get(g, 2048); o2k.L1Opportunity >= o64.L1Opportunity {
			t.Errorf("%s: L1 opportunity did not improve with region size (%.3f -> %.3f)",
				g, o64.L1Opportunity, o2k.L1Opportunity)
		}
		// The 64B cache is the normalization baseline.
		r64 := get(g, 64)
		if r64.L1Misses < 0.99 || r64.L1Misses > 1.01 {
			t.Errorf("%s: 64B normalized L1 misses = %.3f, want 1.0", g, r64.L1Misses)
		}
	}
	// Commercial L1 miss rates blow up at large blocks from conflicts
	// (the paper's sharp increase beyond 512B).
	oltp8k := get(workload.GroupOLTP, 8192)
	if oltp8k.L1Misses < 1.2 {
		t.Errorf("OLTP 8kB-block L1 misses %.3f — conflict explosion missing", oltp8k.L1Misses)
	}
	// The oracle at 8kB must beat the 8kB-block cache at L1 decisively.
	if oltp8k.L1Opportunity >= oltp8k.L1Misses {
		t.Errorf("OLTP 8kB: oracle %.3f not better than big-block cache %.3f",
			oltp8k.L1Opportunity, oltp8k.L1Misses)
	}
	// False sharing appears at large blocks for the commercial groups.
	if get(workload.GroupOLTP, 8192).L2FalseSharing <= 0 {
		t.Error("OLTP 8kB blocks show no false sharing")
	}
	if get(workload.GroupOLTP, 64).L2FalseSharing != 0 {
		t.Error("false sharing reported at 64B blocks")
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 22 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]Fig5Row{}
	for _, r := range res.Rows {
		byKey[r.Workload+"/"+r.Level] = r
		var sum float64
		for _, f := range r.Fractions {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s/%s: fractions sum to %.3f", r.Workload, r.Level, sum)
		}
	}
	// ocean is the dense outlier: its misses come from full-region
	// (32-block) generations.
	if o := byKey["ocean/L1"]; o.Fractions[6] < 0.5 {
		t.Errorf("ocean L1 density-32 share = %.3f, want dominant", o.Fractions[6])
	}
	// OLTP spreads across buckets (the paper's "wide variation"): no
	// single bucket dominates completely.
	if r := byKey["oltp-db2/L1"]; r.Fractions[6] > 0.9 || r.Fractions[0] > 0.9 {
		t.Errorf("oltp-db2 L1 density not spread: %v", r.Fractions)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	cov := map[string]map[string]map[int]float64{}
	for _, r := range res.Rows {
		idx := r.Index.String()
		if cov[r.Group] == nil {
			cov[r.Group] = map[string]map[int]float64{}
		}
		if cov[r.Group][idx] == nil {
			cov[r.Group][idx] = map[int]float64{}
		}
		cov[r.Group][idx][r.Entries] = r.Coverage
	}
	// §4.2: PC+offset at 16k entries must be near its infinite coverage
	// (storage proportional to code, not data).
	for _, g := range GroupNames() {
		inf := cov[g]["PC+off"][0]
		at16k := cov[g]["PC+off"][16384]
		if at16k < inf-0.08 {
			t.Errorf("%s: PC+off 16k %.3f far below infinite %.3f", g, at16k, inf)
		}
	}
	// For DSS, PC+address remains far below PC+offset even at 16k.
	if cov[workload.GroupDSS]["PC+addr"][16384] >= cov[workload.GroupDSS]["PC+off"][16384] {
		t.Error("DSS: PC+addr should not reach PC+off at 16k entries")
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	cov := map[string]map[TrainingStructure]float64{}
	unc := map[string]map[TrainingStructure]float64{}
	for _, r := range res.Rows {
		if cov[r.Group] == nil {
			cov[r.Group] = map[TrainingStructure]float64{}
			unc[r.Group] = map[TrainingStructure]float64{}
		}
		cov[r.Group][r.Train] = r.Coverage.Covered
		unc[r.Group][r.Train] = r.Coverage.Uncovered
	}
	for _, g := range GroupNames() {
		// §4.3: DS's cache-content constraints leave far more misses
		// than AGT-based SMS.
		if unc[g][TrainDS] <= unc[g][TrainAGT] {
			t.Errorf("%s: DS uncovered %.3f not above AGT %.3f", g, unc[g][TrainDS], unc[g][TrainAGT])
		}
		// AGT achieves at least LS-level coverage (within noise).
		if cov[g][TrainAGT] < cov[g][TrainLS]-0.05 {
			t.Errorf("%s: AGT coverage %.3f below LS %.3f", g, cov[g][TrainAGT], cov[g][TrainLS])
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

// TestFig8NextLineSeries checks the registry-added next-line scheme shows
// up as its own Fig. 8 series. It runs a tiny dedicated session so the
// check still executes in -short (CI) mode.
func TestFig8NextLineSeries(t *testing.T) {
	s := NewSession(Options{CPUs: 2, Length: 30_000})
	res, err := Fig8(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	nl := 0
	for _, r := range res.Rows {
		if r.Train == TrainNL {
			nl++
		}
	}
	if want := len(GroupNames()); nl != want {
		t.Fatalf("NL rows = %d, want %d", nl, want)
	}
	if out := res.Render(); !strings.Contains(out, "NL") {
		t.Errorf("render missing NL series:\n%s", out)
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	cov := map[string]map[TrainingStructure]map[int]float64{}
	for _, r := range res.Rows {
		if cov[r.Group] == nil {
			cov[r.Group] = map[TrainingStructure]map[int]float64{
				TrainLS: {}, TrainAGT: {},
			}
		}
		cov[r.Group][r.Train][r.Entries] = r.Coverage
	}
	// §4.3: at small PHT sizes, fragmented LS patterns waste storage, so
	// AGT coverage at 1k entries beats or matches LS at 2k for the
	// interleaving-heavy OLTP group.
	oltp := cov[workload.GroupOLTP]
	if oltp[TrainAGT][1024] < oltp[TrainLS][2048]-0.05 {
		t.Errorf("OLTP: AGT@1k %.3f below LS@2k %.3f — storage advantage missing",
			oltp[TrainAGT][1024], oltp[TrainLS][2048])
	}
	// Coverage is monotone-ish in PHT size for AGT (allow small noise).
	for _, g := range GroupNames() {
		if cov[g][TrainAGT][16384] < cov[g][TrainAGT][256]-0.02 {
			t.Errorf("%s: AGT coverage decreased with PHT size", g)
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	cov := map[string]map[int]float64{}
	for _, r := range res.Rows {
		if cov[r.Group] == nil {
			cov[r.Group] = map[int]float64{}
		}
		cov[r.Group][r.Size] = r.Coverage
	}
	for _, g := range GroupNames() {
		// §4.4: 2kB regions beat 128B regions everywhere (more trigger
		// misses eliminated by merging adjacent regions).
		if cov[g][2048] <= cov[g][128] {
			t.Errorf("%s: 2kB coverage %.3f not above 128B %.3f", g, cov[g][2048], cov[g][128])
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestAGTSizingShape(t *testing.T) {
	res, err := AGTSizing(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	cov := map[string]map[string]float64{}
	for _, r := range res.Rows {
		if cov[r.Workload] == nil {
			cov[r.Workload] = map[string]float64{}
		}
		cov[r.Workload][r.Config.Label()] = r.Coverage
	}
	// §4.5: 32/64 matches the infinite AGT across all applications.
	for _, name := range WorkloadNames() {
		practical := cov[name]["filter=32 accum=64"]
		infinite := cov[name]["filter=inf accum=inf"]
		if practical < infinite-0.05 {
			t.Errorf("%s: 32/64 coverage %.3f far below infinite %.3f", name, practical, infinite)
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestAblateShape(t *testing.T) {
	res, err := Ablate(context.Background(), quickSession(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*len(ablationVariants()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]AblationRow{}
	for _, r := range res.Rows {
		byKey[r.Workload+"/"+r.Variant] = r
	}
	// One prediction register cripples interleaved streaming on OLTP.
	one := byKey["oltp-oracle/1 prediction register"].Coverage.Covered
	paper := byKey["oltp-oracle/practical (paper)"].Coverage.Covered
	if one >= paper {
		t.Errorf("1 register coverage %.3f not below practical %.3f", one, paper)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}
