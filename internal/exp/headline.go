package exp

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/timing"
)

// HeadlineResult collects the paper's abstract-level claims: "SMS can on
// average predict 58% of L1 and 65% of off-chip misses, for an average
// speedup of 1.37 and at best 4.07".
type HeadlineResult struct {
	// MeanL1Coverage and MeanOffChipCoverage average the practical SMS
	// configuration's coverage across all eleven workloads.
	MeanL1Coverage      float64
	MeanOffChipCoverage float64
	// CommercialOffChip averages the commercial workloads only (the
	// paper: 55% mean, 78% best).
	CommercialOffChip     float64
	BestCommercialOffChip float64
	BestCommercialName    string
	// GeoMeanSpeedup and the best speedup with its workload.
	GeoMeanSpeedup float64
	BestSpeedup    float64
	BestName       string
}

// HeadlinePlan declares the headline grid. It is the Figure 12 plan under
// its own name: the paired windowed runs carry both the coverage and the
// speedup numbers, and the engine dedups them against an earlier fig12
// execution anyway.
func HeadlinePlan(o Options) engine.Plan {
	p := Fig12Plan(o)
	p.Name = "headline"
	return p
}

// Headline computes the abstract's numbers from the practical SMS
// configuration.
func Headline(ctx context.Context, s *Session) (*HeadlineResult, error) {
	names := WorkloadNames()
	grid, err := s.Execute(ctx, HeadlinePlan(s.Options()))
	if err != nil {
		return nil, err
	}
	type row struct {
		l1, off  float64
		speedup  float64
		group    string
		workload string
	}
	rows := make([]row, len(names))
	for i, name := range names {
		base := grid.Result(name, timedBaseKey)
		smsRes := grid.Result(name, timedSMSKey)
		model, err := timing.NewModel(TimingParamsFor(groupOf(name)))
		if err != nil {
			return nil, err
		}
		cmp, err := model.Compare(base.Windows, smsRes.Windows)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows[i] = row{
			l1:       smsRes.L1Coverage(base).Covered,
			off:      smsRes.OffChipCoverage(base).Covered,
			speedup:  cmp.Speedup.Mean,
			group:    groupOf(name),
			workload: name,
		}
	}

	res := &HeadlineResult{}
	var l1s, offs, speeds, commOffs []float64
	for _, r := range rows {
		l1s = append(l1s, r.l1)
		offs = append(offs, r.off)
		speeds = append(speeds, r.speedup)
		if r.group != "Scientific" {
			commOffs = append(commOffs, r.off)
			if r.off > res.BestCommercialOffChip {
				res.BestCommercialOffChip = r.off
				res.BestCommercialName = r.workload
			}
		}
		if r.speedup > res.BestSpeedup {
			res.BestSpeedup = r.speedup
			res.BestName = r.workload
		}
	}
	res.MeanL1Coverage = stats.Mean(l1s)
	res.MeanOffChipCoverage = stats.Mean(offs)
	res.CommercialOffChip = stats.Mean(commOffs)
	gm, err := stats.GeoMean(speeds)
	if err != nil {
		return nil, err
	}
	res.GeoMeanSpeedup = gm
	return res, nil
}

// Render formats the abstract-claims comparison.
func (r *HeadlineResult) Render() string {
	t := NewTable("Headline: the paper's abstract claims vs this reproduction",
		"claim", "paper", "measured")
	t.AddRow("mean L1 miss coverage", "58%", Pct(r.MeanL1Coverage))
	t.AddRow("mean off-chip miss coverage", "65%", Pct(r.MeanOffChipCoverage))
	t.AddRow("commercial off-chip coverage (mean)", "55%", Pct(r.CommercialOffChip))
	t.AddRow("commercial off-chip coverage (best)", "78%",
		fmt.Sprintf("%s (%s)", Pct(r.BestCommercialOffChip), r.BestCommercialName))
	t.AddRow("geometric mean speedup", "1.37", fmt.Sprintf("%.3f", r.GeoMeanSpeedup))
	t.AddRow("best speedup", "4.07 (sparse)",
		fmt.Sprintf("%.3f (%s)", r.BestSpeedup, r.BestName))
	return t.Render()
}
