package engine

import (
	"testing"

	"repro/internal/sim"
)

func TestSampledPlanTransform(t *testing.T) {
	sc := sim.SamplingConfig{WindowRecords: 1024}
	p := Plan{
		Name:      "fig",
		Workloads: []string{"sparse"},
		Baseline:  "base",
		Variants: []Variant{
			{Key: "base", Config: sim.Config{}},
			{Key: "sms", Config: sim.Config{PrefetcherName: "sms"}},
			{Key: "timing", Config: sim.Config{PrefetcherName: "sms", WindowInstructions: 4096}},
		},
		Extra: []Cell{
			{Workload: "sparse", Key: "x", Config: sim.Config{PrefetcherName: "ghb"}},
		},
	}

	s := Sampled(p, sc)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Variants {
		want := sc
		if v.Config.WindowInstructions > 0 {
			want = sim.SamplingConfig{} // timing cells stay exact
		}
		if v.Config.Sampling != want {
			t.Errorf("variant %q sampling = %+v, want %+v", v.Key, v.Config.Sampling, want)
		}
	}
	if got := s.Extra[0].Config.Sampling; got != sc {
		t.Errorf("extra cell sampling = %+v, want %+v", got, sc)
	}

	// The original plan must be untouched (figure builders reuse plans).
	for _, v := range p.Variants {
		if v.Config.Sampling.Enabled() {
			t.Fatalf("Sampled mutated the input plan (variant %q)", v.Key)
		}
	}
	if p.Extra[0].Config.Sampling.Enabled() {
		t.Fatal("Sampled mutated the input plan's extra cells")
	}

	// Disabled sampling is the identity.
	if d := Sampled(p, sim.SamplingConfig{}); d.Variants[1].Config.Sampling.Enabled() {
		t.Fatal("disabled Sampled enabled sampling")
	}

	// Sampled and exact forms of the same cell address different runs.
	e := New(Config{})
	exact := e.Key("sparse", p.Variants[1].Config)
	sampled := e.Key("sparse", s.Variants[1].Config)
	if exact == sampled {
		t.Error("sampled and exact cells share a store key")
	}
}
