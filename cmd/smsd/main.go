// Command smsd is the experiment daemon: a long-running HTTP server that
// regenerates the paper's figures and runs ad-hoc simulations on demand,
// deduplicating concurrent identical work and persisting every result in
// a content-addressed store so nothing is ever simulated twice.
//
// Usage:
//
//	smsd -store /var/lib/smsd [-addr :8344] [-quick]
//
// Endpoints (see package repro/internal/server):
//
//	curl localhost:8344/v1/figures/fig8
//	curl -X POST localhost:8344/v1/runs -d '{"workload":"oltp-db2","prefetcher":"sms"}'
//	curl localhost:8344/v1/jobs/<id>
//	curl -X DELETE localhost:8344/v1/jobs/<id>
//	curl -X POST localhost:8344/v1/figures/fig8
//	curl localhost:8344/v1/prefetchers
//	curl localhost:8344/v1/workloads
//	curl localhost:8344/healthz
//	curl localhost:8344/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/server"

	// Registered through the sim registry alone; imported so the scheme
	// is selectable here even if no library path pulls it in.
	_ "repro/internal/nextline"
)

func main() {
	var (
		addr     = flag.String("addr", ":8344", "listen address")
		storeDir = flag.String("store", "", "result store directory (empty: in-memory caching only)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", server.DefaultQueue, "job queue bound (negative: no queueing)")
		cpus     = flag.Int("cpus", 4, "simulated processors")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		length   = flag.Uint64("length", 1_200_000, "accesses per workload trace (half is warm-up)")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		quick    = flag.Bool("quick", false, "abbreviated runs (overrides -cpus/-length)")
		grace    = flag.Duration("shutdown-deadline", 15*time.Second, "bound on graceful shutdown: in-flight simulations are cancelled, not drained")

		logLevel  = flag.String("log-level", "info", "log level: debug | info | warn | error")
		logFormat = flag.String("log-format", "text", "log format: text | json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsd:", err)
		os.Exit(2)
	}
	// The store (and any library code) logs through slog's default too.
	slog.SetDefault(logger)

	if err := run(logger, *addr, *storeDir, *workers, *queue, *cpus, *seed, *length, *parallel, *quick, *pprofOn, *grace); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// buildLogger assembles the daemon's structured logger from the CLI
// flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func run(logger *slog.Logger, addr, storeDir string, workers, queue, cpus int, seed int64, length uint64, parallel int, quick, pprofOn bool, grace time.Duration) error {
	session := exp.NewSession(exp.CLIOptions(cpus, seed, length, parallel, quick))
	if err := exp.AttachStore(session, storeDir); err != nil {
		return err
	}
	if st := session.Store(); st != nil {
		logger.Info("result store attached", "dir", st.Dir())
	} else {
		logger.Info("no -store directory: results cached in memory only")
	}

	srv, err := server.New(server.Config{
		Session: session,
		Workers: workers,
		Queue:   queue,
		Logger:  logger,
		Pprof:   pprofOn,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An explicit listener (rather than ListenAndServe) means the logged
	// address is the one the kernel actually bound: with -addr :0 the
	// line below carries the assigned port, which scripts/smoke_smsd.sh
	// parses to run daemons on collision-free ephemeral ports.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	o := session.Options()
	logger.Info("smsd listening",
		"addr", ln.Addr().String(), "cpus", o.CPUs, "seed", o.Seed,
		"length", o.Length, "pprof", pprofOn)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	var serveErr error
	select {
	case serveErr = <-errc:
		// The listener failed on its own (e.g. port in use); stop the
		// daemon's jobs before returning.
		srv.Close()
	case <-ctx.Done():
		logger.Info("shutting down", "deadline", grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		// Cancel every job first — in-flight simulations stop within one
		// progress interval, so even a synchronous figure request mid-
		// computation returns quickly (a half-finished multi-minute run
		// is cache-miss work we can redo, not something worth blocking
		// shutdown on). Only then drain the HTTP listener, which is now
		// fast, and finally stop the worker pool.
		srv.CancelJobs()
		_ = httpSrv.Shutdown(shutdownCtx)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("worker pool did not drain before the deadline", "err", err)
		}
		cancel()
		serveErr = <-errc
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}
