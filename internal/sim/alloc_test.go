package sim

// Steady-state allocation regression tests: once the tables have grown to
// their working-set size, the per-record hot path — batched stepping, the
// open-addressed directory, the generation tables, the prefetcher
// train/drain buffers — must perform zero heap allocations. These tests
// are the precise form of the CI bench gate (scripts/bench.sh --check).

import (
	"context"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// boundedTrace builds a deterministic multi-CPU trace over a fixed
// address range, touching every block during the prewarm so the measured
// loop cannot trigger table growth.
func boundedTrace(cpus, n int) []trace.Record {
	const blocks = 4096 // 256 kB footprint at 64 B blocks
	recs := make([]trace.Record, n)
	var seq uint64
	state := uint64(0x243f6a8885a308d3)
	for i := range recs {
		seq += 3
		var blk int
		if i < blocks {
			blk = i // first sweep: touch every block in order
		} else {
			state = state*6364136223846793005 + 1442695040888963407
			blk = int(state>>33) % blocks
		}
		recs[i] = trace.Record{
			Seq:  seq,
			PC:   0x400000 + uint64(i%32)*4,
			Addr: mem.Addr(blk * 64),
			CPU:  uint8(i % cpus),
			Kind: trace.Kind(btoi(i%16 == 0)),
		}
	}
	return recs
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestStepSteadyStateZeroAllocs(t *testing.T) {
	for _, pf := range []string{"none", "sms", "ghb", "nextline"} {
		t.Run(pf, func(t *testing.T) {
			r := MustNewRunner(Config{
				PrefetcherName:   pf,
				WarmupAccesses:   10_000,
				TrackGenerations: true,
			})
			recs := boundedTrace(4, 120_000)
			for _, rec := range recs {
				r.Step(rec)
			}
			// Replay a slice of the trace; every structure is at its
			// steady-state size now.
			probe := recs[20_000:30_000]
			allocs := testing.AllocsPerRun(10, func() {
				for i := range probe {
					r.Step(probe[i])
				}
			})
			if allocs != 0 {
				t.Fatalf("%s: Step allocated %.1f times per %d-record batch; hot path must be allocation-free", pf, allocs, len(probe))
			}
		})
	}
}

func TestRunContextBatchLoopZeroAllocs(t *testing.T) {
	r := MustNewRunner(Config{PrefetcherName: "sms", WarmupAccesses: 1})
	recs := boundedTrace(4, 100_000)
	// Prewarm through the public batch loop so r.batch and all tables
	// are sized.
	ctx := context.Background()
	if _, err := r.RunContext(ctx, trace.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	// RunContext has a small per-call constant cost (the detached Result,
	// occasional predictor-stats growth); the record loop itself must add
	// nothing, so allocations may not scale with the record count.
	perCall := func(n int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := r.RunContext(ctx, trace.NewSliceSource(recs[:n])); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := perCall(200)
	large := perCall(50_000)
	if large > small+1 {
		t.Fatalf("RunContext allocations scale with record count: %.1f for 200 records vs %.1f for 50000; the batch loop must be allocation-free per record", small, large)
	}
}

func TestGenTrackerSteadyStateZeroAllocs(t *testing.T) {
	geo := mem.DefaultGeometry()
	tr := newGenTracker(geo)
	density := newDensityHistogram()
	var oracle uint64
	const regions = 2048
	addr := func(i int) mem.Addr {
		return mem.Addr(i%regions)*mem.Addr(geo.RegionSize()) + mem.Addr((i*7)%geo.BlocksPerRegion())*64
	}
	for i := 0; i < 4*regions; i++ {
		tr.access(addr(i), i%3 == 0, true)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < regions; i++ {
			a := addr(i)
			tr.access(a, true, true)
			tr.remove(a, true, density, &oracle) // retire: slot reused in place
			tr.access(a, false, true)            // restart the generation
		}
	})
	if allocs != 0 {
		t.Fatalf("generation table allocated %.1f times per access/retire cycle; retirement must reuse slots", allocs)
	}
}
