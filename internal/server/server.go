// Package server implements the smsd experiment daemon: an HTTP front end
// over the experiment harness that serves the paper's figures and ad-hoc
// simulation runs, backed by the persistent result store.
//
// Endpoints:
//
//	GET  /v1/figures/{name}  rendered figure text (table1, fig4..fig13, agt, ablate, ...)
//	POST /v1/runs            one workload/prefetcher simulation → sim.Result JSON
//	GET  /v1/prefetchers     registered prefetcher names
//	GET  /v1/workloads       registered workloads (name, group, description)
//	GET  /healthz            liveness probe
//	GET  /metrics            plain-text metrics (Prometheus exposition style)
//
// All simulation work funnels through a bounded worker pool with a job
// queue, and identical requests are deduplicated singleflight-style: N
// concurrent requests for the same uncached figure trigger exactly one
// underlying computation, with every caller receiving its output. When
// the queue is full the server sheds load with 503 instead of queueing
// unbounded work.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exp"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ErrBusy is returned (as 503) when the job queue is full.
var ErrBusy = errors.New("server: job queue full")

// Config parameterizes a Server.
type Config struct {
	// Session executes and caches the simulations (required). Attach a
	// store to it for cross-process persistence.
	Session *exp.Session
	// Workers bounds concurrently executing jobs (0 = GOMAXPROCS).
	Workers int
	// Queue bounds jobs waiting for a worker (0 = DefaultQueue,
	// negative = no queueing: a job either starts immediately or is
	// rejected).
	Queue int
	// Experiments overrides the figure registry (nil = exp.Experiments()).
	// Tests use this to observe and stall figure computations.
	Experiments map[string]exp.Runner
}

// DefaultQueue is the default job-queue bound.
const DefaultQueue = 64

// Server is the smsd HTTP daemon state.
type Server struct {
	session     *exp.Session
	experiments map[string]exp.Runner
	names       []string

	jobs    chan func()
	done    chan struct{}
	wg      sync.WaitGroup
	workers int

	mu     sync.Mutex
	flight map[string]*call

	requests     atomic.Uint64
	jobsExecuted atomic.Uint64
	deduped      atomic.Uint64
	rejected     atomic.Uint64
	failures     atomic.Uint64
}

// call is one in-flight computation; followers block on done.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// New builds a Server and starts its worker pool. Call Close to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Session == nil {
		return nil, fmt.Errorf("server: Config.Session is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := cfg.Queue
	switch {
	case queue == 0:
		queue = DefaultQueue
	case queue < 0:
		queue = 0
	}
	experiments := cfg.Experiments
	var names []string
	if experiments == nil {
		experiments = exp.Experiments()
		names = exp.ExperimentNames()
	} else {
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
	}

	s := &Server{
		session:     cfg.Session,
		experiments: experiments,
		names:       names,
		jobs:        make(chan func(), queue),
		done:        make(chan struct{}),
		workers:     workers,
		flight:      make(map[string]*call),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.done:
					return
				case job := <-s.jobs:
					s.jobsExecuted.Add(1)
					job()
				}
			}
		}()
	}
	return s, nil
}

// Close stops the worker pool. Queued-but-unstarted jobs are abandoned,
// so Close belongs after the HTTP listener has drained.
func (s *Server) Close() {
	close(s.done)
	s.wg.Wait()
}

// submit hands a job to the pool without blocking.
func (s *Server) submit(job func()) bool {
	select {
	case s.jobs <- job:
		return true
	default:
		s.rejected.Add(1)
		return false
	}
}

// do runs fn through the worker pool, deduplicating concurrent calls with
// the same key: exactly one execution happens and every caller gets its
// outcome.
func (s *Server) do(key string, fn func() (any, error)) (any, error) {
	s.mu.Lock()
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		s.deduped.Add(1)
		<-c.done
		return c.val, c.err
	}
	c := &call{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	finish := func() {
		s.mu.Lock()
		delete(s.flight, key)
		s.mu.Unlock()
		close(c.done)
	}
	if !s.submit(func() {
		c.val, c.err = fn()
		finish()
	}) {
		c.err = ErrBusy
		finish()
	}
	<-c.done
	return c.val, c.err
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/prefetchers", s.handlePrefetchers)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	mux.HandleFunc("POST /v1/runs", s.handleRun)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string   `json:"error"`
	Known []string `json:"known,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	run, ok := s.experiments[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{
			Error: fmt.Sprintf("unknown figure %q", name),
			Known: s.names,
		})
		return
	}
	// Fast path: a figure already persisted in the store is one disk
	// read — serve it without burning a worker slot, so cached figures
	// stay available even when the pool is saturated with simulations.
	if text, ok := s.session.CachedFigure(name); ok {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, text)
		return
	}
	val, err := s.do("figure/"+name, func() (any, error) {
		return s.session.RunFigure(name, run)
	})
	switch {
	case errors.Is(err, ErrBusy):
		s.failures.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
	case err != nil:
		s.failures.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, val.(string))
	}
}

// RunRequest asks for one simulation under the daemon's session options.
type RunRequest struct {
	// Workload is a registered workload name (see GET /v1/workloads).
	Workload string `json:"workload"`
	// Prefetcher is a registered prefetcher name (see GET /v1/prefetchers);
	// empty selects the baseline system.
	Prefetcher string `json:"prefetcher"`
	// RegionSize optionally overrides the spatial region size in bytes
	// (power of two, ≥ the 64 B block size).
	RegionSize int `json:"region_size,omitempty"`
}

// RunResponse carries one simulation outcome.
type RunResponse struct {
	Workload   string      `json:"workload"`
	Prefetcher string      `json:"prefetcher"`
	Key        string      `json:"key"`
	Result     *sim.Result `json:"result"`
}

// runConfig translates a request into the simulator config the session
// will execute, mirroring the experiment harness conventions (standard
// memory system, half-trace warm-up applied by Session.Run).
func (s *Server) runConfig(req RunRequest) (sim.Config, error) {
	cfg := sim.Config{
		Coherence:      s.session.Options().MemorySystem(64),
		PrefetcherName: req.Prefetcher,
	}
	if cfg.PrefetcherName == "" {
		cfg.PrefetcherName = "none"
	}
	if !nameRegistered(cfg.PrefetcherName) {
		return sim.Config{}, fmt.Errorf("unknown prefetcher %q (have: %s)", req.Prefetcher, strings.Join(sim.Names(), ", "))
	}
	if req.RegionSize > 0 {
		geo, err := mem.NewGeometry(mem.DefaultBlockSize, req.RegionSize)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Geometry = geo
	}
	return cfg, nil
}

func nameRegistered(name string) bool {
	for _, n := range sim.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// maxRunRequestBytes caps the /v1/runs request body; a RunRequest is a
// few short fields, so anything larger is abuse of an open endpoint.
const maxRunRequestBytes = 64 << 10

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRunRequestBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if _, err := workload.ByName(req.Workload); err != nil {
		known := make([]string, 0, len(workload.All()))
		for _, wl := range workload.All() {
			known = append(known, wl.Name)
		}
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error(), Known: known})
		return
	}
	cfg, err := s.runConfig(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}

	key := s.session.RunKey(req.Workload, cfg)

	// Fast path mirroring handleFigure: a result already in the session
	// cache or the store needs no worker slot, so it stays served even
	// when the pool is saturated.
	if res, ok := s.session.CachedRun(req.Workload, cfg); ok {
		writeJSON(w, http.StatusOK, RunResponse{
			Workload:   req.Workload,
			Prefetcher: cfg.Canonical().PrefetcherName,
			Key:        key,
			Result:     res,
		})
		return
	}

	val, err := s.do("run/"+key, func() (any, error) {
		return s.session.Run(req.Workload, cfg)
	})
	switch {
	case errors.Is(err, ErrBusy):
		s.failures.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
	case err != nil:
		s.failures.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, RunResponse{
			Workload:   req.Workload,
			Prefetcher: cfg.Canonical().PrefetcherName,
			Key:        key,
			Result:     val.(*sim.Result),
		})
	}
}

func (s *Server) handlePrefetchers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sim.Names())
}

// workloadDoc describes one registered workload.
type workloadDoc struct {
	Name        string `json:"name"`
	Group       string `json:"group"`
	Description string `json:"description"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	var out []workloadDoc
	for _, wl := range workload.All() {
		out = append(out, workloadDoc{Name: wl.Name, Group: wl.Group, Description: wl.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "smsd_up 1\n")
	fmt.Fprintf(&b, "smsd_workers %d\n", s.workers)
	fmt.Fprintf(&b, "smsd_queue_depth %d\n", len(s.jobs))
	fmt.Fprintf(&b, "smsd_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(&b, "smsd_jobs_executed_total %d\n", s.jobsExecuted.Load())
	fmt.Fprintf(&b, "smsd_jobs_deduplicated_total %d\n", s.deduped.Load())
	fmt.Fprintf(&b, "smsd_jobs_rejected_total %d\n", s.rejected.Load())
	fmt.Fprintf(&b, "smsd_request_failures_total %d\n", s.failures.Load())
	fmt.Fprintf(&b, "smsd_simulations_total %d\n", s.session.Simulations())
	if st := s.session.Store(); st != nil {
		stats := st.Stats()
		fmt.Fprintf(&b, "smsd_store_hits_total %d\n", stats.Hits)
		fmt.Fprintf(&b, "smsd_store_misses_total %d\n", stats.Misses)
		fmt.Fprintf(&b, "smsd_store_mem_hits_total %d\n", stats.MemHits)
		fmt.Fprintf(&b, "smsd_store_disk_hits_total %d\n", stats.DiskHits)
		fmt.Fprintf(&b, "smsd_store_writes_total %d\n", stats.Writes)
		fmt.Fprintf(&b, "smsd_store_corrupt_total %d\n", stats.Corrupt)
		fmt.Fprintf(&b, "smsd_store_bytes_read_total %d\n", stats.BytesRead)
		fmt.Fprintf(&b, "smsd_store_bytes_written_total %d\n", stats.BytesWritten)
	}
	_, _ = w.Write([]byte(b.String()))
}
