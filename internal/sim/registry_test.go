package sim_test

// Registry tests live in an external test package so they can import
// schemes that themselves import sim (nextline) without a cycle.

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/workload"

	_ "repro/internal/nextline" // registers "nextline"
)

func smallCoherence(cpus int) coherence.Config {
	return coherence.Config{
		CPUs: cpus,
		L1:   cache.Config{Size: 4 << 10, Assoc: 2, BlockSize: 64},
		L2:   cache.Config{Size: 64 << 10, Assoc: 8, BlockSize: 64},
	}
}

func TestUnknownNameRejected(t *testing.T) {
	_, err := sim.New("no-such-scheme", sim.Config{Coherence: smallCoherence(1)})
	if err == nil {
		t.Fatal("unknown prefetcher name accepted")
	}
	if !strings.Contains(err.Error(), "no-such-scheme") {
		t.Errorf("error %q does not name the scheme", err)
	}
	// The registered names are part of the message: the CLI shows it.
	if !strings.Contains(err.Error(), "sms") {
		t.Errorf("error %q does not list registered names", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	// The ctor is a functioning baseline so the round-trip test below
	// stays valid whatever order the tests run in.
	ctor := func(sim.Config) (sim.Prefetcher, error) { return nil, nil }
	sim.Register("dup-probe", ctor)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	sim.Register("dup-probe", ctor)
}

func TestEmptyRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name registration did not panic")
		}
	}()
	sim.Register("", func(sim.Config) (sim.Prefetcher, error) { return nil, nil })
}

// TestRegistryRoundTrip drives every registered scheme through a short
// simulation: each name must construct and run.
func TestRegistryRoundTrip(t *testing.T) {
	names := sim.Names()
	for _, want := range []string{"none", "sms", "ls", "ghb", "stride", "nextline"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
	w, err := workload.ByName("sparse")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20_000
	for _, name := range names {
		r, err := sim.New(name, sim.Config{Coherence: smallCoherence(2), WarmupAccesses: n / 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := r.Run(w.Make(workload.Config{CPUs: 2, Seed: 1, Length: n}))
		if res.Accesses == 0 {
			t.Errorf("%s: run processed no accesses", name)
		}
	}
}

// TestEmptyNameSelectsBaseline checks the zero Config still selects the
// baseline system now that the selection is name-only.
func TestEmptyNameSelectsBaseline(t *testing.T) {
	w, _ := workload.ByName("oltp-db2")
	const n = 50_000
	r, err := sim.NewRunner(sim.Config{Coherence: smallCoherence(2), WarmupAccesses: n / 2})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(w.Make(workload.Config{CPUs: 2, Seed: 3, Length: n}))
	if res.StreamRequests != 0 || res.L1CoveredMisses != 0 {
		t.Fatalf("zero config attached a prefetcher: %+v", res)
	}
}

// TestNextlineCoversSequentialMisses checks the registry-added scheme
// actually prefetches: a dense sequential workload must see coverage.
func TestNextlineCoversSequentialMisses(t *testing.T) {
	w, _ := workload.ByName("ocean")
	const n = 100_000
	run := func(name string) *sim.Result {
		r, err := sim.New(name, sim.Config{Coherence: smallCoherence(2), WarmupAccesses: n / 2})
		if err != nil {
			t.Fatal(err)
		}
		return r.Run(w.Make(workload.Config{CPUs: 2, Seed: 1, Length: n}))
	}
	base := run("none")
	nl := run("nextline")
	if nl.StreamRequests == 0 {
		t.Fatal("nextline issued no streams")
	}
	if cov := nl.L1Coverage(base); cov.Covered <= 0 {
		t.Fatalf("nextline coverage %+v — no misses eliminated", cov)
	}
	if len(nl.PrefetcherStats) != 2 {
		t.Fatalf("nextline stats not collected: %d entries", len(nl.PrefetcherStats))
	}
}
