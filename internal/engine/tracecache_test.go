package engine

import (
	"context"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTraceMemoGeneratesOncePerWorkload: a grid of N variants over one
// workload runs the generator exactly once; replayed runs are
// bit-identical to generated ones (covered by the figure-level golden
// tests, asserted here at the grid level via result equality).
func TestTraceMemoGeneratesOncePerWorkload(t *testing.T) {
	wcfg := workload.Config{CPUs: 2, Seed: 5, Length: 20_000}
	plan := Plan{
		Name:      "memo",
		Workloads: []string{"oltp-db2", "dss-q1"},
		Variants: []Variant{
			{Key: "none", Config: sim.Config{PrefetcherName: "none"}},
			{Key: "sms", Config: sim.Config{PrefetcherName: "sms"}},
			{Key: "ghb", Config: sim.Config{PrefetcherName: "ghb"}},
		},
	}

	memo := New(Config{Workload: wcfg})
	grid, err := memo.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := memo.Simulations(), uint64(6); got != want {
		t.Fatalf("simulations = %d, want %d", got, want)
	}
	if got, want := memo.TraceGenerations(), uint64(2); got != want {
		t.Fatalf("trace generations = %d, want %d (one per workload)", got, want)
	}

	// The memo must not change any result: compare against an engine
	// with the memo disabled.
	plain := New(Config{Workload: wcfg, TraceCacheBytes: -1})
	grid2, err := plain.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plain.TraceGenerations(), uint64(6); got != want {
		t.Fatalf("memo-disabled trace generations = %d, want %d", got, want)
	}
	for _, wl := range plan.Workloads {
		for _, v := range plan.Variants {
			a := grid.Result(wl, v.Key)
			b := grid2.Result(wl, v.Key)
			if a == nil || b == nil {
				t.Fatalf("missing cell %s/%s (memo %v, plain %v)", wl, v.Key, a != nil, b != nil)
			}
			if a.L1ReadMisses != b.L1ReadMisses || a.Accesses != b.Accesses ||
				a.OffChipReadMisses != b.OffChipReadMisses || a.StreamRequests != b.StreamRequests {
				t.Fatalf("memoized trace changed results for %s/%s:\n memo  %+v\n plain %+v", wl, v.Key, a, b)
			}
		}
	}
}

// TestTraceMemoBudget: a trace over budget streams from the generator
// every time and is never cached.
func TestTraceMemoBudget(t *testing.T) {
	wcfg := workload.Config{CPUs: 2, Seed: 5, Length: 20_000}
	size := int64(wcfg.Canonical().Length) * recordBytes
	e := New(Config{Workload: wcfg, TraceCacheBytes: size - 1})
	plan := Plan{
		Name:      "over-budget",
		Workloads: []string{"oltp-db2"},
		Variants: []Variant{
			{Key: "none", Config: sim.Config{PrefetcherName: "none"}},
			{Key: "sms", Config: sim.Config{PrefetcherName: "sms"}},
		},
	}
	if _, err := e.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if got, want := e.TraceGenerations(), uint64(2); got != want {
		t.Fatalf("over-budget workload generated %d times, want %d (never cached)", got, want)
	}
}

// TestTraceMemoSingleflight: concurrent requests for the same workload
// generate once and all receive the full trace.
func TestTraceMemoSingleflight(t *testing.T) {
	w, err := workload.ByName("oltp-db2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Config{CPUs: 2, Seed: 5, Length: 10_000}
	e := New(Config{Workload: cfg})
	var wg sync.WaitGroup
	generations := make(chan bool, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src, generated := e.traceSource(w)
			generations <- generated
			if n := len(trace.Collect(src, 0)); n != 10_000 {
				t.Errorf("short trace: %d records", n)
			}
		}()
	}
	wg.Wait()
	close(generations)
	n := 0
	for g := range generations {
		if g {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d goroutines generated, want exactly 1", n)
	}
}
