package exp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// Runner regenerates one experiment (a figure or table of the paper) as
// rendered text. The smsexp CLI and the smsd daemon both dispatch through
// this registry. Cancellation and engine events flow through ctx: a
// cancelled context stops the experiment's simulations within one
// progress interval.
type Runner func(context.Context, *Session) (string, error)

type renderable interface{ Render() string }

func rendered(ctx context.Context, r renderable, err error) (string, error) {
	if err != nil {
		return "", err
	}
	sp := obs.TracerFrom(ctx).Start("render", "figure", "")
	defer sp.End()
	return r.Render(), nil
}

// Experiments returns the experiment registry: name → runner for every
// figure and table reproduced from the paper.
func Experiments() map[string]Runner {
	return map[string]Runner{
		"table1": func(_ context.Context, s *Session) (string, error) { return Table1(s), nil },
		"fig4": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig4(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig5": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig5(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig6": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig6(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig7": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig7(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig8": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig8(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig9": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig9(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig10": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig10(ctx, s)
			return rendered(ctx, r, err)
		},
		"agt": func(ctx context.Context, s *Session) (string, error) {
			r, err := AGTSizing(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig11": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig11(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig12": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig12(ctx, s)
			return rendered(ctx, r, err)
		},
		"fig13": func(ctx context.Context, s *Session) (string, error) {
			r, err := Fig12(ctx, s)
			if err != nil {
				return "", err
			}
			sp := obs.TracerFrom(ctx).Start("render", "figure", "")
			defer sp.End()
			return r.RenderBreakdown(), nil
		},
		"ablate": func(ctx context.Context, s *Session) (string, error) {
			r, err := Ablate(ctx, s)
			return rendered(ctx, r, err)
		},
		"headline": func(ctx context.Context, s *Session) (string, error) {
			r, err := Headline(ctx, s)
			return rendered(ctx, r, err)
		},
		"sampled": func(ctx context.Context, s *Session) (string, error) {
			r, err := Sampled(ctx, s)
			return rendered(ctx, r, err)
		},
	}
}

// planBuilders maps experiment names to their declarative plans. table1
// is absent: it runs no simulations. fig13 renders from the fig12 grid.
func planBuilders() map[string]func(Options) engine.Plan {
	return map[string]func(Options) engine.Plan{
		"fig4":     Fig4Plan,
		"fig5":     Fig5Plan,
		"fig6":     Fig6Plan,
		"fig7":     Fig7Plan,
		"fig8":     Fig8Plan,
		"fig9":     Fig9Plan,
		"fig10":    Fig10Plan,
		"agt":      AGTSizingPlan,
		"fig11":    Fig11Plan,
		"fig12":    Fig12Plan,
		"fig13":    Fig12Plan,
		"ablate":   AblatePlan,
		"headline": HeadlinePlan,
		"sampled":  SampledPlan,
	}
}

// PlanFor returns the engine plan a registered experiment executes under
// the given options. The second return is false for experiments that run
// no simulations (table1) and unknown names.
func PlanFor(name string, o Options) (engine.Plan, bool) {
	b, ok := planBuilders()[name]
	if !ok {
		return engine.Plan{}, false
	}
	return b(o.normalized()), true
}

// MergedPlan builds one deduplicated grid covering several experiments —
// the prewarm form smsexp executes before rendering a multi-figure
// request, so every unique run across the figures simulates exactly once
// with full cross-figure parallelism. Custom cells are dropped: they are
// not run-memoized, so prewarming them would double their work instead
// of saving any. Unknown or simulation-free names are skipped; the bool
// reports whether anything remained.
func MergedPlan(name string, o Options, experiments ...string) (engine.Plan, bool) {
	var plans []engine.Plan
	seen := make(map[string]bool, len(experiments))
	for _, exp := range experiments {
		p, ok := PlanFor(exp, o)
		if !ok || seen[p.Name] {
			// Duplicate requests and aliases sharing one plan (fig13
			// renders from the fig12 grid) contribute the grid once;
			// merging them again would collide on the namespaced keys.
			continue
		}
		seen[p.Name] = true
		p.Customs = nil
		plans = append(plans, p)
	}
	if len(plans) == 0 {
		return engine.Plan{}, false
	}
	return engine.Merge(name, plans...), true
}

// ExperimentNames returns the registry's names in the paper's order.
func ExperimentNames() []string {
	order := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "agt", "fig11", "fig12", "fig13", "ablate", "headline", "sampled"}
	// Sanity: keep the map and the order in sync; fall back to a sorted
	// listing if they ever drift so no experiment becomes unreachable.
	m := Experiments()
	if len(order) != len(m) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	return order
}

// Figure runs the named experiment through the figure-level store cache.
// Unknown names report the known set.
func (s *Session) Figure(ctx context.Context, name string) (string, error) {
	run, ok := Experiments()[name]
	if !ok {
		return "", fmt.Errorf("exp: unknown experiment %q (have: %v)", name, ExperimentNames())
	}
	return s.RunFigure(ctx, name, run)
}

// CachedFigure reports the named figure if it is already persisted in
// the store, computing nothing. It is the cheap fast path the smsd
// daemon probes before committing a worker to a figure request; a probe
// miss is not counted in the store stats (RunFigure's own lookup will
// count the logical miss exactly once).
func (s *Session) CachedFigure(name string) (string, bool) {
	if s.Store() == nil {
		return "", false
	}
	return s.Store().ProbeFigure(store.ForFigure(name, s.opts.CPUs, s.opts.Seed, s.opts.Length, s.opts.Sampling))
}

// RunFigure executes run under the figure-level store cache: with a store
// attached, a rendered figure is keyed by (experiment name, session
// options) and a hit skips every simulation behind it — including ones,
// like the Fig. 8 decoupled-sectored study, that bypass the run store.
func (s *Session) RunFigure(ctx context.Context, name string, run Runner) (string, error) {
	if s.Store() == nil {
		return run(ctx, s)
	}
	tr := obs.TracerFrom(ctx)
	key := store.ForFigure(name, s.opts.CPUs, s.opts.Seed, s.opts.Length, s.opts.Sampling)
	sp := tr.Start("store-get", "figure", "")
	text, ok := s.Store().GetFigure(key)
	sp.End()
	if ok {
		return text, nil
	}
	text, err := run(ctx, s)
	if err != nil {
		return "", err
	}
	// The store is a cache: a failed write must not lose the figure.
	sp = tr.Start("store-put", "figure", "")
	_ = s.Store().PutFigure(key, text)
	sp.End()
	return text, nil
}
