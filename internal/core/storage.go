package core

import "repro/internal/mem"

// Storage cost model: the bit budget of each SMS structure, used for the
// paper's equivalent-storage comparisons ("PC+offset attains peak coverage
// with 16k entries — roughly the same hardware cost as a 64kB L1 cache
// data array", §4.2; GHB's 16k-entry buffer is sized to match the SMS PHT
// budget, §4.6).

// StorageBits describes one structure's cost.
type StorageBits struct {
	// Entries is the structure's entry count.
	Entries int
	// BitsPerEntry is the width of one entry, including tags and
	// payload.
	BitsPerEntry int
}

// Total returns the structure's total bits.
func (s StorageBits) Total() int { return s.Entries * s.BitsPerEntry }

// KiB returns the structure's size in binary kilobytes.
func (s StorageBits) KiB() float64 { return float64(s.Total()) / 8 / 1024 }

// Field widths used by the cost model. Addresses are 42 physical bits
// (the paper's era); PCs are truncated to 30 bits as in contemporary
// predictor proposals.
const (
	addrBits = 42
	pcBits   = 30
)

// PHTStorage returns the pattern history table's cost for a geometry and
// configuration: per entry, a partial tag plus the spatial pattern bit
// vector. An unbounded PHT (entries == 0) reports zero (limit studies
// have no hardware budget).
func PHTStorage(g mem.Geometry, entries, assoc int) StorageBits {
	if entries <= 0 {
		return StorageBits{}
	}
	// Key space: PC+offset keys are pcBits + log2(blocks per region);
	// the set index consumes log2(entries/assoc) bits, the rest is tag.
	const tagBits = 16 // partial tags, as in cache-like predictor tables
	return StorageBits{
		Entries:      entries,
		BitsPerEntry: tagBits + g.BlocksPerRegion(),
	}
}

// AGTStorage returns the active generation table's cost: filter entries
// hold a region tag plus trigger PC/offset; accumulation entries add the
// pattern bit vector.
func AGTStorage(g mem.Geometry, filterEntries, accumEntries int) StorageBits {
	if filterEntries < 0 {
		filterEntries = 0 // disabled or unbounded: no fixed budget
	}
	if accumEntries < 0 {
		accumEntries = 0
	}
	regionTagBits := addrBits - log2(g.RegionSize())
	offsetBits := log2(g.BlocksPerRegion())
	filterBits := regionTagBits + pcBits + offsetBits
	accumBits := filterBits + g.BlocksPerRegion()
	total := filterEntries*filterBits + accumEntries*accumBits
	entries := filterEntries + accumEntries
	if entries == 0 {
		return StorageBits{}
	}
	return StorageBits{Entries: entries, BitsPerEntry: total / entries}
}

// Storage returns the engine's total hardware budget (AGT + PHT +
// prediction registers).
func (s *SMS) Storage() StorageBits {
	cfg := s.cfg
	pht := PHTStorage(s.geo, cfg.PHTEntries, cfg.PHTAssoc)
	agt := AGTStorage(s.geo, cfg.FilterEntries, cfg.AccumEntries)
	regBits := 0
	if cfg.PredictionRegisters < 1<<20 {
		// Each register: region base address + pattern.
		regBits = cfg.PredictionRegisters * (addrBits - log2(s.geo.RegionSize()) + s.width)
	}
	total := pht.Total() + agt.Total() + regBits
	entries := pht.Entries + agt.Entries
	if entries == 0 {
		return StorageBits{}
	}
	return StorageBits{Entries: entries, BitsPerEntry: total / entries}
}

func log2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
