package exp

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig4Sizes are the block/region sizes the paper sweeps in Figure 4.
var Fig4Sizes = []int{64, 128, 512, 2048, 8192}

// Fig4Row is one (group, size) point of Figure 4.
type Fig4Row struct {
	Group string
	Size  int
	// L1Opportunity / L2Opportunity: oracle miss rate (one miss per
	// spatial region generation), normalized to the 64 B baseline miss
	// rate at the level.
	L1Opportunity float64
	L2Opportunity float64
	// L1Misses / L2Misses: normalized read miss rate of a cache with
	// block size = Size (capacity fixed).
	L1Misses float64
	L2Misses float64
	// L2FalseSharing: the portion of L2Misses attributable to false
	// sharing beyond 64 B units.
	L2FalseSharing float64
	// Bandwidth: off-chip bytes relative to the 64 B baseline — the
	// §4.1 bandwidth-efficiency cost of large blocks ("bandwidth
	// efficiency drops exponentially as block size increases").
	Bandwidth float64
}

// Fig4Result is the Figure 4 dataset.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 reproduces Figure 4: L1 and L2 read miss rates versus block/region
// size, against the one-miss-per-generation oracle opportunity.
func Fig4(s *Session) (*Fig4Result, error) {
	names := WorkloadNames()

	type point struct {
		l1Norm, l2Norm, fsNorm, l1Opp, l2Opp, bw float64
	}
	// points[name][sizeIdx]
	points := make(map[string][]point, len(names))
	for _, n := range names {
		points[n] = make([]point, len(Fig4Sizes))
	}

	err := parallelOver(names, func(_ int, name string) error {
		base, err := s.Baseline(name)
		if err != nil {
			return err
		}
		for si, size := range Fig4Sizes {
			// Cache with block size = size.
			blk, err := s.Run(name, sim.Config{Coherence: s.opts.MemorySystem(size)})
			if err != nil {
				return err
			}
			// Oracle with 64 B blocks and region = size.
			geo, err := mem.NewGeometry(64, size)
			if err != nil {
				return err
			}
			orc, err := s.Run(name, sim.Config{
				Coherence:        s.opts.MemorySystem(64),
				Geometry:         geo,
				TrackGenerations: true,
			})
			if err != nil {
				return err
			}
			pt := point{
				l1Norm: stats.Ratio(blk.L1ReadMisses, base.L1ReadMisses),
				l2Norm: stats.Ratio(blk.OffChipReadMisses, base.OffChipReadMisses),
				l1Opp:  stats.Ratio(orc.OracleGenerationsL1, base.L1ReadMisses),
				l2Opp:  stats.Ratio(orc.OracleGenerationsL2, base.OffChipReadMisses),
				bw:     blk.BandwidthOverhead(base, size, 64),
			}
			if size > 64 {
				pt.fsNorm = stats.Ratio(blk.FalseSharingReadMisses, base.OffChipReadMisses)
			}
			points[name][si] = pt
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig4Result{}
	for _, g := range GroupNames() {
		for si, size := range Fig4Sizes {
			row := Fig4Row{Group: g, Size: size}
			row.L1Misses = meanOver(names, func(n string) float64 { return points[n][si].l1Norm })[g]
			row.L2Misses = meanOver(names, func(n string) float64 { return points[n][si].l2Norm })[g]
			row.L1Opportunity = meanOver(names, func(n string) float64 { return points[n][si].l1Opp })[g]
			row.L2Opportunity = meanOver(names, func(n string) float64 { return points[n][si].l2Opp })[g]
			row.L2FalseSharing = meanOver(names, func(n string) float64 { return points[n][si].fsNorm })[g]
			row.Bandwidth = meanOver(names, func(n string) float64 { return points[n][si].bw })[g]
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render formats the dataset as the Figure 4 series.
func (r *Fig4Result) Render() string {
	t := NewTable("Figure 4: normalized read miss rate vs block/region size",
		"group", "size", "L1 opportunity", "L1 misses", "L2 opportunity", "L2 misses", "L2 false sharing", "bandwidth")
	t.SetCaption("Normalized to the 64B-block baseline at each level. Opportunity = oracle (one miss per spatial region generation). Bandwidth = off-chip bytes vs 64B.")
	for _, row := range r.Rows {
		t.AddRow(row.Group, sizeLabel(row.Size),
			fmt.Sprintf("%.3f", row.L1Opportunity), fmt.Sprintf("%.3f", row.L1Misses),
			fmt.Sprintf("%.3f", row.L2Opportunity), fmt.Sprintf("%.3f", row.L2Misses),
			fmt.Sprintf("%.3f", row.L2FalseSharing), fmt.Sprintf("%.2fx", row.Bandwidth))
	}
	return t.Render()
}

func sizeLabel(size int) string {
	if size >= 1024 {
		return fmt.Sprintf("%dkB", size/1024)
	}
	return fmt.Sprintf("%dB", size)
}
