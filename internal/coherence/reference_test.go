package coherence

// Differential test against the pre-open-addressing implementation: a
// verbatim copy of the map-backed System (map[uint64]*dirEntry, per-call
// slice allocation, probe-then-fill streams, classification before the
// cache update) kept as the executable specification. Randomized
// multi-CPU access/stream interleavings must produce field-identical
// results from both implementations — this is what lets the hot-path
// rewrite claim bit-identical simulation output.

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

// refLine/refCache: a deliberately naive set-associative LRU cache,
// independent of package cache's layout tricks.
type refLine struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool
	used       bool
	offChip    bool
	lru        uint64
}

type refCache struct {
	cfg       cache.Config
	blockBits uint
	setBits   uint
	sets      [][]refLine
	clock     uint64
}

func newRefCache(cfg cache.Config) *refCache {
	nsets := cfg.Sets()
	c := &refCache{cfg: cfg, sets: make([][]refLine, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]refLine, cfg.Assoc)
	}
	for cfg.BlockSize>>c.blockBits > 1 {
		c.blockBits++
	}
	for nsets>>c.setBits > 1 {
		c.setBits++
	}
	return c
}

func (c *refCache) index(a mem.Addr) (uint64, uint64) {
	bn := uint64(a) >> c.blockBits
	return bn & uint64(len(c.sets)-1), bn >> c.setBits
}

func (c *refCache) addrOf(set, tag uint64) mem.Addr {
	return mem.Addr((tag<<c.setBits | set) << c.blockBits)
}

func (c *refCache) access(a mem.Addr, write bool) cache.Result {
	set, tag := c.index(a)
	c.clock++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			res := cache.Result{Hit: true}
			if ln.prefetched && !ln.used {
				res.PrefetchHit = true
				res.PrefetchOffChip = ln.offChip
			}
			ln.used = true
			ln.lru = c.clock
			if write {
				ln.dirty = true
			}
			return res
		}
	}
	res := c.fill(set, tag, false)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag && write {
			ln.dirty = true
		}
	}
	return res
}

func (c *refCache) probe(a mem.Addr) bool {
	set, tag := c.index(a)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

func (c *refCache) fillPrefetch(a mem.Addr, offChip bool) cache.Result {
	set, tag := c.index(a)
	c.clock++
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return cache.Result{Hit: true}
		}
	}
	res := c.fill(set, tag, true)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.offChip = offChip
		}
	}
	return res
}

func (c *refCache) fill(set, tag uint64, prefetched bool) cache.Result {
	lines := c.sets[set]
	victim := -1
	oldest := ^uint64(0)
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < oldest {
			oldest = lines[i].lru
			victim = i
		}
	}
	res := cache.Result{}
	v := &lines[victim]
	if v.valid {
		res.Evicted = true
		res.Victim = cache.Eviction{
			Addr:             c.addrOf(set, v.tag),
			Dirty:            v.dirty,
			PrefetchedUnused: v.prefetched && !v.used,
		}
	}
	*v = refLine{tag: tag, valid: true, prefetched: prefetched, lru: c.clock}
	return res
}

func (c *refCache) markUsed(a mem.Addr) {
	set, tag := c.index(a)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.used = true
			return
		}
	}
}

func (c *refCache) invalidate(a mem.Addr) cache.InvalidateResult {
	set, tag := c.index(a)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			res := cache.InvalidateResult{
				Present:          true,
				WasDirty:         ln.dirty,
				PrefetchedUnused: ln.prefetched && !ln.used,
			}
			*ln = refLine{}
			return res
		}
	}
	return cache.InvalidateResult{}
}

// refSystem is the old map-backed coherent system, verbatim semantics.
type refSystem struct {
	cfg      Config
	l1s, l2s []*refCache
	dir      map[uint64]*dirEntry
	subsPer  int
}

func newRefSystem(cfg Config) *refSystem {
	s := &refSystem{cfg: cfg, dir: map[uint64]*dirEntry{}, subsPer: cfg.L1.BlockSize / subUnit}
	if s.subsPer < 1 {
		s.subsPer = 1
	}
	for i := 0; i < cfg.CPUs; i++ {
		s.l1s = append(s.l1s, newRefCache(cfg.L1))
		s.l2s = append(s.l2s, newRefCache(cfg.L2))
	}
	return s
}

func (s *refSystem) blockNum(a mem.Addr) uint64 {
	return uint64(a) / uint64(s.cfg.L1.BlockSize)
}

func (s *refSystem) blockAddr(a mem.Addr) mem.Addr {
	return a &^ (mem.Addr(s.cfg.L1.BlockSize) - 1)
}

func (s *refSystem) subOf(a mem.Addr) uint {
	if s.subsPer == 1 {
		return 0
	}
	return uint(uint64(a)/subUnit) & uint(s.subsPer-1)
}

func (s *refSystem) access(cpu int, a mem.Addr, write bool) AccessResult {
	var res AccessResult
	bn := s.blockNum(a)
	e := s.dir[bn]
	if e != nil && e.invalidated&(1<<uint(cpu)) != 0 {
		res.CoherenceMiss = true
		if e.writtenSubs&(1<<s.subOf(a)) == 0 {
			res.FalseSharing = true
		}
		e.invalidated &^= 1 << uint(cpu)
		if e.invalidated == 0 {
			e.writtenSubs = 0
		}
	}
	r1 := s.l1s[cpu].access(a, write)
	res.L1Hit = r1.Hit
	res.L1PrefetchHit = r1.PrefetchHit
	res.L1PrefetchOffChip = r1.PrefetchOffChip
	if r1.PrefetchHit {
		s.l2s[cpu].markUsed(a)
	}
	if r1.Evicted {
		res.L1Evictions = append(res.L1Evictions, r1.Victim)
	}
	if !r1.Hit {
		r2 := s.l2s[cpu].access(a, write)
		res.L2Hit = r2.Hit
		res.L2PrefetchHit = r2.PrefetchHit
		if r2.Evicted {
			res.L2Evictions = append(res.L2Evictions, r2.Victim)
		}
	}
	if e == nil {
		e = &dirEntry{}
		s.dir[bn] = e
	}
	e.sharers |= 1 << uint(cpu)
	if write {
		base := s.blockAddr(a)
		remote := e.sharers &^ (1 << uint(cpu))
		for cpuBit := 0; cpuBit < s.cfg.CPUs; cpuBit++ {
			if remote&(1<<uint(cpuBit)) == 0 {
				continue
			}
			i1 := s.l1s[cpuBit].invalidate(base)
			i2 := s.l2s[cpuBit].invalidate(base)
			if i1.Present || i2.Present {
				unused := i2.PrefetchedUnused
				if !i2.Present {
					unused = i1.PrefetchedUnused
				}
				res.Invalidations = append(res.Invalidations, Invalidation{
					CPU:              cpuBit,
					Addr:             base,
					L1:               i1.Present,
					L2:               i2.Present,
					PrefetchedUnused: unused,
				})
			}
			e.sharers &^= 1 << uint(cpuBit)
			e.invalidated |= 1 << uint(cpuBit)
		}
		e.writtenSubs |= 1 << s.subOf(a)
	}
	return res
}

func (s *refSystem) stream(cpu int, a mem.Addr) StreamResult {
	var res StreamResult
	if s.l1s[cpu].probe(a) {
		res.AlreadyPresent = true
		return res
	}
	res.L2Hit = s.l2s[cpu].probe(a)
	if !res.L2Hit {
		if r2 := s.l2s[cpu].fillPrefetch(a, true); r2.Evicted {
			res.L2Evictions = append(res.L2Evictions, r2.Victim)
		}
	}
	if r := s.l1s[cpu].fillPrefetch(a, !res.L2Hit); r.Evicted {
		res.L1Evictions = append(res.L1Evictions, r.Victim)
	}
	bn := s.blockNum(a)
	e := s.dir[bn]
	if e == nil {
		e = &dirEntry{}
		s.dir[bn] = e
	}
	e.sharers |= 1 << uint(cpu)
	if e.invalidated&(1<<uint(cpu)) != 0 {
		e.invalidated &^= 1 << uint(cpu)
		if e.invalidated == 0 {
			e.writtenSubs = 0
		}
	}
	return res
}

func (s *refSystem) l2Stream(cpu int, a mem.Addr) StreamResult {
	var res StreamResult
	if s.l2s[cpu].probe(a) {
		res.AlreadyPresent = true
		return res
	}
	if r2 := s.l2s[cpu].fillPrefetch(a, true); r2.Evicted {
		res.L2Evictions = append(res.L2Evictions, r2.Victim)
	}
	bn := s.blockNum(a)
	e := s.dir[bn]
	if e == nil {
		e = &dirEntry{}
		s.dir[bn] = e
	}
	e.sharers |= 1 << uint(cpu)
	return res
}

// ---- the differential driver ----

func sameEvictions(a, b []cache.Eviction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameInvalidations(a, b []Invalidation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameAccess(a, b AccessResult) bool {
	return a.L1Hit == b.L1Hit && a.L2Hit == b.L2Hit &&
		a.L1PrefetchHit == b.L1PrefetchHit && a.L1PrefetchOffChip == b.L1PrefetchOffChip &&
		a.L2PrefetchHit == b.L2PrefetchHit &&
		a.CoherenceMiss == b.CoherenceMiss && a.FalseSharing == b.FalseSharing &&
		sameEvictions(a.L1Evictions, b.L1Evictions) &&
		sameEvictions(a.L2Evictions, b.L2Evictions) &&
		sameInvalidations(a.Invalidations, b.Invalidations)
}

func sameStream(a, b StreamResult) bool {
	return a.AlreadyPresent == b.AlreadyPresent && a.L2Hit == b.L2Hit &&
		sameEvictions(a.L1Evictions, b.L1Evictions) &&
		sameEvictions(a.L2Evictions, b.L2Evictions)
}

func TestSystemMatchesMapReference(t *testing.T) {
	configs := []Config{
		{CPUs: 4, L1: cache.Config{Size: 2048, Assoc: 2, BlockSize: 64}, L2: cache.Config{Size: 8192, Assoc: 4, BlockSize: 64}},
		{CPUs: 3, L1: cache.Config{Size: 4096, Assoc: 2, BlockSize: 256}, L2: cache.Config{Size: 16384, Assoc: 8, BlockSize: 256}},
		{CPUs: 8, L1: cache.Config{Size: 1024, Assoc: 1, BlockSize: 64}, L2: cache.Config{Size: 4096, Assoc: 2, BlockSize: 64}},
	}
	for ci, cfg := range configs {
		sys := MustNew(cfg)
		ref := newRefSystem(cfg)
		rng := rand.New(rand.NewSource(int64(42 + ci)))
		// A small address space forces heavy conflict, sharing, and
		// invalidation traffic.
		const blocks = 96
		for op := 0; op < 60_000; op++ {
			cpu := rng.Intn(cfg.CPUs)
			a := mem.Addr(rng.Intn(blocks))*mem.Addr(cfg.L1.BlockSize) + mem.Addr(rng.Intn(cfg.L1.BlockSize))
			switch rng.Intn(10) {
			case 0, 1:
				got := sys.Stream(cpu, sys.BlockAddr(a))
				want := ref.stream(cpu, ref.blockAddr(a))
				if !sameStream(got, want) {
					t.Fatalf("cfg %d op %d: Stream(cpu=%d, %#x):\n got  %+v\n want %+v", ci, op, cpu, uint64(a), got, want)
				}
			case 2:
				got := sys.L2Stream(cpu, sys.BlockAddr(a))
				want := ref.l2Stream(cpu, ref.blockAddr(a))
				if !sameStream(got, want) {
					t.Fatalf("cfg %d op %d: L2Stream(cpu=%d, %#x):\n got  %+v\n want %+v", ci, op, cpu, uint64(a), got, want)
				}
			default:
				write := rng.Intn(4) == 0
				got := sys.Access(cpu, a, write)
				want := ref.access(cpu, a, write)
				if !sameAccess(got, want) {
					t.Fatalf("cfg %d op %d: Access(cpu=%d, %#x, write=%v):\n got  %+v\n want %+v", ci, op, cpu, uint64(a), write, got, want)
				}
			}
		}
		if got, want := sys.dir.len(), len(ref.dir); got != want {
			t.Fatalf("cfg %d: directory size %d, reference %d", ci, got, want)
		}
	}
}
