package trace

import (
	"sync"
	"sync/atomic"
)

// Prefetcher decodes a source a bounded distance ahead of its consumer on
// a dedicated goroutine, turning decode (generator arithmetic, trace-file
// chunk decoding) and simulation into a two-stage pipeline instead of a
// lockstep loop.
//
// Batches move through two rings: the decoder takes an empty buffer from
// the free ring, fills it with NextBatch, and hands it to the consumer
// through the out ring; the consumer returns a buffer to the free ring
// only when it asks for the next one. That preserves the batch-aliasing
// contract exactly as for any other ViewSource: a view returned by
// NextView (or a record from Next) stays valid until the next call, and
// the decoder never touches a buffer the consumer still holds. Depth
// bounds how far decode runs ahead (depth batches in flight plus the one
// being filled), so memory stays fixed no matter how fast the decoder is.
//
// Latched decode errors keep their semantics: when the underlying source
// ends (cleanly or mid-record), the decoder latches the source's Err
// before closing the out ring, so a consumer that drains the Prefetcher
// to exhaustion observes Err exactly as it would have on the unwrapped
// source.
type Prefetcher struct {
	out  chan []Record
	free chan []Record
	quit chan struct{}
	done chan struct{}

	cur []Record // batch the consumer currently owns
	off int      // consumed prefix of cur

	err error // latched source error; written before close(out)

	closeOnce sync.Once

	// Stall counters, readable concurrently via Stats. A decode stall is
	// the decoder waiting on the consumer (free ring empty or out ring
	// full: simulation-bound); a sim stall is the consumer arriving at an
	// empty out ring (decode-bound).
	decodeStalls atomic.Uint64
	simStalls    atomic.Uint64
}

// DefaultDecodeAhead is the batch depth a Prefetcher decodes ahead of its
// consumer when the caller does not choose one. Two is true double
// buffering (decode batch n+1 while batch n simulates); deeper rings only
// smooth decode-time jitter.
const DefaultDecodeAhead = 2

// NewPrefetcher starts a decode pipeline over src with the given
// ahead-depth and batch size. depth < 2 selects DefaultDecodeAhead;
// batchRecords <= 0 selects DefaultBatchRecords. Close must be called
// when the consumer stops early (error, cancellation); draining to
// exhaustion shuts the decoder down on its own, but Close is always safe
// to call.
func NewPrefetcher(src Source, depth, batchRecords int) *Prefetcher {
	if depth < 2 {
		depth = DefaultDecodeAhead
	}
	if batchRecords <= 0 {
		batchRecords = 4096
	}
	p := &Prefetcher{
		out:  make(chan []Record, depth),
		free: make(chan []Record, depth+1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	// depth+1 buffers: depth in flight in out plus the one the consumer
	// holds; the decoder's fill buffer comes from the same pool, so the
	// rings never block both sides at once.
	for i := 0; i < depth+1; i++ {
		p.free <- make([]Record, batchRecords)
	}
	go p.decode(Batched(src))
	return p
}

// decode is the pipeline's producer loop.
func (p *Prefetcher) decode(src BatchSource) {
	defer close(p.out)
	defer close(p.done)
	for {
		var buf []Record
		select {
		case buf = <-p.free:
		default:
			p.decodeStalls.Add(1)
			select {
			case buf = <-p.free:
			case <-p.quit:
				return
			}
		}
		n := src.NextBatch(buf[:cap(buf)])
		if n == 0 {
			// Latch the source error before close(out): the channel close
			// happens-after this write, so a consumer that saw the closed
			// ring reads the error race-free.
			p.err = sourceErr(src)
			return
		}
		select {
		case p.out <- buf[:n]:
		default:
			p.decodeStalls.Add(1)
			select {
			case p.out <- buf[:n]:
			case <-p.quit:
				return
			}
		}
	}
}

// NextView implements ViewSource. The returned view aliases the batch the
// consumer currently owns and stays valid until the next NextView/Next
// call. An empty result means exhaustion (check Err).
func (p *Prefetcher) NextView(max int) []Record {
	if max <= 0 {
		return nil
	}
	if p.off == len(p.cur) {
		if p.cur != nil {
			// The consumer is done with this buffer; recycle it. The free
			// ring has capacity for every buffer in existence, so this
			// never blocks.
			p.free <- p.cur[:0]
			p.cur = nil
		}
		var b []Record
		var ok bool
		select {
		case b, ok = <-p.out:
		default:
			p.simStalls.Add(1)
			b, ok = <-p.out
		}
		if !ok {
			return nil
		}
		p.cur, p.off = b, 0
	}
	v := p.cur[p.off:]
	if len(v) > max {
		v = v[:max]
	}
	p.off += len(v)
	return v
}

// Next implements Source record-by-record over the same pipeline.
func (p *Prefetcher) Next() (Record, bool) {
	v := p.NextView(1)
	if len(v) == 0 {
		return Record{}, false
	}
	return v[0], true
}

// Err returns the underlying source's latched decode error. It is
// meaningful once the stream reports exhaustion (NextView returning
// empty), exactly like Err on the unwrapped source.
func (p *Prefetcher) Err() error {
	select {
	case <-p.done:
		return p.err
	default:
		// The decoder is still running (early Close, or Err polled
		// mid-stream): no latched error yet.
		return nil
	}
}

// Close stops the decoder goroutine and waits for it to exit. It is
// idempotent and safe to call whether the stream was drained or
// abandoned mid-way; after Close, NextView drains any batches already
// decoded and then reports exhaustion.
func (p *Prefetcher) Close() {
	p.closeOnce.Do(func() { close(p.quit) })
	<-p.done
}

// Stats returns the stall counters accumulated so far. It is safe to
// call concurrently with the pipeline running.
func (p *Prefetcher) Stats() (decodeStalls, simStalls uint64) {
	return p.decodeStalls.Load(), p.simStalls.Load()
}

var _ ViewSource = (*Prefetcher)(nil)
