package stats

import "math"

// This file provides the Student's t quantiles the sampled-simulation
// mode needs at arbitrary confidence levels. tCritical95's lookup table
// (stats.go) only covers the two-sided 95% level; SMARTS-style sampling
// lets the caller pick the confidence, so the critical value is computed
// from the t distribution itself via the regularized incomplete beta
// function (the standard continued-fraction evaluation).

// TCritical returns the two-sided critical value t* of Student's t
// distribution with df degrees of freedom: P(|T| <= t*) = confidence.
// df <= 0 yields +Inf (no samples bound nothing); confidence outside
// (0, 1) yields NaN.
func TCritical(confidence float64, df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if !(confidence > 0 && confidence < 1) {
		return math.NaN()
	}
	// Two-sided tail mass: P(|T| > t) = I_x(df/2, 1/2) with
	// x = df/(df+t^2), strictly decreasing in t. Bracket the root and
	// bisect; ~60 iterations reach full float64 precision and the whole
	// computation runs once per Result, far off any hot path.
	tail := 1 - confidence
	n := float64(df)
	tailAt := func(t float64) float64 {
		return regIncBeta(n/2, 0.5, n/(n+t*t))
	}
	hi := 1.0
	for tailAt(hi) > tail {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	lo := 0.0
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := lo + (hi-lo)/2
		if tailAt(mid) > tail {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// MeanCI returns the confidence interval for the mean of xs at the given
// two-sided confidence level (e.g. 0.95). A single sample yields an
// infinite half-width: one window bounds nothing.
func MeanCI(xs []float64, confidence float64) Interval {
	n := len(xs)
	if n == 0 {
		return Interval{}
	}
	m := Mean(xs)
	if n == 1 {
		return Interval{Mean: m, Half: math.Inf(1)}
	}
	se := StdDev(xs) / math.Sqrt(float64(n))
	return Interval{Mean: m, Half: TCritical(confidence, n-1) * se}
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// evaluated by the symmetric continued fraction (Lentz's method); the
// x < (a+1)/(a+b+2) split keeps the fraction in its fast-converging
// region.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
