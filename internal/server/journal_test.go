package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/fault"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestJournalRoundTrip appends the three record kinds and proves replay
// reconstructs the jobs exactly.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	jl, jobs, err := openJournal(path, nil, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(jobs))
	}
	specA := jobSpec{Kind: "run", Target: "sparse/sms", Run: &RunRequest{Workload: "sparse", Prefetcher: "sms"}}
	specB := jobSpec{Kind: "figure", Target: "fig2", Dedupe: "figure/fig2", Figure: "fig2"}
	now := time.Now().UTC().Truncate(time.Millisecond)
	appendAll := []journalRecord{
		{Op: journalOpAccepted, ID: "aaaa", Time: now, Spec: &specA},
		{Op: journalOpAccepted, ID: "bbbb", Time: now.Add(time.Second), Spec: &specB},
		{Op: journalOpStarted, ID: "aaaa", Time: now.Add(2 * time.Second)},
		{Op: journalOpSettled, ID: "bbbb", Time: now.Add(3 * time.Second), State: JobFailed, Error: "boom"},
	}
	for _, rec := range appendAll {
		if err := jl.append(rec); err != nil {
			t.Fatalf("append %s/%s: %v", rec.Op, rec.ID, err)
		}
	}
	jl.close()

	jl2, jobs, err := openJournal(path, nil, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	a, b := jobs[0], jobs[1]
	if a.id != "aaaa" || !a.started || a.settled || a.spec.Run == nil || a.spec.Run.Workload != "sparse" {
		t.Fatalf("job a replayed wrong: %+v", a)
	}
	if !a.created.Equal(now) {
		t.Fatalf("job a created %v, want %v", a.created, now)
	}
	if b.id != "bbbb" || !b.settled || b.state != JobFailed || b.errText != "boom" || b.spec.Figure != "fig2" {
		t.Fatalf("job b replayed wrong: %+v", b)
	}
	if n := jl2.tornCount(); n != 0 {
		t.Fatalf("clean journal reported %d torn records", n)
	}
}

// TestJournalTornTailTruncated proves a frame cut short by a kill is
// truncated away on replay — the earlier records survive, and appends
// resume cleanly after the truncation.
func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	jl, _, err := openJournal(path, nil, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	spec := jobSpec{Kind: "figure", Target: "f", Figure: "f"}
	if err := jl.append(journalRecord{Op: journalOpAccepted, ID: "good", Time: time.Now(), Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := jl.append(journalRecord{Op: journalOpStarted, ID: "good", Time: time.Now()}); err != nil {
		t.Fatal(err)
	}
	jl.close()

	// Tear the tail: chop the last frame mid-payload, as a kill between
	// write and sync would.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	jl2, jobs, err := openJournal(path, nil, testLogger())
	if err != nil {
		t.Fatalf("replay over torn tail: %v", err)
	}
	if len(jobs) != 1 || jobs[0].id != "good" || jobs[0].started {
		t.Fatalf("torn replay got %+v, want job %q one state earlier", jobs, "good")
	}
	if n := jl2.tornCount(); n != 1 {
		t.Fatalf("torn records = %d, want 1", n)
	}
	// Appends resume from the truncation point and the journal is whole
	// again on the next replay.
	if err := jl2.append(journalRecord{Op: journalOpStarted, ID: "good", Time: time.Now()}); err != nil {
		t.Fatal(err)
	}
	jl2.close()
	jl3, jobs, err := openJournal(path, nil, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.close()
	if len(jobs) != 1 || !jobs[0].started || jl3.tornCount() != 0 {
		t.Fatalf("post-repair replay got %+v (torn=%d)", jobs, jl3.tornCount())
	}
}

// TestJournalAppendCrashTearsFrame drives the journal.append fault site
// with a partial-write rule and proves the injected torn prefix is
// truncated away on the next open, leaving the job one state earlier.
func TestJournalAppendCrashTearsFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{
		{Site: "journal.append.settled", Kind: fault.KindPartial, Frac: 0.5},
	}})
	jl, _, err := openJournal(path, inj, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	spec := jobSpec{Kind: "figure", Target: "f", Figure: "f"}
	if err := jl.append(journalRecord{Op: journalOpAccepted, ID: "j1", Time: time.Now(), Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	err = jl.append(journalRecord{Op: journalOpSettled, ID: "j1", Time: time.Now(), State: JobDone, Spec: &spec})
	if !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("settled append under partial rule: %v", err)
	}
	jl.close()

	jl2, jobs, err := openJournal(path, nil, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	if len(jobs) != 1 || jobs[0].settled {
		t.Fatalf("replay after torn settled append: %+v, want live job", jobs)
	}
	if jl2.tornCount() != 1 {
		t.Fatalf("torn records = %d, want 1", jl2.tornCount())
	}
}

// startRestartableServer builds a server whose lifetime the test
// controls (no automatic cleanup close — restarts need explicit
// ordering).
func startRestartableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = testLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// TestRestartRecovery is the crash-point table: kill the daemon at each
// point in a run job's settlement path, restart it over the same store
// and journal, and prove the job reaches done exactly once with a
// byte-identical result. The heartbeat-blackout crash point lives in
// the cluster package's chaos tests, where there is a cluster to
// blackout.
func TestRestartRecovery(t *testing.T) {
	cases := []struct {
		name string
		// rules is the fault plan for the first daemon; the crash rule
		// models the kill (the injector's crashed state fails every
		// subsequent store/journal write, exactly as death would).
		rules []fault.Rule
		// resim: the restart must re-simulate (the result never reached
		// the store). Otherwise the restart settles warm from the store
		// without running anything.
		resim bool
		// requeued: the restart sees a live (unsettled) journal entry.
		requeued bool
	}{
		{name: "clean-shutdown", rules: nil, resim: false, requeued: false},
		// Killed mid store write, before the rename publishes the object:
		// no result on disk, the journal holds accepted+started, and the
		// restart re-runs the simulation.
		{name: "pre-rename", rules: []fault.Rule{
			{Site: "store.results.write", Kind: fault.KindCrash},
		}, resim: true, requeued: true},
		// Killed after the store rename but before the settled record hit
		// the journal: the restart re-queues the job and the engine's
		// store probe settles it warm — nothing re-simulates.
		{name: "post-rename-pre-journal", rules: []fault.Rule{
			{Site: "journal.append.settled", Kind: fault.KindPartial, Frac: 0.4},
		}, resim: false, requeued: true},
		// Killed mid trace-artifact publish (the artifact plane the
		// cluster syncs): the temp file stays as debris, the torn artifact
		// is never visible, and the run re-simulates because its result
		// write also died with the process.
		{name: "mid-artifact-sync", rules: []fault.Rule{
			{Site: "store.traces.rename", Kind: fault.KindCrash},
		}, resim: true, requeued: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			storeDir := filepath.Join(dir, "store")
			journalPath := filepath.Join(dir, "journal")

			inj := fault.MustNew(fault.Plan{Rules: tc.rules})
			sess1 := tinySession(t, storeDir)
			sess1.Store().SetFault(inj)
			srv1, ts1 := startRestartableServer(t, Config{
				Session: sess1, Workers: 2, JournalPath: journalPath, Fault: inj,
			})

			code, body := postJSON(t, ts1.URL+"/v1/runs", `{"workload":"sparse","prefetcher":"sms"}`)
			if code != http.StatusAccepted {
				t.Fatalf("POST /v1/runs: %d %s", code, body)
			}
			doc1 := pollJob(t, ts1.URL, decodeJob(t, body).ID)
			if doc1.State != JobDone || doc1.Result == nil {
				t.Fatalf("first life settled %s (%s)", doc1.State, doc1.Error)
			}
			want, err := json.Marshal(doc1.Result)
			if err != nil {
				t.Fatal(err)
			}
			ts1.Close()
			srv1.Close()

			sess2 := tinySession(t, storeDir)
			srv2, ts2 := startRestartableServer(t, Config{
				Session: sess2, Workers: 2, JournalPath: journalPath,
			})
			defer func() { ts2.Close(); srv2.Close() }()

			doc2 := pollJob(t, ts2.URL, doc1.ID)
			if doc2.State != JobDone || doc2.Result == nil {
				t.Fatalf("restart settled %s (%s)", doc2.State, doc2.Error)
			}
			got, err := json.Marshal(doc2.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("result across restart diverged:\n first: %s\nsecond: %s", want, got)
			}
			if sims := sess2.Simulations(); (sims > 0) != tc.resim {
				t.Fatalf("restart simulations = %d, want resim=%v", sims, tc.resim)
			}
			if req := srv2.recRequeued.Load(); (req > 0) != tc.requeued {
				t.Fatalf("requeued = %d, want requeued=%v", req, tc.requeued)
			}
			if !tc.requeued && srv2.recRestored.Load() == 0 {
				t.Fatal("clean restart restored no settled jobs")
			}
		})
	}
}

// TestRestartRequeuesQueuedJobs kills a daemon (abandons it, as SIGKILL
// would) with one job running and one still queued, then proves the
// restart re-queues both — the acceptance contract: jobs submitted
// before the kill reach done after it, under the same ids.
func TestRestartRequeuesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	journalPath := filepath.Join(dir, "journal")

	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	stalled := map[string]exp.Runner{
		"stall": func(ctx context.Context, s *exp.Session) (string, error) { <-release; return "stalled figure", nil },
	}
	sess1 := tinySession(t, storeDir)
	srv1, ts1 := startRestartableServer(t, Config{
		Session: sess1, Workers: 1, Experiments: stalled, JournalPath: journalPath,
	})

	// Job 1 occupies the single worker; job 2 sits in the queue.
	code, body := postJSON(t, ts1.URL+"/v1/figures/stall", "")
	if code != http.StatusAccepted {
		t.Fatalf("POST figure: %d %s", code, body)
	}
	figID := decodeJob(t, body).ID
	code, body = postJSON(t, ts1.URL+"/v1/runs", `{"workload":"sparse"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST run: %d %s", code, body)
	}
	runID := decodeJob(t, body).ID

	// Die without ceremony: no Shutdown, no journal close — the blocked
	// worker goroutine is the corpse (released at cleanup).
	ts1.Close()

	fast := map[string]exp.Runner{
		"stall": func(ctx context.Context, s *exp.Session) (string, error) { return "stalled figure", nil },
	}
	sess2 := tinySession(t, storeDir)
	srv2, ts2 := startRestartableServer(t, Config{
		Session: sess2, Workers: 2, Experiments: fast, JournalPath: journalPath,
	})
	defer func() { ts2.Close(); srv2.Close(); _ = srv1 }()

	figDoc := pollJob(t, ts2.URL, figID)
	if figDoc.State != JobDone || figDoc.Figure != "stalled figure" {
		t.Fatalf("figure job after restart: %s (%s) %q", figDoc.State, figDoc.Error, figDoc.Figure)
	}
	runDoc := pollJob(t, ts2.URL, runID)
	if runDoc.State != JobDone || runDoc.Result == nil {
		t.Fatalf("run job after restart: %s (%s)", runDoc.State, runDoc.Error)
	}
	if got := srv2.recRequeued.Load(); got != 2 {
		t.Fatalf("requeued = %d, want 2", got)
	}
}

// TestRestartCachedJobsRestored proves cache-settled jobs (the fast
// path that never touches the pool) survive restarts: their settled
// record is self-contained.
func TestRestartCachedJobsRestored(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	journalPath := filepath.Join(dir, "journal")

	sess1 := tinySession(t, storeDir)
	srv1, ts1 := startRestartableServer(t, Config{Session: sess1, Workers: 2, JournalPath: journalPath})

	code, body := postJSON(t, ts1.URL+"/v1/runs", `{"workload":"sparse"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST run: %d %s", code, body)
	}
	first := pollJob(t, ts1.URL, decodeJob(t, body).ID)
	if first.State != JobDone {
		t.Fatalf("first run settled %s", first.State)
	}
	// Second POST settles from cache — no worker slot, no accepted record.
	code, body = postJSON(t, ts1.URL+"/v1/runs", `{"workload":"sparse"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST cached run: %d %s", code, body)
	}
	cached := decodeJob(t, body)
	if cached.State != JobDone {
		t.Fatalf("cached run settled %s", cached.State)
	}
	ts1.Close()
	srv1.Close()

	sess2 := tinySession(t, storeDir)
	srv2, ts2 := startRestartableServer(t, Config{Session: sess2, Workers: 2, JournalPath: journalPath})
	defer func() { ts2.Close(); srv2.Close() }()

	for _, id := range []string{first.ID, cached.ID} {
		doc := pollJob(t, ts2.URL, id)
		if doc.State != JobDone || doc.Result == nil {
			t.Fatalf("job %s after restart: %s result=%v", id, doc.State, doc.Result != nil)
		}
	}
	if got := srv2.recRestored.Load(); got != 2 {
		t.Fatalf("restored = %d, want 2", got)
	}
	if sims := sess2.Simulations(); sims != 0 {
		t.Fatalf("restored jobs re-simulated %d times", sims)
	}
}

// TestRecoveryUnrunnableJobSettlesFailed proves a journaled job whose
// spec no longer resolves (a figure renamed across the restart) is
// settled failed and stays visible — never silently dropped, never a
// crash loop.
func TestRecoveryUnrunnableJobSettlesFailed(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal")
	jl, _, err := openJournal(journalPath, nil, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	spec := jobSpec{Kind: "figure", Target: "gone", Dedupe: "figure/gone", Figure: "gone"}
	if err := jl.append(journalRecord{Op: journalOpAccepted, ID: "ghost", Time: time.Now(), Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	jl.close()

	sess := tinySession(t, "")
	srv, ts := startRestartableServer(t, Config{
		Session: sess, Workers: 1, JournalPath: journalPath,
		Experiments: map[string]exp.Runner{}, // "gone" is gone
	})
	defer func() { ts.Close(); srv.Close() }()

	doc := pollJob(t, ts.URL, "ghost")
	if doc.State != JobFailed || doc.Error == "" {
		t.Fatalf("unrunnable job settled %s (%q), want failed", doc.State, doc.Error)
	}
}

// TestJournalCompaction proves the journal shrinks: a burst of settled
// jobs compacts down to one summary record each, and the compacted file
// still replays every retained job.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	journalPath := filepath.Join(dir, "journal")

	sess1 := tinySession(t, storeDir)
	srv1, ts1 := startRestartableServer(t, Config{Session: sess1, Workers: 2, JournalPath: journalPath})

	// One real run (3 records) plus cached settlements (1 each).
	code, body := postJSON(t, ts1.URL+"/v1/runs", `{"workload":"sparse"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST run: %d %s", code, body)
	}
	pollJob(t, ts1.URL, decodeJob(t, body).ID)
	for i := 0; i < 4; i++ {
		if code, _ := postJSON(t, ts1.URL+"/v1/runs", `{"workload":"sparse"}`); code != http.StatusAccepted {
			t.Fatalf("POST cached run %d: %d", i, code)
		}
	}
	ts1.Close()
	srv1.Close()
	grown, err := os.Stat(journalPath)
	if err != nil {
		t.Fatal(err)
	}

	// Recovery compacts: 5 settled jobs → 5 summary records.
	sess2 := tinySession(t, storeDir)
	srv2, ts2 := startRestartableServer(t, Config{Session: sess2, Workers: 2, JournalPath: journalPath})
	compacted, err := os.Stat(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= grown.Size() {
		t.Fatalf("recovery compaction did not shrink the journal: %d → %d bytes", grown.Size(), compacted.Size())
	}
	if got := srv2.journal.compactionCount(); got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	code, body = get(t, ts2.URL+"/v1/jobs?state=done")
	if code != http.StatusOK {
		t.Fatalf("GET jobs: %d %s", code, body)
	}
	var docs []JobDoc
	if err := json.Unmarshal([]byte(body), &docs); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	srv2.Close()
	if len(docs) != 5 {
		t.Fatalf("jobs after compacting restart = %d, want 5", len(docs))
	}

	// And the compacted journal replays on its own.
	jl, jobs, err := openJournal(journalPath, nil, testLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	if len(jobs) != 5 {
		t.Fatalf("compacted journal replayed %d jobs, want 5", len(jobs))
	}
	for _, jj := range jobs {
		if !jj.settled || jj.state != JobDone {
			t.Fatalf("compacted job %s replayed unsettled: %+v", jj.id, jj)
		}
	}
}
