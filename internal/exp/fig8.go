package exp

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/nextline"
	"repro/internal/sectored"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TrainingStructure labels the Fig. 8 variants.
type TrainingStructure string

// Figure 8 training structures, plus the next-line floor baseline (an
// extension series: a spatial-pattern-free sequential prefetcher, added
// through the sim registry).
const (
	TrainDS  TrainingStructure = "DS"
	TrainLS  TrainingStructure = "LS"
	TrainAGT TrainingStructure = "AGT"
	TrainNL  TrainingStructure = "NL"
)

// Fig8Row is one (group, training structure) bar.
type Fig8Row struct {
	Group    string
	Train    TrainingStructure
	Coverage sim.Coverage
}

// Fig8Result is the Figure 8 dataset.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8Plan declares the Figure 8 grid: AGT (standard SMS), LS, and
// next-line variants as standard runs, and the decoupled-sectored study
// as a custom cell per workload — the DS structure *is* the L1, so it
// cannot reuse the coherent-hierarchy runner (and is memoized only at
// the figure level, not the run store).
func Fig8Plan(o Options) engine.Plan {
	p := basePlan("fig8", o)
	p = p.WithVariant(string(TrainAGT), sim.Config{
		Coherence:      o.MemorySystem(64),
		PrefetcherName: "sms",
		SMS:            core.Config{PHTEntries: -1},
	})
	p = p.WithVariant(string(TrainLS), sim.Config{
		Coherence:      o.MemorySystem(64),
		PrefetcherName: "ls",
		LS:             sectored.Config{PHTEntries: -1},
	})
	p = p.WithVariant(string(TrainNL), sim.Config{
		Coherence:      o.MemorySystem(64),
		PrefetcherName: nextline.Name,
	})
	dsCfg := sectored.Config{
		CacheSize:  o.MemorySystem(64).L1.Size,
		PHTEntries: -1,
	}
	for _, name := range p.Workloads {
		name := name
		p.Customs = append(p.Customs, engine.Custom{
			Workload: name,
			Key:      string(TrainDS),
			Run: func(ctx context.Context) (any, error) {
				return runDS(ctx, o, name, dsCfg)
			},
		})
	}
	return p
}

// Fig8 reproduces Figure 8: training-structure comparison (decoupled
// sectored cache, logical sectored tags, AGT) with an unbounded PHT.
// Coverage is measured against the traditional-cache baseline, so the DS
// cache's extra conflict misses appear as uncovered misses beyond 100%.
// A fourth series extends the figure with the next-line floor baseline,
// selected purely by its registry name.
func Fig8(ctx context.Context, s *Session) (*Fig8Result, error) {
	names := WorkloadNames()
	structures := []TrainingStructure{TrainDS, TrainLS, TrainAGT, TrainNL}
	grid, err := s.Execute(ctx, Fig8Plan(s.Options()))
	if err != nil {
		return nil, err
	}

	covs := make(map[string]map[TrainingStructure]sim.Coverage, len(names))
	for _, name := range names {
		base := grid.Baseline(name)
		cs := make(map[TrainingStructure]sim.Coverage, len(structures))
		for _, st := range []TrainingStructure{TrainAGT, TrainLS, TrainNL} {
			cs[st] = grid.Result(name, string(st)).L1Coverage(base)
		}
		ds := grid.Custom(name, string(TrainDS)).(dsOutcome)
		cs[TrainDS] = sim.CoverageFrom(ds.readMisses, ds.overpredictions, base.L1ReadMisses)
		covs[name] = cs
	}

	res := &Fig8Result{}
	for _, g := range GroupNames() {
		for _, st := range structures {
			res.Rows = append(res.Rows, Fig8Row{
				Group: g,
				Train: st,
				Coverage: sim.Coverage{
					Covered:       meanOver(names, func(n string) float64 { return covs[n][st].Covered })[g],
					Uncovered:     meanOver(names, func(n string) float64 { return covs[n][st].Uncovered })[g],
					Overpredicted: meanOver(names, func(n string) float64 { return covs[n][st].Overpredicted })[g],
				},
			})
		}
	}
	return res, nil
}

// dsOutcome is the DS study's raw counts.
type dsOutcome struct {
	readMisses      uint64 // post-warm-up demand read misses
	covered         uint64 // post-warm-up read prefetch hits
	overpredictions uint64
}

// runDS drives the decoupled sectored cache study. Cancellation is
// checked once per progress interval, mirroring sim.Runner.RunContext.
func runDS(ctx context.Context, o Options, name string, cfg sectored.Config) (dsOutcome, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return dsOutcome{}, err
	}
	src := w.Make(workload.Config{CPUs: o.CPUs, Seed: o.Seed, Length: o.Length})
	warmup := o.Length / 2

	ds := make([]*sectored.DecoupledSectored, o.CPUs)
	for i := range ds {
		ds[i] = sectored.MustNewDecoupledSectored(cfg)
	}
	var out dsOutcome
	var processed uint64
	next := uint64(sim.DefaultProgressInterval)
	// Overpredictions are accumulated inside the DS structures, so
	// snapshot them at the warm-up boundary and subtract.
	warmOver := make([]uint64, o.CPUs)
	snapshotted := false

	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		processed++
		if processed >= next {
			next = processed + sim.DefaultProgressInterval
			if err := ctx.Err(); err != nil {
				return dsOutcome{}, err
			}
		}
		if !snapshotted && processed > warmup {
			for i, d := range ds {
				warmOver[i] = d.Overpredictions()
			}
			snapshotted = true
		}
		cpu := int(rec.CPU)
		d := ds[cpu]
		res := d.Access(rec.PC, rec.Addr)
		warm := processed > warmup
		if warm && !rec.IsWrite() {
			if !res.Hit {
				out.readMisses++
			}
			if res.PrefetchHit {
				out.covered++
			}
		}
		for _, a := range d.NextStreamRequests(sim.DefaultStreamRate) {
			d.Fill(a)
		}
	}
	for i, d := range ds {
		out.overpredictions += d.Overpredictions() - warmOver[i]
	}
	return out, nil
}

// Render formats the dataset as the Figure 8 bars.
func (r *Fig8Result) Render() string {
	t := NewTable("Figure 8: training structure comparison (unbounded PHT)",
		"group", "training", "coverage", "uncovered", "overpredictions")
	t.SetCaption("DS = decoupled sectored cache, LS = logical sectored tags, AGT = active generation table, NL = next-line floor baseline. DS constrains cache contents, so its uncovered misses can exceed 100% of the baseline.")
	for _, row := range r.Rows {
		t.AddRow(row.Group, string(row.Train),
			Pct(row.Coverage.Covered), Pct(row.Coverage.Uncovered), Pct(row.Coverage.Overpredicted))
	}
	return t.Render()
}
