package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ghb"
)

// TestCanonicalIdempotent: the result store hashes Canonical forms, so
// canonicalizing twice must be a no-op — in particular the <0 "unbounded"
// spellings must not collapse into the 0-means-default encoding.
func TestCanonicalIdempotent(t *testing.T) {
	cfgs := []Config{
		{},
		{PrefetcherName: "sms"},
		{PrefetcherName: "ghb"},
		{PrefetcherName: "sms", SMS: core.Config{PHTEntries: -1, AccumEntries: -1, PredictionRegisters: -7}},
		{PrefetcherName: "ghb", GHB: ghb.Config{HistoryEntries: 16384}},
		{PrefetcherName: "ls", StreamRate: 9, WarmupAccesses: 123},
	}
	for i, c := range cfgs {
		once := c.Canonical()
		if twice := once.Canonical(); twice != once {
			t.Errorf("cfg %d not idempotent:\nonce:  %+v\ntwice: %+v", i, once, twice)
		}
	}
}

// TestCanonicalResolvesEmptyName: an empty PrefetcherName canonicalizes
// to the baseline scheme.
func TestCanonicalResolvesEmptyName(t *testing.T) {
	if got := (Config{}).Canonical().PrefetcherName; got != "none" {
		t.Errorf("empty name canonicalized to %q, want \"none\"", got)
	}
}

// TestCanonicalResolvesSubConfigs: sub-config defaults spelled out and
// left implicit canonicalize identically (the cross-tool cache-key
// requirement), and run-derived fields (geometry, block size) are filled
// the way the built-in constructors fill them.
func TestCanonicalResolvesSubConfigs(t *testing.T) {
	implicit := Config{PrefetcherName: "sms"}.Canonical()
	explicit := Config{
		PrefetcherName: "sms",
		SMS:            core.Config{Index: core.IndexPCOffset, PHTEntries: core.DefaultPHTEntries},
		GHB:            ghb.Config{HistoryEntries: 256},
	}.Canonical()
	if implicit != explicit {
		t.Errorf("explicit defaults differ from implicit:\n%+v\n%+v", implicit, explicit)
	}
	if implicit.SMS.Geometry != implicit.Geometry {
		t.Error("SMS geometry not derived from the run geometry")
	}
	if implicit.GHB.BlockSize != implicit.Coherence.L1.BlockSize {
		t.Error("GHB block size not derived from the L1 block size")
	}
	if implicit.LS.CacheSize != implicit.Coherence.L1.Size {
		t.Error("LS cache size not derived from the L1 size")
	}
}
