package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/obs"
)

// sseFrame is one parsed server-sent event (or heartbeat comment).
type sseFrame struct {
	event   string
	data    string
	comment bool
}

// sseStream reads frames off a live /v1/jobs/{id}/events response in a
// background goroutine; frames closes when the server ends the stream.
type sseStream struct {
	resp   *http.Response
	frames chan sseFrame
}

func openSSE(t *testing.T, url string) *sseStream {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("events stream content type %q", ct)
	}
	st := &sseStream{resp: resp, frames: make(chan sseFrame, 64)}
	go func() {
		defer close(st.frames)
		sc := bufio.NewScanner(resp.Body)
		var f sseFrame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if f.event != "" || f.comment {
					st.frames <- f
				}
				f = sseFrame{}
			case strings.HasPrefix(line, ":"):
				f.comment = true
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	t.Cleanup(func() { resp.Body.Close() })
	return st
}

// next returns the next frame, failing the test on timeout.
func (st *sseStream) next(t *testing.T) sseFrame {
	t.Helper()
	select {
	case f, ok := <-st.frames:
		if !ok {
			t.Fatal("stream closed while waiting for a frame")
		}
		return f
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for an SSE frame")
	}
	panic("unreachable")
}

// nextEvent skips heartbeats and returns the next named frame.
func (st *sseStream) nextEvent(t *testing.T) sseFrame {
	t.Helper()
	for {
		if f := st.next(t); !f.comment {
			return f
		}
	}
}

// expectClosed asserts the server ends the stream.
func (st *sseStream) expectClosed(t *testing.T) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-st.frames:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream did not close")
		}
	}
}

// gatedServer builds a server whose "slowfig" figure stalls until the
// returned gate closes (or the job context is cancelled).
func gatedServer(t *testing.T, cfg Config) (*Server, string, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	cfg.Session = tinySession(t, "")
	cfg.Experiments = map[string]exp.Runner{
		"slowfig": func(ctx context.Context, _ *exp.Session) (string, error) {
			select {
			case <-gate:
				return "done body", nil
			case <-ctx.Done():
				return "", ctx.Err()
			}
		},
	}
	s, ts := newTestServer(t, cfg)
	return s, ts.URL, gate
}

// startGatedJob submits the stalled figure job and returns its id.
func startGatedJob(t *testing.T, baseURL string) string {
	t.Helper()
	code, body := postJSON(t, baseURL+"/v1/figures/slowfig", "")
	if code != http.StatusAccepted {
		t.Fatalf("job submit: status %d body %q", code, body)
	}
	return decodeJob(t, body).ID
}

// TestJobEventsMultiSubscriber: two concurrent streams on one running
// job each receive the initial state frame, every published engine
// event, and the final state frame when the job completes — then both
// streams close.
func TestJobEventsMultiSubscriber(t *testing.T) {
	s, url, gate := gatedServer(t, Config{Workers: 2})
	id := startGatedJob(t, url)

	a := openSSE(t, url+"/v1/jobs/"+id+"/events")
	b := openSSE(t, url+"/v1/jobs/"+id+"/events")
	for _, st := range []*sseStream{a, b} {
		f := st.nextEvent(t)
		if f.event != "state" || !strings.Contains(f.data, `"id": "`+id) && !strings.Contains(f.data, `"id":"`+id) {
			t.Fatalf("initial frame = %q %q, want state frame for %s", f.event, f.data, id)
		}
	}

	// Publish an engine event through the job's sink path, as a worker
	// would; both subscribers must see it.
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	s.observeEvent(j, engine.Event{Kind: engine.RunStarted, Workload: "sparse", Key: "k1", Total: 1})
	for _, st := range []*sseStream{a, b} {
		f := st.nextEvent(t)
		if f.event != "run-started" || !strings.Contains(f.data, `"workload":"sparse"`) {
			t.Fatalf("frame = %q %q, want run-started for sparse", f.event, f.data)
		}
	}

	close(gate)
	for _, st := range []*sseStream{a, b} {
		for {
			f := st.nextEvent(t)
			if f.event != "state" {
				continue
			}
			if !strings.Contains(f.data, `"state": "done"`) && !strings.Contains(f.data, `"state":"done"`) {
				t.Fatalf("final state frame %q does not report done", f.data)
			}
			break
		}
		st.expectClosed(t)
	}
	if sent := s.metrics.eventsSent.Value(); sent < 2 {
		t.Errorf("events sent = %d, want >= 2", sent)
	}
}

// TestJobEventsHeartbeatOnIdleJob: a stream over a job that is running
// but silent emits comment heartbeats at the configured period.
func TestJobEventsHeartbeatOnIdleJob(t *testing.T) {
	_, url, gate := gatedServer(t, Config{Workers: 1, EventHeartbeat: 20 * time.Millisecond})
	defer close(gate)
	id := startGatedJob(t, url)
	st := openSSE(t, url+"/v1/jobs/"+id+"/events")
	if f := st.next(t); f.event != "state" {
		t.Fatalf("first frame %q, want state", f.event)
	}
	heartbeats := 0
	for heartbeats < 3 {
		if f := st.next(t); f.comment {
			heartbeats++
		}
	}
}

// TestJobEventsCancelTeardown: DELETE on a streamed job settles it as
// cancelled; the stream delivers the final state and closes.
func TestJobEventsCancelTeardown(t *testing.T) {
	_, url, gate := gatedServer(t, Config{Workers: 1})
	defer close(gate)
	id := startGatedJob(t, url)
	st := openSSE(t, url+"/v1/jobs/"+id+"/events")
	if f := st.next(t); f.event != "state" {
		t.Fatalf("first frame %q, want state", f.event)
	}
	if code, body := del(t, url+"/v1/jobs/"+id); code != http.StatusOK {
		t.Fatalf("cancel: status %d body %q", code, body)
	}
	sawCancelled := false
	deadline := time.After(30 * time.Second)
	for !sawCancelled {
		select {
		case f, ok := <-st.frames:
			if !ok {
				t.Fatal("stream closed before reporting cancellation")
			}
			if f.event == "state" && strings.Contains(f.data, `"cancelled"`) {
				sawCancelled = true
			}
		case <-deadline:
			t.Fatal("no cancelled state frame")
		}
	}
	st.expectClosed(t)
}

// TestJobEventsShutdownTeardown: daemon shutdown closes live streams
// instead of leaving them hanging.
func TestJobEventsShutdownTeardown(t *testing.T) {
	s, url, gate := gatedServer(t, Config{Workers: 1})
	defer close(gate)
	id := startGatedJob(t, url)
	st := openSSE(t, url+"/v1/jobs/"+id+"/events")
	if f := st.next(t); f.event != "state" {
		t.Fatalf("first frame %q, want state", f.event)
	}
	s.CancelJobs()
	st.expectClosed(t)
	if got := s.metrics.subscribers.Value(); got != 0 {
		// The gauge decrements as the handler unwinds; give it a moment.
		deadline := time.Now().Add(5 * time.Second)
		for s.metrics.subscribers.Value() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("subscriber gauge stuck at %d", got)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestJobEventsSettledJob: subscribing to an already-settled job yields
// the state frames and closes immediately.
func TestJobEventsSettledJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: tinySession(t, ""), Workers: 2})
	code, body := postJSON(t, ts.URL+"/v1/runs", `{"workload":"sparse"}`)
	if code != http.StatusAccepted {
		t.Fatalf("run submit: %d %q", code, body)
	}
	doc := pollJob(t, ts.URL, decodeJob(t, body).ID)
	if doc.State != JobDone {
		t.Fatalf("job state %s, want done", doc.State)
	}
	st := openSSE(t, ts.URL+"/v1/jobs/"+doc.ID+"/events")
	saw := false
	for f := range st.frames {
		if f.event == "state" && strings.Contains(f.data, `"done"`) {
			saw = true
		}
	}
	if !saw {
		t.Fatal("no done state frame on settled-job stream")
	}
}

// TestSubscriberDropOldest: a slow consumer loses the oldest events, the
// buffer stays bounded, and drops are reported.
func TestSubscriberDropOldest(t *testing.T) {
	sub := &subscriber{notify: make(chan struct{}, 1)}
	total := subscriberBuffer + 10
	drops := 0
	for i := 0; i < total; i++ {
		if sub.push(sseMsg{event: "e", data: []byte(fmt.Sprintf("%d", i))}) {
			drops++
		}
	}
	if drops != 10 {
		t.Fatalf("drops = %d, want 10", drops)
	}
	msgs := sub.take()
	if len(msgs) != subscriberBuffer {
		t.Fatalf("buffered %d, want %d", len(msgs), subscriberBuffer)
	}
	if got := string(msgs[0].data); got != "10" {
		t.Fatalf("oldest surviving message %q, want 10 (0..9 dropped)", got)
	}
	if sub.take() != nil {
		t.Fatal("second take not empty")
	}
}

// TestMetricsExpositionValid: /metrics renders parseable Prometheus
// text exposition, and job counters advance across a submitted job.
func TestMetricsExpositionValid(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: tinySession(t, t.TempDir()), Workers: 2})
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if err := obs.CheckExposition([]byte(body)); err != nil {
		t.Fatalf("exposition invalid before jobs: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# HELP smsd_jobs_completed_total",
		"# TYPE smsd_jobs_completed_total counter",
		"smsd_up 1",
		"smsd_store_hits_total 0",
		"# TYPE smsd_job_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	code, jb := postJSON(t, ts.URL+"/v1/runs", `{"workload":"sparse"}`)
	if code != http.StatusAccepted {
		t.Fatalf("run submit: %d %q", code, jb)
	}
	pollJob(t, ts.URL, decodeJob(t, jb).ID)

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if err := obs.CheckExposition([]byte(body)); err != nil {
		t.Fatalf("exposition invalid after job: %v\n%s", err, body)
	}
	for _, want := range []string{
		"smsd_jobs_created_total 1",
		"smsd_jobs_completed_total 1",
		"smsd_simulations_total 1",
		`smsd_job_duration_seconds_bucket{kind="run",le="+Inf"} 1`,
		"smsd_run_duration_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q after job:\n%s", want, body)
		}
	}
}
