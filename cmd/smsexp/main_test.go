package main

import (
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestExperimentOrderMatchesMap(t *testing.T) {
	order := experimentOrder()
	m := experiments()
	if len(order) != len(m) {
		t.Fatalf("order has %d entries, map has %d", len(order), len(m))
	}
	seen := map[string]bool{}
	for _, name := range order {
		if _, ok := m[name]; !ok {
			t.Errorf("ordered experiment %q missing from map", name)
		}
		if seen[name] {
			t.Errorf("duplicate experiment %q", name)
		}
		seen[name] = true
	}
	for _, want := range []string{"table1", "fig4", "fig11", "fig12", "fig13", "agt", "ablate"} {
		if !seen[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

func TestTable1Runner(t *testing.T) {
	s := exp.NewSession(exp.Options{CPUs: 1, Length: 10_000})
	out, err := experiments()["table1"](s)
	if err != nil || !strings.Contains(out, "Table 1") {
		t.Fatalf("table1 runner: %v, %q", err, out)
	}
}
