package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestStreamAbandonedConsumerDoesNotWedgeEngine is the regression test
// for the Stream sink's old bare `ch <- ev`: a consumer that stops
// reading used to block the emitting worker forever — holding the
// engine's run semaphore, so every later Run on the engine hung too.
// Now an undeliverable event blocks only until the stream's context is
// cancelled.
func TestStreamAbandonedConsumerDoesNotWedgeEngine(t *testing.T) {
	e := New(Config{
		Workload: workload.Config{CPUs: 1, Seed: 1, Length: 60_000},
		Parallel: 1,
		// Many progress events per run, so an unread stream overflows the
		// 64-event channel buffer mid-run and the sink must block.
		ProgressInterval: 500,
	})
	p := Plan{
		Name:      "wedge",
		Workloads: []string{"sparse"},
		Variants: []Variant{
			{Key: "base", Config: sim.Config{Coherence: memSys()}},
			{Key: "sms", Config: sim.Config{Coherence: memSys(), PrefetcherName: "sms"}},
			{Key: "ghb", Config: sim.Config{Coherence: memSys(), PrefetcherName: "ghb"}},
		},
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := e.Stream(ctx, p)

	// Consume just far enough to know a run started (and therefore holds
	// the Parallel=1 semaphore), then abandon the channel entirely.
	started := false
	for ev := range ch {
		if ev.Kind == RunStarted {
			started = true
			break
		}
	}
	if !started {
		t.Fatal("stream ended without a RunStarted event")
	}
	cancel()

	// With the fix, the wedged emit unblocks on ctx.Done, the execution
	// winds down, and the semaphore frees: a fresh Run succeeds. Without
	// it, the worker stays blocked on the abandoned channel and this Run
	// times out waiting for the semaphore.
	runCtx, runCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer runCancel()
	if _, err := e.Run(runCtx, "sparse", sim.Config{Coherence: memSys(), PrefetcherName: "stride"}); err != nil {
		t.Fatalf("engine wedged after abandoned stream: %v", err)
	}

	// The channel itself must also close promptly.
	select {
	case _, ok := <-ch:
		for ok {
			_, ok = <-ch
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream channel never closed after cancellation")
	}
}

// TestRunEmitsSpans: a tracer attached to the run context collects the
// engine's span set (trace source, run, store round-trips when a store
// is attached) without touching sim.Result.
func TestRunEmitsSpans(t *testing.T) {
	st := openStore(t, t.TempDir())
	e := tinyEngine(t, st, 0)
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)

	if _, err := e.Run(ctx, "sparse", sim.Config{Coherence: memSys()}); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	track := ""
	for _, s := range tr.Spans() {
		byName[s.Name]++
		if s.Name == "run" {
			track = s.Track
		}
	}
	for _, want := range []string{"store-get", "trace-generate", "run", "store-put"} {
		if byName[want] == 0 {
			t.Errorf("missing %q span (have %v)", want, byName)
		}
	}
	if track == "" {
		t.Error("run span carries no track label")
	}
}
