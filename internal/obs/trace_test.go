package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSpansAndTotals(t *testing.T) {
	tr := NewTracer()
	t0 := time.Now()
	tr.Add("gap", "sim", "w/p", t0, t0.Add(10*time.Millisecond))
	tr.Add("window", "sim", "w/p", t0.Add(10*time.Millisecond), t0.Add(15*time.Millisecond))
	tr.Add("gap", "sim", "w/p", t0.Add(15*time.Millisecond), t0.Add(35*time.Millisecond))

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("Spans = %d, want 3", len(spans))
	}
	totals := tr.PhaseTotals()
	if len(totals) != 2 {
		t.Fatalf("PhaseTotals = %d entries, want 2", len(totals))
	}
	if totals[0].Name != "gap" || totals[0].Total != 30*time.Millisecond || totals[0].Count != 2 {
		t.Errorf("totals[0] = %+v, want gap 30ms count 2", totals[0])
	}
	if totals[1].Name != "window" || totals[1].Total != 5*time.Millisecond {
		t.Errorf("totals[1] = %+v, want window 5ms", totals[1])
	}
}

func TestStartEnd(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("compile", "engine", "")
	time.Sleep(time.Millisecond)
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "compile" {
		t.Fatalf("spans = %+v, want one compile span", spans)
	}
	if spans[0].Dur() <= 0 {
		t.Errorf("Dur = %v, want > 0", spans[0].Dur())
	}
}

func TestPhaseTrackerTransitions(t *testing.T) {
	tr := NewTracer()
	ph := tr.Phases("sim", "trk")
	ph.Enter("gap")
	ph.Enter("gap") // same phase: no new span
	ph.Enter("warm")
	ph.Enter("window")
	ph.Close()
	ph.Close() // idempotent

	spans := tr.Spans()
	var names []string
	for _, s := range spans {
		names = append(names, s.Name)
		if s.Cat != "sim" || s.Track != "trk" {
			t.Errorf("span %s has cat=%q track=%q", s.Name, s.Cat, s.Track)
		}
	}
	if got, want := strings.Join(names, ","), "gap,warm,window"; got != want {
		t.Errorf("span sequence = %s, want %s", got, want)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	tr.Add("x", "y", "z", time.Now(), time.Now())
	tr.Start("x", "y", "z").End()
	if tr.Spans() != nil || tr.PhaseTotals() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer should report nothing")
	}
	ph := tr.Phases("sim", "")
	ph.Enter("gap")
	ph.Close()

	ctx := context.Background()
	if TracerFrom(ctx) != nil {
		t.Error("TracerFrom on bare ctx should be nil")
	}
	if TrackFrom(ctx) != "" {
		t.Error("TrackFrom on bare ctx should be empty")
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx = WithTrack(ctx, "sparse/sms abc123")
	if TracerFrom(ctx) != tr {
		t.Error("TracerFrom lost the tracer")
	}
	if TrackFrom(ctx) != "sparse/sms abc123" {
		t.Error("TrackFrom lost the track")
	}
}

func TestSpanCapAndDropped(t *testing.T) {
	tr := NewTracer()
	t0 := time.Now()
	for i := 0; i < maxSpans+10; i++ {
		tr.Add("x", "c", "", t0, t0.Add(time.Microsecond))
	}
	if n := len(tr.Spans()); n != maxSpans {
		t.Errorf("spans = %d, want cap %d", n, maxSpans)
	}
	if d := tr.Dropped(); d != 10 {
		t.Errorf("Dropped = %d, want 10", d)
	}
	if tot := tr.PhaseTotals(); tot[0].Count != maxSpans+10 {
		t.Errorf("totals count = %d, want %d (dropped spans still aggregate)", tot[0].Count, maxSpans+10)
	}
}

func TestConcurrentAdd(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add("x", "c", "", t0, t0.Add(time.Microsecond))
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 800 {
		t.Errorf("spans = %d, want 800", n)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	t0 := time.Now()
	tr.Add("trace-generate", "engine", "ocean/sms 12345678", t0, t0.Add(3*time.Millisecond))
	tr.Add("gap", "sim", "ocean/sms 12345678", t0.Add(3*time.Millisecond), t0.Add(5*time.Millisecond))
	tr.Add("compile", "engine", "", t0, t0.Add(time.Millisecond))

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	var meta, x int
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			x++
			tids[ev.Tid] = true
			if ev.Ts < 0 {
				t.Errorf("span %s has negative ts %f", ev.Name, ev.Ts)
			}
			if ev.Name == "trace-generate" && (ev.Dur < 2900 || ev.Dur > 3100) {
				t.Errorf("trace-generate dur = %f µs, want ~3000", ev.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if x != 3 {
		t.Errorf("X events = %d, want 3", x)
	}
	if meta != 2 || len(tids) != 2 {
		t.Errorf("meta = %d tids = %d, want 2 thread rows", meta, len(tids))
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewTracer().WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Errorf("empty trace output is not valid JSON: %s", b.String())
	}
}
