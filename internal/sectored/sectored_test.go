package sectored

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// tinyCfg: 64 B blocks, 256 B sectors (4 blocks), 1 kB cache = 4 sectors,
// 2-way = 2 sets. Even-tagged regions share set 0.
func tinyCfg() Config {
	return Config{
		Geometry:   mem.MustGeometry(64, 256),
		CacheSize:  1024,
		Assoc:      2,
		PHTEntries: -1,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := tinyCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyCfg()
	bad.CacheSize = 256 * 3 // 3 sectors, 2-way: not divisible
	if bad.Validate() == nil {
		t.Error("indivisible sector count accepted")
	}
	bad = tinyCfg()
	bad.CacheSize = 256 * 12 // 6 sets: not a power of two
	if bad.Validate() == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if (Config{}).Validate() != nil {
		t.Error("zero config (all defaults) rejected")
	}
}

func TestLSLearnsOnConflict(t *testing.T) {
	l := MustNewLogicalSectored(tinyCfg())
	const pc = 0x400100
	// Region tags 0,2,4 all map to set 0 (2 ways): the third allocation
	// evicts the LRU and learns its pattern.
	A := mem.Addr(0 * 256)
	B := mem.Addr(2 * 256)
	C := mem.Addr(4 * 256)
	l.Access(pc, A)
	l.Access(pc+4, A+64)
	l.Access(pc, B)
	l.Access(pc, C) // conflict: A (LRU) is replaced, pattern learned
	if l.Stats().PatternsLearned != 1 {
		t.Fatalf("learned = %d, want 1", l.Stats().PatternsLearned)
	}
	key := core.IndexKeyFor(core.IndexPCOffset, mem.MustGeometry(64, 256), pc, A)
	p, ok := l.PHT().Lookup(key)
	if !ok || p.String() != "1100" {
		t.Fatalf("pattern = %v ok=%v, want 1100", p, ok)
	}
}

func TestLSSingleBlockGenerationNotLearned(t *testing.T) {
	l := MustNewLogicalSectored(tinyCfg())
	l.Access(0x400100, 0)
	l.Access(0x400100, 2*256)
	l.Access(0x400100, 4*256) // evicts region 0 with only one accessed block
	if l.Stats().PatternsLearned != 0 {
		t.Fatal("single-block generation learned")
	}
}

func TestLSFragmentationVsAGT(t *testing.T) {
	// The §4.3 claim: with interleaved region accesses, LS fragments
	// generations into more, sparser patterns than the AGT observes.
	geo := mem.MustGeometry(64, 256)
	cfg := tinyCfg()
	ls := MustNewLogicalSectored(cfg)
	sms := core.MustNew(core.Config{Geometry: geo, PHTEntries: -1, AccumEntries: -1})

	// Interleave accesses to 8 regions that all collide in LS set 0
	// (even tags) — the AGT, being fully associative, keeps all alive.
	const pc = 0x400100
	regions := make([]mem.Addr, 8)
	for i := range regions {
		regions[i] = mem.Addr(i * 2 * 256)
	}
	for blk := 0; blk < 4; blk++ {
		for _, r := range regions {
			a := r + mem.Addr(blk*64)
			ls.Access(pc+uint64(blk*4), a)
			sms.Access(pc+uint64(blk*4), a)
		}
	}
	// End all generations.
	for _, r := range regions {
		sms.BlockRemoved(r)
	}
	lsLearned := ls.Stats().PatternsLearned
	smsStats := sms.Stats()
	// SMS learned 8 dense 4-block patterns. LS fragmented: each region
	// was evicted and re-allocated repeatedly, so it learned more,
	// sparser patterns — or dropped them as single-block generations.
	if smsStats.PatternsLearned != 8 {
		t.Fatalf("AGT learned %d, want 8", smsStats.PatternsLearned)
	}
	key := core.IndexKeyFor(core.IndexPCOffset, geo, pc, regions[0])
	p, ok := sms.PHT().Lookup(key)
	if !ok || p.PopCount() != 4 {
		t.Fatalf("AGT pattern %v, want dense 4", p)
	}
	if lp, ok := ls.PHT().Lookup(key); ok && lp.PopCount() >= 4 {
		t.Fatalf("LS pattern unexpectedly dense: %v", lp)
	}
	_ = lsLearned
}

func TestLSBlockRemovedEndsGeneration(t *testing.T) {
	l := MustNewLogicalSectored(tinyCfg())
	const pc = 0x400100
	l.Access(pc, 0)
	l.Access(pc+4, 64)
	l.BlockRemoved(64)
	if l.Stats().PatternsLearned != 1 {
		t.Fatal("invalidation did not end generation")
	}
	// Invalidation of an unaccessed block is ignored.
	l.Access(pc, 2*256)
	l.Access(pc+4, 2*256+64)
	l.BlockRemoved(2*256 + 192)
	if l.Stats().PatternsLearned != 1 {
		t.Fatal("unaccessed-block invalidation ended generation")
	}
}

func TestLSPredictsAndStreams(t *testing.T) {
	l := MustNewLogicalSectored(tinyCfg())
	const pc = 0x400100
	l.Access(pc, 0)
	l.Access(pc+4, 64)
	l.BlockRemoved(0)
	// New region, same trigger PC/offset.
	l.Access(pc, 8*256)
	if l.Stats().Predictions != 1 {
		t.Fatalf("predictions = %d", l.Stats().Predictions)
	}
	reqs := l.NextStreamRequests(10)
	if len(reqs) != 1 || reqs[0] != 8*256+64 {
		t.Fatalf("stream requests = %v", reqs)
	}
	if l.Stats().StreamsIssued != 1 {
		t.Error("StreamsIssued not counted")
	}
}

func TestDSHitMissSemantics(t *testing.T) {
	d := MustNewDecoupledSectored(tinyCfg())
	const pc = 0x400100
	if r := d.Access(pc, 0); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := d.Access(pc, 0); !r.Hit {
		t.Fatal("resident block missed")
	}
	// Same sector, different block: block-grain miss.
	if r := d.Access(pc+4, 64); r.Hit {
		t.Fatal("non-resident block of live sector hit")
	}
	if d.DemandMisses() != 2 {
		t.Fatalf("DemandMisses = %d, want 2", d.DemandMisses())
	}
}

func TestDSSectorReplacementEvictsWholeSector(t *testing.T) {
	d := MustNewDecoupledSectored(tinyCfg())
	const pc = 0x400100
	// Fill region 0's sector with 4 blocks.
	for blk := 0; blk < 4; blk++ {
		d.Access(pc, mem.Addr(blk*64))
	}
	// Two conflicting sectors displace it.
	d.Access(pc, 2*256)
	d.Access(pc, 4*256)
	// Region 0 must now miss on every block (whole sector gone).
	if r := d.Access(pc, 0); r.Hit {
		t.Fatal("replaced sector's block still resident")
	}
	if d.Stats().PatternsLearned == 0 {
		t.Fatal("sector replacement did not learn pattern")
	}
}

func TestDSPrefetchFillAndCoverage(t *testing.T) {
	d := MustNewDecoupledSectored(tinyCfg())
	const pc = 0x400100
	// Train a 2-block pattern.
	d.Access(pc, 0)
	d.Access(pc+4, 64)
	d.Access(pc, 2*256)
	d.Access(pc, 4*256) // evict region 0, learn pattern
	// The access that evicted region 0 is itself a trigger and may have
	// armed a prediction from the freshly learned pattern; drain it.
	d.NextStreamRequests(100)
	// New region with the same trigger: prediction armed.
	d.Access(pc, 8*256)
	reqs := d.NextStreamRequests(10)
	if len(reqs) != 1 {
		t.Fatalf("reqs = %v", reqs)
	}
	d.Fill(reqs[0])
	r := d.Access(pc+4, reqs[0])
	if !r.Hit || !r.PrefetchHit {
		t.Fatalf("prefetched block not a prefetch hit: %+v", r)
	}
	if d.PrefetchHits() != 1 {
		t.Fatalf("PrefetchHits = %d", d.PrefetchHits())
	}
	// Second access: plain hit.
	if r := d.Access(pc+4, reqs[0]); !r.Hit || r.PrefetchHit {
		t.Fatal("second access misflagged")
	}
}

func TestDSFillDeadSectorIsOverprediction(t *testing.T) {
	d := MustNewDecoupledSectored(tinyCfg())
	d.Fill(0x40) // no sector: dropped
	if d.Overpredictions() != 1 {
		t.Fatalf("Overpredictions = %d", d.Overpredictions())
	}
}

func TestDSUnusedPrefetchCountedOnRetire(t *testing.T) {
	d := MustNewDecoupledSectored(tinyCfg())
	const pc = 0x400100
	d.Access(pc, 0)
	d.Fill(64) // streamed into region 0, never used
	d.Access(pc, 2*256)
	d.Access(pc, 4*256) // evicts region 0
	if d.Overpredictions() != 1 {
		t.Fatalf("Overpredictions = %d, want 1", d.Overpredictions())
	}
}

func TestDSBlockRemoved(t *testing.T) {
	d := MustNewDecoupledSectored(tinyCfg())
	const pc = 0x400100
	d.Access(pc, 0)
	d.Access(pc+4, 64)
	d.BlockRemoved(0)
	if d.Stats().PatternsLearned != 1 {
		t.Fatal("invalidation did not retire generation")
	}
	if r := d.Access(pc, 64); r.Hit {
		t.Fatal("sector survived invalidation")
	}
}
