package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func traceRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Seq: uint64(i * 3), PC: 0x400000 + uint64(i%8)*4,
			Addr: mem.Addr(1<<30 + uint64(i%64)*64), CPU: uint8(i % 2), Kind: trace.Kind(i % 2)}
	}
	return recs
}

func TestForTraceCanonicalizes(t *testing.T) {
	a := ForTrace("oltp-db2", workload.Config{CPUs: 4, Seed: 1})
	b := ForTrace("oltp-db2", workload.Config{CPUs: 4, Seed: 1, Scale: 1.0, Length: workload.DefaultLength})
	if a != b {
		t.Error("equivalent configs hash differently")
	}
	if a == ForTrace("dss-q1", workload.Config{CPUs: 4, Seed: 1}) {
		t.Error("workload name not in key")
	}
	if a == ForTrace("oltp-db2", workload.Config{CPUs: 4, Seed: 2}) {
		t.Error("seed not in key")
	}
	if a == ForRun("oltp-db2", workload.Config{CPUs: 4, Seed: 1}, sim.Config{}) {
		t.Error("trace key collides with a run key")
	}
}

func TestTraceTierRoundTripAndStats(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.Config{CPUs: 2, Seed: 7, Length: 5000}
	key := ForTrace("sparse", wcfg)
	recs := traceRecords(5000)

	if s.HasTrace(key) {
		t.Fatal("empty store has a trace")
	}
	if _, ok := s.OpenTrace(key); ok {
		t.Fatal("miss reported as hit")
	}
	hdr := trace.Header{CPUs: 2, Workload: "sparse", WorkloadHash: key}
	if err := s.PutTraceRecords(key, hdr, recs); err != nil {
		t.Fatal(err)
	}
	if !s.HasTrace(key) {
		t.Fatal("written trace not found")
	}

	f, ok := s.OpenTrace(key)
	if !ok {
		t.Fatal("written trace did not open")
	}
	defer f.Close()
	if f.Info().Workload != "sparse" || f.Info().WorkloadHash != key || f.Info().Records != 5000 {
		t.Fatalf("trace info = %+v", f.Info())
	}
	got := trace.Collect(f.NewSource(), 0)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}

	st := s.Stats()
	if st.TraceWrites != 1 || st.TraceHits != 1 || st.TraceMisses != 1 || st.TraceBytesWritten == 0 {
		t.Fatalf("stats = %+v", st)
	}

	infos, err := s.ListTraces()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Key != key || infos[0].Records != 5000 ||
		infos[0].Workload != "sparse" || infos[0].Bytes == 0 {
		t.Fatalf("ListTraces = %+v", infos)
	}
}

func TestTraceTierCorruptArtifactIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := ForTrace("sparse", workload.Config{CPUs: 1, Seed: 1, Length: 10})
	if err := s.PutTraceRecords(key, trace.Header{}, traceRecords(10)); err != nil {
		t.Fatal(err)
	}
	path := s.tracePath(key)
	if err := os.WriteFile(path, []byte("SMSTgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.OpenTrace(key); ok {
		t.Fatal("corrupt trace opened")
	}
	if st := s.Stats(); st.Corrupt == 0 || st.TraceMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A torn artifact does not break listing either.
	if infos, err := s.ListTraces(); err != nil || len(infos) != 0 {
		t.Fatalf("ListTraces over corrupt artifact = %v, %v", infos, err)
	}
}

func TestTraceSinkAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ForTrace("sparse", workload.Config{CPUs: 1, Seed: 2})
	ts, err := s.BeginTrace(key, trace.Header{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.W.WriteBatch(traceRecords(100)); err != nil {
		t.Fatal(err)
	}
	ts.Abort()
	if s.HasTrace(key) {
		t.Fatal("aborted trace published")
	}
	left, err := filepath.Glob(filepath.Join(dir, "traces", "*", "*"))
	if err != nil || len(left) != 0 {
		t.Fatalf("aborted sink left files: %v (%v)", left, err)
	}
}
