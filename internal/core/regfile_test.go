package core

import (
	"testing"

	"repro/internal/mem"
)

func TestRegisterFileRoundRobin(t *testing.T) {
	g := mem.MustGeometry(64, 256)
	rf := NewRegisterFile(g, 4)
	rf.Arm(0x1000, mem.PatternOf(4, 0, 1))
	rf.Arm(0x2000, mem.PatternOf(4, 2, 3))
	if rf.Active() != 2 || rf.Armed() != 2 {
		t.Fatalf("Active=%d Armed=%d", rf.Active(), rf.Armed())
	}
	got := rf.Next(2)
	if len(got) != 2 {
		t.Fatalf("Next(2) = %v", got)
	}
	// One block from each register (round-robin), not two from one.
	if (got[0] < 0x2000) == (got[1] < 0x2000) {
		t.Fatalf("not round-robin: %v", got)
	}
	rest := rf.Next(100)
	if len(rest) != 2 {
		t.Fatalf("rest = %v", rest)
	}
	if rf.Active() != 0 {
		t.Fatal("registers not freed")
	}
	if rf.Issued() != 4 {
		t.Fatalf("Issued = %d", rf.Issued())
	}
}

func TestRegisterFileOverwrite(t *testing.T) {
	rf := NewRegisterFile(mem.MustGeometry(64, 256), 1)
	rf.Arm(0x1000, mem.PatternOf(4, 0))
	rf.Arm(0x2000, mem.PatternOf(4, 1))
	if rf.Overwritten() != 1 || rf.Active() != 1 {
		t.Fatalf("Overwritten=%d Active=%d", rf.Overwritten(), rf.Active())
	}
	got := rf.Next(10)
	if len(got) != 1 || got[0] != 0x2000+64 {
		t.Fatalf("got %v, want newest prediction", got)
	}
}

func TestRegisterFileIgnoresEmptyPattern(t *testing.T) {
	rf := NewRegisterFile(mem.MustGeometry(64, 256), 4)
	rf.Arm(0x1000, mem.NewPattern(4))
	if rf.Active() != 0 || rf.Armed() != 0 {
		t.Fatal("empty pattern armed a register")
	}
	if got := rf.Next(4); got != nil {
		t.Fatalf("Next on empty file = %v", got)
	}
	if got := rf.Next(0); got != nil {
		t.Fatalf("Next(0) = %v", got)
	}
}

func TestRegisterFileUnbounded(t *testing.T) {
	rf := NewRegisterFile(mem.MustGeometry(64, 256), 0)
	for i := 0; i < 1000; i++ {
		rf.Arm(mem.Addr(0x1000+i*256), mem.PatternOf(4, 1))
	}
	if rf.Active() != 1000 || rf.Overwritten() != 0 {
		t.Fatalf("Active=%d Overwritten=%d", rf.Active(), rf.Overwritten())
	}
}

func TestRegisterFileAddressesBlockAligned(t *testing.T) {
	g := mem.MustGeometry(64, 512)
	rf := NewRegisterFile(g, 4)
	rf.Arm(0x4000, mem.PatternOf(8, 3, 5, 7))
	got := rf.Next(8)
	want := []mem.Addr{0x4000 + 3*64, 0x4000 + 5*64, 0x4000 + 7*64}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %#x, want %#x", i, uint64(got[i]), uint64(want[i]))
		}
	}
}
