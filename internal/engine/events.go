package engine

import (
	"context"
	"fmt"
)

// EventKind classifies execution events.
type EventKind int

// Execution event kinds, in rough lifecycle order.
const (
	// RunStarted: a simulation left the queue and began executing.
	RunStarted EventKind = iota
	// RunProgress: a running simulation processed Event.Records records.
	RunProgress
	// RunCached: a run was served from the memoization layer or the
	// persistent store without simulating.
	RunCached
	// RunFinished: a simulation completed and its result was recorded.
	RunFinished
	// RunFailed: a run returned an error (including cancellation of a
	// run that had already started).
	RunFailed
	// RunSkipped: a run was cancelled before it ever started; the grid
	// records no result for it and the store is untouched.
	RunSkipped
	// GridDone: the whole plan finished (successfully or not). The event
	// carries the Grid and the execution error.
	GridDone
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case RunStarted:
		return "run-started"
	case RunProgress:
		return "run-progress"
	case RunCached:
		return "run-cached"
	case RunFinished:
		return "run-finished"
	case RunFailed:
		return "run-failed"
	case RunSkipped:
		return "run-skipped"
	case GridDone:
		return "grid-done"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one step of a plan's execution, streamed to the sink attached
// to the execution context (WithEventSink) or to a Stream channel.
type Event struct {
	Kind EventKind
	// Plan is the executing plan's name (empty for bare Engine.Run calls).
	Plan string
	// Workload and Variant locate the cell; a deduplicated run serving
	// several cells reports the first cell it was declared under.
	Workload string
	Variant  string
	// Key is the run's content address in the store.
	Key string
	// Records is the running record count (RunProgress only).
	Records uint64
	// Done and Total count settled vs all runs of the plan, so a consumer
	// can render grid progress without tracking state itself.
	Done, Total int
	// Err is set on RunFailed and on GridDone when execution failed.
	Err error
	// Grid carries the execution outcome (GridDone only).
	Grid *Grid
}

// sinkContextKey addresses the event sink attached to a context.
type sinkContextKey struct{}

// WithEventSink returns a context that delivers execution events to fn.
// Every Engine call that executes work under the returned context — Run,
// Execute, and anything layered on them (exp figure builders, smsd jobs)
// — reports its lifecycle through fn. The sink is called synchronously
// from worker goroutines, possibly concurrently: it must be
// goroutine-safe and fast (a slow sink stalls the simulation it
// observes).
func WithEventSink(ctx context.Context, fn func(Event)) context.Context {
	return context.WithValue(ctx, sinkContextKey{}, fn)
}

// eventSink extracts the sink from ctx; the returned function is never
// nil (a no-op stands in), so call sites emit unconditionally.
func eventSink(ctx context.Context) func(Event) {
	if fn, ok := ctx.Value(sinkContextKey{}).(func(Event)); ok && fn != nil {
		return fn
	}
	return func(Event) {}
}

// Stream executes the plan in the background and returns a channel
// carrying every execution event in order, ending with a GridDone event
// (whose Grid and Err fields hold the outcome) followed by a close. The
// caller should drain the channel; cancel ctx to abandon the execution
// early. A consumer that stops reading never wedges the engine: once
// ctx is cancelled, undeliverable events (including the final GridDone)
// are dropped and the channel still closes promptly — the close, not
// GridDone, is the authoritative end-of-stream signal.
func (e *Engine) Stream(ctx context.Context, plan Plan) <-chan Event {
	ch := make(chan Event, 64)
	ctx = WithEventSink(ctx, func(ev Event) {
		select {
		case ch <- ev:
		default:
			// Buffer full: a slow or abandoned consumer. Keep ordering by
			// blocking, but never outlive the execution context.
			select {
			case ch <- ev:
			case <-ctx.Done():
			}
		}
	})
	go func() {
		defer close(ch)
		// The outcome travels in the GridDone event Execute emits.
		_, _ = e.Execute(ctx, plan)
	}()
	return ch
}
