package workload

import (
	"math/rand"

	"repro/internal/trace"
)

// Web workloads model SPECweb99 on Apache and Zeus (Table 1): thousands of
// concurrent connections, each parsing request headers and assembling
// responses in fixed-layout per-connection buffers, reading file content
// from a shared, skewed file cache, and writing into recycled socket/packet
// buffers.
//
// Structural properties reproduced:
//   - packet headers and trailers have "arbitrarily complex but fixed
//     structure" (paper Fig. 1 discussion) — per-connection buffer ops have
//     stable sparse footprints keyed by the protocol-handling PCs;
//   - connection handling interleaves heavily (16K connections in the
//     paper), keeping many generations live;
//   - the file cache is shared and hot (revisited: address indexing also
//     works), while connection buffers recycle through a pool, so their
//     regions reappear under different requests;
//   - mostly reads, with response/socket writes.

const (
	webWorkloadApache = iota + 20
	webWorkloadZeus
)

const (
	webOpReqParse = iota + 1
	webOpRespHdr
	webOpFileRead
	webOpSockWrite
	webOpConnState
)

type webParams struct {
	workloadID  int
	connPool    int // recycled connection-buffer regions per CPU
	filePages   int // shared file-cache pages
	fileHotProb float64
	fileHotFrac float64
	fileRun     [2]int // min/max blocks read per file-cache visit
	sockPool    int    // recycled socket-buffer pages per CPU
	actors      int
	switchProb  float64
	instrPerAcc uint64
}

func apacheParams(cfg Config) webParams {
	return webParams{
		workloadID: webWorkloadApache,
		connPool:   96,
		filePages:  cfg.scaled(8192, 128),
		// The popular-file set is several times the L2 capacity: web
		// caches churn, so even popular content misses off-chip.
		fileHotProb: 0.6,
		fileHotFrac: 0.25,
		fileRun:     [2]int{6, 24},
		sockPool:    64,
		actors:      10,
		switchProb:  0.6,
		instrPerAcc: 3,
	}
}

func zeusParams(cfg Config) webParams {
	p := apacheParams(cfg)
	p.workloadID = webWorkloadZeus
	// Zeus's event-driven model: fewer worker contexts, tighter loops,
	// slightly denser file transfers.
	p.actors = 6
	p.switchProb = 0.45
	p.fileRun = [2]int{8, 28}
	p.instrPerAcc = 3
	return p
}

func init() {
	register(Workload{
		Name:        "web-apache",
		Group:       GroupWeb,
		Description: "SPECweb99-like serving on an Apache-flavoured worker model: request parse, shared file cache reads, socket writes",
		Make:        func(cfg Config) trace.Source { return newWeb(cfg, apacheParams(cfg)) },
	})
	register(Workload{
		Name:        "web-zeus",
		Group:       GroupWeb,
		Description: "SPECweb99-like serving with Zeus-flavoured event-loop parameters",
		Make:        func(cfg Config) trace.Source { return newWeb(cfg, zeusParams(cfg)) },
	})
}

func newWeb(cfg Config, p webParams) trace.BatchSource {
	cfg = cfg.normalized()
	conns := structBase(p.workloadID, 0) // per-CPU connection buffer pools
	files := structBase(p.workloadID, 1) // shared file cache
	socks := structBase(p.workloadID, 2) // per-CPU socket buffer pools
	state := structBase(p.workloadID, 3) // per-CPU connection state tables

	return newEngine(engineConfig{
		cfg:            cfg,
		actorsPerCPU:   p.actors,
		switchProb:     p.switchProb,
		instrPerAccess: p.instrPerAcc,
		newActor: func(cpu, idx int, rng *rand.Rand) opFunc {
			connCursor := idx // rotates through the CPU's connection pool
			sockCursor := idx
			return func(r *rand.Rand, buf []access) []access {
				// One request lifecycle per op, in protocol order.
				connPage := cpu*p.connPool + connCursor
				connCursor = (connCursor + p.actors) % p.connPool

				// 1. Parse request headers: fixed sparse layout at the
				// front of the connection buffer.
				for step, blk := range []int{0, 1, 2} {
					buf = append(buf, access{
						pc:   pcSite(p.workloadID, webOpReqParse, step),
						addr: pageAddr(conns, connPage, blk),
					})
				}
				// Connection state lookup (small hot table).
				buf = append(buf, access{
					pc:   pcSite(p.workloadID, webOpConnState, 0),
					addr: pageAddr(state, cpu, r.Intn(16)),
				})

				// 2. Compose response headers mid-buffer (writes), and
				// touch the trailer block.
				for step, blk := range []int{16, 17} {
					buf = append(buf, access{
						pc:    pcSite(p.workloadID, webOpRespHdr, step),
						addr:  pageAddr(conns, connPage, blk),
						write: true,
					})
				}
				buf = append(buf, access{
					pc:   pcSite(p.workloadID, webOpRespHdr, 2),
					addr: pageAddr(conns, connPage, pageBlocks-1),
				})

				// 3. Assemble the response from the shared file cache.
				// Responses are built from several non-contiguous chunks
				// (content headers, body pieces, chunk metadata) spread
				// over different cache pages. Each chunk is a spatially
				// correlated footprint inside one region — SMS's unit of
				// prediction — while the per-PC delta stream alternates
				// small steps with inter-page jumps whose pairings
				// change per request, which is what defeats GHB's delta
				// correlation on web servers (§4.6).
				total := p.fileRun[0] + r.Intn(p.fileRun[1]-p.fileRun[0]+1)
				read := 0
				for read < total {
					filePage := zipfPick(r, p.filePages, p.fileHotProb, p.fileHotFrac)
					chunk := 2 + r.Intn(3)
					blk := r.Intn(4)
					for b := 0; b < chunk && blk < pageBlocks && read < total; b++ {
						buf = append(buf, access{
							pc:   pcSite(p.workloadID, webOpFileRead, 0),
							addr: pageAddr(files, filePage, blk),
						})
						read++
						switch x := r.Intn(8); {
						case x < 4:
							blk++
						case x < 7:
							blk += 2
						default:
							blk += 3
						}
					}
				}

				// 4. Write the response into a recycled socket buffer.
				sockPage := cpu*p.sockPool + sockCursor
				sockCursor = (sockCursor + p.actors) % p.sockPool
				for b := 0; b < 4+r.Intn(6); b++ {
					buf = append(buf, access{
						pc:    pcSite(p.workloadID, webOpSockWrite, 0),
						addr:  pageAddr(socks, sockPage, b),
						write: true,
					})
				}
				return buf
			}
		},
	})
}
