#!/usr/bin/env sh
# Smoke test for the smsd async job API: start the daemon, submit a job
# and poll it to completion, then cancel a second (long) one and check it
# settles as cancelled. Run from the repository root; needs curl.
set -eu

BIN=${BIN:-./smsd-smoke-bin}
PORT_FAST=${PORT_FAST:-18344}
PORT_SLOW=${PORT_SLOW:-18345}

say() { echo "smoke: $*"; }
fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/smsd

FAST_PID=""
SLOW_PID=""
TMP=""
cleanup() {
    [ -n "$FAST_PID" ] && kill "$FAST_PID" 2>/dev/null || true
    [ -n "$SLOW_PID" ] && kill "$SLOW_PID" 2>/dev/null || true
    rm -f "$BIN"
    [ -n "$TMP" ] && rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# json_field FILE KEY → the first "KEY": "value" in the (indented) JSON.
json_field() {
    sed -n "s/^.*\"$2\": \"\([^\"]*\)\".*$/\1/p" "$1" | head -n 1
}

wait_healthy() {
    i=0
    while ! curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "daemon on :$1 never became healthy"
        sleep 0.1
    done
}

TMP=$(mktemp -d)

# --- Job to completion, against a fast daemon ------------------------------
"$BIN" -addr "127.0.0.1:$PORT_FAST" -cpus 1 -length 120000 >"$TMP/fast.log" 2>&1 &
FAST_PID=$!
wait_healthy "$PORT_FAST"

curl -fsS -X POST "http://127.0.0.1:$PORT_FAST/v1/runs" \
    -d '{"workload":"sparse","prefetcher":"sms"}' >"$TMP/submit.json"
JOB=$(json_field "$TMP/submit.json" id)
[ -n "$JOB" ] || fail "no job id in submit response: $(cat "$TMP/submit.json")"
say "submitted job $JOB"

i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_FAST/v1/jobs/$JOB" >"$TMP/poll.json"
    STATE=$(json_field "$TMP/poll.json" state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "job settled as $STATE: $(cat "$TMP/poll.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "job stuck in state $STATE"
    sleep 0.2
done
grep -q '"workload": "sparse"' "$TMP/poll.json" || fail "done job carries no result"
say "job $JOB completed with a result"

# --- Cancellation, against a daemon with a very long trace -----------------
"$BIN" -addr "127.0.0.1:$PORT_SLOW" -cpus 1 -length 200000000 >"$TMP/slow.log" 2>&1 &
SLOW_PID=$!
wait_healthy "$PORT_SLOW"

curl -fsS -X POST "http://127.0.0.1:$PORT_SLOW/v1/runs" \
    -d '{"workload":"ocean","prefetcher":"sms"}' >"$TMP/submit2.json"
JOB2=$(json_field "$TMP/submit2.json" id)
[ -n "$JOB2" ] || fail "no job id in second submit"
say "submitted long job $JOB2, cancelling it"

curl -fsS -X DELETE "http://127.0.0.1:$PORT_SLOW/v1/jobs/$JOB2" >/dev/null
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_SLOW/v1/jobs/$JOB2" >"$TMP/poll2.json"
    STATE=$(json_field "$TMP/poll2.json" state)
    [ "$STATE" = "cancelled" ] && break
    [ "$STATE" = "done" ] || [ "$STATE" = "failed" ] && fail "long job settled as $STATE instead of cancelled"
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "cancelled job stuck in state $STATE"
    sleep 0.1
done
say "job $JOB2 settled as cancelled"

curl -fsS "http://127.0.0.1:$PORT_SLOW/metrics" >"$TMP/metrics.txt"
grep -q '^smsd_jobs_cancelled_total 1$' "$TMP/metrics.txt" ||
    fail "metrics do not count the cancellation"

say "PASS"
