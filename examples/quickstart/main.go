// Quickstart: build a Spatial Memory Streaming engine, train it on a tiny
// hand-written access sequence (the paper's Figure 2 walkthrough), and
// watch it predict the pattern for a region it has never seen.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
)

func main() {
	// 64 B cache blocks, 512 B spatial regions (8 blocks per region) so
	// the patterns are easy to read.
	geo, err := mem.NewGeometry(64, 512)
	if err != nil {
		log.Fatal(err)
	}
	sms, err := core.New(core.Config{
		Geometry: geo,
		Index:    core.IndexPCOffset,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine:", sms)

	// A code site that always touches a structure the same way: a header
	// block, a field two blocks in, and a trailer. Think of the paper's
	// database page: log serial number, slot index, tuple.
	const pc = 0x400100
	regionA := mem.Addr(0x10000)

	fmt.Println("\n-- training on region A --")
	for _, off := range []int{0, 2, 7} {
		addr := geo.BlockOfRegion(regionA, off)
		sms.Access(pc+uint64(4*off), addr)
		fmt.Printf("access block %d of region A (%#x)\n", off, uint64(addr))
	}
	// The generation ends when an accessed block leaves the cache; the
	// learned pattern moves to the pattern history table.
	sms.BlockRemoved(geo.BlockOfRegion(regionA, 0))
	st := sms.Stats()
	fmt.Printf("generation ended: %d pattern(s) learned\n", st.PatternsLearned)

	// A brand-new region, never accessed before. The same code touches
	// its first block — the trigger access — and SMS predicts the rest.
	regionB := mem.Addr(0x20000)
	fmt.Println("\n-- trigger access on unseen region B --")
	sms.Access(pc, geo.BlockOfRegion(regionB, 0))
	fmt.Printf("active prediction registers: %d\n", sms.ActiveStreams())

	fmt.Println("stream requests (blocks SMS fetches ahead of demand):")
	for _, addr := range sms.NextStreamRequests(16) {
		fmt.Printf("  stream %#x (block %d of region B)\n", uint64(addr), geo.RegionOffset(addr))
	}

	fmt.Println("\nThe trigger block itself is not streamed (the demand access")
	fmt.Println("already fetched it); blocks 2 and 7 are — the learned pattern.")
}
