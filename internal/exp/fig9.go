package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sectored"
	"repro/internal/sim"
)

// Fig9Sizes are the PHT entry counts swept by Figure 9 (0 = unbounded).
var Fig9Sizes = []int{256, 512, 1024, 2048, 4096, 8192, 16384, 0}

// fig9Structures are the two training structures the figure contrasts.
var fig9Structures = []TrainingStructure{TrainLS, TrainAGT}

// Fig9Row is one (group, training structure, PHT size) coverage point.
type Fig9Row struct {
	Group    string
	Train    TrainingStructure // LS or AGT
	Entries  int
	Coverage float64
}

// Fig9Result is the Figure 9 dataset.
type Fig9Result struct {
	Rows []Fig9Row
}

func fig9Key(st TrainingStructure, entries int) string {
	return fmt.Sprintf("%s/%s", st, PHTSizeLabel(entries))
}

func fig9Config(o Options, st TrainingStructure, entries int) sim.Config {
	phtEntries := entries
	if entries == 0 {
		phtEntries = -1
	}
	if st == TrainLS {
		return sim.Config{
			Coherence:      o.MemorySystem(64),
			PrefetcherName: "ls",
			LS:             sectored.Config{PHTEntries: phtEntries, PHTAssoc: 16},
		}
	}
	return sim.Config{
		Coherence:      o.MemorySystem(64),
		PrefetcherName: "sms",
		SMS:            core.Config{PHTEntries: phtEntries, PHTAssoc: 16},
	}
}

// Fig9Plan declares the Figure 9 grid: the PHT size sweep under LS and
// AGT training, plus the shared baseline.
func Fig9Plan(o Options) engine.Plan {
	p := basePlan("fig9", o)
	for _, st := range fig9Structures {
		for _, entries := range Fig9Sizes {
			p = p.WithVariant(fig9Key(st, entries), fig9Config(o, st, entries))
		}
	}
	return p
}

// Fig9 reproduces Figure 9: PHT storage sensitivity of LS versus AGT
// training. Fragmented LS generations create more (sparser) patterns, so
// LS needs roughly twice the PHT storage for the coverage AGT achieves —
// most visibly for OLTP, which interleaves the most.
func Fig9(ctx context.Context, s *Session) (*Fig9Result, error) {
	names := WorkloadNames()
	grid, err := s.Execute(ctx, Fig9Plan(s.Options()))
	if err != nil {
		return nil, err
	}

	covs := make(map[string]map[TrainingStructure][]float64, len(names))
	for _, name := range names {
		base := grid.Baseline(name)
		cs := map[TrainingStructure][]float64{}
		for _, st := range fig9Structures {
			cs[st] = make([]float64, len(Fig9Sizes))
			for zi, entries := range Fig9Sizes {
				cs[st][zi] = grid.Result(name, fig9Key(st, entries)).L1Coverage(base).Covered
			}
		}
		covs[name] = cs
	}

	res := &Fig9Result{}
	for _, g := range GroupNames() {
		for _, st := range fig9Structures {
			for zi, entries := range Fig9Sizes {
				res.Rows = append(res.Rows, Fig9Row{
					Group:   g,
					Train:   st,
					Entries: entries,
					Coverage: meanOver(names, func(n string) float64 {
						return covs[n][st][zi]
					})[g],
				})
			}
		}
	}
	return res, nil
}

// Render formats the dataset as the Figure 9 series.
func (r *Fig9Result) Render() string {
	t := NewTable("Figure 9: PHT storage sensitivity (LS vs AGT training)",
		"group", "training", "PHT entries", "coverage")
	for _, row := range r.Rows {
		t.AddRow(row.Group, string(row.Train), PHTSizeLabel(row.Entries), Pct(row.Coverage))
	}
	return t.Render()
}
