// Package cluster turns smsd into a sharded grid executor: a
// coordinator daemon scatters a Plan's run cells across registered
// worker daemons, gathers their sim.Results by store key, and keeps the
// grid settling through worker failure.
//
// The unit of distribution is the engine's run cell (engine.RunSpec): a
// resolved (workload, config) pair addressed by the SHA-256 of its
// canonical identity. Cells are content-addressed, deterministic and
// idempotent, which makes the distributed protocol almost embarrassingly
// simple — a cell's key either has a result or it doesn't, any node can
// compute it, and computing it twice yields byte-identical JSON — so
// there is no invalidation, no consensus, and no result versioning.
//
// # Topology
//
//	coordinator (smsd -cluster)            workers (smsd -worker -coordinator URL)
//	  engine ── CellScheduler = Coordinator ──POST /v1/cells──▶ engine (LocalScheduler)
//	  ▲ registration/heartbeats ◀──POST /v1/cluster/workers────┘
//	  └─ artifact sync: GET/PUT /v1/store/{results,traces}/{key}
//
// The Coordinator implements engine.CellScheduler: the coordinator's
// engine still owns plan compilation, run-level memoization and store
// write-through; only cell placement is delegated. Workers execute cells
// through their own full smsd job machinery (bounded pool, singleflight
// dedup, their own store), so a worker that has already seen a cell —
// in any earlier grid, from any coordinator — answers from cache.
//
// # Scheduling
//
// Cells are scattered with workload affinity (rendezvous hashing on
// worker id × workload name), so the variants of one workload land on
// one worker and share its trace memo: a grid of N variants over one
// workload generates the trace once per cluster, not once per cell.
// Each worker has a bounded in-flight window (its registered capacity);
// overflow queues on the coordinator per worker. A worker whose queue
// drains and whose window has room steals the tail of the longest other
// queue, so a fast node drains a slow node's backlog instead of idling.
// A worker never steals a cell it previously failed: a fast-failing
// node must not yank its own retries back and burn the attempt budget.
//
// # Failure model
//
// Per-cell failures retry with jittered exponential backoff on another
// worker (bounded attempts). Worker death is detected two ways: an
// in-flight HTTP call failing fast (connection refused/reset), and
// missed heartbeats for liveness of idle/queued capacity. A dead
// worker's queued and in-flight cells are re-scattered to the survivors;
// when no workers remain, cells fall back to the coordinator's own
// LocalScheduler, so a cluster degrades to a single node instead of
// wedging. A worker whose options disagree with the coordinator's (cell
// key mismatch, HTTP 409) is quarantined — its results would be wrong
// for this grid, not merely late. Results only ever reach a store after
// a run completes, so failover can never publish a partial Result.
//
// # Artifact sync
//
// Stores synchronize by content address only. Results travel inside the
// cell response and are written through by the coordinator's engine;
// trace artifacts a worker generates are pulled by the coordinator in
// the background (GET /v1/store/traces/{key}), and a worker missing an
// artifact the coordinator already has pulls it before generating. A
// transfer is validated against the v2 format before publishing, and a
// key is never overwritten with different content because the key *is*
// the content's identity.
package cluster
