// Package cache implements the set-associative cache model used for every
// level of the simulated hierarchy. The model is functional (hit/miss and
// content tracking, no timing): timing is layered on by package timing, and
// coherence by package coherence.
//
// The block size is configurable because the paper's Figure 4 sweeps block
// sizes from 64 B to 8 kB while holding capacity fixed. Lines carry a
// prefetched/used pair of flags so the simulator can account coverage
// (prefetched lines that are hit before leaving the cache) and
// overpredictions (prefetched lines evicted or invalidated unused).
//
// Lines are stored struct-of-arrays: a packed tag word per way (tag+1,
// with 0 meaning invalid) and one packed metadata word per way holding
// the LRU stamp in the high bits and the line flags in the low byte. The
// hit scan — the single hottest loop in the simulator — therefore walks
// eight bytes per way, and a fill writes exactly two words. Because the
// stamp is taken from a counter pre-incremented on every install, a live
// way's metadata is never zero, and comparing whole metadata words orders
// ways by recency (stamps dominate the flag byte).
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Config describes one cache.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// Assoc is the set associativity.
	Assoc int
	// BlockSize is the line size in bytes (a power of two).
	BlockSize int
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache: block size %d not a positive power of two", c.BlockSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d not positive", c.Assoc)
	}
	if c.Size <= 0 || c.Size%(c.BlockSize*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not a multiple of assoc*block (%d)", c.Size, c.BlockSize*c.Assoc)
	}
	sets := c.Size / (c.BlockSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.Size / (c.BlockSize * c.Assoc) }

// Per-line flag bits (parallel to the tag array).
const (
	fDirty      uint8 = 1 << iota // modified data
	fPrefetched                   // brought in by a stream request
	fUsed                         // demand-hit at least once since fill
	fOffChip                      // prefetch fill was sourced from off-chip
)

// Cache is a set-associative, LRU-replacement cache.
type Cache struct {
	cfg       Config
	blockBits uint
	setBits   uint // log2(set count), precomputed for index/addrOf
	setMask   uint64
	assoc     int

	// Way state, indexed by set*assoc+way. tags holds tag+1 (0 =
	// invalid), so the hit scan needs no separate valid flag; meta holds
	// clock<<8 | flags (0 = invalid way).
	tags []uint64
	meta []uint64

	clock uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	n := nsets * cfg.Assoc
	return &Cache{
		cfg:       cfg,
		blockBits: uint(bits.TrailingZeros64(uint64(cfg.BlockSize))),
		setBits:   uint(bits.TrailingZeros64(uint64(nsets))),
		setMask:   uint64(nsets - 1),
		assoc:     cfg.Assoc,
		tags:      make([]uint64, n),
		meta:      make([]uint64, n),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr truncates an address to this cache's block base.
func (c *Cache) BlockAddr(a mem.Addr) mem.Addr {
	return a &^ (mem.Addr(c.cfg.BlockSize) - 1)
}

func (c *Cache) index(a mem.Addr) (set uint64, tag uint64) {
	bn := uint64(a) >> c.blockBits
	return bn & c.setMask, bn >> c.setBits
}

// Eviction describes a line displaced by a fill or removed by an
// invalidation.
type Eviction struct {
	// Addr is the base address of the displaced block.
	Addr mem.Addr
	// Dirty reports whether the block held modified data.
	Dirty bool
	// PrefetchedUnused reports whether the block was streamed in and
	// never demand-hit: an overprediction (§4.2's bandwidth-wasting
	// category).
	PrefetchedUnused bool
}

// Result describes the outcome of an access or fill.
type Result struct {
	// Hit reports whether the block was present.
	Hit bool
	// PrefetchHit reports whether this is the first demand hit on a
	// streamed block — the event that converts a would-be miss into
	// prefetcher coverage.
	PrefetchHit bool
	// PrefetchOffChip refines PrefetchHit: the stream fill that brought
	// the block in was sourced from off-chip memory, so the covered
	// would-be miss was an off-chip miss.
	PrefetchOffChip bool
	// Evicted is valid when a fill displaced a victim line.
	Evicted bool
	// Victim is the displaced line when Evicted.
	Victim Eviction
}

// Access performs a demand access (read or write). On a miss the block is
// filled, possibly displacing a victim.
//
// The hit scan and the victim search share one pass over the set: the
// victim is the first invalid way, else the lowest-LRU way (ties to the
// lowest index).
func (c *Cache) Access(a mem.Addr, write bool) Result {
	set, tag := c.index(a)
	c.clock++
	base := int(set) * c.assoc
	k := tag + 1
	if c.assoc == 2 {
		// Two-way fast path (the paper's L1): both ways in registers,
		// same victim policy as the general loop below.
		t0, t1 := c.tags[base], c.tags[base+1]
		if t0 == k {
			return c.accessHit(base, write)
		}
		if t1 == k {
			return c.accessHit(base+1, write)
		}
		victim := base
		if t0 != 0 && (t1 == 0 || c.meta[base+1] < c.meta[base]) {
			victim = base + 1
		}
		var newFlags uint8
		if write {
			newFlags = fDirty
		}
		return c.fillAt(victim, set, k, newFlags)
	}
	tags := c.tags[base : base+c.assoc]
	firstInvalid := -1
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i, t := range tags {
		if t == 0 {
			if firstInvalid < 0 {
				firstInvalid = i
			}
			continue
		}
		if t == k {
			return c.accessHit(base+i, write)
		}
		if m := c.meta[base+i]; m < oldest {
			oldest = m
			victim = i
		}
	}
	if firstInvalid >= 0 {
		victim = firstInvalid
	}
	var newFlags uint8
	if write {
		newFlags = fDirty
	}
	return c.fillAt(base+victim, set, k, newFlags)
}

// accessHit applies a demand hit to way slot j: first-use prefetch
// accounting, used/dirty flags, LRU touch.
func (c *Cache) accessHit(j int, write bool) Result {
	f := uint8(c.meta[j])
	res := Result{Hit: true}
	if f&(fPrefetched|fUsed) == fPrefetched {
		res.PrefetchHit = true
		res.PrefetchOffChip = f&fOffChip != 0
	}
	f |= fUsed
	if write {
		f |= fDirty
	}
	c.meta[j] = c.clock<<8 | uint64(f)
	return res
}

// Probe reports whether the block is present without updating LRU or flags.
func (c *Cache) Probe(a mem.Addr) bool {
	set, tag := c.index(a)
	base := int(set) * c.assoc
	k := tag + 1
	for _, t := range c.tags[base : base+c.assoc] {
		if t == k {
			return true
		}
	}
	return false
}

// ProbeVictim is Probe that also reports the way a subsequent fill of a
// would use (first invalid way, else lowest LRU), so a stream fill whose
// parameters depend on intermediate work (the L2 outcome) needs only one
// scan. Like Probe it leaves LRU state and the clock untouched; pass the
// way to FillAtWay only if no other operation touched this cache in
// between.
func (c *Cache) ProbeVictim(a mem.Addr) (hit bool, way int) {
	set, tag := c.index(a)
	base := int(set) * c.assoc
	k := tag + 1
	firstInvalid := -1
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i, t := range c.tags[base : base+c.assoc] {
		if t == 0 {
			if firstInvalid < 0 {
				firstInvalid = i
			}
			continue
		}
		if t == k {
			return true, 0
		}
		if m := c.meta[base+i]; m < oldest {
			oldest = m
			victim = i
		}
	}
	if firstInvalid >= 0 {
		victim = firstInvalid
	}
	return false, victim
}

// FillAtWay installs a as a stream fill into the way chosen by a
// preceding ProbeVictim, completing the split fill without rescanning.
func (c *Cache) FillAtWay(a mem.Addr, way int, offChip bool) Result {
	set, tag := c.index(a)
	c.clock++
	newFlags := fPrefetched
	if offChip {
		newFlags |= fOffChip
	}
	return c.fillAt(int(set)*c.assoc+way, set, tag+1, newFlags)
}

// Fill inserts a block as a stream/prefetch fill; offChip records whether
// the fill data came from off-chip memory (used for off-chip coverage
// accounting). If the block is already present the call is a no-op
// (Hit=true) and the line keeps its flags — callers can therefore use
// Fill's Hit result instead of a separate Probe, saving a set scan.
func (c *Cache) Fill(a mem.Addr, offChip bool) Result {
	set, tag := c.index(a)
	c.clock++
	base := int(set) * c.assoc
	tags := c.tags[base : base+c.assoc]
	k := tag + 1
	firstInvalid := -1
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i, t := range tags {
		if t == 0 {
			if firstInvalid < 0 {
				firstInvalid = i
			}
			continue
		}
		if t == k {
			return Result{Hit: true}
		}
		if m := c.meta[base+i]; m < oldest {
			oldest = m
			victim = i
		}
	}
	if firstInvalid >= 0 {
		victim = firstInvalid
	}
	newFlags := fPrefetched
	if offChip {
		newFlags |= fOffChip
	}
	return c.fillAt(base+victim, set, k, newFlags)
}

// fillAt installs packed tag k into way slot j (= set*assoc+way),
// reporting the displaced line if it was valid. Callers pick the victim
// during their hit scan (first invalid way, else lowest LRU).
func (c *Cache) fillAt(j int, set, k uint64, newFlags uint8) Result {
	res := Result{}
	if old := c.tags[j]; old != 0 {
		f := uint8(c.meta[j])
		res.Evicted = true
		res.Victim = Eviction{
			Addr:             c.addrOf(set, old-1),
			Dirty:            f&fDirty != 0,
			PrefetchedUnused: f&(fPrefetched|fUsed) == fPrefetched,
		}
	}
	c.tags[j] = k
	c.meta[j] = c.clock<<8 | uint64(newFlags)
	return res
}

func (c *Cache) addrOf(set, tag uint64) mem.Addr {
	return mem.Addr((tag<<c.setBits | set) << c.blockBits)
}

// MarkUsed marks the block containing a as demand-used if present. The
// coherent hierarchy uses it to propagate first-use information to lower
// levels: when a streamed block is used from L1, the L2 copy of the same
// stream fill must not later be scored as an overprediction.
func (c *Cache) MarkUsed(a mem.Addr) {
	set, tag := c.index(a)
	base := int(set) * c.assoc
	k := tag + 1
	for i, t := range c.tags[base : base+c.assoc] {
		if t == k {
			c.meta[base+i] |= uint64(fUsed)
			return
		}
	}
}

// InvalidateResult describes the outcome of an invalidation.
type InvalidateResult struct {
	// Present reports whether the block was in the cache.
	Present bool
	// WasDirty reports whether the invalidated copy was modified.
	WasDirty bool
	// PrefetchedUnused reports whether a streamed, never-used block was
	// destroyed (an overprediction).
	PrefetchedUnused bool
}

// Invalidate removes the block containing a, if present.
func (c *Cache) Invalidate(a mem.Addr) InvalidateResult {
	set, tag := c.index(a)
	base := int(set) * c.assoc
	k := tag + 1
	for i, t := range c.tags[base : base+c.assoc] {
		if t == k {
			j := base + i
			f := uint8(c.meta[j])
			res := InvalidateResult{
				Present:          true,
				WasDirty:         f&fDirty != 0,
				PrefetchedUnused: f&(fPrefetched|fUsed) == fPrefetched,
			}
			c.tags[j] = 0
			c.meta[j] = 0
			return res
		}
	}
	return InvalidateResult{}
}

// Flush empties the cache, returning the number of lines dropped.
func (c *Cache) Flush() int {
	n := 0
	for j := range c.tags {
		if c.tags[j] != 0 {
			n++
			c.tags[j] = 0
			c.meta[j] = 0
		}
	}
	return n
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}
