// Package trace defines the canonical memory-access record produced by the
// workload generators and consumed by the simulator, together with binary
// trace file I/O and trace-stream utilities (windowing, warm-up splits,
// sampling).
//
// The paper's trace methodology (§4) collects in-order memory access traces
// with a fixed IPC of 1.0 and uses half of each trace for predictor warm-up.
// The same conventions apply here: each Record carries the instruction
// sequence number ("time" at IPC 1.0), the issuing CPU, the program counter
// of the access, the byte address, and whether it is a read or a write.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one memory access.
type Record struct {
	// Seq is the global instruction sequence number at which the access
	// occurs (the trace clock; IPC 1.0 in the trace-based methodology).
	Seq uint64
	// PC is the program counter of the load/store instruction.
	PC uint64
	// Addr is the accessed byte address.
	Addr mem.Addr
	// CPU is the issuing processor, in [0, NumCPUs).
	CPU uint8
	// Kind is Read or Write.
	Kind Kind
}

// IsWrite reports whether the record is a store.
func (r Record) IsWrite() bool { return r.Kind == Write }

// String implements fmt.Stringer.
func (r Record) String() string {
	return fmt.Sprintf("seq=%d cpu=%d pc=%#x %s %#x", r.Seq, r.CPU, r.PC, r.Kind, uint64(r.Addr))
}

// Source is a stream of access records. Next returns the next record and
// true, or a zero Record and false when the stream is exhausted.
//
// Sources are single-use iterators; generators in package workload return a
// fresh Source per call so traces are reproducible.
type Source interface {
	Next() (Record, bool)
}

// BatchSource is a Source that can fill whole record batches in one call,
// amortizing interface dispatch over len(dst) records. NextBatch writes up
// to len(dst) records into dst and returns how many were written; it
// returns 0 only when the stream is exhausted (or dst is empty). A
// BatchSource must yield exactly the same record sequence through Next and
// NextBatch, in any interleaving.
type BatchSource interface {
	Source
	NextBatch(dst []Record) int
}

// Batched adapts src to a BatchSource. Sources that already batch
// natively (the workload generators, SliceSource, Reader, Limit) are
// returned unchanged; anything else is wrapped in a Next loop, which
// still hoists the per-record interface dispatch out of consumer inner
// loops.
func Batched(src Source) BatchSource {
	if b, ok := src.(BatchSource); ok {
		return b
	}
	return &batchAdapter{src: src}
}

type batchAdapter struct{ src Source }

// Next implements Source.
func (b *batchAdapter) Next() (Record, bool) { return b.src.Next() }

// NextBatch implements BatchSource.
func (b *batchAdapter) NextBatch(dst []Record) int {
	n := 0
	for n < len(dst) {
		r, ok := b.src.Next()
		if !ok {
			break
		}
		dst[n] = r
		n++
	}
	return n
}

// Err surfaces the wrapped source's latched decode error, if it has one.
func (b *batchAdapter) Err() error { return sourceErr(b.src) }

// sourceErr returns src's latched decode error when src is an erring
// source (trace.Reader, the v2 readers), else nil. Wrappers (Batched,
// Limit) pass it through so consumers can distinguish clean EOF from a
// truncated or corrupt stream without knowing the concrete source type.
func sourceErr(src Source) error {
	if e, ok := src.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// SliceSource adapts an in-memory record slice to a Source.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource returns a Source yielding recs in order.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.i >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// NextBatch implements BatchSource with a single copy.
func (s *SliceSource) NextBatch(dst []Record) int {
	n := copy(dst, s.recs[s.i:])
	s.i += n
	return n
}

// NextView implements ViewSource: the returned slice aliases the
// underlying records, so replaying an in-memory trace moves no bytes.
func (s *SliceSource) NextView(max int) []Record {
	rest := s.recs[s.i:]
	if len(rest) > max {
		rest = rest[:max]
	}
	s.i += len(rest)
	return rest
}

// Seek implements Seeker: it repositions the source at record index rec,
// clamped to the end of the slice.
func (s *SliceSource) Seek(rec uint64) error {
	if rec > uint64(len(s.recs)) {
		rec = uint64(len(s.recs))
	}
	s.i = int(rec)
	return nil
}

// Records implements Seeker: the total record count.
func (s *SliceSource) Records() uint64 { return uint64(len(s.recs)) }

// Seeker is a Source that can reposition to an absolute record index in
// O(1) decodes and knows its total length: in-memory slices and mmap'd
// v2 traces. Seeking past the end clamps (subsequent reads report
// exhaustion). The sampled simulation mode uses it to skip the cold gap
// between measurement windows instead of streaming through it.
type Seeker interface {
	Source
	Seek(rec uint64) error
	Records() uint64
}

var _ Seeker = (*SliceSource)(nil)

// ViewSource is an optional refinement of BatchSource for sources whose
// records already live in memory: NextView returns up to max records as a
// slice borrowed from the source (valid until the next call), letting
// consumers iterate without copying into their own batch buffer. An
// empty result means exhaustion.
type ViewSource interface {
	Source
	NextView(max int) []Record
}

// Collect drains a Source into a slice, stopping after max records
// (max <= 0 means no limit).
func Collect(src Source, max int) []Record {
	var out []Record
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Limit wraps a Source so it yields at most n records.
func Limit(src Source, n uint64) Source {
	return &limitSource{src: Batched(src), left: n}
}

type limitSource struct {
	src  BatchSource
	left uint64
}

func (l *limitSource) Next() (Record, bool) {
	if l.left == 0 {
		return Record{}, false
	}
	l.left--
	return l.src.Next()
}

// NextBatch implements BatchSource, clamping the batch to the remaining
// budget and batching from the underlying source.
func (l *limitSource) NextBatch(dst []Record) int {
	if l.left == 0 || len(dst) == 0 {
		return 0
	}
	if uint64(len(dst)) > l.left {
		dst = dst[:l.left]
	}
	n := l.src.NextBatch(dst)
	l.left -= uint64(n)
	return n
}

// Err surfaces the wrapped source's latched decode error, if it has one.
func (l *limitSource) Err() error { return sourceErr(l.src) }

// Skip discards n records from src, returning how many were actually
// discarded (fewer if the stream ended early). It is used to implement the
// paper's use-half-the-trace-for-warm-up convention at the consumer side.
func Skip(src Source, n uint64) uint64 {
	var i uint64
	for i = 0; i < n; i++ {
		if _, ok := src.Next(); !ok {
			return i
		}
	}
	return i
}

// Func adapts a closure to a Source.
type Func func() (Record, bool)

// Next implements Source.
func (f Func) Next() (Record, bool) { return f() }

// Concat chains sources one after another.
func Concat(srcs ...Source) Source {
	i := 0
	return Func(func() (Record, bool) {
		for i < len(srcs) {
			if r, ok := srcs[i].Next(); ok {
				return r, true
			}
			i++
		}
		return Record{}, false
	})
}

// ---- Binary trace file format ----
//
// Header: magic "SMST" (4 bytes), version uint16, reserved uint16,
// record count uint64 (0 if unknown at write time and stream is
// length-delimited by EOF).
// Records: fixed 26-byte little-endian encoding:
//   seq uint64 | pc uint64 | addr uint64 | cpu uint8 | kind uint8

const (
	magic   = "SMST"
	version = 1
	recSize = 8 + 8 + 8 + 1 + 1
)

// ErrBadFormat is returned when a trace file fails validation.
var ErrBadFormat = errors.New("trace: bad file format")

// Writer streams records into an io.Writer using the binary trace format.
type Writer struct {
	w     *bufio.Writer
	count uint64
	buf   [recSize]byte
}

// NewWriter writes the trace header and returns a Writer. The header's
// record count is written as zero; readers rely on EOF framing.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:2], version)
	// hdr[2:4] reserved, hdr[4:12] record count (0: unknown).
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	b := tw.buf[:]
	binary.LittleEndian.PutUint64(b[0:8], r.Seq)
	binary.LittleEndian.PutUint64(b[8:16], r.PC)
	binary.LittleEndian.PutUint64(b[16:24], uint64(r.Addr))
	b[24] = r.CPU
	b[25] = uint8(r.Kind)
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes a binary trace stream as a Source. It batches natively:
// NextBatch decodes whole chunks of records per buffered read instead of
// one 26-byte ReadFull per record.
type Reader struct {
	r     *bufio.Reader
	err   error
	buf   [recSize]byte
	chunk []byte // lazily allocated NextBatch read buffer
}

// readerChunkRecords is the number of records NextBatch reads per chunk.
const readerChunkRecords = 512

// NewReader validates the header and returns a streaming Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 4+12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	return &Reader{r: br}, nil
}

// Next implements Source. After the stream ends, Err reports whether it
// ended cleanly or mid-record.
func (tr *Reader) Next() (Record, bool) {
	if tr.err != nil {
		return Record{}, false
	}
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if err != io.EOF {
			tr.err = fmt.Errorf("trace: reading record: %w", err)
		}
		return Record{}, false
	}
	return decodeRecord(tr.buf[:]), true
}

// decodeRecord decodes one fixed-size record from b (len(b) >= recSize).
func decodeRecord(b []byte) Record {
	return Record{
		Seq:  binary.LittleEndian.Uint64(b[0:8]),
		PC:   binary.LittleEndian.Uint64(b[8:16]),
		Addr: mem.Addr(binary.LittleEndian.Uint64(b[16:24])),
		CPU:  b[24],
		Kind: Kind(b[25]),
	}
}

// NextBatch implements BatchSource: records are decoded from chunked
// buffered reads. A stream that ends at a record boundary is a clean EOF
// exactly as with Next; a trailing partial record sets Err.
func (tr *Reader) NextBatch(dst []Record) int {
	total := 0
	for total < len(dst) && tr.err == nil {
		want := len(dst) - total
		if want > readerChunkRecords {
			want = readerChunkRecords
		}
		if tr.chunk == nil {
			tr.chunk = make([]byte, readerChunkRecords*recSize)
		}
		n, err := io.ReadFull(tr.r, tr.chunk[:want*recSize])
		for i := 0; i+recSize <= n; i += recSize {
			dst[total] = decodeRecord(tr.chunk[i:])
			total++
		}
		if err != nil {
			// EOF before any byte, or ErrUnexpectedEOF exactly at a
			// record boundary, is a clean end of stream; a partial
			// trailing record is a format error (as in Next).
			if !(err == io.EOF || (err == io.ErrUnexpectedEOF && n%recSize == 0)) {
				tr.err = fmt.Errorf("trace: reading record: %w", err)
			}
			break
		}
	}
	return total
}

// Err returns the first decoding error encountered, or nil if the stream
// ended cleanly at a record boundary.
func (tr *Reader) Err() error { return tr.err }
