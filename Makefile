# Mirrors .github/workflows/ci.yml: `make ci` runs the same stages the
# CI jobs run (sequentially, on the local toolchain instead of the
# stable/oldstable matrix), so a green `make ci` means a green check.
# `make nightly` mirrors .github/workflows/nightly.yml's deep checks.

GO ?= go

.PHONY: ci nightly fmt vet staticcheck build test test-full test-chaos bench bench-smoke bench-allocs bench-record fuzz-smoke fuzz-nightly smoke smoke-cluster smoke-chaos

ci: fmt vet staticcheck build test fuzz-smoke bench-smoke bench-allocs smoke smoke-cluster smoke-chaos

nightly: test-full test-chaos fuzz-nightly

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck is optional locally (CI installs it); skip with a notice
# when the binary is absent rather than failing offline machines.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

build:
	$(GO) build ./...

# -race covers the concurrent subsystems (engine singleflight/worker
# pool, smsd job API, store, session) — their tests run in -short mode by
# design.
test:
	$(GO) test -short -race ./...

# The full suite includes the figure-scale experiment tests and the
# sampled-vs-exact statistical validation grid (~minutes).
test-full:
	$(GO) test -timeout 50m ./...

# The full crash-point table, repeated: every journal/restart-recovery
# test and the cluster chaos suite under -race, -count=3 to shake out
# timing-dependent survivors the single-shot CI run can miss.
test-chaos:
	$(GO) test -race -count=3 -run 'TestJournal|TestRestart|TestRecovery|TestBreaker|TestStaleSuccess|Blackout' ./internal/server ./internal/cluster

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark (no unit tests — those already ran):
# catches bit-rotted benchmark code and exercises the store hit/miss
# paths without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -short ./...

# Zero-allocation gate: the hot-path benchmarks (record pipeline and
# trace generation) must report 0 B/op and 0 allocs/op at steady state.
bench-allocs:
	./scripts/bench.sh --check

# Record the headline perf numbers (ns/record, MB/s, allocs) as JSON;
# compare against BENCH_baseline.json.
bench-record:
	./scripts/bench.sh BENCH_after.json

# Short fuzz pass over both trace decoders: corrupt/truncated input
# must return wrapped errors (ErrBadFormat, io.ErrUnexpectedEOF) and
# never panic. Go runs one fuzz target per invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReaderV1$$' -fuzztime 5s ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzReaderV2$$' -fuzztime 5s ./internal/trace

# The nightly workflow's longer fuzz pass.
fuzz-nightly:
	$(GO) test -run '^$$' -fuzz '^FuzzReaderV1$$' -fuzztime 60s ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzReaderV2$$' -fuzztime 60s ./internal/trace

# End-to-end daemon smoke: start smsd, submit a job, poll it to
# completion, cancel a second one.
smoke:
	./scripts/smoke_smsd.sh

# Distributed smoke: coordinator + two workers, a figure grid scattered
# across them, one worker SIGKILLed mid-grid; the grid must settle and
# the coordinator's /metrics must stay a valid exposition.
smoke-cluster:
	./scripts/smoke_cluster.sh

# Chaos smoke: a journaled coordinator is SIGKILLed mid-grid and
# restarted against the same -store and -journal; the pre-kill jobs
# must settle done under the same ids and the recovered figure must be
# byte-identical to a single-node reference.
smoke-chaos:
	./scripts/smoke_chaos.sh
