package workload

import (
	"math/rand"

	"repro/internal/mem"
	"repro/internal/trace"
)

// DSS workloads model the four TPC-H queries on DB2 that the paper selects
// following the DBmbench categorization (§4, Table 1): Qry 1 is
// scan-dominated, Qry 2 and Qry 16 are join-dominated, and Qry 17 mixes
// scan and join behaviour.
//
// Structural properties reproduced:
//   - scans stream over enormous fact tables and touch each page exactly
//     once, so address-based prediction indices never see a region twice
//     (the cold-miss story of §2.2/§4.2), while the scan loop's trigger PC
//     repeats millions of times;
//   - scan footprints are dense (most blocks of a region), matching the
//     narrow high-density Fig. 5 profile for DSS;
//   - Qry 1 copies a large amount of data into a temporary table, filling
//     the store buffer with misses (the §4.7 store-buffer-full stall story);
//   - joins probe a hash/index structure with high locality and mostly
//     ordered keys, which is why GHB's delta correlation nearly matches SMS
//     on DSS (§4.6);
//   - interleaving is low: few regions are live at once.

const (
	dssWorkloadQ1 = iota + 10
	dssWorkloadQ2
	dssWorkloadQ16
	dssWorkloadQ17
)

const (
	dssOpScan = iota + 1
	dssOpAgg
	dssOpTempFlush
	dssOpProbe
	dssOpBuild
	dssOpGroup
)

type dssParams struct {
	workloadID int
	// scanFrac is the probability an op is a table-scan page visit;
	// probeFrac a hash/index probe; the remainder are build/group ops.
	scanFrac  float64
	probeFrac float64
	// scanDensity is the probability each block of a scanned region is
	// touched (column subset selection).
	scanDensity float64
	// aggWrites   — writes into the per-CPU aggregation area per scan page.
	aggWrites int
	// tempFlushEvery triggers a dense burst of writes to fresh temp-table
	// pages every N scan pages (Qry 1's store-buffer pressure).
	tempFlushEvery int
	tempFlushLen   int // blocks written per flush burst
	hashPages      int
	probeLocality  float64 // probability the next probe lands near the last
	actors         int
	switchProb     float64
	// instrPerAcc reflects per-tuple computation: DSS queries do
	// substantial aggregation/predicate work between touches.
	instrPerAcc uint64
}

func q1Params(cfg Config) dssParams {
	return dssParams{
		workloadID:     dssWorkloadQ1,
		scanFrac:       0.9,
		probeFrac:      0.0,
		scanDensity:    0.88,
		aggWrites:      3,
		tempFlushEvery: 2,
		tempFlushLen:   96,
		hashPages:      cfg.scaled(128, 16),
		probeLocality:  0.9,
		actors:         2,
		switchProb:     0.2,
		instrPerAcc:    6,
	}
}

func q2Params(cfg Config) dssParams {
	return dssParams{
		workloadID:    dssWorkloadQ2,
		scanFrac:      0.35,
		probeFrac:     0.5,
		scanDensity:   0.8,
		aggWrites:     1,
		hashPages:     cfg.scaled(1536, 64),
		probeLocality: 0.8,
		actors:        3,
		switchProb:    0.3,
		instrPerAcc:   8,
	}
}

func q16Params(cfg Config) dssParams {
	p := q2Params(cfg)
	p.workloadID = dssWorkloadQ16
	p.probeFrac = 0.55
	p.scanFrac = 0.3
	p.hashPages = cfg.scaled(2048, 64)
	p.probeLocality = 0.7
	return p
}

func q17Params(cfg Config) dssParams {
	p := q2Params(cfg)
	p.workloadID = dssWorkloadQ17
	p.scanFrac = 0.55
	p.probeFrac = 0.3
	p.scanDensity = 0.85
	return p
}

func init() {
	mk := func(params func(Config) dssParams) func(Config) trace.Source {
		return func(cfg Config) trace.Source { return newDSS(cfg, params(cfg)) }
	}
	register(Workload{
		Name:        "dss-q1",
		Group:       GroupDSS,
		Description: "TPC-H Q1-like scan-dominated query: dense single-visit table scan with heavy temp-table write bursts",
		Make:        mk(q1Params),
	})
	register(Workload{
		Name:        "dss-q2",
		Group:       GroupDSS,
		Description: "TPC-H Q2-like join-dominated query: scans plus high-locality hash probes",
		Make:        mk(q2Params),
	})
	register(Workload{
		Name:        "dss-q16",
		Group:       GroupDSS,
		Description: "TPC-H Q16-like join-dominated query with a larger, less local probe structure",
		Make:        mk(q16Params),
	})
	register(Workload{
		Name:        "dss-q17",
		Group:       GroupDSS,
		Description: "TPC-H Q17-like balanced scan-join query",
		Make:        mk(q17Params),
	})
}

func newDSS(cfg Config, p dssParams) trace.BatchSource {
	cfg = cfg.normalized()
	fact := structBase(p.workloadID, 0)  // fact table, scanned once
	hash := structBase(p.workloadID, 1)  // join hash/index structure
	temp := structBase(p.workloadID, 2)  // temp table (Qry 1 copies)
	agg := structBase(p.workloadID, 3)   // small per-CPU aggregation area
	build := structBase(p.workloadID, 4) // build-side table

	return newEngine(engineConfig{
		cfg:            cfg,
		actorsPerCPU:   p.actors,
		switchProb:     p.switchProb,
		instrPerAccess: p.instrPerAcc,
		newActor: func(cpu, idx int, rng *rand.Rand) opFunc {
			// Partition the fact table among actors; each cursor advances
			// monotonically and never revisits a page.
			actorID := cpu*64 + idx
			scanPage := 0
			tempPage := 0
			tempBlock := 0
			pagesScanned := 0
			lastProbe := 0
			buildPage := 0
			return func(r *rand.Rand, buf []access) []access {
				switch pick := r.Float64(); {
				case pick < p.scanFrac:
					buf = dssScanPage(r, p, fact, actorID, scanPage, buf)
					scanPage++
					pagesScanned++
					// Aggregation writes to the actor's private area.
					for i := 0; i < p.aggWrites; i++ {
						buf = append(buf, access{
							pc:    pcSite(p.workloadID, dssOpAgg, i),
							addr:  pageAddr(agg, actorID, r.Intn(4)),
							write: true,
						})
					}
					if p.tempFlushEvery > 0 && pagesScanned%p.tempFlushEvery == 0 {
						buf, tempPage, tempBlock = dssTempFlush(p, temp, actorID, tempPage, tempBlock, buf)
					}
					return buf
				case pick < p.scanFrac+p.probeFrac:
					var out []access
					out, lastProbe = dssProbe(r, p, hash, lastProbe, buf)
					return out
				default:
					buf = dssBuildScan(r, p, build, actorID, buildPage, buf)
					buildPage++
					return buf
				}
			}
		},
	})
}

// dssScanPage streams through one never-before-visited page of the fact
// table, touching most blocks in order (the columns the query needs).
func dssScanPage(rng *rand.Rand, p dssParams, fact mem.Addr, actorID, page int, buf []access) []access {
	// Each actor owns a disjoint, unbounded strip of the table.
	pageIdx := actorID*1_000_000 + page
	for blk := 0; blk < pageBlocks; blk++ {
		if rng.Float64() > p.scanDensity {
			continue
		}
		buf = append(buf, access{
			pc:   pcSite(p.workloadID, dssOpScan, 0),
			addr: pageAddr(fact, pageIdx, blk),
		})
	}
	return buf
}

// dssTempFlush writes a dense run of blocks into fresh temp-table pages:
// Qry 1's temporary-table copy, which rapidly fills the store buffer with
// cache misses (§4.7).
func dssTempFlush(p dssParams, temp mem.Addr, actorID, tempPage, tempBlock int, buf []access) ([]access, int, int) {
	for i := 0; i < p.tempFlushLen; i++ {
		pageIdx := actorID*1_000_000 + tempPage
		buf = append(buf, access{
			pc:    pcSite(p.workloadID, dssOpTempFlush, 0),
			addr:  pageAddr(temp, pageIdx, tempBlock),
			write: true,
		})
		tempBlock++
		if tempBlock == pageBlocks {
			tempBlock = 0
			tempPage++
		}
	}
	return buf, tempPage, tempBlock
}

// dssProbe performs one join probe: 1-2 blocks in the shared hash/index
// structure. Probe keys arrive mostly ordered (high locality), which keeps
// the delta stream regular enough for GHB to predict (§4.6).
func dssProbe(rng *rand.Rand, p dssParams, hash mem.Addr, lastProbe int, buf []access) ([]access, int) {
	var page int
	if rng.Float64() < p.probeLocality {
		page = lastProbe + rng.Intn(3) // ordered keys: small forward steps
	} else {
		page = rng.Intn(p.hashPages)
	}
	page %= p.hashPages
	start := rng.Intn(pageBlocks - 2)
	n := 1 + rng.Intn(2)
	for b := 0; b < n; b++ {
		buf = append(buf, access{
			pc:   pcSite(p.workloadID, dssOpProbe, b),
			addr: pageAddr(hash, page, start+b),
		})
	}
	return buf, page
}

// dssBuildScan streams the build-side table (dense, sequential, visited
// once per actor), with occasional grouped writes.
func dssBuildScan(rng *rand.Rand, p dssParams, build mem.Addr, actorID, page int, buf []access) []access {
	pageIdx := actorID*1_000_000 + page
	for blk := 0; blk < pageBlocks; blk += 1 + rng.Intn(2) {
		buf = append(buf, access{
			pc:   pcSite(p.workloadID, dssOpBuild, 0),
			addr: pageAddr(build, pageIdx, blk),
		})
	}
	buf = append(buf, access{
		pc:    pcSite(p.workloadID, dssOpGroup, 0),
		addr:  pageAddr(build, pageIdx, pageBlocks-1),
		write: true,
	})
	return buf
}
