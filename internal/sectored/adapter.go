package sectored

import (
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/trace"
)

// SimPrefetcher adapts the logical-sectored trainer to the simulator's
// per-CPU prefetcher interface (repro/internal/sim.Prefetcher, satisfied
// structurally). Like SMS it trains on every L1 access and streams into
// L1, but its generations live in the logical sector tags, not the real
// cache, so real-cache evictions do not end them.
type SimPrefetcher struct {
	ls *LogicalSectored
}

// NewSimPrefetcher builds a logical-sectored trainer for cfg and wraps it
// for the simulator.
func NewSimPrefetcher(cfg Config) (*SimPrefetcher, error) {
	ls, err := NewLogicalSectored(cfg)
	if err != nil {
		return nil, err
	}
	return &SimPrefetcher{ls: ls}, nil
}

// Trainer exposes the wrapped logical-sectored structure.
func (p *SimPrefetcher) Trainer() *LogicalSectored { return p.ls }

// Train records the access in the logical sector tags. Real-cache
// evictions are ignored: the logical tags model their own (sectored)
// contents and end generations on their own sector replacements.
func (p *SimPrefetcher) Train(rec trace.Record, acc *coherence.AccessResult) []mem.Addr {
	p.ls.Access(rec.PC, rec.Addr)
	return nil
}

// Drain pops up to max pending stream requests.
func (p *SimPrefetcher) Drain(max int) []mem.Addr { return p.ls.NextStreamRequests(max) }

// FillLevel reports that LS streams into L1.
func (p *SimPrefetcher) FillLevel() coherence.Level { return coherence.LevelL1 }

// StreamEvicted is a no-op: stream fills displace real-cache blocks, which
// the logical tags do not track.
func (p *SimPrefetcher) StreamEvicted(mem.Addr) {}

// Invalidated ends the generation of an invalidated block: coherence
// invalidations hit the logical tags as well as the real cache.
func (p *SimPrefetcher) Invalidated(addr mem.Addr) { p.ls.BlockRemoved(addr) }

// Stats returns the trainer's Stats (a sectored.Stats).
func (p *SimPrefetcher) Stats() any { return p.ls.Stats() }
