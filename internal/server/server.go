// Package server implements the smsd experiment daemon: an HTTP front end
// over the grid-native execution engine that serves the paper's figures
// and ad-hoc simulation runs, backed by the persistent result store.
//
// Endpoints:
//
//	GET    /v1/figures/{name}  rendered figure text (synchronous; cached figures bypass the pool)
//	POST   /v1/figures/{name}  async figure job → 202 + job id
//	POST   /v1/runs            async simulation job → 202 + job id
//	GET    /v1/jobs            all jobs, newest first (?state=, ?kind= filters)
//	GET    /v1/jobs/{id}       job status, progress, phase timings, and (when done) result
//	GET    /v1/jobs/{id}/events  live engine events as Server-Sent Events
//	DELETE /v1/jobs/{id}       cancel the job's in-flight simulations
//	POST   /v1/cells           execute one cluster run cell (worker side; synchronous)
//	POST   /v1/cluster/workers            register a worker (coordinator side)
//	POST   /v1/cluster/workers/{id}/heartbeat  worker liveness beat
//	GET    /v1/cluster/workers            registered workers and their queues
//	GET    /v1/store/results/{key}        stored result JSON by content address
//	PUT    /v1/store/results/{key}        store a result (cluster artifact sync)
//	GET    /v1/store/traces/{key}         raw trace artifact by content address
//	PUT    /v1/store/traces/{key}         store a trace artifact (validated before publish)
//	GET    /v1/prefetchers     registered prefetcher names
//	GET    /v1/workloads       registered workloads (name, group, description)
//	GET    /v1/traces          trace artifacts cached in the store's disk trace tier
//	GET    /healthz            liveness probe
//	GET    /metrics            Prometheus text exposition (internal/obs registry)
//	GET    /debug/pprof/...    runtime profiles (only with Config.Pprof)
//
// All simulation work funnels through a bounded worker pool with a job
// queue; when the queue is full the server sheds load with 503 instead of
// queueing unbounded work. Below the pool, the engine deduplicates
// identical runs singleflight-style and memoizes them (backed by the
// store), so N jobs for one uncached simulation trigger exactly one
// underlying computation. Every job carries a context: DELETE cancels it,
// and Shutdown cancels all of them, stopping in-flight simulations within
// one progress interval instead of draining arbitrarily long runs.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// ErrBusy is returned (as 503) when the job queue is full.
var ErrBusy = errors.New("server: job queue full")

// Config parameterizes a Server.
type Config struct {
	// Session executes and caches the simulations (required). Attach a
	// store to it for cross-process persistence.
	Session *exp.Session
	// Workers bounds concurrently executing jobs (0 = GOMAXPROCS).
	Workers int
	// Queue bounds jobs waiting for a worker (0 = DefaultQueue,
	// negative = no queueing: a job either starts immediately or is
	// rejected).
	Queue int
	// Experiments overrides the figure registry (nil = exp.Experiments()).
	// Tests use this to observe and stall figure computations.
	Experiments map[string]exp.Runner
	// Logger receives the daemon's structured logs (nil = slog.Default()).
	Logger *slog.Logger
	// EventHeartbeat is the idle-stream heartbeat period for
	// /v1/jobs/{id}/events (0 = DefaultEventHeartbeat).
	EventHeartbeat time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
	// Coordinator, when set, makes this daemon a cluster coordinator: the
	// /v1/cluster/* endpoints accept worker registrations and heartbeats
	// for it. Workers and single-node daemons leave it nil (the endpoints
	// then answer 404).
	Coordinator *cluster.Coordinator
	// Metrics is the registry behind /metrics (nil = a fresh private
	// registry). A coordinator daemon shares one registry between the
	// server and the cluster scheduler so one scrape covers both.
	Metrics *obs.Registry
	// JournalPath, when set, makes the daemon crash-safe: every job
	// state transition is appended to the durable journal at this path
	// (fsync'd, CRC-framed — see journal.go), and New replays it so jobs
	// survive a kill. Settled jobs reappear in GET /v1/jobs with results
	// refilled from the store; live jobs are re-queued through the pool.
	JournalPath string
	// Fault optionally injects deterministic faults into the journal
	// sites (journal.append.*, journal.compact) and exports
	// smsd_fault_injections_total; nil in production.
	Fault *fault.Injector
}

// DefaultQueue is the default job-queue bound.
const DefaultQueue = 64

// maxFinishedJobs bounds how many settled jobs are kept for polling; the
// oldest settled jobs are evicted first. Active jobs are never evicted.
const maxFinishedJobs = 256

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobProgress reports how much of a job's simulation grid has settled.
type JobProgress struct {
	// TotalRuns and DoneRuns count the job's deduplicated runs; for a
	// /v1/runs job TotalRuns is 1.
	TotalRuns int `json:"total_runs"`
	DoneRuns  int `json:"done_runs"`
	// CachedRuns of the done runs were served without simulating.
	CachedRuns int `json:"cached_runs"`
	// Records is the total simulated trace records processed so far,
	// including runs still in flight.
	Records uint64 `json:"records"`
}

// job is the server-side job state.
type job struct {
	id      string
	kind    string // "run" | "figure"
	target  string // human-readable subject
	dedupe  string // active-job dedup key ("" = never deduped)
	created time.Time
	cancel  context.CancelFunc
	// spec is the journaled description a restart resubmits from.
	spec jobSpec
	// journaled means an accepted record for this job is on disk, so
	// its later transitions must be journaled too. restored marks a job
	// rebuilt from the journal on recovery.
	journaled bool
	restored  bool
	// tracer collects the job's run-phase spans (nil for cache-settled
	// jobs); doc() surfaces its totals as the phase-timing block.
	tracer *obs.Tracer
	// done closes when the job settles; synchronous waiters (the GET
	// figure path) block on it.
	done chan struct{}

	// subs are the live /v1/jobs/{id}/events streams (see events.go).
	subsMu sync.Mutex
	subs   map[*subscriber]struct{}

	mu        sync.Mutex
	state     JobState
	progress  JobProgress
	inflight  map[string]uint64    // run key → records, for runs in flight
	runStarts map[string]time.Time // run key → RunStarted time, for duration metrics
	completed uint64               // records folded in from settled runs
	result    *RunResponse         // run jobs
	figure    string               // figure jobs
	errText   string
	finished  time.Time
}

// observeEvent folds one engine event into the job's progress, records
// run-level metrics, and fans the event out to the job's event streams.
// It is the event sink attached to the job's context, called from
// worker goroutines.
func (s *Server) observeEvent(j *job, ev engine.Event) {
	now := time.Now()
	j.mu.Lock()
	if ev.Total > 0 {
		j.progress.TotalRuns = ev.Total
	}
	switch ev.Kind {
	case engine.RunStarted:
		j.runStarts[ev.Key] = now
	case engine.RunProgress:
		j.inflight[ev.Key] = ev.Records
	case engine.RunCached:
		j.progress.CachedRuns++
		j.progress.DoneRuns++
	case engine.RunFinished, engine.RunFailed, engine.RunSkipped:
		j.progress.DoneRuns++
		records := j.inflight[ev.Key]
		j.completed += records
		delete(j.inflight, ev.Key)
		if start, ok := j.runStarts[ev.Key]; ok {
			delete(j.runStarts, ev.Key)
			if ev.Kind == engine.RunFinished {
				// The final RunProgress callback fires before RunFinished,
				// so records holds the run's full count here.
				dur := now.Sub(start).Seconds()
				s.metrics.runDuration.Observe(dur)
				if dur > 0 && records > 0 {
					s.metrics.runRecRate.Observe(float64(records) / dur)
				}
			}
		}
	}
	j.mu.Unlock()
	s.publishEvent(j, ev)
}

// doc renders the job for the HTTP API.
func (j *job) doc() JobDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	d := JobDoc{
		ID:       j.id,
		Kind:     j.kind,
		Target:   j.target,
		State:    j.state,
		Created:  j.created,
		Progress: j.progress,
		Error:    j.errText,
		Result:   j.result,
		Figure:   j.figure,
	}
	d.Progress.Records = j.completed
	for _, rec := range j.inflight {
		d.Progress.Records += rec
	}
	if !j.finished.IsZero() {
		t := j.finished
		d.Finished = &t
	}
	d.Phases = j.tracer.PhaseTotals()
	return d
}

// JobDoc is the job representation served by the /v1/jobs endpoints.
type JobDoc struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	Target  string    `json:"target"`
	State   JobState  `json:"state"`
	Created time.Time `json:"created"`
	// Finished is set once the job reaches a terminal state.
	Finished *time.Time  `json:"finished,omitempty"`
	Progress JobProgress `json:"progress"`
	Error    string      `json:"error,omitempty"`
	// Result carries a run job's outcome once done.
	Result *RunResponse `json:"result,omitempty"`
	// Figure carries a figure job's rendered text once done.
	Figure string `json:"figure,omitempty"`
	// Phases aggregates the job's span tracing per phase name (trace
	// generation, sampled gap/warm/window, store round trips, render),
	// sorted by descending wall time. It flows from the run-phase
	// tracer, never from sim.Result.
	Phases []obs.PhaseTotal `json:"phases,omitempty"`
}

// Server is the smsd HTTP daemon state.
type Server struct {
	session     *exp.Session
	experiments map[string]exp.Runner
	names       []string

	// baseCtx parents every job context; baseCancel is the shutdown
	// switch that stops in-flight simulations.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	jobsCh  chan func()
	closing sync.Once
	done    chan struct{}
	wg      sync.WaitGroup
	workers int

	logger      *slog.Logger
	heartbeat   time.Duration
	pprof       bool
	coordinator *cluster.Coordinator
	// syncClient fetches trace artifacts from peers (worker pull-through).
	syncClient *http.Client
	// metrics is the obs registry behind /metrics plus every instrument
	// the daemon records into (see metrics.go).
	metrics *serverMetrics
	// journal is the durable job log (nil when Config.JournalPath is
	// unset: journaling off, every append a no-op).
	journal *journal
	// fault is the daemon's injector (nil in production).
	fault *fault.Injector
	// recRequeued / recRestored count jobs recovered on startup.
	recRequeued atomic.Uint64
	recRestored atomic.Uint64
	// settleCount drives periodic journal compaction.
	settleCount atomic.Uint64

	mu          sync.Mutex
	jobs        map[string]*job
	activeByKey map[string]*job // dedup key → unsettled job
	settled     []string        // settled job ids in completion order, for eviction
	active      int             // jobs in state running
	pending     int             // jobs in state queued
	jobsSeq     uint64
}

// New builds a Server and starts its worker pool. Call Close (or
// Shutdown) to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Session == nil {
		return nil, fmt.Errorf("server: Config.Session is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := cfg.Queue
	switch {
	case queue == 0:
		queue = DefaultQueue
	case queue < 0:
		queue = 0
	}
	experiments := cfg.Experiments
	var names []string
	if experiments == nil {
		experiments = exp.Experiments()
		names = exp.ExperimentNames()
	} else {
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
	}

	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	heartbeat := cfg.EventHeartbeat
	if heartbeat <= 0 {
		heartbeat = DefaultEventHeartbeat
	}

	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		session:     cfg.Session,
		experiments: experiments,
		names:       names,
		baseCtx:     baseCtx,
		baseCancel:  baseCancel,
		jobsCh:      make(chan func(), queue),
		done:        make(chan struct{}),
		workers:     workers,
		logger:      logger,
		heartbeat:   heartbeat,
		pprof:       cfg.Pprof,
		coordinator: cfg.Coordinator,
		syncClient:  &http.Client{Timeout: 5 * time.Minute},
		fault:       cfg.Fault,
		jobs:        make(map[string]*job),
		activeByKey: make(map[string]*job),
	}
	var replayed []*journalJob
	if cfg.JournalPath != "" {
		jl, jobs, err := openJournal(cfg.JournalPath, cfg.Fault, logger)
		if err != nil {
			baseCancel()
			return nil, err
		}
		s.journal = jl
		replayed = jobs
	}
	s.metrics = newMetrics(s, cfg.Metrics)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.done:
					// Drain tasks queued at the instant of shutdown so no
					// caller blocks forever on an abandoned task; their
					// contexts are already cancelled, so each settles
					// immediately.
					for {
						select {
						case task := <-s.jobsCh:
							s.metrics.poolExecuted.Inc()
							task()
						default:
							return
						}
					}
				case task := <-s.jobsCh:
					s.metrics.poolExecuted.Inc()
					task()
				}
			}
		}()
	}
	if s.journal != nil {
		s.recover(replayed)
	}
	return s, nil
}

// Close stops the server, cancelling every in-flight simulation through
// the engine's context path, and waits for the workers to drain.
func (s *Server) Close() { _ = s.Shutdown(context.Background()) }

// CancelJobs cancels every job context — in-flight simulations stop
// within one progress interval — without stopping the worker pool, so
// requests still in the HTTP pipeline settle fast instead of hanging.
// It is the first step of a graceful daemon exit: CancelJobs, drain the
// HTTP listener, then Shutdown.
func (s *Server) CancelJobs() { s.baseCancel() }

// Shutdown cancels all jobs (in-flight simulations stop within one
// progress interval) and waits for the worker pool to drain, bounded by
// ctx. It returns ctx's error if the workers did not drain in time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Do(func() {
		s.baseCancel()
		close(s.done)
	})
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.journal.close()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submit hands a task to the pool without blocking.
func (s *Server) submit(task func()) bool {
	select {
	case s.jobsCh <- task:
		return true
	default:
		s.metrics.rejected.Inc()
		return false
	}
}

// isCtxErr reports whether err is a cancellation/deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// newJobID returns a fresh random job identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for a daemon; fall back to
		// a counter-free constant-prefix that still cannot collide within
		// a process thanks to the sequence check in startJob.
		return "job-entropy-failure"
	}
	return hex.EncodeToString(b[:])
}

// registerJob assigns the job a collision-free id and records it. The
// caller must hold s.mu.
func (s *Server) registerJobLocked(j *job) {
	for s.jobs[j.id] != nil { // vanishing collision odds, but never clobber
		j.id = newJobID() + fmt.Sprintf("-%d", s.jobsSeq)
	}
	s.jobsSeq++
	s.jobs[j.id] = j
	if j.dedupe != "" {
		s.activeByKey[j.dedupe] = j
	}
}

// startJob registers a job and submits its body to the pool. The body
// runs under a per-job context (cancelled by DELETE and by Shutdown)
// carrying the job's event sink; run reports the outcome.
//
// A non-empty dedupe key single-flights the job: if an unsettled job
// with the same key exists, it is returned (joined=true) instead of a
// new one — figure jobs use this so N concurrent requests for one
// figure execute one computation, including the custom plan cells the
// engine's run-level memoization cannot dedupe.
func (s *Server) startJob(spec jobSpec, totalRuns int, run func(ctx context.Context, j *job) error) (j *job, joined bool, err error) {
	j = &job{
		id:      newJobID(),
		kind:    spec.Kind,
		target:  spec.Target,
		dedupe:  spec.Dedupe,
		created: time.Now(),
		spec:    spec,
	}
	return s.launchJob(j, totalRuns, run)
}

// launchJob finishes constructing j and submits its body to the pool.
// The identity fields (id, kind, target, dedupe, created, spec,
// journaled, restored) are the caller's: startJob mints fresh ones,
// recovery preserves journaled identities through here so a restart
// does not reissue job ids.
func (s *Server) launchJob(j *job, totalRuns int, run func(ctx context.Context, j *job) error) (_ *job, joined bool, err error) {
	j.state = JobQueued
	j.tracer = obs.NewTracer()
	j.inflight = make(map[string]uint64)
	j.runStarts = make(map[string]time.Time)
	j.done = make(chan struct{})
	j.progress.TotalRuns = totalRuns

	ctx, cancel := context.WithCancel(s.baseCtx)
	ctx = obs.WithTracer(ctx, j.tracer)
	ctx = engine.WithEventSink(ctx, func(ev engine.Event) { s.observeEvent(j, ev) })
	j.cancel = cancel

	s.mu.Lock()
	if j.dedupe != "" {
		if existing, ok := s.activeByKey[j.dedupe]; ok {
			s.mu.Unlock()
			cancel()
			s.metrics.deduped.Inc()
			return existing, true, nil
		}
	}
	s.registerJobLocked(j)
	s.pending++
	s.mu.Unlock()

	// Journal the acceptance before the pool can pick the body up, so
	// the started/settled records that follow always land after it.
	// Cell jobs stay out of the journal: cells belong to the
	// coordinator's retry loop, and a restarted worker must not re-run
	// cells already rescattered elsewhere.
	if s.journal != nil && !j.restored && j.kind != "cell" {
		rec := journalRecord{Op: journalOpAccepted, ID: j.id, Time: j.created, Spec: &j.spec}
		if aerr := s.journal.append(rec); aerr != nil {
			s.logger.Warn("journal: accepted append failed", "job_id", j.id, "err", aerr)
		} else {
			j.journaled = true
		}
	}

	body := func() {
		s.metrics.queueWait.Observe(time.Since(j.created).Seconds())
		j.mu.Lock()
		cancelled := j.state == JobCancelled
		if !cancelled {
			j.state = JobRunning
		}
		j.mu.Unlock()
		s.mu.Lock()
		s.pending--
		if !cancelled {
			s.active++
		}
		s.mu.Unlock()
		if cancelled {
			s.settleJob(j)
			return
		}
		if j.journaled {
			rec := journalRecord{Op: journalOpStarted, ID: j.id, Time: time.Now()}
			if aerr := s.journal.append(rec); aerr != nil {
				s.logger.Warn("journal: started append failed", "job_id", j.id, "err", aerr)
			}
		}
		err := run(ctx, j)
		cancel()

		j.mu.Lock()
		switch {
		case err == nil:
			j.state = JobDone
			s.metrics.jobsDone.Inc()
		case isCtxErr(err):
			j.state = JobCancelled
			s.metrics.jobsCancelled.Inc()
		default:
			j.state = JobFailed
			j.errText = err.Error()
			s.metrics.jobsFailed.Inc()
		}
		j.finished = time.Now()
		j.mu.Unlock()
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
		s.settleJob(j)
	}
	if !s.submit(body) {
		cancel()
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
		// Settle (rather than delete) the stillborn job: a concurrent
		// caller may already have joined it through the dedup key and
		// must unblock with its outcome.
		j.mu.Lock()
		j.state = JobFailed
		j.errText = ErrBusy.Error()
		j.mu.Unlock()
		s.metrics.jobsFailed.Inc()
		s.settleJob(j)
		return nil, false, ErrBusy
	}
	s.metrics.jobsCreated.Inc()
	s.logger.Debug("job accepted",
		"job_id", j.id, "kind", j.kind, "target", j.target, "total_runs", totalRuns)
	return j, false, nil
}

// settledJob registers a job that is already done — the cached fast
// path: a result one memo/store probe away needs no worker slot, so it
// stays served even when the pool is saturated with simulations.
func (s *Server) settledJob(spec jobSpec, fill func(j *job)) *job {
	now := time.Now()
	j := &job{
		id:        newJobID(),
		kind:      spec.Kind,
		target:    spec.Target,
		created:   now,
		finished:  now,
		state:     JobDone,
		spec:      spec,
		cancel:    func() {},
		inflight:  make(map[string]uint64),
		runStarts: make(map[string]time.Time),
		done:      make(chan struct{}),
	}
	// The settled record written by settleJob is self-contained (it
	// carries the spec), so cache-settled jobs survive restarts without
	// ever having an accepted record.
	j.journaled = s.journal != nil && spec.Kind != "cell"
	fill(j)
	s.mu.Lock()
	s.registerJobLocked(j)
	s.mu.Unlock()
	s.metrics.jobsCreated.Inc()
	s.metrics.jobsDone.Inc()
	s.settleJob(j)
	return j
}

// settleJob records a terminal job for bounded retention, releases its
// dedup key, records its duration and phase metrics, and wakes
// synchronous waiters.
func (s *Server) settleJob(j *job) {
	j.mu.Lock()
	if j.finished.IsZero() {
		j.finished = time.Now()
	}
	state, created, finished := j.state, j.created, j.finished
	errText := j.errText
	j.mu.Unlock()
	if j.journaled {
		// The settled record carries the spec and creation time so it is
		// self-contained: replay restores the job from this one frame even
		// after compaction discards its accepted record.
		rec := journalRecord{
			Op: journalOpSettled, ID: j.id, Time: finished,
			State: state, Error: errText, Spec: &j.spec, Created: created,
		}
		if err := s.journal.append(rec); err != nil {
			s.logger.Warn("journal: settled append failed", "job_id", j.id, "err", err)
		}
		if n := s.settleCount.Add(1); n%journalCompactEvery == 0 {
			go s.compactJournal()
		}
	}
	s.metrics.jobDuration.With(j.kind).Observe(finished.Sub(created).Seconds())
	for _, p := range j.tracer.PhaseTotals() {
		s.metrics.phaseSeconds.With(p.Name).Observe(p.Seconds)
	}
	s.logger.Info("job settled",
		"job_id", j.id, "kind", j.kind, "target", j.target,
		"state", state, "duration", finished.Sub(created))
	s.mu.Lock()
	if j.dedupe != "" && s.activeByKey[j.dedupe] == j {
		delete(s.activeByKey, j.dedupe)
	}
	s.settled = append(s.settled, j.id)
	for len(s.settled) > maxFinishedJobs {
		oldest := s.settled[0]
		s.settled = s.settled[1:]
		delete(s.jobs, oldest)
	}
	s.mu.Unlock()
	close(j.done)
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/prefetchers", s.handlePrefetchers)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	mux.HandleFunc("POST /v1/figures/{name}", s.handleFigureJob)
	mux.HandleFunc("POST /v1/runs", s.handleRunJob)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("POST /v1/cells", s.handleCell)
	mux.HandleFunc("POST /v1/cluster/workers", s.handleWorkerRegister)
	mux.HandleFunc("POST /v1/cluster/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	mux.HandleFunc("GET /v1/cluster/workers", s.handleWorkerList)
	mux.HandleFunc("GET /v1/store/results/{key}", s.handleStoreResultGet)
	mux.HandleFunc("PUT /v1/store/results/{key}", s.handleStoreResultPut)
	mux.HandleFunc("GET /v1/store/traces/{key}", s.handleStoreTraceGet)
	mux.HandleFunc("PUT /v1/store/traces/{key}", s.handleStoreTracePut)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.withRequestID(mux)
}

// withRequestID counts requests, tags each with an id (propagating a
// caller-provided X-Request-ID), and logs it at debug level.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Inc()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newJobID()
		}
		w.Header().Set("X-Request-ID", id)
		start := time.Now()
		next.ServeHTTP(w, r)
		s.logger.Debug("request",
			"method", r.Method, "path", r.URL.Path,
			"request_id", id, "duration", time.Since(start))
	})
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string   `json:"error"`
	Known []string `json:"known,omitempty"`
}

// clearWriteDeadline exempts one response from the daemon-wide write
// timeout: SSE streams, synchronous figure/cell waits and artifact
// transfers are legitimately long-lived, while the timeout stays on to
// bound every ordinary response.
func clearWriteDeadline(w http.ResponseWriter) {
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
}

// clearReadDeadline exempts one request body from the daemon-wide read
// timeout (large artifact uploads).
func clearReadDeadline(w http.ResponseWriter) {
	_ = http.NewResponseController(w).SetReadDeadline(time.Time{})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// figureJob creates — or joins, via the dedup key — the job computing
// the named figure. Both the synchronous GET and the async POST funnel
// through it, so at most one computation per figure is ever in flight,
// including the custom plan cells run-level memoization cannot dedupe.
func (s *Server) figureJob(name string, run exp.Runner) (*job, error) {
	totalRuns := 0
	if plan, ok := exp.PlanFor(name, s.session.Options()); ok {
		totalRuns = len(plan.Workloads)*len(plan.Variants) + len(plan.Customs)
	}
	spec := jobSpec{Kind: "figure", Target: name, Dedupe: "figure/" + name, Figure: name}
	j, _, err := s.startJob(spec, totalRuns, func(ctx context.Context, j *job) error {
		text, err := s.session.RunFigure(ctx, name, run)
		if err != nil {
			return err
		}
		j.mu.Lock()
		j.figure = text
		j.mu.Unlock()
		return nil
	})
	return j, err
}

// handleFigure is the synchronous figure form: it waits on the (shared)
// figure job and serves its text. The leader's body always runs on a
// worker it already holds, so waiting here — on the handler goroutine —
// can never deadlock the pool.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	run, ok := s.experiments[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{
			Error: fmt.Sprintf("unknown figure %q", name),
			Known: s.names,
		})
		return
	}
	// The wait below can exceed the daemon's write timeout; the figure
	// computation itself is the bound.
	clearWriteDeadline(w)
	for {
		// Fast path: a figure already persisted in the store is one disk
		// read — serve it without burning a worker slot, so cached
		// figures stay available even when the pool is saturated.
		if text, ok := s.session.CachedFigure(name); ok {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, text)
			return
		}
		j, err := s.figureJob(name, run)
		if err != nil {
			s.metrics.failures.Inc()
			writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
			return
		}
		select {
		case <-j.done:
		case <-r.Context().Done():
			// The client went away; the job keeps computing for other
			// consumers and stays pollable at /v1/jobs.
			return
		}
		d := j.doc()
		switch {
		case d.State == JobDone:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, d.Figure)
			return
		case d.State == JobCancelled:
			if s.baseCtx.Err() != nil {
				// Server-wide cancellation (shutdown), not a DELETE on
				// the shared job: a fresh job would settle cancelled
				// instantly, so bail out instead of spinning.
				s.metrics.failures.Inc()
				writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "server shutting down"})
				return
			}
			// Someone cancelled the shared job — not this request. Retry
			// with a fresh job while the client is still here.
			continue
		case d.Error == ErrBusy.Error():
			s.metrics.failures.Inc()
			writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: d.Error})
			return
		default:
			s.metrics.failures.Inc()
			writeJSON(w, http.StatusInternalServerError, errorDoc{Error: d.Error})
			return
		}
	}
}

// handleFigureJob is the async figure form: 202 + a pollable, cancellable
// job that regenerates the figure through its declarative plan.
// Duplicate requests join the in-flight job and receive the same id.
func (s *Server) handleFigureJob(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	run, ok := s.experiments[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{
			Error: fmt.Sprintf("unknown figure %q", name),
			Known: s.names,
		})
		return
	}
	if text, ok := s.session.CachedFigure(name); ok {
		j := s.settledJob(jobSpec{Kind: "figure", Target: name, Figure: name}, func(j *job) { j.figure = text })
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.doc())
		return
	}
	j, err := s.figureJob(name, run)
	if err != nil {
		s.metrics.failures.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.doc())
}

// RunRequest asks for one simulation under the daemon's session options.
type RunRequest struct {
	// Workload is a registered workload name (see GET /v1/workloads).
	Workload string `json:"workload"`
	// Prefetcher is a registered prefetcher name (see GET /v1/prefetchers);
	// empty selects the baseline system.
	Prefetcher string `json:"prefetcher"`
	// RegionSize optionally overrides the spatial region size in bytes
	// (power of two, ≥ the 64 B block size).
	RegionSize int `json:"region_size,omitempty"`
	// Sampling optionally runs the simulation in SMARTS-style sampled
	// mode (windowed measurement with confidence intervals in
	// Result.Sampling). Omitted or zero keeps the exact mode; sampled and
	// exact runs have distinct keys.
	Sampling *sim.SamplingConfig `json:"sampling,omitempty"`
}

// RunResponse carries one simulation outcome.
type RunResponse struct {
	Workload   string      `json:"workload"`
	Prefetcher string      `json:"prefetcher"`
	Key        string      `json:"key"`
	Result     *sim.Result `json:"result"`
}

// runConfig translates a request into the simulator config the session
// will execute, mirroring the experiment harness conventions (standard
// memory system, half-trace warm-up applied by the engine).
func (s *Server) runConfig(req RunRequest) (sim.Config, error) {
	cfg := sim.Config{
		Coherence:      s.session.Options().MemorySystem(64),
		PrefetcherName: req.Prefetcher,
	}
	if cfg.PrefetcherName == "" {
		cfg.PrefetcherName = "none"
	}
	if !nameRegistered(cfg.PrefetcherName) {
		return sim.Config{}, fmt.Errorf("unknown prefetcher %q (have: %s)", req.Prefetcher, strings.Join(sim.Names(), ", "))
	}
	if req.RegionSize > 0 {
		geo, err := mem.NewGeometry(mem.DefaultBlockSize, req.RegionSize)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Geometry = geo
	}
	if req.Sampling != nil {
		if err := req.Sampling.Validate(); err != nil {
			return sim.Config{}, err
		}
		cfg.Sampling = *req.Sampling
	}
	return cfg, nil
}

func nameRegistered(name string) bool {
	for _, n := range sim.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// maxRunRequestBytes caps the /v1/runs request body; a RunRequest is a
// few short fields, so anything larger is abuse of an open endpoint.
const maxRunRequestBytes = 64 << 10

// handleRunJob accepts a simulation request and returns 202 with a
// pollable, cancellable job. Cached results settle the job on its first
// poll (the engine serves them without simulating); fresh ones report
// record-level progress while they run.
func (s *Server) handleRunJob(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRunRequestBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if _, err := workload.ByName(req.Workload); err != nil {
		known := make([]string, 0, len(workload.All()))
		for _, wl := range workload.All() {
			known = append(known, wl.Name)
		}
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error(), Known: known})
		return
	}
	cfg, err := s.runConfig(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}

	key := s.session.RunKey(req.Workload, cfg)
	target := fmt.Sprintf("%s/%s", req.Workload, cfg.Canonical().PrefetcherName)
	if res, ok := s.session.CachedRun(req.Workload, cfg); ok {
		j := s.settledJob(jobSpec{Kind: "run", Target: target, Run: &req}, func(j *job) {
			j.progress = JobProgress{TotalRuns: 1, DoneRuns: 1, CachedRuns: 1}
			j.result = &RunResponse{
				Workload:   req.Workload,
				Prefetcher: cfg.Canonical().PrefetcherName,
				Key:        key,
				Result:     res,
			}
		})
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.doc())
		return
	}
	j, _, err := s.startJob(jobSpec{Kind: "run", Target: target, Run: &req}, 1, func(ctx context.Context, j *job) error {
		res, err := s.session.Run(ctx, req.Workload, cfg)
		if err != nil {
			return err
		}
		j.mu.Lock()
		j.result = &RunResponse{
			Workload:   req.Workload,
			Prefetcher: cfg.Canonical().PrefetcherName,
			Key:        key,
			Result:     res,
		}
		j.mu.Unlock()
		return nil
	})
	if err != nil {
		s.metrics.failures.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.doc())
}

// jobStateFilter translates the ?state= query value into a predicate.
// Besides the five lifecycle states it accepts the aggregates "active"
// (queued or running) and "settled" (any terminal state).
func jobStateFilter(value string) (func(JobState) bool, bool) {
	switch JobState(value) {
	case "":
		return func(JobState) bool { return true }, true
	case JobQueued, JobRunning, JobDone, JobFailed, JobCancelled:
		want := JobState(value)
		return func(st JobState) bool { return st == want }, true
	}
	switch value {
	case "active":
		return func(st JobState) bool { return !st.terminal() }, true
	case "settled":
		return func(st JobState) bool { return st.terminal() }, true
	}
	return nil, false
}

// handleJobs lists jobs newest-first, optionally filtered with
// ?state= (queued|running|done|failed|cancelled|active|settled) and
// ?kind= (run|figure|cell).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	stateOK, ok := jobStateFilter(r.URL.Query().Get("state"))
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorDoc{
			Error: fmt.Sprintf("unknown state filter %q", r.URL.Query().Get("state")),
			Known: []string{"queued", "running", "done", "failed", "cancelled", "active", "settled"},
		})
		return
	}
	kind := r.URL.Query().Get("kind")
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	docs := make([]JobDoc, 0, len(jobs))
	for _, j := range jobs {
		d := j.doc()
		if !stateOK(d.State) || (kind != "" && d.Kind != kind) {
			continue
		}
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, k int) bool { return docs[i].Created.After(docs[k].Created) })
	writeJSON(w, http.StatusOK, docs)
}

// lookupJob resolves a job id or writes a 404.
func (s *Server) lookupJob(w http.ResponseWriter, id string) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: fmt.Sprintf("unknown job %q", id)})
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.doc())
}

// handleJobCancel cancels a job: queued jobs settle as cancelled without
// running; running jobs stop within one progress interval. Cancelling a
// settled job is a no-op that reports its final state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	j.mu.Lock()
	if j.state == JobQueued {
		// The pool has not picked the body up yet; mark it so the body
		// settles immediately when it runs.
		j.state = JobCancelled
		s.metrics.jobsCancelled.Inc()
	}
	j.mu.Unlock()
	j.cancel()
	writeJSON(w, http.StatusOK, j.doc())
}

func (s *Server) handlePrefetchers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sim.Names())
}

// workloadDoc describes one registered workload.
type workloadDoc struct {
	Name        string `json:"name"`
	Group       string `json:"group"`
	Description string `json:"description"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	var out []workloadDoc
	for _, wl := range workload.All() {
		out = append(out, workloadDoc{Name: wl.Name, Group: wl.Group, Description: wl.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraces lists the trace artifacts cached in the store's disk
// trace tier — the v2 files the engine replays by mmap instead of
// regenerating. Without a store the tier does not exist and the list is
// empty.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	st := s.session.Store()
	if st == nil {
		writeJSON(w, http.StatusOK, []store.TraceInfo{})
		return
	}
	infos, err := st.ListTraces()
	if err != nil {
		s.metrics.failures.Inc()
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
		return
	}
	if infos == nil {
		infos = []store.TraceInfo{}
	}
	writeJSON(w, http.StatusOK, infos)
}
