package stats

import (
	"encoding/json"
	"testing"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := MustHistogram(1, 3, 7, 15, 23, 31)
	h.Observe(1, 5)
	h.Observe(6, 2)
	h.Observe(100, 9) // overflow bucket

	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total() != h.Total() || got.Buckets() != h.Buckets() {
		t.Fatalf("round trip lost shape: total %d/%d buckets %d/%d",
			got.Total(), h.Total(), got.Buckets(), h.Buckets())
	}
	for i := 0; i < h.Buckets(); i++ {
		if got.Count(i) != h.Count(i) {
			t.Errorf("bucket %d: %d != %d", i, got.Count(i), h.Count(i))
		}
		if got.BucketLabel(i) != h.BucketLabel(i) {
			t.Errorf("bucket %d label: %q != %q", i, got.BucketLabel(i), h.BucketLabel(i))
		}
	}
}

func TestHistogramJSONRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		`{"bounds":[],"counts":[0]}`,          // no bounds
		`{"bounds":[3,1],"counts":[0,0,0]}`,   // not ascending
		`{"bounds":[1,3],"counts":[0,0]}`,     // counts/bounds mismatch
		`{"bounds":[1,3],"counts":[0,0,0,0]}`, // counts/bounds mismatch
		`[1,2,3]`,
	} {
		var h Histogram
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Errorf("%s: accepted", bad)
		}
	}
}
