package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

// testCoordinator builds a coordinator backed by the session's local
// scheduler, for exercising the membership endpoints.
func testCoordinator(t *testing.T, cfg Config) *cluster.Coordinator {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Local:    cfg.Session.Engine().LocalScheduler(),
		Workload: cfg.Session.Engine().Config().Workload,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestJobListFilters: /v1/jobs?state= and ?kind= narrow the listing;
// an unknown state answers 400 naming the valid ones.
func TestJobListFilters(t *testing.T) {
	sess := tinySession(t, "")
	_, ts := newTestServer(t, Config{Session: sess})
	code, body := postJSON(t, ts.URL+"/v1/runs", `{"workload":"sparse"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: %d %q", code, body)
	}
	pollJob(t, ts.URL, decodeJob(t, body).ID)

	count := func(query string) int {
		t.Helper()
		code, body := get(t, ts.URL+"/v1/jobs"+query)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: %d %q", query, code, body)
		}
		var docs []JobDoc
		if err := json.Unmarshal([]byte(body), &docs); err != nil {
			t.Fatal(err)
		}
		return len(docs)
	}
	for query, want := range map[string]int{
		"":                        1,
		"?state=done":             1,
		"?state=settled":          1,
		"?state=active":           0,
		"?state=failed":           0,
		"?kind=run":               1,
		"?kind=figure":            0,
		"?state=done&kind=run":    1,
		"?state=done&kind=figure": 0,
	} {
		if got := count(query); got != want {
			t.Errorf("/v1/jobs%s listed %d jobs, want %d", query, got, want)
		}
	}

	code, body = get(t, ts.URL+"/v1/jobs?state=bogus")
	if code != http.StatusBadRequest || !strings.Contains(body, "active") {
		t.Errorf("bogus state filter: %d %q, want 400 naming the valid filters", code, body)
	}
}

// TestClusterEndpointsWithoutCoordinator: a daemon not running as a
// coordinator answers 404 on the whole membership plane.
func TestClusterEndpointsWithoutCoordinator(t *testing.T) {
	_, ts := newTestServer(t, Config{Session: tinySession(t, "")})
	if code, _ := postJSON(t, ts.URL+"/v1/cluster/workers", `{"url":"http://x:1","capacity":1}`); code != http.StatusNotFound {
		t.Errorf("register without coordinator: %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/cluster/workers/w1/heartbeat", ""); code != http.StatusNotFound {
		t.Errorf("heartbeat without coordinator: %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/cluster/workers"); code != http.StatusNotFound {
		t.Errorf("list without coordinator: %d", code)
	}
}

// TestClusterMembershipEndpoints drives register → heartbeat → list
// over HTTP against a real coordinator.
func TestClusterMembershipEndpoints(t *testing.T) {
	cfg := Config{Session: tinySession(t, "")}
	cfg.Coordinator = testCoordinator(t, cfg)
	_, ts := newTestServer(t, cfg)

	code, body := postJSON(t, ts.URL+"/v1/cluster/workers", `{"url":"http://127.0.0.1:1","capacity":2}`)
	if code != http.StatusOK {
		t.Fatalf("register: %d %q", code, body)
	}
	var reg cluster.RegisterResponse
	if err := json.Unmarshal([]byte(body), &reg); err != nil {
		t.Fatal(err)
	}
	if reg.WorkerID == "" || reg.HeartbeatMillis <= 0 {
		t.Fatalf("registration response %+v", reg)
	}

	if code, body := postJSON(t, ts.URL+"/v1/cluster/workers/"+reg.WorkerID+"/heartbeat", ""); code != http.StatusNoContent {
		t.Errorf("heartbeat: %d %q", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/cluster/workers/ghost/heartbeat", ""); code != http.StatusNotFound {
		t.Errorf("unknown worker heartbeat: %d, want 404 (re-register signal)", code)
	}

	code, body = get(t, ts.URL+"/v1/cluster/workers")
	if code != http.StatusOK {
		t.Fatalf("list: %d %q", code, body)
	}
	var workers []cluster.WorkerInfo
	if err := json.Unmarshal([]byte(body), &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 1 || workers[0].ID != reg.WorkerID || !workers[0].Alive || workers[0].Capacity != 2 {
		t.Fatalf("workers = %+v", workers)
	}

	// A malformed registration (relative URL) is refused.
	if code, _ := postJSON(t, ts.URL+"/v1/cluster/workers", `{"url":"not-a-url","capacity":1}`); code != http.StatusBadRequest {
		t.Errorf("bad registration: %d", code)
	}
}

// TestStoreResultEndpoints: the result sync plane round-trips a result
// by content address and rejects malformed keys and payloads.
func TestStoreResultEndpoints(t *testing.T) {
	sess := tinySession(t, t.TempDir())
	_, ts := newTestServer(t, Config{Session: sess})

	key := sess.RunKey("sparse", sess.Options().BaselineConfig())
	putURL := ts.URL + "/v1/store/results/" + key

	if code, _ := get(t, putURL); code != http.StatusNotFound {
		t.Errorf("GET missing result: %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/store/results/"+strings.Repeat("Z", 64)); code != http.StatusBadRequest {
		t.Errorf("GET non-hex key: %d, want 400", code)
	}
	if code, _ := putJSON(t, ts.URL+"/v1/store/results/shortkey", `{}`); code != http.StatusBadRequest {
		t.Errorf("PUT malformed key: %d", code)
	}
	if code, _ := putJSON(t, putURL, `not json`); code != http.StatusBadRequest {
		t.Errorf("PUT garbage payload: %d", code)
	}

	res := sim.Result{Accesses: 42, Reads: 40, Writes: 2}
	payload, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	if code, body := putJSON(t, putURL, string(payload)); code != http.StatusNoContent {
		t.Fatalf("PUT result: %d %q", code, body)
	}
	code, body := get(t, putURL)
	if code != http.StatusOK {
		t.Fatalf("GET result: %d %q", code, body)
	}
	var got sim.Result
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Accesses != 42 || got.Reads != 40 {
		t.Errorf("round-tripped result %+v", got)
	}

	// A storeless daemon has no artifact plane.
	_, plain := newTestServer(t, Config{Session: tinySession(t, "")})
	if code, _ := get(t, plain.URL+"/v1/store/results/"+key); code != http.StatusNotFound {
		t.Errorf("storeless GET: %d", code)
	}
}

// TestStoreTraceEndpoints: a trace artifact generated on one daemon is
// downloaded raw and uploaded to a second daemon's store, where it is
// validated before publish; corrupt uploads never become visible.
func TestStoreTraceEndpoints(t *testing.T) {
	src := tinySession(t, t.TempDir())
	_, srcTS := newTestServer(t, Config{Session: src, Workers: 2})

	// Generate a trace by running one cell on the source daemon.
	code, body := postJSON(t, srcTS.URL+"/v1/runs", `{"workload":"oltp-db2","prefetcher":"none"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: %d %q", code, body)
	}
	if doc := pollJob(t, srcTS.URL, decodeJob(t, body).ID); doc.State != JobDone {
		t.Fatalf("run job: %s %s", doc.State, doc.Error)
	}
	code, body = get(t, srcTS.URL+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces: %d", code)
	}
	var infos []store.TraceInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("traces = %+v", infos)
	}
	key := infos[0].Key

	code, raw := get(t, srcTS.URL+"/v1/store/traces/"+key)
	if code != http.StatusOK || len(raw) == 0 {
		t.Fatalf("GET raw trace: %d (%d bytes)", code, len(raw))
	}
	if code, _ := get(t, srcTS.URL+"/v1/store/traces/"+strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Errorf("GET unknown trace: %d", code)
	}

	dst := tinySession(t, t.TempDir())
	_, dstTS := newTestServer(t, Config{Session: dst, Workers: 2})
	dstURL := dstTS.URL + "/v1/store/traces/" + key
	if code, body := putJSON(t, dstURL, "garbage, not a trace artifact"); code != http.StatusBadRequest {
		t.Errorf("PUT corrupt trace: %d %q, want 400 (validated before publish)", code, body)
	}
	if dst.Store().HasTrace(key) {
		t.Fatal("corrupt upload became visible in the store")
	}
	code, body = putJSON(t, dstURL, raw)
	if code != http.StatusOK {
		t.Fatalf("PUT trace: %d %q", code, body)
	}
	if !dst.Store().HasTrace(key) {
		t.Fatal("uploaded trace not visible in the destination store")
	}
}

// TestCellEndpoint: the worker cell plane executes a run and answers
// its result; a key computed under different options is refused 409,
// and a repeat of the same cell is served from cache.
func TestCellEndpoint(t *testing.T) {
	sess := tinySession(t, "")
	_, ts := newTestServer(t, Config{Session: sess, Workers: 2})

	cfg := sess.Options().BaselineConfig()
	key := sess.RunKey("sparse", cfg)
	req := cluster.CellRequest{Workload: "sparse", Config: cfg, Key: key}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	code, body := postJSON(t, ts.URL+"/v1/cells", string(payload))
	if code != http.StatusOK {
		t.Fatalf("POST /v1/cells: %d %q", code, body)
	}
	var resp cluster.CellResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Key != key || resp.Result == nil || resp.Result.Accesses == 0 {
		t.Fatalf("cell response %+v", resp)
	}
	if resp.Cached {
		t.Error("first execution claims cached")
	}

	// Same cell again: memoized, no second simulation.
	code, body = postJSON(t, ts.URL+"/v1/cells", string(payload))
	if code != http.StatusOK {
		t.Fatalf("repeat cell: %d %q", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("repeat execution not served from cache")
	}
	if sims := sess.Simulations(); sims != 1 {
		t.Errorf("simulations = %d, want 1", sims)
	}

	// A coordinator launched with different options computes a
	// different address for the same cell: refuse it loudly.
	req.Key = strings.Repeat("a", 64)
	mismatched, _ := json.Marshal(req)
	if code, body := postJSON(t, ts.URL+"/v1/cells", string(mismatched)); code != http.StatusConflict {
		t.Errorf("mismatched key: %d %q, want 409", code, body)
	}

	if code, _ := postJSON(t, ts.URL+"/v1/cells", `{"workload":"no-such-workload"}`); code != http.StatusBadRequest {
		t.Errorf("unknown workload: %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/cells", `{broken`); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", code)
	}
}

// putJSON issues a PUT with the given body.
func putJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}
