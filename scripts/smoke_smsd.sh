#!/usr/bin/env sh
# Smoke test for the smsd async job API and its observability surface:
# start the daemon, submit a job and poll it to completion, validate the
# Prometheus exposition on /metrics (format-checked by internal/obs/
# obscheck) and that the job counters moved, then cancel a second (long)
# job while tailing its live SSE event stream, and finally check that
# smsim -trace-out emits a loadable Chrome trace. Run from the
# repository root; needs curl.
#
# Each daemon binds -addr 127.0.0.1:0 and the script reads the
# kernel-assigned port back from the startup log line, so concurrent
# smoke runs (or a developer's own smsd on :8344) never collide.
set -eu

BIN=${BIN:-./smsd-smoke-bin}

say() { echo "smoke: $*"; }
fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/smsd

FAST_PID=""
SLOW_PID=""
TMP=""
cleanup() {
    [ -n "$FAST_PID" ] && kill "$FAST_PID" 2>/dev/null || true
    [ -n "$SLOW_PID" ] && kill "$SLOW_PID" 2>/dev/null || true
    rm -f "$BIN"
    [ -n "$TMP" ] && rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# json_field FILE KEY → the first "KEY": "value" in the (indented) JSON.
json_field() {
    sed -n "s/^.*\"$2\": \"\([^\"]*\)\".*$/\1/p" "$1" | head -n 1
}

# wait_port LOGFILE → the port from the structured startup line
# msg="smsd listening" addr=127.0.0.1:PORT, polled until the daemon
# writes it. A daemon that dies before binding would hang this loop, so
# the timeout path dumps the log — the failure reason (bad flag, port
# exhaustion, panic) is in there, not here.
wait_port() {
    i=0
    while :; do
        port=$(sed -n 's/.*msg="smsd listening" addr=[^ ]*:\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke: FAIL: daemon never logged its listen address; log follows" >&2
            sed 's/^/smoke:   | /' "$1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

wait_healthy() {
    i=0
    while ! curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke: FAIL: daemon on :$1 never became healthy; log follows" >&2
            sed 's/^/smoke:   | /' "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

TMP=$(mktemp -d)

# --- Job to completion, against a fast daemon ------------------------------
# -run-parallel/-decode-ahead exercise the run pipeline end to end: the
# sms job below is not lane-shardable (prefetcher state is global) and
# must count a conflict replay; the later none-prefetcher job runs laned
# and must report lane occupancy.
"$BIN" -addr 127.0.0.1:0 -cpus 1 -length 120000 -run-parallel 2 -decode-ahead 2 >"$TMP/fast.log" 2>&1 &
FAST_PID=$!
PORT_FAST=$(wait_port "$TMP/fast.log")
wait_healthy "$PORT_FAST" "$TMP/fast.log"
say "fast daemon on :$PORT_FAST"

# Baseline scrape: the exposition must be valid before any job ran, and
# the job counters must start at zero.
curl -fsS "http://127.0.0.1:$PORT_FAST/metrics" >"$TMP/metrics0.txt"
go run ./internal/obs/obscheck metrics "$TMP/metrics0.txt" ||
    fail "baseline /metrics is not valid Prometheus exposition"
grep -q '^smsd_jobs_completed_total 0$' "$TMP/metrics0.txt" ||
    fail "jobs_completed not zero before any job"
say "baseline /metrics passes the exposition checker"

curl -fsS -X POST "http://127.0.0.1:$PORT_FAST/v1/runs" \
    -d '{"workload":"sparse","prefetcher":"sms"}' >"$TMP/submit.json"
JOB=$(json_field "$TMP/submit.json" id)
[ -n "$JOB" ] || fail "no job id in submit response: $(cat "$TMP/submit.json")"
say "submitted job $JOB"

i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_FAST/v1/jobs/$JOB" >"$TMP/poll.json"
    STATE=$(json_field "$TMP/poll.json" state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "job settled as $STATE: $(cat "$TMP/poll.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "job stuck in state $STATE"
    sleep 0.2
done
grep -q '"workload": "sparse"' "$TMP/poll.json" || fail "done job carries no result"
grep -q '"phases"' "$TMP/poll.json" || fail "done job carries no phase timings"
say "job $JOB completed with a result and phase timings"

# The counters must have moved across the job, and the exposition must
# still parse with the new series (histograms, engine bridges) present.
curl -fsS "http://127.0.0.1:$PORT_FAST/metrics" >"$TMP/metrics1.txt"
go run ./internal/obs/obscheck metrics "$TMP/metrics1.txt" ||
    fail "post-job /metrics is not valid Prometheus exposition"
grep -q '^smsd_jobs_created_total 1$' "$TMP/metrics1.txt" ||
    fail "jobs_created did not increment across the job"
grep -q '^smsd_jobs_completed_total 1$' "$TMP/metrics1.txt" ||
    fail "jobs_completed did not increment across the job"
grep -q '^smsd_simulations_total 1$' "$TMP/metrics1.txt" ||
    fail "simulations_total did not count the run"
grep -q 'smsd_run_duration_seconds_count 1' "$TMP/metrics1.txt" ||
    fail "run duration histogram did not observe the run"
grep -q '^smsd_sim_pipeline_stalls_total{stage="decode"} [0-9]' "$TMP/metrics1.txt" ||
    fail "pipeline decode-stall series missing"
grep -q '^smsd_sim_pipeline_stalls_total{stage="sim"} [0-9]' "$TMP/metrics1.txt" ||
    fail "pipeline sim-stall series missing"
grep -q '^smsd_sim_pipeline_conflict_replays_total 1$' "$TMP/metrics1.txt" ||
    fail "sms run under -run-parallel did not count a conflict replay"
say "job counters incremented and /metrics still parses"

# --- Lane-parallel run: a shardable (no-prefetcher) job --------------------
curl -fsS -X POST "http://127.0.0.1:$PORT_FAST/v1/runs" \
    -d '{"workload":"sparse","prefetcher":"none"}' >"$TMP/submit_p.json"
JOBP=$(json_field "$TMP/submit_p.json" id)
[ -n "$JOBP" ] || fail "no job id in lane-parallel submit: $(cat "$TMP/submit_p.json")"
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_FAST/v1/jobs/$JOBP" >"$TMP/poll_p.json"
    STATE=$(json_field "$TMP/poll_p.json" state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "lane-parallel job settled as $STATE: $(cat "$TMP/poll_p.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "lane-parallel job stuck in state $STATE"
    sleep 0.2
done
curl -fsS "http://127.0.0.1:$PORT_FAST/metrics" >"$TMP/metrics2.txt"
go run ./internal/obs/obscheck metrics "$TMP/metrics2.txt" ||
    fail "post-lane-run /metrics is not valid Prometheus exposition"
# Occupancy is 100*total/(lanes*max): any records at all put it in
# [50,100] for 2 lanes, so zero means the run never went laned.
grep -q '^smsd_sim_pipeline_lane_occupancy [1-9]' "$TMP/metrics2.txt" ||
    fail "lane-parallel run reported no lane occupancy"
say "lane-parallel job $JOBP ran laned and reported occupancy"

# --- Sampled run: the job API's sampling field end to end ------------------
curl -fsS -X POST "http://127.0.0.1:$PORT_FAST/v1/runs" \
    -d '{"workload":"sparse","prefetcher":"sms","sampling":{"WindowRecords":500,"IntervalRecords":4000}}' \
    >"$TMP/submit_s.json"
JOBS=$(json_field "$TMP/submit_s.json" id)
[ -n "$JOBS" ] || fail "no job id in sampled submit: $(cat "$TMP/submit_s.json")"
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_FAST/v1/jobs/$JOBS" >"$TMP/poll_s.json"
    STATE=$(json_field "$TMP/poll_s.json" state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "sampled job settled as $STATE: $(cat "$TMP/poll_s.json")" ;;
    esac
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "sampled job stuck in state $STATE"
    sleep 0.2
done
grep -q '"Sampling"' "$TMP/poll_s.json" || fail "sampled job result carries no Sampling block"
say "sampled job $JOBS completed with confidence intervals"

# --- Cancellation, against a daemon with a very long trace -----------------
"$BIN" -addr 127.0.0.1:0 -cpus 1 -length 200000000 >"$TMP/slow.log" 2>&1 &
SLOW_PID=$!
PORT_SLOW=$(wait_port "$TMP/slow.log")
wait_healthy "$PORT_SLOW" "$TMP/slow.log"
say "slow daemon on :$PORT_SLOW"

curl -fsS -X POST "http://127.0.0.1:$PORT_SLOW/v1/runs" \
    -d '{"workload":"ocean","prefetcher":"sms"}' >"$TMP/submit2.json"
JOB2=$(json_field "$TMP/submit2.json" id)
[ -n "$JOB2" ] || fail "no job id in second submit"
say "submitted long job $JOB2, tailing its event stream"

# Tail the live SSE stream in the background before cancelling: the
# stream must deliver the initial state frame and then the final
# cancelled state, closing on its own (bounded by --max-time in case it
# wedges).
curl -sN --max-time 30 "http://127.0.0.1:$PORT_SLOW/v1/jobs/$JOB2/events" >"$TMP/events.txt" &
SSE_PID=$!
sleep 0.5
say "cancelling job $JOB2"

curl -fsS -X DELETE "http://127.0.0.1:$PORT_SLOW/v1/jobs/$JOB2" >/dev/null
i=0
while :; do
    curl -fsS "http://127.0.0.1:$PORT_SLOW/v1/jobs/$JOB2" >"$TMP/poll2.json"
    STATE=$(json_field "$TMP/poll2.json" state)
    [ "$STATE" = "cancelled" ] && break
    [ "$STATE" = "done" ] || [ "$STATE" = "failed" ] && fail "long job settled as $STATE instead of cancelled"
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "cancelled job stuck in state $STATE"
    sleep 0.1
done
say "job $JOB2 settled as cancelled"

# The SSE stream must have closed on settlement with the frames intact.
wait "$SSE_PID" 2>/dev/null || true
grep -q '^event: state$' "$TMP/events.txt" || fail "event stream carries no state frame"
grep -q '"state":"cancelled"' "$TMP/events.txt" ||
    fail "event stream never reported the cancelled state"
say "event stream delivered the state frames and closed"

curl -fsS "http://127.0.0.1:$PORT_SLOW/metrics" >"$TMP/metrics.txt"
go run ./internal/obs/obscheck metrics "$TMP/metrics.txt" ||
    fail "slow daemon /metrics is not valid Prometheus exposition"
grep -q '^smsd_jobs_cancelled_total 1$' "$TMP/metrics.txt" ||
    fail "metrics do not count the cancellation"

# --- smsim -trace-out emits a loadable Chrome trace ------------------------
go run ./cmd/smsim -workload sparse -cpus 1 -length 50000 \
    -sample-window 500 -sample-interval 5000 \
    -trace-out "$TMP/trace.json" >/dev/null
go run ./internal/obs/obscheck trace "$TMP/trace.json" \
    gap warm window run trace-generate ||
    fail "smsim -trace-out did not produce a valid Chrome trace with the run phases"
say "smsim -trace-out produced a loadable Chrome trace"

say "PASS"
